#!/usr/bin/env bash
#
# Refresh the committed perf baselines in bench/baselines/.
#
# Usage: tools/refresh_baselines.sh [BUILD_DIR]
#
# Runs every figure/table bench in --quick mode and points
# --json-out at bench/baselines/<binary>.jsonl. The files are
# truncated first because --json-out appends; the record manifests
# (schema, git SHA, build flags, dataset fingerprint) make any
# accidental mixing detectable by alphapim_bench_diff anyway.
#
# Run this after an *intentional* perf change, eyeball the diff
# with:
#
#   build/tools/alphapim_bench_diff \
#       <(git show HEAD:bench/baselines/fig09_stall_breakdown.jsonl) \
#       bench/baselines/fig09_stall_breakdown.jsonl
#
# and commit the refreshed baselines together with the change that
# moved the numbers, explaining the movement in the commit message.

set -euo pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$REPO/build}"
OUT="$REPO/bench/baselines"

BENCHES=(
    fig02_spmv_partitioning
    fig04_kernel_crossover
    fig05_spmspv_variants
    fig06_spmspv_vs_spmv
    fig07_endtoend_adaptive
    fig08_dpu_scaling
    fig09_stall_breakdown
    fig10_active_threads
    fig11_instruction_mix
    table2_datasets
    table4_system_comparison
    sens_switch_threshold
    abl_future_hw
    ext_sparsep_1d
    fig_serve_latency
)

mkdir -p "$OUT"
for bench in "${BENCHES[@]}"; do
    bin="$BUILD/bench/$bench"
    if [[ ! -x "$bin" ]]; then
        echo "refresh_baselines: missing $bin -- build first" >&2
        echo "  (cmake --build $BUILD -j\$(nproc))" >&2
        exit 1
    fi
done

for bench in "${BENCHES[@]}"; do
    file="$OUT/$bench.jsonl"
    rm -f "$file"
    echo "== $bench"
    "$BUILD/bench/$bench" --quick --json-out "$file" >/dev/null
    echo "   $(wc -l <"$file") record(s) -> ${file#"$REPO"/}"
done

echo
echo "done; review with git diff bench/baselines/ and commit the"
echo "refreshed files together with the perf change."
