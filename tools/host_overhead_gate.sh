#!/usr/bin/env bash
#
# Gate: host-performance profiling must stay cheap. Runs a quick
# bench with the observatory on (the default once telemetry outputs
# are requested) and with --host-prof=off, and requires the profiled
# configuration's wall time to stay within 5% of the unprofiled one
# (plus a small absolute slack so sub-second runs don't gate on
# scheduler noise).
#
# Wall time is read from the run records' own wall_seconds field --
# the same measured window the differ gates on -- and each
# configuration takes the minimum over three repetitions to shed
# one-off machine hiccups.
#
# Usage: tools/host_overhead_gate.sh BENCH_BINARY [WORKDIR]

set -euo pipefail

BENCH="$1"
WORK="${2:-$(mktemp -d)}"
mkdir -p "$WORK"

REPS=3
SLACK_FRACTION=1.05 # the <5% overhead budget
SLACK_SECONDS=0.05  # absolute noise floor for sub-second runs

sum_wall() {
    # Sum every wall_seconds in a record file.
    awk 'BEGIN { RS="," ; total = 0 }
         /"wall_seconds":/ { sub(/.*"wall_seconds":/, ""); total += $0 }
         END { printf "%.9f", total }' "$1"
}

min_of() {
    printf '%s\n' "$@" | sort -g | head -n1
}

on_times=()
off_times=()
for rep in $(seq 1 "$REPS"); do
    : > "$WORK/on.$rep.jsonl"
    : > "$WORK/off.$rep.jsonl"
    "$BENCH" --quick --json-out "$WORK/on.$rep.jsonl" > /dev/null
    "$BENCH" --quick --host-prof=off --json-out "$WORK/off.$rep.jsonl" \
        > /dev/null
    on_times+=("$(sum_wall "$WORK/on.$rep.jsonl")")
    off_times+=("$(sum_wall "$WORK/off.$rep.jsonl")")
done

on_min="$(min_of "${on_times[@]}")"
off_min="$(min_of "${off_times[@]}")"

awk -v on="$on_min" -v off="$off_min" \
    -v frac="$SLACK_FRACTION" -v slack="$SLACK_SECONDS" '
    BEGIN {
        budget = off * frac + slack
        printf "host-prof on: %.3fs  off: %.3fs  budget: %.3fs\n",
               on, off, budget
        if (on > budget) {
            printf "FAIL: profiling overhead exceeds the budget\n"
            exit 1
        }
        printf "OK: profiling overhead within budget\n"
    }'
