/**
 * @file
 * alphapim_serve: front-end for the graph query serving subsystem.
 *
 * Loads one dataset into a resident ServeEngine, generates a seeded
 * multi-tenant query workload (open-loop Poisson arrivals or a
 * closed loop of think-free clients), serves it under the chosen
 * scheduling policy, and prints the admission / batching / latency
 * summary. Everything runs on the simulator's model clock, so the
 * same (seed, options) pair prints the same numbers on any machine.
 *
 * Examples:
 *   alphapim_serve --dataset e-En --queries 32 --scheduler batching
 *   alphapim_serve --mode closed --clients 8 --mix bfs,sssp
 *   alphapim_serve --rate 2000 --scheduler fifo --json-out out.jsonl
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/table.hh"
#include "perf/build_info.hh"
#include "perf/fingerprint.hh"
#include "perf/manifest.hh"
#include "perf/record.hh"
#include "serve/loadgen.hh"
#include "sparse/datasets.hh"
#include "sparse/generators.hh"
#include "sparse/mmio.hh"
#include "telemetry/telemetry.hh"

using namespace alphapim;

namespace
{

struct ServeCliOptions
{
    std::string dataset;
    std::string mtx;
    std::string mode = "open";
    std::string scheduler = "batching";
    std::string mixList = "bfs";
    std::string strategy = "adaptive";
    std::string metricsOut;
    std::string jsonOut;
    std::string logLevel;
    double scale = 0.25;
    double rate = 0.0;
    unsigned dpus = 256;
    unsigned tasklets = 16;
    unsigned queueCapacity = 64;
    unsigned queries = 64;
    unsigned clients = 4;
    unsigned queriesPerClient = 8;
    unsigned tenants = 4;
    std::uint64_t seed = 42;
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: alphapim_serve [options]\n"
        "  --dataset ABBREV        bundled Table 2 dataset\n"
        "  --mtx FILE              Matrix Market graph instead\n"
        "  --scale X               dataset generation scale\n"
        "  --dpus N                DPUs (default 256)\n"
        "  --tasklets N            tasklets per DPU (default 16)\n"
        "  --scheduler fifo|batching\n"
        "  --queue-capacity N      admission bound (default 64)\n"
        "  --mode open|closed      load generation mode\n"
        "  --queries N             open loop: total queries\n"
        "  --rate X                open loop: arrivals per model\n"
        "                          second (0 = burst at t=0)\n"
        "  --clients N             closed loop: concurrent clients\n"
        "  --queries-per-client N  closed loop: queries per client\n"
        "  --tenants N             tenant pool size\n"
        "  --mix LIST              comma list of bfs,sssp,ppr,cc\n"
        "  --strategy adaptive|costmodel|spmspv|spmv\n"
        "  --seed N                workload seed\n"
        "  --json-out FILE         append one schema-tagged run\n"
        "                          record (JSONL) for bench-diff\n"
        "  --metrics-out FILE      metrics registry dump (JSONL)\n"
        "  --version               print git SHA + build type\n"
        "  --log-level LEVEL       silent|normal|verbose\n"
        "Every flag also accepts the --flag=value spelling.\n");
    std::exit(2);
}

ServeCliOptions
parseCli(int argc, char **argv)
{
    ServeCliOptions opt;
    CliArgs args(argc, argv, [](const std::string &) { usage(); });
    while (args.next()) {
        const std::string &arg = args.arg();
        auto next = [&]() -> const char * { return args.value(); };
        if (arg == "--dataset")
            opt.dataset = next();
        else if (arg == "--mtx")
            opt.mtx = next();
        else if (arg == "--mode")
            opt.mode = next();
        else if (arg == "--scheduler")
            opt.scheduler = next();
        else if (arg == "--mix")
            opt.mixList = next();
        else if (arg == "--strategy")
            opt.strategy = next();
        else if (arg == "--metrics-out")
            opt.metricsOut = next();
        else if (arg == "--json-out")
            opt.jsonOut = next();
        else if (arg == "--log-level")
            opt.logLevel = next();
        else if (arg == "--scale")
            opt.scale = std::atof(next());
        else if (arg == "--rate")
            opt.rate = std::atof(next());
        else if (arg == "--dpus")
            opt.dpus = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--tasklets")
            opt.tasklets = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--queue-capacity")
            opt.queueCapacity =
                static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--queries")
            opt.queries = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--clients")
            opt.clients = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--queries-per-client")
            opt.queriesPerClient =
                static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--tenants")
            opt.tenants = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--seed")
            opt.seed = std::strtoull(next(), nullptr, 10);
        else if (arg == "--version") {
            std::printf("alphapim_serve %s (%s%s%s)\n",
                        perf::gitSha(), perf::buildType(),
                        perf::buildFlags()[0] ? ", " : "",
                        perf::buildFlags());
            std::exit(0);
        } else
            usage();
    }
    if (opt.dataset.empty() && opt.mtx.empty())
        opt.dataset = "e-En";
    if (opt.mode != "open" && opt.mode != "closed")
        fatal("--mode: expected open or closed, got '%s'",
              opt.mode.c_str());
    if (!opt.logLevel.empty() &&
        !setLogLevelByName(opt.logLevel.c_str()))
        fatal("unknown log level '%s'", opt.logLevel.c_str());
    if (!opt.metricsOut.empty() || !opt.jsonOut.empty())
        telemetry::metrics().setEnabled(true);
    return opt;
}

core::MxvStrategy
parseStrategy(const std::string &name)
{
    if (name == "adaptive")
        return core::MxvStrategy::Adaptive;
    if (name == "costmodel")
        return core::MxvStrategy::CostModel;
    if (name == "spmspv")
        return core::MxvStrategy::SpmspvOnly;
    if (name == "spmv")
        return core::MxvStrategy::SpmvOnly;
    fatal("unknown strategy '%s'", name.c_str());
}

std::vector<serve::ServeAlgo>
parseMix(const std::string &list)
{
    std::vector<serve::ServeAlgo> mix;
    std::size_t pos = 0;
    while (pos <= list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        const std::string name = list.substr(pos, comma - pos);
        serve::ServeAlgo algo;
        if (!serve::parseServeAlgo(name, algo))
            fatal("--mix: unknown algorithm '%s'", name.c_str());
        mix.push_back(algo);
        pos = comma + 1;
    }
    if (mix.empty())
        fatal("--mix: empty algorithm list");
    return mix;
}

} // namespace

int
main(int argc, char **argv)
{
    const ServeCliOptions opt = parseCli(argc, argv);
    const std::vector<serve::ServeAlgo> mix = parseMix(opt.mixList);

    // ---- graph ----
    sparse::CooMatrix<float> adjacency;
    std::string graph_name;
    if (!opt.mtx.empty()) {
        adjacency = sparse::readMatrixMarketFile(opt.mtx);
        if (adjacency.numRows() != adjacency.numCols())
            fatal("graph matrix must be square");
        graph_name = opt.mtx;
    } else {
        const auto data =
            sparse::buildDataset(opt.dataset, opt.scale, opt.seed);
        adjacency = data.adjacency;
        graph_name = data.spec.name;
    }
    const bool has_sssp =
        std::find(mix.begin(), mix.end(), serve::ServeAlgo::Sssp) !=
        mix.end();
    if (has_sssp) {
        // SSSP queries want non-unit weights; the other algorithms
        // only read the structure (BFS/CC) or renormalize (PPR), so
        // one weighted matrix serves the whole mix.
        Rng rng(opt.seed);
        adjacency = sparse::assignSymmetricWeights(adjacency, 1.0f,
                                                   64.0f, rng);
    }

    // ---- engine ----
    upmem::SystemConfig sys_cfg;
    sys_cfg.numDpus = opt.dpus;
    sys_cfg.dpu.tasklets = opt.tasklets;
    const upmem::UpmemSystem sys(sys_cfg);

    serve::ServeOptions serve_opt;
    serve_opt.dpus = opt.dpus;
    serve_opt.queueCapacity = opt.queueCapacity;
    if (!serve::parseSchedulerKind(opt.scheduler,
                                   serve_opt.scheduler))
        fatal("unknown scheduler '%s'", opt.scheduler.c_str());
    serve::ServeEngine engine(sys, serve_opt);
    engine.loadDataset(graph_name, adjacency);

    serve::LoadGenOptions load;
    load.seed = opt.seed;
    load.dataset = graph_name;
    load.tenants = opt.tenants;
    load.mix = mix;
    load.strategy = parseStrategy(opt.strategy);
    load.queries = opt.queries;
    load.arrivalRate = opt.rate;
    load.clients = opt.clients;
    load.queriesPerClient = opt.queriesPerClient;

    // ---- workload ----
    const auto wall_start = std::chrono::steady_clock::now();
    if (opt.mode == "open") {
        serve::runOpenLoop(
            engine,
            serve::openLoopQueries(load,
                                   engine.datasetRows(graph_name)));
    } else {
        serve::runClosedLoop(engine, load,
                             engine.datasetRows(graph_name));
    }
    const double wall_seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall_start)
            .count();

    const perf::ServeSummary s = engine.summary();
    std::printf("serve %s (%s, %s scheduler): %llu submitted, "
                "%llu admitted, %llu rejected\n",
                graph_name.c_str(), opt.mode.c_str(),
                engine.schedulerName(),
                static_cast<unsigned long long>(s.submitted),
                static_cast<unsigned long long>(s.admitted),
                static_cast<unsigned long long>(s.rejected));
    std::printf("batches %llu (mean size %.2f, max %llu), "
                "peak queue depth %llu\n",
                static_cast<unsigned long long>(s.batches),
                s.meanBatchSize,
                static_cast<unsigned long long>(s.maxBatchSize),
                static_cast<unsigned long long>(s.maxQueueDepth));
    TextTable lat("model-time latency (ms)");
    lat.setHeader({"p50", "p95", "p99", "p999", "mean"});
    lat.addRow({TextTable::num(toMillis(s.latencyP50), 3),
                TextTable::num(toMillis(s.latencyP95), 3),
                TextTable::num(toMillis(s.latencyP99), 3),
                TextTable::num(toMillis(s.latencyP999), 3),
                TextTable::num(toMillis(s.latencyMean), 3)});
    lat.print();
    std::printf("throughput %.1f queries/s over %.3f ms makespan\n",
                s.queriesPerSec, toMillis(s.makespanSeconds));

    if (!opt.jsonOut.empty()) {
        perf::RunManifest manifest = perf::currentManifest();
        manifest.datasetFingerprint =
            perf::datasetFingerprint(adjacency);
        manifest.addConfig("scale", opt.scale);
        manifest.addConfig(
            "tasklets", static_cast<std::uint64_t>(opt.tasklets));
        manifest.addConfig(
            "queue_capacity",
            static_cast<std::uint64_t>(opt.queueCapacity));
        manifest.addConfig(
            "tenants", static_cast<std::uint64_t>(opt.tenants));

        perf::RunKey key;
        key.bench = "serve";
        key.dataset = opt.mtx.empty() ? opt.dataset : opt.mtx;
        key.variant = opt.mode + "/" + opt.scheduler + "/" +
                      opt.mixList + "/" + opt.strategy;
        key.dpus = opt.dpus;
        key.seed = opt.seed;

        telemetry::appendJsonlRecord(
            opt.jsonOut,
            perf::encodeRunRecord(manifest, key,
                                  engine.servedIterations(),
                                  engine.phaseTotals(), nullptr,
                                  nullptr, wall_seconds, nullptr,
                                  nullptr, nullptr, &s));
    }
    if (!opt.metricsOut.empty())
        telemetry::writeMetricsFile(opt.metricsOut);
    return 0;
}
