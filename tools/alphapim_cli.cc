/**
 * @file
 * alphapim: command-line driver for the ALPHA-PIM framework.
 *
 * Runs any of the graph applications on a bundled synthetic dataset
 * or a user-supplied Matrix Market graph, on a configurable
 * simulated UPMEM machine, with any kernel strategy; prints the
 * phase breakdown, optionally the full DPU profile, a CPU-baseline
 * comparison, and a per-iteration CSV for plotting.
 *
 * Examples:
 *   alphapim --algo bfs  --dataset e-En
 *   alphapim --algo sssp --mtx road.mtx --dpus 1024 --profile
 *   alphapim --algo ppr  --dataset face --strategy spmv --csv it.csv
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "analysis/checker.hh"
#include "analysis/imbalance.hh"
#include "apps/graph_apps.hh"
#include "apps/reference_algorithms.hh"
#include "baseline/cpu_engine.hh"
#include "common/cli.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/table.hh"
#include "perf/build_info.hh"
#include "perf/fingerprint.hh"
#include "perf/manifest.hh"
#include "perf/record.hh"
#include "sparse/datasets.hh"
#include "sparse/generators.hh"
#include "sparse/graph_stats.hh"
#include "sparse/mmio.hh"
#include "telemetry/host_prof.hh"
#include "telemetry/telemetry.hh"
#include "telemetry/timeline.hh"
#include "upmem/report.hh"

using namespace alphapim;

namespace
{

struct CliOptions
{
    std::string algo = "bfs";
    std::string dataset;
    std::string mtx;
    std::string csv;
    std::string traceOut;
    std::string metricsOut;
    std::string jsonOut;
    std::string logLevel;
    std::string strategy = "adaptive";
    std::string checkList;
    std::string checkOut;
    std::string checkInject;
    double scale = 0.25;
    double threshold = -1.0;
    unsigned dpus = 2048;
    unsigned tasklets = 16;
    unsigned pprIterations = 20;
    std::uint64_t seed = 42;
    long source = -1;
    bool profile = false;
    bool compareCpu = false;
    bool validate = false;
    bool check = false;
    bool hostProf = true;
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: alphapim [options]\n"
        "  --algo bfs|sssp|ppr|cc      application (default bfs)\n"
        "  --dataset ABBREV            bundled Table 2 dataset\n"
        "  --mtx FILE                  Matrix Market graph instead\n"
        "  --scale X                   dataset generation scale\n"
        "  --dpus N                    DPUs (default 2048)\n"
        "  --tasklets N                tasklets per DPU (default 16)\n"
        "  --strategy adaptive|spmspv|spmv\n"
        "  --threshold X               switch density override\n"
        "  --source V                  source vertex (default: in\n"
        "                              the largest component)\n"
        "  --iterations N              PPR power iterations\n"
        "  --seed N                    RNG seed\n"
        "  --profile                   print the DPU profile\n"
        "  --compare-cpu               run the GridGraph CPU model\n"
        "  --validate                  check against host reference\n"
        "  --csv FILE                  per-iteration CSV output\n"
        "  --trace-out FILE            Chrome trace-event JSON of\n"
        "                              the run (Perfetto-loadable)\n"
        "  --metrics-out FILE          metrics registry dump (JSONL)\n"
        "  --json-out FILE             append one schema-tagged run\n"
        "                              record (JSONL) for bench-diff\n"
        "  --check[=FAMILIES]          run the pim-verify trace\n"
        "                              analyzer; FAMILIES is a comma\n"
        "                              list of race,lock,barrier,dma\n"
        "                              (default all); exits 3 when\n"
        "                              findings are reported\n"
        "  --check-out FILE            JSON findings report (implies\n"
        "                              --check)\n"
        "  --check-inject KIND         fold one synthetic finding of\n"
        "                              the given kind (data_race,...)\n"
        "                              into the report; exercises the\n"
        "                              exit-code contract in tests\n"
        "  --host-prof[=on|off]        host-performance observatory\n"
        "                              (phase profiler + memory\n"
        "                              footprint); on by default when\n"
        "                              telemetry output is requested,\n"
        "                              =off disables it\n"
        "  --version                   print git SHA + build type\n"
        "  --log-level LEVEL           silent|normal|verbose\n"
        "Every flag also accepts the --flag=value spelling.\n");
    std::exit(2);
}

CliOptions
parseCli(int argc, char **argv)
{
    CliOptions opt;
    // Accept both "--flag value" and "--flag=value".
    CliArgs args(argc, argv,
                 [](const std::string &) { usage(); });
    while (args.next()) {
        const std::string &arg = args.arg();
        auto next = [&]() -> const char * { return args.value(); };
        if (arg == "--algo")
            opt.algo = next();
        else if (arg == "--dataset")
            opt.dataset = next();
        else if (arg == "--mtx")
            opt.mtx = next();
        else if (arg == "--csv")
            opt.csv = next();
        else if (arg == "--trace-out")
            opt.traceOut = next();
        else if (arg == "--metrics-out")
            opt.metricsOut = next();
        else if (arg == "--json-out")
            opt.jsonOut = next();
        else if (arg == "--log-level")
            opt.logLevel = next();
        else if (arg == "--strategy")
            opt.strategy = next();
        else if (arg == "--scale")
            opt.scale = std::atof(next());
        else if (arg == "--threshold")
            opt.threshold = std::atof(next());
        else if (arg == "--dpus")
            opt.dpus = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--tasklets")
            opt.tasklets = static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--iterations")
            opt.pprIterations =
                static_cast<unsigned>(std::atoi(next()));
        else if (arg == "--seed")
            opt.seed = std::strtoull(next(), nullptr, 10);
        else if (arg == "--source")
            opt.source = std::atol(next());
        else if (arg == "--check") {
            opt.check = true;
            if (args.hasInlineValue())
                opt.checkList = args.inlineValue();
        } else if (arg == "--check-out") {
            opt.check = true;
            opt.checkOut = next();
        } else if (arg == "--check-inject") {
            opt.check = true;
            opt.checkInject = next();
            bool known = false;
            for (unsigned k = 0; k < analysis::numFindingKinds; ++k)
                known = known ||
                        opt.checkInject ==
                            analysis::findingKindName(
                                static_cast<analysis::FindingKind>(k));
            if (!known) {
                std::fprintf(stderr,
                             "--check-inject: unknown kind '%s'\n",
                             opt.checkInject.c_str());
                usage();
            }
        } else if (arg == "--host-prof") {
            if (!args.hasInlineValue() ||
                args.inlineValue() == "on")
                opt.hostProf = true;
            else if (args.inlineValue() == "off")
                opt.hostProf = false;
            else
                fatal("--host-prof: expected on or off, got '%s'",
                      args.inlineValue().c_str());
        } else if (arg == "--version") {
            std::printf("alphapim %s (%s%s%s)\n", perf::gitSha(),
                        perf::buildType(),
                        perf::buildFlags()[0] ? ", " : "",
                        perf::buildFlags());
            std::exit(0);
        } else if (arg == "--profile")
            opt.profile = true;
        else if (arg == "--compare-cpu")
            opt.compareCpu = true;
        else if (arg == "--validate")
            opt.validate = true;
        else
            usage();
    }
    if (opt.dataset.empty() && opt.mtx.empty())
        opt.dataset = "e-En";
    if (!opt.logLevel.empty() &&
        !setLogLevelByName(opt.logLevel.c_str()))
        fatal("unknown log level '%s'", opt.logLevel.c_str());
    if (!opt.traceOut.empty()) {
        telemetry::tracer().setEnabled(true);
        // Flush to the file in chunks so long runs stay bounded;
        // buffered fallback when the file cannot be created.
        if (!telemetry::tracer().openStream(opt.traceOut))
            warn("cannot stream trace to '%s'; buffering instead",
                 opt.traceOut.c_str());
    }
    if (!opt.jsonOut.empty()) {
        // Run records carry an execution-timeline summary, which is
        // reconstructed from trace spans -- record them even when no
        // trace file was requested.
        telemetry::tracer().setEnabled(true);
    }
    if (!opt.metricsOut.empty() || !opt.jsonOut.empty()) {
        telemetry::metrics().setEnabled(true);
        // Imbalance analytics ride on the same outputs: per-launch
        // skew metrics and the run record's "imbalance" block.
        analysis::imbalance().setEnabled(true);
    }
    if (opt.hostProf &&
        (!opt.traceOut.empty() || !opt.metricsOut.empty() ||
         !opt.jsonOut.empty())) {
        // Host observatory: host.* metrics, the v5 "host" record
        // block and the "host_profile" trace event. Observation
        // only -- model metrics are identical with =off.
        telemetry::hostProfiler().reset();
        telemetry::hostProfiler().setEnabled(true);
    }
    if (opt.check) {
        analysis::CheckOptions sel;
        std::string error;
        if (!analysis::CheckOptions::parseList(opt.checkList, sel,
                                               &error))
            fatal("--check: %s", error.c_str());
        analysis::checker().enable(sel);
    }
    return opt;
}

core::MxvStrategy
parseStrategy(const std::string &name)
{
    if (name == "adaptive")
        return core::MxvStrategy::Adaptive;
    if (name == "costmodel")
        return core::MxvStrategy::CostModel;
    if (name == "spmspv")
        return core::MxvStrategy::SpmspvOnly;
    if (name == "spmv")
        return core::MxvStrategy::SpmvOnly;
    fatal("unknown strategy '%s'", name.c_str());
}

void
writeCsv(const std::string &path, const apps::AppResult &result)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot create CSV file '%s'", path.c_str());
    out << "iteration,input_density,output_density,kernel,load_ms,"
           "kernel_ms,retrieve_ms,merge_ms,total_ms,semiring_ops\n";
    for (const auto &log : result.iterations) {
        out << log.iteration << ',' << log.inputDensity << ','
            << log.outputDensity << ','
            << (log.usedSpmv ? "spmv" : "spmspv") << ','
            << toMillis(log.times.load) << ','
            << toMillis(log.times.kernel) << ','
            << toMillis(log.times.retrieve) << ','
            << toMillis(log.times.merge) << ','
            << toMillis(log.times.total()) << ','
            << log.semiringOps << '\n';
    }
    inform("wrote %zu iterations to %s", result.iterations.size(),
           path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions opt = parseCli(argc, argv);

    // ---- graph ----
    sparse::CooMatrix<float> adjacency;
    std::string graph_name;
    if (!opt.mtx.empty()) {
        adjacency = sparse::readMatrixMarketFile(opt.mtx);
        if (adjacency.numRows() != adjacency.numCols())
            fatal("graph matrix must be square");
        graph_name = opt.mtx;
    } else {
        const auto data =
            sparse::buildDataset(opt.dataset, opt.scale, opt.seed);
        adjacency = data.adjacency;
        graph_name = data.spec.name;
    }
    const auto stats = sparse::computeGraphStats(adjacency);
    std::printf("graph %s: %u vertices, %llu edges, degree %.2f "
                "+/- %.2f\n",
                graph_name.c_str(), stats.nodes,
                static_cast<unsigned long long>(stats.edges),
                stats.avgDegree, stats.degreeStd);

    Rng rng(opt.seed);
    sparse::CooMatrix<float> matrix = adjacency;
    if (opt.algo == "sssp") {
        matrix = sparse::assignSymmetricWeights(adjacency, 1.0f,
                                                64.0f, rng);
    }

    const NodeId source =
        opt.source >= 0 ? static_cast<NodeId>(opt.source)
                        : sparse::largestComponentVertex(adjacency);
    if (source >= stats.nodes)
        fatal("source vertex out of range");

    // ---- machine ----
    upmem::SystemConfig sys_cfg;
    sys_cfg.numDpus = opt.dpus;
    sys_cfg.dpu.tasklets = opt.tasklets;
    const upmem::UpmemSystem sys(sys_cfg);

    apps::AppConfig cfg;
    cfg.strategy = parseStrategy(opt.strategy);
    cfg.switchThreshold = opt.threshold;
    cfg.pprIterations = opt.pprIterations;

    // ---- run ----
    constexpr const char *xfer_counters[6] = {
        "xfer.scatters",   "xfer.scatter_bytes",
        "xfer.gathers",    "xfer.gather_bytes",
        "xfer.broadcasts", "xfer.broadcast_bytes",
    };
    std::uint64_t xfer_start[6] = {};
    for (std::size_t i = 0; i < 6; ++i)
        xfer_start[i] =
            telemetry::metrics().counterValue(xfer_counters[i]);
    analysis::imbalance().beginRun();
    const auto wall_start = std::chrono::steady_clock::now();
    apps::AppResult result;
    if (opt.algo == "bfs")
        result = apps::runBfs(sys, matrix, source, cfg);
    else if (opt.algo == "sssp")
        result = apps::runSssp(sys, matrix, source, cfg);
    else if (opt.algo == "ppr")
        result = apps::runPpr(sys, matrix, source, cfg);
    else if (opt.algo == "cc")
        result = apps::runConnectedComponents(sys, matrix, cfg);
    else
        fatal("unknown algorithm '%s'", opt.algo.c_str());
    const double wall_seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall_start)
            .count();

    if (!opt.jsonOut.empty()) {
        perf::RunManifest manifest = perf::currentManifest();
        manifest.datasetFingerprint =
            perf::datasetFingerprint(adjacency);
        manifest.addConfig("scale", opt.scale);
        manifest.addConfig(
            "tasklets", static_cast<std::uint64_t>(opt.tasklets));
        if (opt.threshold >= 0.0)
            manifest.addConfig("threshold", opt.threshold);
        if (opt.algo == "ppr")
            manifest.addConfig(
                "ppr_iterations",
                static_cast<std::uint64_t>(opt.pprIterations));

        perf::RunKey key;
        key.bench = "cli";
        key.dataset = opt.mtx.empty() ? opt.dataset : opt.mtx;
        key.variant = opt.algo + "/" + opt.strategy;
        key.dpus = opt.dpus;
        key.seed = opt.seed;

        perf::XferCounts xfer;
        std::uint64_t xfer_now[6];
        for (std::size_t i = 0; i < 6; ++i)
            xfer_now[i] =
                telemetry::metrics().counterValue(xfer_counters[i]);
        xfer.scatters = xfer_now[0] - xfer_start[0];
        xfer.scatterBytes = xfer_now[1] - xfer_start[1];
        xfer.gathers = xfer_now[2] - xfer_start[2];
        xfer.gatherBytes = xfer_now[3] - xfer_start[3];
        xfer.broadcasts = xfer_now[4] - xfer_start[4];
        xfer.broadcastBytes = xfer_now[5] - xfer_start[5];

        perf::TimelineSummary timeline;
        const perf::TimelineSummary *timeline_ptr = nullptr;
        const telemetry::Timeline tl =
            telemetry::buildTimeline(telemetry::tracer().events());
        if (!tl.launches.empty()) {
            const telemetry::TimelineStats tl_stats =
                telemetry::computeStats(tl);
            telemetry::recordTimelineMetrics(tl_stats,
                                             telemetry::metrics());
            timeline = perf::summarizeTimeline(tl, tl_stats);
            timeline_ptr = &timeline;
        }

        perf::ImbalanceSummary imbalance;
        const perf::ImbalanceSummary *imbalance_ptr = nullptr;
        const analysis::RunImbalance run_imbalance =
            analysis::imbalance().collectRun();
        if (run_imbalance.launches > 0) {
            imbalance = perf::summarizeImbalance(run_imbalance);
            imbalance_ptr = &imbalance;
        }

        perf::HostSummary host;
        const perf::HostSummary *host_ptr = nullptr;
        if (telemetry::hostProfiler().enabled()) {
            host = perf::summarizeHost(telemetry::publishHostProfile(
                result.total.total()));
            host_ptr = &host;
        }

        telemetry::appendJsonlRecord(
            opt.jsonOut,
            perf::encodeRunRecord(
                manifest, key, result.iterations.size(),
                result.total, &result.profile, &xfer,
                wall_seconds, timeline_ptr, imbalance_ptr,
                host_ptr));
    }

    std::printf("\n%s from vertex %u: %zu iterations (%s), "
                "%u SpMSpV / %u SpMV launches\n",
                opt.algo.c_str(), source, result.iterations.size(),
                result.converged ? "converged" : "iteration cap",
                result.spmspvLaunches, result.spmvLaunches);
    TextTable phases("phase totals");
    phases.setHeader({"load", "kernel", "retrieve", "merge",
                      "total"});
    phases.addRow({TextTable::num(toMillis(result.total.load), 3),
                   TextTable::num(toMillis(result.total.kernel), 3),
                   TextTable::num(toMillis(result.total.retrieve), 3),
                   TextTable::num(toMillis(result.total.merge), 3),
                   TextTable::num(toMillis(result.total.total()),
                                  3)});
    phases.print();

    bool validate_ok = true;
    if (opt.validate) {
        bool ok = true;
        if (opt.algo == "bfs") {
            ok = result.levels == apps::referenceBfs(matrix, source);
        } else if (opt.algo == "cc") {
            ok = result.levels == apps::referenceComponents(matrix);
        } else if (opt.algo == "sssp") {
            const auto expected =
                apps::referenceSssp(matrix, source);
            for (NodeId v = 0; ok && v < stats.nodes; ++v) {
                const float a = result.distances[v];
                const float b = expected[v];
                ok = std::isinf(a) == std::isinf(b) &&
                     (std::isinf(a) || std::abs(a - b) <= 1e-3);
            }
        } else {
            const auto expected = apps::referencePpr(
                matrix, source, cfg.pprAlpha, cfg.pprIterations);
            for (NodeId v = 0; ok && v < stats.nodes; ++v) {
                ok = std::abs(result.ranks[v] - expected[v]) <= 1e-3;
            }
        }
        std::printf("validation vs host reference: %s\n",
                    ok ? "OK" : "MISMATCH");
        // Don't exit yet: a requested --check report must still be
        // finalized (and its exit status takes precedence).
        validate_ok = ok;
    }

    if (opt.profile) {
        std::printf("\n%s",
                    upmem::renderProfileReport(result.profile,
                                               sys_cfg)
                        .c_str());
    }

    if (opt.compareCpu && opt.algo != "cc") {
        const baseline::CpuEngine cpu(baseline::CpuSpec{}, matrix);
        baseline::CpuRunResult run;
        if (opt.algo == "bfs")
            run = cpu.bfs(source);
        else if (opt.algo == "sssp")
            run = cpu.sssp(source);
        else
            run = cpu.ppr(source, cfg.pprAlpha, cfg.pprIterations);
        std::printf("\nGridGraph CPU model: %.2f ms; PIM kernel "
                    "speedup %.1fx, total %.1fx\n",
                    toMillis(run.seconds),
                    run.seconds / result.total.kernel,
                    run.seconds / result.total.total());
    }

    if (!opt.csv.empty())
        writeCsv(opt.csv, result);

    // Derived whole-run scalars, then the telemetry files.
    auto &m = telemetry::metrics();
    if (m.enabled()) {
        const auto &agg = result.profile.aggregate;
        m.setScalar("dpu.issued_fraction", agg.issuedFraction());
        for (unsigned r = 0;
             r < static_cast<unsigned>(
                     upmem::StallReason::NumReasons);
             ++r) {
            const auto reason = static_cast<upmem::StallReason>(r);
            m.setScalar(std::string("dpu.stall.") +
                            upmem::stallReasonName(reason) +
                            "_fraction",
                        agg.stallFraction(reason));
        }
        m.setScalar("dpu.avg_active_threads",
                    agg.avgActiveThreads());
    }
    if (telemetry::hostProfiler().enabled() && opt.jsonOut.empty()) {
        // Trace/metrics-only runs: publish the whole-process host
        // profile so those outputs still carry the observatory.
        telemetry::publishHostProfile(result.total.total());
    }
    if (!opt.traceOut.empty())
        telemetry::finishTraceOutput(opt.traceOut);
    if (!opt.metricsOut.empty())
        telemetry::writeMetricsFile(opt.metricsOut);

    if (opt.check) {
        if (!opt.checkInject.empty()) {
            for (unsigned k = 0; k < analysis::numFindingKinds; ++k) {
                const auto kind =
                    static_cast<analysis::FindingKind>(k);
                if (opt.checkInject ==
                    analysis::findingKindName(kind)) {
                    analysis::Finding f;
                    f.kind = kind;
                    f.detail = "synthetic finding injected by "
                               "--check-inject";
                    analysis::checker().injectFinding(std::move(f));
                }
            }
        }
        const int status =
            analysis::finalizeCheckReport(opt.checkOut);
        if (status != 0)
            return status;
    }
    return validate_ok ? 0 : 1;
}
