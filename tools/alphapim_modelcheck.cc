/**
 * @file
 * alphapim_modelcheck: exhaustive-schedule static verification of
 * kernel synchronization and the host launch protocol.
 *
 * Subjects are synchronization skeletons: either harvested from the
 * shipped kernels / applications by running them functionally on tiny
 * abstract partitions (src/analysis/modelcheck/extract.hh), or built
 * from the abstract launch-protocol model (protocol.hh). Each subject
 * is handed to the sleep-set DPOR explorer, which enumerates every
 * schedule up to --max-states and proves race-freedom,
 * deadlock-freedom and barrier-round consistency -- or reports the
 * defect with the pim-verify Finding kinds.
 *
 * Exit codes: 0 all subjects proved clean; 2 usage or I/O error;
 * 3 findings; 4 no findings but some exploration hit the state bound
 * (a clean-but-unproved result).
 */

#include <algorithm>
#include <array>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/checker.hh"
#include "analysis/modelcheck/explorer.hh"
#include "analysis/modelcheck/extract.hh"
#include "analysis/modelcheck/protocol.hh"
#include "common/cli.hh"
#include "common/logging.hh"
#include "perf/build_info.hh"
#include "telemetry/json.hh"

using namespace alphapim;
using namespace alphapim::analysis;
using namespace alphapim::analysis::modelcheck;

namespace
{

const core::KernelVariant allKernels[] = {
    core::KernelVariant::SpmspvCoo,    core::KernelVariant::SpmspvCsr,
    core::KernelVariant::SpmspvCscR,   core::KernelVariant::SpmspvCscC,
    core::KernelVariant::SpmspvCsc2d,  core::KernelVariant::SpmvCoo1d,
    core::KernelVariant::SpmvCooRow1d, core::KernelVariant::SpmvCsrRow1d,
    core::KernelVariant::SpmvDcoo2d,
};

const LaunchSchedule allSchedules[] = {
    LaunchSchedule::Serial,
    LaunchSchedule::RankOverlap,
    LaunchSchedule::DoubleBuffer,
    LaunchSchedule::Combined,
};

struct Options
{
    bool kernels = false;
    bool protocol = false;
    bool apps = false;
    std::vector<core::KernelVariant> kernelList;
    std::vector<LaunchSchedule> scheduleList;
    std::vector<std::string> appList;
    core::MxvStrategy strategy = core::MxvStrategy::Adaptive;

    ExtractOptions extract;
    ProtocolOptions proto;

    std::uint64_t maxStates = 1ull << 21;
    bool naive = false;
    bool compareNaive = false;
    std::string jsonOut;
};

/** One explored subject's aggregated outcome, for report rendering. */
struct SubjectResult
{
    std::string subject;
    unsigned skeletons = 0;   ///< distinct fingerprints explored
    unsigned dpuPrograms = 0; ///< per-DPU programs before dedup
    unsigned launches = 0;    ///< captured launches (0 for protocol)
    ExploreStats stats;       ///< summed across skeletons
    bool complete = true;
    std::uint64_t findings = 0;
    std::uint64_t naiveStates = 0; ///< --compare-naive only
    bool naiveComplete = true;     ///< naive run within the bound
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: alphapim_modelcheck [subjects] [options]\n"
        "subjects (default: --kernels --protocol):\n"
        "  --kernels[=LIST]   kernel variants, comma-separated paper\n"
        "                     names (COO,CSC-2D,...); no list = all\n"
        "  --protocol[=LIST]  launch schedules (serial,rank-overlap,\n"
        "                     double-buffer,combined); no list = all\n"
        "  --apps[=LIST]      applications (bfs,sssp,ppr,cc);\n"
        "                     no list = all\n"
        "  --strategy NAME    app strategy: adaptive|costmodel|\n"
        "                     spmspv|spmv (default adaptive)\n"
        "abstract partition shape:\n"
        "  --dpus N --tasklets N --vertices N --edges N --seed N\n"
        "launch-protocol model shape:\n"
        "  --ranks N --iterations N\n"
        "  --inject NAME      seed a protocol defect: drop-load-barrier|\n"
        "                     shared-staging|single-buffer|skip-final-barrier\n"
        "exploration:\n"
        "  --max-states N     DFS node budget per skeleton\n"
        "  --naive            disable sleep-set reduction\n"
        "  --compare-naive    also explore naively, log the reduction\n"
        "  --quick            CI bounds (max-states 200000)\n"
        "output:\n"
        "  --json-out PATH    write a JSON report\n"
        "  --version          print git SHA + build type and exit\n"
        "Every flag also accepts the --flag=value spelling.\n"
        "exit: 0 proved clean, 2 usage/I/O, 3 findings,\n"
        "      4 clean but state bound hit (unproved)\n");
    std::exit(2);
}

bool
parseKernelList(const std::string &list,
                std::vector<core::KernelVariant> &out)
{
    std::size_t pos = 0;
    while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string name = list.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        bool found = false;
        for (const core::KernelVariant v : allKernels) {
            if (name == core::kernelVariantName(v)) {
                out.push_back(v);
                found = true;
                break;
            }
        }
        if (!found) {
            std::fprintf(stderr,
                         "alphapim_modelcheck: unknown kernel '%s'\n",
                         name.c_str());
            return false;
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return true;
}

bool
parseScheduleList(const std::string &list,
                  std::vector<LaunchSchedule> &out)
{
    std::size_t pos = 0;
    while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string name = list.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        bool found = false;
        for (const LaunchSchedule s : allSchedules) {
            if (name == launchScheduleName(s)) {
                out.push_back(s);
                found = true;
                break;
            }
        }
        if (!found) {
            std::fprintf(
                stderr,
                "alphapim_modelcheck: unknown schedule '%s'\n",
                name.c_str());
            return false;
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return true;
}

bool
parseAppList(const std::string &list, std::vector<std::string> &out)
{
    std::size_t pos = 0;
    while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string name = list.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        const auto &known = knownApps();
        if (std::find(known.begin(), known.end(), name) ==
            known.end()) {
            std::fprintf(stderr,
                         "alphapim_modelcheck: unknown app '%s'\n",
                         name.c_str());
            return false;
        }
        out.push_back(name);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return true;
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    CliArgs args(argc, argv, [](const std::string &flag) {
        std::fprintf(stderr,
                     "alphapim_modelcheck: %s needs a value\n",
                     flag.c_str());
        usage();
    });
    while (args.next()) {
        const std::string &arg = args.arg();
        auto next = [&]() -> std::string { return args.value(); };
        auto nextU64 = [&]() -> std::uint64_t {
            const std::string v = next();
            try {
                return std::stoull(v);
            } catch (...) {
                std::fprintf(stderr,
                             "alphapim_modelcheck: bad number '%s'\n",
                             v.c_str());
                usage();
            }
        };

        if (arg == "--kernels") {
            opt.kernels = true;
            if (args.hasInlineValue() &&
                !parseKernelList(args.inlineValue(), opt.kernelList))
                usage();
        } else if (arg == "--protocol") {
            opt.protocol = true;
            if (args.hasInlineValue() &&
                !parseScheduleList(args.inlineValue(),
                                   opt.scheduleList))
                usage();
        } else if (arg == "--apps") {
            opt.apps = true;
            if (args.hasInlineValue() &&
                !parseAppList(args.inlineValue(), opt.appList))
                usage();
        } else if (arg == "--strategy") {
            const std::string v = next();
            if (v == "adaptive")
                opt.strategy = core::MxvStrategy::Adaptive;
            else if (v == "costmodel")
                opt.strategy = core::MxvStrategy::CostModel;
            else if (v == "spmspv")
                opt.strategy = core::MxvStrategy::SpmspvOnly;
            else if (v == "spmv")
                opt.strategy = core::MxvStrategy::SpmvOnly;
            else
                usage();
        } else if (arg == "--dpus") {
            opt.extract.dpus = static_cast<unsigned>(nextU64());
        } else if (arg == "--tasklets") {
            opt.extract.tasklets = static_cast<unsigned>(nextU64());
        } else if (arg == "--vertices") {
            opt.extract.vertices = static_cast<NodeId>(nextU64());
        } else if (arg == "--edges") {
            opt.extract.edges = static_cast<EdgeId>(nextU64());
        } else if (arg == "--seed") {
            opt.extract.seed = nextU64();
        } else if (arg == "--ranks") {
            opt.proto.ranks = static_cast<unsigned>(nextU64());
        } else if (arg == "--iterations") {
            opt.proto.iterations = static_cast<unsigned>(nextU64());
        } else if (arg == "--inject") {
            const std::string v = next();
            if (v == "drop-load-barrier")
                opt.proto.dropLoadBarrier = true;
            else if (v == "shared-staging")
                opt.proto.sharedStaging = true;
            else if (v == "single-buffer")
                opt.proto.singleBuffer = true;
            else if (v == "skip-final-barrier")
                opt.proto.skipFinalBarrier = true;
            else
                usage();
        } else if (arg == "--max-states") {
            opt.maxStates = nextU64();
        } else if (arg == "--naive") {
            opt.naive = true;
        } else if (arg == "--compare-naive") {
            opt.compareNaive = true;
        } else if (arg == "--quick") {
            opt.maxStates = 200000;
        } else if (arg == "--json-out") {
            opt.jsonOut = next();
        } else if (arg == "--version") {
            std::printf("alphapim_modelcheck %s (%s%s%s)\n",
                        perf::gitSha(), perf::buildType(),
                        perf::buildFlags()[0] ? ", " : "",
                        perf::buildFlags());
            std::exit(0);
        } else if (arg == "--help" || arg == "-h") {
            usage();
        } else {
            std::fprintf(stderr,
                         "alphapim_modelcheck: unknown flag '%s'\n",
                         arg.c_str());
            usage();
        }
    }
    if (!opt.kernels && !opt.protocol && !opt.apps) {
        opt.kernels = true;
        opt.protocol = true;
    }
    if (opt.kernels && opt.kernelList.empty())
        opt.kernelList.assign(std::begin(allKernels),
                              std::end(allKernels));
    if (opt.protocol && opt.scheduleList.empty())
        opt.scheduleList.assign(std::begin(allSchedules),
                                std::end(allSchedules));
    if (opt.apps && opt.appList.empty())
        opt.appList = knownApps();
    return opt;
}

void
accumulate(SubjectResult &r, const ExploreResult &e)
{
    r.stats.states += e.stats.states;
    r.stats.transitions += e.stats.transitions;
    r.stats.sleepSkips += e.stats.sleepSkips;
    r.stats.schedules += e.stats.schedules;
    r.stats.deadlockStates += e.stats.deadlockStates;
    r.stats.maxDepth = std::max(r.stats.maxDepth, e.stats.maxDepth);
    r.complete = r.complete && e.complete;
    r.findings += e.findings.size();
}

/** Explore every skeleton of an extraction under one subject label. */
SubjectResult
checkExtraction(const std::string &subject, const Extraction &ex,
                const Options &opt, std::vector<Finding> &findings)
{
    SubjectResult r;
    r.subject = subject;
    r.skeletons = static_cast<unsigned>(ex.skeletons.size());
    r.dpuPrograms = ex.dpuPrograms;
    r.launches = ex.launches;
    r.findings = ex.lintFindings.size();
    findings.insert(findings.end(), ex.lintFindings.begin(),
                    ex.lintFindings.end());

    ExploreOptions eo;
    eo.maxStates = opt.maxStates;
    eo.reduction = !opt.naive;
    for (const ExtractedSkeleton &s : ex.skeletons) {
        const ExploreResult e = explore(s.skeleton, eo);
        accumulate(r, e);
        findings.insert(findings.end(), e.findings.begin(),
                        e.findings.end());
        if (opt.compareNaive) {
            ExploreOptions naive = eo;
            naive.reduction = false;
            const ExploreResult n = explore(s.skeleton, naive);
            r.naiveStates += n.stats.states;
            r.naiveComplete = r.naiveComplete && n.complete;
        }
    }
    return r;
}

SubjectResult
checkProtocol(LaunchSchedule schedule, const Options &opt,
              std::vector<Finding> &findings)
{
    const SyncSkeleton skel =
        buildProtocolSkeleton(schedule, opt.proto);
    Extraction ex;
    ex.skeletons.push_back({skel, 1});
    ex.dpuPrograms = 1;
    SubjectResult r =
        checkExtraction(skel.subject, ex, opt, findings);
    return r;
}

void
printSubject(const SubjectResult &r)
{
    std::printf(
        "modelcheck: %-28s %u skeleton(s), %llu states, "
        "%llu transitions, %llu schedules, %llu sleep-set prunes, "
        "%s, %llu finding(s)\n",
        r.subject.c_str(), r.skeletons,
        static_cast<unsigned long long>(r.stats.states),
        static_cast<unsigned long long>(r.stats.transitions),
        static_cast<unsigned long long>(r.stats.schedules),
        static_cast<unsigned long long>(r.stats.sleepSkips),
        r.complete ? "complete" : "STATE BOUND HIT",
        static_cast<unsigned long long>(r.findings));
    if (r.naiveStates > 0 && r.stats.states > 0) {
        std::printf(
            "modelcheck: %-28s DPOR explored %llu states vs %s%llu "
            "naive (%s%.1fx reduction)\n",
            r.subject.c_str(),
            static_cast<unsigned long long>(r.stats.states),
            r.naiveComplete ? "" : ">=",
            static_cast<unsigned long long>(r.naiveStates),
            r.naiveComplete ? "" : ">=",
            static_cast<double>(r.naiveStates) /
                static_cast<double>(r.stats.states));
    }
}

std::string
reportJson(const std::vector<SubjectResult> &subjects,
           const std::vector<Finding> &findings, bool complete)
{
    std::array<std::uint64_t, numFindingKinds> counts{};
    for (const Finding &f : findings)
        ++counts[static_cast<unsigned>(f.kind)];

    telemetry::JsonWriter w;
    w.beginObject();
    w.key("schema").value("alpha-pim-analysis-v1");
    w.key("tool").value("alphapim_modelcheck");
    w.key("total_findings")
        .value(static_cast<std::uint64_t>(findings.size()));
    w.key("counts").beginObject();
    for (unsigned k = 0; k < numFindingKinds; ++k) {
        w.key(findingKindName(static_cast<FindingKind>(k)))
            .value(counts[k]);
    }
    w.endObject();
    w.key("findings").beginArray();
    for (const Finding &f : findings) {
        w.beginObject();
        w.key("kind").value(findingKindName(f.kind));
        w.key("dpu").value(static_cast<std::uint64_t>(f.dpu));
        w.key("tasklet").value(static_cast<std::uint64_t>(f.tasklet));
        if (f.otherTasklet != noTasklet) {
            w.key("other_tasklet")
                .value(static_cast<std::uint64_t>(f.otherTasklet));
        }
        if (f.space != MemSpace::None) {
            w.key("space").value(memSpaceName(f.space));
            w.key("addr").value(f.addr);
            w.key("bytes").value(static_cast<std::uint64_t>(f.bytes));
        }
        w.key("id").value(static_cast<std::uint64_t>(f.id));
        w.key("detail").value(f.detail);
        w.endObject();
    }
    w.endArray();
    w.key("modelcheck").beginObject();
    w.key("complete").value(complete);
    ExploreStats total;
    for (const SubjectResult &r : subjects) {
        total.states += r.stats.states;
        total.transitions += r.stats.transitions;
        total.sleepSkips += r.stats.sleepSkips;
        total.schedules += r.stats.schedules;
        total.deadlockStates += r.stats.deadlockStates;
    }
    w.key("states").value(total.states);
    w.key("transitions").value(total.transitions);
    w.key("sleep_skips").value(total.sleepSkips);
    w.key("schedules").value(total.schedules);
    w.key("deadlock_states").value(total.deadlockStates);
    w.key("subjects").beginArray();
    for (const SubjectResult &r : subjects) {
        w.beginObject();
        w.key("subject").value(r.subject);
        w.key("skeletons")
            .value(static_cast<std::uint64_t>(r.skeletons));
        w.key("dpu_programs")
            .value(static_cast<std::uint64_t>(r.dpuPrograms));
        w.key("launches")
            .value(static_cast<std::uint64_t>(r.launches));
        w.key("states").value(r.stats.states);
        w.key("transitions").value(r.stats.transitions);
        w.key("sleep_skips").value(r.stats.sleepSkips);
        w.key("schedules").value(r.stats.schedules);
        w.key("max_depth").value(r.stats.maxDepth);
        w.key("complete").value(r.complete);
        w.key("findings").value(r.findings);
        if (r.naiveStates > 0)
            w.key("naive_states").value(r.naiveStates);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    w.endObject();
    return w.str();
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);

    std::vector<SubjectResult> subjects;
    std::vector<Finding> findings;

    for (const core::KernelVariant v : opt.kernelList) {
        const Extraction ex = extractKernelSkeletons(v, opt.extract);
        subjects.push_back(checkExtraction(
            core::kernelVariantName(v), ex, opt, findings));
        printSubject(subjects.back());
    }
    for (const std::string &app : opt.appList) {
        const Extraction ex =
            extractAppSkeletons(app, opt.strategy, opt.extract);
        subjects.push_back(checkExtraction(
            app + "/" + core::mxvStrategyName(opt.strategy), ex, opt,
            findings));
        printSubject(subjects.back());
    }
    for (const LaunchSchedule s : opt.scheduleList) {
        subjects.push_back(checkProtocol(s, opt, findings));
        printSubject(subjects.back());
    }

    std::sort(findings.begin(), findings.end(), findingLess);
    findings.erase(
        std::unique(findings.begin(), findings.end(), findingEquals),
        findings.end());

    bool complete = true;
    for (const SubjectResult &r : subjects)
        complete = complete && r.complete;

    std::printf("modelcheck: %zu subject(s), %zu distinct finding(s)%s\n",
                subjects.size(), findings.size(),
                complete ? "" : ", exploration incomplete");
    for (const Finding &f : findings)
        std::printf("  %s\n", describeFinding(f).c_str());

    if (!opt.jsonOut.empty()) {
        std::ofstream out(opt.jsonOut);
        out << reportJson(subjects, findings, complete) << '\n';
        if (!out) {
            std::fprintf(stderr,
                         "alphapim_modelcheck: cannot write '%s'\n",
                         opt.jsonOut.c_str());
            return 2;
        }
        inform("wrote modelcheck report to %s", opt.jsonOut.c_str());
    }

    if (!findings.empty())
        return 3;
    return complete ? 0 : 4;
}
