/**
 * @file
 * alphapim_bench_diff: statistical differ for bench run records and
 * metrics exports.
 *
 * Loads two JSONL files (either `--json-out` run records or
 * `--metrics-out` registry dumps -- auto-detected), pairs entries by
 * run identity (bench, dataset, variant, dpus, seed), exact-compares
 * the deterministic model metrics, puts a bootstrap confidence
 * interval around the wall-clock samples, and attributes every
 * regression to a dominant bottleneck (transfer-, memory-,
 * pipeline-, compute-, or host-bound).
 *
 * Exit codes: 0 = no regression, 1 = regression beyond threshold,
 * 2 = usage or I/O error.
 *
 * Examples:
 *   alphapim_bench_diff bench/baselines/fig07.jsonl new.jsonl
 *   alphapim_bench_diff --threshold 0.05 --json-report diff.json \
 *       old.jsonl new.jsonl
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "common/cli.hh"
#include "perf/build_info.hh"
#include "perf/diff.hh"

using namespace alphapim;

namespace
{

[[noreturn]] void
printVersion()
{
    std::printf("alphapim_bench_diff %s (%s%s%s)\n", perf::gitSha(),
                perf::buildType(),
                perf::buildFlags()[0] ? ", " : "",
                perf::buildFlags());
    std::exit(0);
}

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: alphapim_bench_diff [options] OLD.jsonl NEW.jsonl\n"
        "  --threshold X       relative regression threshold\n"
        "                      (default 0.02 = 2%%)\n"
        "  --confidence X      wall-clock bootstrap confidence\n"
        "                      (default 0.95)\n"
        "  --resamples N       bootstrap resamples (default 2000)\n"
        "  --seed N            bootstrap RNG seed (default 42)\n"
        "  --wall-gate         let a significant wall-clock\n"
        "                      regression fail the diff (default:\n"
        "                      advisory -- baselines usually come\n"
        "                      from another machine)\n"
        "  --host-gate         let a significant host-observatory\n"
        "                      regression (per-phase host seconds,\n"
        "                      replay/trace throughput, slowdown\n"
        "                      factor) fail the diff (default:\n"
        "                      advisory, like wall-clock)\n"
        "  --version           print git SHA + build type and exit\n"
        "  --json-report FILE  also write a JSON report\n"
        "  --metrics           force metrics-file mode (default:\n"
        "                      auto-detect from the first record)\n"
        "Every flag also accepts the --flag=value spelling.\n"
        "Exit codes: 0 = ok, 1 = regression, 2 = usage/IO error.\n");
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    perf::DiffOptions opt;
    std::string json_report;
    bool force_metrics = false;
    std::vector<std::string> paths;

    CliArgs args(argc, argv,
                 [](const std::string &) { usage(); });
    while (args.next()) {
        const std::string &arg = args.arg();
        if (arg == "--threshold")
            opt.threshold = std::atof(args.value());
        else if (arg == "--confidence")
            opt.confidence = std::atof(args.value());
        else if (arg == "--resamples")
            opt.resamples = static_cast<std::size_t>(
                std::strtoull(args.value(), nullptr, 10));
        else if (arg == "--seed")
            opt.bootstrapSeed =
                std::strtoull(args.value(), nullptr, 10);
        else if (arg == "--wall-gate")
            opt.wallClockGate = true;
        else if (arg == "--host-gate")
            opt.hostGate = true;
        else if (arg == "--version")
            printVersion();
        else if (arg == "--json-report")
            json_report = args.value();
        else if (arg == "--metrics")
            force_metrics = true;
        else if (args.isFlag())
            usage();
        else
            paths.push_back(arg);
    }
    if (paths.size() != 2)
        usage();

    perf::DiffReport report;
    if (force_metrics || perf::looksLikeMetricsFile(paths[0])) {
        std::string error;
        if (!perf::diffMetricsFiles(paths[0], paths[1], opt, report,
                                    &error)) {
            std::fprintf(stderr, "alphapim_bench_diff: %s\n",
                         error.c_str());
            return 2;
        }
    } else {
        perf::RecordSet olds, news;
        std::string error;
        if (!perf::loadRecordSet(paths[0], olds, &error) ||
            !perf::loadRecordSet(paths[1], news, &error)) {
            std::fprintf(stderr, "alphapim_bench_diff: %s\n",
                         error.c_str());
            return 2;
        }
        report = perf::diffRecordSets(olds, news, opt);
    }

    std::fputs(perf::renderReport(report, opt).c_str(), stdout);

    if (!json_report.empty()) {
        std::ofstream out(json_report);
        if (!out) {
            std::fprintf(stderr,
                         "alphapim_bench_diff: cannot write '%s'\n",
                         json_report.c_str());
            return 2;
        }
        out << perf::reportJson(report) << '\n';
    }
    return report.hasRegressions() ? 1 : 0;
}
