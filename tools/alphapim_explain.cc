/**
 * @file
 * alphapim_explain: execution-timeline observatory over the run
 * artifacts the framework already emits.
 *
 * Trace mode (--trace FILE, a --trace-out Chrome trace):
 * reconstructs the per-rank / per-DPU timeline, extracts the launch
 * dependency DAG and its critical path with per-phase attribution
 * (checked against the accounted model time), reports rank/DPU
 * occupancy, the transfer/kernel overlap fraction, and the what-if
 * overlap bounds; --html FILE additionally renders a self-contained
 * HTML page (inline SVG, no external dependencies).
 *
 * Records mode (--records FILE, a --json-out JSONL file): prints the
 * timeline summary block of every run record that carries one
 * (schema v3).
 *
 * --imbalance adds the load-imbalance section: per-DPU skew,
 * straggler attribution and the rebalance bound, plus the modeled
 * roofline position. In trace mode the analytics are recomputed from
 * the per-DPU kernel spans (stall composition and MRAM traffic ride
 * on the span args); in records mode the run record's "imbalance"
 * block (schema v4) is printed. The HTML report always carries the
 * per-DPU heatmap lane and the roofline chart when the trace has the
 * per-DPU data.
 *
 * --host adds the host-observatory section: where the simulator's
 * own wall seconds went (per-phase profiler), the memory footprint,
 * the replay/trace throughput, and the simulation slowdown factor.
 * In trace mode the data comes from the "host_profile" instant
 * events; in records mode from the run record's "host" block (schema
 * v5). The HTML report gains a host-phase lane whenever the trace
 * carries the event.
 *
 * Both modes warn loudly -- on stderr and in the report header --
 * when the artifact records dropped trace spans or dropped
 * distribution samples: the data below is then incomplete.
 *
 * Exit codes: 0 report produced, 1 artifact held no reconstructible
 * launches, 2 usage or I/O error.
 */

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/critical_path.hh"
#include "analysis/imbalance.hh"
#include "common/cli.hh"
#include "common/types.hh"
#include "perf/build_info.hh"
#include "perf/record.hh"
#include "telemetry/host_prof.hh"
#include "telemetry/json.hh"
#include "telemetry/timeline.hh"

using namespace alphapim;

namespace
{

struct ExplainOptions
{
    std::string trace;
    std::string records;
    std::string html;
    bool imbalance = false;
    bool host = false;
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: alphapim_explain --trace FILE [--html FILE] "
        "[--imbalance] [--host]\n"
        "       alphapim_explain --records FILE [--imbalance] "
        "[--host]\n"
        "  --trace FILE    Chrome trace JSON (from --trace-out)\n"
        "  --records FILE  run-record JSONL (from --json-out)\n"
        "  --html FILE     write a self-contained HTML report\n"
        "  --imbalance     add the per-DPU skew / straggler /\n"
        "                  roofline section to the text report\n"
        "  --host          add the host-observatory section: per-\n"
        "                  phase simulator host seconds, memory\n"
        "                  footprint, throughput, slowdown factor\n"
        "  --version       print git SHA + build type and exit\n"
        "Every flag also accepts the --flag=value spelling.\n");
    std::exit(2);
}

ExplainOptions
parseArgs(int argc, char **argv)
{
    ExplainOptions opt;
    CliArgs args(argc, argv,
                 [](const std::string &) { usage(); });
    while (args.next()) {
        const std::string &arg = args.arg();
        if (arg == "--trace")
            opt.trace = args.value();
        else if (arg == "--records")
            opt.records = args.value();
        else if (arg == "--html")
            opt.html = args.value();
        else if (arg == "--imbalance")
            opt.imbalance = true;
        else if (arg == "--host")
            opt.host = true;
        else if (arg == "--version") {
            std::printf("alphapim_explain %s (%s%s%s)\n",
                        perf::gitSha(), perf::buildType(),
                        perf::buildFlags()[0] ? ", " : "",
                        perf::buildFlags());
            std::exit(0);
        } else
            usage();
    }
    if (opt.trace.empty() == opt.records.empty())
        usage();
    return opt;
}

std::string
fmt(const char *format, ...)
{
    char buf[512];
    va_list args;
    va_start(args, format);
    std::vsnprintf(buf, sizeof(buf), format, args);
    va_end(args);
    return buf;
}

double
numberOf(const telemetry::JsonValue &obj, const char *key,
         double fallback = 0.0)
{
    const auto *v = obj.find(key);
    return v && v->isNumber() ? v->asNumber() : fallback;
}

/** Host-observatory data aggregated from the trace's "host_profile"
 * instant events. Per-run publishes are summed (seconds, slots,
 * records, model seconds); memory peaks take the max, so the numbers
 * read as one whole-artifact profile. */
struct TraceHost
{
    bool present = false;
    std::size_t events = 0;
    double phaseSeconds[telemetry::kHostPhaseCount] = {};
    double totalSeconds = 0.0;
    double modelSeconds = 0.0;
    double replaySlots = 0.0;
    double traceRecords = 0.0;
    double taskletTraceBytesPeak = 0.0;
    double peakRssBytes = 0.0;
    double traceDroppedSpans = 0.0;
    double metricsSamplesDropped = 0.0;

    double
    slowdownFactor() const
    {
        return modelSeconds > 0.0 ? totalSeconds / modelSeconds
                                  : 0.0;
    }

    double
    replaySlotsPerSec() const
    {
        const double sec = phaseSeconds[static_cast<unsigned>(
            telemetry::HostPhase::Replay)];
        return sec > 0.0 ? replaySlots / sec : 0.0;
    }

    double
    traceRecordsPerSec() const
    {
        const double sec = phaseSeconds[static_cast<unsigned>(
            telemetry::HostPhase::TraceRecord)];
        return sec > 0.0 ? traceRecords / sec : 0.0;
    }
};

/** Everything read back out of one Chrome trace file. */
struct LoadedTrace
{
    std::vector<telemetry::TimelineSpan> spans;
    TraceHost host;
    double droppedSpans = 0.0; ///< top-level tracer overflow count
};

/** Load a Chrome trace file back into timeline spans plus the
 * host-observatory events and the telemetry-health fields. */
bool
loadTraceSpans(const std::string &path, LoadedTrace &lt,
               std::string *error)
{
    std::vector<telemetry::TimelineSpan> &out = lt.spans;
    std::ifstream in(path);
    if (!in) {
        *error = "cannot open '" + path + "'";
        return false;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    telemetry::JsonValue doc;
    if (!telemetry::JsonValue::parse(buffer.str(), doc, error))
        return false;
    const auto *events = doc.find("traceEvents");
    if (!events || !events->isArray()) {
        *error = "no traceEvents array -- not a Chrome trace";
        return false;
    }
    lt.droppedSpans = numberOf(doc, "droppedSpans");
    for (const auto &e : events->items()) {
        if (!e.isObject())
            continue;
        const auto *ph = e.find("ph");
        if (!ph || !ph->isString())
            continue;
        if (ph->asString() == "i") {
            const auto *name = e.find("name");
            const auto *args = e.find("args");
            if (!name || !name->isString() ||
                name->asString() != "host_profile" || !args ||
                !args->isObject())
                continue;
            TraceHost &h = lt.host;
            h.present = true;
            ++h.events;
            for (unsigned p = 0; p < telemetry::kHostPhaseCount;
                 ++p) {
                const std::string key =
                    std::string(telemetry::hostPhaseName(
                        static_cast<telemetry::HostPhase>(p))) +
                    "_seconds";
                h.phaseSeconds[p] += numberOf(*args, key.c_str());
            }
            h.totalSeconds += numberOf(*args, "total_seconds");
            h.modelSeconds += numberOf(*args, "model_seconds");
            h.replaySlots += numberOf(*args, "replay_slots");
            h.traceRecords += numberOf(*args, "trace_records");
            h.taskletTraceBytesPeak =
                std::max(h.taskletTraceBytesPeak,
                         numberOf(*args, "tasklet_trace_bytes_peak"));
            h.peakRssBytes = std::max(
                h.peakRssBytes, numberOf(*args, "peak_rss_bytes"));
            h.traceDroppedSpans =
                std::max(h.traceDroppedSpans,
                         numberOf(*args, "trace_dropped_spans"));
            h.metricsSamplesDropped = std::max(
                h.metricsSamplesDropped,
                numberOf(*args, "metrics_samples_dropped"));
            continue;
        }
        if (ph->asString() != "X")
            continue;
        telemetry::TimelineSpan s;
        if (const auto *v = e.find("name"); v && v->isString())
            s.name = v->asString();
        if (const auto *v = e.find("cat"); v && v->isString())
            s.category = v->asString();
        s.pid = static_cast<std::uint32_t>(numberOf(e, "pid"));
        s.tid = static_cast<std::uint32_t>(numberOf(e, "tid"));
        s.start = numberOf(e, "ts") / 1e6; // micros -> seconds
        s.duration = numberOf(e, "dur") / 1e6;
        if (const auto *args = e.find("args");
            args && args->isObject()) {
            s.bytes = numberOf(*args, "bytes");
            s.cycles = numberOf(*args, "cycles");
            s.issued = numberOf(*args, "issued");
            s.stallMemory = numberOf(*args, "stall_memory");
            s.stallRevolver = numberOf(*args, "stall_revolver");
            s.stallRfHazard = numberOf(*args, "stall_rf_hazard");
            s.stallSync = numberOf(*args, "stall_sync");
            s.instr = numberOf(*args, "instr");
            s.mramBytes = numberOf(*args, "mram_bytes");
        }
        out.push_back(std::move(s));
    }
    return true;
}

/**
 * Per-launch imbalance recomputed from the trace's per-DPU kernel
 * spans: spans sharing a start time belong to one launch (the
 * launcher emits the fleet's spans from a common origin), and the
 * kernel name comes from the launch window containing that start.
 * Two trace-side caveats vs the in-process observer: idle DPUs are
 * not traced, so the skew is over active DPUs only, and the roofline
 * ceilings use the default DpuConfig because the machine shape is
 * not recorded in the trace.
 */
struct TraceImbalance
{
    std::vector<analysis::LaunchImbalance> launches;
    double stragglerFactor = 1.0; ///< summed max / summed mean cycles
    double leveledSeconds = 0.0;  ///< summed mean cycles / clock
    double actualSeconds = 0.0;   ///< summed max cycles / clock
};

TraceImbalance
computeTraceImbalance(const telemetry::Timeline &tl)
{
    std::map<Seconds,
             std::vector<std::pair<unsigned,
                                   const telemetry::TimelineSpan *>>>
        groups;
    for (const auto &[dpu, spans] : tl.dpuSpans)
        for (const telemetry::TimelineSpan &s : spans)
            groups[s.start].emplace_back(dpu, &s);

    TraceImbalance out;
    const upmem::DpuConfig cfg;
    double sum_max = 0.0;
    double sum_mean = 0.0;
    for (const auto &[start, members] : groups) {
        std::vector<upmem::DpuProfile> profiles;
        std::vector<unsigned> track_of;
        profiles.reserve(members.size());
        for (const auto &[dpu, s] : members) {
            upmem::DpuProfile p;
            p.totalCycles = static_cast<Cycles>(s->cycles);
            p.issuedCycles = static_cast<Cycles>(s->issued);
            p.stallCycles[static_cast<std::size_t>(
                upmem::StallReason::Memory)] =
                static_cast<Cycles>(s->stallMemory);
            p.stallCycles[static_cast<std::size_t>(
                upmem::StallReason::Revolver)] =
                static_cast<Cycles>(s->stallRevolver);
            p.stallCycles[static_cast<std::size_t>(
                upmem::StallReason::RfHazard)] =
                static_cast<Cycles>(s->stallRfHazard);
            p.stallCycles[static_cast<std::size_t>(
                upmem::StallReason::Sync)] =
                static_cast<Cycles>(s->stallSync);
            // The trace keeps only the instruction total; the class
            // split matters to neither the skew nor the roofline.
            p.instrByClass[0] =
                static_cast<std::uint64_t>(s->instr);
            p.mramReadBytes = static_cast<Bytes>(s->mramBytes);
            profiles.push_back(p);
            track_of.push_back(dpu);
        }
        std::string kernel;
        for (const telemetry::LaunchWindow &l : tl.launches) {
            if (l.start <= start && start <= l.end())
                kernel = l.kernel;
        }
        analysis::LaunchImbalance li =
            analysis::computeLaunchImbalance(kernel, profiles, {},
                                             cfg);
        // Remap the straggler from profile index to DPU track id.
        if (li.stragglerDpu < track_of.size())
            li.stragglerDpu = track_of[li.stragglerDpu];
        sum_max += li.cycles.max;
        sum_mean += li.cycles.mean;
        out.launches.push_back(std::move(li));
    }
    if (sum_mean > 0.0)
        out.stragglerFactor = sum_max / sum_mean;
    out.leveledSeconds = sum_mean / cfg.clockHz;
    out.actualSeconds = sum_max / cfg.clockHz;
    return out;
}

/** Everything the reports are rendered from. */
struct Analysis
{
    telemetry::Timeline timeline;
    telemetry::TimelineStats stats;
    analysis::CriticalPath path;
    analysis::WhatIf whatif;
    TraceImbalance imbalance;
    TraceHost host;
    double accounted = 0.0;
    double attributionError = 0.0; ///< |path - accounted| / accounted

    /** Telemetry-health warnings; rendered in the report header and
     * echoed to stderr (dropped spans / dropped samples). */
    std::vector<std::string> warnings;
};

Analysis
analyze(LoadedTrace lt)
{
    Analysis a;
    a.host = lt.host;
    const double dropped_spans =
        std::max(lt.droppedSpans, lt.host.traceDroppedSpans);
    if (dropped_spans > 0.0) {
        a.warnings.push_back(fmt(
            "WARNING: the tracer dropped %.0f spans (buffer "
            "overflow) -- the timeline below is incomplete",
            dropped_spans));
    }
    if (lt.host.metricsSamplesDropped > 0.0) {
        a.warnings.push_back(fmt(
            "WARNING: %.0f distribution samples were dropped past "
            "the reservoir cap -- percentile metrics are "
            "approximate",
            lt.host.metricsSamplesDropped));
    }
    std::vector<telemetry::TimelineSpan> spans =
        std::move(lt.spans);
    a.timeline = telemetry::buildTimeline(spans);
    a.stats = telemetry::computeStats(a.timeline);
    a.path = analysis::computeCriticalPath(
        analysis::buildLaunchDag(a.timeline));
    a.whatif = analysis::estimateOverlap(
        analysis::launchPhases(a.timeline));
    a.imbalance = computeTraceImbalance(a.timeline);
    a.accounted = a.timeline.accountedSeconds();
    a.attributionError = a.accounted > 0.0
        ? std::abs(a.path.length - a.accounted) / a.accounted
        : 0.0;
    return a;
}

std::string
textReport(const std::string &source, const Analysis &a)
{
    const auto &s = a.stats;
    std::string out;
    out += fmt("alphapim-explain: %s\n", source.c_str());
    for (const std::string &w : a.warnings)
        out += w + "\n";
    out += fmt(
        "window: %.3f ms model time -- %zu launches, %zu rank "
        "tracks, %zu DPU tracks\n",
        toMillis(s.windowSeconds), s.launches, s.ranks, s.dpus);

    out += fmt("critical path: %.3f ms across %zu nodes\n",
               toMillis(a.path.length), a.path.nodes.size());
    for (std::size_t p = 0; p < analysis::numPathPhases; ++p) {
        const auto phase = static_cast<analysis::PathPhase>(p);
        const double seconds = a.path.phaseSeconds[p];
        if (seconds <= 0.0 && phase == analysis::PathPhase::Other)
            continue;
        out += fmt("  %-9s %8.3f ms  (%5.1f%% of the path)\n",
                   analysis::pathPhaseName(phase), toMillis(seconds),
                   a.path.phaseFraction(phase) * 100.0);
    }
    out += fmt(
        "attribution: path %.3f ms vs accounted launch time %.3f "
        "ms -- %.2f%% apart (%s)\n",
        toMillis(a.path.length), toMillis(a.accounted),
        a.attributionError * 100.0,
        a.attributionError <= 0.01 ? "OK" : "MISMATCH");

    out += fmt(
        "rank occupancy: mean %.1f%%, min %.1f%%; DPU occupancy "
        "mean %.2f%%\n",
        s.rankOccupancyMean * 100.0, s.rankOccupancyMin * 100.0,
        s.dpuOccupancyMean * 100.0);
    for (const auto &[rank, frac] : s.rankOccupancy)
        out += fmt("  rank %-3u busy %5.1f%% of the window\n", rank,
                   frac * 100.0);
    out += fmt(
        "transfer/kernel overlap: %.2f (transfers busy %.3f ms, "
        "kernels busy %.3f ms); idle fraction %.2f\n",
        s.overlapFraction, toMillis(s.transferBusySeconds),
        toMillis(s.kernelBusySeconds), s.idleFraction);

    const auto &w = a.whatif;
    out += "what-if overlap bounds (speedup ceilings vs the "
           "serial schedule):\n";
    out += fmt(
        "  rank overlap      %.3f ms  (%.2fx)  kernels hidden "
        "under neighbouring ranks' transfers\n",
        toMillis(w.rankOverlapSeconds), w.rankOverlapSpeedup());
    out += fmt(
        "  double buffering  %.3f ms  (%.2fx)  next input load "
        "hidden under the host merge\n",
        toMillis(w.doubleBufferSeconds), w.doubleBufferSpeedup());
    out += fmt(
        "  combined pipeline %.3f ms  (%.2fx)  throughput-bound "
        "on the busiest resource\n",
        toMillis(w.combinedSeconds), w.combinedSpeedup());
    return out;
}

/** --imbalance text section of the trace report: run aggregate, the
 * worst launch's straggler attribution, and the roofline position. */
std::string
imbalanceReport(const Analysis &a)
{
    const TraceImbalance &ti = a.imbalance;
    std::string out;
    if (ti.launches.empty()) {
        out += "imbalance: no per-DPU kernel spans in the trace "
               "(recorded before the heatmap args existed?)\n";
        return out;
    }
    const analysis::LaunchImbalance *worst = &ti.launches.front();
    for (const analysis::LaunchImbalance &li : ti.launches) {
        if (li.stragglerCyclesOverMean >
            worst->stragglerCyclesOverMean)
            worst = &li;
    }
    out += fmt(
        "imbalance: %zu launches, run straggler factor %.2fx\n",
        ti.launches.size(), ti.stragglerFactor);
    out += fmt(
        "  worst launch%s%s: cycles gini %.2f, cov %.2f, p99/mean "
        "%.2fx over %u DPUs\n",
        worst->kernel.empty() ? "" : " ",
        worst->kernel.c_str(), worst->cycles.gini,
        worst->cycles.cov, worst->cycles.p99OverMean(),
        worst->dpus);
    std::string straggler = fmt(
        "  straggler: DPU %u: %.1fx mean cycles",
        worst->stragglerDpu, worst->stragglerCyclesOverMean);
    if (!worst->stragglerStall.empty()) {
        straggler += fmt(", %.0f%% %s-stall",
                         worst->stragglerStallFraction * 100.0,
                         worst->stragglerStall.c_str());
    }
    if (worst->stragglerNnzOverMean > 0.0) {
        straggler += fmt(", holds %.1fx mean nnz",
                         worst->stragglerNnzOverMean);
    }
    out += straggler + "\n";
    out += fmt(
        "  rebalance bound: leveled kernel time %.3f ms vs %.3f ms "
        "actual (%.2fx available)\n",
        toMillis(ti.leveledSeconds), toMillis(ti.actualSeconds),
        ti.leveledSeconds > 0.0
            ? ti.actualSeconds / ti.leveledSeconds
            : 1.0);
    const analysis::RooflinePoint &rp = worst->roofline;
    out += fmt(
        "  roofline (worst launch): %.2f instr/byte (ridge %.2f) "
        "-- %s-bound; %.3g ops/s achieved vs %.3g pipeline "
        "ceiling\n",
        rp.opIntensity, rp.ridgeIntensity,
        rp.memoryBound ? "memory" : "compute",
        rp.achievedOpsPerSec, rp.pipelineCeilingOpsPerSec);
    out += "  note: trace-side skew covers traced (active) DPUs "
           "only; roofline ceilings assume the default machine "
           "config\n";
    return out;
}

/** --host text section: per-phase host/model breakdown, throughput,
 * memory footprint and the simulation slowdown factor. */
std::string
hostReport(const TraceHost &h)
{
    std::string out;
    if (!h.present) {
        out += "host profile: no host_profile events in the trace "
               "(recorded with --host-prof=off or by an older "
               "build?)\n";
        return out;
    }
    out += fmt(
        "host profile: %.3f s simulator wall vs %.3g s model time",
        h.totalSeconds, h.modelSeconds);
    if (h.slowdownFactor() > 0.0)
        out += fmt(" -- slowdown %.1fx", h.slowdownFactor());
    out += fmt(" (%zu profile events)\n", h.events);
    for (unsigned p = 0; p < telemetry::kHostPhaseCount; ++p) {
        out += fmt("  %-15s %9.3f ms  (%5.1f%% of host wall)\n",
                   telemetry::hostPhaseName(
                       static_cast<telemetry::HostPhase>(p)),
                   toMillis(h.phaseSeconds[p]),
                   h.totalSeconds > 0.0
                       ? h.phaseSeconds[p] / h.totalSeconds * 100.0
                       : 0.0);
    }
    out += fmt(
        "  throughput: %.3g replayed slots/s (%.3g slots), %.3g "
        "trace records/s (%.3g records)\n",
        h.replaySlotsPerSec(), h.replaySlots,
        h.traceRecordsPerSec(), h.traceRecords);
    out += fmt(
        "  memory: peak RSS %.1f MB, tasklet-trace high water "
        "%.2f MB\n",
        h.peakRssBytes / 1e6, h.taskletTraceBytesPeak / 1e6);
    return out;
}

/** Host-phase colors, indexed by telemetry::HostPhase. */
constexpr const char *kHostPhaseColors
    [telemetry::kHostPhaseCount] = {
        "#0ea5e9", // partition_build: sky
        "#f59e0b", // trace_record: amber
        "#16a34a", // replay: green
        "#a3e635", // profile_fold: lime
        "#3b82f6", // transfer_model: blue
        "#8b5cf6", // host_merge: violet
        "#dc2626", // analysis: red
};

/** Host-phase lane: one proportional stacked bar of where the
 * simulator's own wall time went. Empty when the trace carries no
 * host_profile events. */
std::string
hostLaneSvg(const TraceHost &h)
{
    if (!h.present || h.totalSeconds <= 0.0)
        return "";
    constexpr double width = 1000.0;
    constexpr double labelW = 90.0;
    constexpr double rowH = 18.0;
    const double chartW = width - labelW - 10.0;
    std::string svg;
    svg += fmt("<svg id=\"hostlane\" viewBox=\"0 0 %.0f %.0f\" "
               "xmlns=\"http://www.w3.org/2000/svg\" "
               "font-family=\"monospace\" font-size=\"11\">\n",
               width, rowH + 8.0);
    svg += fmt("<text x=\"4\" y=\"%.1f\">host</text>\n",
               4.0 + rowH - 5.0);
    double x = labelW;
    for (unsigned p = 0; p < telemetry::kHostPhaseCount; ++p) {
        const double frac = h.phaseSeconds[p] / h.totalSeconds;
        if (frac <= 0.0)
            continue;
        const double w = frac * chartW;
        const char *name = telemetry::hostPhaseName(
            static_cast<telemetry::HostPhase>(p));
        svg += fmt("<rect id=\"host-%s\" x=\"%.2f\" y=\"4\" "
                   "width=\"%.2f\" height=\"%.0f\" fill=\"%s\">"
                   "<title>%s: %.3f ms (%.1f%% of host "
                   "wall)</title></rect>\n",
                   name, x, std::max(0.5, w), rowH - 4.0,
                   kHostPhaseColors[p], name,
                   toMillis(h.phaseSeconds[p]), frac * 100.0);
        x += w;
    }
    svg += "</svg>\n";
    return svg;
}

const char *
phaseColor(const std::string &name)
{
    if (name == "scatter" || name == "broadcast")
        return "#3b82f6"; // load-side transfers: blue
    if (name == "gather")
        return "#8b5cf6"; // retrieve transfers: violet
    if (name == "kernel")
        return "#16a34a"; // kernels: green
    return "#9ca3af";
}

std::string
htmlEscape(const std::string &s)
{
    std::string out;
    for (const char c : s) {
        switch (c) {
          case '<':
            out += "&lt;";
            break;
          case '>':
            out += "&gt;";
            break;
          case '&':
            out += "&amp;";
            break;
          default:
            out += c;
        }
    }
    return out;
}

/**
 * Per-DPU heatmap lane: one bar per traced DPU, length proportional
 * to its total kernel cycles across the run, segmented by where the
 * dispatch slots went (issued work + the four stall reasons); the
 * unattributed remainder stays background-grey. Empty string when
 * the trace carries no per-DPU cycle args (older traces).
 */
std::string
heatmapSvg(const telemetry::Timeline &tl)
{
    struct DpuAgg
    {
        double cycles = 0.0;
        double issued = 0.0;
        double stalls[4] = {};
    };
    std::vector<std::pair<unsigned, DpuAgg>> lanes;
    double max_cycles = 0.0;
    for (const auto &[dpu, spans] : tl.dpuSpans) {
        DpuAgg agg;
        for (const telemetry::TimelineSpan &s : spans) {
            agg.cycles += s.cycles;
            agg.issued += s.issued;
            agg.stalls[0] += s.stallMemory;
            agg.stalls[1] += s.stallRevolver;
            agg.stalls[2] += s.stallRfHazard;
            agg.stalls[3] += s.stallSync;
        }
        max_cycles = std::max(max_cycles, agg.cycles);
        lanes.emplace_back(dpu, agg);
    }
    if (max_cycles <= 0.0)
        return "";

    constexpr double width = 1000.0;
    constexpr double labelW = 90.0;
    constexpr double rowH = 12.0;
    const double chartW = width - labelW - 10.0;
    const double height =
        static_cast<double>(lanes.size()) * rowH + 8.0;
    const struct
    {
        const char *name;
        const char *color;
    } segments[5] = {
        {"issued", "#16a34a"},    {"memory", "#dc2626"},
        {"revolver", "#f59e0b"},  {"rf-hazard", "#6366f1"},
        {"sync", "#8b5cf6"},
    };

    std::string svg;
    svg += fmt("<svg id=\"heatmap\" viewBox=\"0 0 %.0f %.0f\" "
               "xmlns=\"http://www.w3.org/2000/svg\" "
               "font-family=\"monospace\" font-size=\"10\">\n",
               width, height);
    for (std::size_t r = 0; r < lanes.size(); ++r) {
        const auto &[dpu, agg] = lanes[r];
        const double y = 4.0 + static_cast<double>(r) * rowH;
        svg += fmt("<text x=\"4\" y=\"%.1f\">dpu %u</text>\n",
                   y + rowH - 3.0, dpu);
        const double bar = agg.cycles / max_cycles * chartW;
        svg += fmt("<rect id=\"heat-%u-total\" x=\"%.1f\" "
                   "y=\"%.1f\" width=\"%.2f\" height=\"%.0f\" "
                   "fill=\"#e5e7eb\"><title>dpu %u: %.0f "
                   "cycles</title></rect>\n",
                   dpu, labelW, y, std::max(0.5, bar), rowH - 3.0,
                   dpu, agg.cycles);
        double x = labelW;
        const double parts[5] = {agg.issued, agg.stalls[0],
                                 agg.stalls[1], agg.stalls[2],
                                 agg.stalls[3]};
        for (int p = 0; p < 5; ++p) {
            if (parts[p] <= 0.0 || agg.cycles <= 0.0)
                continue;
            const double w = parts[p] / agg.cycles * bar;
            svg += fmt("<rect id=\"heat-%u-%s\" x=\"%.2f\" "
                       "y=\"%.1f\" width=\"%.2f\" height=\"%.0f\" "
                       "fill=\"%s\"><title>dpu %u %s: %.0f%% of "
                       "cycles</title></rect>\n",
                       dpu, segments[p].name, x, y,
                       std::max(0.25, w), rowH - 3.0,
                       segments[p].color, dpu, segments[p].name,
                       parts[p] / agg.cycles * 100.0);
            x += w;
        }
    }
    svg += "</svg>\n";
    return svg;
}

/**
 * Log-log roofline chart: the pipeline and MRAM-bandwidth ceilings
 * of the default machine config with one point per launch (green =
 * compute-bound, red = memory-bound). Empty when no launch carries
 * MRAM traffic (operational intensity undefined).
 */
std::string
rooflineSvg(const TraceImbalance &ti)
{
    double pipe = 0.0;
    double ridge = 0.0;
    for (const analysis::LaunchImbalance &li : ti.launches) {
        pipe = std::max(pipe, li.roofline.pipelineCeilingOpsPerSec);
        ridge = li.roofline.ridgeIntensity;
    }
    bool any_point = false;
    for (const analysis::LaunchImbalance &li : ti.launches)
        any_point = any_point || li.roofline.opIntensity > 0.0;
    if (!any_point || pipe <= 0.0 || ridge <= 0.0)
        return "";

    constexpr double width = 520.0;
    constexpr double height = 300.0;
    constexpr double left = 70.0;
    constexpr double top = 20.0;
    constexpr double plotW = 430.0;
    constexpr double plotH = 250.0;
    // Fixed log-log window: 4 intensity decades around the ridge
    // region, 5 throughput decades below 10x the pipeline ceiling.
    const double y_top = pipe * 10.0;
    auto lx = [&](double v) {
        const double l =
            std::log10(std::max(1e-2, std::min(1e2, v)));
        return left + (l + 2.0) / 4.0 * plotW;
    };
    auto ly = [&](double v) {
        const double l = std::log10(
            std::max(y_top * 1e-5, std::min(y_top, v)));
        return top + (std::log10(y_top) - l) / 5.0 * plotH;
    };

    std::string svg;
    svg += fmt("<svg id=\"roofline\" viewBox=\"0 0 %.0f %.0f\" "
               "xmlns=\"http://www.w3.org/2000/svg\" "
               "font-family=\"monospace\" font-size=\"10\">\n",
               width, height);
    svg += fmt("<rect x=\"%.0f\" y=\"%.0f\" width=\"%.0f\" "
               "height=\"%.0f\" fill=\"none\" "
               "stroke=\"#9ca3af\"/>\n",
               left, top, plotW, plotH);
    // Bandwidth ceiling: the diagonal through (ridge, pipe).
    const double bw = pipe / ridge; // fleet bytes/s x 1 instr/byte
    svg += fmt("<polyline id=\"roof-ceiling\" points=\"%.1f,%.1f "
               "%.1f,%.1f %.1f,%.1f\" fill=\"none\" "
               "stroke=\"#111827\" stroke-width=\"1.5\"/>\n",
               lx(1e-2), ly(1e-2 * bw), lx(ridge), ly(pipe),
               lx(1e2), ly(pipe));
    svg += fmt("<text x=\"%.1f\" y=\"%.1f\">ridge %.2f "
               "instr/byte</text>\n",
               lx(ridge) + 4.0, ly(pipe) - 6.0, ridge);
    svg += fmt("<text x=\"%.0f\" y=\"%.0f\">instructions per MRAM "
               "byte (log)</text>\n",
               left + 110.0, top + plotH + 16.0);
    svg += fmt("<text x=\"8\" y=\"%.0f\" "
               "transform=\"rotate(-90 8 %.0f)\">ops/s "
               "(log)</text>\n",
               top + plotH - 60.0, top + plotH - 60.0);
    for (std::size_t k = 0; k < ti.launches.size(); ++k) {
        const analysis::RooflinePoint &rp =
            ti.launches[k].roofline;
        if (rp.opIntensity <= 0.0)
            continue;
        svg += fmt(
            "<circle id=\"roof-%zu\" cx=\"%.1f\" cy=\"%.1f\" "
            "r=\"3.5\" fill=\"%s\" fill-opacity=\"0.7\"><title>%s: "
            "%.2f instr/byte, %.3g ops/s (%s-bound)</title>"
            "</circle>\n",
            k, lx(rp.opIntensity), ly(rp.achievedOpsPerSec),
            rp.memoryBound ? "#dc2626" : "#16a34a",
            htmlEscape(ti.launches[k].kernel).c_str(),
            rp.opIntensity, rp.achievedOpsPerSec,
            rp.memoryBound ? "memory" : "compute");
    }
    svg += "</svg>\n";
    return svg;
}

/** Self-contained HTML page: summary <pre> + inline SVG Gantt of the
 * rank tracks, a bounded set of DPU tracks, and the launch spine. */
std::string
htmlReport(const std::string &source, const Analysis &a)
{
    constexpr double width = 1000.0;
    constexpr double rowH = 18.0;
    constexpr double labelW = 90.0;
    constexpr unsigned maxDpuRows = 16;

    const telemetry::Timeline &tl = a.timeline;
    const double t0 = tl.windowStart;
    const double span = tl.window() > 0.0 ? tl.window() : 1.0;
    auto x_of = [&](double t) {
        return labelW + (t - t0) / span * (width - labelW - 10.0);
    };

    struct Row
    {
        std::string label;
        const std::vector<telemetry::TimelineSpan> *spans;
    };
    std::vector<Row> rows;
    for (const auto &[rank, spans] : tl.rankSpans)
        rows.push_back({"rank " + std::to_string(rank), &spans});
    unsigned dpu_rows = 0;
    for (const auto &[dpu, spans] : tl.dpuSpans) {
        if (dpu_rows++ >= maxDpuRows)
            break;
        rows.push_back({"dpu " + std::to_string(dpu), &spans});
    }

    std::string svg;
    const double launch_row_y = 4.0;
    const double tracks_y = launch_row_y + rowH + 6.0;
    const double height =
        tracks_y + static_cast<double>(rows.size()) * rowH + 8.0;
    svg += fmt("<svg viewBox=\"0 0 %.0f %.0f\" "
               "xmlns=\"http://www.w3.org/2000/svg\" "
               "font-family=\"monospace\" font-size=\"11\">\n",
               width, height);

    // Launch spine: one bar per launch, phase-colored segments.
    // Element ids are stable across runs (index-derived, emitted in
    // deterministic map order) so the report diffs byte-for-byte.
    svg += fmt("<text x=\"4\" y=\"%.1f\">launches</text>\n",
               launch_row_y + rowH - 5.0);
    const char *spine_colors[4] = {"#3b82f6", "#16a34a", "#8b5cf6",
                                   "#f59e0b"};
    for (std::size_t k = 0; k < tl.launches.size(); ++k) {
        const telemetry::LaunchWindow &l = tl.launches[k];
        double t = l.start;
        const double parts[4] = {l.load, l.kernel_time, l.retrieve,
                                 l.merge};
        for (int p = 0; p < 4; ++p) {
            if (parts[p] <= 0.0)
                continue;
            svg += fmt("<rect id=\"spine-%zu-%s\" x=\"%.2f\" "
                       "y=\"%.1f\" width=\"%.2f\" "
                       "height=\"%.0f\" fill=\"%s\"><title>%s "
                       "%s %.3f ms</title></rect>\n",
                       k,
                       analysis::pathPhaseName(
                           static_cast<analysis::PathPhase>(p)),
                       x_of(t), launch_row_y,
                       std::max(0.5, x_of(t + parts[p]) - x_of(t)),
                       rowH - 4.0, spine_colors[p],
                       htmlEscape(l.kernel).c_str(),
                       analysis::pathPhaseName(
                           static_cast<analysis::PathPhase>(p)),
                       toMillis(parts[p]));
            t += parts[p];
        }
    }

    for (std::size_t r = 0; r < rows.size(); ++r) {
        const double y =
            tracks_y + static_cast<double>(r) * rowH;
        svg += fmt("<text x=\"4\" y=\"%.1f\">%s</text>\n",
                   y + rowH - 5.0,
                   htmlEscape(rows[r].label).c_str());
        for (std::size_t i = 0; i < rows[r].spans->size(); ++i) {
            const telemetry::TimelineSpan &s = (*rows[r].spans)[i];
            svg += fmt(
                "<rect id=\"track-%zu-%zu\" x=\"%.2f\" y=\"%.1f\" "
                "width=\"%.2f\" "
                "height=\"%.0f\" fill=\"%s\"><title>%s %.3f "
                "ms</title></rect>\n",
                r, i, x_of(s.start), y,
                std::max(0.5, x_of(s.end()) - x_of(s.start)),
                rowH - 4.0, phaseColor(s.name),
                htmlEscape(s.name).c_str(), toMillis(s.duration));
        }
    }
    svg += "</svg>\n";

    std::string html;
    html += "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
            "<title>alphapim-explain</title>\n<style>\n"
            "body { font-family: sans-serif; margin: 2em; }\n"
            "pre { background: #f3f4f6; padding: 1em; }\n"
            ".legend span { padding: 0 0.6em; }\n"
            "</style></head><body>\n";
    html += "<h1>Execution timeline: " + htmlEscape(source) +
            "</h1>\n";
    html += "<div class=\"legend\">"
            "<span style=\"background:#3b82f6;color:#fff\">load / "
            "scatter</span>"
            "<span style=\"background:#16a34a;color:#fff\">kernel"
            "</span>"
            "<span style=\"background:#8b5cf6;color:#fff\">retrieve "
            "/ gather</span>"
            "<span style=\"background:#f59e0b;color:#fff\">merge"
            "</span></div>\n";
    html += svg;
    const std::string host_lane = hostLaneSvg(a.host);
    if (!host_lane.empty()) {
        html += "<h2>Host phases (simulator wall time)</h2>\n"
                "<div class=\"legend\">";
        for (unsigned p = 0; p < telemetry::kHostPhaseCount; ++p) {
            html += fmt("<span style=\"background:%s;color:#fff\">"
                        "%s</span>",
                        kHostPhaseColors[p],
                        telemetry::hostPhaseName(
                            static_cast<telemetry::HostPhase>(p)));
        }
        html += "</div>\n";
        html += host_lane;
    }
    const std::string heat = heatmapSvg(tl);
    if (!heat.empty()) {
        html += "<h2>Per-DPU load heatmap</h2>\n"
                "<div class=\"legend\">"
                "<span style=\"background:#16a34a;color:#fff\">"
                "issued</span>"
                "<span style=\"background:#dc2626;color:#fff\">"
                "memory stall</span>"
                "<span style=\"background:#f59e0b;color:#fff\">"
                "revolver stall</span>"
                "<span style=\"background:#6366f1;color:#fff\">"
                "rf-hazard stall</span>"
                "<span style=\"background:#8b5cf6;color:#fff\">"
                "sync stall</span></div>\n";
        html += heat;
    }
    const std::string roof = rooflineSvg(a.imbalance);
    if (!roof.empty()) {
        html += "<h2>Modeled roofline</h2>\n";
        html += roof;
        html += "<p>Ceilings assume the default machine config; "
                "the trace does not record clock or DMA width."
                "</p>\n";
    }
    html += "<h2>Report</h2>\n<pre>" +
            htmlEscape(textReport(source, a)) + "</pre>\n";
    if (!a.imbalance.launches.empty()) {
        html += "<h2>Imbalance</h2>\n<pre>" +
                htmlEscape(imbalanceReport(a)) + "</pre>\n";
    }
    if (a.host.present) {
        html += "<h2>Host profile</h2>\n<pre>" +
                htmlEscape(hostReport(a.host)) + "</pre>\n";
    }
    html += "</body></html>\n";
    return html;
}

int
runTraceMode(const ExplainOptions &opt)
{
    LoadedTrace lt;
    std::string error;
    if (!loadTraceSpans(opt.trace, lt, &error)) {
        std::fprintf(stderr, "alphapim-explain: %s\n",
                     error.c_str());
        return 2;
    }
    const Analysis a = analyze(std::move(lt));
    for (const std::string &w : a.warnings)
        std::fprintf(stderr, "alphapim-explain: %s\n", w.c_str());
    if (a.timeline.launches.empty()) {
        std::fprintf(stderr,
                     "alphapim-explain: no launches found in '%s' "
                     "-- was the trace recorded with this tool "
                     "chain?\n",
                     opt.trace.c_str());
        return 1;
    }
    std::fputs(textReport(opt.trace, a).c_str(), stdout);
    if (opt.imbalance)
        std::fputs(imbalanceReport(a).c_str(), stdout);
    if (opt.host)
        std::fputs(hostReport(a.host).c_str(), stdout);
    if (!opt.html.empty()) {
        std::ofstream out(opt.html);
        if (!out) {
            std::fprintf(stderr,
                         "alphapim-explain: cannot create '%s'\n",
                         opt.html.c_str());
            return 2;
        }
        out << htmlReport(opt.trace, a);
        std::printf("wrote HTML report to %s\n", opt.html.c_str());
    }
    return 0;
}

int
runRecordsMode(const ExplainOptions &opt)
{
    perf::RecordSet set;
    std::string error;
    if (!perf::loadRecordSet(opt.records, set, &error)) {
        std::fprintf(stderr, "alphapim-explain: %s\n",
                     error.c_str());
        return 2;
    }
    std::printf("alphapim-explain: %s -- %zu records\n",
                opt.records.c_str(), set.records.size());
    std::size_t with_timeline = 0;
    std::size_t with_imbalance = 0;
    std::size_t with_host = 0;
    for (const perf::RunRecord &r : set.records) {
        if (opt.host && r.hasHost) {
            ++with_host;
            const perf::HostSummary &h = r.host;
            const struct
            {
                const char *name;
                double seconds;
            } host_phases[] = {
                {"partition_build", h.partitionBuildSeconds},
                {"trace_record", h.traceRecordSeconds},
                {"replay", h.replaySeconds},
                {"profile_fold", h.profileFoldSeconds},
                {"transfer_model", h.transferModelSeconds},
                {"host_merge", h.hostMergeSeconds},
                {"analysis", h.analysisSeconds},
            };
            const auto *dominant = &host_phases[0];
            for (const auto &hp : host_phases)
                if (hp.seconds > dominant->seconds)
                    dominant = &hp;
            std::printf(
                "  host %s: %.3g s host wall, slowdown %.1fx; "
                "dominant phase %s (%.0f%% of wall)\n",
                r.key.str().c_str(), h.totalSeconds,
                h.slowdownFactor, dominant->name,
                h.totalSeconds > 0.0
                    ? dominant->seconds / h.totalSeconds * 100.0
                    : 0.0);
            std::string phases = "    phases:";
            for (const auto &hp : host_phases)
                phases +=
                    fmt(" %s %.3g s", hp.name, hp.seconds);
            std::printf("%s\n", phases.c_str());
            std::printf(
                "    throughput: %.3g replayed slots/s (%llu "
                "slots), %.3g trace records/s (%llu records)\n",
                h.replaySlotsPerSec,
                static_cast<unsigned long long>(h.replaySlots),
                h.traceRecordsPerSec,
                static_cast<unsigned long long>(h.traceRecords));
            std::printf(
                "    memory: peak RSS %.1f MB, tasklet-trace high "
                "water %.2f MB, tracer %.2f MB, metrics %.2f MB\n",
                static_cast<double>(h.peakRssBytes) / 1e6,
                static_cast<double>(h.taskletTraceBytesPeak) / 1e6,
                static_cast<double>(h.tracerBytes) / 1e6,
                static_cast<double>(h.metricsBytes) / 1e6);
        }
        if (r.hasTimeline) {
            ++with_timeline;
            const perf::TimelineSummary &t = r.timeline;
            std::printf(
                "  %s: window %.3f ms, %llu launches, overlap "
                "%.2f, rank occupancy mean %.1f%%, transfers "
                "%.0f%% of the critical path; what-if rank overlap "
                "%.2fx, double buffer %.2fx, combined %.2fx\n",
                r.key.str().c_str(), toMillis(t.windowSeconds),
                static_cast<unsigned long long>(t.launches),
                t.overlapFraction, t.rankOccupancyMean * 100.0,
                t.transferCriticalFraction * 100.0,
                t.whatifRankOverlapSpeedup,
                t.whatifDoubleBufferSpeedup,
                t.whatifCombinedSpeedup);
        }
        if (!opt.imbalance || !r.hasImbalance)
            continue;
        ++with_imbalance;
        const perf::ImbalanceSummary &m = r.imbalance;
        std::printf(
            "  imbalance %s: %llu launches, straggler factor "
            "%.2fx, cycles gini %.2f (cov %.2f, p99/mean %.2fx), "
            "nnz gini %.2f\n",
            r.key.str().c_str(),
            static_cast<unsigned long long>(m.launches),
            m.stragglerFactor, m.cyclesGini, m.cyclesCov,
            m.cyclesP99OverMean, m.nnzGini);
        std::string straggler = fmt(
            "    straggler: DPU %llu: %.1fx mean cycles",
            static_cast<unsigned long long>(m.stragglerDpu),
            m.stragglerCyclesOverMean);
        if (!m.stragglerStall.empty()) {
            straggler += fmt(", %.0f%% %s-stall",
                             m.stragglerStallFraction * 100.0,
                             m.stragglerStall.c_str());
        }
        if (m.stragglerNnzOverMean > 0.0) {
            straggler += fmt(", holds %.1fx mean nnz",
                             m.stragglerNnzOverMean);
        }
        if (!m.stragglerKernel.empty())
            straggler += " (" + m.stragglerKernel + ")";
        std::printf("%s\n", straggler.c_str());
        std::printf(
            "    rebalance bound: leveled kernel time %.3g s vs "
            "%.3g s actual (%.2fx available)\n",
            m.leveledKernelSeconds, m.kernelSeconds,
            m.leveledKernelSeconds > 0.0
                ? m.kernelSeconds / m.leveledKernelSeconds
                : 1.0);
        std::printf(
            "    roofline: %.2f instr/byte (ridge %.2f), %.3g "
            "ops/s achieved vs %.3g pipeline ceiling; "
            "memory-bound %.0f%% of launches\n",
            m.rooflineOpIntensity, m.rooflineRidgeIntensity,
            m.rooflineAchievedOpsPerSec,
            m.rooflinePipelineCeilingOpsPerSec,
            m.rooflineMemoryBoundFraction * 100.0);
    }
    if (opt.imbalance && with_imbalance == 0) {
        std::fprintf(stderr,
                     "alphapim-explain: no record carries an "
                     "imbalance block (records predate schema "
                     "alpha-pim-run-v4?)\n");
        return 1;
    }
    if (opt.host && with_host == 0) {
        std::fprintf(stderr,
                     "alphapim-explain: no record carries a host "
                     "block (records predate schema "
                     "alpha-pim-run-v5, or were produced with "
                     "--host-prof=off?)\n");
        return 1;
    }
    if (with_timeline == 0 && with_imbalance == 0 &&
        with_host == 0) {
        std::fprintf(stderr,
                     "alphapim-explain: no record carries a "
                     "timeline block (records predate schema "
                     "alpha-pim-run-v3?)\n");
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const ExplainOptions opt = parseArgs(argc, argv);
    return opt.trace.empty() ? runRecordsMode(opt)
                             : runTraceMode(opt);
}
