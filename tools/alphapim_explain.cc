/**
 * @file
 * alphapim_explain: execution-timeline observatory over the run
 * artifacts the framework already emits.
 *
 * Trace mode (--trace FILE, a --trace-out Chrome trace):
 * reconstructs the per-rank / per-DPU timeline, extracts the launch
 * dependency DAG and its critical path with per-phase attribution
 * (checked against the accounted model time), reports rank/DPU
 * occupancy, the transfer/kernel overlap fraction, and the what-if
 * overlap bounds; --html FILE additionally renders a self-contained
 * HTML page (inline SVG, no external dependencies).
 *
 * Records mode (--records FILE, a --json-out JSONL file): prints the
 * timeline summary block of every run record that carries one
 * (schema v3).
 *
 * Exit codes: 0 report produced, 1 artifact held no reconstructible
 * launches, 2 usage or I/O error.
 */

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/critical_path.hh"
#include "common/types.hh"
#include "perf/record.hh"
#include "telemetry/json.hh"
#include "telemetry/timeline.hh"

using namespace alphapim;

namespace
{

struct ExplainOptions
{
    std::string trace;
    std::string records;
    std::string html;
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: alphapim_explain --trace FILE [--html FILE]\n"
        "       alphapim_explain --records FILE\n"
        "  --trace FILE    Chrome trace JSON (from --trace-out)\n"
        "  --records FILE  run-record JSONL (from --json-out)\n"
        "  --html FILE     write a self-contained HTML report\n"
        "Every flag also accepts the --flag=value spelling.\n");
    std::exit(2);
}

ExplainOptions
parseArgs(int argc, char **argv)
{
    ExplainOptions opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string inline_value;
        bool has_inline = false;
        if (const std::size_t eq = arg.find('=');
            eq != std::string::npos && arg.rfind("--", 0) == 0) {
            inline_value = arg.substr(eq + 1);
            arg.resize(eq);
            has_inline = true;
        }
        auto next = [&]() -> const char * {
            if (has_inline)
                return inline_value.c_str();
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--trace")
            opt.trace = next();
        else if (arg == "--records")
            opt.records = next();
        else if (arg == "--html")
            opt.html = next();
        else
            usage();
    }
    if (opt.trace.empty() == opt.records.empty())
        usage();
    return opt;
}

std::string
fmt(const char *format, ...)
{
    char buf[512];
    va_list args;
    va_start(args, format);
    std::vsnprintf(buf, sizeof(buf), format, args);
    va_end(args);
    return buf;
}

double
numberOf(const telemetry::JsonValue &obj, const char *key,
         double fallback = 0.0)
{
    const auto *v = obj.find(key);
    return v && v->isNumber() ? v->asNumber() : fallback;
}

/** Load a Chrome trace file back into timeline spans. */
bool
loadTraceSpans(const std::string &path,
               std::vector<telemetry::TimelineSpan> &out,
               std::string *error)
{
    std::ifstream in(path);
    if (!in) {
        *error = "cannot open '" + path + "'";
        return false;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    telemetry::JsonValue doc;
    if (!telemetry::JsonValue::parse(buffer.str(), doc, error))
        return false;
    const auto *events = doc.find("traceEvents");
    if (!events || !events->isArray()) {
        *error = "no traceEvents array -- not a Chrome trace";
        return false;
    }
    for (const auto &e : events->items()) {
        if (!e.isObject())
            continue;
        const auto *ph = e.find("ph");
        if (!ph || !ph->isString() || ph->asString() != "X")
            continue;
        telemetry::TimelineSpan s;
        if (const auto *v = e.find("name"); v && v->isString())
            s.name = v->asString();
        if (const auto *v = e.find("cat"); v && v->isString())
            s.category = v->asString();
        s.pid = static_cast<std::uint32_t>(numberOf(e, "pid"));
        s.tid = static_cast<std::uint32_t>(numberOf(e, "tid"));
        s.start = numberOf(e, "ts") / 1e6; // micros -> seconds
        s.duration = numberOf(e, "dur") / 1e6;
        if (const auto *args = e.find("args");
            args && args->isObject()) {
            s.bytes = numberOf(*args, "bytes");
            s.cycles = numberOf(*args, "cycles");
        }
        out.push_back(std::move(s));
    }
    return true;
}

/** Everything the reports are rendered from. */
struct Analysis
{
    telemetry::Timeline timeline;
    telemetry::TimelineStats stats;
    analysis::CriticalPath path;
    analysis::WhatIf whatif;
    double accounted = 0.0;
    double attributionError = 0.0; ///< |path - accounted| / accounted
};

Analysis
analyze(std::vector<telemetry::TimelineSpan> spans)
{
    Analysis a;
    a.timeline = telemetry::buildTimeline(spans);
    a.stats = telemetry::computeStats(a.timeline);
    a.path = analysis::computeCriticalPath(
        analysis::buildLaunchDag(a.timeline));
    a.whatif = analysis::estimateOverlap(
        analysis::launchPhases(a.timeline));
    a.accounted = a.timeline.accountedSeconds();
    a.attributionError = a.accounted > 0.0
        ? std::abs(a.path.length - a.accounted) / a.accounted
        : 0.0;
    return a;
}

std::string
textReport(const std::string &source, const Analysis &a)
{
    const auto &s = a.stats;
    std::string out;
    out += fmt("alphapim-explain: %s\n", source.c_str());
    out += fmt(
        "window: %.3f ms model time -- %zu launches, %zu rank "
        "tracks, %zu DPU tracks\n",
        toMillis(s.windowSeconds), s.launches, s.ranks, s.dpus);

    out += fmt("critical path: %.3f ms across %zu nodes\n",
               toMillis(a.path.length), a.path.nodes.size());
    for (std::size_t p = 0; p < analysis::numPathPhases; ++p) {
        const auto phase = static_cast<analysis::PathPhase>(p);
        const double seconds = a.path.phaseSeconds[p];
        if (seconds <= 0.0 && phase == analysis::PathPhase::Other)
            continue;
        out += fmt("  %-9s %8.3f ms  (%5.1f%% of the path)\n",
                   analysis::pathPhaseName(phase), toMillis(seconds),
                   a.path.phaseFraction(phase) * 100.0);
    }
    out += fmt(
        "attribution: path %.3f ms vs accounted launch time %.3f "
        "ms -- %.2f%% apart (%s)\n",
        toMillis(a.path.length), toMillis(a.accounted),
        a.attributionError * 100.0,
        a.attributionError <= 0.01 ? "OK" : "MISMATCH");

    out += fmt(
        "rank occupancy: mean %.1f%%, min %.1f%%; DPU occupancy "
        "mean %.2f%%\n",
        s.rankOccupancyMean * 100.0, s.rankOccupancyMin * 100.0,
        s.dpuOccupancyMean * 100.0);
    for (const auto &[rank, frac] : s.rankOccupancy)
        out += fmt("  rank %-3u busy %5.1f%% of the window\n", rank,
                   frac * 100.0);
    out += fmt(
        "transfer/kernel overlap: %.2f (transfers busy %.3f ms, "
        "kernels busy %.3f ms); idle fraction %.2f\n",
        s.overlapFraction, toMillis(s.transferBusySeconds),
        toMillis(s.kernelBusySeconds), s.idleFraction);

    const auto &w = a.whatif;
    out += "what-if overlap bounds (speedup ceilings vs the "
           "serial schedule):\n";
    out += fmt(
        "  rank overlap      %.3f ms  (%.2fx)  kernels hidden "
        "under neighbouring ranks' transfers\n",
        toMillis(w.rankOverlapSeconds), w.rankOverlapSpeedup());
    out += fmt(
        "  double buffering  %.3f ms  (%.2fx)  next input load "
        "hidden under the host merge\n",
        toMillis(w.doubleBufferSeconds), w.doubleBufferSpeedup());
    out += fmt(
        "  combined pipeline %.3f ms  (%.2fx)  throughput-bound "
        "on the busiest resource\n",
        toMillis(w.combinedSeconds), w.combinedSpeedup());
    return out;
}

const char *
phaseColor(const std::string &name)
{
    if (name == "scatter" || name == "broadcast")
        return "#3b82f6"; // load-side transfers: blue
    if (name == "gather")
        return "#8b5cf6"; // retrieve transfers: violet
    if (name == "kernel")
        return "#16a34a"; // kernels: green
    return "#9ca3af";
}

std::string
htmlEscape(const std::string &s)
{
    std::string out;
    for (const char c : s) {
        switch (c) {
          case '<':
            out += "&lt;";
            break;
          case '>':
            out += "&gt;";
            break;
          case '&':
            out += "&amp;";
            break;
          default:
            out += c;
        }
    }
    return out;
}

/** Self-contained HTML page: summary <pre> + inline SVG Gantt of the
 * rank tracks, a bounded set of DPU tracks, and the launch spine. */
std::string
htmlReport(const std::string &source, const Analysis &a)
{
    constexpr double width = 1000.0;
    constexpr double rowH = 18.0;
    constexpr double labelW = 90.0;
    constexpr unsigned maxDpuRows = 16;

    const telemetry::Timeline &tl = a.timeline;
    const double t0 = tl.windowStart;
    const double span = tl.window() > 0.0 ? tl.window() : 1.0;
    auto x_of = [&](double t) {
        return labelW + (t - t0) / span * (width - labelW - 10.0);
    };

    struct Row
    {
        std::string label;
        const std::vector<telemetry::TimelineSpan> *spans;
    };
    std::vector<Row> rows;
    for (const auto &[rank, spans] : tl.rankSpans)
        rows.push_back({"rank " + std::to_string(rank), &spans});
    unsigned dpu_rows = 0;
    for (const auto &[dpu, spans] : tl.dpuSpans) {
        if (dpu_rows++ >= maxDpuRows)
            break;
        rows.push_back({"dpu " + std::to_string(dpu), &spans});
    }

    std::string svg;
    const double launch_row_y = 4.0;
    const double tracks_y = launch_row_y + rowH + 6.0;
    const double height =
        tracks_y + static_cast<double>(rows.size()) * rowH + 8.0;
    svg += fmt("<svg viewBox=\"0 0 %.0f %.0f\" "
               "xmlns=\"http://www.w3.org/2000/svg\" "
               "font-family=\"monospace\" font-size=\"11\">\n",
               width, height);

    // Launch spine: one bar per launch, phase-colored segments.
    svg += fmt("<text x=\"4\" y=\"%.1f\">launches</text>\n",
               launch_row_y + rowH - 5.0);
    const char *spine_colors[4] = {"#3b82f6", "#16a34a", "#8b5cf6",
                                   "#f59e0b"};
    for (const telemetry::LaunchWindow &l : tl.launches) {
        double t = l.start;
        const double parts[4] = {l.load, l.kernel_time, l.retrieve,
                                 l.merge};
        for (int p = 0; p < 4; ++p) {
            if (parts[p] <= 0.0)
                continue;
            svg += fmt("<rect x=\"%.2f\" y=\"%.1f\" width=\"%.2f\" "
                       "height=\"%.0f\" fill=\"%s\"><title>%s "
                       "%s %.3f ms</title></rect>\n",
                       x_of(t), launch_row_y,
                       std::max(0.5, x_of(t + parts[p]) - x_of(t)),
                       rowH - 4.0, spine_colors[p],
                       htmlEscape(l.kernel).c_str(),
                       analysis::pathPhaseName(
                           static_cast<analysis::PathPhase>(p)),
                       toMillis(parts[p]));
            t += parts[p];
        }
    }

    for (std::size_t r = 0; r < rows.size(); ++r) {
        const double y =
            tracks_y + static_cast<double>(r) * rowH;
        svg += fmt("<text x=\"4\" y=\"%.1f\">%s</text>\n",
                   y + rowH - 5.0,
                   htmlEscape(rows[r].label).c_str());
        for (const telemetry::TimelineSpan &s : *rows[r].spans) {
            svg += fmt(
                "<rect x=\"%.2f\" y=\"%.1f\" width=\"%.2f\" "
                "height=\"%.0f\" fill=\"%s\"><title>%s %.3f "
                "ms</title></rect>\n",
                x_of(s.start), y,
                std::max(0.5, x_of(s.end()) - x_of(s.start)),
                rowH - 4.0, phaseColor(s.name),
                htmlEscape(s.name).c_str(), toMillis(s.duration));
        }
    }
    svg += "</svg>\n";

    std::string html;
    html += "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
            "<title>alphapim-explain</title>\n<style>\n"
            "body { font-family: sans-serif; margin: 2em; }\n"
            "pre { background: #f3f4f6; padding: 1em; }\n"
            ".legend span { padding: 0 0.6em; }\n"
            "</style></head><body>\n";
    html += "<h1>Execution timeline: " + htmlEscape(source) +
            "</h1>\n";
    html += "<div class=\"legend\">"
            "<span style=\"background:#3b82f6;color:#fff\">load / "
            "scatter</span>"
            "<span style=\"background:#16a34a;color:#fff\">kernel"
            "</span>"
            "<span style=\"background:#8b5cf6;color:#fff\">retrieve "
            "/ gather</span>"
            "<span style=\"background:#f59e0b;color:#fff\">merge"
            "</span></div>\n";
    html += svg;
    html += "<h2>Report</h2>\n<pre>" +
            htmlEscape(textReport(source, a)) + "</pre>\n";
    html += "</body></html>\n";
    return html;
}

int
runTraceMode(const ExplainOptions &opt)
{
    std::vector<telemetry::TimelineSpan> spans;
    std::string error;
    if (!loadTraceSpans(opt.trace, spans, &error)) {
        std::fprintf(stderr, "alphapim-explain: %s\n",
                     error.c_str());
        return 2;
    }
    const Analysis a = analyze(std::move(spans));
    if (a.timeline.launches.empty()) {
        std::fprintf(stderr,
                     "alphapim-explain: no launches found in '%s' "
                     "-- was the trace recorded with this tool "
                     "chain?\n",
                     opt.trace.c_str());
        return 1;
    }
    std::fputs(textReport(opt.trace, a).c_str(), stdout);
    if (!opt.html.empty()) {
        std::ofstream out(opt.html);
        if (!out) {
            std::fprintf(stderr,
                         "alphapim-explain: cannot create '%s'\n",
                         opt.html.c_str());
            return 2;
        }
        out << htmlReport(opt.trace, a);
        std::printf("wrote HTML report to %s\n", opt.html.c_str());
    }
    return 0;
}

int
runRecordsMode(const ExplainOptions &opt)
{
    perf::RecordSet set;
    std::string error;
    if (!perf::loadRecordSet(opt.records, set, &error)) {
        std::fprintf(stderr, "alphapim-explain: %s\n",
                     error.c_str());
        return 2;
    }
    std::printf("alphapim-explain: %s -- %zu records\n",
                opt.records.c_str(), set.records.size());
    std::size_t with_timeline = 0;
    for (const perf::RunRecord &r : set.records) {
        if (!r.hasTimeline)
            continue;
        ++with_timeline;
        const perf::TimelineSummary &t = r.timeline;
        std::printf(
            "  %s: window %.3f ms, %llu launches, overlap %.2f, "
            "rank occupancy mean %.1f%%, transfers %.0f%% of the "
            "critical path; what-if rank overlap %.2fx, double "
            "buffer %.2fx, combined %.2fx\n",
            r.key.str().c_str(), toMillis(t.windowSeconds),
            static_cast<unsigned long long>(t.launches),
            t.overlapFraction, t.rankOccupancyMean * 100.0,
            t.transferCriticalFraction * 100.0,
            t.whatifRankOverlapSpeedup, t.whatifDoubleBufferSpeedup,
            t.whatifCombinedSpeedup);
    }
    if (with_timeline == 0) {
        std::fprintf(stderr,
                     "alphapim-explain: no record carries a "
                     "timeline block (records predate schema "
                     "alpha-pim-run-v3?)\n");
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const ExplainOptions opt = parseArgs(argc, argv);
    return opt.trace.empty() ? runRecordsMode(opt)
                             : runTraceMode(opt);
}
