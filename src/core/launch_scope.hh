/**
 * @file
 * Telemetry glue between PimEngine and the tracer/metrics registry:
 * one LaunchScope wraps one matrix-vector launch, marks the thread
 * as accounting an actual launch (so the transfer model emits its
 * per-rank events), and, on finish, turns the launch's PhaseTimes
 * and LaunchProfile into engine-track spans and phase/engine
 * metrics. All of it collapses to a couple of relaxed atomic loads
 * when telemetry is disabled.
 */

#ifndef ALPHA_PIM_CORE_LAUNCH_SCOPE_HH
#define ALPHA_PIM_CORE_LAUNCH_SCOPE_HH

#include "core/phase_times.hh"
#include "telemetry/telemetry.hh"

namespace alphapim::core
{

/** RAII telemetry scope around one PimEngine matrix-vector launch. */
class LaunchScope
{
  public:
    /**
     * @param kernel_name  display name of the kernel being launched
     * @param used_spmv    true when the SpMV (dense) kernel runs
     * @param switched     true when the adaptive strategy changed
     *                     kernels relative to the previous launch
     * @param input_density density of the input vector
     */
    LaunchScope(const char *kernel_name, bool used_spmv,
                bool switched, double input_density);

    ~LaunchScope() = default;

    LaunchScope(const LaunchScope &) = delete;
    LaunchScope &operator=(const LaunchScope &) = delete;

    /**
     * Record the completed launch: emits the multiply span and the
     * four Load/Kernel/Retrieve/Merge phase spans on the engine
     * track, re-synchronizes the model clock to the launch total,
     * and folds phase seconds / launch counters into the metrics
     * registry. Call exactly once, with the result of the launch.
     */
    void finish(const PhaseTimes &times,
                const upmem::LaunchProfile &profile,
                std::uint64_t semiring_ops);

  private:
    telemetry::RecordingScope recording_;
    const char *kernel_;
    bool usedSpmv_;
    bool switched_;
    double density_;
    bool tracing_;
    Seconds start_ = 0.0;
};

} // namespace alphapim::core

#endif // ALPHA_PIM_CORE_LAUNCH_SCOPE_HH
