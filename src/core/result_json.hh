/**
 * @file
 * JSON serialization of launch results: PhaseTimes, LaunchProfile
 * and whole MxvResult records encoded with the telemetry JsonWriter.
 * Used by the per-run JSONL records of the bench harness and the
 * CLI's --metrics-out plumbing; round-trips through JsonValue in the
 * telemetry unit tests.
 */

#ifndef ALPHA_PIM_CORE_RESULT_JSON_HH
#define ALPHA_PIM_CORE_RESULT_JSON_HH

#include <string>

#include "core/phase_times.hh"
#include "telemetry/json.hh"

namespace alphapim::core
{

/** Append `times` as a JSON object value (call after key()). */
inline void
writePhaseTimes(telemetry::JsonWriter &w, const PhaseTimes &times)
{
    w.beginObject();
    w.key("load").value(times.load);
    w.key("kernel").value(times.kernel);
    w.key("retrieve").value(times.retrieve);
    w.key("merge").value(times.merge);
    w.key("total").value(times.total());
    w.endObject();
}

/** Append `profile` as a JSON object value: cycle totals, stall
 * fractions, Figure 11 instruction mix, and DPU occupancy. */
inline void
writeLaunchProfile(telemetry::JsonWriter &w,
                   const upmem::LaunchProfile &profile)
{
    const upmem::DpuProfile &agg = profile.aggregate;
    w.beginObject();
    w.key("total_cycles").value(agg.totalCycles);
    w.key("issued_cycles").value(agg.issuedCycles);
    w.key("issued_fraction").value(agg.issuedFraction());
    w.key("max_cycles").value(profile.maxCycles);
    w.key("active_dpus")
        .value(static_cast<std::uint64_t>(profile.activeDpus));
    w.key("avg_active_threads").value(agg.avgActiveThreads());
    w.key("mram_read_bytes").value(agg.mramReadBytes);
    w.key("mram_write_bytes").value(agg.mramWriteBytes);
    w.key("stall_fractions").beginObject();
    for (unsigned r = 0;
         r < static_cast<unsigned>(upmem::StallReason::NumReasons);
         ++r) {
        const auto reason = static_cast<upmem::StallReason>(r);
        w.key(upmem::stallReasonName(reason))
            .value(agg.stallFraction(reason));
    }
    w.endObject();
    w.key("instr_by_category").beginObject();
    for (unsigned c = 0; c < upmem::numOpCategories; ++c) {
        const auto cat = static_cast<upmem::OpCategory>(c);
        w.key(upmem::opCategoryName(cat))
            .value(agg.instructionsInCategory(cat));
    }
    w.endObject();
    w.endObject();
}

/** Encode one MxvResult as a compact JSON object string. */
template <typename V>
std::string
mxvResultToJson(const MxvResult<V> &result)
{
    telemetry::JsonWriter w;
    w.beginObject();
    w.key("output_nnz").value(result.outputNnz);
    w.key("semiring_ops").value(result.semiringOps);
    w.key("times");
    writePhaseTimes(w, result.times);
    w.key("profile");
    writeLaunchProfile(w, result.profile);
    w.endObject();
    return w.str();
}

} // namespace alphapim::core

#endif // ALPHA_PIM_CORE_RESULT_JSON_HH
