/**
 * @file
 * Per-DPU matrix blocks. A DeviceBlock is the host-side image of the
 * matrix partition resident in one DPU's MRAM: rebased local indices,
 * sorted in the kernel's preferred major order. CSC-style kernels
 * locate a column's run with binary search, mirroring the colPtr
 * lookup the device kernel performs in MRAM.
 */

#ifndef ALPHA_PIM_CORE_DEVICE_BLOCK_HH
#define ALPHA_PIM_CORE_DEVICE_BLOCK_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "core/partition.hh"
#include "sparse/coo.hh"

namespace alphapim::core
{

/** Entry ordering inside a block. */
enum class BlockOrder
{
    RowMajor, ///< sorted by (row, col): COO / CSR kernels
    ColMajor, ///< sorted by (col, row): CSC kernels
};

/** One DPU's share of the adjacency matrix. */
struct DeviceBlock
{
    NodeId rowBase = 0; ///< global row of local row 0
    NodeId colBase = 0; ///< global column of local column 0
    NodeId rows = 0;    ///< local row extent
    NodeId cols = 0;    ///< local column extent
    BlockOrder order = BlockOrder::RowMajor;

    std::vector<NodeId> rowIdx; ///< local row indices
    std::vector<NodeId> colIdx; ///< local column indices
    std::vector<float> values;  ///< entry values

    /** Stored nonzeros. */
    std::size_t nnz() const { return values.size(); }

    /**
     * Entry range [first, last) of local column `c`.
     * Requires ColMajor order.
     */
    std::pair<std::size_t, std::size_t> colRange(NodeId c) const;

    /**
     * Modeled MRAM footprint of this block: index/value arrays plus,
     * for ColMajor blocks, the colPtr array the device kernel keeps.
     */
    Bytes mramBytes() const;
};

/**
 * Bin a COO matrix into row-wise blocks (one per partition range),
 * each spanning all columns. Single pass over the nonzeros.
 */
std::vector<DeviceBlock> buildRowBlocks(const sparse::CooMatrix<float> &coo,
                                        const Partition1d &rows,
                                        BlockOrder order);

/**
 * Bin a COO matrix into column-wise blocks (one per partition range),
 * each spanning all rows, in ColMajor order.
 */
std::vector<DeviceBlock> buildColBlocks(const sparse::CooMatrix<float> &coo,
                                        const Partition1d &cols);

/**
 * Bin a COO matrix into a 2D grid of tiles (row-major tile id), in
 * the given order.
 */
std::vector<DeviceBlock> buildGridBlocks(
    const sparse::CooMatrix<float> &coo, const Grid2d &grid,
    BlockOrder order);

/**
 * Split a row-major-sorted COO matrix into `parts` equal-nnz slices
 * (SparseP's COO.nnz scheme): slice boundaries may fall inside a row.
 */
std::vector<DeviceBlock> buildNnzSlices(const sparse::CooMatrix<float> &coo,
                                        unsigned parts);

} // namespace alphapim::core

#endif // ALPHA_PIM_CORE_DEVICE_BLOCK_HH
