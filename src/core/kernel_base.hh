/**
 * @file
 * Shared machinery of the PIM matrix-vector kernels: the abstract
 * kernel interface used by applications and benches, work-splitting
 * helpers, and the WRAM budgeting rules that decide whether a kernel
 * accumulates its output (or caches its input vector) in scratchpad
 * or in MRAM.
 */

#ifndef ALPHA_PIM_CORE_KERNEL_BASE_HH
#define ALPHA_PIM_CORE_KERNEL_BASE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "core/device_block.hh"
#include "core/phase_times.hh"
#include "core/semiring.hh"
#include "sparse/partition_shares.hh"
#include "sparse/sparse_vector.hh"
#include "upmem/upmem_system.hh"

namespace alphapim::core
{

/**
 * Export the partitioner's per-DPU assignment in the kernel-agnostic
 * form the imbalance observatory joins with per-DPU profiles. Kernels
 * publish this via analysis::imbalance().setLaunchContext() right
 * before each launch.
 */
std::vector<sparse::PartitionShare>
partitionShares(const std::vector<DeviceBlock> &blocks);

/** Which matrix-vector kernel family an implementation belongs to. */
enum class KernelKind
{
    SpMSpV, ///< compressed input vector
    SpMV,   ///< dense input vector
};

/**
 * Abstract PIM matrix-vector kernel y = A (*) x over a semiring.
 *
 * Implementations own the partitioned device image of A (built once,
 * amortized over iterations, and excluded from phase timing exactly
 * as the paper does) and model every launch's Load / Kernel /
 * Retrieve / Merge phases.
 */
template <Semiring S>
class PimMxvKernel
{
  public:
    using Value = typename S::Value;

    virtual ~PimMxvKernel() = default;

    /** Multiply against input vector x (compressed form). */
    virtual MxvResult<Value>
    run(const sparse::SparseVector<Value> &x) const = 0;

    /** Paper-style variant name ("CSC-2D", "COO", ...). */
    virtual const char *name() const = 0;

    /** SpMSpV or SpMV. */
    virtual KernelKind kind() const = 0;

    /** Number of matrix rows ( == columns for adjacency matrices). */
    virtual NodeId numRows() const = 0;

    /** Total modeled MRAM footprint of the partitioned matrix. */
    virtual Bytes matrixBytes() const = 0;
};

namespace detail
{

/** Compressed (index, value) pair size in MRAM. The matrix slice is
 * always stored with float values, so matrix streams use this
 * constant regardless of the semiring. */
inline constexpr Bytes pairBytes = sizeof(NodeId) + sizeof(float);

/** Compressed (index, value) pair size for vector entries of value
 * type V -- equals pairBytes for every 4-byte semiring, and grows
 * with the lane count for batched values. */
template <typename V>
inline constexpr Bytes vecPairBytes = sizeof(NodeId) + sizeof(V);

/** Stride of one value of type V in the padded MRAM input/output
 * images: the 8-byte DMA granularity, or the value size once it
 * exceeds it. 8 for every 4-byte semiring. */
template <typename V>
inline constexpr std::uint64_t valueStride =
    (sizeof(V) + 7ull) & ~7ull;

/** WRAM words (4 B) holding one value of type V; the register loads
 * a kernel charges to bring one value into play. */
template <typename V>
inline constexpr std::uint32_t valueWords = (sizeof(V) + 3) / 4;

/** Number of hardware mutexes used for output-group locking. */
inline constexpr unsigned outputMutexes = 32;

/** Barrier id used for the end-of-kernel rendezvous. */
inline constexpr std::uint32_t kernelBarrier = 0;

// ---- Modeled device address layout --------------------------------
//
// The kernels annotate their traces with the address ranges an
// equivalent hand-written UPMEM kernel would touch, so the
// pim-verify analyzer (src/analysis/) can check them against the
// execution model. The layout is deliberately simple: per-DPU MRAM
// holds the matrix slice at the bottom, the (padded, stride-8) input
// vector image in a middle region, and the (padded, stride-8) output
// image in a top region; WRAM reserves its first wramChunkBytes for
// the streaming staging buffer and accumulates output above it.

/** MRAM base of the partitioned matrix slice. */
inline constexpr std::uint64_t mramMatrixBase = 0;

/** MRAM base of the input-vector image (stride-8 padded entries). */
inline constexpr std::uint64_t mramInputBase = 32ull << 20;

/** MRAM base of the output image (stride-8 padded entries). */
inline constexpr std::uint64_t mramOutputBase = 48ull << 20;

/** WRAM address of the shared output accumulator / merge area. */
inline constexpr std::uint32_t wramOutputBase = 0x4000;

/** True when `elems` stride-8 entries fit a 16 MiB MRAM region, i.e.
 * the layout above can address them; kernels fall back to
 * unaddressed records otherwise. */
inline constexpr bool
mramRegionFits(std::uint64_t elems)
{
    return elems * 8 <= (16ull << 20);
}

/**
 * The 8-byte-aligned MRAM byte range backing elements [lo, hi) of a
 * packed array at `base`. Both ends are aligned *down*, so the
 * slices of consecutive [lo,hi) ranges stay disjoint -- exactly the
 * discipline a real UPMEM kernel needs for its write-back DMA, whose
 * transfers move whole 8-byte units.
 */
struct AlignedSlice
{
    std::uint64_t addr;
    Bytes bytes;
};

inline AlignedSlice
alignedSlice(std::uint64_t base, std::uint64_t lo, std::uint64_t hi,
             unsigned elem_bytes)
{
    const std::uint64_t begin = (base + lo * elem_bytes) & ~7ull;
    const std::uint64_t end = (base + hi * elem_bytes) & ~7ull;
    return {begin, end > begin ? end - begin : 0};
}

/** WRAM budget available for output accumulation. */
inline Bytes
wramOutputBudget(const upmem::DpuConfig &cfg)
{
    return cfg.wramBytes / 2;
}

/** WRAM budget available for caching the input vector. */
inline Bytes
wramInputBudget(const upmem::DpuConfig &cfg)
{
    return cfg.wramBytes / 4;
}

/**
 * Split `total` items into `parts` contiguous ranges of near-equal
 * size; returns the starts array (length parts + 1).
 */
std::vector<std::uint64_t> evenSplit(std::uint64_t total,
                                     unsigned parts);

/** ceil(log2(n + 1)): probe count of a binary search over n items. */
unsigned searchDepth(std::uint64_t n);

} // namespace detail

} // namespace alphapim::core

#endif // ALPHA_PIM_CORE_KERNEL_BASE_HH
