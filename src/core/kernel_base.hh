/**
 * @file
 * Shared machinery of the PIM matrix-vector kernels: the abstract
 * kernel interface used by applications and benches, work-splitting
 * helpers, and the WRAM budgeting rules that decide whether a kernel
 * accumulates its output (or caches its input vector) in scratchpad
 * or in MRAM.
 */

#ifndef ALPHA_PIM_CORE_KERNEL_BASE_HH
#define ALPHA_PIM_CORE_KERNEL_BASE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "core/phase_times.hh"
#include "core/semiring.hh"
#include "sparse/sparse_vector.hh"
#include "upmem/upmem_system.hh"

namespace alphapim::core
{

/** Which matrix-vector kernel family an implementation belongs to. */
enum class KernelKind
{
    SpMSpV, ///< compressed input vector
    SpMV,   ///< dense input vector
};

/**
 * Abstract PIM matrix-vector kernel y = A (*) x over a semiring.
 *
 * Implementations own the partitioned device image of A (built once,
 * amortized over iterations, and excluded from phase timing exactly
 * as the paper does) and model every launch's Load / Kernel /
 * Retrieve / Merge phases.
 */
template <Semiring S>
class PimMxvKernel
{
  public:
    using Value = typename S::Value;

    virtual ~PimMxvKernel() = default;

    /** Multiply against input vector x (compressed form). */
    virtual MxvResult<Value>
    run(const sparse::SparseVector<Value> &x) const = 0;

    /** Paper-style variant name ("CSC-2D", "COO", ...). */
    virtual const char *name() const = 0;

    /** SpMSpV or SpMV. */
    virtual KernelKind kind() const = 0;

    /** Number of matrix rows ( == columns for adjacency matrices). */
    virtual NodeId numRows() const = 0;

    /** Total modeled MRAM footprint of the partitioned matrix. */
    virtual Bytes matrixBytes() const = 0;
};

namespace detail
{

/** Compressed (index, value) pair size in MRAM. */
inline constexpr Bytes pairBytes = sizeof(NodeId) + sizeof(float);

/** Number of hardware mutexes used for output-group locking. */
inline constexpr unsigned outputMutexes = 32;

/** Barrier id used for the end-of-kernel rendezvous. */
inline constexpr std::uint32_t kernelBarrier = 0;

/** WRAM budget available for output accumulation. */
inline Bytes
wramOutputBudget(const upmem::DpuConfig &cfg)
{
    return cfg.wramBytes / 2;
}

/** WRAM budget available for caching the input vector. */
inline Bytes
wramInputBudget(const upmem::DpuConfig &cfg)
{
    return cfg.wramBytes / 4;
}

/**
 * Split `total` items into `parts` contiguous ranges of near-equal
 * size; returns the starts array (length parts + 1).
 */
std::vector<std::uint64_t> evenSplit(std::uint64_t total,
                                     unsigned parts);

/** ceil(log2(n + 1)): probe count of a binary search over n items. */
unsigned searchDepth(std::uint64_t n);

} // namespace detail

} // namespace alphapim::core

#endif // ALPHA_PIM_CORE_KERNEL_BASE_HH
