#include "device_block.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"
#include "common/parallel.hh"

namespace alphapim::core
{

namespace
{

/** Sort a block's parallel arrays by the requested major order. */
void
sortBlock(DeviceBlock &block)
{
    std::vector<std::size_t> order(block.nnz());
    std::iota(order.begin(), order.end(), 0);
    if (block.order == BlockOrder::RowMajor) {
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      if (block.rowIdx[a] != block.rowIdx[b])
                          return block.rowIdx[a] < block.rowIdx[b];
                      return block.colIdx[a] < block.colIdx[b];
                  });
    } else {
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      if (block.colIdx[a] != block.colIdx[b])
                          return block.colIdx[a] < block.colIdx[b];
                      return block.rowIdx[a] < block.rowIdx[b];
                  });
    }
    std::vector<NodeId> r(block.nnz()), c(block.nnz());
    std::vector<float> v(block.nnz());
    for (std::size_t i = 0; i < order.size(); ++i) {
        r[i] = block.rowIdx[order[i]];
        c[i] = block.colIdx[order[i]];
        v[i] = block.values[order[i]];
    }
    block.rowIdx = std::move(r);
    block.colIdx = std::move(c);
    block.values = std::move(v);
}

/** Sort every block in parallel on the host. */
void
sortBlocks(std::vector<DeviceBlock> &blocks)
{
    parallelFor(blocks.size(),
                [&](std::size_t i) { sortBlock(blocks[i]); });
}

} // namespace

std::pair<std::size_t, std::size_t>
DeviceBlock::colRange(NodeId c) const
{
    ALPHA_ASSERT(order == BlockOrder::ColMajor,
                 "colRange requires a column-major block");
    const auto first = std::lower_bound(colIdx.begin(), colIdx.end(), c);
    const auto last = std::upper_bound(first, colIdx.end(), c);
    return {static_cast<std::size_t>(first - colIdx.begin()),
            static_cast<std::size_t>(last - colIdx.begin())};
}

Bytes
DeviceBlock::mramBytes() const
{
    Bytes bytes = static_cast<Bytes>(nnz()) *
                  (2 * sizeof(NodeId) + sizeof(float));
    if (order == BlockOrder::ColMajor) {
        // Device keeps a colPtr array for O(1) column location.
        bytes += static_cast<Bytes>(cols + 1) * sizeof(EdgeId);
    }
    return bytes;
}

std::vector<DeviceBlock>
buildRowBlocks(const sparse::CooMatrix<float> &coo,
               const Partition1d &rows, BlockOrder order)
{
    const unsigned parts = rows.parts();
    std::vector<DeviceBlock> blocks(parts);
    for (unsigned p = 0; p < parts; ++p) {
        blocks[p].rowBase = rows.begin(p);
        blocks[p].colBase = 0;
        blocks[p].rows = rows.end(p) - rows.begin(p);
        blocks[p].cols = coo.numCols();
        blocks[p].order = order;
    }
    for (std::size_t k = 0; k < coo.nnz(); ++k) {
        const unsigned p = rows.rangeOf(coo.rowAt(k));
        DeviceBlock &b = blocks[p];
        b.rowIdx.push_back(coo.rowAt(k) - b.rowBase);
        b.colIdx.push_back(coo.colAt(k));
        b.values.push_back(coo.valueAt(k));
    }
    sortBlocks(blocks);
    return blocks;
}

std::vector<DeviceBlock>
buildColBlocks(const sparse::CooMatrix<float> &coo,
               const Partition1d &cols)
{
    const unsigned parts = cols.parts();
    std::vector<DeviceBlock> blocks(parts);
    for (unsigned p = 0; p < parts; ++p) {
        blocks[p].rowBase = 0;
        blocks[p].colBase = cols.begin(p);
        blocks[p].rows = coo.numRows();
        blocks[p].cols = cols.end(p) - cols.begin(p);
        blocks[p].order = BlockOrder::ColMajor;
    }
    for (std::size_t k = 0; k < coo.nnz(); ++k) {
        const unsigned p = cols.rangeOf(coo.colAt(k));
        DeviceBlock &b = blocks[p];
        b.rowIdx.push_back(coo.rowAt(k));
        b.colIdx.push_back(coo.colAt(k) - b.colBase);
        b.values.push_back(coo.valueAt(k));
    }
    sortBlocks(blocks);
    return blocks;
}

std::vector<DeviceBlock>
buildGridBlocks(const sparse::CooMatrix<float> &coo, const Grid2d &grid,
                BlockOrder order)
{
    const unsigned parts = grid.gridRows * grid.gridCols;
    std::vector<DeviceBlock> blocks(parts);
    for (unsigned r = 0; r < grid.gridRows; ++r) {
        for (unsigned c = 0; c < grid.gridCols; ++c) {
            DeviceBlock &b = blocks[grid.tileId(r, c)];
            b.rowBase = grid.rows.begin(r);
            b.colBase = grid.cols.begin(c);
            b.rows = grid.rows.end(r) - grid.rows.begin(r);
            b.cols = grid.cols.end(c) - grid.cols.begin(c);
            b.order = order;
        }
    }
    for (std::size_t k = 0; k < coo.nnz(); ++k) {
        const unsigned r = grid.rows.rangeOf(coo.rowAt(k));
        const unsigned c = grid.cols.rangeOf(coo.colAt(k));
        DeviceBlock &b = blocks[grid.tileId(r, c)];
        b.rowIdx.push_back(coo.rowAt(k) - b.rowBase);
        b.colIdx.push_back(coo.colAt(k) - b.colBase);
        b.values.push_back(coo.valueAt(k));
    }
    sortBlocks(blocks);
    return blocks;
}

std::vector<DeviceBlock>
buildNnzSlices(const sparse::CooMatrix<float> &coo, unsigned parts)
{
    ALPHA_ASSERT(parts > 0, "nnz slicing needs at least one part");
    sparse::CooMatrix<float> sorted = coo;
    sorted.sortRowMajor();

    std::vector<DeviceBlock> blocks(parts);
    const std::size_t nnz = sorted.nnz();
    for (unsigned p = 0; p < parts; ++p) {
        const std::size_t first = nnz * p / parts;
        const std::size_t last = nnz * (p + 1) / parts;
        DeviceBlock &b = blocks[p];
        b.order = BlockOrder::RowMajor;
        b.colBase = 0;
        b.cols = sorted.numCols();
        if (first == last) {
            b.rowBase = 0;
            b.rows = 0;
            continue;
        }
        b.rowBase = sorted.rowAt(first);
        b.rows = sorted.rowAt(last - 1) - b.rowBase + 1;
        b.rowIdx.reserve(last - first);
        b.colIdx.reserve(last - first);
        b.values.reserve(last - first);
        for (std::size_t k = first; k < last; ++k) {
            b.rowIdx.push_back(sorted.rowAt(k) - b.rowBase);
            b.colIdx.push_back(sorted.colAt(k));
            b.values.push_back(sorted.valueAt(k));
        }
    }
    return blocks;
}

} // namespace alphapim::core
