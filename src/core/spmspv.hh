/**
 * @file
 * SpMSpV kernel implementations for the simulated UPMEM system
 * (paper section 4.1): COO and CSR row-wise variants, and the CSC
 * family (CSC-R row-wise, CSC-C column-wise, CSC-2D grid).
 *
 * Every variant executes the product functionally on the host while
 * recording, per DPU and tasklet, the instruction trace the
 * equivalent UPMEM C kernel would issue; phase times follow
 * DESIGN.md section 4.
 */

#ifndef ALPHA_PIM_CORE_SPMSPV_HH
#define ALPHA_PIM_CORE_SPMSPV_HH

#include <algorithm>
#include <memory>
#include <mutex>

#include "analysis/imbalance.hh"
#include "common/logging.hh"
#include "core/device_block.hh"
#include "core/kernel_base.hh"
#include "core/partition.hh"
#include "telemetry/host_prof.hh"
#include "upmem/tasklet_ctx.hh"

namespace alphapim::core
{

/** Partitioning mode of the CSC SpMSpV family. */
enum class CscMode
{
    RowWise, ///< CSC-R: row partition, broadcast input vector
    ColWise, ///< CSC-C: column partition, full-length partial outputs
    Grid,    ///< CSC-2D: tiles, partitioned input and output
};

/**
 * CSC-format SpMSpV: iterate the *active* columns named by the sparse
 * input vector; skip everything else. The paper's efficient family.
 */
template <Semiring S>
class CscSpmspv : public PimMxvKernel<S>
{
  public:
    using Value = typename S::Value;
    /// Compressed (index, value) bytes of one x/y entry.
    static constexpr Bytes kVecPair = detail::vecPairBytes<Value>;
    /// Padded stride of one value in the MRAM accumulator image.
    static constexpr std::uint64_t kAccStride =
        detail::valueStride<Value>;
    /// Scalar lanes one value carries (ops charged per lane).
    static constexpr std::uint32_t kLanes = semiringLanes<S>();
    /// WRAM words loaded to bring one value into registers.
    static constexpr std::uint32_t kValueWords =
        detail::valueWords<Value>;

    /**
     * Build the partitioned device image.
     *
     * @param sys  simulated system
     * @param a    square adjacency matrix (values as the app set them)
     * @param dpus DPUs to use
     * @param mode partitioning strategy
     */
    CscSpmspv(const upmem::UpmemSystem &sys,
              const sparse::CooMatrix<float> &a, unsigned dpus,
              CscMode mode)
        : sys_(sys), dpus_(dpus), mode_(mode), n_(a.numRows())
    {
        ALPHA_ASSERT(a.numRows() == a.numCols(),
                     "adjacency matrix must be square");
        telemetry::HostPhaseTimer host_timer(
            telemetry::HostPhase::PartitionBuild);
        switch (mode_) {
          case CscMode::RowWise:
            blocks_ = buildRowBlocks(a, makeRowPartition(a, dpus_),
                                     BlockOrder::ColMajor);
            break;
          case CscMode::ColWise:
            blocks_ = buildColBlocks(a, makeColPartition(a, dpus_));
            break;
          case CscMode::Grid:
            grid_ = makeGrid2d(a, dpus_);
            blocks_ = buildGridBlocks(a, grid_, BlockOrder::ColMajor);
            break;
        }
    }

    MxvResult<Value>
    run(const sparse::SparseVector<Value> &x) const override
    {
        ALPHA_ASSERT(x.dim() == n_, "input vector dimension mismatch");
        MxvResult<Value> result;
        result.y.assign(n_, S::zero());

        // -------- Load phase: distribute the compressed x --------
        const Bytes x_bytes =
            static_cast<Bytes>(x.nnz()) * kVecPair;
        std::vector<std::pair<std::size_t, std::size_t>> x_slices(
            blocks_.size());
        std::vector<Bytes> load_bytes(blocks_.size(), 0);
        for (std::size_t d = 0; d < blocks_.size(); ++d) {
            const DeviceBlock &b = blocks_[d];
            const auto lo = std::lower_bound(x.indices().begin(),
                                             x.indices().end(),
                                             b.colBase) -
                            x.indices().begin();
            const auto hi = std::lower_bound(x.indices().begin(),
                                             x.indices().end(),
                                             b.colBase + b.cols) -
                            x.indices().begin();
            x_slices[d] = {static_cast<std::size_t>(lo),
                           static_cast<std::size_t>(hi)};
            load_bytes[d] =
                static_cast<Bytes>(hi - lo) * kVecPair;
        }
        if (mode_ == CscMode::RowWise) {
            result.times.load =
                sys_.transfer().broadcast(x_bytes, dpus_);
        } else {
            result.times.load = sys_.transfer().scatterGather(
                load_bytes, upmem::TransferDirection::HostToDpu);
        }

        // -------- Kernel phase --------
        std::vector<Bytes> retrieve_bytes(blocks_.size(), 0);
        std::uint64_t merge_ops = 0;
        std::uint64_t semiring_ops = 0;
        std::mutex merge_mutex;

        if (analysis::imbalance().enabled()) {
            analysis::imbalance().setLaunchContext(
                this->name(), partitionShares(blocks_));
        }
        const auto profile = sys_.launchKernel(
            static_cast<unsigned>(blocks_.size()),
            [&](unsigned dpu, std::vector<upmem::TaskletTrace> &tr) {
                runOneDpu(dpu, x, x_slices[dpu], tr, result,
                          retrieve_bytes, merge_ops, semiring_ops,
                          merge_mutex);
            });
        result.profile = profile;
        result.times.kernel = sys_.kernelSeconds(profile);
        result.semiringOps = semiring_ops;

        // -------- Retrieve phase --------
        result.times.retrieve = sys_.transfer().scatterGather(
            retrieve_bytes, upmem::TransferDirection::DpuToHost);

        // -------- Merge phase --------
        if (mode_ != CscMode::RowWise) {
            Bytes merge_bytes = static_cast<Bytes>(n_) * sizeof(Value);
            for (Bytes b : retrieve_bytes)
                merge_bytes += b;
            result.times.merge =
                sys_.host().mergeTime(merge_bytes, merge_ops);
        }

        for (const Value &v : result.y) {
            if (!S::isZero(v))
                ++result.outputNnz;
        }
        return result;
    }

    const char *
    name() const override
    {
        switch (mode_) {
          case CscMode::RowWise:
            return "CSC-R";
          case CscMode::ColWise:
            return "CSC-C";
          case CscMode::Grid:
            return "CSC-2D";
        }
        return "CSC";
    }

    KernelKind kind() const override { return KernelKind::SpMSpV; }

    NodeId numRows() const override { return n_; }

    Bytes
    matrixBytes() const override
    {
        Bytes total = 0;
        for (const auto &b : blocks_)
            total += b.mramBytes();
        return total;
    }

    /** Grid shape (valid in Grid mode). */
    const Grid2d &grid() const { return grid_; }

  private:
    /**
     * Emulate one DPU: split the update stream over tasklets, record
     * traces, accumulate the partial output, and fold it into the
     * shared result under the merge mutex.
     */
    void
    runOneDpu(unsigned dpu, const sparse::SparseVector<Value> &x,
              std::pair<std::size_t, std::size_t> slice,
              std::vector<upmem::TaskletTrace> &traces,
              MxvResult<Value> &result,
              std::vector<Bytes> &retrieve_bytes,
              std::uint64_t &merge_ops, std::uint64_t &semiring_ops,
              std::mutex &merge_mutex) const
    {
        const DeviceBlock &block = blocks_[dpu];
        const auto &cfg = sys_.config().dpu;
        const unsigned tasklets = cfg.tasklets;

        // Active columns: x nonzeros within this block's column range.
        struct ActiveCol
        {
            NodeId localCol;
            Value xval;
            std::size_t first; ///< entry range in the block
            std::size_t last;
        };
        std::vector<ActiveCol> active;
        active.reserve(slice.second - slice.first);
        std::uint64_t updates = 0;
        for (std::size_t k = slice.first; k < slice.second; ++k) {
            const NodeId local =
                x.indices()[k] - block.colBase;
            const auto [first, last] = block.colRange(local);
            active.push_back({local, x.values()[k], first, last});
            updates += last - first;
        }

        std::vector<Value> partial(block.rows, S::zero());
        const bool wram_out =
            static_cast<Bytes>(block.rows) * sizeof(Value) <=
            detail::wramOutputBudget(cfg);
        const bool mram_addressed = detail::mramRegionFits(
            block.rows * (kAccStride / 8));
        const NodeId group_size = std::max<NodeId>(
            1, (block.rows + detail::outputMutexes - 1) /
                   detail::outputMutexes);

        // Whole active columns are assigned to tasklets, balanced by
        // entry count (paper section 4.1.2: thread-level workload
        // balancing by column for CSC). At low density fewer active
        // columns than tasklets leave threads unengaged -- the
        // paper's Figure 10 observation.
        struct Piece
        {
            std::size_t activeIdx;
            std::size_t first; ///< block entry offset
            std::size_t len;
        };
        std::vector<std::vector<Piece>> work(tasklets);
        {
            std::vector<EdgeId> weights(active.size());
            for (std::size_t i = 0; i < active.size(); ++i)
                weights[i] = active[i].last - active[i].first;
            const Partition1d split =
                balancedPartition(weights, tasklets);
            std::uint64_t seen = 0;
            for (unsigned t = 0; t < tasklets; ++t) {
                for (NodeId i = split.begin(t); i < split.end(t);
                     ++i) {
                    const ActiveCol &col = active[i];
                    if (col.last == col.first)
                        continue;
                    work[t].push_back(
                        {i, col.first, col.last - col.first});
                    seen += col.last - col.first;
                }
            }
            ALPHA_ASSERT(seen == updates, "update split lost entries");
        }

        std::uint64_t local_ops = 0;
        for (unsigned t = 0; t < tasklets; ++t) {
            upmem::TaskletCtx ctx(cfg, traces[t]);
            // The tasklet's share of the compressed x slice streams
            // in sequentially ahead of the column loop.
            if (!work[t].empty()) {
                ctx.streamFromMram(
                    static_cast<Bytes>(work[t].size()) * kVecPair);
            }
            std::uint32_t held_group = ~0u;
            for (const Piece &piece : work[t]) {
                const ActiveCol &col = active[piece.activeIdx];

                // Column prologue: x value + colPtr lookup + stream.
                ctx.loadWram(kValueWords);
                ctx.randomMramRead(
                    16, detail::mramMatrixBase +
                            ((static_cast<std::uint64_t>(
                                  col.localCol) *
                              sizeof(EdgeId)) &
                             ~7ull));
                ctx.op(upmem::OpClass::IntAdd, 2);
                ctx.control(1);
                const auto mat = detail::alignedSlice(
                    detail::mramMatrixBase, piece.first,
                    piece.first + piece.len, detail::pairBytes);
                ctx.streamFromMram(static_cast<Bytes>(piece.len) *
                                       detail::pairBytes,
                                   mat.addr);

                for (std::size_t e = piece.first;
                     e < piece.first + piece.len; ++e) {
                    const NodeId row = block.rowIdx[e];
                    const Value contrib = S::mul(
                        S::fromMatrix(block.values[e]), col.xval);
                    partial[row] = S::add(partial[row], contrib);
                    local_ops += 2;

                    ctx.loadWram(2);
                    ctx.op(S::mulOp(), kLanes);
                    const std::uint32_t group = row / group_size;
                    if (group != held_group) {
                        if (held_group != ~0u)
                            ctx.mutexUnlock(held_group);
                        ctx.mutexLock(group);
                        held_group = group;
                    }
                    if (wram_out) {
                        // Shared WRAM accumulator slot of this row,
                        // guarded by the row group's mutex.
                        const std::uint32_t slot =
                            detail::wramOutputBase +
                            static_cast<std::uint32_t>(row) *
                                static_cast<std::uint32_t>(
                                    sizeof(Value));
                        ctx.loadWramAt(slot, sizeof(Value));
                        ctx.op(S::addOp(), kLanes);
                        ctx.storeWramAt(slot, sizeof(Value));
                    } else {
                        // MRAM accumulator entry, padded to the
                        // 8-byte DMA granularity.
                        const std::uint64_t slot =
                            mram_addressed
                                ? detail::mramOutputBase +
                                      static_cast<std::uint64_t>(
                                          row) *
                                          kAccStride
                                : upmem::traceNoAddr;
                        ctx.randomMramRead(kAccStride, slot);
                        ctx.op(S::addOp(), kLanes);
                        ctx.randomMramWrite(kAccStride, slot);
                    }
                    ctx.control(1);
                }
                if (held_group != ~0u) {
                    ctx.mutexUnlock(held_group);
                    held_group = ~0u;
                }
            }
            ctx.barrier(detail::kernelBarrier);
        }

        // Compaction + write-back after the barrier. The WRAM-
        // accumulating kernel keeps a touched-row list at update
        // time, so compaction is proportional to the output nnz;
        // the MRAM-accumulating kernel (CSC-C on large matrices)
        // must stream and scan the whole dense partial.
        std::uint64_t out_nnz = 0;
        for (const Value &v : partial) {
            if (!S::isZero(v))
                ++out_nnz;
        }
        const Bytes out_bytes =
            static_cast<Bytes>(out_nnz) * kVecPair;
        const auto out_split = detail::evenSplit(out_nnz, tasklets);
        const auto rows_split =
            detail::evenSplit(block.rows, tasklets);
        for (unsigned t = 0; t < tasklets; ++t) {
            upmem::TaskletCtx ctx(cfg, traces[t]);
            const auto share = static_cast<std::uint32_t>(
                out_split[t + 1] - out_split[t]);
            if (!wram_out) {
                // Scan this tasklet's slice of the stride-padded
                // MRAM accumulator (after the barrier, so ordered
                // with the update phase).
                const auto rows_share = static_cast<std::uint32_t>(
                    rows_split[t + 1] - rows_split[t]);
                const auto acc = detail::alignedSlice(
                    detail::mramOutputBase, rows_split[t],
                    rows_split[t + 1],
                    static_cast<unsigned>(kAccStride));
                if (acc.bytes > 0)
                    ctx.streamFromMram(acc.bytes,
                                       mram_addressed
                                           ? acc.addr
                                           : upmem::traceNoAddr);
                ctx.op(upmem::OpClass::Compare, rows_share * kLanes);
                ctx.control(rows_share / 4 + 1);
            } else {
                ctx.loadWram(share);
                ctx.op(upmem::OpClass::Compare, share * kLanes);
                ctx.control(share / 4 + 1);
            }
            ctx.streamToMram(static_cast<Bytes>(share) * kVecPair);
        }

        // Fold the partial into the shared output.
        {
            telemetry::HostPhaseTimer host_timer(
                telemetry::HostPhase::HostMerge);
            std::lock_guard<std::mutex> lock(merge_mutex);
            for (NodeId r = 0; r < block.rows; ++r) {
                if (!S::isZero(partial[r])) {
                    result.y[block.rowBase + r] = S::add(
                        result.y[block.rowBase + r], partial[r]);
                }
            }
            retrieve_bytes[dpu] = out_bytes;
            if (mode_ != CscMode::RowWise)
                merge_ops += out_nnz;
            semiring_ops += local_ops;
        }
    }

    const upmem::UpmemSystem &sys_;
    unsigned dpus_;
    CscMode mode_;
    NodeId n_;
    Grid2d grid_;
    std::vector<DeviceBlock> blocks_;
};

/**
 * Row-major SpMSpV over COO or CSR blocks with row-wise partitioning.
 *
 * Both variants must consider the *entire* adjacency matrix and match
 * each element's column against the compressed input vector (paper
 * section 4.1), which is why they underperform the CSC family:
 *  - COO: tasklets split nonzeros evenly; every nonzero performs a
 *    binary search over the compressed x;
 *  - CSR: tasklets split rows (nnz-balanced); every nonempty row runs
 *    a two-pointer merge against the full compressed x, rescanning it
 *    per row -- the behaviour the paper measures as 2.8x-25x slower.
 */
template <Semiring S, bool UseCsr>
class RowMajorSpmspv : public PimMxvKernel<S>
{
  public:
    using Value = typename S::Value;
    /// Compressed (index, value) bytes of one x/y entry.
    static constexpr Bytes kVecPair = detail::vecPairBytes<Value>;
    /// Padded stride of one value in the MRAM accumulator image.
    static constexpr std::uint64_t kAccStride =
        detail::valueStride<Value>;
    /// Scalar lanes one value carries (ops charged per lane).
    static constexpr std::uint32_t kLanes = semiringLanes<S>();
    /// WRAM words loaded to bring one value into registers.
    static constexpr std::uint32_t kValueWords =
        detail::valueWords<Value>;

    /** Build the row-partitioned device image. */
    RowMajorSpmspv(const upmem::UpmemSystem &sys,
                   const sparse::CooMatrix<float> &a, unsigned dpus)
        : sys_(sys), dpus_(dpus), n_(a.numRows())
    {
        ALPHA_ASSERT(a.numRows() == a.numCols(),
                     "adjacency matrix must be square");
        telemetry::HostPhaseTimer host_timer(
            telemetry::HostPhase::PartitionBuild);
        blocks_ = buildRowBlocks(a, makeRowPartition(a, dpus_),
                                 BlockOrder::RowMajor);
    }

    MxvResult<Value>
    run(const sparse::SparseVector<Value> &x) const override
    {
        ALPHA_ASSERT(x.dim() == n_, "input vector dimension mismatch");
        MxvResult<Value> result;
        result.y.assign(n_, S::zero());

        // Row-wise partitioning broadcasts the whole compressed x.
        const Bytes x_bytes =
            static_cast<Bytes>(x.nnz()) * kVecPair;
        result.times.load = sys_.transfer().broadcast(x_bytes, dpus_);

        // Dense image of x for O(1) functional lookups.
        std::vector<Value> x_dense = x.toDense(S::zero());

        std::vector<Bytes> retrieve_bytes(blocks_.size(), 0);
        std::uint64_t semiring_ops = 0;
        std::mutex merge_mutex;

        if (analysis::imbalance().enabled()) {
            analysis::imbalance().setLaunchContext(
                this->name(), partitionShares(blocks_));
        }
        const auto profile = sys_.launchKernel(
            static_cast<unsigned>(blocks_.size()),
            [&](unsigned dpu, std::vector<upmem::TaskletTrace> &tr) {
                runOneDpu(dpu, x, x_dense, tr, result, retrieve_bytes,
                          semiring_ops, merge_mutex);
            });
        result.profile = profile;
        result.times.kernel = sys_.kernelSeconds(profile);
        result.semiringOps = semiring_ops;

        result.times.retrieve = sys_.transfer().scatterGather(
            retrieve_bytes, upmem::TransferDirection::DpuToHost);
        // Row-wise partitions produce disjoint output slices: no merge.

        for (const Value &v : result.y) {
            if (!S::isZero(v))
                ++result.outputNnz;
        }
        return result;
    }

    const char *name() const override { return UseCsr ? "CSR" : "COO"; }

    KernelKind kind() const override { return KernelKind::SpMSpV; }

    NodeId numRows() const override { return n_; }

    Bytes
    matrixBytes() const override
    {
        Bytes total = 0;
        for (const auto &b : blocks_)
            total += b.mramBytes();
        return total;
    }

  private:
    void
    runOneDpu(unsigned dpu, const sparse::SparseVector<Value> &x,
              const std::vector<Value> &x_dense,
              std::vector<upmem::TaskletTrace> &traces,
              MxvResult<Value> &result,
              std::vector<Bytes> &retrieve_bytes,
              std::uint64_t &semiring_ops,
              std::mutex &merge_mutex) const
    {
        const DeviceBlock &block = blocks_[dpu];
        const auto &cfg = sys_.config().dpu;
        const unsigned tasklets = cfg.tasklets;

        const Bytes x_bytes =
            static_cast<Bytes>(x.nnz()) * kVecPair;
        const bool x_cached =
            x_bytes <= detail::wramInputBudget(cfg);
        const unsigned probes = detail::searchDepth(x.nnz());

        std::vector<Value> partial(block.rows, S::zero());
        std::uint64_t local_ops = 0;

        // Cooperative preload of the compressed x into WRAM when it
        // fits; otherwise lookups go to MRAM.
        for (unsigned t = 0; t < tasklets; ++t) {
            upmem::TaskletCtx ctx(cfg, traces[t]);
            if (x_cached) {
                ctx.streamFromMram(x_bytes / tasklets + 1);
                ctx.barrier(detail::kernelBarrier);
            }
        }

        if (UseCsr) {
            runCsrTasklets(block, x, x_dense, traces, partial,
                           local_ops, x_cached, probes);
        } else {
            runCooTasklets(block, x, x_dense, traces, partial,
                           local_ops, x_cached, probes);
        }

        for (unsigned t = 0; t < tasklets; ++t) {
            upmem::TaskletCtx ctx(cfg, traces[t]);
            ctx.barrier(detail::kernelBarrier);
        }

        // Compact the (disjoint) output slice and write it back;
        // touched rows are tracked at update time, so the epilogue
        // is proportional to the output nnz.
        std::uint64_t out_nnz = 0;
        for (const Value &v : partial) {
            if (!S::isZero(v))
                ++out_nnz;
        }
        const auto out_split = detail::evenSplit(out_nnz, tasklets);
        for (unsigned t = 0; t < tasklets; ++t) {
            upmem::TaskletCtx ctx(cfg, traces[t]);
            const auto share = static_cast<std::uint32_t>(
                out_split[t + 1] - out_split[t]);
            ctx.loadWram(share);
            ctx.op(upmem::OpClass::Compare, share * kLanes);
            ctx.control(share / 4 + 1);
            ctx.streamToMram(static_cast<Bytes>(share) * kVecPair);
        }

        {
            telemetry::HostPhaseTimer host_timer(
                telemetry::HostPhase::HostMerge);
            std::lock_guard<std::mutex> lock(merge_mutex);
            for (NodeId r = 0; r < block.rows; ++r) {
                if (!S::isZero(partial[r]))
                    result.y[block.rowBase + r] = partial[r];
            }
            retrieve_bytes[dpu] =
                static_cast<Bytes>(out_nnz) * kVecPair;
            semiring_ops += local_ops;
        }
    }

    /** COO flavour: nonzero-balanced tasklet split, per-entry binary
     * search of the compressed x. */
    void
    runCooTasklets(const DeviceBlock &block,
                   const sparse::SparseVector<Value> &x,
                   const std::vector<Value> &x_dense,
                   std::vector<upmem::TaskletTrace> &traces,
                   std::vector<Value> &partial,
                   std::uint64_t &local_ops, bool x_cached,
                   unsigned probes) const
    {
        const auto &cfg = sys_.config().dpu;
        const unsigned tasklets = cfg.tasklets;
        const auto split = detail::evenSplit(block.nnz(), tasklets);

        for (unsigned t = 0; t < tasklets; ++t) {
            upmem::TaskletCtx ctx(cfg, traces[t]);
            const std::size_t first = split[t];
            const std::size_t last = split[t + 1];
            if (first == last)
                continue;

            // Stream the COO slice (12 bytes per entry).
            ctx.streamFromMram((last - first) * 12);

            NodeId current_row = invalidNode;
            for (std::size_t e = first; e < last; ++e) {
                const NodeId row = block.rowIdx[e];
                const NodeId col = block.colIdx[e];
                ctx.loadWram(2);
                // Binary search of col in the compressed x.
                if (x_cached) {
                    ctx.loadWram(probes);
                    ctx.op(upmem::OpClass::Compare, probes);
                    ctx.control(probes);
                } else {
                    for (unsigned p = 0; p < probes; ++p)
                        ctx.randomMramRead(8);
                    ctx.op(upmem::OpClass::Compare, probes);
                    ctx.control(probes);
                }
                const Value xv = x_dense[col];
                if (!S::isZero(xv)) {
                    partial[row] = S::add(
                        partial[row],
                        S::mul(S::fromMatrix(block.values[e]), xv));
                    local_ops += 2;
                    ctx.op(S::mulOp(), kLanes);
                    ctx.op(S::addOp(), kLanes);
                }
                if (row != current_row) {
                    // Row transition: flush the register accumulator.
                    ctx.storeWram(1);
                    ctx.control(1);
                    current_row = row;
                }
            }
            // Boundary rows shared with the neighbouring tasklets
            // are merged into their shared WRAM slots under the
            // *row's* mutex, so both neighbours of a straddled row
            // serialize on the same lock.
            const auto mergeBoundary = [&](NodeId row) {
                const std::uint32_t m = row % detail::outputMutexes;
                const std::uint32_t slot =
                    detail::wramOutputBase +
                    m * static_cast<std::uint32_t>(kAccStride);
                ctx.mutexLock(m);
                ctx.loadWramAt(slot, sizeof(Value));
                ctx.op(S::addOp(), kLanes);
                ctx.storeWramAt(slot, sizeof(Value));
                ctx.mutexUnlock(m);
            };
            const NodeId first_row = block.rowIdx[first];
            const NodeId last_row = block.rowIdx[last - 1];
            mergeBoundary(first_row);
            if (last_row != first_row)
                mergeBoundary(last_row);
        }
        (void)x;
    }

    /** CSR flavour: row-balanced tasklet split; each nonempty row
     * two-pointer merges against the full compressed x. */
    void
    runCsrTasklets(const DeviceBlock &block,
                   const sparse::SparseVector<Value> &x,
                   const std::vector<Value> &x_dense,
                   std::vector<upmem::TaskletTrace> &traces,
                   std::vector<Value> &partial,
                   std::uint64_t &local_ops, bool x_cached,
                   unsigned probes) const
    {
        (void)probes;
        const auto &cfg = sys_.config().dpu;
        const unsigned tasklets = cfg.tasklets;

        // Row ranges per entry (block is RowMajor-sorted): row r's
        // entries are [row_start[r], row_start[r+1]).
        std::vector<std::size_t> row_start(block.rows + 1, 0);
        for (std::size_t e = 0; e < block.nnz(); ++e)
            ++row_start[block.rowIdx[e] + 1];
        for (NodeId r = 0; r < block.rows; ++r)
            row_start[r + 1] += row_start[r];

        // Balance rows by nonzero count.
        std::vector<EdgeId> weights(block.rows);
        for (NodeId r = 0; r < block.rows; ++r)
            weights[r] = row_start[r + 1] - row_start[r];
        const Partition1d rows = balancedPartition(
            weights, tasklets);

        const auto x_nnz = static_cast<std::uint32_t>(x.nnz());
        for (unsigned t = 0; t < tasklets; ++t) {
            upmem::TaskletCtx ctx(cfg, traces[t]);
            for (NodeId r = rows.begin(t); r < rows.end(t); ++r) {
                const std::size_t first = row_start[r];
                const std::size_t last = row_start[r + 1];
                ctx.control(2); // rowPtr bookkeeping
                if (first == last)
                    continue;
                ctx.streamFromMram((last - first) *
                                   detail::pairBytes);

                // Two-pointer merge: the row is consumed once; the
                // compressed x is rescanned from the start (the
                // paper's CSR inefficiency).
                const auto steps = static_cast<std::uint32_t>(
                    (last - first) + x_nnz);
                if (x_cached) {
                    ctx.loadWram(steps);
                } else {
                    ctx.streamFromMram(static_cast<Bytes>(x_nnz) *
                                       kVecPair);
                    ctx.loadWram(last - first);
                }
                ctx.op(upmem::OpClass::Compare, steps);
                ctx.control(steps);

                Value acc = S::zero();
                for (std::size_t e = first; e < last; ++e) {
                    const Value xv = x_dense[block.colIdx[e]];
                    if (!S::isZero(xv)) {
                        acc = S::add(
                            acc, S::mul(
                                     S::fromMatrix(block.values[e]),
                                     xv));
                        local_ops += 2;
                        ctx.op(S::mulOp(), kLanes);
                        ctx.op(S::addOp(), kLanes);
                    }
                }
                partial[r] = S::add(partial[r], acc);
                ctx.storeWram(1);
            }
        }
    }

    const upmem::UpmemSystem &sys_;
    unsigned dpus_;
    NodeId n_;
    std::vector<DeviceBlock> blocks_;
};

/** COO row-wise SpMSpV (paper's "COO" variant). */
template <Semiring S>
using CooSpmspv = RowMajorSpmspv<S, false>;

/** CSR row-wise SpMSpV (excluded from the paper's Figure 5 for being
 * 2.8x-25x slower; reproduced by bench/fig05). */
template <Semiring S>
using CsrSpmspv = RowMajorSpmspv<S, true>;

} // namespace alphapim::core

#endif // ALPHA_PIM_CORE_SPMSPV_HH
