#include "engine.hh"

namespace alphapim::core
{

const char *
mxvStrategyName(MxvStrategy strategy)
{
    switch (strategy) {
      case MxvStrategy::Adaptive:
        return "adaptive";
      case MxvStrategy::CostModel:
        return "cost-model";
      case MxvStrategy::SpmspvOnly:
        return "spmspv-only";
      case MxvStrategy::SpmvOnly:
        return "spmv-only";
    }
    return "unknown";
}

} // namespace alphapim::core
