#include "cost_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "core/partition.hh"

namespace alphapim::core
{

KernelCostModel::KernelCostModel(const upmem::UpmemSystem &sys,
                                 const sparse::GraphStats &stats,
                                 unsigned dpus)
    : sys_(sys), stats_(stats), dpus_(dpus)
{
    ALPHA_ASSERT(dpus_ > 0, "cost model needs at least one DPU");
    chooseGridShape(dpus_, gridRows_, gridCols_);
}

std::uint64_t
KernelCostModel::expectedOutputNnz(double density) const
{
    // d * nnz updates land on N rows ~uniformly: coverage follows
    // the coupon-collector expectation N * (1 - exp(-updates / N)).
    const double n = static_cast<double>(stats_.nodes);
    const double updates =
        density * static_cast<double>(stats_.nnz);
    if (n <= 0.0)
        return 0;
    return static_cast<std::uint64_t>(
        n * (1.0 - std::exp(-updates / n)));
}

KernelCostEstimate
KernelCostModel::estimateSpmspv(double density) const
{
    const auto &cfg = sys_.config();
    const double n = static_cast<double>(stats_.nodes);
    const double xnnz = std::max(1.0, density * n);
    const double updates = std::max(
        1.0, density * static_cast<double>(stats_.nnz));

    KernelCostEstimate est;

    // Load: compressed x segments scattered per grid column,
    // duplicated down each grid row.
    const auto seg_bytes =
        static_cast<Bytes>(xnnz / gridCols_ * 8.0);
    est.load = sys_.transfer().uniformScatter(
        std::max<Bytes>(seg_bytes, 8), dpus_,
        upmem::TransferDirection::HostToDpu);

    // Kernel: per update ~9 dispatched instructions plus streaming
    // at dmaBytesPerCycle; per active column a colPtr lookup.
    const double per_dpu_updates =
        updates / static_cast<double>(dpus_) * imbalance_;
    const double per_dpu_cols =
        xnnz / static_cast<double>(gridCols_) * imbalance_;
    const double cycles =
        (per_dpu_updates * 9.0 + per_dpu_cols * 6.0) /
            issueEfficiency_ +
        per_dpu_updates * 8.0 / cfg.dpu.dmaBytesPerCycle +
        per_dpu_cols * cfg.dpu.dmaSetupCycles;
    est.kernel =
        cfg.kernelLaunchOverhead + cycles / cfg.dpu.clockHz;

    // Retrieve: compressed partials; grid rows overlap across the
    // columns of the same row slice.
    const double out_nnz =
        static_cast<double>(expectedOutputNnz(density));
    const double retrieved = std::min(
        updates, out_nnz * static_cast<double>(gridCols_));
    est.retrieve = sys_.transfer().uniformScatter(
        std::max<Bytes>(static_cast<Bytes>(
                            retrieved / dpus_ * 8.0),
                        8),
        dpus_, upmem::TransferDirection::DpuToHost);

    // Merge: combine the retrieved partials on the host.
    est.merge = sys_.host().mergeTime(
        static_cast<Bytes>(retrieved * 8.0 + n * 4.0),
        static_cast<std::uint64_t>(retrieved));
    return est;
}

KernelCostEstimate
KernelCostModel::estimateSpmv() const
{
    const auto &cfg = sys_.config();
    const double n = static_cast<double>(stats_.nodes);
    const double nnz = static_cast<double>(stats_.nnz);

    KernelCostEstimate est;

    // Load: dense x segments per grid column.
    const auto seg_bytes = static_cast<Bytes>(n / gridCols_ * 4.0);
    est.load = sys_.transfer().uniformScatter(
        std::max<Bytes>(seg_bytes, 8), dpus_,
        upmem::TransferDirection::HostToDpu);

    // Kernel: every stored nonzero is processed; x segments are
    // WRAM-cached when they fit (~6 instructions per entry), else
    // a small DMA per entry.
    const bool cached =
        seg_bytes <= cfg.dpu.wramBytes / 4;
    const double per_dpu_nnz =
        nnz / static_cast<double>(dpus_) * imbalance_;
    double cycles = per_dpu_nnz * 7.0 / issueEfficiency_ +
                    per_dpu_nnz * 12.0 / cfg.dpu.dmaBytesPerCycle;
    if (!cached)
        cycles += per_dpu_nnz * cfg.dpu.dmaSetupCycles;
    est.kernel =
        cfg.kernelLaunchOverhead + cycles / cfg.dpu.clockHz;

    // Retrieve: dense row slices, duplicated per grid column.
    const auto slice_bytes =
        static_cast<Bytes>(n / gridRows_ * 4.0);
    est.retrieve = sys_.transfer().uniformScatter(
        std::max<Bytes>(slice_bytes, 8), dpus_,
        upmem::TransferDirection::DpuToHost);

    // Merge: reduce gridCols partials per row slice.
    est.merge = sys_.host().mergeTime(
        static_cast<Bytes>(n * 4.0 * (gridCols_ + 1)),
        static_cast<std::uint64_t>(n) * gridCols_);
    return est;
}

double
KernelCostModel::predictedSwitchDensity() const
{
    const double spmv_total = estimateSpmv().total();
    // SpMSpV cost is monotone in density; bisect for the crossing.
    double lo = 0.0, hi = 1.0;
    if (estimateSpmspv(1.0).total() <= spmv_total)
        return 1.0;
    if (estimateSpmspv(1e-4).total() >= spmv_total)
        return 1e-4;
    for (int iter = 0; iter < 40; ++iter) {
        const double mid = (lo + hi) / 2.0;
        if (estimateSpmspv(mid).total() <= spmv_total)
            lo = mid;
        else
            hi = mid;
    }
    return (lo + hi) / 2.0;
}

} // namespace alphapim::core
