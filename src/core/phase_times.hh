/**
 * @file
 * Per-phase execution time record of one PIM matrix-vector launch:
 * the Load / Kernel / Retrieve / Merge breakdown that every figure in
 * the paper's evaluation reports.
 */

#ifndef ALPHA_PIM_CORE_PHASE_TIMES_HH
#define ALPHA_PIM_CORE_PHASE_TIMES_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "upmem/profile.hh"

namespace alphapim::core
{

/** Load / Kernel / Retrieve / Merge wall-clock model times. */
struct PhaseTimes
{
    Seconds load = 0.0;     ///< input vector into MRAM banks
    Seconds kernel = 0.0;   ///< DPU execution
    Seconds retrieve = 0.0; ///< partial outputs back to the host
    Seconds merge = 0.0;    ///< host-side merge + convergence checks

    /** Sum of all phases. */
    Seconds total() const { return load + kernel + retrieve + merge; }

    /** Accumulate (e.g. across iterations). */
    PhaseTimes &
    operator+=(const PhaseTimes &other)
    {
        load += other.load;
        kernel += other.kernel;
        retrieve += other.retrieve;
        merge += other.merge;
        return *this;
    }
};

/** Result of one matrix-vector product on the PIM system. */
template <typename V>
struct MxvResult
{
    /** Dense output vector (additive-identity filled). */
    std::vector<V> y;

    /** Nonzero count of y (entries differing from the semiring zero). */
    std::uint64_t outputNnz = 0;

    /** Phase breakdown of this launch. */
    PhaseTimes times;

    /** Aggregated DPU profile (stalls, instruction mix, threads). */
    upmem::LaunchProfile profile;

    /** Semiring add+mul operations performed (for utilization). */
    std::uint64_t semiringOps = 0;
};

} // namespace alphapim::core

#endif // ALPHA_PIM_CORE_PHASE_TIMES_HH
