#include "launch_scope.hh"

namespace alphapim::core
{

LaunchScope::LaunchScope(const char *kernel_name, bool used_spmv,
                         bool switched, double input_density)
    : kernel_(kernel_name), usedSpmv_(used_spmv),
      switched_(switched), density_(input_density),
      tracing_(telemetry::tracer().enabled())
{
    if (tracing_)
        start_ = telemetry::tracer().now();
}

void
LaunchScope::finish(const PhaseTimes &times,
                    const upmem::LaunchProfile &profile,
                    std::uint64_t semiring_ops)
{
    if (tracing_) {
        auto &t = telemetry::tracer();
        t.nameTrack(telemetry::engineTrack, "engine");
        t.completeEvent(
            telemetry::engineTrack, kernel_, "multiply", start_,
            times.total(),
            {telemetry::arg("input_density", density_),
             telemetry::arg("semiring_ops", semiring_ops),
             telemetry::arg("active_dpus",
                            static_cast<std::uint64_t>(
                                profile.activeDpus))});
        Seconds at = start_;
        const struct
        {
            const char *name;
            Seconds duration;
        } phases[] = {{"load", times.load},
                      {"kernel", times.kernel},
                      {"retrieve", times.retrieve},
                      {"merge", times.merge}};
        for (const auto &phase : phases) {
            if (phase.duration > 0.0) {
                t.completeEvent(telemetry::engineTrack, phase.name,
                                "phase", at, phase.duration);
            }
            at += phase.duration;
        }
        // Sub-emitters (transfer model, kernel launcher) advanced
        // the clock piecemeal; the phase total is authoritative.
        t.advanceTo(start_ + times.total());
        if (switched_) {
            t.instantEvent(telemetry::engineTrack, "kernel-switch",
                           "adaptive", start_,
                           {telemetry::arg("to", kernel_)});
        }
    }

    auto &m = telemetry::metrics();
    if (m.enabled()) {
        m.addCounter(usedSpmv_ ? "engine.spmv_launches"
                               : "engine.spmspv_launches");
        if (switched_)
            m.addCounter("engine.kernel_switches");
        m.addCounter("engine.semiring_ops", semiring_ops);
        m.addScalar("phase.load_seconds", times.load);
        m.addScalar("phase.kernel_seconds", times.kernel);
        m.addScalar("phase.retrieve_seconds", times.retrieve);
        m.addScalar("phase.merge_seconds", times.merge);
        m.addSample("engine.input_density", density_);
    }
}

} // namespace alphapim::core
