/**
 * @file
 * Algebraic semirings (Table 1 of the paper). A semiring supplies the
 * (+) and (x) of the matrix-vector product together with the DPU
 * instruction classes the operations map to, so one kernel template
 * serves BFS (boolean or-and), SSSP (tropical min-plus) and PPR
 * (arithmetic plus-times).
 */

#ifndef ALPHA_PIM_CORE_SEMIRING_HH
#define ALPHA_PIM_CORE_SEMIRING_HH

#include <algorithm>
#include <concepts>
#include <limits>

#include "common/types.hh"
#include "upmem/op.hh"

namespace alphapim::core
{

/**
 * Requirements on a semiring type used by the kernels.
 *
 * A semiring defines: the element type, the additive identity
 * ("zero", the empty-slot marker of sparse storage), the
 * multiplicative identity, add/mul, a conversion from the stored
 * float matrix value, and the DPU op classes charged per add/mul.
 */
template <typename S>
concept Semiring = requires(typename S::Value a, typename S::Value b,
                            float m) {
    { S::zero() } -> std::same_as<typename S::Value>;
    { S::one() } -> std::same_as<typename S::Value>;
    { S::add(a, b) } -> std::same_as<typename S::Value>;
    { S::mul(a, b) } -> std::same_as<typename S::Value>;
    { S::isZero(a) } -> std::same_as<bool>;
    { S::fromMatrix(m) } -> std::same_as<typename S::Value>;
    { S::addOp() } -> std::same_as<upmem::OpClass>;
    { S::mulOp() } -> std::same_as<upmem::OpClass>;
};

/** Boolean (or, and): BFS reachability. */
struct BoolOrAnd
{
    using Value = std::uint32_t;

    static Value zero() { return 0; }
    static Value one() { return 1; }
    static Value add(Value a, Value b) { return a | b; }
    static Value mul(Value a, Value b) { return a & b; }
    static bool isZero(Value a) { return a == 0; }
    static Value fromMatrix(float m) { return m != 0.0f ? 1u : 0u; }
    static upmem::OpClass addOp() { return upmem::OpClass::Logic; }
    static upmem::OpClass mulOp() { return upmem::OpClass::Logic; }
    static const char *name() { return "bool-or-and"; }
};

/** Tropical (min, +) over R u {inf}: SSSP relaxation. */
struct MinPlus
{
    using Value = float;

    static Value zero() { return std::numeric_limits<float>::infinity(); }
    static Value one() { return 0.0f; }
    static Value add(Value a, Value b) { return std::min(a, b); }
    static Value mul(Value a, Value b) { return a + b; }
    static bool isZero(Value a) { return a == zero(); }
    static Value fromMatrix(float m) { return m; }
    static upmem::OpClass addOp() { return upmem::OpClass::Compare; }
    static upmem::OpClass mulOp() { return upmem::OpClass::FloatAdd; }
    static const char *name() { return "min-plus"; }
};

/**
 * Arithmetic (+, x) over 32-bit integers: the INT32 configuration
 * SparseP evaluates SpMV with (paper Figure 2). Uses the DPU's
 * native adder and the expanded 8x8 hardware multiplier.
 */
struct IntPlusTimes
{
    using Value = std::uint32_t;

    static Value zero() { return 0; }
    static Value one() { return 1; }
    static Value add(Value a, Value b) { return a + b; }
    static Value mul(Value a, Value b) { return a * b; }
    static bool isZero(Value a) { return a == 0; }
    static Value
    fromMatrix(float m)
    {
        return static_cast<Value>(m);
    }
    static upmem::OpClass addOp() { return upmem::OpClass::IntAdd; }
    static upmem::OpClass mulOp() { return upmem::OpClass::IntMul; }
    static const char *name() { return "int-plus-times"; }
};

/** Arithmetic (+, x) over R: PPR / PageRank. */
struct PlusTimes
{
    using Value = float;

    static Value zero() { return 0.0f; }
    static Value one() { return 1.0f; }
    static Value add(Value a, Value b) { return a + b; }
    static Value mul(Value a, Value b) { return a * b; }
    static bool isZero(Value a) { return a == 0.0f; }
    static Value fromMatrix(float m) { return m; }
    static upmem::OpClass addOp() { return upmem::OpClass::FloatAdd; }
    static upmem::OpClass mulOp() { return upmem::OpClass::FloatMul; }
    static const char *name() { return "plus-times"; }
};

/**
 * (min, select-second) semiring over vertex labels: connected
 * components by label propagation, an extension beyond the paper's
 * three applications (its framework explicitly generalizes to other
 * semiring algorithms). mul ignores the matrix value and forwards
 * the input-vector label; add keeps the minimum label.
 */
struct MinSelect
{
    using Value = std::uint32_t;

    static Value zero() { return invalidNode; }
    static Value one() { return 0; }
    static Value add(Value a, Value b) { return std::min(a, b); }
    static Value mul(Value a, Value b) { (void)a; return b; }
    static bool isZero(Value a) { return a == invalidNode; }
    static Value
    fromMatrix(float m)
    {
        return m != 0.0f ? one() : zero();
    }
    static upmem::OpClass addOp() { return upmem::OpClass::Compare; }
    static upmem::OpClass mulOp() { return upmem::OpClass::Move; }
    static const char *name() { return "min-select"; }
};

} // namespace alphapim::core

#endif // ALPHA_PIM_CORE_SEMIRING_HH
