/**
 * @file
 * Algebraic semirings (Table 1 of the paper). A semiring supplies the
 * (+) and (x) of the matrix-vector product together with the DPU
 * instruction classes the operations map to, so one kernel template
 * serves BFS (boolean or-and), SSSP (tropical min-plus) and PPR
 * (arithmetic plus-times).
 */

#ifndef ALPHA_PIM_CORE_SEMIRING_HH
#define ALPHA_PIM_CORE_SEMIRING_HH

#include <algorithm>
#include <array>
#include <concepts>
#include <limits>

#include "common/types.hh"
#include "upmem/op.hh"

namespace alphapim::core
{

/**
 * Requirements on a semiring type used by the kernels.
 *
 * A semiring defines: the element type, the additive identity
 * ("zero", the empty-slot marker of sparse storage), the
 * multiplicative identity, add/mul, a conversion from the stored
 * float matrix value, and the DPU op classes charged per add/mul.
 */
template <typename S>
concept Semiring = requires(typename S::Value a, typename S::Value b,
                            float m) {
    { S::zero() } -> std::same_as<typename S::Value>;
    { S::one() } -> std::same_as<typename S::Value>;
    { S::add(a, b) } -> std::same_as<typename S::Value>;
    { S::mul(a, b) } -> std::same_as<typename S::Value>;
    { S::isZero(a) } -> std::same_as<bool>;
    { S::fromMatrix(m) } -> std::same_as<typename S::Value>;
    { S::addOp() } -> std::same_as<upmem::OpClass>;
    { S::mulOp() } -> std::same_as<upmem::OpClass>;
};

/**
 * Lane count of a semiring: how many independent scalar problems one
 * Value carries (multi-source batching). Semirings that batch
 * declare `static constexpr unsigned lanes()`; everything else is a
 * single-lane semiring and the kernels charge exactly the ops they
 * always did. A semiring whose single machine op covers all lanes at
 * once (BitsOrAnd: one 32-bit OR is 32 boolean lanes) deliberately
 * does NOT declare lanes() -- that free ride is the batching win.
 */
template <typename S>
constexpr std::uint32_t
semiringLanes()
{
    if constexpr (requires {
                      { S::lanes() } -> std::convertible_to<unsigned>;
                  })
        return S::lanes();
    else
        return 1;
}

/** Boolean (or, and): BFS reachability. */
struct BoolOrAnd
{
    using Value = std::uint32_t;

    static Value zero() { return 0; }
    static Value one() { return 1; }
    static Value add(Value a, Value b) { return a | b; }
    static Value mul(Value a, Value b) { return a & b; }
    static bool isZero(Value a) { return a == 0; }
    static Value fromMatrix(float m) { return m != 0.0f ? 1u : 0u; }
    static upmem::OpClass addOp() { return upmem::OpClass::Logic; }
    static upmem::OpClass mulOp() { return upmem::OpClass::Logic; }
    static const char *name() { return "bool-or-and"; }
};

/** Tropical (min, +) over R u {inf}: SSSP relaxation. */
struct MinPlus
{
    using Value = float;

    static Value zero() { return std::numeric_limits<float>::infinity(); }
    static Value one() { return 0.0f; }
    static Value add(Value a, Value b) { return std::min(a, b); }
    static Value mul(Value a, Value b) { return a + b; }
    static bool isZero(Value a) { return a == zero(); }
    static Value fromMatrix(float m) { return m; }
    static upmem::OpClass addOp() { return upmem::OpClass::Compare; }
    static upmem::OpClass mulOp() { return upmem::OpClass::FloatAdd; }
    static const char *name() { return "min-plus"; }
};

/**
 * Arithmetic (+, x) over 32-bit integers: the INT32 configuration
 * SparseP evaluates SpMV with (paper Figure 2). Uses the DPU's
 * native adder and the expanded 8x8 hardware multiplier.
 */
struct IntPlusTimes
{
    using Value = std::uint32_t;

    static Value zero() { return 0; }
    static Value one() { return 1; }
    static Value add(Value a, Value b) { return a + b; }
    static Value mul(Value a, Value b) { return a * b; }
    static bool isZero(Value a) { return a == 0; }
    static Value
    fromMatrix(float m)
    {
        return static_cast<Value>(m);
    }
    static upmem::OpClass addOp() { return upmem::OpClass::IntAdd; }
    static upmem::OpClass mulOp() { return upmem::OpClass::IntMul; }
    static const char *name() { return "int-plus-times"; }
};

/** Arithmetic (+, x) over R: PPR / PageRank. */
struct PlusTimes
{
    using Value = float;

    static Value zero() { return 0.0f; }
    static Value one() { return 1.0f; }
    static Value add(Value a, Value b) { return a + b; }
    static Value mul(Value a, Value b) { return a * b; }
    static bool isZero(Value a) { return a == 0.0f; }
    static Value fromMatrix(float m) { return m; }
    static upmem::OpClass addOp() { return upmem::OpClass::FloatAdd; }
    static upmem::OpClass mulOp() { return upmem::OpClass::FloatMul; }
    static const char *name() { return "plus-times"; }
};

/**
 * (min, select-second) semiring over vertex labels: connected
 * components by label propagation, an extension beyond the paper's
 * three applications (its framework explicitly generalizes to other
 * semiring algorithms). mul ignores the matrix value and forwards
 * the input-vector label; add keeps the minimum label.
 */
struct MinSelect
{
    using Value = std::uint32_t;

    static Value zero() { return invalidNode; }
    static Value one() { return 0; }
    static Value add(Value a, Value b) { return std::min(a, b); }
    static Value mul(Value a, Value b) { (void)a; return b; }
    static bool isZero(Value a) { return a == invalidNode; }
    static Value
    fromMatrix(float m)
    {
        return m != 0.0f ? one() : zero();
    }
    static upmem::OpClass addOp() { return upmem::OpClass::Compare; }
    static upmem::OpClass mulOp() { return upmem::OpClass::Move; }
    static const char *name() { return "min-select"; }
};

/**
 * Bitmask boolean (or, and): up to 32 concurrent BFS frontiers in
 * one 32-bit word, bit s carrying source s's wavefront. Every DPU op
 * is the same single Logic instruction BoolOrAnd issues, so a
 * 32-source batch costs one sweep -- the serving subsystem's
 * batching win for BFS. one() is all-ones so mul(one(), x) = x.
 */
struct BitsOrAnd
{
    using Value = std::uint32_t;

    static Value zero() { return 0; }
    static Value one() { return ~0u; }
    static Value add(Value a, Value b) { return a | b; }
    static Value mul(Value a, Value b) { return a & b; }
    static bool isZero(Value a) { return a == 0; }
    static Value fromMatrix(float m) { return m != 0.0f ? ~0u : 0u; }
    static upmem::OpClass addOp() { return upmem::OpClass::Logic; }
    static upmem::OpClass mulOp() { return upmem::OpClass::Logic; }
    static const char *name() { return "bits-or-and"; }
};

/** Fixed-width SIMD-style value of L independent float lanes. The
 * defaulted comparison gives SparseVector's fromDense/toDense the
 * `!=` they need. */
template <unsigned L>
struct LaneArray
{
    std::array<float, L> lane{};

    float &operator[](unsigned i) { return lane[i]; }
    float operator[](unsigned i) const { return lane[i]; }
    friend bool operator==(const LaneArray &,
                           const LaneArray &) = default;
};

/**
 * Tropical (min, +) over L lanes: L concurrent SSSP problems, lane s
 * relaxing from source s. Unused lanes ride as the additive identity
 * (+inf), so every lane's result is bit-identical to the
 * corresponding single-source MinPlus run: min is exact and
 * order-independent over non-negative distances, and the additions
 * pair exactly the operands the sequential run pairs. Unlike
 * BitsOrAnd the DPU really does L compares / L float adds per
 * matrix entry, so the kernels charge ops (and move value bytes)
 * scaled by lanes() -- batching SSSP amortizes transfers and
 * traversal, not the arithmetic.
 */
template <unsigned L>
struct MinPlusLanes
{
    using Value = LaneArray<L>;

    static constexpr unsigned lanes() { return L; }
    static Value
    zero()
    {
        Value v;
        v.lane.fill(std::numeric_limits<float>::infinity());
        return v;
    }
    static Value
    one()
    {
        Value v;
        v.lane.fill(0.0f);
        return v;
    }
    static Value
    add(Value a, Value b)
    {
        Value v;
        for (unsigned i = 0; i < L; ++i)
            v.lane[i] = std::min(a.lane[i], b.lane[i]);
        return v;
    }
    static Value
    mul(Value a, Value b)
    {
        Value v;
        for (unsigned i = 0; i < L; ++i)
            v.lane[i] = a.lane[i] + b.lane[i];
        return v;
    }
    static bool
    isZero(Value a)
    {
        for (unsigned i = 0; i < L; ++i)
            if (a.lane[i] !=
                std::numeric_limits<float>::infinity())
                return false;
        return true;
    }
    static Value
    fromMatrix(float m)
    {
        Value v;
        v.lane.fill(m);
        return v;
    }
    static upmem::OpClass addOp() { return upmem::OpClass::Compare; }
    static upmem::OpClass mulOp() { return upmem::OpClass::FloatAdd; }
    static const char *name() { return "min-plus-lanes"; }
};

} // namespace alphapim::core

#endif // ALPHA_PIM_CORE_SEMIRING_HH
