/**
 * @file
 * Adaptive SpMSpV/SpMV switching (paper section 4.2).
 *
 * A lightweight decision tree trained on graph features (average
 * degree, degree standard deviation) classifies a dataset as regular
 * or scale-free and selects the density threshold at which the
 * engine switches from SpMSpV to SpMV: ~20% for regular graphs,
 * ~50% for scale-free graphs. Classification happens once during
 * pre-processing; at runtime only the input-vector density is
 * monitored.
 */

#ifndef ALPHA_PIM_CORE_ADAPTIVE_HH
#define ALPHA_PIM_CORE_ADAPTIVE_HH

#include <memory>
#include <vector>

#include "sparse/datasets.hh"
#include "sparse/graph_stats.hh"

namespace alphapim::core
{

/** One training example for the graph classifier. */
struct GraphSample
{
    double avgDegree;
    double degreeStd;
    bool scaleFree; ///< label: true = scale-free, false = regular
};

/**
 * Depth-limited CART decision tree over the two degree features.
 * Small and exact: every (feature, threshold) split is scored by
 * Gini impurity; midpoints between consecutive observed values are
 * the candidate thresholds.
 */
class DegreeDecisionTree
{
  public:
    /** Build an untrained tree (classifies everything scale-free). */
    DegreeDecisionTree() = default;

    /** Fit on labelled samples. @param max_depth tree depth limit */
    void train(const std::vector<GraphSample> &samples,
               unsigned max_depth = 2);

    /** Classify a graph by its degree features. */
    bool classifyScaleFree(double avg_degree, double degree_std) const;

    /** Number of decision nodes after training. */
    unsigned nodeCount() const;

  private:
    struct Node
    {
        bool leaf = true;
        bool label = true;     ///< leaf: scale-free?
        unsigned feature = 0;  ///< split: 0 = avgDegree, 1 = degreeStd
        double threshold = 0;  ///< split: go left when value <= thr
        int left = -1;
        int right = -1;
    };

    int build(std::vector<GraphSample> samples, unsigned depth);

    std::vector<Node> nodes_;
    int root_ = -1;
};

/**
 * The kernel-selection model: classifier + per-class switch points.
 */
class KernelSwitchModel
{
  public:
    /** Density threshold for regular graphs (paper: ~20%). */
    static constexpr double regularThreshold = 0.20;

    /** Density threshold for scale-free graphs (paper: ~50%). */
    static constexpr double scaleFreeThreshold = 0.50;

    /** Model with the default tree trained on the Table 2 corpus. */
    KernelSwitchModel();

    /** Model wrapping a custom-trained tree. */
    explicit KernelSwitchModel(DegreeDecisionTree tree);

    /** Switch threshold for a graph with the given statistics. */
    double switchThreshold(const sparse::GraphStats &stats) const;

    /** Classification for a graph with the given statistics. */
    bool isScaleFree(const sparse::GraphStats &stats) const;

    /** The training corpus used by the default model. */
    static std::vector<GraphSample> defaultTrainingSet();

  private:
    DegreeDecisionTree tree_;
};

} // namespace alphapim::core

#endif // ALPHA_PIM_CORE_ADAPTIVE_HH
