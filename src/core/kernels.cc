#include "kernels.hh"

namespace alphapim::core
{

const char *
kernelVariantName(KernelVariant variant)
{
    switch (variant) {
      case KernelVariant::SpmspvCoo:
        return "COO";
      case KernelVariant::SpmspvCsr:
        return "CSR";
      case KernelVariant::SpmspvCscR:
        return "CSC-R";
      case KernelVariant::SpmspvCscC:
        return "CSC-C";
      case KernelVariant::SpmspvCsc2d:
        return "CSC-2D";
      case KernelVariant::SpmvCoo1d:
        return "SpMV-1D";
      case KernelVariant::SpmvCooRow1d:
        return "SpMV-COO.row";
      case KernelVariant::SpmvCsrRow1d:
        return "SpMV-CSR.row";
      case KernelVariant::SpmvDcoo2d:
        return "SpMV-2D";
    }
    return "unknown";
}

} // namespace alphapim::core
