/**
 * @file
 * SpMV kernel implementations after SparseP's best performers
 * (paper section 3):
 *  - COO.nnz: 1D row partitioning with equal-nnz slices and a dense
 *    input vector broadcast to every DPU;
 *  - DCOO: 2D grid of equal-nnz COO tiles with dense input-vector
 *    segments per grid column.
 *
 * Both process every stored nonzero regardless of input sparsity;
 * input-vector accesses are input-driven (column indices), which is
 * the irregular pattern behind SpMV's memory stalls in Figure 9.
 */

#ifndef ALPHA_PIM_CORE_SPMV_HH
#define ALPHA_PIM_CORE_SPMV_HH

#include <algorithm>
#include <mutex>

#include "analysis/imbalance.hh"
#include "common/logging.hh"
#include "core/device_block.hh"
#include "core/kernel_base.hh"
#include "core/partition.hh"
#include "telemetry/host_prof.hh"
#include "upmem/tasklet_ctx.hh"

namespace alphapim::core
{

/** Partitioning mode of the SpMV kernels. */
enum class SpmvMode
{
    Coo1d,  ///< COO.nnz: equal-nnz row slices, broadcast dense x
    Dcoo2d, ///< DCOO: 2D tiles, dense x segments per grid column
};

/**
 * Dense-input SpMV over COO blocks.
 */
template <Semiring S>
class SpmvKernel : public PimMxvKernel<S>
{
  public:
    using Value = typename S::Value;
    /// Padded stride of one value in the MRAM dense-x image.
    static constexpr std::uint64_t kXStride =
        detail::valueStride<Value>;
    /// Padded stride of one value in the WRAM merge slots.
    static constexpr std::uint64_t kAccStride =
        detail::valueStride<Value>;
    /// Scalar lanes one value carries (ops charged per lane).
    static constexpr std::uint32_t kLanes = semiringLanes<S>();
    /// WRAM words loaded to bring one value into registers.
    static constexpr std::uint32_t kValueWords =
        detail::valueWords<Value>;

    /** Build the partitioned device image. */
    SpmvKernel(const upmem::UpmemSystem &sys,
               const sparse::CooMatrix<float> &a, unsigned dpus,
               SpmvMode mode)
        : sys_(sys), dpus_(dpus), mode_(mode), n_(a.numRows())
    {
        ALPHA_ASSERT(a.numRows() == a.numCols(),
                     "adjacency matrix must be square");
        telemetry::HostPhaseTimer host_timer(
            telemetry::HostPhase::PartitionBuild);
        if (mode_ == SpmvMode::Coo1d) {
            blocks_ = buildNnzSlices(a, dpus_);
        } else {
            grid_ = makeGrid2d(a, dpus_);
            blocks_ = buildGridBlocks(a, grid_, BlockOrder::RowMajor);
        }
    }

    MxvResult<Value>
    run(const sparse::SparseVector<Value> &x) const override
    {
        ALPHA_ASSERT(x.dim() == n_, "input vector dimension mismatch");
        MxvResult<Value> result;
        result.y.assign(n_, S::zero());

        // -------- Load phase: dense input vector --------
        const Bytes dense_bytes =
            static_cast<Bytes>(n_) * sizeof(Value);
        if (mode_ == SpmvMode::Coo1d) {
            result.times.load =
                sys_.transfer().broadcast(dense_bytes, dpus_);
        } else {
            std::vector<Bytes> seg(blocks_.size());
            for (std::size_t d = 0; d < blocks_.size(); ++d) {
                seg[d] = static_cast<Bytes>(blocks_[d].cols) *
                         sizeof(Value);
            }
            result.times.load = sys_.transfer().scatterGather(
                seg, upmem::TransferDirection::HostToDpu);
        }

        std::vector<Value> x_dense = x.toDense(S::zero());

        // -------- Kernel phase --------
        std::vector<Bytes> retrieve_bytes(blocks_.size(), 0);
        std::uint64_t merge_ops = 0;
        std::uint64_t semiring_ops = 0;
        std::mutex merge_mutex;

        if (analysis::imbalance().enabled()) {
            analysis::imbalance().setLaunchContext(
                this->name(), partitionShares(blocks_));
        }
        const auto profile = sys_.launchKernel(
            static_cast<unsigned>(blocks_.size()),
            [&](unsigned dpu, std::vector<upmem::TaskletTrace> &tr) {
                runOneDpu(dpu, x_dense, tr, result, retrieve_bytes,
                          merge_ops, semiring_ops, merge_mutex);
            });
        result.profile = profile;
        result.times.kernel = sys_.kernelSeconds(profile);
        result.semiringOps = semiring_ops;

        // -------- Retrieve phase: dense output slices --------
        result.times.retrieve = sys_.transfer().scatterGather(
            retrieve_bytes, upmem::TransferDirection::DpuToHost);

        // -------- Merge phase --------
        Bytes merge_bytes = 0;
        if (mode_ == SpmvMode::Coo1d) {
            // Only slice-boundary rows need combining.
            merge_bytes = static_cast<Bytes>(dpus_) * 16;
        } else {
            merge_bytes = static_cast<Bytes>(n_) * sizeof(Value);
            for (Bytes b : retrieve_bytes)
                merge_bytes += b;
        }
        result.times.merge =
            sys_.host().mergeTime(merge_bytes, merge_ops);

        for (const Value &v : result.y) {
            if (!S::isZero(v))
                ++result.outputNnz;
        }
        return result;
    }

    const char *
    name() const override
    {
        return mode_ == SpmvMode::Coo1d ? "SpMV-COO.nnz(1D)"
                                        : "SpMV-DCOO(2D)";
    }

    KernelKind kind() const override { return KernelKind::SpMV; }

    NodeId numRows() const override { return n_; }

    Bytes
    matrixBytes() const override
    {
        Bytes total = 0;
        for (const auto &b : blocks_)
            total += b.mramBytes();
        return total;
    }

    /** Grid shape (valid in Dcoo2d mode). */
    const Grid2d &grid() const { return grid_; }

  private:
    void
    runOneDpu(unsigned dpu, const std::vector<Value> &x_dense,
              std::vector<upmem::TaskletTrace> &traces,
              MxvResult<Value> &result,
              std::vector<Bytes> &retrieve_bytes,
              std::uint64_t &merge_ops, std::uint64_t &semiring_ops,
              std::mutex &merge_mutex) const
    {
        const DeviceBlock &block = blocks_[dpu];
        const auto &cfg = sys_.config().dpu;
        const unsigned tasklets = cfg.tasklets;
        const bool mram_addressed =
            detail::mramRegionFits(n_ * (kXStride / 8));

        // The dense segment is cached in WRAM when it fits (the
        // kernel-side advantage of 2D tiling); COO.nnz keeps the full
        // vector in MRAM and pays a small DMA per access.
        const Bytes seg_bytes =
            static_cast<Bytes>(block.cols) * sizeof(Value);
        const bool x_cached =
            seg_bytes <= detail::wramInputBudget(cfg);

        std::vector<Value> partial(block.rows, S::zero());
        std::uint64_t local_ops = 0;

        for (unsigned t = 0; t < tasklets; ++t) {
            upmem::TaskletCtx ctx(cfg, traces[t]);
            if (x_cached) {
                const Bytes share = seg_bytes / tasklets + 1;
                ctx.streamFromMram(
                    share, (detail::mramInputBase + t * share) & ~7ull);
                ctx.barrier(detail::kernelBarrier);
            }
        }

        const auto split = detail::evenSplit(block.nnz(), tasklets);
        for (unsigned t = 0; t < tasklets; ++t) {
            upmem::TaskletCtx ctx(cfg, traces[t]);
            const std::size_t first = split[t];
            const std::size_t last = split[t + 1];
            if (first == last)
                continue;

            const auto mat = detail::alignedSlice(
                detail::mramMatrixBase, first, last, 12);
            ctx.streamFromMram((last - first) * 12, mat.addr);

            NodeId current_row = invalidNode;
            for (std::size_t e = first; e < last; ++e) {
                const NodeId row = block.rowIdx[e];
                const NodeId col = block.colIdx[e];
                ctx.loadWram(2);
                if (x_cached) {
                    ctx.loadWram(kValueWords);
                } else {
                    // Input-driven access into the stride-padded
                    // dense-x image.
                    ctx.randomMramRead(
                        kXStride,
                        mram_addressed
                            ? detail::mramInputBase +
                                  static_cast<std::uint64_t>(
                                      block.colBase + col) *
                                      kXStride
                            : upmem::traceNoAddr);
                }
                const Value xv = x_dense[block.colBase + col];
                partial[row] = S::add(
                    partial[row],
                    S::mul(S::fromMatrix(block.values[e]), xv));
                local_ops += 2;
                ctx.op(S::mulOp(), kLanes);
                ctx.op(S::addOp(), kLanes);
                ctx.control(1);
                if (row != current_row) {
                    ctx.storeWram(1);
                    current_row = row;
                }
            }
            // Slice-boundary rows are shared with the neighbouring
            // tasklets; each is merged into its shared WRAM slot
            // under the *row's* mutex, so both neighbours of a
            // straddled row serialize on the same lock.
            const auto mergeBoundary = [&](NodeId row) {
                const std::uint32_t m = row % detail::outputMutexes;
                const std::uint32_t slot =
                    detail::wramOutputBase +
                    m * static_cast<std::uint32_t>(kAccStride);
                ctx.mutexLock(m);
                ctx.loadWramAt(slot, sizeof(Value));
                ctx.op(S::addOp(), kLanes);
                ctx.storeWramAt(slot, sizeof(Value));
                ctx.mutexUnlock(m);
            };
            const NodeId first_row = block.rowIdx[first];
            const NodeId last_row = block.rowIdx[last - 1];
            mergeBoundary(first_row);
            if (last_row != first_row)
                mergeBoundary(last_row);
        }

        // Dense write-back of the output slice: disjoint, 8-byte-
        // aligned row ranges per tasklet.
        const auto rows_split =
            detail::evenSplit(block.rows, tasklets);
        for (unsigned t = 0; t < tasklets; ++t) {
            upmem::TaskletCtx ctx(cfg, traces[t]);
            ctx.barrier(detail::kernelBarrier);
            const auto out = detail::alignedSlice(
                detail::mramOutputBase, rows_split[t],
                rows_split[t + 1], sizeof(Value));
            if (out.bytes > 0)
                ctx.streamToMram(out.bytes, out.addr);
        }

        {
            telemetry::HostPhaseTimer host_timer(
                telemetry::HostPhase::HostMerge);
            std::lock_guard<std::mutex> lock(merge_mutex);
            for (NodeId r = 0; r < block.rows; ++r) {
                if (!S::isZero(partial[r])) {
                    result.y[block.rowBase + r] = S::add(
                        result.y[block.rowBase + r], partial[r]);
                }
            }
            retrieve_bytes[dpu] =
                static_cast<Bytes>(block.rows) * sizeof(Value);
            if (mode_ == SpmvMode::Dcoo2d)
                merge_ops += block.rows;
            else
                merge_ops += 2;
            semiring_ops += local_ops;
        }
    }

    const upmem::UpmemSystem &sys_;
    unsigned dpus_;
    SpmvMode mode_;
    NodeId n_;
    Grid2d grid_;
    std::vector<DeviceBlock> blocks_;
};

/**
 * Row-granular 1D SpMV variants from the SparseP design space:
 * COO.row and CSR.row. Rows are distributed in equal-width ranges
 * (not nnz-balanced), so skewed graphs overload the hub DPUs -- the
 * imbalance that makes SparseP prefer COO.nnz. CSR streams 8 bytes
 * per nonzero plus the row-pointer array; COO streams 12 bytes per
 * nonzero with no row pointers.
 */
template <Semiring S, bool UseCsr>
class SpmvRow1d : public PimMxvKernel<S>
{
  public:
    using Value = typename S::Value;
    /// Padded stride of one value in the MRAM dense-x image.
    static constexpr std::uint64_t kXStride =
        detail::valueStride<Value>;
    /// Scalar lanes one value carries (ops charged per lane).
    static constexpr std::uint32_t kLanes = semiringLanes<S>();

    /** Build the row-uniform partitioned device image. */
    SpmvRow1d(const upmem::UpmemSystem &sys,
              const sparse::CooMatrix<float> &a, unsigned dpus)
        : sys_(sys), dpus_(dpus), n_(a.numRows())
    {
        ALPHA_ASSERT(a.numRows() == a.numCols(),
                     "adjacency matrix must be square");
        telemetry::HostPhaseTimer host_timer(
            telemetry::HostPhase::PartitionBuild);
        blocks_ = buildRowBlocks(a, uniformPartition(n_, dpus_),
                                 BlockOrder::RowMajor);
    }

    MxvResult<Value>
    run(const sparse::SparseVector<Value> &x) const override
    {
        ALPHA_ASSERT(x.dim() == n_, "input vector dimension mismatch");
        MxvResult<Value> result;
        result.y.assign(n_, S::zero());

        const Bytes dense_bytes =
            static_cast<Bytes>(n_) * sizeof(Value);
        result.times.load =
            sys_.transfer().broadcast(dense_bytes, dpus_);

        std::vector<Value> x_dense = x.toDense(S::zero());
        std::vector<Bytes> retrieve_bytes(blocks_.size(), 0);
        std::uint64_t semiring_ops = 0;
        std::mutex merge_mutex;

        if (analysis::imbalance().enabled()) {
            analysis::imbalance().setLaunchContext(
                this->name(), partitionShares(blocks_));
        }
        const auto profile = sys_.launchKernel(
            static_cast<unsigned>(blocks_.size()),
            [&](unsigned dpu, std::vector<upmem::TaskletTrace> &tr) {
                runOneDpu(dpu, x_dense, tr, result, retrieve_bytes,
                          semiring_ops, merge_mutex);
            });
        result.profile = profile;
        result.times.kernel = sys_.kernelSeconds(profile);
        result.semiringOps = semiring_ops;

        result.times.retrieve = sys_.transfer().scatterGather(
            retrieve_bytes, upmem::TransferDirection::DpuToHost);
        // Disjoint row slices: no merging beyond the gather.
        result.times.merge = sys_.host().mergeTime(16 * dpus_, 0);

        for (const Value &v : result.y) {
            if (!S::isZero(v))
                ++result.outputNnz;
        }
        return result;
    }

    const char *
    name() const override
    {
        return UseCsr ? "SpMV-CSR.row(1D)" : "SpMV-COO.row(1D)";
    }

    KernelKind kind() const override { return KernelKind::SpMV; }

    NodeId numRows() const override { return n_; }

    Bytes
    matrixBytes() const override
    {
        Bytes total = 0;
        for (const auto &b : blocks_) {
            total += b.mramBytes();
            if (UseCsr) // row-pointer array
                total += static_cast<Bytes>(b.rows + 1) *
                         sizeof(EdgeId);
        }
        return total;
    }

  private:
    void
    runOneDpu(unsigned dpu, const std::vector<Value> &x_dense,
              std::vector<upmem::TaskletTrace> &traces,
              MxvResult<Value> &result,
              std::vector<Bytes> &retrieve_bytes,
              std::uint64_t &semiring_ops,
              std::mutex &merge_mutex) const
    {
        const DeviceBlock &block = blocks_[dpu];
        const auto &cfg = sys_.config().dpu;
        const unsigned tasklets = cfg.tasklets;

        std::vector<Value> partial(block.rows, S::zero());
        std::uint64_t local_ops = 0;

        // Row ranges per entry (block is RowMajor-sorted).
        std::vector<std::size_t> row_start(block.rows + 1, 0);
        for (std::size_t e = 0; e < block.nnz(); ++e)
            ++row_start[block.rowIdx[e] + 1];
        for (NodeId r = 0; r < block.rows; ++r)
            row_start[r + 1] += row_start[r];

        // Row-granular tasklet split: equal row counts (SparseP's
        // .row balancing), regardless of nnz.
        const bool mram_addressed =
            detail::mramRegionFits(n_ * (kXStride / 8));
        const auto rows_split =
            detail::evenSplit(block.rows, tasklets);
        for (unsigned t = 0; t < tasklets; ++t) {
            upmem::TaskletCtx ctx(cfg, traces[t]);
            const auto row_lo = static_cast<NodeId>(rows_split[t]);
            const auto row_hi =
                static_cast<NodeId>(rows_split[t + 1]);
            if (row_lo == row_hi)
                continue;
            if (UseCsr) {
                // Stream this range's row pointers once.
                const auto ptrs = detail::alignedSlice(
                    detail::mramMatrixBase, row_lo, row_hi + 1,
                    sizeof(EdgeId));
                ctx.streamFromMram(
                    static_cast<Bytes>(row_hi - row_lo + 1) *
                        sizeof(EdgeId),
                    ptrs.addr);
            }
            for (NodeId r = row_lo; r < row_hi; ++r) {
                const std::size_t first = row_start[r];
                const std::size_t last = row_start[r + 1];
                ctx.control(UseCsr ? 1 : 2);
                if (first == last)
                    continue;
                const unsigned entry_bytes =
                    UseCsr ? detail::pairBytes : 12;
                const auto mat = detail::alignedSlice(
                    detail::mramMatrixBase, first, last, entry_bytes);
                ctx.streamFromMram((last - first) * entry_bytes,
                                   mat.addr);
                Value acc = S::zero();
                for (std::size_t e = first; e < last; ++e) {
                    const NodeId col = block.colIdx[e];
                    ctx.loadWram(UseCsr ? 2 : 3);
                    // Dense x in MRAM (stride-padded image).
                    ctx.randomMramRead(
                        kXStride,
                        mram_addressed
                            ? detail::mramInputBase +
                                  static_cast<std::uint64_t>(col) *
                                      kXStride
                            : upmem::traceNoAddr);
                    acc = S::add(
                        acc, S::mul(S::fromMatrix(block.values[e]),
                                    x_dense[col]));
                    local_ops += 2;
                    ctx.op(S::mulOp(), kLanes);
                    ctx.op(S::addOp(), kLanes);
                    ctx.control(1);
                }
                partial[r] = acc;
                ctx.storeWram(1);
            }
            ctx.barrier(detail::kernelBarrier);
            // Disjoint, 8-byte-aligned write-back of the row range.
            const auto out = detail::alignedSlice(
                detail::mramOutputBase, row_lo, row_hi,
                sizeof(Value));
            if (out.bytes > 0)
                ctx.streamToMram(out.bytes, out.addr);
        }

        {
            telemetry::HostPhaseTimer host_timer(
                telemetry::HostPhase::HostMerge);
            std::lock_guard<std::mutex> lock(merge_mutex);
            for (NodeId r = 0; r < block.rows; ++r) {
                if (!S::isZero(partial[r]))
                    result.y[block.rowBase + r] = partial[r];
            }
            retrieve_bytes[dpu] =
                static_cast<Bytes>(block.rows) * sizeof(Value);
            semiring_ops += local_ops;
        }
    }

    const upmem::UpmemSystem &sys_;
    unsigned dpus_;
    NodeId n_;
    std::vector<DeviceBlock> blocks_;
};

/** SparseP COO.row: row-granular 1D COO SpMV. */
template <Semiring S>
using SpmvCooRow1d = SpmvRow1d<S, false>;

/** SparseP CSR.row: row-granular 1D CSR SpMV. */
template <Semiring S>
using SpmvCsrRow1d = SpmvRow1d<S, true>;

/** SparseP COO.nnz, the best 1D SpMV. */
template <Semiring S>
class SpmvCoo1d : public SpmvKernel<S>
{
  public:
    /** @copydoc SpmvKernel::SpmvKernel */
    SpmvCoo1d(const upmem::UpmemSystem &sys,
              const sparse::CooMatrix<float> &a, unsigned dpus)
        : SpmvKernel<S>(sys, a, dpus, SpmvMode::Coo1d)
    {
    }
};

/** SparseP DCOO, the best 2D SpMV (ALPHA-PIM's dense-side kernel). */
template <Semiring S>
class SpmvDcoo2d : public SpmvKernel<S>
{
  public:
    /** @copydoc SpmvKernel::SpmvKernel */
    SpmvDcoo2d(const upmem::UpmemSystem &sys,
               const sparse::CooMatrix<float> &a, unsigned dpus)
        : SpmvKernel<S>(sys, a, dpus, SpmvMode::Dcoo2d)
    {
    }
};

} // namespace alphapim::core

#endif // ALPHA_PIM_CORE_SPMV_HH
