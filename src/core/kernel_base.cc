#include "kernel_base.hh"

namespace alphapim::core
{

std::vector<sparse::PartitionShare>
partitionShares(const std::vector<DeviceBlock> &blocks)
{
    std::vector<sparse::PartitionShare> shares;
    shares.reserve(blocks.size());
    for (const DeviceBlock &b : blocks) {
        sparse::PartitionShare s;
        s.rows = b.rows;
        s.nnz = b.nnz();
        s.bytes = b.mramBytes();
        shares.push_back(s);
    }
    return shares;
}

} // namespace alphapim::core

namespace alphapim::core::detail
{

std::vector<std::uint64_t>
evenSplit(std::uint64_t total, unsigned parts)
{
    std::vector<std::uint64_t> starts(parts + 1);
    for (unsigned p = 0; p <= parts; ++p)
        starts[p] = total * p / parts;
    return starts;
}

unsigned
searchDepth(std::uint64_t n)
{
    unsigned depth = 0;
    while (n > 0) {
        ++depth;
        n >>= 1;
    }
    return depth == 0 ? 1 : depth;
}

} // namespace alphapim::core::detail
