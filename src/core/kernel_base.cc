#include "kernel_base.hh"

namespace alphapim::core::detail
{

std::vector<std::uint64_t>
evenSplit(std::uint64_t total, unsigned parts)
{
    std::vector<std::uint64_t> starts(parts + 1);
    for (unsigned p = 0; p <= parts; ++p)
        starts[p] = total * p / parts;
    return starts;
}

unsigned
searchDepth(std::uint64_t n)
{
    unsigned depth = 0;
    while (n > 0) {
        ++depth;
        n >>= 1;
    }
    return depth == 0 ? 1 : depth;
}

} // namespace alphapim::core::detail
