/**
 * @file
 * The ALPHA-PIM execution engine: one matrix-vector backend that
 * applications iterate against. Supports three strategies --
 * SpMSpV-only, SpMV-only (the SparseP baseline), and the adaptive
 * switching scheme of paper section 4.2 -- always using the best
 * kernel of each family (CSC-2D and DCOO-2D).
 */

#ifndef ALPHA_PIM_CORE_ENGINE_HH
#define ALPHA_PIM_CORE_ENGINE_HH

#include <memory>

#include "core/adaptive.hh"
#include "core/cost_model.hh"
#include "core/launch_scope.hh"
#include "core/spmspv.hh"
#include "core/spmv.hh"
#include "sparse/stats_cache.hh"

namespace alphapim::core
{

/** Kernel-selection strategy of a PimEngine. */
enum class MxvStrategy
{
    Adaptive,   ///< decision-tree threshold + density switching
    CostModel,  ///< analytic cost-model threshold + switching
    SpmspvOnly, ///< CSC-2D for every iteration
    SpmvOnly,   ///< DCOO 2D SpMV for every iteration (SparseP)
};

/** Strategy display name. */
const char *mxvStrategyName(MxvStrategy strategy);

/**
 * Iterative matrix-vector backend over a fixed adjacency matrix.
 *
 * @tparam S semiring
 */
template <Semiring S>
class PimEngine
{
  public:
    using Value = typename S::Value;

    /**
     * Build the engine. Only the kernels the strategy requires are
     * constructed (matrix load into MRAM is amortized, as in the
     * paper's methodology).
     *
     * @param sys      simulated UPMEM system
     * @param a        adjacency matrix (app-prepared values)
     * @param dpus     DPUs to use
     * @param strategy kernel-selection strategy
     * @param threshold optional override of the switch density;
     *                  negative = use the decision-tree model
     */
    PimEngine(const upmem::UpmemSystem &sys,
              const sparse::CooMatrix<float> &a, unsigned dpus,
              MxvStrategy strategy, double threshold = -1.0)
        : strategy_(strategy)
    {
        if (strategy_ != MxvStrategy::SpmvOnly) {
            spmspv_ = std::make_unique<CscSpmspv<S>>(sys, a, dpus,
                                                     CscMode::Grid);
        }
        if (strategy_ != MxvStrategy::SpmspvOnly) {
            spmv_ = std::make_unique<SpmvDcoo2d<S>>(sys, a, dpus);
        }
        if (threshold >= 0.0) {
            threshold_ = threshold;
        } else if (strategy_ == MxvStrategy::CostModel) {
            const KernelCostModel model(
                sys, sparse::cachedGraphStats(a), dpus);
            threshold_ = model.predictedSwitchDensity();
        } else {
            const KernelSwitchModel model;
            threshold_ =
                model.switchThreshold(sparse::cachedGraphStats(a));
        }
        telemetry::metrics().setScalar("engine.switch_threshold",
                                       threshold_);
    }

    /** One matrix-vector product; picks the kernel per strategy. */
    MxvResult<Value>
    multiply(const sparse::SparseVector<Value> &x)
    {
        const bool switching =
            strategy_ == MxvStrategy::Adaptive ||
            strategy_ == MxvStrategy::CostModel;
        const bool use_spmv =
            strategy_ == MxvStrategy::SpmvOnly ||
            (switching && x.density() > threshold_);
        const bool switched =
            (spmvLaunches_ + spmspvLaunches_ > 0) &&
            use_spmv != lastUsedSpmv_;
        lastUsedSpmv_ = use_spmv;
        const PimMxvKernel<S> &kernel =
            use_spmv ? static_cast<const PimMxvKernel<S> &>(*spmv_)
                     : static_cast<const PimMxvKernel<S> &>(*spmspv_);
        if (use_spmv)
            ++spmvLaunches_;
        else
            ++spmspvLaunches_;
        LaunchScope scope(kernel.name(), use_spmv, switched,
                          x.density());
        auto result = kernel.run(x);
        scope.finish(result.times, result.profile,
                     result.semiringOps);
        return result;
    }

    /** Density above which the adaptive strategy switches to SpMV. */
    double switchThreshold() const { return threshold_; }

    /** True when the previous multiply() used the SpMV kernel. */
    bool lastUsedSpmv() const { return lastUsedSpmv_; }

    /** SpMSpV launches so far. */
    unsigned spmspvLaunches() const { return spmspvLaunches_; }

    /** SpMV launches so far. */
    unsigned spmvLaunches() const { return spmvLaunches_; }

    /** The engine's strategy. */
    MxvStrategy strategy() const { return strategy_; }

    /** Matrix rows ( == vector dimension). */
    NodeId
    numRows() const
    {
        return spmspv_ ? spmspv_->numRows() : spmv_->numRows();
    }

  private:
    MxvStrategy strategy_;
    double threshold_ = 0.5;
    bool lastUsedSpmv_ = false;
    unsigned spmspvLaunches_ = 0;
    unsigned spmvLaunches_ = 0;
    std::unique_ptr<CscSpmspv<S>> spmspv_;
    std::unique_ptr<SpmvDcoo2d<S>> spmv_;
};

} // namespace alphapim::core

#endif // ALPHA_PIM_CORE_ENGINE_HH
