/**
 * @file
 * Empirical kernel cost model (paper section 4.2.1): closed-form
 * estimates of the Load / Kernel / Retrieve / Merge phases of the
 * CSC-2D SpMSpV and DCOO SpMV kernels from dataset statistics, the
 * input-vector density, and the system configuration.
 *
 * The model serves two purposes:
 *  - an alternative switch-point policy: the density at which the
 *    predicted SpMV total undercuts the predicted SpMSpV total;
 *  - a sanity oracle for the simulator (tests assert the predictions
 *    track simulated times within a small factor).
 */

#ifndef ALPHA_PIM_CORE_COST_MODEL_HH
#define ALPHA_PIM_CORE_COST_MODEL_HH

#include "common/types.hh"
#include "sparse/graph_stats.hh"
#include "upmem/upmem_system.hh"

namespace alphapim::core
{

/** Predicted phase costs of one kernel launch. */
struct KernelCostEstimate
{
    Seconds load = 0.0;
    Seconds kernel = 0.0;
    Seconds retrieve = 0.0;
    Seconds merge = 0.0;

    /** Sum of all phases. */
    Seconds total() const { return load + kernel + retrieve + merge; }
};

/**
 * Analytic cost model for the two kernels the adaptive engine
 * chooses between, bound to one (dataset, system, DPU count) triple.
 */
class KernelCostModel
{
  public:
    /**
     * @param sys   simulated system (supplies transfer/host models)
     * @param stats dataset statistics (nodes, nnz, degrees)
     * @param dpus  DPUs the kernels would use
     */
    KernelCostModel(const upmem::UpmemSystem &sys,
                    const sparse::GraphStats &stats, unsigned dpus);

    /** Predicted cost of one CSC-2D SpMSpV launch at `density`. */
    KernelCostEstimate estimateSpmspv(double density) const;

    /** Predicted cost of one DCOO SpMV launch (density-invariant). */
    KernelCostEstimate estimateSpmv() const;

    /**
     * Density at which the predicted SpMV total first undercuts the
     * predicted SpMSpV total, found by bisection; 1.0 when SpMSpV
     * wins everywhere.
     */
    double predictedSwitchDensity() const;

    /** Expected output-vector nonzeros at input density d
     * (Poisson-style coverage of rows by d*nnz random updates). */
    std::uint64_t expectedOutputNnz(double density) const;

    /** Grid shape used by the estimates. */
    unsigned gridRows() const { return gridRows_; }
    unsigned gridCols() const { return gridCols_; }

  private:
    const upmem::UpmemSystem &sys_;
    sparse::GraphStats stats_;
    unsigned dpus_;
    unsigned gridRows_ = 1;
    unsigned gridCols_ = 1;
    /** Critical-DPU inflation over the mean (load imbalance). */
    double imbalance_ = 1.5;
    /** Average issue efficiency of the revolver pipeline. */
    double issueEfficiency_ = 0.45;
};

} // namespace alphapim::core

#endif // ALPHA_PIM_CORE_COST_MODEL_HH
