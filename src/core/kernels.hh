/**
 * @file
 * Kernel factory: construct any of the paper's SpMSpV / SpMV variants
 * by name. Used by the benches to sweep the design space.
 */

#ifndef ALPHA_PIM_CORE_KERNELS_HH
#define ALPHA_PIM_CORE_KERNELS_HH

#include <memory>
#include <string>

#include "common/logging.hh"
#include "core/spmspv.hh"
#include "core/spmv.hh"

namespace alphapim::core
{

/** All kernel variants evaluated in the paper. */
enum class KernelVariant
{
    SpmspvCoo,   ///< COO row-wise SpMSpV
    SpmspvCsr,   ///< CSR row-wise SpMSpV (the excluded slow variant)
    SpmspvCscR,  ///< CSC-R
    SpmspvCscC,  ///< CSC-C
    SpmspvCsc2d, ///< CSC-2D (ALPHA-PIM's sparse kernel)
    SpmvCoo1d,   ///< SparseP COO.nnz
    SpmvCooRow1d, ///< SparseP COO.row (row-granular 1D)
    SpmvCsrRow1d, ///< SparseP CSR.row (row-granular 1D)
    SpmvDcoo2d,  ///< SparseP DCOO
};

/** Display name matching the paper's figures. */
const char *kernelVariantName(KernelVariant variant);

/** Build a kernel of the given variant. */
template <Semiring S>
std::unique_ptr<PimMxvKernel<S>>
makeKernel(KernelVariant variant, const upmem::UpmemSystem &sys,
           const sparse::CooMatrix<float> &a, unsigned dpus)
{
    switch (variant) {
      case KernelVariant::SpmspvCoo:
        return std::make_unique<CooSpmspv<S>>(sys, a, dpus);
      case KernelVariant::SpmspvCsr:
        return std::make_unique<CsrSpmspv<S>>(sys, a, dpus);
      case KernelVariant::SpmspvCscR:
        return std::make_unique<CscSpmspv<S>>(sys, a, dpus,
                                              CscMode::RowWise);
      case KernelVariant::SpmspvCscC:
        return std::make_unique<CscSpmspv<S>>(sys, a, dpus,
                                              CscMode::ColWise);
      case KernelVariant::SpmspvCsc2d:
        return std::make_unique<CscSpmspv<S>>(sys, a, dpus,
                                              CscMode::Grid);
      case KernelVariant::SpmvCoo1d:
        return std::make_unique<SpmvCoo1d<S>>(sys, a, dpus);
      case KernelVariant::SpmvCooRow1d:
        return std::make_unique<SpmvCooRow1d<S>>(sys, a, dpus);
      case KernelVariant::SpmvCsrRow1d:
        return std::make_unique<SpmvCsrRow1d<S>>(sys, a, dpus);
      case KernelVariant::SpmvDcoo2d:
        return std::make_unique<SpmvDcoo2d<S>>(sys, a, dpus);
    }
    panic("unknown kernel variant");
}

} // namespace alphapim::core

#endif // ALPHA_PIM_CORE_KERNELS_HH
