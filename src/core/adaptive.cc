#include "adaptive.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace alphapim::core
{

namespace
{

/** Gini impurity of a split counted as (positives, total). */
double
gini(std::size_t positives, std::size_t total)
{
    if (total == 0)
        return 0.0;
    const double p =
        static_cast<double>(positives) / static_cast<double>(total);
    return 2.0 * p * (1.0 - p);
}

/** Feature accessor by index. */
double
feature(const GraphSample &s, unsigned f)
{
    return f == 0 ? s.avgDegree : s.degreeStd;
}

} // namespace

int
DegreeDecisionTree::build(std::vector<GraphSample> samples,
                          unsigned depth)
{
    Node node;
    const std::size_t total = samples.size();
    std::size_t positives = 0;
    for (const auto &s : samples)
        positives += s.scaleFree ? 1 : 0;

    node.label = positives * 2 >= total;
    const bool pure = positives == 0 || positives == total;
    if (depth == 0 || pure || total < 2) {
        nodes_.push_back(node);
        return static_cast<int>(nodes_.size()) - 1;
    }

    // Exhaustive split search over both features.
    double best_score = gini(positives, total);
    bool found = false;
    unsigned best_feature = 0;
    double best_threshold = 0.0;
    for (unsigned f = 0; f < 2; ++f) {
        std::vector<double> values;
        values.reserve(total);
        for (const auto &s : samples)
            values.push_back(feature(s, f));
        std::sort(values.begin(), values.end());
        values.erase(std::unique(values.begin(), values.end()),
                     values.end());
        for (std::size_t i = 0; i + 1 < values.size(); ++i) {
            const double thr = (values[i] + values[i + 1]) / 2.0;
            std::size_t ltotal = 0, lpos = 0;
            for (const auto &s : samples) {
                if (feature(s, f) <= thr) {
                    ++ltotal;
                    lpos += s.scaleFree ? 1 : 0;
                }
            }
            const std::size_t rtotal = total - ltotal;
            const std::size_t rpos = positives - lpos;
            const double score =
                (gini(lpos, ltotal) * ltotal +
                 gini(rpos, rtotal) * rtotal) /
                static_cast<double>(total);
            if (score + 1e-12 < best_score) {
                best_score = score;
                best_feature = f;
                best_threshold = thr;
                found = true;
            }
        }
    }
    if (!found) {
        nodes_.push_back(node);
        return static_cast<int>(nodes_.size()) - 1;
    }

    std::vector<GraphSample> left, right;
    for (const auto &s : samples) {
        (feature(s, best_feature) <= best_threshold ? left : right)
            .push_back(s);
    }
    node.leaf = false;
    node.feature = best_feature;
    node.threshold = best_threshold;
    node.left = build(std::move(left), depth - 1);
    node.right = build(std::move(right), depth - 1);
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size()) - 1;
}

void
DegreeDecisionTree::train(const std::vector<GraphSample> &samples,
                          unsigned max_depth)
{
    ALPHA_ASSERT(!samples.empty(), "cannot train on an empty corpus");
    nodes_.clear();
    root_ = build(samples, max_depth);
}

bool
DegreeDecisionTree::classifyScaleFree(double avg_degree,
                                      double degree_std) const
{
    if (root_ < 0)
        return true;
    int idx = root_;
    for (;;) {
        const Node &node = nodes_[idx];
        if (node.leaf)
            return node.label;
        const double value =
            node.feature == 0 ? avg_degree : degree_std;
        idx = value <= node.threshold ? node.left : node.right;
    }
}

unsigned
DegreeDecisionTree::nodeCount() const
{
    return static_cast<unsigned>(nodes_.size());
}

std::vector<GraphSample>
KernelSwitchModel::defaultTrainingSet()
{
    // Table 2 corpus plus perturbed copies so the tree does not
    // overfit exact values; road networks are the regular class.
    std::vector<GraphSample> samples;
    for (const auto &spec : sparse::table2Specs()) {
        const bool scale_free =
            spec.family != sparse::GraphFamily::Regular;
        for (double jitter : {0.9, 1.0, 1.1}) {
            samples.push_back({spec.avgDegree * jitter,
                               spec.degreeStd * jitter, scale_free});
        }
    }
    return samples;
}

KernelSwitchModel::KernelSwitchModel()
{
    tree_.train(defaultTrainingSet(), 2);
}

KernelSwitchModel::KernelSwitchModel(DegreeDecisionTree tree)
    : tree_(std::move(tree))
{
}

double
KernelSwitchModel::switchThreshold(
    const sparse::GraphStats &stats) const
{
    return isScaleFree(stats) ? scaleFreeThreshold : regularThreshold;
}

bool
KernelSwitchModel::isScaleFree(const sparse::GraphStats &stats) const
{
    return tree_.classifyScaleFree(stats.avgDegree, stats.degreeStd);
}

} // namespace alphapim::core
