/**
 * @file
 * Straightforward host-side reference implementation of the semiring
 * matrix-vector product. The oracle every PIM kernel is validated
 * against in the test suite.
 */

#ifndef ALPHA_PIM_CORE_REFERENCE_HH
#define ALPHA_PIM_CORE_REFERENCE_HH

#include <vector>

#include "core/semiring.hh"
#include "sparse/coo.hh"
#include "sparse/sparse_vector.hh"

namespace alphapim::core
{

/**
 * y = A (*) x over semiring S, computed entry by entry on the host.
 */
template <Semiring S>
std::vector<typename S::Value>
referenceMxv(const sparse::CooMatrix<float> &a,
             const sparse::SparseVector<typename S::Value> &x)
{
    using Value = typename S::Value;
    std::vector<Value> x_dense = x.toDense(S::zero());
    std::vector<Value> y(a.numRows(), S::zero());
    for (std::size_t k = 0; k < a.nnz(); ++k) {
        const Value xv = x_dense[a.colAt(k)];
        if (S::isZero(xv))
            continue;
        const Value contrib = S::mul(S::fromMatrix(a.valueAt(k)), xv);
        y[a.rowAt(k)] = S::add(y[a.rowAt(k)], contrib);
    }
    return y;
}

/** Nonzero count of a dense vector under semiring S. */
template <Semiring S>
std::uint64_t
denseNnz(const std::vector<typename S::Value> &v)
{
    std::uint64_t nnz = 0;
    for (const auto &e : v) {
        if (!S::isZero(e))
            ++nnz;
    }
    return nnz;
}

} // namespace alphapim::core

#endif // ALPHA_PIM_CORE_REFERENCE_HH
