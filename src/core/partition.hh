/**
 * @file
 * Matrix partitioning across DPUs (paper section 4.1.1 / Figure 3):
 * row-wise, column-wise, and 2D grid partitions, all balanced by
 * nonzero count so DPU kernel work is even.
 */

#ifndef ALPHA_PIM_CORE_PARTITION_HH
#define ALPHA_PIM_CORE_PARTITION_HH

#include <vector>

#include "common/types.hh"
#include "sparse/coo.hh"

namespace alphapim::core
{

/**
 * A 1D contiguous partition of [0, extent) into `parts` ranges:
 * range p covers [starts[p], starts[p+1]).
 */
struct Partition1d
{
    std::vector<NodeId> starts; ///< length parts + 1

    /** Number of ranges. */
    unsigned parts() const
    {
        return static_cast<unsigned>(starts.size()) - 1;
    }

    /** First index of range p. */
    NodeId begin(unsigned p) const { return starts[p]; }

    /** One past the last index of range p. */
    NodeId end(unsigned p) const { return starts[p + 1]; }

    /** The range containing index i. */
    unsigned rangeOf(NodeId i) const;
};

/** 2D grid partition: gridRows x gridCols tiles. */
struct Grid2d
{
    unsigned gridRows = 1;
    unsigned gridCols = 1;
    Partition1d rows;
    Partition1d cols;

    /** DPU id of tile (r, c): row-major tile numbering. */
    unsigned
    tileId(unsigned r, unsigned c) const
    {
        return r * gridCols + c;
    }
};

/**
 * Split [0, extent) into `parts` contiguous ranges balanced by the
 * per-index weight (typically nonzeros per row or per column).
 * Trailing ranges may be empty when weights are concentrated.
 */
Partition1d balancedPartition(const std::vector<EdgeId> &weights,
                              unsigned parts);

/** Uniform split of [0, extent) into equal-width ranges. */
Partition1d uniformPartition(NodeId extent, unsigned parts);

/** Per-row nonzero counts of a COO matrix. */
std::vector<EdgeId> rowWeights(const sparse::CooMatrix<float> &coo);

/** Per-column nonzero counts of a COO matrix. */
std::vector<EdgeId> colWeights(const sparse::CooMatrix<float> &coo);

/**
 * Choose a near-square factorization gridRows x gridCols = dpus with
 * gridRows <= gridCols (more columns than rows keeps input-vector
 * segments small, the dominant transfer).
 */
void chooseGridShape(unsigned dpus, unsigned &grid_rows,
                     unsigned &grid_cols);

/** Build a full nnz-balanced 2D grid partition for `dpus` tiles. */
Grid2d makeGrid2d(const sparse::CooMatrix<float> &coo, unsigned dpus);

/** Row-wise nnz-balanced partition into `dpus` row ranges. */
Partition1d makeRowPartition(const sparse::CooMatrix<float> &coo,
                             unsigned dpus);

/** Column-wise nnz-balanced partition into `dpus` column ranges. */
Partition1d makeColPartition(const sparse::CooMatrix<float> &coo,
                             unsigned dpus);

} // namespace alphapim::core

#endif // ALPHA_PIM_CORE_PARTITION_HH
