#include "partition.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace alphapim::core
{

unsigned
Partition1d::rangeOf(NodeId i) const
{
    const auto it =
        std::upper_bound(starts.begin(), starts.end(), i);
    ALPHA_ASSERT(it != starts.begin() && it != starts.end(),
                 "index outside the partitioned extent");
    return static_cast<unsigned>(it - starts.begin()) - 1;
}

Partition1d
balancedPartition(const std::vector<EdgeId> &weights, unsigned parts)
{
    ALPHA_ASSERT(parts > 0, "partition needs at least one part");
    const auto extent = static_cast<NodeId>(weights.size());

    EdgeId total = 0;
    for (EdgeId w : weights)
        total += w;

    Partition1d partition;
    partition.starts.reserve(parts + 1);
    partition.starts.push_back(0);

    // Greedy prefix walk: close part p once the running weight
    // reaches the p-th share of the total.
    EdgeId running = 0;
    NodeId index = 0;
    for (unsigned p = 1; p < parts; ++p) {
        const EdgeId target =
            total * p / parts;
        while (index < extent && running < target) {
            running += weights[index];
            ++index;
        }
        partition.starts.push_back(index);
    }
    partition.starts.push_back(extent);
    return partition;
}

Partition1d
uniformPartition(NodeId extent, unsigned parts)
{
    ALPHA_ASSERT(parts > 0, "partition needs at least one part");
    Partition1d partition;
    partition.starts.reserve(parts + 1);
    for (unsigned p = 0; p <= parts; ++p) {
        partition.starts.push_back(static_cast<NodeId>(
            static_cast<std::uint64_t>(extent) * p / parts));
    }
    return partition;
}

std::vector<EdgeId>
rowWeights(const sparse::CooMatrix<float> &coo)
{
    std::vector<EdgeId> weights(coo.numRows(), 0);
    for (std::size_t k = 0; k < coo.nnz(); ++k)
        ++weights[coo.rowAt(k)];
    return weights;
}

std::vector<EdgeId>
colWeights(const sparse::CooMatrix<float> &coo)
{
    std::vector<EdgeId> weights(coo.numCols(), 0);
    for (std::size_t k = 0; k < coo.nnz(); ++k)
        ++weights[coo.colAt(k)];
    return weights;
}

void
chooseGridShape(unsigned dpus, unsigned &grid_rows, unsigned &grid_cols)
{
    ALPHA_ASSERT(dpus > 0, "grid needs at least one DPU");
    // Largest divisor pair (r, c) with r <= c and r * c == dpus,
    // starting from the square root so the grid is as square as
    // possible.
    unsigned best_r = 1;
    for (unsigned r = 1;
         static_cast<std::uint64_t>(r) * r <= dpus; ++r) {
        if (dpus % r == 0)
            best_r = r;
    }
    grid_rows = best_r;
    grid_cols = dpus / best_r;
}

Grid2d
makeGrid2d(const sparse::CooMatrix<float> &coo, unsigned dpus)
{
    Grid2d grid;
    chooseGridShape(dpus, grid.gridRows, grid.gridCols);
    grid.rows = balancedPartition(rowWeights(coo), grid.gridRows);
    grid.cols = balancedPartition(colWeights(coo), grid.gridCols);
    return grid;
}

Partition1d
makeRowPartition(const sparse::CooMatrix<float> &coo, unsigned dpus)
{
    return balancedPartition(rowWeights(coo), dpus);
}

Partition1d
makeColPartition(const sparse::CooMatrix<float> &coo, unsigned dpus)
{
    return balancedPartition(colWeights(coo), dpus);
}

} // namespace alphapim::core
