/**
 * @file
 * Replay engine for tasklet traces: models the DPU's fine-grained
 * multithreaded "revolver" pipeline and produces the timing and
 * profiling counters of one kernel execution on one DPU.
 *
 * Model summary (paper section 2.3.2 and PIMulator):
 *  - one instruction dispatched per cycle, in order, per DPU;
 *  - consecutive instructions of the same tasklet are at least
 *    `revolverGap` (11) cycles apart (14-stage pipeline without
 *    forwarding or interlocks);
 *  - MRAM DMA is blocking: the issuing tasklet cannot dispatch again
 *    until `dmaSetupCycles + bytes / dmaBytesPerCycle` have elapsed;
 *  - a contended mutex is acquired by spinning: each failed attempt
 *    occupies a dispatch slot with a MutexLock instruction;
 *  - barriers block arrivals until every participating tasklet has
 *    arrived;
 *  - back-to-back ALU instructions whose register-bank signatures
 *    collide pay a one-cycle structural hazard (even/odd register
 *    file banks).
 *
 * Idle dispatch slots are attributed to the constraint that delayed
 * the *earliest-ready* tasklet: DMA wait => Memory, mutex/barrier =>
 * Sync, otherwise the revolver gap itself => Revolver.
 */

#ifndef ALPHA_PIM_UPMEM_SCHEDULER_HH
#define ALPHA_PIM_UPMEM_SCHEDULER_HH

#include <vector>

#include "upmem/dpu_config.hh"
#include "upmem/profile.hh"
#include "upmem/trace.hh"

namespace alphapim::upmem
{

/** Trace replayer for one DPU (stateless; reusable across DPUs). */
class RevolverScheduler
{
  public:
    /** @param cfg DPU microarchitecture parameters */
    explicit RevolverScheduler(const DpuConfig &cfg) : cfg_(cfg) {}

    /**
     * Replay the traces of one DPU's tasklets.
     *
     * @param traces one trace per tasklet (empty traces are allowed
     *               and model tasklets with no assigned work)
     * @return profile with cycle counts, stalls, and instruction mix
     */
    DpuProfile run(const std::vector<TaskletTrace> &traces) const;

  private:
    const DpuConfig &cfg_;
};

} // namespace alphapim::upmem

#endif // ALPHA_PIM_UPMEM_SCHEDULER_HH
