#include "upmem_system.hh"

#include <mutex>

#include "common/logging.hh"
#include "common/parallel.hh"

namespace alphapim::upmem
{

UpmemSystem::UpmemSystem(SystemConfig cfg)
    : cfg_(cfg), transfer_(cfg_.transfer), host_(cfg_.host)
{
    ALPHA_ASSERT(cfg_.numDpus > 0, "system needs at least one DPU");
    ALPHA_ASSERT(cfg_.dpu.tasklets > 0 &&
                     cfg_.dpu.tasklets <= cfg_.dpu.maxTasklets,
                 "tasklet count outside hardware limits");
}

LaunchProfile
UpmemSystem::launchKernel(
    unsigned num_dpus,
    const std::function<void(unsigned, std::vector<TaskletTrace> &)>
        &generate) const
{
    ALPHA_ASSERT(num_dpus > 0 && num_dpus <= cfg_.numDpus,
                 "launch requests more DPUs than allocated");

    const RevolverScheduler scheduler(cfg_.dpu);
    LaunchProfile launch;
    std::mutex accumulate;

    parallelFor(num_dpus, [&](std::size_t dpu) {
        std::vector<TaskletTrace> traces(cfg_.dpu.tasklets);
        generate(static_cast<unsigned>(dpu), traces);
        const DpuProfile profile = scheduler.run(traces);
        std::lock_guard<std::mutex> lock(accumulate);
        launch.add(profile);
    });
    return launch;
}

} // namespace alphapim::upmem
