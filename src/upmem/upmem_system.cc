#include "upmem_system.hh"

#include <algorithm>
#include <string>

#include "analysis/capture.hh"
#include "analysis/checker.hh"
#include "analysis/imbalance.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "telemetry/host_prof.hh"
#include "telemetry/metrics.hh"
#include "telemetry/trace.hh"

namespace alphapim::upmem
{

namespace
{

/** Metric names per stall reason (dots and underscores only). */
const char *
stallMetricName(StallReason reason)
{
    switch (reason) {
      case StallReason::Memory:
        return "dpu.stall.memory_cycles";
      case StallReason::Revolver:
        return "dpu.stall.revolver_cycles";
      case StallReason::RfHazard:
        return "dpu.stall.rf_hazard_cycles";
      case StallReason::Sync:
        return "dpu.stall.sync_cycles";
      default:
        return "dpu.stall.unknown_cycles";
    }
}

/** Fold one launch's aggregate profile into the metrics registry. */
void
recordLaunchMetrics(const LaunchProfile &launch,
                    const std::vector<Cycles> &per_dpu_cycles)
{
    auto &m = telemetry::metrics();
    m.addCounter("dpu.launches");
    m.addCounter("dpu.total_cycles", launch.aggregate.totalCycles);
    m.addCounter("dpu.issued_cycles", launch.aggregate.issuedCycles);
    for (unsigned r = 0;
         r < static_cast<unsigned>(StallReason::NumReasons); ++r) {
        const auto reason = static_cast<StallReason>(r);
        m.addCounter(stallMetricName(reason),
                     launch.aggregate.stallCycles[r]);
    }
    for (unsigned c = 0; c < numOpCategories; ++c) {
        const auto cat = static_cast<OpCategory>(c);
        m.addCounter(std::string("dpu.instr.") + opCategoryName(cat),
                     launch.aggregate.instructionsInCategory(cat));
    }
    // Per-DPU cycle distribution: the load-imbalance signal. Idle
    // DPUs contribute zero samples, which is exactly the imbalance.
    for (const Cycles c : per_dpu_cycles)
        m.addSample("dpu.cycles_per_launch", static_cast<double>(c));
    m.addSample("dpu.active_per_launch", launch.activeDpus);
}

} // namespace

UpmemSystem::UpmemSystem(SystemConfig cfg)
    : cfg_(cfg), transfer_(cfg_.transfer), host_(cfg_.host)
{
    ALPHA_ASSERT(cfg_.numDpus > 0, "system needs at least one DPU");
    ALPHA_ASSERT(cfg_.dpu.tasklets > 0 &&
                     cfg_.dpu.tasklets <= cfg_.dpu.maxTasklets,
                 "tasklet count outside hardware limits");
}

LaunchProfile
UpmemSystem::launchKernel(
    unsigned num_dpus,
    const std::function<void(unsigned, std::vector<TaskletTrace> &)>
        &generate) const
{
    ALPHA_ASSERT(num_dpus > 0 && num_dpus <= cfg_.numDpus,
                 "launch requests more DPUs than allocated");

    const bool tracing = telemetry::tracer().enabled();
    const bool sampling = telemetry::metrics().enabled();
    const bool checking = analysis::checker().enabled();
    const bool capturing = analysis::capture().enabled();
    // The model checker harvests traces without timing them; replay
    // is the dominant cost of a launch, so skip it when asked to.
    const bool replaying =
        !capturing || !analysis::capture().skipReplay();
    if (capturing)
        analysis::capture().beginLaunch(num_dpus);

    const RevolverScheduler scheduler(cfg_.dpu);
    LaunchProfile launch;
    // Each worker writes only its own slot; the profiles are folded
    // serially in DPU order afterwards so floating-point accumulation
    // (activeThreadCycles) is deterministic regardless of thread
    // count and scheduling -- run records are exact-compared by the
    // bench differ.
    std::vector<DpuProfile> per_dpu_profiles(num_dpus);
    std::vector<Cycles> per_dpu_cycles;
    if (tracing || sampling)
        per_dpu_cycles.assign(num_dpus, 0);

    const bool host_prof = telemetry::hostProfiler().enabled();

    parallelFor(num_dpus, [&](std::size_t dpu) {
        std::vector<TaskletTrace> traces(cfg_.dpu.tasklets);
        {
            telemetry::HostPhaseTimer timer(
                telemetry::HostPhase::TraceRecord);
            generate(static_cast<unsigned>(dpu), traces);
        }
        if (host_prof) {
            std::uint64_t records = 0, bytes = 0;
            for (const TaskletTrace &trace : traces) {
                records += trace.records().size();
                bytes += trace.records().capacity() *
                         sizeof(TraceRecord);
            }
            telemetry::hostProfiler().addTraceRecords(records);
            telemetry::hostProfiler().noteTaskletTraceBytes(bytes);
        }
        if (checking) {
            telemetry::HostPhaseTimer timer(
                telemetry::HostPhase::Analysis);
            analysis::checker().analyzeDpu(
                static_cast<unsigned>(dpu), traces, cfg_.dpu);
        }
        if (capturing) {
            telemetry::HostPhaseTimer timer(
                telemetry::HostPhase::Analysis);
            analysis::capture().captureDpu(static_cast<unsigned>(dpu),
                                           traces);
        }
        if (replaying) {
            telemetry::HostPhaseTimer timer(
                telemetry::HostPhase::Replay);
            per_dpu_profiles[dpu] = scheduler.run(traces);
        }
        if (host_prof) {
            telemetry::hostProfiler().addReplaySlots(
                per_dpu_profiles[dpu].totalCycles);
        }
        if (!per_dpu_cycles.empty())
            per_dpu_cycles[dpu] = per_dpu_profiles[dpu].totalCycles;
    });
    {
        telemetry::HostPhaseTimer timer(
            telemetry::HostPhase::ProfileFold);
        for (const DpuProfile &profile : per_dpu_profiles)
            launch.add(profile);
    }

    telemetry::HostPhaseTimer analysis_timer(
        telemetry::HostPhase::Analysis);
    if (analysis::imbalance().enabled())
        analysis::imbalance().recordLaunch(per_dpu_profiles, cfg_.dpu);
    if (sampling)
        recordLaunchMetrics(launch, per_dpu_cycles);
    if (tracing) {
        auto &t = telemetry::tracer();
        const Seconds start = t.now() + cfg_.kernelLaunchOverhead;
        const unsigned shown =
            std::min(num_dpus, t.dpuTrackLimit());
        for (unsigned d = 0; d < shown; ++d) {
            if (per_dpu_cycles[d] == 0)
                continue;
            t.nameTrack(telemetry::dpuTrack(d),
                        "dpu " + std::to_string(d));
            // Stall composition and DMA traffic ride on the span so
            // alphapim_explain can draw the per-DPU heatmap lane and
            // roofline chart from the trace alone.
            const DpuProfile &p = per_dpu_profiles[d];
            t.completeEvent(
                telemetry::dpuTrack(d), "kernel", "dpu", start,
                static_cast<double>(per_dpu_cycles[d]) /
                    cfg_.dpu.clockHz,
                {telemetry::arg("cycles", per_dpu_cycles[d]),
                 telemetry::arg("dpu",
                                static_cast<std::uint64_t>(d)),
                 telemetry::arg(
                     "rank",
                     static_cast<std::uint64_t>(
                         d / cfg_.transfer.dpusPerRank)),
                 telemetry::arg("issued", p.issuedCycles),
                 telemetry::arg(
                     "stall_memory",
                     p.stallCycles[static_cast<std::size_t>(
                         StallReason::Memory)]),
                 telemetry::arg(
                     "stall_revolver",
                     p.stallCycles[static_cast<std::size_t>(
                         StallReason::Revolver)]),
                 telemetry::arg(
                     "stall_rf_hazard",
                     p.stallCycles[static_cast<std::size_t>(
                         StallReason::RfHazard)]),
                 telemetry::arg(
                     "stall_sync",
                     p.stallCycles[static_cast<std::size_t>(
                         StallReason::Sync)]),
                 telemetry::arg("instr", p.totalInstructions()),
                 telemetry::arg("mram_bytes",
                                p.mramReadBytes + p.mramWriteBytes)});
        }
        if (shown < num_dpus) {
            debugLog("telemetry",
                     "trace shows %u of %u DPU tracks (raise the "
                     "dpu-track limit to see more)",
                     shown, num_dpus);
        }
        t.advance(kernelSeconds(launch));
    }
    return launch;
}

} // namespace alphapim::upmem
