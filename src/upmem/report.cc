#include "report.hh"

#include <sstream>

#include "common/table.hh"

namespace alphapim::upmem
{

std::string
renderProfileSummary(const DpuProfile &profile)
{
    std::ostringstream out;
    out << "issued " << TextTable::pct(profile.issuedFraction(), 1)
        << " | mem "
        << TextTable::pct(
               profile.stallFraction(StallReason::Memory), 1)
        << " | revolver "
        << TextTable::pct(
               profile.stallFraction(StallReason::Revolver), 1)
        << " | rf "
        << TextTable::pct(
               profile.stallFraction(StallReason::RfHazard), 1)
        << " | sync "
        << TextTable::pct(profile.stallFraction(StallReason::Sync), 1)
        << " | " << TextTable::num(profile.avgActiveThreads(), 2)
        << " active threads";
    return out.str();
}

std::string
renderProfileReport(const LaunchProfile &profile,
                    const SystemConfig &cfg)
{
    const DpuProfile &p = profile.aggregate;
    std::ostringstream out;
    out << "=== DPU profile ===\n";
    out << "active DPUs: " << profile.activeDpus << " / "
        << cfg.numDpus << "\n";
    out << "kernel wall cycles (slowest DPU, summed over launches): "
        << profile.maxCycles << " ("
        << TextTable::num(
               toMillis(static_cast<double>(profile.maxCycles) /
                        cfg.dpu.clockHz),
               3)
        << " ms at " << TextTable::num(cfg.dpu.clockHz / 1e6, 0)
        << " MHz)\n";
    out << "aggregate DPU-cycles: " << p.totalCycles << "\n";
    out << "pipeline: " << renderProfileSummary(p) << "\n";

    TextTable mix("instruction mix");
    mix.setHeader({"category", "instructions", "share"});
    const double total = static_cast<double>(p.totalInstructions());
    for (unsigned c = 0; c < numOpCategories; ++c) {
        const auto cat = static_cast<OpCategory>(c);
        const auto count = p.instructionsInCategory(cat);
        mix.addRow({opCategoryName(cat), std::to_string(count),
                    total > 0 ? TextTable::pct(count / total, 1)
                              : "0%"});
    }
    out << mix.render();

    TextTable classes("hot instruction classes");
    classes.setHeader({"class", "instructions"});
    for (unsigned c = 0; c < numOpClasses; ++c) {
        const auto count = p.instrByClass[c];
        if (count == 0)
            continue;
        classes.addRow({opClassName(static_cast<OpClass>(c)),
                        std::to_string(count)});
    }
    out << classes.render();
    return out.str();
}

} // namespace alphapim::upmem
