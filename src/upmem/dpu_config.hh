/**
 * @file
 * Configuration of the simulated UPMEM system. Default values follow
 * the paper (section 2.3), the UPMEM SDK documentation, and the PrIM /
 * SparseP measurement studies; see DESIGN.md section 5 for provenance.
 */

#ifndef ALPHA_PIM_UPMEM_DPU_CONFIG_HH
#define ALPHA_PIM_UPMEM_DPU_CONFIG_HH

#include <cstdint>

#include "common/types.hh"

namespace alphapim::upmem
{

/** Microarchitectural parameters of one DPU. */
struct DpuConfig
{
    /** DPU core clock in Hz (UPMEM v1.x runs at 350 MHz). */
    double clockHz = 350e6;

    /** Hardware thread (tasklet) slots per DPU. */
    unsigned maxTasklets = 24;

    /**
     * Tasklets actually launched by the kernels. SparseP and PrIM
     * both find 16 saturates the revolver pipeline with headroom.
     */
    unsigned tasklets = 16;

    /**
     * Minimum cycles between two consecutive dispatches of the same
     * tasklet (the 14-stage "revolver" pipeline with no forwarding).
     */
    Cycles revolverGap = 11;

    /** Scratchpad (WRAM) bytes. */
    Bytes wramBytes = 64 * 1024;

    /** DRAM bank (MRAM) bytes. */
    Bytes mramBytes = 64ULL * 1024 * 1024;

    /** Instruction memory (IRAM) bytes. */
    Bytes iramBytes = 24 * 1024;

    /** Fixed *latency* cycles of a blocking MRAM<->WRAM DMA: the
     * issuing tasklet waits setup + transfer before resuming. */
    Cycles dmaSetupCycles = 56;

    /** DMA streaming throughput in bytes per cycle (~700 MB/s). */
    double dmaBytesPerCycle = 2.0;

    /** Engine occupancy overhead per transfer: the DMA engine is
     * busy overhead + transfer cycles per request (setup latency is
     * pipelined with other requests). */
    Cycles dmaEngineOverheadCycles = 8;

    /**
     * Software floating-point emulation costs, in dispatched
     * instructions per operation (the DPU has no FPU; the paper's
     * PPR analysis hinges on this). Calibrated to PrIM's measured
     * DPU float throughput (~3-6 MOPS mul, ~10-14 MOPS add at
     * 350 MHz, i.e. tens of instructions per operation).
     */
    unsigned floatAddInstrs = 25;
    unsigned floatMulInstrs = 60;

    /** 32-bit integer multiply expansion (8x8 hardware multiplier). */
    unsigned intMulInstrs = 4;

    /**
     * Register-file bank selector width: two ALU instructions whose
     * bank signatures collide back-to-back pay a one-cycle structural
     * hazard (even/odd register file split).
     */
    unsigned rfBankBits = 3;

    /** WRAM staging chunk used by streaming kernels, in bytes. */
    Bytes wramChunkBytes = 1024;

    /**
     * Future-hardware knob (paper section 6.4 recommendations):
     * non-blocking DMA lets the issuing tasklet keep dispatching
     * while the transfer is in flight (the engine still serializes
     * transfers, bounding bandwidth).
     */
    bool nonBlockingDma = false;

    /**
     * Future-hardware knob: hardware atomics replace mutex spin
     * loops -- lock attempts always succeed in one instruction.
     */
    bool hardwareAtomics = false;
};

/** Host <-> PIM-DIMM transfer parameters (rank-parallel SDK model). */
struct TransferConfig
{
    /** DPUs sharing one memory rank. */
    unsigned dpusPerRank = 64;

    /** Per-transfer software launch latency, seconds. */
    Seconds launchLatency = 20e-6;

    /**
     * CPU-side setup per distinct DPU buffer (transposition-library
     * overhead); this is what makes large DPU counts pay more for
     * scattered input vectors (paper section 6.3.1, observation 3).
     */
    Seconds perDpuSetup = 1.2e-6;

    /** Per-rank bus bandwidth, host to DPU, bytes/second. */
    double rankBwHostToDpu = 0.7e9;

    /** Per-rank bus bandwidth, DPU to host, bytes/second. */
    double rankBwDpuToHost = 0.6e9;

    /** Aggregate CPU-side copy bandwidth cap, bytes/second. */
    double hostCopyBw = 7.0e9;

    /**
     * Future-hardware knob (paper section 6.4 / conclusion): a
     * direct inter-DPU interconnect exchanges vectors without the
     * host round-trip; every DPU sends/receives in parallel at
     * interDpuBandwidth.
     */
    bool directInterconnect = false;

    /** Per-DPU link bandwidth of the hypothetical interconnect. */
    double interDpuBandwidth = 1.0e9;

    /** Per-exchange latency of the hypothetical interconnect. */
    Seconds interconnectLatency = 2e-6;
};

/** Host CPU parameters for merge / convergence phases. */
struct HostConfig
{
    /** Physical cores participating in OpenMP merges. */
    unsigned cores = 16;

    /** Host core clock, Hz (2x Xeon Silver 4110 at 2.10 GHz). */
    double clockHz = 2.1e9;

    /** Simple merge ops retired per core cycle. */
    double opsPerCycle = 2.0;

    /** Effective host memory bandwidth, bytes/second. */
    double memBandwidth = 20e9;

    /** Fixed overhead per merge/convergence pass, seconds. */
    Seconds passOverhead = 5e-6;
};

/** Full system: DPU micro-architecture + fleet + transfer + host. */
struct SystemConfig
{
    DpuConfig dpu;
    TransferConfig transfer;
    HostConfig host;

    /** Number of DPUs allocated to kernels (paper uses up to 2560). */
    unsigned numDpus = 2048;

    /**
     * Per-launch overhead of dpu_launch + host synchronization,
     * charged to the kernel phase, seconds.
     */
    Seconds kernelLaunchOverhead = 0.4e-3;

    /** Peak UPMEM arithmetic throughput for utilization metrics
     * (GFLOPS-scale; computed with the SparseP methodology). */
    double peakOpsPerSecond = 4.66e9;
};

} // namespace alphapim::upmem

#endif // ALPHA_PIM_UPMEM_DPU_CONFIG_HH
