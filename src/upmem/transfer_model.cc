#include "transfer_model.hh"

#include <algorithm>

#include "common/logging.hh"
#include "telemetry/host_prof.hh"
#include "telemetry/metrics.hh"
#include "telemetry/trace.hh"

namespace alphapim::upmem
{

namespace
{

/**
 * True when this transfer is part of an actual launch being
 * accounted (not a hypothetical cost-model probe) and the tracer
 * wants events. Cost-model queries run outside any RecordingScope,
 * so they never pollute the timeline.
 */
bool
tracingTransfer()
{
    return telemetry::tracer().enabled() &&
           telemetry::inRecordingScope();
}

/** Same gate for the metrics registry. */
bool
countingTransfer()
{
    return telemetry::metrics().enabled() &&
           telemetry::inRecordingScope();
}

/** Label a rank track once per trace. */
void
nameRankTrack(unsigned rank)
{
    telemetry::tracer().nameTrack(telemetry::rankTrack(rank),
                                  "rank " + std::to_string(rank));
}

} // namespace

double
TransferModel::rankBandwidth(TransferDirection dir) const
{
    return dir == TransferDirection::HostToDpu ? cfg_.rankBwHostToDpu
                                               : cfg_.rankBwDpuToHost;
}

Seconds
TransferModel::scatterGather(const std::vector<Bytes> &per_dpu_bytes,
                             TransferDirection dir) const
{
    telemetry::HostPhaseTimer host_timer(
        telemetry::HostPhase::TransferModel);
    const bool tracing = tracingTransfer();
    const bool counting = countingTransfer();
    const char *op_name = dir == TransferDirection::HostToDpu
                              ? "scatter"
                              : "gather";

    Bytes total = 0;
    Bytes slowest_rank_payload = 0;
    unsigned distinct = 0;
    std::vector<Bytes> rank_payload; // populated only when tracing

    const unsigned per_rank = cfg_.dpusPerRank;
    for (std::size_t base = 0; base < per_dpu_bytes.size();
         base += per_rank) {
        const std::size_t end =
            std::min(per_dpu_bytes.size(),
                     base + static_cast<std::size_t>(per_rank));
        Bytes rank_max = 0;
        for (std::size_t d = base; d < end; ++d) {
            const Bytes b = per_dpu_bytes[d];
            total += b;
            if (b > 0)
                ++distinct;
            rank_max = std::max(rank_max, b);
        }
        // Parallel rank transfers are padded to the largest buffer.
        const Bytes padded =
            rank_max * static_cast<Bytes>(end - base);
        slowest_rank_payload = std::max(slowest_rank_payload, padded);
        if (tracing)
            rank_payload.push_back(padded);
    }
    if (total == 0)
        return 0.0;

    if (counting) {
        auto &m = telemetry::metrics();
        if (dir == TransferDirection::HostToDpu) {
            m.addCounter("xfer.scatters");
            m.addCounter("xfer.scatter_bytes", total);
        } else {
            m.addCounter("xfer.gathers");
            m.addCounter("xfer.gather_bytes", total);
        }
    }

    if (cfg_.directInterconnect) {
        // Future hardware: DPUs exchange directly, in parallel.
        Bytes max_per_dpu = 0;
        for (Bytes b : per_dpu_bytes)
            max_per_dpu = std::max(max_per_dpu, b);
        const Seconds time =
            cfg_.interconnectLatency +
            static_cast<double>(max_per_dpu) / cfg_.interDpuBandwidth;
        if (tracing) {
            auto &t = telemetry::tracer();
            nameRankTrack(0);
            t.completeEvent(telemetry::rankTrack(0), op_name,
                            "xfer", t.now(), time,
                            {telemetry::arg("bytes", total),
                             telemetry::arg("mode",
                                            "interconnect")});
            t.advance(time);
        }
        return time;
    }

    const Seconds bus_time =
        static_cast<double>(slowest_rank_payload) / rankBandwidth(dir);
    const Seconds copy_time =
        static_cast<double>(total) / cfg_.hostCopyBw;
    const Seconds time = cfg_.launchLatency +
                         cfg_.perDpuSetup * distinct +
                         std::max(bus_time, copy_time);
    if (tracing) {
        auto &t = telemetry::tracer();
        const Seconds bus_start =
            t.now() + cfg_.launchLatency + cfg_.perDpuSetup * distinct;
        for (std::size_t r = 0; r < rank_payload.size(); ++r) {
            if (rank_payload[r] == 0)
                continue;
            nameRankTrack(static_cast<unsigned>(r));
            t.completeEvent(
                telemetry::rankTrack(static_cast<unsigned>(r)),
                op_name, "xfer", bus_start,
                static_cast<double>(rank_payload[r]) /
                    rankBandwidth(dir),
                {telemetry::arg("bytes", rank_payload[r]),
                 telemetry::arg(
                     "rank", static_cast<std::uint64_t>(r))});
        }
        t.advance(time);
    }
    return time;
}

Seconds
TransferModel::broadcast(Bytes bytes, unsigned num_dpus) const
{
    if (bytes == 0 || num_dpus == 0)
        return 0.0;
    telemetry::HostPhaseTimer host_timer(
        telemetry::HostPhase::TransferModel);
    const bool tracing = tracingTransfer();
    if (countingTransfer()) {
        auto &m = telemetry::metrics();
        m.addCounter("xfer.broadcasts");
        // Replicated traffic: every DPU's copy crosses its rank bus.
        m.addCounter("xfer.broadcast_bytes",
                     bytes * static_cast<Bytes>(num_dpus));
    }
    if (cfg_.directInterconnect) {
        // Tree broadcast over the interconnect: log2(D) hops.
        double hops = 1.0;
        for (unsigned d = num_dpus; d > 1; d >>= 1)
            hops += 1.0;
        const Seconds time = cfg_.interconnectLatency +
                             hops * static_cast<double>(bytes) /
                                 cfg_.interDpuBandwidth;
        if (tracing) {
            auto &t = telemetry::tracer();
            nameRankTrack(0);
            t.completeEvent(telemetry::rankTrack(0), "broadcast",
                            "xfer", t.now(), time,
                            {telemetry::arg("bytes", bytes),
                             telemetry::arg("mode",
                                            "interconnect")});
            t.advance(time);
        }
        return time;
    }
    const unsigned in_last_rank = num_dpus % cfg_.dpusPerRank;
    const unsigned busiest_rank =
        num_dpus >= cfg_.dpusPerRank ? cfg_.dpusPerRank
        : (in_last_rank ? in_last_rank : cfg_.dpusPerRank);
    const Seconds bus_time =
        static_cast<double>(bytes) * busiest_rank /
        rankBandwidth(TransferDirection::HostToDpu);
    // One source buffer: a single CPU-side staging pass.
    const Seconds copy_time = static_cast<double>(bytes) / cfg_.hostCopyBw;
    const Seconds time = cfg_.launchLatency + bus_time + copy_time;
    if (tracing) {
        auto &t = telemetry::tracer();
        const unsigned ranks =
            (num_dpus + cfg_.dpusPerRank - 1) / cfg_.dpusPerRank;
        const Seconds bus_start =
            t.now() + cfg_.launchLatency + copy_time;
        for (unsigned r = 0; r < ranks; ++r) {
            const unsigned dpus_in_rank =
                std::min(cfg_.dpusPerRank,
                         num_dpus - r * cfg_.dpusPerRank);
            nameRankTrack(r);
            t.completeEvent(
                telemetry::rankTrack(r), "broadcast", "xfer",
                bus_start,
                static_cast<double>(bytes) * dpus_in_rank /
                    rankBandwidth(TransferDirection::HostToDpu),
                {telemetry::arg("bytes",
                                bytes * static_cast<Bytes>(
                                            dpus_in_rank)),
                 telemetry::arg(
                     "rank", static_cast<std::uint64_t>(r))});
        }
        t.advance(time);
    }
    return time;
}

Seconds
TransferModel::uniformScatter(Bytes bytes_per_dpu, unsigned num_dpus,
                              TransferDirection dir) const
{
    std::vector<Bytes> sizes(num_dpus, bytes_per_dpu);
    return scatterGather(sizes, dir);
}

} // namespace alphapim::upmem
