#include "transfer_model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace alphapim::upmem
{

double
TransferModel::rankBandwidth(TransferDirection dir) const
{
    return dir == TransferDirection::HostToDpu ? cfg_.rankBwHostToDpu
                                               : cfg_.rankBwDpuToHost;
}

Seconds
TransferModel::scatterGather(const std::vector<Bytes> &per_dpu_bytes,
                             TransferDirection dir) const
{
    Bytes total = 0;
    Bytes slowest_rank_payload = 0;
    unsigned distinct = 0;

    const unsigned per_rank = cfg_.dpusPerRank;
    for (std::size_t base = 0; base < per_dpu_bytes.size();
         base += per_rank) {
        const std::size_t end =
            std::min(per_dpu_bytes.size(),
                     base + static_cast<std::size_t>(per_rank));
        Bytes rank_max = 0;
        for (std::size_t d = base; d < end; ++d) {
            const Bytes b = per_dpu_bytes[d];
            total += b;
            if (b > 0)
                ++distinct;
            rank_max = std::max(rank_max, b);
        }
        // Parallel rank transfers are padded to the largest buffer.
        slowest_rank_payload = std::max(
            slowest_rank_payload,
            rank_max * static_cast<Bytes>(end - base));
    }
    if (total == 0)
        return 0.0;

    if (cfg_.directInterconnect) {
        // Future hardware: DPUs exchange directly, in parallel.
        Bytes max_per_dpu = 0;
        for (Bytes b : per_dpu_bytes)
            max_per_dpu = std::max(max_per_dpu, b);
        return cfg_.interconnectLatency +
               static_cast<double>(max_per_dpu) /
                   cfg_.interDpuBandwidth;
    }

    const Seconds bus_time =
        static_cast<double>(slowest_rank_payload) / rankBandwidth(dir);
    const Seconds copy_time =
        static_cast<double>(total) / cfg_.hostCopyBw;
    return cfg_.launchLatency + cfg_.perDpuSetup * distinct +
           std::max(bus_time, copy_time);
}

Seconds
TransferModel::broadcast(Bytes bytes, unsigned num_dpus) const
{
    if (bytes == 0 || num_dpus == 0)
        return 0.0;
    if (cfg_.directInterconnect) {
        // Tree broadcast over the interconnect: log2(D) hops.
        double hops = 1.0;
        for (unsigned d = num_dpus; d > 1; d >>= 1)
            hops += 1.0;
        return cfg_.interconnectLatency +
               hops * static_cast<double>(bytes) /
                   cfg_.interDpuBandwidth;
    }
    const unsigned in_last_rank = num_dpus % cfg_.dpusPerRank;
    const unsigned busiest_rank =
        num_dpus >= cfg_.dpusPerRank ? cfg_.dpusPerRank
        : (in_last_rank ? in_last_rank : cfg_.dpusPerRank);
    const Seconds bus_time =
        static_cast<double>(bytes) * busiest_rank /
        rankBandwidth(TransferDirection::HostToDpu);
    // One source buffer: a single CPU-side staging pass.
    const Seconds copy_time = static_cast<double>(bytes) / cfg_.hostCopyBw;
    return cfg_.launchLatency + bus_time + copy_time;
}

Seconds
TransferModel::uniformScatter(Bytes bytes_per_dpu, unsigned num_dpus,
                              TransferDirection dir) const
{
    std::vector<Bytes> sizes(num_dpus, bytes_per_dpu);
    return scatterGather(sizes, dir);
}

} // namespace alphapim::upmem
