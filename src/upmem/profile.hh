/**
 * @file
 * Profiling counters produced by the revolver-pipeline scheduler:
 * the PIMulator-style metrics behind the paper's Figures 9-11
 * (stall breakdown, instruction mix, average active threads).
 */

#ifndef ALPHA_PIM_UPMEM_PROFILE_HH
#define ALPHA_PIM_UPMEM_PROFILE_HH

#include <algorithm>
#include <array>
#include <cstdint>

#include "common/logging.hh"
#include "common/types.hh"
#include "upmem/op.hh"

namespace alphapim::upmem
{

/** Why the dispatch slot of a cycle went unused. */
enum class StallReason : std::uint8_t
{
    Memory,   ///< every runnable tasklet was waiting on a DMA
    Revolver, ///< binding constraint was the 11-cycle dispatch gap
    RfHazard, ///< even/odd register-file bank conflict
    Sync,     ///< blocked on a mutex holder / barrier stragglers
    NumReasons,
};

/** Human-readable stall reason name. */
const char *stallReasonName(StallReason reason);

/** Counters for one DPU kernel execution. */
struct DpuProfile
{
    /** Total cycles from launch to last retiring dispatch. */
    Cycles totalCycles = 0;

    /** Cycles in which an instruction was dispatched. */
    Cycles issuedCycles = 0;

    /** Idle dispatch slots by cause. */
    std::array<Cycles, static_cast<std::size_t>(
        StallReason::NumReasons)> stallCycles{};

    /** Dispatched instructions per op class (includes spin retries). */
    std::array<std::uint64_t, numOpClasses> instrByClass{};

    /** Integral of active tasklets over time (for Figure 10). */
    double activeThreadCycles = 0.0;

    /** MRAM -> WRAM DMA traffic in bytes (roofline numerator). */
    Bytes mramReadBytes = 0;

    /** WRAM -> MRAM DMA traffic in bytes. */
    Bytes mramWriteBytes = 0;

    /**
     * Cycles accounted for: dispatch slots used plus idle slots
     * attributed to a stall reason. The scheduler guarantees this
     * never exceeds totalCycles (slots after the last dispatch of a
     * fully drained DPU are unattributed); the skew statistics and
     * stall fractions divide by totalCycles relying on it.
     */
    Cycles
    activeCycles() const
    {
        Cycles n = issuedCycles;
        for (auto c : stallCycles)
            n += c;
        return n;
    }

    /** Issued fraction of all cycles. */
    double
    issuedFraction() const
    {
        return totalCycles ? static_cast<double>(issuedCycles) /
                                 static_cast<double>(totalCycles)
                           : 0.0;
    }

    /** Idle fraction attributed to `reason`. */
    double
    stallFraction(StallReason reason) const
    {
        return totalCycles
            ? static_cast<double>(
                  stallCycles[static_cast<std::size_t>(reason)]) /
                  static_cast<double>(totalCycles)
            : 0.0;
    }

    /** Average number of active tasklets per cycle. */
    double
    avgActiveThreads() const
    {
        return totalCycles
            ? activeThreadCycles / static_cast<double>(totalCycles)
            : 0.0;
    }

    /** Total dispatched instructions. */
    std::uint64_t
    totalInstructions() const
    {
        std::uint64_t n = 0;
        for (auto c : instrByClass)
            n += c;
        return n;
    }

    /** Dispatched instructions in a Figure 11 category. */
    std::uint64_t
    instructionsInCategory(OpCategory cat) const
    {
        std::uint64_t n = 0;
        for (unsigned c = 0; c < numOpClasses; ++c) {
            if (opCategory(static_cast<OpClass>(c)) == cat)
                n += instrByClass[c];
        }
        return n;
    }

    /** Fold another DPU's profile into this aggregate. All counters
     * accumulate, including totalCycles, so an aggregate profile is
     * denominated in DPU-cycles; wall-clock kernel time (max cycles
     * over DPUs) is tracked separately by the launcher. */
    void merge(const DpuProfile &other);
};

/** Result of launching one kernel across all DPUs. */
struct LaunchProfile
{
    /** Aggregate counters over every DPU (DPU-cycle denominated). */
    DpuProfile aggregate;

    /** Slowest DPU's cycle count: determines kernel wall time. */
    Cycles maxCycles = 0;

    /** Number of DPUs that had any work. */
    unsigned activeDpus = 0;

    /** Fold in the profile of one more DPU. */
    void
    add(const DpuProfile &dpu)
    {
        ALPHA_ASSERT(dpu.activeCycles() <= dpu.totalCycles,
                     "stall + issue cycles exceed total cycles: the "
                     "scheduler double-attributed a dispatch slot");
        aggregate.merge(dpu);
        if (dpu.totalCycles > maxCycles)
            maxCycles = dpu.totalCycles;
        if (dpu.totalInstructions() > 0)
            ++activeDpus;
    }

    /**
     * Merge a whole LaunchProfile, modelling launches that execute
     * back-to-back on the same DPU fleet (e.g. the iterations of one
     * application run). The fields deliberately combine differently:
     *
     *  - `aggregate` accumulates: it is denominated in DPU-cycles, so
     *    summing across sequential launches stays meaningful;
     *  - `maxCycles` accumulates: each launch's slowest DPU extends
     *    the run's kernel critical path, so the sum is the run's
     *    total kernel wall time in cycles;
     *  - `activeDpus` takes the maximum: the same physical DPUs
     *    participate in every launch, so this reports the *peak*
     *    number of DPUs any single launch used -- never a sum, which
     *    would exceed the fleet size after a few iterations.
     */
    void
    add(const LaunchProfile &other)
    {
        ALPHA_ASSERT(other.aggregate.totalCycles >= other.maxCycles,
                     "aggregate DPU-cycles below the slowest DPU's "
                     "cycles: profile was not built via add(DpuProfile)");
        ALPHA_ASSERT(other.activeDpus > 0 ||
                         other.aggregate.totalInstructions() == 0,
                     "a launch that dispatched instructions must "
                     "report active DPUs");
        aggregate.merge(other.aggregate);
        maxCycles += other.maxCycles; // sequential launches add up
        activeDpus = std::max(activeDpus, other.activeDpus);
    }
};

} // namespace alphapim::upmem

#endif // ALPHA_PIM_UPMEM_PROFILE_HH
