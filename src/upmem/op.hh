/**
 * @file
 * Instruction taxonomy of the simulated DPU. Kernels record abstract
 * operation classes; the scheduler charges dispatch slots and the
 * profiler groups them into the categories of the paper's Figure 11
 * (synchronization / arithmetic / scratchpad / DMA / control).
 */

#ifndef ALPHA_PIM_UPMEM_OP_HH
#define ALPHA_PIM_UPMEM_OP_HH

#include <cstdint>

namespace alphapim::upmem
{

/** Abstract instruction classes recorded by kernels. */
enum class OpClass : std::uint8_t
{
    IntAdd,      ///< integer add/sub, address arithmetic
    IntMul,      ///< integer multiply (expanded, 8x8 multiplier)
    FloatAdd,    ///< software-emulated float add (expanded)
    FloatMul,    ///< software-emulated float multiply (expanded)
    Compare,     ///< comparisons, min/max
    Logic,       ///< and/or/xor/shift
    Move,        ///< register moves, immediates
    LoadWram,    ///< scratchpad load
    StoreWram,   ///< scratchpad store
    Control,     ///< branches, loop overhead
    DmaRead,     ///< MRAM -> WRAM DMA (blocking)
    DmaWrite,    ///< WRAM -> MRAM DMA (blocking)
    MutexLock,   ///< acquire (spins while contended)
    MutexUnlock, ///< release
    Barrier,     ///< barrier arrival
    NumClasses,
};

/** Figure 11 reporting buckets. */
enum class OpCategory : std::uint8_t
{
    Arithmetic,
    Scratchpad,
    Dma,
    Control,
    Sync,
    NumCategories,
};

/** Number of distinct op classes. */
inline constexpr unsigned numOpClasses =
    static_cast<unsigned>(OpClass::NumClasses);

/** Number of reporting categories. */
inline constexpr unsigned numOpCategories =
    static_cast<unsigned>(OpCategory::NumCategories);

/** Reporting bucket for an op class. */
constexpr OpCategory
opCategory(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAdd:
      case OpClass::IntMul:
      case OpClass::FloatAdd:
      case OpClass::FloatMul:
      case OpClass::Compare:
      case OpClass::Logic:
      case OpClass::Move:
        return OpCategory::Arithmetic;
      case OpClass::LoadWram:
      case OpClass::StoreWram:
        return OpCategory::Scratchpad;
      case OpClass::DmaRead:
      case OpClass::DmaWrite:
        return OpCategory::Dma;
      case OpClass::Control:
        return OpCategory::Control;
      case OpClass::MutexLock:
      case OpClass::MutexUnlock:
      case OpClass::Barrier:
        return OpCategory::Sync;
      default:
        return OpCategory::Control;
    }
}

/** Human-readable op class name. */
const char *opClassName(OpClass cls);

/** Human-readable category name. */
const char *opCategoryName(OpCategory cat);

/** True for register-register ALU classes that can suffer the
 * even/odd register-file bank hazard. */
constexpr bool
isAluClass(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAdd:
      case OpClass::IntMul:
      case OpClass::FloatAdd:
      case OpClass::FloatMul:
      case OpClass::Compare:
      case OpClass::Logic:
      case OpClass::Move:
        return true;
      default:
        return false;
    }
}

} // namespace alphapim::upmem

#endif // ALPHA_PIM_UPMEM_OP_HH
