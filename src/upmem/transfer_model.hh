/**
 * @file
 * Host <-> PIM-memory transfer cost model.
 *
 * Mirrors the UPMEM SDK's three transfer modes:
 *  - scatter ("push"): a distinct buffer per DPU, moved rank-parallel;
 *  - broadcast: one buffer replicated into every DPU's MRAM;
 *  - gather ("pull"): a distinct buffer retrieved from each DPU.
 *
 * Costs (DESIGN.md section 4.2):
 *  time = launchLatency
 *       + perDpuSetup * (#distinct buffers)      [transposition lib]
 *       + max( slowest rank's bus time, CPU-side copy time )
 *
 * where a rank's bus time is maxPerDpuBytes * dpusPerRank / rankBw
 * (the SDK pads parallel transfers to a common size per rank).
 */

#ifndef ALPHA_PIM_UPMEM_TRANSFER_MODEL_HH
#define ALPHA_PIM_UPMEM_TRANSFER_MODEL_HH

#include <vector>

#include "common/types.hh"
#include "upmem/dpu_config.hh"

namespace alphapim::upmem
{

/** Direction of a host <-> DPU transfer. */
enum class TransferDirection
{
    HostToDpu,
    DpuToHost,
};

/** Cost model for bulk transfers between host memory and MRAM. */
class TransferModel
{
  public:
    /** @param cfg transfer parameters */
    explicit TransferModel(const TransferConfig &cfg) : cfg_(cfg) {}

    /**
     * Scatter/gather with a distinct buffer per DPU.
     *
     * @param per_dpu_bytes buffer size per DPU (index = DPU id);
     *                      zero entries are skipped
     * @param dir transfer direction (bandwidths differ)
     */
    Seconds scatterGather(const std::vector<Bytes> &per_dpu_bytes,
                          TransferDirection dir) const;

    /**
     * Broadcast one buffer of `bytes` into `num_dpus` MRAMs.
     * The single source buffer avoids per-DPU setup, but every DPU's
     * copy must cross its rank bus.
     */
    Seconds broadcast(Bytes bytes, unsigned num_dpus) const;

    /** Convenience: scatter with a uniform per-DPU size. */
    Seconds uniformScatter(Bytes bytes_per_dpu, unsigned num_dpus,
                           TransferDirection dir) const;

    /** The configuration in use. */
    const TransferConfig &config() const { return cfg_; }

  private:
    double rankBandwidth(TransferDirection dir) const;

    const TransferConfig &cfg_;
};

} // namespace alphapim::upmem

#endif // ALPHA_PIM_UPMEM_TRANSFER_MODEL_HH
