/**
 * @file
 * Run-length-encoded tasklet instruction traces.
 *
 * Kernels execute functionally on the host while recording, per
 * tasklet, the abstract instruction stream the equivalent DPU code
 * would issue. The RevolverScheduler then replays the traces of one
 * DPU's tasklets to obtain cycle-accurate-style timing.
 */

#ifndef ALPHA_PIM_UPMEM_TRACE_HH
#define ALPHA_PIM_UPMEM_TRACE_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "upmem/op.hh"

namespace alphapim::upmem
{

/** Kind of trace record. */
enum class RecordKind : std::uint8_t
{
    Ops,    ///< `count` back-to-back instructions of class `cls`
    Dma,    ///< one blocking DMA instruction moving `bytes`
    Mutex,  ///< lock (count==1) or unlock (count==0) of mutex `id`
    Barrier ///< barrier arrival on barrier `id`
};

/** Sentinel address of records without address information. */
inline constexpr std::uint64_t traceNoAddr = ~0ull;

/**
 * One run-length-encoded trace element.
 *
 * `addr` is optional provenance for the trace analyzer (pim-verify):
 * Dma records may carry the MRAM start address of the transfer, and
 * LoadWram/StoreWram Ops records the WRAM start address of the
 * touched range (with `arg` then holding the range's byte length).
 * Unaddressed records (`addr == traceNoAddr`) stay fully supported;
 * the replay scheduler ignores addresses entirely.
 */
struct TraceRecord
{
    RecordKind kind;
    OpClass cls;         ///< for Ops / Dma (DmaRead or DmaWrite)
    std::uint32_t count; ///< Ops: run length; Mutex: 1=lock 0=unlock
    std::uint32_t arg;   ///< Dma: bytes; Mutex/Barrier: id;
                         ///< addressed Ops: bytes touched
    std::uint64_t addr = traceNoAddr; ///< optional start address

    /** True when the record carries address information. */
    bool addressed() const { return addr != traceNoAddr; }
};

/** Instruction stream of one tasklet. */
class TaskletTrace
{
  public:
    /** Append `count` instructions of class `cls` (merges runs). */
    void
    ops(OpClass cls, std::uint32_t count = 1)
    {
        if (count == 0)
            return;
        if (!records_.empty()) {
            auto &back = records_.back();
            if (back.kind == RecordKind::Ops && back.cls == cls &&
                !back.addressed()) {
                back.count += count;
                return;
            }
        }
        records_.push_back({RecordKind::Ops, cls, count, 0});
    }

    /** Append one blocking DMA read of `bytes` from MRAM,
     * optionally recording the MRAM start address. */
    void
    dmaRead(std::uint32_t bytes, std::uint64_t addr = traceNoAddr)
    {
        records_.push_back(
            {RecordKind::Dma, OpClass::DmaRead, 1, bytes, addr});
    }

    /** Append one blocking DMA write of `bytes` to MRAM,
     * optionally recording the MRAM start address. */
    void
    dmaWrite(std::uint32_t bytes, std::uint64_t addr = traceNoAddr)
    {
        records_.push_back(
            {RecordKind::Dma, OpClass::DmaWrite, 1, bytes, addr});
    }

    /**
     * Append an *addressed* scratchpad access: `count` LoadWram or
     * StoreWram instructions touching WRAM range [addr, addr+bytes).
     * Never merged into neighbouring runs so the address survives.
     */
    void
    wramAccess(OpClass cls, std::uint32_t count, std::uint64_t addr,
               std::uint32_t bytes)
    {
        ALPHA_ASSERT(cls == OpClass::LoadWram ||
                         cls == OpClass::StoreWram,
                     "addressed accesses must be scratchpad ops");
        if (count == 0)
            return;
        records_.push_back({RecordKind::Ops, cls, count, bytes, addr});
    }

    /** Append a mutex acquire on mutex `id`. */
    void
    mutexLock(std::uint32_t id)
    {
        records_.push_back({RecordKind::Mutex, OpClass::MutexLock, 1, id});
    }

    /** Append a mutex release on mutex `id`. */
    void
    mutexUnlock(std::uint32_t id)
    {
        records_.push_back(
            {RecordKind::Mutex, OpClass::MutexUnlock, 0, id});
    }

    /** Append a barrier arrival on barrier `id`. */
    void
    barrier(std::uint32_t id)
    {
        records_.push_back({RecordKind::Barrier, OpClass::Barrier, 1, id});
    }

    /** Recorded records. */
    const std::vector<TraceRecord> &records() const { return records_; }

    /** True when nothing was recorded. */
    bool empty() const { return records_.empty(); }

    /** Total dispatched instructions ignoring spin retries. */
    std::uint64_t
    instructionCount() const
    {
        std::uint64_t n = 0;
        for (const auto &r : records_)
            n += (r.kind == RecordKind::Ops) ? r.count : 1;
        return n;
    }

    /** Drop all records. */
    void clear() { records_.clear(); }

  private:
    std::vector<TraceRecord> records_;
};

} // namespace alphapim::upmem

#endif // ALPHA_PIM_UPMEM_TRACE_HH
