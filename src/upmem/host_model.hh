/**
 * @file
 * Cost model for the host-CPU phases of a PIM launch: merging partial
 * results from DPUs (the paper's Merge phase, parallelized with
 * OpenMP on the real system) and per-iteration convergence checks.
 */

#ifndef ALPHA_PIM_UPMEM_HOST_MODEL_HH
#define ALPHA_PIM_UPMEM_HOST_MODEL_HH

#include <cstdint>

#include "common/types.hh"
#include "upmem/dpu_config.hh"

namespace alphapim::upmem
{

/** Host-side merge / convergence cost model. */
class HostModel
{
  public:
    /** @param cfg host CPU parameters */
    explicit HostModel(const HostConfig &cfg) : cfg_(cfg) {}

    /**
     * Time for a parallel merge pass over `bytes` of partial results
     * performing `ops` combining operations.
     */
    Seconds
    mergeTime(Bytes bytes, std::uint64_t ops) const
    {
        const Seconds mem =
            static_cast<double>(bytes) / cfg_.memBandwidth;
        const Seconds compute =
            static_cast<double>(ops) /
            (cfg_.cores * cfg_.clockHz * cfg_.opsPerCycle);
        return cfg_.passOverhead + mem + compute;
    }

    /**
     * Time for the per-iteration convergence check: stream the new
     * and previous vectors once and compare.
     */
    Seconds
    convergenceTime(Bytes vector_bytes) const
    {
        return cfg_.passOverhead +
               2.0 * static_cast<double>(vector_bytes) /
                   cfg_.memBandwidth;
    }

    /** The configuration in use. */
    const HostConfig &config() const { return cfg_; }

  private:
    const HostConfig &cfg_;
};

} // namespace alphapim::upmem

#endif // ALPHA_PIM_UPMEM_HOST_MODEL_HH
