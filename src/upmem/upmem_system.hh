/**
 * @file
 * Facade over the simulated UPMEM system: owns the configuration and
 * exposes kernel launches (trace generation + revolver replay across
 * all DPUs, host-parallelized), the transfer model, and the host
 * merge model. Kernel implementations in src/core build on this.
 */

#ifndef ALPHA_PIM_UPMEM_UPMEM_SYSTEM_HH
#define ALPHA_PIM_UPMEM_UPMEM_SYSTEM_HH

#include <functional>
#include <vector>

#include "common/types.hh"
#include "upmem/dpu_config.hh"
#include "upmem/host_model.hh"
#include "upmem/profile.hh"
#include "upmem/scheduler.hh"
#include "upmem/transfer_model.hh"

namespace alphapim::upmem
{

/**
 * The simulated PIM machine. One instance per experiment; cheap to
 * construct. Thread-safe for concurrent const use.
 */
class UpmemSystem
{
  public:
    /** Build a system with the given configuration. */
    explicit UpmemSystem(SystemConfig cfg);

    /** Full configuration. */
    const SystemConfig &config() const { return cfg_; }

    /** Number of DPUs allocated to kernels. */
    unsigned numDpus() const { return cfg_.numDpus; }

    /** Transfer cost model (host <-> MRAM). */
    const TransferModel &transfer() const { return transfer_; }

    /** Host-side merge cost model. */
    const HostModel &host() const { return host_; }

    /**
     * Launch a kernel: for each DPU, `generate(dpu, traces)` runs the
     * kernel functionally and records per-tasklet traces (the vector
     * arrives pre-sized to config().dpu.tasklets and cleared); the
     * traces are then replayed through the revolver scheduler.
     *
     * DPUs are simulated concurrently on host threads, so `generate`
     * must only touch per-DPU state.
     *
     * @return aggregated launch profile (kernel wall time is
     *         kernelSeconds(profile))
     */
    LaunchProfile launchKernel(
        unsigned num_dpus,
        const std::function<void(unsigned,
                                 std::vector<TaskletTrace> &)> &generate)
        const;

    /** Kernel wall-clock time of a launch, including launch overhead. */
    Seconds
    kernelSeconds(const LaunchProfile &profile) const
    {
        return cfg_.kernelLaunchOverhead +
               static_cast<double>(profile.maxCycles) / cfg_.dpu.clockHz;
    }

  private:
    SystemConfig cfg_;
    TransferModel transfer_;
    HostModel host_;
};

} // namespace alphapim::upmem

#endif // ALPHA_PIM_UPMEM_UPMEM_SYSTEM_HH
