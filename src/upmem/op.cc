#include "op.hh"

namespace alphapim::upmem
{

const char *
opClassName(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAdd:
        return "int-add";
      case OpClass::IntMul:
        return "int-mul";
      case OpClass::FloatAdd:
        return "float-add";
      case OpClass::FloatMul:
        return "float-mul";
      case OpClass::Compare:
        return "compare";
      case OpClass::Logic:
        return "logic";
      case OpClass::Move:
        return "move";
      case OpClass::LoadWram:
        return "load-wram";
      case OpClass::StoreWram:
        return "store-wram";
      case OpClass::Control:
        return "control";
      case OpClass::DmaRead:
        return "dma-read";
      case OpClass::DmaWrite:
        return "dma-write";
      case OpClass::MutexLock:
        return "mutex-lock";
      case OpClass::MutexUnlock:
        return "mutex-unlock";
      case OpClass::Barrier:
        return "barrier";
      default:
        return "unknown";
    }
}

const char *
opCategoryName(OpCategory cat)
{
    switch (cat) {
      case OpCategory::Arithmetic:
        return "arithmetic";
      case OpCategory::Scratchpad:
        return "scratchpad";
      case OpCategory::Dma:
        return "dma";
      case OpCategory::Control:
        return "control";
      case OpCategory::Sync:
        return "sync";
      default:
        return "unknown";
    }
}

} // namespace alphapim::upmem
