/**
 * @file
 * Human-readable rendering of DPU profiles: the PIMulator-style
 * characterization report (cycle breakdown, instruction mix, thread
 * activity) used by the CLI tool and examples.
 */

#ifndef ALPHA_PIM_UPMEM_REPORT_HH
#define ALPHA_PIM_UPMEM_REPORT_HH

#include <string>

#include "upmem/dpu_config.hh"
#include "upmem/profile.hh"

namespace alphapim::upmem
{

/** Render a launch profile as a multi-line text report. */
std::string renderProfileReport(const LaunchProfile &profile,
                                const SystemConfig &cfg);

/** One-line summary: "issued 43.1% | mem 31% | rev 22% | ...". */
std::string renderProfileSummary(const DpuProfile &profile);

} // namespace alphapim::upmem

#endif // ALPHA_PIM_UPMEM_REPORT_HH
