/**
 * @file
 * Recording context handed to device kernels, one per tasklet.
 *
 * The context translates kernel-level actions (stream a buffer from
 * MRAM, do a semiring multiply-accumulate, grab the output mutex)
 * into trace records, applying the DPU's software-emulation
 * expansions for floating point and integer multiply.
 */

#ifndef ALPHA_PIM_UPMEM_TASKLET_CTX_HH
#define ALPHA_PIM_UPMEM_TASKLET_CTX_HH

#include <algorithm>

#include "common/types.hh"
#include "upmem/dpu_config.hh"
#include "upmem/trace.hh"

namespace alphapim::upmem
{

/** Hardware DMA granularity: MRAM transfers move 8-byte units. */
inline constexpr std::uint32_t dmaGranularity = 8;

/** Hardware DMA size ceiling: one transfer moves at most 2 KiB. */
inline constexpr std::uint32_t dmaMaxBytes = 2048;

/** Round a DMA size up to the hardware's 8-byte granularity. */
constexpr std::uint32_t
roundUpDma(std::uint32_t bytes)
{
    return (bytes + dmaGranularity - 1) & ~(dmaGranularity - 1);
}

/**
 * Per-tasklet recording facade over TaskletTrace.
 *
 * Kernels should express their work in terms of these primitives so
 * the recorded instruction mix matches what the hand-written UPMEM C
 * kernels in SparseP / ALPHA-PIM would execute.
 *
 * MRAM accesses honour the SDK's DMA constraints: sizes are rounded
 * up to the 8-byte granularity the hardware transfers in, and a
 * single transfer never exceeds 2048 bytes. The addressed variants
 * additionally record where the access lands, feeding the pim-verify
 * trace analyzer (src/analysis/); the unaddressed spellings remain
 * valid and are simply invisible to the race checker.
 */
class TaskletCtx
{
  public:
    /** @param cfg shared DPU configuration; @param trace sink */
    TaskletCtx(const DpuConfig &cfg, TaskletTrace &trace)
        : cfg_(cfg), trace_(trace)
    {
    }

    /** The underlying trace (for the scheduler). */
    TaskletTrace &trace() { return trace_; }

    /**
     * Record `count` operations of class `cls`, applying the
     * software expansion factors for emulated classes.
     */
    void
    op(OpClass cls, std::uint32_t count = 1)
    {
        switch (cls) {
          case OpClass::FloatAdd:
            trace_.ops(OpClass::FloatAdd, count * cfg_.floatAddInstrs);
            break;
          case OpClass::FloatMul:
            trace_.ops(OpClass::FloatMul, count * cfg_.floatMulInstrs);
            break;
          case OpClass::IntMul:
            trace_.ops(OpClass::IntMul, count * cfg_.intMulInstrs);
            break;
          default:
            trace_.ops(cls, count);
            break;
        }
    }

    /** Scratchpad load of `count` words. */
    void loadWram(std::uint32_t count = 1)
    {
        trace_.ops(OpClass::LoadWram, count);
    }

    /** Scratchpad store of `count` words. */
    void storeWram(std::uint32_t count = 1)
    {
        trace_.ops(OpClass::StoreWram, count);
    }

    /** Addressed scratchpad load of WRAM range [addr, addr+bytes):
     * one load instruction per 4-byte word. */
    void
    loadWramAt(std::uint32_t addr, std::uint32_t bytes)
    {
        trace_.wramAccess(OpClass::LoadWram, (bytes + 3) / 4, addr,
                          bytes);
    }

    /** Addressed scratchpad store of WRAM range [addr, addr+bytes). */
    void
    storeWramAt(std::uint32_t addr, std::uint32_t bytes)
    {
        trace_.wramAccess(OpClass::StoreWram, (bytes + 3) / 4, addr,
                          bytes);
    }

    /** Loop/branch overhead instructions. */
    void control(std::uint32_t count = 1)
    {
        trace_.ops(OpClass::Control, count);
    }

    /**
     * Stream `bytes` from MRAM through the WRAM staging buffer:
     * one blocking DMA per wramChunkBytes chunk plus the loop
     * overhead of issuing it. Each chunk is rounded up to the
     * hardware's 8-byte DMA granularity; when `addr` is given the
     * chunks carry consecutive MRAM addresses.
     */
    void
    streamFromMram(Bytes bytes, std::uint64_t addr = traceNoAddr)
    {
        stream(bytes, addr, /*write=*/false);
    }

    /** Stream `bytes` from WRAM back to MRAM in chunks. */
    void
    streamToMram(Bytes bytes, std::uint64_t addr = traceNoAddr)
    {
        stream(bytes, addr, /*write=*/true);
    }

    /** Single random-access MRAM read of `bytes` (irregular access).
     * Sizes are rounded up to the 8-byte DMA granularity and must
     * respect the 2048-byte hardware transfer ceiling. */
    void
    randomMramRead(std::uint32_t bytes,
                   std::uint64_t addr = traceNoAddr)
    {
        ALPHA_ASSERT(bytes > 0 && bytes <= dmaMaxBytes,
                     "MRAM DMA outside the 1..2048 byte range");
        trace_.dmaRead(roundUpDma(bytes), addr);
    }

    /** Single random-access MRAM write of `bytes`. */
    void
    randomMramWrite(std::uint32_t bytes,
                    std::uint64_t addr = traceNoAddr)
    {
        ALPHA_ASSERT(bytes > 0 && bytes <= dmaMaxBytes,
                     "MRAM DMA outside the 1..2048 byte range");
        trace_.dmaWrite(roundUpDma(bytes), addr);
    }

    /** Acquire mutex `id` (contention is resolved by the scheduler). */
    void mutexLock(std::uint32_t id) { trace_.mutexLock(id); }

    /** Release mutex `id`. */
    void mutexUnlock(std::uint32_t id) { trace_.mutexUnlock(id); }

    /** Arrive at barrier `id` (all tasklets must arrive to pass). */
    void barrier(std::uint32_t id) { trace_.barrier(id); }

  private:
    void
    stream(Bytes bytes, std::uint64_t addr, bool write)
    {
        // Cap chunks so they still fit the staging buffer after
        // rounding up to the DMA granularity.
        const Bytes cap = std::max<Bytes>(
            dmaGranularity,
            cfg_.wramChunkBytes & ~static_cast<Bytes>(dmaGranularity - 1));
        while (bytes > 0) {
            const auto chunk =
                static_cast<std::uint32_t>(std::min<Bytes>(bytes, cap));
            const std::uint32_t xfer = roundUpDma(chunk);
            if (write)
                trace_.dmaWrite(xfer, addr);
            else
                trace_.dmaRead(xfer, addr);
            trace_.ops(OpClass::Control, 2);
            bytes -= chunk;
            if (addr != traceNoAddr)
                addr += xfer;
        }
    }

    const DpuConfig &cfg_;
    TaskletTrace &trace_;
};

} // namespace alphapim::upmem

#endif // ALPHA_PIM_UPMEM_TASKLET_CTX_HH
