/**
 * @file
 * Recording context handed to device kernels, one per tasklet.
 *
 * The context translates kernel-level actions (stream a buffer from
 * MRAM, do a semiring multiply-accumulate, grab the output mutex)
 * into trace records, applying the DPU's software-emulation
 * expansions for floating point and integer multiply.
 */

#ifndef ALPHA_PIM_UPMEM_TASKLET_CTX_HH
#define ALPHA_PIM_UPMEM_TASKLET_CTX_HH

#include <algorithm>

#include "common/types.hh"
#include "upmem/dpu_config.hh"
#include "upmem/trace.hh"

namespace alphapim::upmem
{

/**
 * Per-tasklet recording facade over TaskletTrace.
 *
 * Kernels should express their work in terms of these primitives so
 * the recorded instruction mix matches what the hand-written UPMEM C
 * kernels in SparseP / ALPHA-PIM would execute.
 */
class TaskletCtx
{
  public:
    /** @param cfg shared DPU configuration; @param trace sink */
    TaskletCtx(const DpuConfig &cfg, TaskletTrace &trace)
        : cfg_(cfg), trace_(trace)
    {
    }

    /** The underlying trace (for the scheduler). */
    TaskletTrace &trace() { return trace_; }

    /**
     * Record `count` operations of class `cls`, applying the
     * software expansion factors for emulated classes.
     */
    void
    op(OpClass cls, std::uint32_t count = 1)
    {
        switch (cls) {
          case OpClass::FloatAdd:
            trace_.ops(OpClass::FloatAdd, count * cfg_.floatAddInstrs);
            break;
          case OpClass::FloatMul:
            trace_.ops(OpClass::FloatMul, count * cfg_.floatMulInstrs);
            break;
          case OpClass::IntMul:
            trace_.ops(OpClass::IntMul, count * cfg_.intMulInstrs);
            break;
          default:
            trace_.ops(cls, count);
            break;
        }
    }

    /** Scratchpad load of `count` words. */
    void loadWram(std::uint32_t count = 1)
    {
        trace_.ops(OpClass::LoadWram, count);
    }

    /** Scratchpad store of `count` words. */
    void storeWram(std::uint32_t count = 1)
    {
        trace_.ops(OpClass::StoreWram, count);
    }

    /** Loop/branch overhead instructions. */
    void control(std::uint32_t count = 1)
    {
        trace_.ops(OpClass::Control, count);
    }

    /**
     * Stream `bytes` from MRAM through the WRAM staging buffer:
     * one blocking DMA per wramChunkBytes chunk plus the loop
     * overhead of issuing it.
     */
    void
    streamFromMram(Bytes bytes)
    {
        while (bytes > 0) {
            const auto chunk = static_cast<std::uint32_t>(
                std::min<Bytes>(bytes, cfg_.wramChunkBytes));
            trace_.dmaRead(chunk);
            trace_.ops(OpClass::Control, 2);
            bytes -= chunk;
        }
    }

    /** Stream `bytes` from WRAM back to MRAM in chunks. */
    void
    streamToMram(Bytes bytes)
    {
        while (bytes > 0) {
            const auto chunk = static_cast<std::uint32_t>(
                std::min<Bytes>(bytes, cfg_.wramChunkBytes));
            trace_.dmaWrite(chunk);
            trace_.ops(OpClass::Control, 2);
            bytes -= chunk;
        }
    }

    /** Single random-access MRAM read of `bytes` (irregular access). */
    void randomMramRead(std::uint32_t bytes) { trace_.dmaRead(bytes); }

    /** Single random-access MRAM write of `bytes`. */
    void randomMramWrite(std::uint32_t bytes) { trace_.dmaWrite(bytes); }

    /** Acquire mutex `id` (contention is resolved by the scheduler). */
    void mutexLock(std::uint32_t id) { trace_.mutexLock(id); }

    /** Release mutex `id`. */
    void mutexUnlock(std::uint32_t id) { trace_.mutexUnlock(id); }

    /** Arrive at barrier `id` (all tasklets must arrive to pass). */
    void barrier(std::uint32_t id) { trace_.barrier(id); }

  private:
    const DpuConfig &cfg_;
    TaskletTrace &trace_;
};

} // namespace alphapim::upmem

#endif // ALPHA_PIM_UPMEM_TASKLET_CTX_HH
