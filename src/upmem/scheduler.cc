#include "scheduler.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/logging.hh"

namespace alphapim::upmem
{

namespace
{

/** Why a tasklet's next dispatch is delayed. */
enum class WaitKind : std::uint8_t
{
    None,    ///< only the revolver gap holds it back
    Dma,     ///< waiting for a blocking DMA to complete
    Mutex,   ///< spinning on a held mutex
    Barrier, ///< parked at a barrier
};

constexpr Cycles farFuture = std::numeric_limits<Cycles>::max() / 4;

/** Mutable replay state of one tasklet. */
struct TaskletState
{
    std::size_t rec = 0;        ///< current record index
    std::uint32_t remaining = 0; ///< ops left in the current record
    Cycles ready = 0;           ///< earliest next dispatch cycle
    WaitKind wait = WaitKind::None;
    bool finished = false;
    Cycles finishTime = 0;      ///< cycle after its last dispatch
    Cycles blockedCycles = 0;   ///< DMA / barrier inactive time
    std::uint32_t sigState = 0; ///< RF bank signature LCG state
};

/** Cheap per-dispatch register-bank signature. */
std::uint32_t
nextBankSig(TaskletState &ts, unsigned bits)
{
    ts.sigState = ts.sigState * 1103515245u + 12345u;
    return (ts.sigState >> 16) & ((1u << bits) - 1u);
}

} // namespace

DpuProfile
RevolverScheduler::run(const std::vector<TaskletTrace> &traces) const
{
    const auto num = static_cast<unsigned>(traces.size());
    ALPHA_ASSERT(num > 0 && num <= cfg_.maxTasklets,
                 "tasklet count outside the DPU's hardware limit");

    DpuProfile profile;

    std::vector<TaskletState> state(num);
    unsigned live = 0;
    for (unsigned t = 0; t < num; ++t) {
        state[t].sigState = 0x9e3779b9u * (t + 1);
        state[t].remaining = 0;
        if (traces[t].empty()) {
            state[t].finished = true;
        } else {
            ++live;
            const auto &first = traces[t].records()[0];
            state[t].remaining =
                first.kind == RecordKind::Ops ? first.count : 1;
        }
    }
    if (live == 0)
        return profile;


    struct BarrierInstance
    {
        unsigned instance = 0; ///< how many releases have happened
        unsigned arrived = 0;
        std::vector<unsigned> waiters;
    };
    // Flat tables sized by the largest id in the traces keep the
    // dispatch loop free of hash lookups.
    std::uint32_t max_mutex = 0, max_barrier = 0;
    for (unsigned t = 0; t < num; ++t) {
        for (const auto &r : traces[t].records()) {
            if (r.kind == RecordKind::Mutex)
                max_mutex = std::max(max_mutex, r.arg);
            else if (r.kind == RecordKind::Barrier)
                max_barrier = std::max(max_barrier, r.arg);
        }
    }
    std::vector<BarrierInstance> barriers(max_barrier + 1);
    std::vector<int> mutex_holder(max_mutex + 1, -1);

    // How many times each tasklet hits each barrier id, so instance
    // b of a barrier waits for exactly the tasklets that reach it
    // at least b+1 times.
    std::vector<unsigned> barrier_hits(
        static_cast<std::size_t>(num) * (max_barrier + 1), 0);
    for (unsigned t = 0; t < num; ++t) {
        for (const auto &r : traces[t].records()) {
            if (r.kind == RecordKind::Barrier)
                ++barrier_hits[t * (max_barrier + 1) + r.arg];
        }
    }

    /** Number of tasklets that participate in the given barrier
     * instance (arrive at least `instance + 1` times). */
    auto barrier_quorum = [&](std::uint32_t id, unsigned instance) {
        unsigned quorum = 0;
        for (unsigned t = 0; t < num; ++t) {
            if (barrier_hits[t * (max_barrier + 1) + id] > instance)
                ++quorum;
        }
        return quorum;
    };

    auto advance_record = [&](TaskletState &ts, unsigned t) {
        ++ts.rec;
        if (ts.rec >= traces[t].records().size()) {
            ts.finished = true;
            --live;
            return;
        }
        const auto &r = traces[t].records()[ts.rec];
        ts.remaining = r.kind == RecordKind::Ops ? r.count : 1;
    };

    auto count_instr = [&](OpClass cls) {
        ++profile.instrByClass[static_cast<std::size_t>(cls)];
    };

    // lastDispatch = cycle of the most recent dispatch; the first
    // dispatch happens at cycle 0.
    Cycles last_dispatch = 0;
    bool any_dispatch = false;
    std::uint32_t last_bank_sig = ~0u;
    bool last_was_alu = false;
    // The DPU has a single DMA engine: transfers from different
    // tasklets serialize, capping per-DPU MRAM bandwidth at
    // dmaBytesPerCycle.
    Cycles dma_engine_free = 0;
    // Outstanding work (e.g. a trailing DMA) can extend execution
    // past the final dispatch.
    Cycles horizon = 0;

    // ---- Fast path ----
    // When every non-blocked tasklet sits in a long Ops run and no
    // mutex spinner or barrier release can fire, dispatching is a
    // deterministic round-robin; whole rounds are retired in closed
    // form. Timing is exact (including the revolver-idle pattern);
    // only register-bank hazards are applied in expectation.
    auto try_fast_path = [&]() -> bool {
        unsigned runnable[32];
        unsigned k = 0;
        std::uint32_t min_remaining = ~0u;
        Cycles min_ready = farFuture;
        Cycles dma_wake = farFuture;
        unsigned alu_count = 0;
        for (unsigned t = 0; t < num; ++t) {
            const auto &ts = state[t];
            if (ts.finished || ts.wait == WaitKind::Barrier)
                continue;
            if (ts.wait == WaitKind::Mutex)
                return false;
            if (ts.wait == WaitKind::Dma) {
                dma_wake = std::min(dma_wake, ts.ready);
                continue;
            }
            const TraceRecord &r = traces[t].records()[ts.rec];
            if (r.kind != RecordKind::Ops)
                return false;
            runnable[k++] = t;
            min_remaining = std::min(min_remaining, ts.remaining);
            min_ready = std::min(min_ready, ts.ready);
            if (isAluClass(r.cls))
                ++alu_count;
        }
        if (k == 0 || min_remaining < 8)
            return false;

        const Cycles start = any_dispatch
            ? std::max(min_ready, last_dispatch + 1)
            : min_ready;
        if (dma_wake <= start)
            return false; // a DMA-waiter must be serviced first

        // Round length: packed when the pipeline can be full.
        const Cycles round = std::max<Cycles>(k, cfg_.revolverGap);
        std::uint64_t rounds = min_remaining;
        if (dma_wake != farFuture) {
            const std::uint64_t fit = (dma_wake - start) / round;
            rounds = std::min<std::uint64_t>(rounds, fit);
        }
        if (rounds < 8)
            return false;

        // Leading idle gap before the window is revolver-bound.
        if (any_dispatch && start > last_dispatch + 1) {
            profile.stallCycles[static_cast<std::size_t>(
                StallReason::Revolver)] +=
                start - last_dispatch - 1;
        }

        // Expected register-bank hazards in packed mode.
        Cycles hazards = 0;
        if (k >= cfg_.revolverGap && alu_count > 1) {
            const double alu_frac =
                static_cast<double>(alu_count) /
                static_cast<double>(k);
            hazards = static_cast<Cycles>(
                static_cast<double>(rounds * k) * alu_frac *
                alu_frac /
                static_cast<double>(1u << cfg_.rfBankBits));
        }

        const Cycles span = (rounds - 1) * round + k + hazards;
        if (k < cfg_.revolverGap) {
            profile.stallCycles[static_cast<std::size_t>(
                StallReason::Revolver)] +=
                (rounds - 1) * (round - k);
        }
        profile.stallCycles[static_cast<std::size_t>(
            StallReason::RfHazard)] += hazards;
        profile.issuedCycles += rounds * k;

        for (unsigned j = 0; j < k; ++j) {
            TaskletState &ts = state[runnable[j]];
            const TraceRecord &r =
                traces[runnable[j]].records()[ts.rec];
            profile.instrByClass[static_cast<std::size_t>(r.cls)] +=
                rounds;
            ts.remaining -= static_cast<std::uint32_t>(rounds);
            const Cycles own_last =
                start + (rounds - 1) * round + j + hazards;
            ts.finishTime = own_last + 1;
            ts.ready = own_last + cfg_.revolverGap;
            if (ts.remaining == 0)
                advance_record(ts, runnable[j]);
        }
        last_dispatch = start + span - 1;
        any_dispatch = true;
        last_was_alu = false; // window boundary: no carried hazard
        return true;
    };

    for (;;) {
        if (try_fast_path())
            continue;

        // Pick the earliest-ready unfinished, unparked tasklet.
        unsigned chosen = num;
        Cycles best_ready = farFuture;
        for (unsigned t = 0; t < num; ++t) {
            const auto &ts = state[t];
            if (ts.finished || ts.wait == WaitKind::Barrier)
                continue;
            if (ts.ready < best_ready) {
                best_ready = ts.ready;
                chosen = t;
            }
        }
        if (chosen == num) {
            ALPHA_ASSERT(live == 0,
                         "deadlock: live tasklets but none runnable");
            break;
        }

        TaskletState &ts = state[chosen];
        Cycles dispatch_at = ts.ready;
        if (any_dispatch)
            dispatch_at = std::max(dispatch_at, last_dispatch + 1);

        // Attribute the idle gap to the constraint that held the
        // earliest-ready tasklet.
        if (any_dispatch && dispatch_at > last_dispatch + 1) {
            const Cycles gap = dispatch_at - last_dispatch - 1;
            StallReason reason = StallReason::Revolver;
            if (ts.wait == WaitKind::Dma)
                reason = StallReason::Memory;
            else if (ts.wait == WaitKind::Mutex)
                reason = StallReason::Sync;
            profile.stallCycles[static_cast<std::size_t>(reason)] += gap;
        }

        const TraceRecord &r = traces[chosen].records()[ts.rec];

        // Register-file bank hazard: back-to-back ALU dispatches with
        // colliding signatures cost one bubble cycle.
        bool alu = r.kind == RecordKind::Ops && isAluClass(r.cls);
        if (alu) {
            const std::uint32_t sig = nextBankSig(ts, cfg_.rfBankBits);
            if (any_dispatch && last_was_alu &&
                dispatch_at == last_dispatch + 1 &&
                sig == last_bank_sig) {
                profile.stallCycles[static_cast<std::size_t>(
                    StallReason::RfHazard)] += 1;
                dispatch_at += 1;
            }
            last_bank_sig = sig;
        }
        last_was_alu = alu;

        // Dispatch.
        ++profile.issuedCycles;
        last_dispatch = dispatch_at;
        any_dispatch = true;
        ts.finishTime = dispatch_at + 1;
        ts.wait = WaitKind::None;

        switch (r.kind) {
          case RecordKind::Ops: {
            count_instr(r.cls);
            ts.ready = dispatch_at + cfg_.revolverGap;
            if (--ts.remaining == 0)
                advance_record(ts, chosen);
            break;
          }
          case RecordKind::Dma: {
            count_instr(r.cls);
            if (r.cls == OpClass::DmaRead)
                profile.mramReadBytes += r.arg;
            else
                profile.mramWriteBytes += r.arg;
            const auto xfer = static_cast<Cycles>(std::ceil(
                static_cast<double>(r.arg) / cfg_.dmaBytesPerCycle));
            const Cycles start =
                std::max(dispatch_at, dma_engine_free);
            dma_engine_free =
                start + cfg_.dmaEngineOverheadCycles + xfer;
            const Cycles complete = std::max(
                dispatch_at + cfg_.dmaSetupCycles + xfer,
                dma_engine_free);
            horizon = std::max(horizon, complete);
            const Cycles gap_ready = dispatch_at + cfg_.revolverGap;
            if (cfg_.nonBlockingDma) {
                // Future hardware: the tasklet keeps dispatching
                // while the transfer is in flight.
                ts.ready = gap_ready;
            } else {
                ts.ready = std::max(complete, gap_ready);
                if (complete > gap_ready) {
                    ts.wait = WaitKind::Dma;
                    ts.blockedCycles += complete - gap_ready;
                }
            }
            advance_record(ts, chosen);
            break;
          }
          case RecordKind::Mutex: {
            if (r.count == 1) {
                // Lock attempt.
                count_instr(OpClass::MutexLock);
                if (cfg_.hardwareAtomics) {
                    // Future hardware: single-instruction atomic
                    // update, no exclusion window.
                    ts.ready = dispatch_at + cfg_.revolverGap;
                    advance_record(ts, chosen);
                } else if (mutex_holder[r.arg] < 0) {
                    mutex_holder[r.arg] = static_cast<int>(chosen);
                    ts.ready = dispatch_at + cfg_.revolverGap;
                    advance_record(ts, chosen);
                } else {
                    // Spin: retry after the revolver gap; the record
                    // is not consumed.
                    ts.ready = dispatch_at + cfg_.revolverGap;
                    ts.wait = WaitKind::Mutex;
                }
            } else {
                count_instr(OpClass::MutexUnlock);
                if (!cfg_.hardwareAtomics) {
                    ALPHA_ASSERT(mutex_holder[r.arg] ==
                                     static_cast<int>(chosen),
                                 "unlock of a mutex the tasklet "
                                 "does not hold");
                    mutex_holder[r.arg] = -1;
                }
                ts.ready = dispatch_at + cfg_.revolverGap;
                advance_record(ts, chosen);
            }
            break;
          }
          case RecordKind::Barrier: {
            count_instr(OpClass::Barrier);
            auto &b = barriers[r.arg];
            ++b.arrived;
            const unsigned quorum = barrier_quorum(r.arg, b.instance);
            ALPHA_ASSERT(quorum > 0, "barrier with no participants");
            if (b.arrived >= quorum) {
                // Release everyone parked here (and this tasklet).
                for (unsigned w : b.waiters) {
                    TaskletState &ws = state[w];
                    ws.wait = WaitKind::None;
                    ws.blockedCycles +=
                        dispatch_at + 1 - ws.ready;
                    ws.ready = dispatch_at + cfg_.revolverGap;
                    advance_record(ws, w);
                }
                b.waiters.clear();
                b.arrived = 0;
                ++b.instance;
                ts.ready = dispatch_at + cfg_.revolverGap;
                advance_record(ts, chosen);
            } else {
                ts.wait = WaitKind::Barrier;
                ts.ready = dispatch_at + 1; // parked; reset on release
                b.waiters.push_back(chosen);
            }
            break;
          }
        }

        if (live == 0)
            break;
    }

    profile.totalCycles = any_dispatch ? last_dispatch + 1 : 0;
    if (horizon > profile.totalCycles) {
        // Drain outstanding DMAs: the tail is memory-stall time.
        profile.stallCycles[static_cast<std::size_t>(
            StallReason::Memory)] += horizon - profile.totalCycles;
        profile.totalCycles = horizon;
    }

    // Active-thread integral: a tasklet is active from launch until
    // its last dispatch, minus time parked on DMA or barriers.
    for (unsigned t = 0; t < num; ++t) {
        const auto &ts = state[t];
        if (ts.finishTime > ts.blockedCycles) {
            profile.activeThreadCycles += static_cast<double>(
                ts.finishTime - ts.blockedCycles);
        }
    }
    return profile;
}

} // namespace alphapim::upmem
