#include "profile.hh"

namespace alphapim::upmem
{

const char *
stallReasonName(StallReason reason)
{
    switch (reason) {
      case StallReason::Memory:
        return "memory";
      case StallReason::Revolver:
        return "revolver";
      case StallReason::RfHazard:
        return "rf-hazard";
      case StallReason::Sync:
        return "sync";
      default:
        return "unknown";
    }
}

void
DpuProfile::merge(const DpuProfile &other)
{
    totalCycles += other.totalCycles;
    issuedCycles += other.issuedCycles;
    for (std::size_t i = 0; i < stallCycles.size(); ++i)
        stallCycles[i] += other.stallCycles[i];
    for (std::size_t i = 0; i < instrByClass.size(); ++i)
        instrByClass[i] += other.instrByClass[i];
    activeThreadCycles += other.activeThreadCycles;
    mramReadBytes += other.mramReadBytes;
    mramWriteBytes += other.mramWriteBytes;
}

} // namespace alphapim::upmem
