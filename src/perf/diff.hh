/**
 * @file
 * Statistical bench diff: pair two record sets by run identity,
 * exact-compare the deterministic model-time metrics (the simulator
 * is seeded and single-rounded, so any drift is a real change), put
 * bootstrap confidence intervals around the one noisy field (host
 * wall-clock), and attribute each regression to a bottleneck.
 */

#ifndef ALPHA_PIM_PERF_DIFF_HH
#define ALPHA_PIM_PERF_DIFF_HH

#include <cstdint>
#include <string>
#include <vector>

#include "perf/attribution.hh"
#include "perf/record.hh"
#include "telemetry/json.hh"

namespace alphapim::perf
{

/** Outcome for one metric or one paired run. */
enum class Verdict
{
    Equal,     ///< identical within epsilon
    Drifted,   ///< changed, but within the regression threshold
    Improved,  ///< better beyond the threshold
    Regressed, ///< worse beyond the threshold
    OldOnly,   ///< run present only in the old set
    NewOnly,   ///< run present only in the new set
};

/** Stable lowercase name ("equal", "regressed", ...). */
const char *verdictName(Verdict v);

/** Comparison of one metric across the pair. */
struct MetricDelta
{
    std::string metric;
    double oldValue = 0.0;
    double newValue = 0.0;

    /** (new - old) / old; 0 when old == 0. */
    double relChange = 0.0;

    Verdict verdict = Verdict::Equal;

    /** True for wall-clock: compared via bootstrap CI, advisory. */
    bool noisy = false;

    /** Bootstrap CI of the mean difference (noisy metrics only). */
    double ciLow = 0.0;
    double ciHigh = 0.0;
};

/** Diff of one paired run (or an unpaired run on either side). */
struct PairDiff
{
    RunKey key;

    /** Display label; empty means use key.str(). Metrics-file diffs
     * set this to "kind/name". */
    std::string label;

    Verdict verdict = Verdict::Equal;
    std::vector<MetricDelta> metrics;

    /** Filled when verdict == Regressed. */
    Attribution attribution;
};

struct DiffOptions
{
    /** Relative change in total model time that counts as a
     * regression (or improvement). */
    double threshold = 0.02;

    /** Relative epsilon below which deterministic values compare
     * equal (absorbs cross-toolchain last-ulp differences; the
     * JSON round-trip itself is exact). */
    double epsilon = 1e-9;

    /** Bootstrap parameters for the wall-clock CI. */
    double confidence = 0.95;
    std::size_t resamples = 2000;
    std::uint64_t bootstrapSeed = 42;

    /** When true, a wall-clock regression whose CI excludes zero
     * gates the diff; by default wall-clock is advisory (baselines
     * usually come from a different machine). */
    bool wallClockGate = false;

    /** When true, host-observatory regressions (per-phase host
     * seconds, replay/trace throughput, slowdown factor) whose CI
     * excludes zero gate the diff; advisory by default for the same
     * cross-machine reason as wall-clock. */
    bool hostGate = false;
};

/** Full diff of two record sets. */
struct DiffReport
{
    std::vector<PairDiff> pairs;

    /** Mixed-schema / mixed-SHA / append-footgun warnings. */
    std::vector<std::string> warnings;

    std::size_t regressed = 0;
    std::size_t improved = 0;
    std::size_t drifted = 0;
    std::size_t equal = 0;
    std::size_t oldOnly = 0;
    std::size_t newOnly = 0;

    bool hasRegressions() const { return regressed > 0; }
};

/**
 * Percentile-bootstrap CI of mean(news) - mean(olds). Deterministic
 * for fixed inputs (seeded resampling).
 */
void bootstrapMeanDiffCI(const std::vector<double> &olds,
                         const std::vector<double> &news,
                         double confidence, std::size_t resamples,
                         std::uint64_t seed, double &low,
                         double &high);

/** Diff two run-record sets (the `--json-out` format). */
DiffReport diffRecordSets(const RecordSet &olds, const RecordSet &news,
                          const DiffOptions &opt);

/**
 * Diff two metrics JSONL exports (the `--metrics-out` format,
 * records tagged with a "kind" field). Pairs by (kind, name);
 * distributions compare count/mean/p50/p95/p99/p999 so tail-imbalance
 * drift in dpu.cycles_per_launch is caught even when the mean holds.
 */
bool diffMetricsFiles(const std::string &oldPath,
                      const std::string &newPath,
                      const DiffOptions &opt, DiffReport &out,
                      std::string *error);

/** True when the file's first non-empty line is a metrics record
 * (has a "kind" field) rather than a run record. */
bool looksLikeMetricsFile(const std::string &path);

/** Human-readable multi-line report. */
std::string renderReport(const DiffReport &report,
                         const DiffOptions &opt);

/** Machine-readable JSON report (single object). */
std::string reportJson(const DiffReport &report);

} // namespace alphapim::perf

#endif // ALPHA_PIM_PERF_DIFF_HH
