/**
 * @file
 * Dataset fingerprinting for run manifests: a 64-bit FNV-1a hash over
 * a matrix's exact shape and entry list. Two runs are mechanically
 * comparable only if they processed the same input; the fingerprint
 * makes "same input" checkable across machines and revisions without
 * shipping the dataset (the generators are deterministic in
 * (spec, scale, seed), so fingerprints are stable across hosts).
 */

#ifndef ALPHA_PIM_PERF_FINGERPRINT_HH
#define ALPHA_PIM_PERF_FINGERPRINT_HH

#include <cstdint>
#include <cstring>
#include <string>

#include "sparse/coo.hh"

namespace alphapim::perf
{

inline constexpr std::uint64_t fnv1aOffset = 0xcbf29ce484222325ULL;

/** Fold `len` bytes into an FNV-1a state. */
inline std::uint64_t
fnv1a(const void *data, std::size_t len,
      std::uint64_t hash = fnv1aOffset)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

/**
 * Fingerprint of a COO matrix: shape, nnz, and every (row, col,
 * value) entry in storage order. Entry order is part of the identity
 * on purpose -- partitioning is order-sensitive, so a reordered
 * matrix is a different experimental input.
 */
template <typename V>
std::uint64_t
datasetFingerprint(const sparse::CooMatrix<V> &m)
{
    std::uint64_t h = fnv1aOffset;
    const std::uint64_t header[3] = {m.numRows(), m.numCols(),
                                     m.nnz()};
    h = fnv1a(header, sizeof(header), h);
    h = fnv1a(m.rowIndices().data(),
              m.rowIndices().size() * sizeof(NodeId), h);
    h = fnv1a(m.colIndices().data(),
              m.colIndices().size() * sizeof(NodeId), h);
    h = fnv1a(m.values().data(), m.values().size() * sizeof(V), h);
    return h;
}

/** Render a fingerprint in the canonical "0x%016x" record spelling. */
std::string fingerprintString(std::uint64_t fp);

/** Parse the canonical spelling; returns 0 on malformed input. */
std::uint64_t parseFingerprint(const std::string &text);

} // namespace alphapim::perf

#endif // ALPHA_PIM_PERF_FINGERPRINT_HH
