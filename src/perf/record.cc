#include "record.hh"

#include <algorithm>
#include <fstream>
#include <tuple>

#include "analysis/critical_path.hh"
#include "core/result_json.hh"

namespace alphapim::perf
{

bool
RunKey::operator<(const RunKey &o) const
{
    return std::tie(bench, dataset, variant, dpus, seed) <
           std::tie(o.bench, o.dataset, o.variant, o.dpus, o.seed);
}

bool
RunKey::operator==(const RunKey &o) const
{
    return std::tie(bench, dataset, variant, dpus, seed) ==
           std::tie(o.bench, o.dataset, o.variant, o.dpus, o.seed);
}

std::string
RunKey::str() const
{
    return bench + "/" + dataset + "/" + variant + "@" +
           std::to_string(dpus) + "dpus";
}

std::string
encodeRunRecord(const RunManifest &manifest, const RunKey &key,
                std::uint64_t iterations,
                const core::PhaseTimes &times,
                const upmem::LaunchProfile *profile,
                const XferCounts *xfer, double wallSeconds,
                const TimelineSummary *timeline,
                const ImbalanceSummary *imbalance,
                const HostSummary *host, const ServeSummary *serve)
{
    telemetry::JsonWriter w;
    w.beginObject();
    writeManifestFields(w, manifest);
    w.key("bench").value(key.bench);
    w.key("dataset").value(key.dataset);
    w.key("variant").value(key.variant);
    w.key("dpus").value(key.dpus);
    w.key("seed").value(key.seed);
    w.key("iterations").value(iterations);
    if (wallSeconds >= 0.0)
        w.key("wall_seconds").value(wallSeconds);
    w.key("times");
    core::writePhaseTimes(w, times);
    if (profile) {
        w.key("profile");
        core::writeLaunchProfile(w, *profile);
    }
    if (xfer) {
        w.key("xfer").beginObject();
        w.key("scatters").value(xfer->scatters);
        w.key("scatter_bytes").value(xfer->scatterBytes);
        w.key("gathers").value(xfer->gathers);
        w.key("gather_bytes").value(xfer->gatherBytes);
        w.key("broadcasts").value(xfer->broadcasts);
        w.key("broadcast_bytes").value(xfer->broadcastBytes);
        w.endObject();
    }
    if (timeline) {
        w.key("timeline").beginObject();
        w.key("window_seconds").value(timeline->windowSeconds);
        w.key("launches").value(timeline->launches);
        w.key("ranks").value(timeline->ranks);
        w.key("rank_occupancy_mean")
            .value(timeline->rankOccupancyMean);
        w.key("rank_occupancy_min")
            .value(timeline->rankOccupancyMin);
        w.key("dpu_occupancy_mean")
            .value(timeline->dpuOccupancyMean);
        w.key("overlap_fraction").value(timeline->overlapFraction);
        w.key("idle_fraction").value(timeline->idleFraction);
        w.key("transfer_critical_fraction")
            .value(timeline->transferCriticalFraction);
        w.key("whatif_rank_overlap_speedup")
            .value(timeline->whatifRankOverlapSpeedup);
        w.key("whatif_double_buffer_speedup")
            .value(timeline->whatifDoubleBufferSpeedup);
        w.key("whatif_combined_speedup")
            .value(timeline->whatifCombinedSpeedup);
        w.endObject();
    }
    if (imbalance) {
        w.key("imbalance").beginObject();
        w.key("launches").value(imbalance->launches);
        w.key("straggler_factor").value(imbalance->stragglerFactor);
        w.key("cycles_gini").value(imbalance->cyclesGini);
        w.key("cycles_cov").value(imbalance->cyclesCov);
        w.key("cycles_p99_over_mean")
            .value(imbalance->cyclesP99OverMean);
        w.key("nnz_gini").value(imbalance->nnzGini);
        w.key("nnz_max_over_mean").value(imbalance->nnzMaxOverMean);
        w.key("straggler_kernel").value(imbalance->stragglerKernel);
        w.key("straggler_dpu").value(imbalance->stragglerDpu);
        w.key("straggler_cycles_over_mean")
            .value(imbalance->stragglerCyclesOverMean);
        w.key("straggler_stall").value(imbalance->stragglerStall);
        w.key("straggler_stall_fraction")
            .value(imbalance->stragglerStallFraction);
        w.key("straggler_nnz_over_mean")
            .value(imbalance->stragglerNnzOverMean);
        w.key("kernel_seconds").value(imbalance->kernelSeconds);
        w.key("leveled_kernel_seconds")
            .value(imbalance->leveledKernelSeconds);
        w.key("roofline").beginObject();
        w.key("op_intensity").value(imbalance->rooflineOpIntensity);
        w.key("achieved_ops_per_sec")
            .value(imbalance->rooflineAchievedOpsPerSec);
        w.key("pipeline_ceiling_ops_per_sec")
            .value(imbalance->rooflinePipelineCeilingOpsPerSec);
        w.key("ridge_intensity")
            .value(imbalance->rooflineRidgeIntensity);
        w.key("memory_bound_fraction")
            .value(imbalance->rooflineMemoryBoundFraction);
        w.endObject();
        w.endObject();
    }
    if (host) {
        w.key("host").beginObject();
        w.key("total_seconds").value(host->totalSeconds);
        w.key("partition_build_seconds")
            .value(host->partitionBuildSeconds);
        w.key("trace_record_seconds")
            .value(host->traceRecordSeconds);
        w.key("replay_seconds").value(host->replaySeconds);
        w.key("profile_fold_seconds")
            .value(host->profileFoldSeconds);
        w.key("transfer_model_seconds")
            .value(host->transferModelSeconds);
        w.key("host_merge_seconds").value(host->hostMergeSeconds);
        w.key("analysis_seconds").value(host->analysisSeconds);
        w.key("replay_slots_per_sec")
            .value(host->replaySlotsPerSec);
        w.key("trace_records_per_sec")
            .value(host->traceRecordsPerSec);
        w.key("replay_slots").value(host->replaySlots);
        w.key("trace_records").value(host->traceRecords);
        w.key("slowdown_factor").value(host->slowdownFactor);
        w.key("peak_rss_bytes").value(host->peakRssBytes);
        w.key("tasklet_trace_bytes_peak")
            .value(host->taskletTraceBytesPeak);
        w.key("tracer_bytes").value(host->tracerBytes);
        w.key("metrics_bytes").value(host->metricsBytes);
        w.endObject();
    }
    if (serve) {
        w.key("serve").beginObject();
        w.key("submitted").value(serve->submitted);
        w.key("admitted").value(serve->admitted);
        w.key("rejected").value(serve->rejected);
        w.key("completed").value(serve->completed);
        w.key("batches").value(serve->batches);
        w.key("mean_batch_size").value(serve->meanBatchSize);
        w.key("max_batch_size").value(serve->maxBatchSize);
        w.key("max_queue_depth").value(serve->maxQueueDepth);
        w.key("latency_p50").value(serve->latencyP50);
        w.key("latency_p95").value(serve->latencyP95);
        w.key("latency_p99").value(serve->latencyP99);
        w.key("latency_p999").value(serve->latencyP999);
        w.key("latency_mean").value(serve->latencyMean);
        w.key("queries_per_sec").value(serve->queriesPerSec);
        w.key("makespan_seconds").value(serve->makespanSeconds);
        w.endObject();
    }
    w.endObject();
    return w.str();
}

namespace
{

double
numberField(const telemetry::JsonValue &obj, const char *key,
            double fallback = 0.0)
{
    const auto *v = obj.find(key);
    return v && v->isNumber() ? v->asNumber() : fallback;
}

std::uint64_t
uintField(const telemetry::JsonValue &obj, const char *key)
{
    return static_cast<std::uint64_t>(numberField(obj, key));
}

std::string
stringField(const telemetry::JsonValue &obj, const char *key)
{
    const auto *v = obj.find(key);
    return v && v->isString() ? v->asString() : std::string();
}

} // namespace

bool
parseRunRecord(const std::string &line, RunRecord &out,
               std::string *error)
{
    telemetry::JsonValue doc;
    if (!telemetry::JsonValue::parse(line, doc, error))
        return false;
    if (!doc.isObject()) {
        if (error)
            *error = "record is not a JSON object";
        return false;
    }

    out = RunRecord();
    out.manifest = parseManifestFields(doc);

    const auto *bench = doc.find("bench");
    const auto *dataset = doc.find("dataset");
    const auto *variant = doc.find("variant");
    if (!bench || !bench->isString() || !dataset ||
        !dataset->isString() || !variant || !variant->isString()) {
        if (error)
            *error = "record lacks bench/dataset/variant identity";
        return false;
    }
    out.key.bench = bench->asString();
    out.key.dataset = dataset->asString();
    out.key.variant = variant->asString();
    out.key.dpus = uintField(doc, "dpus");
    out.key.seed = uintField(doc, "seed");
    out.iterations = uintField(doc, "iterations");
    out.wallSeconds = numberField(doc, "wall_seconds", -1.0);

    if (const auto *times = doc.find("times");
        times && times->isObject()) {
        out.times.load = numberField(*times, "load");
        out.times.kernel = numberField(*times, "kernel");
        out.times.retrieve = numberField(*times, "retrieve");
        out.times.merge = numberField(*times, "merge");
    }

    if (const auto *p = doc.find("profile"); p && p->isObject()) {
        out.hasProfile = true;
        out.totalCycles = uintField(*p, "total_cycles");
        out.issuedCycles = uintField(*p, "issued_cycles");
        out.maxCycles = uintField(*p, "max_cycles");
        out.activeDpus = uintField(*p, "active_dpus");
        out.issuedFraction = numberField(*p, "issued_fraction");
        out.avgActiveThreads =
            numberField(*p, "avg_active_threads");
        if (const auto *sf = p->find("stall_fractions");
            sf && sf->isObject()) {
            for (const auto &[name, v] : sf->members())
                out.stallFractions[name] = v.asNumber();
        }
        if (const auto *mix = p->find("instr_by_category");
            mix && mix->isObject()) {
            for (const auto &[name, v] : mix->members())
                out.instrByCategory[name] =
                    static_cast<std::uint64_t>(v.asNumber());
        }
    }

    if (const auto *t = doc.find("timeline"); t && t->isObject()) {
        out.hasTimeline = true;
        out.timeline.windowSeconds =
            numberField(*t, "window_seconds");
        out.timeline.launches = uintField(*t, "launches");
        out.timeline.ranks = uintField(*t, "ranks");
        out.timeline.rankOccupancyMean =
            numberField(*t, "rank_occupancy_mean");
        out.timeline.rankOccupancyMin =
            numberField(*t, "rank_occupancy_min");
        out.timeline.dpuOccupancyMean =
            numberField(*t, "dpu_occupancy_mean");
        out.timeline.overlapFraction =
            numberField(*t, "overlap_fraction");
        out.timeline.idleFraction =
            numberField(*t, "idle_fraction");
        out.timeline.transferCriticalFraction =
            numberField(*t, "transfer_critical_fraction");
        out.timeline.whatifRankOverlapSpeedup =
            numberField(*t, "whatif_rank_overlap_speedup", 1.0);
        out.timeline.whatifDoubleBufferSpeedup =
            numberField(*t, "whatif_double_buffer_speedup", 1.0);
        out.timeline.whatifCombinedSpeedup =
            numberField(*t, "whatif_combined_speedup", 1.0);
    }

    if (const auto *i = doc.find("imbalance"); i && i->isObject()) {
        out.hasImbalance = true;
        auto &s = out.imbalance;
        s.launches = uintField(*i, "launches");
        s.stragglerFactor = numberField(*i, "straggler_factor", 1.0);
        s.cyclesGini = numberField(*i, "cycles_gini");
        s.cyclesCov = numberField(*i, "cycles_cov");
        s.cyclesP99OverMean =
            numberField(*i, "cycles_p99_over_mean", 1.0);
        s.nnzGini = numberField(*i, "nnz_gini");
        s.nnzMaxOverMean = numberField(*i, "nnz_max_over_mean", 1.0);
        s.stragglerKernel = stringField(*i, "straggler_kernel");
        s.stragglerDpu = uintField(*i, "straggler_dpu");
        s.stragglerCyclesOverMean =
            numberField(*i, "straggler_cycles_over_mean", 1.0);
        s.stragglerStall = stringField(*i, "straggler_stall");
        s.stragglerStallFraction =
            numberField(*i, "straggler_stall_fraction");
        s.stragglerNnzOverMean =
            numberField(*i, "straggler_nnz_over_mean");
        s.kernelSeconds = numberField(*i, "kernel_seconds");
        s.leveledKernelSeconds =
            numberField(*i, "leveled_kernel_seconds");
        if (const auto *r = i->find("roofline");
            r && r->isObject()) {
            s.rooflineOpIntensity = numberField(*r, "op_intensity");
            s.rooflineAchievedOpsPerSec =
                numberField(*r, "achieved_ops_per_sec");
            s.rooflinePipelineCeilingOpsPerSec =
                numberField(*r, "pipeline_ceiling_ops_per_sec");
            s.rooflineRidgeIntensity =
                numberField(*r, "ridge_intensity");
            s.rooflineMemoryBoundFraction =
                numberField(*r, "memory_bound_fraction");
        }
    }

    if (const auto *h = doc.find("host"); h && h->isObject()) {
        out.hasHost = true;
        auto &s = out.host;
        s.totalSeconds = numberField(*h, "total_seconds");
        s.partitionBuildSeconds =
            numberField(*h, "partition_build_seconds");
        s.traceRecordSeconds =
            numberField(*h, "trace_record_seconds");
        s.replaySeconds = numberField(*h, "replay_seconds");
        s.profileFoldSeconds =
            numberField(*h, "profile_fold_seconds");
        s.transferModelSeconds =
            numberField(*h, "transfer_model_seconds");
        s.hostMergeSeconds = numberField(*h, "host_merge_seconds");
        s.analysisSeconds = numberField(*h, "analysis_seconds");
        s.replaySlotsPerSec =
            numberField(*h, "replay_slots_per_sec");
        s.traceRecordsPerSec =
            numberField(*h, "trace_records_per_sec");
        s.replaySlots = uintField(*h, "replay_slots");
        s.traceRecords = uintField(*h, "trace_records");
        s.slowdownFactor = numberField(*h, "slowdown_factor");
        s.peakRssBytes = uintField(*h, "peak_rss_bytes");
        s.taskletTraceBytesPeak =
            uintField(*h, "tasklet_trace_bytes_peak");
        s.tracerBytes = uintField(*h, "tracer_bytes");
        s.metricsBytes = uintField(*h, "metrics_bytes");
    }

    if (const auto *sv = doc.find("serve"); sv && sv->isObject()) {
        out.hasServe = true;
        auto &s = out.serve;
        s.submitted = uintField(*sv, "submitted");
        s.admitted = uintField(*sv, "admitted");
        s.rejected = uintField(*sv, "rejected");
        s.completed = uintField(*sv, "completed");
        s.batches = uintField(*sv, "batches");
        s.meanBatchSize = numberField(*sv, "mean_batch_size");
        s.maxBatchSize = uintField(*sv, "max_batch_size");
        s.maxQueueDepth = uintField(*sv, "max_queue_depth");
        s.latencyP50 = numberField(*sv, "latency_p50");
        s.latencyP95 = numberField(*sv, "latency_p95");
        s.latencyP99 = numberField(*sv, "latency_p99");
        s.latencyP999 = numberField(*sv, "latency_p999");
        s.latencyMean = numberField(*sv, "latency_mean");
        s.queriesPerSec = numberField(*sv, "queries_per_sec");
        s.makespanSeconds = numberField(*sv, "makespan_seconds");
    }

    if (const auto *x = doc.find("xfer"); x && x->isObject()) {
        out.hasXfer = true;
        out.xfer.scatters = uintField(*x, "scatters");
        out.xfer.scatterBytes = uintField(*x, "scatter_bytes");
        out.xfer.gathers = uintField(*x, "gathers");
        out.xfer.gatherBytes = uintField(*x, "gather_bytes");
        out.xfer.broadcasts = uintField(*x, "broadcasts");
        out.xfer.broadcastBytes = uintField(*x, "broadcast_bytes");
    }
    return true;
}

TimelineSummary
summarizeTimeline(const telemetry::Timeline &timeline,
                  const telemetry::TimelineStats &stats)
{
    TimelineSummary s;
    s.windowSeconds = stats.windowSeconds;
    s.launches = static_cast<std::uint64_t>(stats.launches);
    s.ranks = static_cast<std::uint64_t>(stats.ranks);
    s.rankOccupancyMean = stats.rankOccupancyMean;
    s.rankOccupancyMin = stats.rankOccupancyMin;
    s.dpuOccupancyMean = stats.dpuOccupancyMean;
    s.overlapFraction = stats.overlapFraction;
    s.idleFraction = stats.idleFraction;

    const analysis::LaunchDag dag =
        analysis::buildLaunchDag(timeline);
    const analysis::CriticalPath path =
        analysis::computeCriticalPath(dag);
    s.transferCriticalFraction = path.transferFraction();

    const analysis::WhatIf whatif =
        analysis::estimateOverlap(analysis::launchPhases(timeline));
    s.whatifRankOverlapSpeedup = whatif.rankOverlapSpeedup();
    s.whatifDoubleBufferSpeedup = whatif.doubleBufferSpeedup();
    s.whatifCombinedSpeedup = whatif.combinedSpeedup();
    return s;
}

ImbalanceSummary
summarizeImbalance(const analysis::RunImbalance &run)
{
    ImbalanceSummary s;
    s.launches = static_cast<std::uint64_t>(run.launches);
    s.stragglerFactor = run.stragglerFactor;
    s.cyclesGini = run.cyclesGini;
    s.cyclesCov = run.cyclesCov;
    s.cyclesP99OverMean = run.cyclesP99OverMean;
    s.nnzGini = run.nnzGini;
    s.nnzMaxOverMean = run.nnzMaxOverMean;
    s.stragglerKernel = run.stragglerKernel;
    s.stragglerDpu = run.stragglerDpu;
    s.stragglerCyclesOverMean = run.stragglerCyclesOverMean;
    s.stragglerStall = run.stragglerStall;
    s.stragglerStallFraction = run.stragglerStallFraction;
    s.stragglerNnzOverMean = run.stragglerNnzOverMean;
    s.kernelSeconds = run.kernelSeconds;
    s.leveledKernelSeconds = run.leveledKernelSeconds;
    s.rooflineOpIntensity = run.roofline.opIntensity;
    s.rooflineAchievedOpsPerSec = run.roofline.achievedOpsPerSec;
    s.rooflinePipelineCeilingOpsPerSec =
        run.roofline.pipelineCeilingOpsPerSec;
    s.rooflineRidgeIntensity = run.roofline.ridgeIntensity;
    s.rooflineMemoryBoundFraction = run.roofline.memoryBoundFraction;
    return s;
}

HostSummary
summarizeHost(const telemetry::HostProfile &profile)
{
    using telemetry::HostPhase;
    const auto phase = [&](HostPhase p) {
        return profile.phaseSeconds[static_cast<unsigned>(p)];
    };
    HostSummary s;
    s.totalSeconds = profile.totalSeconds;
    s.partitionBuildSeconds = phase(HostPhase::PartitionBuild);
    s.traceRecordSeconds = phase(HostPhase::TraceRecord);
    s.replaySeconds = phase(HostPhase::Replay);
    s.profileFoldSeconds = phase(HostPhase::ProfileFold);
    s.transferModelSeconds = phase(HostPhase::TransferModel);
    s.hostMergeSeconds = phase(HostPhase::HostMerge);
    s.analysisSeconds = phase(HostPhase::Analysis);
    s.replaySlotsPerSec = profile.replaySlotsPerSec;
    s.traceRecordsPerSec = profile.traceRecordsPerSec;
    s.replaySlots = profile.replaySlots;
    s.traceRecords = profile.traceRecords;
    s.slowdownFactor = profile.slowdownFactor;
    s.peakRssBytes = profile.peakRssBytes;
    s.taskletTraceBytesPeak = profile.taskletTraceBytesPeak;
    s.tracerBytes = profile.tracerBytes;
    s.metricsBytes = profile.metricsBytes;
    return s;
}

bool
loadRecordSet(const std::string &path, RecordSet &out,
              std::string *error)
{
    std::ifstream in(path);
    if (!in) {
        if (error)
            *error = "cannot open '" + path + "'";
        return false;
    }
    out = RecordSet();
    out.path = path;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        RunRecord rec;
        std::string parse_error;
        if (!parseRunRecord(line, rec, &parse_error)) {
            if (error)
                *error = path + ":" + std::to_string(lineno) + ": " +
                         parse_error;
            return false;
        }
        out.records.push_back(std::move(rec));
    }
    auto unique_of = [&](auto get) {
        std::vector<std::string> seen;
        for (const auto &r : out.records) {
            const std::string v = get(r);
            if (std::find(seen.begin(), seen.end(), v) == seen.end())
                seen.push_back(v);
        }
        return seen;
    };
    out.schemas = unique_of(
        [](const RunRecord &r) { return r.manifest.schema; });
    out.gitShas = unique_of(
        [](const RunRecord &r) { return r.manifest.gitSha; });
    return true;
}

} // namespace alphapim::perf
