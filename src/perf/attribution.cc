#include "attribution.hh"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace alphapim::perf
{

const char *
bottleneckName(Bottleneck kind)
{
    switch (kind) {
      case Bottleneck::TransferBound:
        return "transfer-bound";
      case Bottleneck::ImbalanceBound:
        return "imbalance-bound";
      case Bottleneck::MemoryBound:
        return "memory-bound";
      case Bottleneck::PipelineBound:
        return "pipeline-bound";
      case Bottleneck::ComputeBound:
        return "compute-bound";
      case Bottleneck::HostBound:
        return "host-bound";
      default:
        return "unknown";
    }
}

namespace
{

std::string
fmt(const char *format, ...)
{
    char buf[256];
    va_list args;
    va_start(args, format);
    std::vsnprintf(buf, sizeof(buf), format, args);
    va_end(args);
    return buf;
}

/** "+31.0%" relative change; "new" when the old value was zero. */
std::string
pctChange(double oldv, double newv)
{
    if (oldv == 0.0)
        return newv == 0.0 ? "+0.0%" : "new";
    return fmt("%+.1f%%", (newv - oldv) / oldv * 100.0);
}

/** "2.10x" ratio; "new" when the old value was zero. */
std::string
ratio(double oldv, double newv)
{
    if (oldv == 0.0)
        return newv == 0.0 ? "1.00x" : "new";
    return fmt("%.2fx", newv / oldv);
}

struct PhaseDelta
{
    const char *metric; ///< metrics-registry spelling of the phase
    double oldv = 0.0;
    double newv = 0.0;
    double delta = 0.0;
};

} // namespace

Attribution
attributeRegression(const RunRecord &older, const RunRecord &newer)
{
    Attribution out;
    const double old_total = older.times.total();
    const double new_total = newer.times.total();
    const double d_total = new_total - old_total;
    if (d_total <= 0.0)
        return out;

    PhaseDelta phases[] = {
        {"phase.load_seconds", older.times.load, newer.times.load},
        {"phase.kernel_seconds", older.times.kernel,
         newer.times.kernel},
        {"phase.retrieve_seconds", older.times.retrieve,
         newer.times.retrieve},
        {"phase.merge_seconds", older.times.merge,
         newer.times.merge},
    };
    for (auto &p : phases)
        p.delta = p.newv - p.oldv;

    const double transfer_delta = phases[0].delta + phases[2].delta;
    const double kernel_delta = phases[1].delta;
    const double host_delta = phases[3].delta;

    // ---- classify ----
    if (transfer_delta >= kernel_delta &&
        transfer_delta >= host_delta && transfer_delta > 0.0) {
        out.kind = Bottleneck::TransferBound;
    } else if (host_delta >= kernel_delta && host_delta > 0.0) {
        out.kind = Bottleneck::HostBound;
    } else if (kernel_delta > 0.0) {
        // Subdivide the kernel regression by what grew most in the
        // cycle accounting: per-DPU skew, real work, MRAM stalls, or
        // pipeline (revolver + register-file + sync) stalls.
        out.kind = Bottleneck::ComputeBound;
        // Skew first, the most specific class: the straggler factor
        // grew and the perfectly-leveled bound did not -- the fleet
        // got slower because one DPU did, not because the work did.
        if (older.hasImbalance && newer.hasImbalance &&
            newer.imbalance.stragglerFactor >
                older.imbalance.stragglerFactor * 1.05) {
            const double d_leveled =
                newer.imbalance.leveledKernelSeconds -
                older.imbalance.leveledKernelSeconds;
            if (d_leveled < 0.5 * kernel_delta)
                out.kind = Bottleneck::ImbalanceBound;
        }
        if (out.kind == Bottleneck::ComputeBound &&
            older.hasProfile && newer.hasProfile) {
            auto stall_cycles = [](const RunRecord &r,
                                   const char *reason) {
                const auto it = r.stallFractions.find(reason);
                return it == r.stallFractions.end()
                    ? 0.0
                    : it->second *
                          static_cast<double>(r.totalCycles);
            };
            const double d_issued =
                static_cast<double>(newer.issuedCycles) -
                static_cast<double>(older.issuedCycles);
            const double d_memory =
                stall_cycles(newer, "memory") -
                stall_cycles(older, "memory");
            double d_pipeline = 0.0;
            // Record keys use stallReasonName() spellings
            // ("rf-hazard"), not the metric-name spellings.
            for (const char *reason :
                 {"revolver", "rf-hazard", "sync"}) {
                d_pipeline += stall_cycles(newer, reason) -
                              stall_cycles(older, reason);
            }
            if (d_memory >= d_issued && d_memory >= d_pipeline &&
                d_memory > 0.0)
                out.kind = Bottleneck::MemoryBound;
            else if (d_pipeline >= d_issued && d_pipeline > 0.0)
                out.kind = Bottleneck::PipelineBound;
        }
    } else {
        out.kind = Bottleneck::Unknown;
    }

    // ---- ranked evidence: phases by contribution ----
    std::sort(std::begin(phases), std::end(phases),
              [](const PhaseDelta &a, const PhaseDelta &b) {
                  return a.delta > b.delta;
              });
    for (const auto &p : phases) {
        if (p.delta <= 0.0)
            continue;
        out.evidence.push_back(fmt(
            "%s %s (%.3gs -> %.3gs), %.0f%% of the regression",
            p.metric, pctChange(p.oldv, p.newv).c_str(), p.oldv,
            p.newv, p.delta / d_total * 100.0));
    }

    // ---- supporting evidence: iterations, transfers, stalls ----
    if (newer.iterations != older.iterations) {
        out.evidence.push_back(
            fmt("iterations %llu -> %llu",
                static_cast<unsigned long long>(older.iterations),
                static_cast<unsigned long long>(newer.iterations)));
    }
    std::string transfer_detail;
    if (older.hasXfer && newer.hasXfer) {
        const struct
        {
            const char *name;
            const char *label;
            std::uint64_t oldv, newv;
        } volumes[] = {
            {"xfer.broadcast_bytes", "broadcast bytes",
             older.xfer.broadcastBytes, newer.xfer.broadcastBytes},
            {"xfer.scatter_bytes", "scatter bytes",
             older.xfer.scatterBytes, newer.xfer.scatterBytes},
            {"xfer.gather_bytes", "gather bytes",
             older.xfer.gatherBytes, newer.xfer.gatherBytes},
        };
        double best_ratio = 1.0;
        for (const auto &v : volumes) {
            if (v.newv == v.oldv)
                continue;
            const auto oldd = static_cast<double>(v.oldv);
            const auto newd = static_cast<double>(v.newv);
            out.evidence.push_back(
                fmt("%s %s (%.3g -> %.3g)", v.name,
                    ratio(oldd, newd).c_str(), oldd, newd));
            const double r = oldd == 0.0 ? (newd > 0.0 ? 1e9 : 1.0)
                                         : newd / oldd;
            if (r > best_ratio) {
                best_ratio = r;
                transfer_detail = std::string(v.label) + " " +
                                  ratio(oldd, newd);
            }
        }
    }
    if (older.hasTimeline && newer.hasTimeline) {
        // Timeline context: how serialized the execution is and how
        // much of the critical path the transfers own.
        out.evidence.push_back(fmt(
            "overlap fraction %.2f -> %.2f; serialized transfers "
            "%.0f%% of the critical path",
            older.timeline.overlapFraction,
            newer.timeline.overlapFraction,
            newer.timeline.transferCriticalFraction * 100.0));
    }
    std::string imbalance_detail;
    if (older.hasImbalance && newer.hasImbalance) {
        const auto &oi = older.imbalance;
        const auto &ni = newer.imbalance;
        if (ni.stragglerFactor != oi.stragglerFactor) {
            imbalance_detail =
                fmt("straggler factor %.2fx -> %.2fx",
                    oi.stragglerFactor, ni.stragglerFactor);
            std::string straggler = fmt(
                "DPU %llu: %.1fx mean cycles",
                static_cast<unsigned long long>(ni.stragglerDpu),
                ni.stragglerCyclesOverMean);
            if (!ni.stragglerStall.empty()) {
                straggler +=
                    fmt(", %.0f%% %s-stall",
                        ni.stragglerStallFraction * 100.0,
                        ni.stragglerStall.c_str());
            }
            if (ni.stragglerNnzOverMean > 0.0) {
                straggler += fmt(", holds %.1fx mean nnz",
                                 ni.stragglerNnzOverMean);
            }
            if (!ni.stragglerKernel.empty())
                straggler += " (" + ni.stragglerKernel + ")";
            out.evidence.push_back(straggler);
            out.evidence.push_back(fmt(
                "rebalance bound: leveled kernel time %.3gs vs "
                "%.3gs actual (cycles gini %.2f -> %.2f)",
                ni.leveledKernelSeconds, ni.kernelSeconds,
                oi.cyclesGini, ni.cyclesGini));
        }
    }
    // Host-observatory context: which simulator host phase dominates
    // the new run's wall time, and how the replay throughput moved.
    // This names the *host* phase ("replay 68% of wall") rather than
    // the model phase -- phase.merge_seconds says the model charged
    // merge time; the host block says where the simulator itself
    // actually spent its wall clock.
    std::string host_detail;
    if (older.hasHost && newer.hasHost &&
        newer.host.totalSeconds > 0.0) {
        const struct
        {
            const char *label;
            double oldv, newv;
        } host_phases[] = {
            {"partition-build", older.host.partitionBuildSeconds,
             newer.host.partitionBuildSeconds},
            {"trace-record", older.host.traceRecordSeconds,
             newer.host.traceRecordSeconds},
            {"replay", older.host.replaySeconds,
             newer.host.replaySeconds},
            {"profile-fold", older.host.profileFoldSeconds,
             newer.host.profileFoldSeconds},
            {"transfer-model", older.host.transferModelSeconds,
             newer.host.transferModelSeconds},
            {"host-merge", older.host.hostMergeSeconds,
             newer.host.hostMergeSeconds},
            {"analysis", older.host.analysisSeconds,
             newer.host.analysisSeconds},
        };
        const auto *dominant = &host_phases[0];
        for (const auto &hp : host_phases)
            if (hp.newv > dominant->newv)
                dominant = &hp;
        host_detail = fmt(
            "%s %.0f%% of wall", dominant->label,
            dominant->newv / newer.host.totalSeconds * 100.0);
        if (older.host.replaySlotsPerSec > 0.0 &&
            newer.host.replaySlotsPerSec > 0.0) {
            host_detail +=
                fmt(", throughput %.2fx",
                    newer.host.replaySlotsPerSec /
                        older.host.replaySlotsPerSec);
        }
        if (newer.host.totalSeconds > older.host.totalSeconds) {
            out.evidence.push_back(fmt(
                "host.total_seconds %s (%.3gs -> %.3gs), dominant "
                "host phase %s (%.3gs -> %.3gs)",
                pctChange(older.host.totalSeconds,
                          newer.host.totalSeconds)
                    .c_str(),
                older.host.totalSeconds, newer.host.totalSeconds,
                dominant->label, dominant->oldv, dominant->newv));
        }
        if (older.host.slowdownFactor > 0.0 &&
            newer.host.slowdownFactor > 0.0 &&
            newer.host.slowdownFactor !=
                older.host.slowdownFactor) {
            out.evidence.push_back(
                fmt("host.slowdown_factor %s (%.3g -> %.3g)",
                    pctChange(older.host.slowdownFactor,
                              newer.host.slowdownFactor)
                        .c_str(),
                    older.host.slowdownFactor,
                    newer.host.slowdownFactor));
        }
    }
    std::string stall_detail;
    if (older.hasProfile && newer.hasProfile) {
        for (const auto &[reason, new_frac] :
             newer.stallFractions) {
            const auto it = older.stallFractions.find(reason);
            const double old_frac =
                it == older.stallFractions.end() ? 0.0 : it->second;
            const double old_cycles =
                old_frac * static_cast<double>(older.totalCycles);
            const double new_cycles =
                new_frac * static_cast<double>(newer.totalCycles);
            if (new_cycles <= old_cycles)
                continue;
            std::string metric_reason = reason;
            std::replace(metric_reason.begin(),
                         metric_reason.end(), '-', '_');
            out.evidence.push_back(
                fmt("dpu.stall.%s_cycles %s (%.3g -> %.3g)",
                    metric_reason.c_str(),
                    pctChange(old_cycles, new_cycles).c_str(),
                    old_cycles, new_cycles));
            if ((out.kind == Bottleneck::MemoryBound &&
                 reason == "memory") ||
                (out.kind == Bottleneck::PipelineBound &&
                 reason != "memory")) {
                if (stall_detail.empty()) {
                    stall_detail =
                        reason + " stalls " +
                        pctChange(old_cycles, new_cycles);
                }
            }
        }
    }

    // ---- headline ----
    std::string driver = "no phase grew";
    for (const auto &p : phases) {
        if (p.delta > 0.0) {
            driver = fmt("%s (%s)", p.metric,
                         pctChange(p.oldv, p.newv).c_str());
            break;
        }
    }
    std::string detail;
    switch (out.kind) {
      case Bottleneck::TransferBound:
        detail = transfer_detail;
        break;
      case Bottleneck::ImbalanceBound:
        detail = imbalance_detail;
        break;
      case Bottleneck::MemoryBound:
      case Bottleneck::PipelineBound:
        detail = stall_detail;
        break;
      case Bottleneck::ComputeBound:
        if (older.issuedCycles > 0) {
            detail = "issued cycles " +
                     pctChange(
                         static_cast<double>(older.issuedCycles),
                         static_cast<double>(newer.issuedCycles));
        }
        break;
      case Bottleneck::HostBound:
        detail = host_detail;
        break;
      default:
        break;
    }
    out.headline =
        fmt("%s total, driven by %s, %s",
            pctChange(old_total, new_total).c_str(), driver.c_str(),
            bottleneckName(out.kind));
    if (!detail.empty())
        out.headline += " (" + detail + ")";
    return out;
}

} // namespace alphapim::perf
