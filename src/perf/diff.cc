#include "diff.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>

#include "common/random.hh"
#include "common/stats.hh"

namespace alphapim::perf
{

const char *
verdictName(Verdict v)
{
    switch (v) {
      case Verdict::Equal:
        return "equal";
      case Verdict::Drifted:
        return "drifted";
      case Verdict::Improved:
        return "improved";
      case Verdict::Regressed:
        return "regressed";
      case Verdict::OldOnly:
        return "old-only";
      case Verdict::NewOnly:
        return "new-only";
    }
    return "unknown";
}

void
bootstrapMeanDiffCI(const std::vector<double> &olds,
                    const std::vector<double> &news,
                    double confidence, std::size_t resamples,
                    std::uint64_t seed, double &low, double &high)
{
    low = high = 0.0;
    if (olds.empty() || news.empty() || resamples == 0)
        return;
    Rng rng(seed);
    auto resampled_mean = [&rng](const std::vector<double> &xs) {
        double sum = 0.0;
        for (std::size_t i = 0; i < xs.size(); ++i)
            sum += xs[rng.nextBounded(xs.size())];
        return sum / static_cast<double>(xs.size());
    };
    std::vector<double> diffs;
    diffs.reserve(resamples);
    for (std::size_t i = 0; i < resamples; ++i)
        diffs.push_back(resampled_mean(news) - resampled_mean(olds));
    const double tail = (1.0 - confidence) / 2.0 * 100.0;
    low = percentile(diffs, tail);
    high = percentile(diffs, 100.0 - tail);
}

namespace
{

double
mean(const std::vector<double> &xs)
{
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return xs.empty() ? 0.0 : sum / static_cast<double>(xs.size());
}

/** Compare one deterministic (exactly reproducible) metric.
 * `higherIsBetter` inverts the regression direction for throughput
 * metrics (fewer queries per second is the regression). */
MetricDelta
deterministicDelta(const std::string &metric, double oldv,
                   double newv, const DiffOptions &opt,
                   bool higherIsBetter = false)
{
    MetricDelta d;
    d.metric = metric;
    d.oldValue = oldv;
    d.newValue = newv;
    d.relChange = oldv == 0.0 ? (newv == 0.0 ? 0.0 : 1.0)
                              : (newv - oldv) / oldv;
    const double scale =
        std::max({std::fabs(oldv), std::fabs(newv), 1.0});
    const double worse = higherIsBetter ? -d.relChange : d.relChange;
    if (std::fabs(newv - oldv) <= opt.epsilon * scale)
        d.verdict = Verdict::Equal;
    else if (worse > opt.threshold)
        d.verdict = Verdict::Regressed;
    else if (worse < -opt.threshold)
        d.verdict = Verdict::Improved;
    else
        d.verdict = Verdict::Drifted;
    return d;
}

void
compareDeterministic(const RunRecord &o, const RunRecord &n,
                     const DiffOptions &opt, PairDiff &pair)
{
    auto add = [&](const std::string &metric, double oldv,
                   double newv) {
        pair.metrics.push_back(
            deterministicDelta(metric, oldv, newv, opt));
    };
    add("iterations", static_cast<double>(o.iterations),
        static_cast<double>(n.iterations));
    add("times.load", o.times.load, n.times.load);
    add("times.kernel", o.times.kernel, n.times.kernel);
    add("times.retrieve", o.times.retrieve, n.times.retrieve);
    add("times.merge", o.times.merge, n.times.merge);
    add("times.total", o.times.total(), n.times.total());
    if (o.hasProfile && n.hasProfile) {
        add("profile.total_cycles",
            static_cast<double>(o.totalCycles),
            static_cast<double>(n.totalCycles));
        add("profile.issued_cycles",
            static_cast<double>(o.issuedCycles),
            static_cast<double>(n.issuedCycles));
        add("profile.max_cycles", static_cast<double>(o.maxCycles),
            static_cast<double>(n.maxCycles));
    }
    if (o.hasXfer && n.hasXfer) {
        add("xfer.scatter_bytes",
            static_cast<double>(o.xfer.scatterBytes),
            static_cast<double>(n.xfer.scatterBytes));
        add("xfer.gather_bytes",
            static_cast<double>(o.xfer.gatherBytes),
            static_cast<double>(n.xfer.gatherBytes));
        add("xfer.broadcast_bytes",
            static_cast<double>(o.xfer.broadcastBytes),
            static_cast<double>(n.xfer.broadcastBytes));
    }
    if (o.hasTimeline && n.hasTimeline) {
        add("timeline.overlap_fraction",
            o.timeline.overlapFraction, n.timeline.overlapFraction);
        add("timeline.rank_occupancy_mean",
            o.timeline.rankOccupancyMean,
            n.timeline.rankOccupancyMean);
        add("timeline.idle_fraction", o.timeline.idleFraction,
            n.timeline.idleFraction);
        add("timeline.transfer_critical_fraction",
            o.timeline.transferCriticalFraction,
            n.timeline.transferCriticalFraction);
    }
    if (o.hasImbalance && n.hasImbalance) {
        add("imbalance.straggler_factor",
            o.imbalance.stragglerFactor, n.imbalance.stragglerFactor);
        add("imbalance.cycles_gini", o.imbalance.cyclesGini,
            n.imbalance.cyclesGini);
        add("imbalance.nnz_max_over_mean",
            o.imbalance.nnzMaxOverMean, n.imbalance.nnzMaxOverMean);
        add("roofline.op_intensity",
            o.imbalance.rooflineOpIntensity,
            n.imbalance.rooflineOpIntensity);
    }
    if (o.hasServe && n.hasServe) {
        add("serve.submitted",
            static_cast<double>(o.serve.submitted),
            static_cast<double>(n.serve.submitted));
        add("serve.admitted", static_cast<double>(o.serve.admitted),
            static_cast<double>(n.serve.admitted));
        add("serve.rejected", static_cast<double>(o.serve.rejected),
            static_cast<double>(n.serve.rejected));
        add("serve.completed",
            static_cast<double>(o.serve.completed),
            static_cast<double>(n.serve.completed));
        add("serve.batches", static_cast<double>(o.serve.batches),
            static_cast<double>(n.serve.batches));
        add("serve.mean_batch_size", o.serve.meanBatchSize,
            n.serve.meanBatchSize);
        add("serve.latency_p50", o.serve.latencyP50,
            n.serve.latencyP50);
        add("serve.latency_p95", o.serve.latencyP95,
            n.serve.latencyP95);
        add("serve.latency_p99", o.serve.latencyP99,
            n.serve.latencyP99);
        add("serve.latency_p999", o.serve.latencyP999,
            n.serve.latencyP999);
        add("serve.latency_mean", o.serve.latencyMean,
            n.serve.latencyMean);
        add("serve.makespan_seconds", o.serve.makespanSeconds,
            n.serve.makespanSeconds);
        // Throughput regresses downward.
        pair.metrics.push_back(deterministicDelta(
            "serve.queries_per_sec", o.serve.queriesPerSec,
            n.serve.queriesPerSec, opt, /*higherIsBetter=*/true));
    }
}

void
compareWallClock(const std::vector<const RunRecord *> &olds,
                 const std::vector<const RunRecord *> &news,
                 const DiffOptions &opt, PairDiff &pair)
{
    std::vector<double> old_wall;
    std::vector<double> new_wall;
    for (const RunRecord *r : olds)
        if (r->wallSeconds >= 0.0)
            old_wall.push_back(r->wallSeconds);
    for (const RunRecord *r : news)
        if (r->wallSeconds >= 0.0)
            new_wall.push_back(r->wallSeconds);
    if (old_wall.empty() || new_wall.empty())
        return;
    MetricDelta d;
    d.metric = "wall_seconds";
    d.noisy = true;
    d.oldValue = mean(old_wall);
    d.newValue = mean(new_wall);
    d.relChange = d.oldValue == 0.0
        ? 0.0
        : (d.newValue - d.oldValue) / d.oldValue;
    bootstrapMeanDiffCI(old_wall, new_wall, opt.confidence,
                        opt.resamples, opt.bootstrapSeed, d.ciLow,
                        d.ciHigh);
    if (old_wall.size() < 2 || new_wall.size() < 2) {
        // One sample per side: the bootstrap CI is degenerate, so
        // no statistical claim -- report the values only.
        d.verdict = Verdict::Equal;
        pair.metrics.push_back(d);
        return;
    }
    if (d.ciLow > 0.0 && d.relChange > opt.threshold)
        d.verdict = Verdict::Regressed;
    else if (d.ciHigh < 0.0 && d.relChange < -opt.threshold)
        d.verdict = Verdict::Improved;
    else if (d.ciLow > 0.0 || d.ciHigh < 0.0)
        d.verdict = Verdict::Drifted;
    else
        d.verdict = Verdict::Equal;
    pair.metrics.push_back(d);
}

/**
 * Compare one noisy (wall-clock-derived) metric via a seeded
 * bootstrap CI on the mean difference. `higherIsBetter` inverts the
 * regression direction for throughput metrics (fewer replayed slots
 * per second is the regression). Degenerate samples (one per side)
 * report the values with no statistical claim.
 */
void
addNoisyMetric(const std::string &metric,
               const std::vector<double> &old_xs,
               const std::vector<double> &new_xs,
               bool higherIsBetter, const DiffOptions &opt,
               PairDiff &pair)
{
    if (old_xs.empty() || new_xs.empty())
        return;
    MetricDelta d;
    d.metric = metric;
    d.noisy = true;
    d.oldValue = mean(old_xs);
    d.newValue = mean(new_xs);
    d.relChange = d.oldValue == 0.0
        ? 0.0
        : (d.newValue - d.oldValue) / d.oldValue;
    bootstrapMeanDiffCI(old_xs, new_xs, opt.confidence,
                        opt.resamples, opt.bootstrapSeed, d.ciLow,
                        d.ciHigh);
    if (old_xs.size() < 2 || new_xs.size() < 2) {
        d.verdict = Verdict::Equal;
        pair.metrics.push_back(d);
        return;
    }
    const double worse =
        higherIsBetter ? -d.relChange : d.relChange;
    const bool ci_above = d.ciLow > 0.0;
    const bool ci_below = d.ciHigh < 0.0;
    const bool ci_worse = higherIsBetter ? ci_below : ci_above;
    const bool ci_better = higherIsBetter ? ci_above : ci_below;
    if (ci_worse && worse > opt.threshold)
        d.verdict = Verdict::Regressed;
    else if (ci_better && worse < -opt.threshold)
        d.verdict = Verdict::Improved;
    else if (ci_above || ci_below)
        d.verdict = Verdict::Drifted;
    else
        d.verdict = Verdict::Equal;
    pair.metrics.push_back(d);
}

/** Compare the host-observatory block: per-phase host seconds,
 * throughput, slowdown. Pools records sharing the run key like
 * wall-clock does; every metric is noisy. */
void
compareHost(const std::vector<const RunRecord *> &olds,
            const std::vector<const RunRecord *> &news,
            const DiffOptions &opt, PairDiff &pair)
{
    struct HostMetric
    {
        const char *name;
        double HostSummary::*field;
        bool higherIsBetter;
    };
    static const HostMetric kHostMetrics[] = {
        {"host.total_seconds", &HostSummary::totalSeconds, false},
        {"host.partition_build_seconds",
         &HostSummary::partitionBuildSeconds, false},
        {"host.trace_record_seconds",
         &HostSummary::traceRecordSeconds, false},
        {"host.replay_seconds", &HostSummary::replaySeconds, false},
        {"host.profile_fold_seconds",
         &HostSummary::profileFoldSeconds, false},
        {"host.transfer_model_seconds",
         &HostSummary::transferModelSeconds, false},
        {"host.host_merge_seconds", &HostSummary::hostMergeSeconds,
         false},
        {"host.analysis_seconds", &HostSummary::analysisSeconds,
         false},
        {"host.replay_slots_per_sec",
         &HostSummary::replaySlotsPerSec, true},
        {"host.trace_records_per_sec",
         &HostSummary::traceRecordsPerSec, true},
        {"host.slowdown_factor", &HostSummary::slowdownFactor,
         false},
    };
    auto samples = [](const std::vector<const RunRecord *> &rs,
                      double HostSummary::*field) {
        std::vector<double> xs;
        for (const RunRecord *r : rs)
            if (r->hasHost)
                xs.push_back(r->host.*field);
        return xs;
    };
    for (const HostMetric &hm : kHostMetrics) {
        addNoisyMetric(hm.name, samples(olds, hm.field),
                       samples(news, hm.field), hm.higherIsBetter,
                       opt, pair);
    }
}

/** Fold metric verdicts into the pair verdict. The gates are the
 * total model time, the straggler factor (a launch that got more
 * skewed is a regression even before it dominates the total), and
 * the serving tail latency / throughput pair (p95 up or queries/sec
 * down fails the serving baseline); other deterministic drift
 * demotes to Drifted. Wall-clock only gates when opt.wallClockGate;
 * host.* metrics only when opt.hostGate. */
Verdict
foldVerdict(const PairDiff &pair, const DiffOptions &opt)
{
    Verdict gate = Verdict::Equal;
    bool any_change = false;
    for (const MetricDelta &m : pair.metrics) {
        if (m.verdict == Verdict::Equal)
            continue;
        const bool is_host = m.metric.rfind("host.", 0) == 0;
        const bool noisy_gated =
            is_host ? opt.hostGate : opt.wallClockGate;
        if (m.noisy && !noisy_gated) {
            // advisory noisy metric: report, never gate
            continue;
        }
        any_change = true;
        if (m.metric == "imbalance.straggler_factor" &&
            m.verdict == Verdict::Regressed)
            return Verdict::Regressed;
        const bool serve_gate = m.metric == "serve.latency_p95" ||
                                m.metric == "serve.queries_per_sec";
        if (serve_gate && m.verdict == Verdict::Regressed)
            return Verdict::Regressed;
        if (m.metric == "times.total" || (m.noisy && noisy_gated)) {
            if (m.verdict == Verdict::Regressed)
                return Verdict::Regressed;
            if (m.verdict == Verdict::Improved)
                gate = Verdict::Improved;
        }
    }
    if (gate == Verdict::Improved)
        return Verdict::Improved;
    return any_change ? Verdict::Drifted : Verdict::Equal;
}

void
tally(DiffReport &report)
{
    for (const PairDiff &pair : report.pairs) {
        switch (pair.verdict) {
          case Verdict::Regressed:
            ++report.regressed;
            break;
          case Verdict::Improved:
            ++report.improved;
            break;
          case Verdict::Drifted:
            ++report.drifted;
            break;
          case Verdict::Equal:
            ++report.equal;
            break;
          case Verdict::OldOnly:
            ++report.oldOnly;
            break;
          case Verdict::NewOnly:
            ++report.newOnly;
            break;
        }
    }
}

std::string
join(const std::vector<std::string> &xs)
{
    std::string out;
    for (const std::string &x : xs) {
        if (!out.empty())
            out += ", ";
        out += x.empty() ? "<none>" : x;
    }
    return out;
}

void
setWarnings(const RecordSet &olds, const RecordSet &news,
            DiffReport &report)
{
    auto warn_set = [&](const RecordSet &set, const char *side) {
        if (set.mixedSchemas()) {
            report.warnings.push_back(
                std::string(side) + " file " + set.path +
                " mixes record schemas (" + join(set.schemas) +
                ") -- likely appended across incompatible versions");
        }
        if (set.mixedShas()) {
            report.warnings.push_back(
                std::string(side) + " file " + set.path +
                " mixes git revisions (" + join(set.gitShas) +
                ") -- likely appended across builds");
        }
    };
    warn_set(olds, "old");
    warn_set(news, "new");
    if (olds.schemas.size() == 1 && news.schemas.size() == 1 &&
        olds.schemas[0] != news.schemas[0]) {
        report.warnings.push_back(
            "schema mismatch: old=" +
            (olds.schemas[0].empty() ? "<none>" : olds.schemas[0]) +
            " new=" +
            (news.schemas[0].empty() ? "<none>" : news.schemas[0]));
    }
    auto fp_mismatch = [](const RecordSet &a, const RecordSet &b) {
        for (const RunRecord &ra : a.records) {
            if (ra.manifest.datasetFingerprint == 0)
                continue;
            for (const RunRecord &rb : b.records) {
                if (rb.manifest.datasetFingerprint != 0 &&
                    ra.key == rb.key &&
                    ra.manifest.datasetFingerprint !=
                        rb.manifest.datasetFingerprint)
                    return ra.key.str();
            }
        }
        return std::string();
    };
    if (const std::string key = fp_mismatch(olds, news);
        !key.empty()) {
        report.warnings.push_back(
            "dataset fingerprint changed for " + key +
            " -- the inputs differ, deltas are not like-for-like");
    }
}

} // namespace

DiffReport
diffRecordSets(const RecordSet &olds, const RecordSet &news,
               const DiffOptions &opt)
{
    DiffReport report;
    setWarnings(olds, news, report);

    std::map<RunKey, std::vector<const RunRecord *>> old_runs;
    std::map<RunKey, std::vector<const RunRecord *>> new_runs;
    for (const RunRecord &r : olds.records)
        old_runs[r.key].push_back(&r);
    for (const RunRecord &r : news.records)
        new_runs[r.key].push_back(&r);

    for (const auto &[key, old_list] : old_runs) {
        PairDiff pair;
        pair.key = key;
        const auto it = new_runs.find(key);
        if (it == new_runs.end()) {
            pair.verdict = Verdict::OldOnly;
            report.pairs.push_back(std::move(pair));
            continue;
        }
        const RunRecord &o = *old_list.front();
        const RunRecord &n = *it->second.front();
        compareDeterministic(o, n, opt, pair);
        compareWallClock(old_list, it->second, opt, pair);
        compareHost(old_list, it->second, opt, pair);
        pair.verdict = foldVerdict(pair, opt);
        if (pair.verdict == Verdict::Regressed)
            pair.attribution = attributeRegression(o, n);
        report.pairs.push_back(std::move(pair));
    }
    for (const auto &[key, new_list] : new_runs) {
        (void)new_list;
        if (old_runs.find(key) == old_runs.end()) {
            PairDiff pair;
            pair.key = key;
            pair.verdict = Verdict::NewOnly;
            report.pairs.push_back(std::move(pair));
        }
    }
    tally(report);
    return report;
}

// ---------------------------------------------------------------
// Metrics-file mode
// ---------------------------------------------------------------

namespace
{

/** Comparable fields of one metrics-JSONL record, keyed by
 * "kind/name". */
using MetricFields = std::vector<std::pair<std::string, double>>;

bool
loadMetricsFile(const std::string &path,
                std::map<std::string, MetricFields> &out,
                std::string *error)
{
    std::ifstream in(path);
    if (!in) {
        if (error)
            *error = "cannot open '" + path + "'";
        return false;
    }
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        telemetry::JsonValue doc;
        std::string parse_error;
        if (!telemetry::JsonValue::parse(line, doc, &parse_error)) {
            if (error)
                *error = path + ":" + std::to_string(lineno) + ": " +
                         parse_error;
            return false;
        }
        const auto *kind = doc.find("kind");
        const auto *name = doc.find("name");
        if (!kind || !kind->isString() || !name ||
            !name->isString())
            continue;
        MetricFields fields;
        if (kind->asString() == "distribution") {
            for (const char *f :
                 {"count", "mean", "p50", "p95", "p99", "p999"}) {
                if (const auto *v = doc.find(f);
                    v && v->isNumber())
                    fields.emplace_back(f, v->asNumber());
            }
        } else if (const auto *v = doc.find("value");
                   v && v->isNumber()) {
            fields.emplace_back("value", v->asNumber());
        }
        out[kind->asString() + "/" + name->asString()] =
            std::move(fields);
    }
    return true;
}

} // namespace

bool
looksLikeMetricsFile(const std::string &path)
{
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        telemetry::JsonValue doc;
        if (!telemetry::JsonValue::parse(line, doc, nullptr))
            return false;
        const auto *kind = doc.find("kind");
        return kind && kind->isString();
    }
    return false;
}

bool
diffMetricsFiles(const std::string &oldPath,
                 const std::string &newPath, const DiffOptions &opt,
                 DiffReport &out, std::string *error)
{
    std::map<std::string, MetricFields> old_metrics;
    std::map<std::string, MetricFields> new_metrics;
    if (!loadMetricsFile(oldPath, old_metrics, error) ||
        !loadMetricsFile(newPath, new_metrics, error))
        return false;
    out = DiffReport();
    for (const auto &[label, old_fields] : old_metrics) {
        PairDiff pair;
        pair.label = label;
        const auto it = new_metrics.find(label);
        if (it == new_metrics.end()) {
            pair.verdict = Verdict::OldOnly;
            out.pairs.push_back(std::move(pair));
            continue;
        }
        for (const auto &[field, oldv] : old_fields) {
            const auto fit = std::find_if(
                it->second.begin(), it->second.end(),
                [&](const auto &p) { return p.first == field; });
            if (fit == it->second.end())
                continue;
            pair.metrics.push_back(deterministicDelta(
                field, oldv, fit->second, opt));
        }
        pair.verdict = Verdict::Equal;
        for (const MetricDelta &m : pair.metrics) {
            if (m.verdict == Verdict::Regressed) {
                pair.verdict = Verdict::Regressed;
                break;
            }
            if (m.verdict != Verdict::Equal)
                pair.verdict = Verdict::Drifted;
        }
        out.pairs.push_back(std::move(pair));
    }
    for (const auto &[label, fields] : new_metrics) {
        (void)fields;
        if (old_metrics.find(label) == old_metrics.end()) {
            PairDiff pair;
            pair.label = label;
            pair.verdict = Verdict::NewOnly;
            out.pairs.push_back(std::move(pair));
        }
    }
    tally(out);
    return true;
}

// ---------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------

namespace
{

std::string
pairLabel(const PairDiff &pair)
{
    return pair.label.empty() ? pair.key.str() : pair.label;
}

std::string
formatDelta(const MetricDelta &m, const DiffOptions &opt)
{
    char buf[192];
    if (m.noisy) {
        const bool gated = m.metric.rfind("host.", 0) == 0
                               ? opt.hostGate
                               : opt.wallClockGate;
        std::snprintf(buf, sizeof(buf),
                      "    %-22s %.4g -> %.4g (%+.1f%%, CI of "
                      "mean diff [%+.3g, %+.3g]) %s%s",
                      m.metric.c_str(), m.oldValue, m.newValue,
                      m.relChange * 100.0, m.ciLow, m.ciHigh,
                      verdictName(m.verdict),
                      gated ? "" : " [advisory]");
    } else {
        std::snprintf(buf, sizeof(buf),
                      "    %-22s %.6g -> %.6g (%+.2f%%) %s",
                      m.metric.c_str(), m.oldValue, m.newValue,
                      m.relChange * 100.0, verdictName(m.verdict));
    }
    return buf;
}

} // namespace

std::string
renderReport(const DiffReport &report, const DiffOptions &opt)
{
    std::string out;
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "bench-diff: %zu compared -- %zu regressed, %zu improved, "
        "%zu drifted, %zu equal (%zu old-only, %zu new-only; "
        "threshold %.1f%%)\n",
        report.pairs.size() - report.oldOnly - report.newOnly,
        report.regressed, report.improved, report.drifted,
        report.equal, report.oldOnly, report.newOnly,
        opt.threshold * 100.0);
    out += buf;
    for (const std::string &w : report.warnings)
        out += "warning: " + w + "\n";
    for (const PairDiff &pair : report.pairs) {
        if (pair.verdict == Verdict::Equal) {
            // Advisory noisy metrics never fold into the pair
            // verdict, but "advisory" means reported, not silent:
            // surface their movement under an [ok] header.
            std::string advisory;
            for (const MetricDelta &m : pair.metrics) {
                if (m.noisy && m.verdict != Verdict::Equal)
                    advisory += formatDelta(m, opt) + "\n";
            }
            if (!advisory.empty())
                out += "  [ok] " + pairLabel(pair) +
                       ": model metrics equal; host-side movement "
                       "(advisory):\n" +
                       advisory;
            continue;
        }
        out += "  [";
        out += verdictName(pair.verdict);
        out += "] " + pairLabel(pair);
        if (!pair.attribution.headline.empty())
            out += ": " + pair.attribution.headline;
        out += "\n";
        for (const std::string &e : pair.attribution.evidence)
            out += "      - " + e + "\n";
        for (const MetricDelta &m : pair.metrics) {
            if (m.verdict != Verdict::Equal)
                out += formatDelta(m, opt) + "\n";
        }
    }
    out += report.hasRegressions() ? "verdict: REGRESSED\n"
                                   : "verdict: OK\n";
    return out;
}

std::string
reportJson(const DiffReport &report)
{
    telemetry::JsonWriter w;
    w.beginObject();
    w.key("regressed").value(
        static_cast<std::uint64_t>(report.regressed));
    w.key("improved").value(
        static_cast<std::uint64_t>(report.improved));
    w.key("drifted").value(
        static_cast<std::uint64_t>(report.drifted));
    w.key("equal").value(static_cast<std::uint64_t>(report.equal));
    w.key("old_only").value(
        static_cast<std::uint64_t>(report.oldOnly));
    w.key("new_only").value(
        static_cast<std::uint64_t>(report.newOnly));
    w.key("warnings").beginArray();
    for (const std::string &warning : report.warnings)
        w.value(warning);
    w.endArray();
    w.key("pairs").beginArray();
    for (const PairDiff &pair : report.pairs) {
        w.beginObject();
        w.key("label").value(pairLabel(pair));
        w.key("verdict").value(verdictName(pair.verdict));
        if (pair.verdict == Verdict::Regressed) {
            w.key("bottleneck")
                .value(bottleneckName(pair.attribution.kind));
            w.key("headline").value(pair.attribution.headline);
            w.key("evidence").beginArray();
            for (const std::string &e : pair.attribution.evidence)
                w.value(e);
            w.endArray();
        }
        w.key("metrics").beginArray();
        for (const MetricDelta &m : pair.metrics) {
            if (m.verdict == Verdict::Equal)
                continue;
            w.beginObject();
            w.key("metric").value(m.metric);
            w.key("old").value(m.oldValue);
            w.key("new").value(m.newValue);
            w.key("rel_change").value(m.relChange);
            w.key("verdict").value(verdictName(m.verdict));
            if (m.noisy) {
                w.key("ci_low").value(m.ciLow);
                w.key("ci_high").value(m.ciHigh);
            }
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace alphapim::perf
