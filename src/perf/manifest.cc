#include "manifest.hh"

#include <cstdio>
#include <cstdlib>

#include "perf/build_info.hh"
#include "perf/fingerprint.hh"

namespace alphapim::perf
{

std::string
fingerprintString(std::uint64_t fp)
{
    char buf[2 + 16 + 1];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(fp));
    return buf;
}

std::uint64_t
parseFingerprint(const std::string &text)
{
    if (text.size() != 18 || text.rfind("0x", 0) != 0)
        return 0;
    char *end = nullptr;
    const std::uint64_t fp =
        std::strtoull(text.c_str() + 2, &end, 16);
    return (end && *end == '\0') ? fp : 0;
}

void
RunManifest::addConfig(const std::string &key,
                       const std::string &json)
{
    config.emplace_back(key, json);
}

void
RunManifest::addConfig(const std::string &key, std::uint64_t v)
{
    config.emplace_back(key, std::to_string(v));
}

void
RunManifest::addConfig(const std::string &key, double v)
{
    config.emplace_back(key, telemetry::JsonWriter::number(v));
}

void
RunManifest::addConfig(const std::string &key, bool v)
{
    config.emplace_back(key, v ? "true" : "false");
}

void
RunManifest::addConfigString(const std::string &key,
                             const std::string &v)
{
    config.emplace_back(key, telemetry::JsonWriter::quote(v));
}

RunManifest
currentManifest()
{
    RunManifest m;
    m.schema = kRunSchema;
    m.gitSha = gitSha();
    m.buildType = buildType();
    m.buildFlags = buildFlags();
    return m;
}

void
writeManifestFields(telemetry::JsonWriter &w, const RunManifest &m)
{
    w.key("schema").value(m.schema);
    w.key("git_sha").value(m.gitSha);
    w.key("build_type").value(m.buildType);
    w.key("build_flags").value(m.buildFlags);
    if (m.datasetFingerprint != 0) {
        w.key("dataset_fingerprint")
            .value(fingerprintString(m.datasetFingerprint));
    }
    if (!m.config.empty()) {
        w.key("config").beginObject();
        for (const auto &[key, json] : m.config)
            w.key(key).rawValue(json);
        w.endObject();
    }
}

namespace
{

std::string
stringField(const telemetry::JsonValue &obj, const char *key)
{
    const auto *v = obj.find(key);
    return v && v->isString() ? v->asString() : std::string();
}

/** Re-encode one parsed JSON value compactly (config round-trip). */
std::string
reencode(const telemetry::JsonValue &v)
{
    using telemetry::JsonWriter;
    switch (v.type()) {
      case telemetry::JsonValue::Type::Null:
        return "null";
      case telemetry::JsonValue::Type::Bool:
        return v.asBool() ? "true" : "false";
      case telemetry::JsonValue::Type::Number:
        return JsonWriter::number(v.asNumber());
      case telemetry::JsonValue::Type::String:
        return JsonWriter::quote(v.asString());
      case telemetry::JsonValue::Type::Array: {
        std::string out = "[";
        for (std::size_t i = 0; i < v.items().size(); ++i) {
            if (i > 0)
                out += ',';
            out += reencode(v.items()[i]);
        }
        return out + "]";
      }
      case telemetry::JsonValue::Type::Object: {
        std::string out = "{";
        bool first = true;
        for (const auto &[key, member] : v.members()) {
            if (!first)
                out += ',';
            first = false;
            out += JsonWriter::quote(key);
            out += ':';
            out += reencode(member);
        }
        return out + "}";
      }
    }
    return "null";
}

} // namespace

RunManifest
parseManifestFields(const telemetry::JsonValue &record)
{
    RunManifest m;
    m.schema = stringField(record, "schema");
    m.gitSha = stringField(record, "git_sha");
    m.buildType = stringField(record, "build_type");
    m.buildFlags = stringField(record, "build_flags");
    m.datasetFingerprint =
        parseFingerprint(stringField(record, "dataset_fingerprint"));
    if (const auto *cfg = record.find("config");
        cfg && cfg->isObject()) {
        for (const auto &[key, value] : cfg->members())
            m.config.emplace_back(key, reencode(value));
    }
    return m;
}

} // namespace alphapim::perf
