/**
 * @file
 * Run manifests: the provenance block every bench/CLI run record
 * carries so that any two records are mechanically comparable. A
 * manifest pins the record schema version, the git revision and
 * build configuration of the producing binary, the fingerprint of
 * the dataset that was processed, and the full run configuration.
 * The bench differ refuses to compare silently across manifest
 * mismatches -- it warns on mixed schemas or mixed revisions and
 * flags fingerprint drift per paired run.
 */

#ifndef ALPHA_PIM_PERF_MANIFEST_HH
#define ALPHA_PIM_PERF_MANIFEST_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/json.hh"

namespace alphapim::perf
{

/** Schema tag of the current run-record format. PR 1's records
 * predate manifests and carry no tag; the differ treats an absent
 * tag as "alpha-pim-run-v1" and warns. v3 adds the optional
 * "timeline" block (occupancy, overlap, critical-path and what-if
 * summary); v4 adds the optional "imbalance" block (per-DPU skew,
 * straggler attribution, rebalance bound, roofline); v5 adds the
 * optional "host" block (per-phase simulator host seconds, memory
 * footprint, throughput and the simulation slowdown factor); v6 adds
 * the optional "serve" block (query serving: admission, batching,
 * model-time latency percentiles and throughput). v2 through v5
 * records still parse, just without the newer blocks. */
inline constexpr const char *kRunSchema = "alpha-pim-run-v6";

/** Provenance of one recorded run. */
struct RunManifest
{
    std::string schema;     ///< record schema tag ("" = legacy v1)
    std::string gitSha;     ///< producing revision (may be "+dirty")
    std::string buildType;  ///< CMAKE_BUILD_TYPE
    std::string buildFlags; ///< sanitizers etc., "" when none
    std::uint64_t datasetFingerprint = 0; ///< 0 = not fingerprinted

    /** Full run configuration as ordered (key, JSON-encoded value)
     * pairs -- e.g. {"dpus","256"}, {"quick","true"}. Kept encoded
     * so heterogeneous producers (bench harness, CLI) need no shared
     * config struct; the differ compares pairs verbatim. */
    std::vector<std::pair<std::string, std::string>> config;

    /** Convenience: append one config entry. */
    void addConfig(const std::string &key, const std::string &json);
    void addConfig(const std::string &key, std::uint64_t v);
    void addConfig(const std::string &key, double v);
    void addConfig(const std::string &key, bool v);
    void addConfigString(const std::string &key,
                         const std::string &v);
};

/** Manifest pre-filled from the build info (schema, git SHA, build
 * type/flags); fingerprint and config are the caller's. */
RunManifest currentManifest();

/** Write the manifest's fields into an open JSON object. */
void writeManifestFields(telemetry::JsonWriter &w,
                         const RunManifest &m);

/** Read manifest fields back out of a parsed record object.
 * Unknown / absent fields default; never fails (legacy records are
 * valid manifests with empty schema). */
RunManifest parseManifestFields(const telemetry::JsonValue &record);

} // namespace alphapim::perf

#endif // ALPHA_PIM_PERF_MANIFEST_HH
