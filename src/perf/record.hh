/**
 * @file
 * Run records: the parsed form of one `--json-out` JSONL line, the
 * encoder that produces those lines, and the loader that reads a
 * record set back for diffing. A record couples the run's identity
 * (bench, dataset, variant, dpus, seed), its manifest (provenance,
 * see manifest.hh), and its measurements -- the deterministic
 * model-time numbers plus the one genuinely noisy field, the host
 * wall-clock duration.
 */

#ifndef ALPHA_PIM_PERF_RECORD_HH
#define ALPHA_PIM_PERF_RECORD_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/imbalance.hh"
#include "core/phase_times.hh"
#include "perf/manifest.hh"
#include "telemetry/host_prof.hh"
#include "telemetry/timeline.hh"
#include "upmem/profile.hh"

namespace alphapim::perf
{

/** Pairing identity of a run: two records with equal keys measure
 * the same experiment and are mechanically comparable. */
struct RunKey
{
    std::string bench;
    std::string dataset;
    std::string variant;
    std::uint64_t dpus = 0;
    std::uint64_t seed = 0;

    bool operator<(const RunKey &o) const;
    bool operator==(const RunKey &o) const;

    /** "fig07/e-En/BFS-adaptive@256dpus" display form. */
    std::string str() const;
};

/** Execution-timeline summary of one run (schema v3): occupancy and
 * overlap from the reconstructed span timeline, critical-path
 * composition, and the what-if overlap bounds. */
struct TimelineSummary
{
    double windowSeconds = 0.0;
    std::uint64_t launches = 0;
    std::uint64_t ranks = 0;
    double rankOccupancyMean = 0.0;
    double rankOccupancyMin = 0.0;
    double dpuOccupancyMean = 0.0;
    double overlapFraction = 0.0;
    double idleFraction = 0.0;

    /** Fraction of the critical path spent in transfers. */
    double transferCriticalFraction = 0.0;

    /** Upper bounds on speedup from the what-if estimator. */
    double whatifRankOverlapSpeedup = 1.0;
    double whatifDoubleBufferSpeedup = 1.0;
    double whatifCombinedSpeedup = 1.0;
};

/** Load-imbalance & roofline summary of one run (schema v4): fleet
 * skew statistics over per-DPU cycles and partition shares, the
 * worst launch's straggler attribution, the Amdahl-style rebalance
 * bound, and the run's roofline position. */
struct ImbalanceSummary
{
    std::uint64_t launches = 0;

    /** Summed critical-DPU cycles over summed mean cycles. */
    double stragglerFactor = 1.0;
    double cyclesGini = 0.0;
    double cyclesCov = 0.0;
    double cyclesP99OverMean = 0.0;
    double nnzGini = 0.0;
    double nnzMaxOverMean = 0.0;

    /** Worst launch's straggler: kernel, DPU, excess and its
     * attribution to a stall reason and partition share. */
    std::string stragglerKernel;
    std::uint64_t stragglerDpu = 0;
    double stragglerCyclesOverMean = 1.0;
    std::string stragglerStall;
    double stragglerStallFraction = 0.0;
    double stragglerNnzOverMean = 0.0;

    /** Modeled kernel wall time vs the perfectly-leveled bound. */
    double kernelSeconds = 0.0;
    double leveledKernelSeconds = 0.0;

    /** Run roofline: intensity, achieved vs ceiling, classification. */
    double rooflineOpIntensity = 0.0;
    double rooflineAchievedOpsPerSec = 0.0;
    double rooflinePipelineCeilingOpsPerSec = 0.0;
    double rooflineRidgeIntensity = 0.0;
    double rooflineMemoryBoundFraction = 0.0;
};

/** Host-performance summary of one run (schema v5): where the
 * simulator's own wall seconds and bytes went. Every field is
 * wall-clock derived and therefore noisy -- the differ never
 * exact-compares this block; it uses bootstrap CIs like
 * wall_seconds. */
struct HostSummary
{
    /** Sum of the per-phase self seconds below. */
    double totalSeconds = 0.0;

    // Per-phase self wall seconds (see telemetry::HostPhase).
    double partitionBuildSeconds = 0.0;
    double traceRecordSeconds = 0.0;
    double replaySeconds = 0.0;
    double profileFoldSeconds = 0.0;
    double transferModelSeconds = 0.0;
    double hostMergeSeconds = 0.0;
    double analysisSeconds = 0.0;

    /** Throughput: replayed instruction slots per replay second and
     * generated trace records per trace-record second. */
    double replaySlotsPerSec = 0.0;
    double traceRecordsPerSec = 0.0;
    std::uint64_t replaySlots = 0;
    std::uint64_t traceRecords = 0;

    /** Host seconds per modeled second (the simulation slowdown). */
    double slowdownFactor = 0.0;

    /** Memory footprint: peak RSS, live TaskletTrace high-water,
     * tracer and metrics buffer bytes at record time. */
    std::uint64_t peakRssBytes = 0;
    std::uint64_t taskletTraceBytesPeak = 0;
    std::uint64_t tracerBytes = 0;
    std::uint64_t metricsBytes = 0;
};

/** Query-serving summary of one run (schema v6): admission and
 * batching outcomes plus the model-time latency distribution of the
 * serving subsystem (src/serve/). Every field derives from the
 * deterministic model clock, so the differ exact-compares the whole
 * block and gates p95 latency and throughput regressions. */
struct ServeSummary
{
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    std::uint64_t batches = 0;
    double meanBatchSize = 0.0;
    std::uint64_t maxBatchSize = 0;
    std::uint64_t maxQueueDepth = 0;

    /** Model-second latency percentiles over completed queries. */
    double latencyP50 = 0.0;
    double latencyP95 = 0.0;
    double latencyP99 = 0.0;
    double latencyP999 = 0.0;
    double latencyMean = 0.0;

    /** Completed queries per model second of makespan. */
    double queriesPerSec = 0.0;

    /** First-arrival to last-completion model seconds. */
    double makespanSeconds = 0.0;
};

/** Per-run transfer-volume deltas (from the xfer.* counters). */
struct XferCounts
{
    std::uint64_t scatters = 0;
    std::uint64_t scatterBytes = 0;
    std::uint64_t gathers = 0;
    std::uint64_t gatherBytes = 0;
    std::uint64_t broadcasts = 0;
    std::uint64_t broadcastBytes = 0;
};

/** One parsed run record. */
struct RunRecord
{
    RunManifest manifest;
    RunKey key;
    std::uint64_t iterations = 0;
    core::PhaseTimes times; ///< deterministic model seconds

    /** Host wall-clock seconds of the run; < 0 when absent. Noisy:
     * the differ never exact-compares it. */
    double wallSeconds = -1.0;

    // ---- DPU profile (absent unless hasProfile) ----
    bool hasProfile = false;
    std::uint64_t totalCycles = 0;
    std::uint64_t issuedCycles = 0;
    std::uint64_t maxCycles = 0;
    std::uint64_t activeDpus = 0;
    double issuedFraction = 0.0;
    double avgActiveThreads = 0.0;
    std::map<std::string, double> stallFractions;
    std::map<std::string, std::uint64_t> instrByCategory;

    // ---- transfer volume (absent unless hasXfer) ----
    bool hasXfer = false;
    XferCounts xfer;

    // ---- execution timeline (absent unless hasTimeline; schema v3
    // records only -- v2 and older parse with hasTimeline false) ----
    bool hasTimeline = false;
    TimelineSummary timeline;

    // ---- load imbalance & roofline (absent unless hasImbalance;
    // schema v4 records only -- older schemas parse with
    // hasImbalance false) ----
    bool hasImbalance = false;
    ImbalanceSummary imbalance;

    // ---- host-performance profile (absent unless hasHost; schema
    // v5 records only -- older schemas parse with hasHost false) ----
    bool hasHost = false;
    HostSummary host;

    // ---- query-serving summary (absent unless hasServe; schema v6
    // records only -- older schemas parse with hasServe false) ----
    bool hasServe = false;
    ServeSummary serve;
};

/**
 * Encode one run record as a compact JSON object (one JSONL line,
 * without the trailing newline).
 *
 * @param manifest   provenance block (schema etc. already filled)
 * @param key        run identity
 * @param iterations iteration count (0 = n/a)
 * @param times      model-time phase breakdown
 * @param profile    DPU profile, or nullptr
 * @param xfer       per-run transfer deltas, or nullptr
 * @param wallSeconds host wall-clock duration; < 0 omits the field
 * @param timeline   execution-timeline summary, or nullptr
 * @param imbalance  load-imbalance & roofline summary, or nullptr
 * @param host       host-performance profile summary, or nullptr
 * @param serve      query-serving summary, or nullptr
 */
std::string encodeRunRecord(const RunManifest &manifest,
                            const RunKey &key,
                            std::uint64_t iterations,
                            const core::PhaseTimes &times,
                            const upmem::LaunchProfile *profile,
                            const XferCounts *xfer,
                            double wallSeconds,
                            const TimelineSummary *timeline = nullptr,
                            const ImbalanceSummary *imbalance = nullptr,
                            const HostSummary *host = nullptr,
                            const ServeSummary *serve = nullptr);

/** Parse one record line. Returns false (with *error set) on
 * malformed JSON or missing identity fields. */
bool parseRunRecord(const std::string &line, RunRecord &out,
                    std::string *error);

/** Condense a reconstructed timeline (and its computed stats) into
 * the record-level summary: occupancy/overlap plus the critical-path
 * transfer fraction and what-if speedup bounds. */
TimelineSummary summarizeTimeline(const telemetry::Timeline &timeline,
                                  const telemetry::TimelineStats &stats);

/** Condense the imbalance observer's run aggregate into the
 * record-level summary. */
ImbalanceSummary summarizeImbalance(const analysis::RunImbalance &run);

/** Condense a host-profiler snapshot into the record-level summary. */
HostSummary summarizeHost(const telemetry::HostProfile &profile);

/** A loaded record file. */
struct RecordSet
{
    std::string path;
    std::vector<RunRecord> records;

    /** Distinct schema tags seen ("" = legacy v1 records). */
    std::vector<std::string> schemas;

    /** Distinct git SHAs seen. */
    std::vector<std::string> gitShas;

    /** True when records carry more than one schema / revision --
     * the append-only --json-out footgun the differ warns about. */
    bool mixedSchemas() const { return schemas.size() > 1; }
    bool mixedShas() const { return gitShas.size() > 1; }
};

/** Load a JSONL record file. Returns false (with *error set) when
 * the file cannot be read or a line cannot be parsed. */
bool loadRecordSet(const std::string &path, RecordSet &out,
                   std::string *error);

} // namespace alphapim::perf

#endif // ALPHA_PIM_PERF_RECORD_HH
