/**
 * @file
 * Automated bottleneck attribution: given the old and new record of
 * a regressed run, decompose the model-time regression into phase
 * contributions, cross-check against the DPU stall breakdown and the
 * transfer volumes, and name the dominant bottleneck in roofline
 * terms -- so a perf-gate failure reads "transfer-bound (broadcast
 * bytes 2.1x)" instead of a bare percentage.
 */

#ifndef ALPHA_PIM_PERF_ATTRIBUTION_HH
#define ALPHA_PIM_PERF_ATTRIBUTION_HH

#include <string>
#include <vector>

#include "perf/record.hh"

namespace alphapim::perf
{

/** Dominant cause of a regression. */
enum class Bottleneck
{
    TransferBound,  ///< load/retrieve phases: host<->DPU volume
    ImbalanceBound, ///< kernel phase, driven by grown per-DPU skew
    MemoryBound,    ///< kernel phase, driven by MRAM stall cycles
    PipelineBound,  ///< kernel phase, revolver/rf-hazard/sync stalls
    ComputeBound,   ///< kernel phase, more issued (real) work
    HostBound,      ///< merge phase: host-side merging / convergence
    Unknown,        ///< no phase grew (e.g. iteration-count change)
};

/** Stable lowercase name ("transfer-bound", ...). */
const char *bottleneckName(Bottleneck kind);

/** Attribution of one regressed run. */
struct Attribution
{
    Bottleneck kind = Bottleneck::Unknown;

    /** One-line verdict, e.g. "+12.0% total, driven by
     * phase.load_seconds (+31%), transfer-bound (broadcast bytes
     * 2.1x)". The run key is NOT included; reports prepend it. */
    std::string headline;

    /** Ranked evidence, most significant first: phase contributions,
     * stall-cycle deltas, transfer-volume ratios. */
    std::vector<std::string> evidence;
};

/**
 * Explain why `newer` is slower than `older`. Meaningful when
 * newer.times.total() > older.times.total(); for non-regressions the
 * result is Unknown with empty evidence.
 */
Attribution attributeRegression(const RunRecord &older,
                                const RunRecord &newer);

} // namespace alphapim::perf

#endif // ALPHA_PIM_PERF_ATTRIBUTION_HH
