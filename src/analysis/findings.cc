#include "analysis/findings.hh"

#include <tuple>

namespace alphapim::analysis
{

namespace
{

auto
findingKey(const Finding &f)
{
    return std::tie(f.kind, f.dpu, f.tasklet, f.addr, f.otherTasklet,
                    f.space, f.bytes, f.id, f.detail);
}

} // namespace

bool
findingLess(const Finding &a, const Finding &b)
{
    return findingKey(a) < findingKey(b);
}

bool
findingEquals(const Finding &a, const Finding &b)
{
    return findingKey(a) == findingKey(b);
}

const char *
findingKindName(FindingKind kind)
{
    switch (kind) {
      case FindingKind::DataRace:
        return "data_race";
      case FindingKind::DoubleLock:
        return "double_lock";
      case FindingKind::UnlockUnheld:
        return "unlock_unheld";
      case FindingKind::LockHeldAtExit:
        return "lock_held_at_exit";
      case FindingKind::LockOrderCycle:
        return "lock_order_cycle";
      case FindingKind::BarrierDivergence:
        return "barrier_divergence";
      case FindingKind::IllegalDma:
        return "illegal_dma";
      default:
        return "unknown";
    }
}

const char *
memSpaceName(MemSpace space)
{
    switch (space) {
      case MemSpace::Wram:
        return "wram";
      case MemSpace::Mram:
        return "mram";
      default:
        return "none";
    }
}

} // namespace alphapim::analysis
