/**
 * @file
 * Trace capture: a process-wide tap on kernel launches that collects
 * the per-tasklet traces every DPU generated, optionally skipping the
 * revolver replay. The model checker (src/analysis/modelcheck/) uses
 * it to harvest synchronization skeletons from real kernel runs on
 * small abstract partitions without paying for timing simulation.
 *
 * Like the trace checker, the capture is a singleton consulted by
 * UpmemSystem::launchKernel; it is disabled by default and every
 * entry point is a cheap no-op until a tool enables it.
 */

#ifndef ALPHA_PIM_ANALYSIS_CAPTURE_HH
#define ALPHA_PIM_ANALYSIS_CAPTURE_HH

#include <atomic>
#include <mutex>
#include <vector>

#include "upmem/trace.hh"

namespace alphapim::analysis
{

/** The traces one launchKernel call generated, indexed by DPU. */
struct CapturedLaunch
{
    std::vector<std::vector<upmem::TaskletTrace>> dpuTraces;
};

/**
 * Thread-safe collector of launch traces.
 *
 * beginLaunch() / captureDpu() are called by UpmemSystem::launchKernel
 * (the latter concurrently from the launch worker pool); start() /
 * stop() bracket a capture session in the harvesting tool.
 */
class TraceCapture
{
  public:
    /** True when launches should be captured. */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Start capturing, dropping anything captured before.
     *
     * @param skip_replay when true, captured launches skip the
     *        revolver replay entirely (timing comes back zero); the
     *        kernels still execute functionally.
     */
    void start(bool skip_replay = true);

    /** Stop capturing and hand back everything captured. */
    std::vector<CapturedLaunch> stop();

    /** True when captured launches skip the revolver replay. */
    bool skipReplay() const;

    /** Open a new launch group of `num_dpus` DPU slots. */
    void beginLaunch(unsigned num_dpus);

    /** Store one DPU's traces into the current launch group. */
    void captureDpu(unsigned dpu,
                    const std::vector<upmem::TaskletTrace> &traces);

  private:
    std::atomic<bool> enabled_{false};
    mutable std::mutex mutex_;
    bool skipReplay_ = true;
    std::vector<CapturedLaunch> launches_;
};

/** The process-wide trace capture. */
TraceCapture &capture();

} // namespace alphapim::analysis

#endif // ALPHA_PIM_ANALYSIS_CAPTURE_HH
