#include "analysis/checker.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <tuple>
#include <utility>

#include "common/logging.hh"

#include "telemetry/json.hh"
#include "telemetry/metrics.hh"
#include "upmem/tasklet_ctx.hh"

namespace alphapim::analysis
{

namespace
{

using upmem::OpClass;
using upmem::RecordKind;
using upmem::TaskletTrace;
using upmem::TraceRecord;

/**
 * Insert a finding into the sorted-unique retained list, evicting
 * from the back once over the cap: the kept set is the first `cap`
 * distinct findings in report order no matter in which order the
 * launch workers delivered them, so --check-out reports are
 * byte-stable across runs.
 */
void
storeFinding(std::vector<Finding> &stored, Finding f, std::size_t cap)
{
    const auto it = std::lower_bound(stored.begin(), stored.end(), f,
                                     findingLess);
    if (it != stored.end() && findingEquals(*it, f))
        return;
    stored.insert(it, std::move(f));
    if (stored.size() > cap)
        stored.pop_back();
}

/** One deduplicated addressed access of one tasklet. */
struct Access
{
    MemSpace space;
    std::uint64_t addr;
    std::uint64_t end; ///< addr + length
    bool write;
    unsigned tasklet;
    std::uint32_t round;   ///< barriers passed before the access
    std::uint64_t lockset; ///< bitmask of mutexes held

    auto
    key() const
    {
        return std::tie(space, addr, end, write, tasklet, round,
                        lockset);
    }
};

/** Scratch state of one DPU's analysis pass. */
struct DpuAnalysis
{
    const CheckOptions &opts;
    const upmem::DpuConfig &cfg;
    unsigned dpu;
    std::vector<Finding> findings;
    std::array<std::uint64_t, numFindingKinds> counts{};

    std::vector<Access> accesses;
    std::vector<std::vector<std::uint32_t>> barrierSeqs;
    /** Lock graph edges held-mutex -> acquired-mutex, with the first
     * tasklet that created each edge (for attribution). */
    std::map<std::pair<std::uint32_t, std::uint32_t>, unsigned> edges;
    /** Mutex id -> lockset bit, assigned on first sight; ids beyond
     * 64 share the last bit (conservative, never a false positive
     * for the missed-lock direction we report). */
    std::map<std::uint32_t, unsigned> lockBits;

    DpuAnalysis(const CheckOptions &o, const upmem::DpuConfig &c,
                unsigned d)
        : opts(o), cfg(c), dpu(d)
    {
    }

    void
    emit(Finding f)
    {
        ++counts[static_cast<unsigned>(f.kind)];
        if (findings.size() < TraceChecker::maxStoredPerDpu)
            findings.push_back(std::move(f));
    }

    std::uint64_t
    lockBit(std::uint32_t id)
    {
        auto it = lockBits.find(id);
        if (it == lockBits.end()) {
            const unsigned bit =
                static_cast<unsigned>(std::min<std::size_t>(
                    lockBits.size(), 63));
            it = lockBits.emplace(id, bit).first;
        }
        return 1ull << it->second;
    }

    void checkDma(unsigned t, const TraceRecord &r);
    void walkTasklet(unsigned t, const TaskletTrace &trace);
    void checkBarriers(const std::vector<bool> &participants);
    void checkLockGraph();
    void checkRaces();
};

void
DpuAnalysis::checkDma(unsigned t, const TraceRecord &r)
{
    const std::uint32_t bytes = r.arg;
    const char *why = dmaViolation(r, cfg);
    if (why == nullptr)
        return;

    Finding f;
    f.kind = FindingKind::IllegalDma;
    f.dpu = dpu;
    f.tasklet = t;
    f.space = MemSpace::Mram;
    f.addr = r.addressed() ? r.addr : 0;
    f.bytes = bytes;
    std::ostringstream os;
    os << (r.cls == OpClass::DmaWrite ? "DMA write" : "DMA read")
       << " of " << bytes << " bytes: " << why;
    f.detail = os.str();
    emit(std::move(f));
}

void
DpuAnalysis::walkTasklet(unsigned t, const TaskletTrace &trace)
{
    std::vector<std::uint32_t> held;
    std::uint64_t lockset = 0;
    std::uint32_t round = 0;
    auto &barriers = barrierSeqs[t];

    const auto holds = [&](std::uint32_t id) {
        return std::find(held.begin(), held.end(), id) != held.end();
    };

    for (const TraceRecord &r : trace.records()) {
        switch (r.kind) {
          case RecordKind::Mutex: {
            const std::uint32_t id = r.arg;
            if (r.count == 1) { // lock
                if (opts.lock && holds(id)) {
                    Finding f;
                    f.kind = FindingKind::DoubleLock;
                    f.dpu = dpu;
                    f.tasklet = t;
                    f.id = id;
                    f.detail = "mutex " + std::to_string(id) +
                               " locked while already held";
                    emit(std::move(f));
                } else {
                    if (opts.lock) {
                        for (const std::uint32_t h : held)
                            edges.try_emplace({h, id}, t);
                    }
                    held.push_back(id);
                    lockset |= lockBit(id);
                }
            } else { // unlock
                const auto it =
                    std::find(held.begin(), held.end(), id);
                if (it == held.end()) {
                    if (opts.lock) {
                        Finding f;
                        f.kind = FindingKind::UnlockUnheld;
                        f.dpu = dpu;
                        f.tasklet = t;
                        f.id = id;
                        f.detail = "mutex " + std::to_string(id) +
                                   " unlocked while not held";
                        emit(std::move(f));
                    }
                } else {
                    held.erase(it);
                    lockset &= ~lockBit(id);
                    // Re-assert bits of mutexes still held in case
                    // two ids share the overflow bit.
                    for (const std::uint32_t h : held)
                        lockset |= lockBit(h);
                }
            }
            break;
          }
          case RecordKind::Barrier:
            barriers.push_back(r.arg);
            ++round;
            break;
          case RecordKind::Dma:
            if (opts.dma)
                checkDma(t, r);
            if (opts.race && r.addressed()) {
                accesses.push_back({MemSpace::Mram, r.addr,
                                    r.addr + r.arg,
                                    r.cls == OpClass::DmaWrite, t,
                                    round, lockset});
            }
            break;
          case RecordKind::Ops:
            if (opts.race && r.addressed()) {
                accesses.push_back({MemSpace::Wram, r.addr,
                                    r.addr + r.arg,
                                    r.cls == OpClass::StoreWram, t,
                                    round, lockset});
            }
            break;
        }
    }

    if (opts.lock) {
        for (const std::uint32_t id : held) {
            Finding f;
            f.kind = FindingKind::LockHeldAtExit;
            f.dpu = dpu;
            f.tasklet = t;
            f.id = id;
            f.detail = "mutex " + std::to_string(id) +
                       " still held at end of trace";
            emit(std::move(f));
        }
    }
}

void
DpuAnalysis::checkBarriers(const std::vector<bool> &participants)
{
    // Participants are tasklets with non-empty traces -- the same
    // exemption the replay scheduler's barrier quorum applies. All
    // participants must agree on the exact barrier sequence, or the
    // real hardware barrier would hang / release early.
    int ref = -1;
    for (std::size_t t = 0; t < participants.size(); ++t) {
        if (!participants[t])
            continue;
        if (ref < 0) {
            ref = static_cast<int>(t);
            continue;
        }
        if (barrierSeqs[t] ==
            barrierSeqs[static_cast<std::size_t>(ref)])
            continue;
        Finding f;
        f.kind = FindingKind::BarrierDivergence;
        f.dpu = dpu;
        f.tasklet = static_cast<unsigned>(t);
        f.otherTasklet = static_cast<unsigned>(ref);
        std::ostringstream os;
        os << "tasklet " << t << " passes "
           << barrierSeqs[t].size() << " barriers, tasklet " << ref
           << " passes "
           << barrierSeqs[static_cast<std::size_t>(ref)].size()
           << " (or the id sequences differ)";
        f.detail = os.str();
        emit(std::move(f));
    }
}

void
DpuAnalysis::checkLockGraph()
{
    // DFS cycle detection over the acquired-while-holding edges.
    std::map<std::uint32_t, std::vector<std::uint32_t>> adj;
    for (const auto &[edge, t] : edges)
        adj[edge.first].push_back(edge.second);

    std::map<std::uint32_t, int> color; // 0 new, 1 active, 2 done
    std::vector<std::uint32_t> path;

    const std::function<bool(std::uint32_t)> dfs =
        [&](std::uint32_t u) -> bool {
        color[u] = 1;
        path.push_back(u);
        for (const std::uint32_t v : adj[u]) {
            if (color[v] == 1) {
                // Cycle: path from v to u, closed by u -> v.
                const auto it =
                    std::find(path.begin(), path.end(), v);
                std::ostringstream os;
                os << "lock-order cycle:";
                for (auto p = it; p != path.end(); ++p)
                    os << ' ' << *p << " ->";
                os << ' ' << v;
                Finding f;
                f.kind = FindingKind::LockOrderCycle;
                f.dpu = dpu;
                f.tasklet = edges.at({u, v});
                f.id = v;
                f.detail = os.str();
                emit(std::move(f));
                path.pop_back();
                color[u] = 2;
                return true;
            }
            if (color[v] == 0 && dfs(v)) {
                path.pop_back();
                color[u] = 2;
                return true;
            }
        }
        path.pop_back();
        color[u] = 2;
        return false;
    };

    for (const auto &[node, _] : adj) {
        if (color[node] == 0 && dfs(node))
            return; // one cycle report per DPU is enough
    }
}

void
DpuAnalysis::checkRaces()
{
    // Dedup identical accesses (kernels touch the same accumulator
    // slot once per nonzero; one representative per equivalence
    // class suffices for race detection).
    std::sort(accesses.begin(), accesses.end(),
              [](const Access &a, const Access &b) {
                  return a.key() < b.key();
              });
    accesses.erase(std::unique(accesses.begin(), accesses.end(),
                               [](const Access &a, const Access &b) {
                                   return a.key() == b.key();
                               }),
                   accesses.end());

    // Sweep in address order with a window of still-overlapping
    // candidates. Two accesses conflict when they overlap, come from
    // different tasklets in the same barrier round (no happens-
    // before), at least one writes, and no common mutex is held.
    std::sort(accesses.begin(), accesses.end(),
              [](const Access &a, const Access &b) {
                  return std::tie(a.space, a.addr, a.end) <
                         std::tie(b.space, b.addr, b.end);
              });

    constexpr std::uint64_t raceCap = 64; // per DPU, incl. uncounted
    std::uint64_t races = 0;
    std::vector<const Access *> window;
    for (const Access &a : accesses) {
        window.erase(
            std::remove_if(window.begin(), window.end(),
                           [&](const Access *w) {
                               return w->space != a.space ||
                                      w->end <= a.addr;
                           }),
            window.end());
        for (const Access *w : window) {
            if (w->tasklet == a.tasklet)
                continue;
            if (!w->write && !a.write)
                continue;
            if (w->round != a.round)
                continue; // ordered by an intervening barrier
            if ((w->lockset & a.lockset) != 0)
                continue; // consistently locked
            Finding f;
            f.kind = FindingKind::DataRace;
            f.dpu = dpu;
            f.tasklet = a.tasklet;
            f.otherTasklet = w->tasklet;
            f.space = a.space;
            f.addr = std::max(a.addr, w->addr);
            f.bytes = static_cast<std::uint32_t>(
                std::min(a.end, w->end) - f.addr);
            std::ostringstream os;
            os << (a.write ? "write" : "read") << " by tasklet "
               << a.tasklet << " races with "
               << (w->write ? "write" : "read") << " by tasklet "
               << w->tasklet << " at " << memSpaceName(a.space)
               << "+0x" << std::hex << f.addr << std::dec << " ("
               << f.bytes << " bytes, round " << a.round << ")";
            f.detail = os.str();
            emit(std::move(f));
            if (++races >= raceCap)
                return;
        }
        window.push_back(&a);
    }
}

} // namespace

const char *
dmaViolation(const upmem::TraceRecord &r, const upmem::DpuConfig &cfg)
{
    const std::uint32_t bytes = r.arg;
    if (bytes == 0)
        return "zero-length transfer";
    if (bytes % upmem::dmaGranularity != 0)
        return "size not a multiple of the 8-byte DMA granularity";
    if (bytes > upmem::dmaMaxBytes)
        return "size exceeds the 2048-byte hardware transfer maximum";
    const auto staging = std::max<Bytes>(
        upmem::dmaGranularity,
        cfg.wramChunkBytes &
            ~static_cast<Bytes>(upmem::dmaGranularity - 1));
    if (bytes > staging)
        return "transfer does not fit the WRAM staging buffer";
    if (r.addressed() && r.addr % upmem::dmaGranularity != 0)
        return "MRAM address not 8-byte aligned";
    return nullptr;
}

bool
CheckOptions::parseList(std::string_view list, CheckOptions &out,
                        std::string *error)
{
    CheckOptions sel;
    if (list.empty() || list == "all") {
        out = sel;
        return true;
    }
    sel = CheckOptions{false, false, false, false};
    std::size_t pos = 0;
    while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string_view tok = list.substr(
            pos, comma == std::string_view::npos ? std::string_view::npos
                                                 : comma - pos);
        if (tok == "race") {
            sel.race = true;
        } else if (tok == "lock") {
            sel.lock = true;
        } else if (tok == "barrier") {
            sel.barrier = true;
        } else if (tok == "dma") {
            sel.dma = true;
        } else if (tok == "all") {
            sel = CheckOptions{};
        } else {
            if (error != nullptr) {
                *error = "unknown check family '" + std::string(tok) +
                         "' (expected race, lock, barrier, dma, all)";
            }
            return false;
        }
        if (comma == std::string_view::npos)
            break;
        pos = comma + 1;
    }
    out = sel;
    return true;
}

void
TraceChecker::enable(const CheckOptions &opts)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        opts_ = opts;
    }
    enabled_.store(opts.any(), std::memory_order_relaxed);
}

void
TraceChecker::disable()
{
    enabled_.store(false, std::memory_order_relaxed);
}

CheckOptions
TraceChecker::options() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return opts_;
}

void
TraceChecker::analyzeDpu(unsigned dpu,
                         const std::vector<upmem::TaskletTrace> &traces,
                         const upmem::DpuConfig &cfg)
{
    if (!enabled())
        return;
    const CheckOptions opts = options();

    DpuAnalysis a(opts, cfg, dpu);
    a.barrierSeqs.resize(traces.size());
    unsigned nonEmpty = 0;
    for (unsigned t = 0; t < traces.size(); ++t) {
        if (traces[t].empty())
            continue;
        ++nonEmpty;
        a.walkTasklet(t, traces[t]);
    }
    if (opts.barrier) {
        std::vector<bool> participants(traces.size());
        for (unsigned t = 0; t < traces.size(); ++t)
            participants[t] = !traces[t].empty();
        a.checkBarriers(participants);
    }
    if (opts.lock)
        a.checkLockGraph();
    if (opts.race)
        a.checkRaces();

    std::uint64_t newTotal = 0;
    for (const auto c : a.counts)
        newTotal += c;

    auto &m = telemetry::metrics();
    m.addCounter("analysis.dpus_checked");
    m.addCounter("analysis.traces_checked", nonEmpty);
    // An explicit zero distinguishes "checked and clean" from "never
    // checked" in the dump; per-kind counters stay sparse.
    m.addCounter("analysis.findings", newTotal);
    for (unsigned k = 0; k < numFindingKinds; ++k) {
        if (a.counts[k] > 0) {
            m.addCounter(std::string("analysis.findings.") +
                             findingKindName(static_cast<FindingKind>(k)),
                         a.counts[k]);
        }
    }

    std::lock_guard<std::mutex> lock(mutex_);
    ++report_.dpusChecked;
    report_.tracesChecked += nonEmpty;
    for (unsigned k = 0; k < numFindingKinds; ++k)
        report_.counts[k] += a.counts[k];
    for (auto &f : a.findings)
        storeFinding(report_.findings, std::move(f), maxStoredFindings);
    report_.dropped = report_.total() - report_.findings.size();
}

void
TraceChecker::injectFinding(Finding f)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++report_.counts[static_cast<unsigned>(f.kind)];
    storeFinding(report_.findings, std::move(f), maxStoredFindings);
    report_.dropped = report_.total() - report_.findings.size();
}

AnalysisReport
TraceChecker::report() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return report_;
}

std::uint64_t
TraceChecker::findingCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return report_.total();
}

void
TraceChecker::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    report_ = AnalysisReport{};
}

std::string
TraceChecker::reportJson() const
{
    const AnalysisReport rep = report();
    const CheckOptions opts = options();

    telemetry::JsonWriter w;
    w.beginObject();
    w.key("schema").value("alpha-pim-analysis-v1");
    w.key("options").beginObject();
    w.key("race").value(opts.race);
    w.key("lock").value(opts.lock);
    w.key("barrier").value(opts.barrier);
    w.key("dma").value(opts.dma);
    w.endObject();
    w.key("dpus_checked").value(rep.dpusChecked);
    w.key("traces_checked").value(rep.tracesChecked);
    w.key("total_findings").value(rep.total());
    w.key("dropped").value(rep.dropped);
    w.key("counts").beginObject();
    for (unsigned k = 0; k < numFindingKinds; ++k) {
        w.key(findingKindName(static_cast<FindingKind>(k)))
            .value(rep.counts[k]);
    }
    w.endObject();
    w.key("findings").beginArray();
    for (const Finding &f : rep.findings) {
        w.beginObject();
        w.key("kind").value(findingKindName(f.kind));
        w.key("dpu").value(static_cast<std::uint64_t>(f.dpu));
        w.key("tasklet").value(static_cast<std::uint64_t>(f.tasklet));
        if (f.otherTasklet != noTasklet) {
            w.key("other_tasklet")
                .value(static_cast<std::uint64_t>(f.otherTasklet));
        }
        if (f.space != MemSpace::None) {
            w.key("space").value(memSpaceName(f.space));
            w.key("addr").value(f.addr);
            w.key("bytes").value(
                static_cast<std::uint64_t>(f.bytes));
        }
        w.key("id").value(static_cast<std::uint64_t>(f.id));
        w.key("detail").value(f.detail);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

bool
TraceChecker::writeReport(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << reportJson() << '\n';
    return out.good();
}

TraceChecker &
checker()
{
    static TraceChecker instance;
    return instance;
}

int
finalizeCheckReport(const std::string &report_path)
{
    const AnalysisReport report = checker().report();
    std::printf("\npim-verify: %llu finding(s) across %llu DPU "
                "launches checked\n",
                static_cast<unsigned long long>(report.total()),
                static_cast<unsigned long long>(report.dpusChecked));
    for (const Finding &f : report.findings)
        std::printf("  %s\n", describeFinding(f).c_str());
    if (report.dropped > 0)
        std::printf("  ... and %llu more (not retained)\n",
                    static_cast<unsigned long long>(report.dropped));
    if (!report_path.empty()) {
        if (!checker().writeReport(report_path)) {
            std::fprintf(stderr, "cannot write check report '%s'\n",
                         report_path.c_str());
            return 2;
        }
        inform("wrote pim-verify report to %s", report_path.c_str());
    }
    return report.total() > 0 ? 3 : 0;
}

std::string
describeFinding(const Finding &f)
{
    std::ostringstream os;
    os << findingKindName(f.kind) << " dpu=" << f.dpu
       << " tasklet=" << f.tasklet;
    if (f.otherTasklet != noTasklet)
        os << "/" << f.otherTasklet;
    os << ": " << f.detail;
    return os.str();
}

} // namespace alphapim::analysis
