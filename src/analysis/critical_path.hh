/**
 * @file
 * Launch dependency DAG and critical-path extraction, plus the
 * what-if overlap estimator that sizes ROADMAP item 1 (async
 * pipelined execution) before any engine code changes.
 *
 * The DAG mirrors the execution model: every launch is a
 * load -> kernel -> retrieve -> merge spine with strict barriers,
 * chained merge_{k-1} -> load_k across iterations; per-rank transfer
 * spans and per-DPU kernel spans hang off the spine in parallel.
 * The critical path through that DAG *is* the serial model time --
 * the interesting output is the per-phase attribution and how much
 * of the path the what-if bounds could hide:
 *
 *  - rank overlap:    kernel k runs concurrently with its own
 *                     load + retrieve (rank i's kernel under rank
 *                     i+-1's transfers), merges stay serial:
 *                     T = sum(max(c_k, l_k + r_k) + m_k)
 *  - double buffering: the next iteration's input-vector load runs
 *                     under this iteration's host merge:
 *                     T = l_1 + sum(c_k + r_k)
 *                       + sum_{k<n} max(m_k, l_{k+1}) + m_n
 *  - combined:        full pipelining, throughput-bound on the
 *                     busiest resource:
 *                     T = max(sum c, sum (l + r), sum m)
 *
 * All three are Amdahl-style lower bounds on time (upper bounds on
 * speedup); combined <= rank overlap <= serial always holds.
 */

#ifndef ALPHA_PIM_ANALYSIS_CRITICAL_PATH_HH
#define ALPHA_PIM_ANALYSIS_CRITICAL_PATH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "telemetry/timeline.hh"

namespace alphapim::analysis
{

/** Phase bucket of one DAG node. */
enum class PathPhase
{
    Load,
    Kernel,
    Retrieve,
    Merge,
    Other,
};

inline constexpr std::size_t numPathPhases = 5;

/** Stable lowercase name ("load", "kernel", ...). */
const char *pathPhaseName(PathPhase phase);

/** One node of the launch dependency DAG. */
struct DagNode
{
    std::string label;
    PathPhase phase = PathPhase::Other;
    Seconds duration = 0.0;
    std::size_t launch = 0; ///< owning launch index
    int rank = -1;          ///< rank/DPU detail nodes; -1 for spine
};

/** A launch dependency DAG. Nodes are added explicitly (synthetic
 * test fixtures) or via buildLaunchDag (reconstructed timelines);
 * edges must be acyclic. */
class LaunchDag
{
  public:
    /** Add a node; returns its index. */
    std::size_t addNode(std::string label, PathPhase phase,
                        Seconds duration, std::size_t launch = 0,
                        int rank = -1);

    /** Add a dependency edge `from` -> `to`. */
    void addEdge(std::size_t from, std::size_t to);

    const std::vector<DagNode> &nodes() const { return nodes_; }

    const std::vector<std::pair<std::size_t, std::size_t>> &
    edges() const
    {
        return edges_;
    }

  private:
    std::vector<DagNode> nodes_;
    std::vector<std::pair<std::size_t, std::size_t>> edges_;
};

/** The longest (time-weighted) path through a LaunchDag. */
struct CriticalPath
{
    Seconds length = 0.0;

    /** Node indices along the path, in execution order. */
    std::vector<std::size_t> nodes;

    /** Path time attributed to each PathPhase (index by the enum). */
    Seconds phaseSeconds[numPathPhases] = {};

    double
    phaseFraction(PathPhase phase) const
    {
        return length > 0.0
            ? phaseSeconds[static_cast<std::size_t>(phase)] / length
            : 0.0;
    }

    /** Fraction of the path spent in transfers (load + retrieve). */
    double
    transferFraction() const
    {
        return phaseFraction(PathPhase::Load) +
               phaseFraction(PathPhase::Retrieve);
    }
};

/** Longest path via topological order; deterministic tie-breaking
 * (smaller node index wins). Empty DAGs yield an empty path. */
CriticalPath computeCriticalPath(const LaunchDag &dag);

/** Per-launch phase durations, the input to the what-if bounds. */
struct LaunchPhases
{
    Seconds load = 0.0;
    Seconds kernel = 0.0;
    Seconds retrieve = 0.0;
    Seconds merge = 0.0;

    Seconds total() const
    {
        return load + kernel + retrieve + merge;
    }
};

/** What-if overlap bounds (seconds and speedups vs serial). */
struct WhatIf
{
    Seconds serialSeconds = 0.0;
    Seconds rankOverlapSeconds = 0.0;
    Seconds doubleBufferSeconds = 0.0;
    Seconds combinedSeconds = 0.0;

    double
    rankOverlapSpeedup() const
    {
        return rankOverlapSeconds > 0.0
            ? serialSeconds / rankOverlapSeconds
            : 1.0;
    }
    double
    doubleBufferSpeedup() const
    {
        return doubleBufferSeconds > 0.0
            ? serialSeconds / doubleBufferSeconds
            : 1.0;
    }
    double
    combinedSpeedup() const
    {
        return combinedSeconds > 0.0
            ? serialSeconds / combinedSeconds
            : 1.0;
    }
};

/** Evaluate the three overlap bounds for a launch sequence. */
WhatIf estimateOverlap(const std::vector<LaunchPhases> &launches);

/** Phase breakdown of every launch in a reconstructed timeline. */
std::vector<LaunchPhases>
launchPhases(const telemetry::Timeline &timeline);

/** Build the launch dependency DAG of a reconstructed timeline:
 * the phase spine per launch with iteration chaining, plus per-rank
 * scatter/broadcast/gather and per-DPU kernel detail nodes. */
LaunchDag buildLaunchDag(const telemetry::Timeline &timeline);

} // namespace alphapim::analysis

#endif // ALPHA_PIM_ANALYSIS_CRITICAL_PATH_HH
