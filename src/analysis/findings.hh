/**
 * @file
 * Finding taxonomy of the pim-verify trace analyzer: the defect
 * kinds the checker can report, and the structured record attached
 * to each occurrence. Findings are plain data; rendering (console
 * summary, JSON report) lives in checker.cc.
 */

#ifndef ALPHA_PIM_ANALYSIS_FINDINGS_HH
#define ALPHA_PIM_ANALYSIS_FINDINGS_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace alphapim::analysis
{

/** Defect classes pim-verify reports. */
enum class FindingKind : std::uint8_t
{
    DataRace,          ///< unsynchronized conflicting accesses
    DoubleLock,        ///< locking a mutex already held
    UnlockUnheld,      ///< unlocking a mutex not held
    LockHeldAtExit,    ///< mutex still held at end of trace
    LockOrderCycle,    ///< cyclic lock acquisition order (deadlock)
    BarrierDivergence, ///< tasklets disagree on the barrier sequence
    IllegalDma,        ///< DMA violating size/alignment/staging rules
    NumKinds
};

inline constexpr unsigned numFindingKinds =
    static_cast<unsigned>(FindingKind::NumKinds);

/** Stable lower_snake name of a finding kind (metric / JSON key). */
const char *findingKindName(FindingKind kind);

/** Address space of the access a finding refers to. */
enum class MemSpace : std::uint8_t
{
    None, ///< finding is not about a memory access
    Wram,
    Mram,
};

/** Name of a memory space ("none" / "wram" / "mram"). */
const char *memSpaceName(MemSpace space);

/** Sentinel for "no tasklet" in Finding::otherTasklet. */
inline constexpr unsigned noTasklet = ~0u;

/** One reported defect occurrence. */
struct Finding
{
    FindingKind kind = FindingKind::DataRace;
    unsigned dpu = 0;
    unsigned tasklet = 0;
    /** Second tasklet of a pairwise finding (races); noTasklet
     * otherwise. */
    unsigned otherTasklet = noTasklet;
    MemSpace space = MemSpace::None;
    std::uint64_t addr = 0; ///< access address (when space != None)
    std::uint32_t bytes = 0; ///< access length (when space != None)
    std::uint32_t id = 0;    ///< mutex / barrier id (when relevant)
    std::string detail;      ///< human-readable one-liner
};

/**
 * Deterministic report ordering: (kind, dpu, tasklet, addr), then
 * every remaining field, so finding lists are byte-stable across
 * runs and diffable in CI.
 */
bool findingLess(const Finding &a, const Finding &b);

/** Full-field equality, used to deduplicate repeated findings. */
bool findingEquals(const Finding &a, const Finding &b);

/** Aggregated checker output. */
struct AnalysisReport
{
    std::vector<Finding> findings;
    std::array<std::uint64_t, numFindingKinds> counts{};
    std::uint64_t dpusChecked = 0;
    std::uint64_t tracesChecked = 0;
    /** Occurrences beyond the retention caps are counted but not
     * stored; this is counts total minus findings.size(). */
    std::uint64_t dropped = 0;

    /** Total occurrences across all kinds (including dropped). */
    std::uint64_t
    total() const
    {
        std::uint64_t n = 0;
        for (const auto c : counts)
            n += c;
        return n;
    }
};

} // namespace alphapim::analysis

#endif // ALPHA_PIM_ANALYSIS_FINDINGS_HH
