#include "critical_path.hh"

#include <algorithm>

namespace alphapim::analysis
{

const char *
pathPhaseName(PathPhase phase)
{
    switch (phase) {
      case PathPhase::Load:
        return "load";
      case PathPhase::Kernel:
        return "kernel";
      case PathPhase::Retrieve:
        return "retrieve";
      case PathPhase::Merge:
        return "merge";
      default:
        return "other";
    }
}

std::size_t
LaunchDag::addNode(std::string label, PathPhase phase,
                   Seconds duration, std::size_t launch, int rank)
{
    nodes_.push_back(
        {std::move(label), phase, duration, launch, rank});
    return nodes_.size() - 1;
}

void
LaunchDag::addEdge(std::size_t from, std::size_t to)
{
    edges_.emplace_back(from, to);
}

CriticalPath
computeCriticalPath(const LaunchDag &dag)
{
    CriticalPath path;
    const std::size_t n = dag.nodes().size();
    if (n == 0)
        return path;

    // Adjacency and in-degrees for Kahn's topological order.
    std::vector<std::vector<std::size_t>> preds(n);
    std::vector<std::vector<std::size_t>> succs(n);
    std::vector<std::size_t> indegree(n, 0);
    for (const auto &[from, to] : dag.edges()) {
        preds[to].push_back(from);
        succs[from].push_back(to);
        ++indegree[to];
    }
    std::vector<std::size_t> order;
    order.reserve(n);
    std::vector<std::size_t> ready;
    for (std::size_t i = 0; i < n; ++i)
        if (indegree[i] == 0)
            ready.push_back(i);
    while (!ready.empty()) {
        // Smallest index first: deterministic order.
        const auto it = std::min_element(ready.begin(), ready.end());
        const std::size_t node = *it;
        ready.erase(it);
        order.push_back(node);
        for (const std::size_t next : succs[node])
            if (--indegree[next] == 0)
                ready.push_back(next);
    }
    if (order.size() != n)
        return path; // cyclic input: no meaningful answer

    // Longest path; ties broken toward the smaller predecessor.
    std::vector<Seconds> finish(n, 0.0);
    std::vector<std::size_t> via(n, static_cast<std::size_t>(-1));
    for (const std::size_t node : order) {
        Seconds best = 0.0;
        std::size_t best_pred = static_cast<std::size_t>(-1);
        for (const std::size_t pred : preds[node]) {
            if (finish[pred] > best ||
                (finish[pred] == best &&
                 (best_pred == static_cast<std::size_t>(-1) ||
                  pred < best_pred))) {
                best = finish[pred];
                best_pred = pred;
            }
        }
        finish[node] = best + dag.nodes()[node].duration;
        via[node] = best_pred;
    }
    std::size_t tail = 0;
    for (std::size_t i = 1; i < n; ++i)
        if (finish[i] > finish[tail])
            tail = i;

    std::vector<std::size_t> chain;
    for (std::size_t node = tail;
         node != static_cast<std::size_t>(-1); node = via[node])
        chain.push_back(node);
    std::reverse(chain.begin(), chain.end());

    path.length = finish[tail];
    path.nodes = std::move(chain);
    for (const std::size_t node : path.nodes) {
        const DagNode &d = dag.nodes()[node];
        path.phaseSeconds[static_cast<std::size_t>(d.phase)] +=
            d.duration;
    }
    return path;
}

WhatIf
estimateOverlap(const std::vector<LaunchPhases> &launches)
{
    WhatIf w;
    if (launches.empty())
        return w;

    Seconds sum_kernel = 0.0;
    Seconds sum_transfer = 0.0;
    Seconds sum_merge = 0.0;
    for (const LaunchPhases &l : launches) {
        w.serialSeconds += l.total();
        w.rankOverlapSeconds +=
            std::max(l.kernel, l.load + l.retrieve) + l.merge;
        sum_kernel += l.kernel;
        sum_transfer += l.load + l.retrieve;
        sum_merge += l.merge;
    }

    // Double buffering: load k+1 hides under merge k; everything
    // else stays serial.
    w.doubleBufferSeconds = launches.front().load;
    for (std::size_t k = 0; k < launches.size(); ++k) {
        w.doubleBufferSeconds +=
            launches[k].kernel + launches[k].retrieve;
        if (k + 1 < launches.size())
            w.doubleBufferSeconds += std::max(
                launches[k].merge, launches[k + 1].load);
        else
            w.doubleBufferSeconds += launches[k].merge;
    }

    w.combinedSeconds =
        std::max({sum_kernel, sum_transfer, sum_merge});
    return w;
}

std::vector<LaunchPhases>
launchPhases(const telemetry::Timeline &timeline)
{
    std::vector<LaunchPhases> out;
    out.reserve(timeline.launches.size());
    for (const telemetry::LaunchWindow &l : timeline.launches) {
        LaunchPhases p;
        p.load = l.load;
        p.kernel = l.kernel_time;
        p.retrieve = l.retrieve;
        p.merge = l.merge;
        out.push_back(p);
    }
    return out;
}

namespace
{

/** Launch index owning model time `t`; npos when between launches. */
std::size_t
launchAt(const std::vector<telemetry::LaunchWindow> &launches,
         Seconds t)
{
    for (std::size_t k = launches.size(); k-- > 0;) {
        if (launches[k].start <= t && t <= launches[k].end())
            return k;
    }
    return static_cast<std::size_t>(-1);
}

} // namespace

LaunchDag
buildLaunchDag(const telemetry::Timeline &timeline)
{
    LaunchDag dag;
    const auto &launches = timeline.launches;
    if (launches.empty())
        return dag;

    // Phase spine: load -> kernel -> retrieve -> merge per launch,
    // chained across launches. Zero-duration phases stay as nodes so
    // the chain structure is uniform.
    struct Spine
    {
        std::size_t load, kernel, retrieve, merge;
    };
    std::vector<Spine> spine(launches.size());
    for (std::size_t k = 0; k < launches.size(); ++k) {
        const std::string tag = "#" + std::to_string(k);
        spine[k].load = dag.addNode("load" + tag, PathPhase::Load,
                                    launches[k].load, k);
        spine[k].kernel = dag.addNode(
            "kernel" + tag, PathPhase::Kernel,
            launches[k].kernel_time, k);
        spine[k].retrieve =
            dag.addNode("retrieve" + tag, PathPhase::Retrieve,
                        launches[k].retrieve, k);
        spine[k].merge = dag.addNode(
            "merge" + tag, PathPhase::Merge, launches[k].merge, k);
        dag.addEdge(spine[k].load, spine[k].kernel);
        dag.addEdge(spine[k].kernel, spine[k].retrieve);
        dag.addEdge(spine[k].retrieve, spine[k].merge);
        if (k > 0)
            dag.addEdge(spine[k - 1].merge, spine[k].load);
    }

    // Per-rank transfer detail: scatter/broadcast bus spans depend
    // on the previous merge and gate the kernel; gather spans depend
    // on the kernel and gate the merge. Their bus time is bounded by
    // the enclosing phase, so the spine stays critical -- the detail
    // nodes carry the per-rank attribution.
    for (const auto &[rank, spans] : timeline.rankSpans) {
        for (const telemetry::TimelineSpan &s : spans) {
            const std::size_t k = launchAt(launches, s.mid());
            if (k == static_cast<std::size_t>(-1))
                continue;
            const bool gather = s.name == "gather";
            const std::size_t node = dag.addNode(
                s.name + "#" + std::to_string(k) + "/r" +
                    std::to_string(rank),
                gather ? PathPhase::Retrieve : PathPhase::Load,
                s.duration, k, static_cast<int>(rank));
            if (gather) {
                dag.addEdge(spine[k].kernel, node);
                dag.addEdge(node, spine[k].merge);
            } else {
                if (k > 0)
                    dag.addEdge(spine[k - 1].merge, node);
                dag.addEdge(node, spine[k].kernel);
            }
        }
    }

    // Per-DPU kernel detail: gated by the launch's load, gating its
    // retrieve. Bounded by the kernel phase (launch overhead + max
    // cycles), so again never longer than the spine.
    for (const auto &[dpu, spans] : timeline.dpuSpans) {
        for (const telemetry::TimelineSpan &s : spans) {
            const std::size_t k = launchAt(launches, s.mid());
            if (k == static_cast<std::size_t>(-1))
                continue;
            const std::size_t node = dag.addNode(
                "dpu" + std::to_string(dpu) + "#" +
                    std::to_string(k),
                PathPhase::Kernel, s.duration, k,
                static_cast<int>(dpu));
            dag.addEdge(spine[k].load, node);
            dag.addEdge(node, spine[k].retrieve);
        }
    }
    return dag;
}

} // namespace alphapim::analysis
