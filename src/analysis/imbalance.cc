#include "imbalance.hh"

#include <algorithm>
#include <cmath>

#include "common/stats.hh"
#include "telemetry/metrics.hh"

namespace alphapim::analysis
{

namespace
{

/**
 * Local stall-reason name table. alpha_upmem links against
 * alpha_analysis, so this library cannot call upmem's
 * stallReasonName() without a cycle; the table mirrors it and the
 * static_assert keeps the two in lockstep.
 */
constexpr const char *kStallNames[] = {
    "memory",
    "revolver",
    "rf-hazard",
    "sync",
};
static_assert(sizeof(kStallNames) / sizeof(kStallNames[0]) ==
                  static_cast<std::size_t>(upmem::StallReason::NumReasons),
              "stall name table out of sync with StallReason");

/** Gini coefficient of a non-negative sample vector (0 when the sum
 * is 0 or fewer than two samples). */
double
giniCoefficient(std::vector<double> values)
{
    if (values.size() < 2)
        return 0.0;
    std::sort(values.begin(), values.end());
    double sum = 0.0;
    double weighted = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
        sum += values[i];
        weighted += static_cast<double>(i + 1) * values[i];
    }
    if (sum <= 0.0)
        return 0.0;
    const double n = static_cast<double>(values.size());
    return 2.0 * weighted / (n * sum) - (n + 1.0) / n;
}

/** Cycle-weighted accumulator for run-level skew averages. */
struct WeightedMean
{
    double sum = 0.0;
    double weight = 0.0;

    void
    add(double value, double w)
    {
        sum += value * w;
        weight += w;
    }

    double
    value() const
    {
        return weight > 0.0 ? sum / weight : 0.0;
    }
};

} // namespace

SkewStats
computeSkew(const std::vector<double> &values)
{
    SkewStats s;
    s.count = values.size();
    if (values.empty())
        return s;
    RunningStats running;
    for (double v : values) {
        running.add(v);
        s.max = std::max(s.max, v);
    }
    s.mean = running.mean();
    s.cov = s.mean > 0.0 ? running.stddev() / s.mean : 0.0;
    s.gini = giniCoefficient(values);
    s.p99 = percentile(values, 99.0);
    return s;
}

LaunchImbalance
computeLaunchImbalance(const std::string &kernel,
                       const std::vector<upmem::DpuProfile> &profiles,
                       const std::vector<sparse::PartitionShare> &shares,
                       const upmem::DpuConfig &cfg)
{
    LaunchImbalance li;
    li.kernel = kernel;
    li.dpus = static_cast<unsigned>(profiles.size());
    if (profiles.empty())
        return li;

    std::vector<double> cycles, active, mem_stall;
    cycles.reserve(profiles.size());
    active.reserve(profiles.size());
    mem_stall.reserve(profiles.size());
    std::uint64_t total_instr = 0;
    double total_bytes = 0.0;
    for (const auto &p : profiles) {
        cycles.push_back(static_cast<double>(p.totalCycles));
        active.push_back(p.avgActiveThreads());
        mem_stall.push_back(p.stallFraction(upmem::StallReason::Memory));
        total_instr += p.totalInstructions();
        total_bytes +=
            static_cast<double>(p.mramReadBytes + p.mramWriteBytes);
    }
    li.cycles = computeSkew(cycles);
    li.activeThreads = computeSkew(active);
    li.memStallFraction = computeSkew(mem_stall);

    const bool joined = shares.size() == profiles.size();
    if (joined) {
        li.nnz = computeSkew(sparse::shareNnz(shares));
        li.bytes = computeSkew(sparse::shareBytes(shares));
    }

    // Straggler: the critical DPU whose cycles set the launch wall
    // time. Ties break toward the lowest DPU id (deterministic).
    std::size_t straggler = 0;
    for (std::size_t d = 1; d < profiles.size(); ++d) {
        if (profiles[d].totalCycles > profiles[straggler].totalCycles)
            straggler = d;
    }
    const auto &crit = profiles[straggler];
    li.stragglerDpu = static_cast<unsigned>(straggler);
    li.stragglerCyclesOverMean = li.cycles.maxOverMean();
    li.rebalanceSpeedup = li.cycles.maxOverMean();
    std::size_t worst_reason = 0;
    for (std::size_t r = 1; r < crit.stallCycles.size(); ++r) {
        if (crit.stallCycles[r] > crit.stallCycles[worst_reason])
            worst_reason = r;
    }
    if (crit.stallCycles[worst_reason] > 0) {
        li.stragglerStall = kStallNames[worst_reason];
        li.stragglerStallFraction = crit.stallFraction(
            static_cast<upmem::StallReason>(worst_reason));
    }
    if (joined && li.nnz.mean > 0.0) {
        li.stragglerNnzOverMean =
            static_cast<double>(shares[straggler].nnz) / li.nnz.mean;
    }

    li.totalInstructions = static_cast<double>(total_instr);
    li.mramBytes = total_bytes;
    li.clockHz = cfg.clockHz;

    // Roofline: intensity in instructions per MRAM byte against the
    // fleet's pipeline (1 dispatch/cycle/DPU) and MRAM streaming
    // (dmaBytesPerCycle/DPU) ceilings. A launch that moved no bytes
    // sits at infinite intensity; report intensity 0 with the
    // compute-bound classification.
    auto &roof = li.roofline;
    const double fleet = static_cast<double>(profiles.size());
    roof.pipelineCeilingOpsPerSec = fleet * cfg.clockHz;
    roof.ridgeIntensity =
        cfg.dmaBytesPerCycle > 0.0 ? 1.0 / cfg.dmaBytesPerCycle : 0.0;
    if (total_bytes > 0.0) {
        roof.opIntensity = static_cast<double>(total_instr) / total_bytes;
        roof.bandwidthCeilingOpsPerSec =
            roof.opIntensity * fleet * cfg.dmaBytesPerCycle * cfg.clockHz;
        roof.memoryBound = roof.opIntensity < roof.ridgeIntensity;
    } else {
        roof.bandwidthCeilingOpsPerSec = roof.pipelineCeilingOpsPerSec;
        roof.memoryBound = false;
    }
    if (li.cycles.max > 0.0 && cfg.clockHz > 0.0) {
        const double seconds = li.cycles.max / cfg.clockHz;
        roof.achievedOpsPerSec =
            static_cast<double>(total_instr) / seconds;
    }
    return li;
}

void
ImbalanceObserver::setEnabled(bool on)
{
    enabled_.store(on, std::memory_order_relaxed);
}

void
ImbalanceObserver::setLaunchContext(
    std::string kernel, std::vector<sparse::PartitionShare> shares)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    pendingKernel_ = std::move(kernel);
    pendingShares_ = std::move(shares);
    hasPending_ = true;
}

void
ImbalanceObserver::recordLaunch(
    const std::vector<upmem::DpuProfile> &profiles,
    const upmem::DpuConfig &cfg)
{
    if (!enabled())
        return;
    std::string kernel;
    std::vector<sparse::PartitionShare> shares;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (hasPending_) {
            kernel = std::move(pendingKernel_);
            shares = std::move(pendingShares_);
            pendingKernel_.clear();
            pendingShares_.clear();
            hasPending_ = false;
        }
    }
    LaunchImbalance li =
        computeLaunchImbalance(kernel, profiles, shares, cfg);

    auto &m = telemetry::metrics();
    if (m.enabled()) {
        m.addCounter("imbalance.launches");
        m.addSample("imbalance.straggler_factor",
                    li.stragglerCyclesOverMean);
        m.addSample("imbalance.cycles_gini", li.cycles.gini);
        m.addSample("imbalance.cycles_cov", li.cycles.cov);
        if (li.nnz.count > 0)
            m.addSample("imbalance.nnz_max_over_mean",
                        li.nnz.maxOverMean());
        m.addSample("roofline.op_intensity", li.roofline.opIntensity);
        m.addSample("roofline.achieved_ops_per_sec",
                    li.roofline.achievedOpsPerSec);
        if (li.roofline.memoryBound)
            m.addCounter("roofline.memory_bound_launches");
    }

    std::lock_guard<std::mutex> lock(mutex_);
    launches_.push_back(std::move(li));
}

void
ImbalanceObserver::beginRun()
{
    std::lock_guard<std::mutex> lock(mutex_);
    launches_.clear();
    pendingKernel_.clear();
    pendingShares_.clear();
    hasPending_ = false;
}

std::vector<LaunchImbalance>
ImbalanceObserver::launches() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return launches_;
}

RunImbalance
ImbalanceObserver::collectRun() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    RunImbalance run;
    run.launches = launches_.size();
    if (launches_.empty())
        return run;

    double sum_max_cycles = 0.0;
    double sum_mean_cycles = 0.0;
    double total_instr = 0.0;
    double total_bytes = 0.0;
    double memory_bound = 0.0;
    double clock = 0.0;
    WeightedMean gini, cov, p99, nnz_gini, nnz_max, threads_cov,
        stall_cov;
    const LaunchImbalance *worst = nullptr;
    for (const auto &li : launches_) {
        // Weight each launch by its total DPU-cycles of work so big
        // launches dominate the run-level skew averages.
        const double work =
            li.cycles.mean * static_cast<double>(li.cycles.count);
        sum_max_cycles += li.cycles.max;
        sum_mean_cycles += li.cycles.mean;
        total_instr += li.totalInstructions;
        total_bytes += li.mramBytes;
        clock = std::max(clock, li.clockHz);
        gini.add(li.cycles.gini, work);
        cov.add(li.cycles.cov, work);
        p99.add(li.cycles.p99OverMean(), work);
        if (li.nnz.count > 0) {
            nnz_gini.add(li.nnz.gini, work);
            nnz_max.add(li.nnz.maxOverMean(), work);
        }
        threads_cov.add(li.activeThreads.cov, work);
        stall_cov.add(li.memStallFraction.cov, work);
        if (li.roofline.memoryBound)
            memory_bound += 1.0;
        if (!worst ||
            li.stragglerCyclesOverMean > worst->stragglerCyclesOverMean)
            worst = &li;
        run.roofline.pipelineCeilingOpsPerSec =
            std::max(run.roofline.pipelineCeilingOpsPerSec,
                     li.roofline.pipelineCeilingOpsPerSec);
        run.roofline.ridgeIntensity = li.roofline.ridgeIntensity;
    }
    run.stragglerFactor =
        sum_mean_cycles > 0.0 ? sum_max_cycles / sum_mean_cycles : 1.0;
    run.cyclesGini = gini.value();
    run.cyclesCov = cov.value();
    run.cyclesP99OverMean = p99.value();
    run.nnzGini = nnz_gini.value();
    run.nnzMaxOverMean = nnz_max.value();
    run.activeThreadsCov = threads_cov.value();
    run.memStallCov = stall_cov.value();
    if (worst) {
        run.stragglerKernel = worst->kernel;
        run.stragglerDpu = worst->stragglerDpu;
        run.stragglerCyclesOverMean = worst->stragglerCyclesOverMean;
        run.stragglerStall = worst->stragglerStall;
        run.stragglerStallFraction = worst->stragglerStallFraction;
        run.stragglerNnzOverMean = worst->stragglerNnzOverMean;
    }
    if (clock > 0.0) {
        run.kernelSeconds = sum_max_cycles / clock;
        run.leveledKernelSeconds = sum_mean_cycles / clock;
    }
    if (total_bytes > 0.0)
        run.roofline.opIntensity = total_instr / total_bytes;
    if (run.kernelSeconds > 0.0)
        run.roofline.achievedOpsPerSec = total_instr / run.kernelSeconds;
    run.roofline.memoryBoundFraction =
        memory_bound / static_cast<double>(launches_.size());
    return run;
}

ImbalanceObserver &
imbalance()
{
    static ImbalanceObserver observer;
    return observer;
}

} // namespace alphapim::analysis
