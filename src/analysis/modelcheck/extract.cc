#include "analysis/modelcheck/extract.hh"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "analysis/capture.hh"
#include "apps/graph_apps.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "sparse/generators.hh"

namespace alphapim::analysis::modelcheck
{

namespace
{

upmem::SystemConfig
smallConfig(const ExtractOptions &o)
{
    upmem::SystemConfig cfg;
    cfg.numDpus = o.dpus;
    cfg.dpu.tasklets = o.tasklets;
    return cfg;
}

sparse::CooMatrix<float>
tinyGraph(const ExtractOptions &o, bool weighted)
{
    Rng rng(o.seed);
    const sparse::EdgeList list =
        sparse::generateErdosRenyi(o.vertices, o.edges, rng);
    sparse::CooMatrix<float> a = sparse::edgeListToSymmetricCoo(list);
    if (weighted)
        a = sparse::assignSymmetricWeights(a, 1.0f, 8.0f, rng);
    return a;
}

/** Half-full input vector for direct kernel runs. */
template <typename T>
sparse::SparseVector<T>
tinyVector(NodeId dim, double density)
{
    sparse::SparseVector<T> x(dim);
    const double step = density > 0 ? 1.0 / density : dim + 1.0;
    for (double i = 0; i < dim; i += step)
        x.append(static_cast<NodeId>(i), static_cast<T>(1));
    return x;
}

/** Fold captured launches into deduplicated skeletons + lint. */
void
foldLaunches(Extraction &out,
             const std::vector<CapturedLaunch> &launches,
             const upmem::DpuConfig &cfg, const std::string &subject)
{
    std::unordered_map<std::uint64_t, std::size_t> byFingerprint;
    for (const CapturedLaunch &launch : launches) {
        const unsigned l = out.launches++;
        for (unsigned dpu = 0; dpu < launch.dpuTraces.size(); ++dpu) {
            SkeletonBuild build = buildSkeleton(
                dpu, launch.dpuTraces[dpu], cfg,
                subject + " launch " + std::to_string(l) + " dpu " +
                    std::to_string(dpu));
            out.lintFindings.insert(
                out.lintFindings.end(),
                std::make_move_iterator(build.lintFindings.begin()),
                std::make_move_iterator(build.lintFindings.end()));
            if (build.skeleton.tasklets.empty())
                continue; // this DPU had no work in this launch
            ++out.dpuPrograms;
            const std::uint64_t fp = build.skeleton.fingerprint();
            const auto it = byFingerprint.find(fp);
            if (it != byFingerprint.end()) {
                ++out.skeletons[it->second].occurrences;
                continue;
            }
            byFingerprint.emplace(fp, out.skeletons.size());
            out.skeletons.push_back({std::move(build.skeleton), 1});
        }
    }
    std::sort(out.lintFindings.begin(), out.lintFindings.end(),
              findingLess);
    out.lintFindings.erase(
        std::unique(out.lintFindings.begin(), out.lintFindings.end(),
                    findingEquals),
        out.lintFindings.end());
}

/** Run `subject` under the capture tap and fold what it launched. */
template <typename Fn>
Extraction
captureSubject(const upmem::UpmemSystem &sys,
               const std::string &subject, Fn &&run)
{
    Extraction out;
    capture().start(/*skip_replay=*/true);
    run();
    const std::vector<CapturedLaunch> launches = capture().stop();
    foldLaunches(out, launches, sys.config().dpu, subject);
    return out;
}

} // namespace

Extraction
extractKernelSkeletons(core::KernelVariant variant,
                       const ExtractOptions &opts)
{
    const upmem::UpmemSystem sys(smallConfig(opts));
    const sparse::CooMatrix<float> a = tinyGraph(opts, false);
    const auto kernel = core::makeKernel<core::IntPlusTimes>(
        variant, sys, a, opts.dpus);
    const auto x = tinyVector<core::IntPlusTimes::Value>(
        a.numRows(), opts.xDensity);
    return captureSubject(sys, core::kernelVariantName(variant),
                          [&] { (void)kernel->run(x); });
}

const std::vector<std::string> &
knownApps()
{
    static const std::vector<std::string> apps = {"bfs", "sssp", "ppr",
                                                  "cc"};
    return apps;
}

Extraction
extractAppSkeletons(const std::string &app,
                    core::MxvStrategy strategy,
                    const ExtractOptions &opts)
{
    const upmem::UpmemSystem sys(smallConfig(opts));
    const sparse::CooMatrix<float> a = tinyGraph(opts, app == "sssp");
    apps::AppConfig cfg;
    cfg.strategy = strategy;
    cfg.dpus = opts.dpus;
    const std::string subject =
        app + "/" + core::mxvStrategyName(strategy);
    if (app == "bfs") {
        return captureSubject(
            sys, subject, [&] { (void)apps::runBfs(sys, a, 0, cfg); });
    }
    if (app == "sssp") {
        return captureSubject(
            sys, subject, [&] { (void)apps::runSssp(sys, a, 0, cfg); });
    }
    if (app == "ppr") {
        return captureSubject(
            sys, subject, [&] { (void)apps::runPpr(sys, a, 0, cfg); });
    }
    if (app == "cc") {
        return captureSubject(sys, subject, [&] {
            (void)apps::runConnectedComponents(sys, a, cfg);
        });
    }
    fatal("unknown application '%s' (expected bfs/sssp/ppr/cc)",
          app.c_str());
}

} // namespace alphapim::analysis::modelcheck
