#include "analysis/modelcheck/explorer.hh"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

namespace alphapim::analysis::modelcheck
{

namespace
{

/** A transition is one tasklet about to take one event; (tasklet,
 * pc) identifies it across the states a sleep-set entry survives. */
struct TransitionId
{
    unsigned tasklet;
    std::uint32_t pc;

    bool
    operator==(const TransitionId &o) const
    {
        return tasklet == o.tasklet && pc == o.pc;
    }
};

/** One access executed on the current DFS path, with the clock of
 * its tasklet at execution time for happens-before tests. */
struct PathAccess
{
    unsigned tasklet; ///< skeleton index
    AccessRange range;
    std::vector<std::uint32_t> clock;
};

class Explorer
{
  public:
    Explorer(const SyncSkeleton &skel, const ExploreOptions &opts)
        : skel_(skel), opts_(opts), n_(skel.tasklets.size())
    {
        pc_.assign(n_, 0);
        clocks_.assign(n_, std::vector<std::uint32_t>(n_, 0));
    }

    ExploreResult
    run()
    {
        if (n_ > 0)
            dfs(0, {});
        result_.complete = !bounded_;
        std::sort(result_.findings.begin(), result_.findings.end(),
                  findingLess);
        result_.findings.erase(
            std::unique(result_.findings.begin(),
                        result_.findings.end(), findingEquals),
            result_.findings.end());
        return std::move(result_);
    }

  private:
    const SyncSkeleton &skel_;
    const ExploreOptions &opts_;
    const std::size_t n_;

    // Mutable exploration state, updated and undone along the path.
    std::vector<std::uint32_t> pc_;
    std::map<std::uint32_t, unsigned> owner_; ///< mutex -> tasklet
    std::vector<std::vector<std::uint32_t>> clocks_;
    std::map<std::uint32_t, std::vector<std::uint32_t>> mutexClock_;
    std::vector<PathAccess> accessLog_;

    ExploreResult result_;
    bool bounded_ = false;

    const SyncEvent &
    eventAt(unsigned i, std::uint32_t pc) const
    {
        return skel_.tasklets[i].events[pc];
    }

    bool
    finished(unsigned i) const
    {
        return pc_[i] >= skel_.tasklets[i].events.size();
    }

    /** Hardware tasklet id for finding attribution. */
    unsigned
    hwTasklet(unsigned i) const
    {
        return skel_.tasklets[i].tasklet;
    }

    /** True when tasklet i's next event can fire on its own. */
    bool
    enabledAlone(unsigned i) const
    {
        if (finished(i))
            return false;
        const SyncEvent &e = eventAt(i, pc_[i]);
        switch (e.kind) {
          case EventKind::Acquire:
            return owner_.find(e.id) == owner_.end();
          case EventKind::Barrier:
            return false; // only as a collective step
          default:
            return true;
        }
    }

    bool
    independent(const TransitionId &a, const TransitionId &b) const
    {
        if (a.tasklet == b.tasklet)
            return false;
        const SyncEvent &ea = eventAt(a.tasklet, a.pc);
        const SyncEvent &eb = eventAt(b.tasklet, b.pc);
        if (ea.kind == EventKind::Barrier ||
            eb.kind == EventKind::Barrier)
            return false;
        const bool aMutex = ea.kind != EventKind::Access;
        const bool bMutex = eb.kind != EventKind::Access;
        if (aMutex && bMutex)
            return ea.id != eb.id;
        if (aMutex || bMutex)
            return true; // mutex op vs plain access: commute
        for (const AccessRange &ra : ea.ranges) {
            for (const AccessRange &rb : eb.ranges) {
                if (ra.conflicts(rb))
                    return false;
            }
        }
        return true;
    }

    void
    store(Finding f)
    {
        // Dedup on insert: the same defect is rediscovered on every
        // schedule that reaches it.
        for (const Finding &g : result_.findings) {
            if (findingEquals(g, f))
                return;
        }
        if (result_.findings.size() < opts_.maxFindings)
            result_.findings.push_back(std::move(f));
    }

    void
    reportRace(unsigned i, const AccessRange &r, const PathAccess &p)
    {
        Finding f;
        f.kind = FindingKind::DataRace;
        f.dpu = skel_.dpu;
        f.tasklet = hwTasklet(i);
        f.otherTasklet = p.tasklet < n_ ? hwTasklet(p.tasklet)
                                        : p.tasklet;
        f.space = r.space;
        f.addr = std::max(r.addr, p.range.addr);
        f.bytes = static_cast<std::uint32_t>(
            std::min(r.end, p.range.end) - f.addr);
        std::ostringstream os;
        os << (r.write ? "write" : "read") << " by tasklet "
           << f.tasklet << " races with "
           << (p.range.write ? "write" : "read") << " by tasklet "
           << f.otherTasklet << " at " << memSpaceName(r.space)
           << "+0x" << std::hex << f.addr << std::dec << " ("
           << f.bytes << " bytes) in an explored schedule";
        f.detail = os.str();
        store(std::move(f));
    }

    /** Race check for tasklet i's segment against the path log:
     * unordered (no happens-before) conflicting accesses race. */
    void
    checkAccess(unsigned i, const SyncEvent &e)
    {
        for (const PathAccess &p : accessLog_) {
            if (p.tasklet == i)
                continue;
            // p happens-before the current event iff i has seen
            // p.tasklet's component at p's time.
            if (p.clock[p.tasklet] <= clocks_[i][p.tasklet])
                continue;
            for (const AccessRange &r : e.ranges) {
                if (r.conflicts(p.range))
                    reportRace(i, r, p);
            }
        }
    }

    // ---- deadlock classification ---------------------------------

    void
    reportDeadlock()
    {
        ++result_.stats.deadlockStates;

        // Wait-for edges tasklet -> owner for mutex-blocked tasklets.
        std::map<unsigned, std::pair<unsigned, std::uint32_t>> waits;
        std::vector<unsigned> atBarrier;
        std::vector<unsigned> done;
        for (unsigned i = 0; i < n_; ++i) {
            if (finished(i)) {
                done.push_back(i);
                continue;
            }
            const SyncEvent &e = eventAt(i, pc_[i]);
            if (e.kind == EventKind::Barrier) {
                atBarrier.push_back(i);
            } else if (e.kind == EventKind::Acquire) {
                const auto it = owner_.find(e.id);
                if (it != owner_.end())
                    waits[i] = {it->second, e.id};
            }
        }

        // Cyclic mutex waits take precedence: they deadlock even
        // with perfectly consistent barriers.
        for (const auto &[start, edge] : waits) {
            std::vector<unsigned> path{start};
            std::vector<std::uint32_t> ids{edge.second};
            unsigned cur = edge.first;
            while (true) {
                const auto cycleAt =
                    std::find(path.begin(), path.end(), cur);
                if (cycleAt != path.end()) {
                    Finding f;
                    f.kind = FindingKind::LockOrderCycle;
                    f.dpu = skel_.dpu;
                    f.tasklet = hwTasklet(*cycleAt);
                    f.id = ids[static_cast<std::size_t>(
                        cycleAt - path.begin())];
                    std::ostringstream os;
                    os << "reachable deadlock: cyclic mutex wait";
                    for (auto p = cycleAt; p != path.end(); ++p) {
                        os << " t" << hwTasklet(*p) << " waits m"
                           << ids[static_cast<std::size_t>(
                                  p - path.begin())]
                           << " ->";
                    }
                    os << " t" << hwTasklet(*cycleAt);
                    f.detail = os.str();
                    store(std::move(f));
                    return;
                }
                const auto next = waits.find(cur);
                if (next == waits.end())
                    break;
                path.push_back(cur);
                ids.push_back(next->second.second);
                cur = next->second.first;
            }
        }

        if (!atBarrier.empty()) {
            // Tasklets disagree on the barrier round: differing ids,
            // a partner that exited early, or one stuck on a mutex.
            Finding f;
            f.kind = FindingKind::BarrierDivergence;
            f.dpu = skel_.dpu;
            f.tasklet = hwTasklet(atBarrier.front());
            f.id = eventAt(atBarrier.front(), pc_[atBarrier.front()]).id;
            std::ostringstream os;
            os << "reachable barrier deadlock:";
            for (const unsigned i : atBarrier) {
                os << " t" << hwTasklet(i) << " waits at barrier "
                   << eventAt(i, pc_[i]).id << ";";
            }
            for (const unsigned i : done)
                os << " t" << hwTasklet(i) << " exited;";
            for (const auto &[i, edge] : waits) {
                os << " t" << hwTasklet(i) << " waits mutex "
                   << edge.second << ";";
            }
            f.detail = os.str();
            if (!done.empty()) {
                f.otherTasklet = hwTasklet(done.front());
            }
            store(std::move(f));
            return;
        }

        // Remaining case: an acyclic mutex wait on a tasklet that
        // exited while holding the lock (also linted statically as
        // LockHeldAtExit).
        if (!waits.empty()) {
            const auto &[i, edge] = *waits.begin();
            Finding f;
            f.kind = FindingKind::LockOrderCycle;
            f.dpu = skel_.dpu;
            f.tasklet = hwTasklet(i);
            f.id = edge.second;
            f.detail = "reachable deadlock: tasklet " +
                       std::to_string(hwTasklet(i)) +
                       " waits for mutex " +
                       std::to_string(edge.second) +
                       " that is never released";
            store(std::move(f));
        }
    }

    // ---- execution and undo --------------------------------------

    /** Undo record of one transition (or collective barrier). */
    struct Undo
    {
        bool barrier = false;
        unsigned tasklet = 0;
        std::vector<std::uint32_t> clock; ///< executing tasklet's
        std::vector<std::vector<std::uint32_t>> allClocks; ///< barrier
        std::vector<bool> advanced; ///< barrier: pcs it advanced
        bool tookMutex = false;
        bool releasedMutex = false;
        std::uint32_t mutex = 0;
        std::vector<std::uint32_t> mutexClock;
        bool hadMutexClock = false;
        std::size_t logSize = 0;
    };

    Undo
    execute(unsigned i)
    {
        const SyncEvent &e = eventAt(i, pc_[i]);
        Undo u;
        u.tasklet = i;
        u.clock = clocks_[i];
        u.logSize = accessLog_.size();

        switch (e.kind) {
          case EventKind::Acquire: {
            owner_.emplace(e.id, i);
            u.tookMutex = true;
            u.mutex = e.id;
            const auto it = mutexClock_.find(e.id);
            if (it != mutexClock_.end()) {
                for (std::size_t k = 0; k < n_; ++k) {
                    clocks_[i][k] =
                        std::max(clocks_[i][k], it->second[k]);
                }
            }
            break;
          }
          case EventKind::Release: {
            owner_.erase(e.id);
            u.releasedMutex = true;
            u.mutex = e.id;
            const auto it = mutexClock_.find(e.id);
            u.hadMutexClock = it != mutexClock_.end();
            if (u.hadMutexClock)
                u.mutexClock = it->second;
            break;
          }
          case EventKind::Access:
            break;
          case EventKind::Barrier:
            break; // handled by executeBarrier
        }

        ++clocks_[i][i];
        if (e.kind == EventKind::Release)
            mutexClock_[e.id] = clocks_[i];
        if (e.kind == EventKind::Access) {
            checkAccess(i, e);
            for (const AccessRange &r : e.ranges)
                accessLog_.push_back({i, r, clocks_[i]});
        }
        ++pc_[i];
        ++result_.stats.transitions;
        return u;
    }

    void
    undo(const Undo &u)
    {
        if (u.barrier) {
            for (unsigned i = 0; i < n_; ++i) {
                if (u.advanced[i])
                    --pc_[i];
            }
            clocks_ = u.allClocks;
            return;
        }
        --pc_[u.tasklet];
        clocks_[u.tasklet] = u.clock;
        accessLog_.resize(u.logSize);
        if (u.tookMutex)
            owner_.erase(u.mutex);
        if (u.releasedMutex) {
            owner_.emplace(u.mutex, u.tasklet);
            if (u.hadMutexClock)
                mutexClock_[u.mutex] = u.mutexClock;
            else
                mutexClock_.erase(u.mutex);
        }
    }

    Undo
    executeBarrier()
    {
        Undo u;
        u.barrier = true;
        u.allClocks = clocks_;
        u.advanced.assign(n_, false);

        // Join every participant's clock, then advance each: the
        // barrier orders everything before it against everything
        // after it, in every tasklet pair.
        std::vector<std::uint32_t> join(n_, 0);
        for (unsigned i = 0; i < n_; ++i) {
            if (finished(i))
                continue;
            for (std::size_t k = 0; k < n_; ++k)
                join[k] = std::max(join[k], clocks_[i][k]);
        }
        for (unsigned i = 0; i < n_; ++i) {
            if (finished(i))
                continue;
            clocks_[i] = join;
            ++clocks_[i][i];
            ++pc_[i];
            u.advanced[i] = true;
        }
        ++result_.stats.transitions;
        return u;
    }

    // ---- the search ----------------------------------------------

    void
    dfs(std::uint64_t depth, std::vector<TransitionId> sleep)
    {
        ++result_.stats.states;
        result_.stats.maxDepth =
            std::max(result_.stats.maxDepth, depth);
        if (result_.stats.states > opts_.maxStates) {
            bounded_ = true;
            return;
        }

        bool allDone = true;
        bool anyFinished = false;
        bool anyEnabled = false;
        bool allAtBarrier = true;
        bool barrierIdsAgree = true;
        std::uint32_t barrierId = 0;
        bool sawBarrier = false;
        for (unsigned i = 0; i < n_; ++i) {
            if (finished(i)) {
                anyFinished = true;
                continue;
            }
            allDone = false;
            const SyncEvent &e = eventAt(i, pc_[i]);
            if (e.kind == EventKind::Barrier) {
                if (!sawBarrier) {
                    sawBarrier = true;
                    barrierId = e.id;
                } else if (e.id != barrierId) {
                    barrierIdsAgree = false;
                }
            } else {
                allAtBarrier = false;
                if (enabledAlone(i))
                    anyEnabled = true;
            }
        }

        if (allDone) {
            ++result_.stats.schedules;
            return;
        }

        if (!anyEnabled) {
            // Either every live tasklet reached the same barrier
            // (one collective step, clearing the sleep set: barriers
            // commute with nothing) or the state is a deadlock -- a
            // finished tasklet never arrives, and differing ids mean
            // the rounds already diverged.
            if (allAtBarrier && sawBarrier && barrierIdsAgree &&
                !anyFinished) {
                const Undo u = executeBarrier();
                dfs(depth + 1, {});
                undo(u);
                return;
            }
            reportDeadlock();
            return;
        }

        std::vector<TransitionId> currentSleep = std::move(sleep);
        for (unsigned i = 0; i < n_; ++i) {
            if (!enabledAlone(i))
                continue;
            const TransitionId t{i, pc_[i]};
            if (opts_.reduction &&
                std::find(currentSleep.begin(), currentSleep.end(),
                          t) != currentSleep.end()) {
                ++result_.stats.sleepSkips;
                continue;
            }

            std::vector<TransitionId> childSleep;
            if (opts_.reduction) {
                for (const TransitionId &s : currentSleep) {
                    if (independent(s, t))
                        childSleep.push_back(s);
                }
            }

            const Undo u = execute(i);
            dfs(depth + 1, std::move(childSleep));
            undo(u);
            if (bounded_)
                return;
            if (opts_.reduction)
                currentSleep.push_back(t);
        }
    }

};

} // namespace

ExploreResult
explore(const SyncSkeleton &skeleton, const ExploreOptions &opts)
{
    Explorer e(skeleton, opts);
    return e.run();
}

} // namespace alphapim::analysis::modelcheck
