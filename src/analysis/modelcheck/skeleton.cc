#include "analysis/modelcheck/skeleton.hh"

#include <algorithm>
#include <tuple>
#include <utility>

#include "analysis/checker.hh"

namespace alphapim::analysis::modelcheck
{

namespace
{

using upmem::OpClass;
using upmem::RecordKind;
using upmem::TraceRecord;

/** Coalesce a segment's raw ranges: sort, then merge overlapping or
 * adjacent ranges of the same (space, direction). */
std::vector<AccessRange>
coalesce(std::vector<AccessRange> raw)
{
    const auto key = [](const AccessRange &r) {
        return std::make_tuple(r.space, r.write, r.addr, r.end);
    };
    std::sort(raw.begin(), raw.end(),
              [&](const AccessRange &a, const AccessRange &b) {
                  return key(a) < key(b);
              });
    std::vector<AccessRange> out;
    for (const AccessRange &r : raw) {
        if (!out.empty() && out.back().space == r.space &&
            out.back().write == r.write && r.addr <= out.back().end) {
            out.back().end = std::max(out.back().end, r.end);
            continue;
        }
        out.push_back(r);
    }
    return out;
}

/** Per-tasklet extraction walk: segments, sync events, static lint. */
struct TaskletWalk
{
    unsigned dpu;
    unsigned tasklet;
    const upmem::DpuConfig &cfg;
    TaskletSkeleton skeleton;
    std::vector<Finding> &lint;

    std::vector<AccessRange> segment;
    std::vector<std::uint32_t> held;

    TaskletWalk(unsigned d, unsigned t, const upmem::DpuConfig &c,
                std::vector<Finding> &l)
        : dpu(d), tasklet(t), cfg(c), lint(l)
    {
    }

    void
    emitLint(FindingKind kind, std::uint32_t id, std::string detail)
    {
        Finding f;
        f.kind = kind;
        f.dpu = dpu;
        f.tasklet = tasklet;
        f.id = id;
        f.detail = std::move(detail);
        lint.push_back(std::move(f));
    }

    void
    flushSegment()
    {
        if (segment.empty())
            return;
        SyncEvent e;
        e.kind = EventKind::Access;
        e.ranges = coalesce(std::move(segment));
        segment.clear();
        skeleton.events.push_back(std::move(e));
    }

    void
    sync(EventKind kind, std::uint32_t id)
    {
        flushSegment();
        SyncEvent e;
        e.kind = kind;
        e.id = id;
        skeleton.events.push_back(std::move(e));
    }

    void
    record(const TraceRecord &r)
    {
        switch (r.kind) {
          case RecordKind::Mutex: {
            const std::uint32_t id = r.arg;
            const auto it = std::find(held.begin(), held.end(), id);
            if (r.count == 1) { // lock
                if (it != held.end()) {
                    emitLint(FindingKind::DoubleLock, id,
                             "mutex " + std::to_string(id) +
                                 " locked while already held");
                    // Keep the model live: a faithful re-acquire
                    // self-deadlocks on every schedule, drowning the
                    // already-reported defect in derived findings.
                    break;
                }
                held.push_back(id);
                sync(EventKind::Acquire, id);
            } else { // unlock
                if (it == held.end()) {
                    emitLint(FindingKind::UnlockUnheld, id,
                             "mutex " + std::to_string(id) +
                                 " unlocked while not held");
                    break;
                }
                held.erase(it);
                sync(EventKind::Release, id);
            }
            break;
          }
          case RecordKind::Barrier:
            sync(EventKind::Barrier, r.arg);
            break;
          case RecordKind::Dma: {
            if (const char *why = dmaViolation(r, cfg)) {
                Finding f;
                f.kind = FindingKind::IllegalDma;
                f.dpu = dpu;
                f.tasklet = tasklet;
                f.space = MemSpace::Mram;
                f.addr = r.addressed() ? r.addr : 0;
                f.bytes = r.arg;
                f.detail = std::string(r.cls == OpClass::DmaWrite
                                           ? "DMA write"
                                           : "DMA read") +
                           " of " + std::to_string(r.arg) +
                           " bytes: " + why;
                lint.push_back(std::move(f));
            }
            if (r.addressed()) {
                segment.push_back({MemSpace::Mram, r.addr,
                                   r.addr + r.arg,
                                   r.cls == OpClass::DmaWrite});
            }
            break;
          }
          case RecordKind::Ops:
            if (r.addressed()) {
                segment.push_back({MemSpace::Wram, r.addr,
                                   r.addr + r.arg,
                                   r.cls == OpClass::StoreWram});
            }
            break;
        }
    }

    void
    finish()
    {
        flushSegment();
        for (const std::uint32_t id : held) {
            emitLint(FindingKind::LockHeldAtExit, id,
                     "mutex " + std::to_string(id) +
                         " still held at end of trace");
        }
    }
};

void
hashMix(std::uint64_t &h, std::uint64_t v)
{
    // FNV-1a over the value's bytes.
    for (unsigned i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xffu;
        h *= 0x100000001b3ull;
    }
}

} // namespace

std::uint64_t
SyncSkeleton::eventCount() const
{
    std::uint64_t n = 0;
    for (const TaskletSkeleton &t : tasklets)
        n += t.events.size();
    return n;
}

std::uint64_t
SyncSkeleton::fingerprint() const
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    hashMix(h, tasklets.size());
    for (const TaskletSkeleton &t : tasklets) {
        hashMix(h, 0x7461736bull); // tasklet delimiter
        for (const SyncEvent &e : t.events) {
            hashMix(h, static_cast<std::uint64_t>(e.kind));
            hashMix(h, e.id);
            for (const AccessRange &r : e.ranges) {
                hashMix(h, static_cast<std::uint64_t>(r.space) |
                               (r.write ? 0x100u : 0u));
                hashMix(h, r.addr);
                hashMix(h, r.end);
            }
        }
    }
    return h;
}

SkeletonBuild
buildSkeleton(unsigned dpu,
              const std::vector<upmem::TaskletTrace> &traces,
              const upmem::DpuConfig &cfg, std::string subject)
{
    SkeletonBuild build;
    build.skeleton.subject = std::move(subject);
    build.skeleton.dpu = dpu;
    for (unsigned t = 0; t < traces.size(); ++t) {
        if (traces[t].empty())
            continue;
        TaskletWalk walk(dpu, t, cfg, build.lintFindings);
        for (const TraceRecord &r : traces[t].records())
            walk.record(r);
        walk.finish();
        walk.skeleton.tasklet = t;
        build.skeleton.tasklets.push_back(std::move(walk.skeleton));
    }
    std::sort(build.lintFindings.begin(), build.lintFindings.end(),
              findingLess);
    build.lintFindings.erase(
        std::unique(build.lintFindings.begin(),
                    build.lintFindings.end(), findingEquals),
        build.lintFindings.end());
    return build;
}

} // namespace alphapim::analysis::modelcheck
