#include "analysis/modelcheck/protocol.hh"

#include <string>
#include <utility>

#include "common/logging.hh"

namespace alphapim::analysis::modelcheck
{

namespace
{

// Disjoint host/device buffer address map of the abstract protocol.
// Lengths are one "image" unit; only disjointness and aliasing
// matter to the explorer, not magnitudes.
constexpr std::uint64_t imageBytes = 0x800;
constexpr std::uint64_t slotBytes = 0x1000;

constexpr std::uint64_t
inputBuf(unsigned rank, unsigned buf)
{
    return 0x1000000ull + (rank * 2ull + buf) * slotBytes;
}

constexpr std::uint64_t
matrixBuf(unsigned rank)
{
    return 0x2000000ull + rank * slotBytes;
}

constexpr std::uint64_t
outputBuf(unsigned rank, unsigned buf)
{
    return 0x3000000ull + (rank * 2ull + buf) * slotBytes;
}

constexpr std::uint64_t
stagingBuf(unsigned rank, unsigned buf)
{
    return 0x4000000ull + (rank * 2ull + buf) * slotBytes;
}

constexpr std::uint64_t
resultSlice(unsigned rank, unsigned buf)
{
    return 0x5000000ull + buf * 0x100000ull + rank * slotBytes;
}

/**
 * Skeleton assembler: phases of concurrent accesses separated by
 * global barriers. Threads: 0 = loader, 1..ranks = rank kernels,
 * ranks+1 = retriever, ranks+2 = merger.
 */
struct ProtocolBuilder
{
    const ProtocolOptions &opt;
    SyncSkeleton skel;
    std::uint32_t nextBarrier = 0;

    unsigned loader = 0;
    unsigned retriever;
    unsigned merger;

    explicit ProtocolBuilder(const ProtocolOptions &o) : opt(o)
    {
        retriever = o.ranks + 1;
        merger = o.ranks + 2;
        skel.tasklets.resize(o.ranks + 3);
        for (unsigned t = 0; t < skel.tasklets.size(); ++t)
            skel.tasklets[t].tasklet = t;
    }

    unsigned
    kernelThread(unsigned rank) const
    {
        return 1 + rank;
    }

    /** Collapse double-buffer parity under the seeded defect. */
    unsigned
    buf(unsigned b) const
    {
        return opt.singleBuffer ? 0 : b;
    }

    /** Alias all staging under the seeded defect. */
    unsigned
    stagingRank(unsigned rank) const
    {
        return opt.sharedStaging ? 0 : rank;
    }

    void
    access(unsigned thread, std::uint64_t addr, bool write,
           std::uint64_t bytes = imageBytes)
    {
        SyncEvent e;
        e.kind = EventKind::Access;
        e.ranges.push_back(
            {MemSpace::Mram, addr, addr + bytes, write});
        skel.tasklets[thread].events.push_back(std::move(e));
    }

    /** End the phase: every thread arrives at one fresh barrier;
     * `skip` (noTasklet = nobody) models a dropped barrier wait. */
    void
    barrier(unsigned skip = noTasklet)
    {
        const std::uint32_t id = nextBarrier++;
        for (unsigned t = 0; t < skel.tasklets.size(); ++t) {
            if (t == skip)
                continue;
            SyncEvent e;
            e.kind = EventKind::Barrier;
            e.id = id;
            skel.tasklets[t].events.push_back(std::move(e));
        }
    }

    // Building blocks shared by the schedules.

    void
    loadRank(unsigned rank, unsigned b)
    {
        access(loader, inputBuf(rank, buf(b)), true);
    }

    /** The next iteration's input depends on a merged result. */
    void
    loadReadsResult(unsigned b)
    {
        for (unsigned r = 0; r < opt.ranks; ++r)
            access(loader, resultSlice(r, buf(b)), false);
    }

    void
    kernelRank(unsigned rank, unsigned b)
    {
        const unsigned t = kernelThread(rank);
        access(t, inputBuf(rank, buf(b)), false);
        access(t, matrixBuf(rank), false);
        access(t, outputBuf(rank, buf(b)), true);
    }

    void
    retrieveRank(unsigned rank, unsigned b)
    {
        access(retriever, outputBuf(rank, buf(b)), false);
        access(retriever, stagingBuf(stagingRank(rank), buf(b)),
               true);
    }

    void
    mergeRank(unsigned rank, unsigned b)
    {
        access(merger, stagingBuf(stagingRank(rank), buf(b)), false);
        access(merger, resultSlice(rank, buf(b)), true);
    }
};

/** Today's engine: every pipeline step is its own global phase. */
SyncSkeleton
buildSerial(const ProtocolOptions &opt)
{
    ProtocolBuilder b(opt);
    for (unsigned k = 0; k < opt.iterations; ++k) {
        if (k > 0)
            b.loadReadsResult((k - 1) % 2);
        for (unsigned r = 0; r < opt.ranks; ++r)
            b.loadRank(r, k % 2);
        if (!(opt.dropLoadBarrier && k == 0))
            b.barrier();
        for (unsigned r = 0; r < opt.ranks; ++r)
            b.kernelRank(r, k % 2);
        b.barrier();
        for (unsigned r = 0; r < opt.ranks; ++r)
            b.retrieveRank(r, k % 2);
        b.barrier();
        for (unsigned r = 0; r < opt.ranks; ++r)
            b.mergeRank(r, k % 2);
        const bool last = k + 1 == opt.iterations;
        b.barrier(last && opt.skipFinalBarrier ? b.merger
                                               : noTasklet);
    }
    return std::move(b.skel);
}

/**
 * Rank overlap: rank r's kernel runs while rank r+1's input lands
 * and rank r-1's output drains; the merger streams rank r-2's
 * staging in the same phase. Legal because every rank owns its
 * buffers -- which is exactly what the explorer proves (and refutes
 * under the shared-staging seed).
 */
SyncSkeleton
buildRankOverlap(const ProtocolOptions &opt)
{
    ProtocolBuilder b(opt);
    const unsigned R = opt.ranks;
    for (unsigned k = 0; k < opt.iterations; ++k) {
        const unsigned bk = k % 2;
        if (k > 0)
            b.loadReadsResult((k - 1) % 2);
        b.loadRank(0, bk);
        if (!(opt.dropLoadBarrier && k == 0))
            b.barrier();
        // Pipeline body plus two drain phases.
        for (unsigned p = 0; p < R + 2; ++p) {
            if (p < R)
                b.kernelRank(p, bk);
            if (p + 1 < R)
                b.loadRank(p + 1, bk);
            if (p >= 1 && p - 1 < R)
                b.retrieveRank(p - 1, bk);
            if (p >= 2 && p - 2 < R)
                b.mergeRank(p - 2, bk);
            const bool last = k + 1 == opt.iterations && p + 1 == R + 2;
            b.barrier(last && opt.skipFinalBarrier ? b.merger
                                                   : noTasklet);
        }
    }
    return std::move(b.skel);
}

/**
 * Input double-buffering across app iterations: iteration k+1's
 * load runs under iteration k's merge, reading the *previous*
 * completed result (the speculative dependency critical_path.hh's
 * what-if assumes) and writing the other input-buffer parity. Legal
 * with two buffers; the single-buffer seed makes the loader read
 * the result image the merger is still writing.
 */
SyncSkeleton
buildDoubleBuffer(const ProtocolOptions &opt)
{
    ProtocolBuilder b(opt);
    for (unsigned r = 0; r < opt.ranks; ++r)
        b.loadRank(r, 0);
    if (!opt.dropLoadBarrier)
        b.barrier();
    for (unsigned k = 0; k < opt.iterations; ++k) {
        const unsigned bk = k % 2;
        for (unsigned r = 0; r < opt.ranks; ++r)
            b.kernelRank(r, bk);
        b.barrier();
        for (unsigned r = 0; r < opt.ranks; ++r)
            b.retrieveRank(r, bk);
        b.barrier();
        // Merge of k overlapped with the load of k+1.
        for (unsigned r = 0; r < opt.ranks; ++r)
            b.mergeRank(r, bk);
        if (k + 1 < opt.iterations) {
            if (k > 0)
                b.loadReadsResult((k - 1) % 2);
            for (unsigned r = 0; r < opt.ranks; ++r)
                b.loadRank(r, (k + 1) % 2);
        }
        const bool last = k + 1 == opt.iterations;
        b.barrier(last && opt.skipFinalBarrier ? b.merger
                                               : noTasklet);
    }
    return std::move(b.skel);
}

/** Both overlaps at once: the rank pipeline of iteration k with the
 * loads of iteration k+1 folded into its phases. */
SyncSkeleton
buildCombined(const ProtocolOptions &opt)
{
    ProtocolBuilder b(opt);
    const unsigned R = opt.ranks;
    for (unsigned r = 0; r < R; ++r)
        b.loadRank(r, 0);
    if (!opt.dropLoadBarrier)
        b.barrier();
    for (unsigned k = 0; k < opt.iterations; ++k) {
        const unsigned bk = k % 2;
        for (unsigned p = 0; p < R + 2; ++p) {
            if (p < R)
                b.kernelRank(p, bk);
            if (p >= 1 && p - 1 < R)
                b.retrieveRank(p - 1, bk);
            if (p >= 2 && p - 2 < R)
                b.mergeRank(p - 2, bk);
            // Prefetch the next iteration's image for one rank per
            // phase, against the result of two iterations back.
            if (k + 1 < opt.iterations && p < R) {
                if (k > 0)
                    b.access(b.loader,
                             resultSlice(p, b.buf((k - 1) % 2)),
                             false);
                b.loadRank(p, (k + 1) % 2);
            }
            const bool last = k + 1 == opt.iterations && p + 1 == R + 2;
            b.barrier(last && opt.skipFinalBarrier ? b.merger
                                                   : noTasklet);
        }
    }
    return std::move(b.skel);
}

} // namespace

const char *
launchScheduleName(LaunchSchedule schedule)
{
    switch (schedule) {
      case LaunchSchedule::Serial:
        return "serial";
      case LaunchSchedule::RankOverlap:
        return "rank-overlap";
      case LaunchSchedule::DoubleBuffer:
        return "double-buffer";
      case LaunchSchedule::Combined:
        return "combined";
    }
    return "unknown";
}

SyncSkeleton
buildProtocolSkeleton(LaunchSchedule schedule,
                      const ProtocolOptions &opts)
{
    ALPHA_ASSERT(opts.ranks >= 1 && opts.iterations >= 1,
                 "protocol model needs >= 1 rank and iteration");
    SyncSkeleton skel;
    switch (schedule) {
      case LaunchSchedule::Serial:
        skel = buildSerial(opts);
        break;
      case LaunchSchedule::RankOverlap:
        skel = buildRankOverlap(opts);
        break;
      case LaunchSchedule::DoubleBuffer:
        skel = buildDoubleBuffer(opts);
        break;
      case LaunchSchedule::Combined:
        skel = buildCombined(opts);
        break;
    }
    skel.subject =
        std::string("launch-protocol/") + launchScheduleName(schedule);
    skel.dpu = 0;
    return skel;
}

} // namespace alphapim::analysis::modelcheck
