/**
 * @file
 * Symbolic kernel execution: harvest synchronization skeletons from
 * the shipped kernels and applications by running them functionally
 * on tiny abstract partitions under the analysis::capture() tap --
 * with the revolver replay skipped, so extraction costs milliseconds
 * -- and folding the recorded traces into fingerprint-deduplicated
 * skeletons ready for the exhaustive-schedule explorer.
 *
 * The abstraction is sound for the synchronization structure the
 * explorer checks because the kernels derive their mutex/barrier
 * pattern and address layout from core::detail's fixed layout rules,
 * not from data values: a tiny partition exercises the same
 * acquire/release/barrier shapes (per tasklet, per partition role) as
 * a large one, just with fewer repetitions.
 */

#ifndef ALPHA_PIM_ANALYSIS_MODELCHECK_EXTRACT_HH
#define ALPHA_PIM_ANALYSIS_MODELCHECK_EXTRACT_HH

#include <string>
#include <vector>

#include "analysis/modelcheck/skeleton.hh"
#include "core/engine.hh"
#include "core/kernels.hh"

namespace alphapim::analysis::modelcheck
{

/** Shape of the abstract partition the subject runs on. */
struct ExtractOptions
{
    /** DPUs of the tiny system (2 exercises cross-DPU splits). */
    unsigned dpus = 2;

    /** Tasklets per DPU; the explorer's cost is exponential in this,
     * and 3 already distinguishes pairwise from collective sync. */
    unsigned tasklets = 3;

    /** Vertices of the abstract graph. */
    NodeId vertices = 12;

    /** Undirected edges of the abstract graph. */
    EdgeId edges = 18;

    /** Generator seed (results are deterministic given it). */
    std::uint64_t seed = 7;

    /** Input-vector fill ratio for direct kernel runs. */
    double xDensity = 0.5;
};

/** One distinct per-DPU program and how often it occurred. */
struct ExtractedSkeleton
{
    SyncSkeleton skeleton;

    /** DPU programs (across launches and DPUs) sharing this
     * skeleton's fingerprint; each occurrence is attributed to the
     * first one seen. */
    unsigned occurrences = 1;
};

/** Everything harvested from one subject. */
struct Extraction
{
    /** Fingerprint-deduplicated skeletons, in first-seen order. */
    std::vector<ExtractedSkeleton> skeletons;

    /** Schedule-independent lint findings from extraction, already
     * deduplicated and in deterministic report order. */
    std::vector<Finding> lintFindings;

    /** Kernel launches captured. */
    unsigned launches = 0;

    /** Per-DPU programs seen before deduplication. */
    unsigned dpuPrograms = 0;
};

/** Run one kernel variant on an abstract partition and extract the
 * skeletons of every launch it performs. */
Extraction extractKernelSkeletons(core::KernelVariant variant,
                                  const ExtractOptions &opts = {});

/** Application names accepted by extractAppSkeletons(). */
const std::vector<std::string> &knownApps();

/**
 * Run one application ("bfs", "sssp", "ppr", "cc") end-to-end with
 * the given kernel-selection strategy on an abstract graph and
 * extract the skeletons of every launch the engine issued (including
 * any strategy-probing launches). fatal()s on an unknown app name.
 */
Extraction extractAppSkeletons(const std::string &app,
                               core::MxvStrategy strategy,
                               const ExtractOptions &opts = {});

} // namespace alphapim::analysis::modelcheck

#endif // ALPHA_PIM_ANALYSIS_MODELCHECK_EXTRACT_HH
