/**
 * @file
 * Exhaustive-schedule explorer over synchronization skeletons.
 *
 * A stateless depth-first search enumerates every tasklet
 * interleaving of a skeleton up to a configurable state bound,
 * pruned by sleep sets (the persistent-set-free member of the
 * dynamic partial-order-reduction family): after a transition is
 * explored from a state, independent sibling branches that would
 * only reorder commuting transitions are skipped, so each
 * Mazurkiewicz trace -- each genuinely different schedule -- is
 * explored exactly once instead of once per interleaving.
 *
 * Checked properties, reported with the pim-verify Finding kinds:
 *  - race-freedom: per explored schedule, a vector-clock happens-
 *    before relation (mutex release->acquire edges, barrier joins)
 *    over the coalesced access footprints; conflicting unordered
 *    accesses are DataRace findings. Sleep sets preserve one
 *    representative per trace and happens-before is trace-invariant,
 *    so reduction loses no races.
 *  - deadlock-freedom: any reachable state where unfinished tasklets
 *    have no enabled transition; cyclic mutex waits are
 *    LockOrderCycle, barrier-arrival disagreement (differing ids or
 *    a tasklet that exits without arriving) is BarrierDivergence.
 *  - barrier-round consistency: barriers are collective transitions
 *    enabled only when every live tasklet has arrived at the same
 *    barrier id, so inconsistent rounds surface as the deadlock
 *    above in every schedule that reaches them.
 */

#ifndef ALPHA_PIM_ANALYSIS_MODELCHECK_EXPLORER_HH
#define ALPHA_PIM_ANALYSIS_MODELCHECK_EXPLORER_HH

#include <cstdint>
#include <vector>

#include "analysis/findings.hh"
#include "analysis/modelcheck/skeleton.hh"

namespace alphapim::analysis::modelcheck
{

/** Exploration bounds and switches. */
struct ExploreOptions
{
    /** DFS node budget; exceeded => ExploreResult::complete false. */
    std::uint64_t maxStates = 1ull << 21;

    /** Sleep-set partial-order reduction (off = naive enumeration,
     * for reduction-factor measurements). */
    bool reduction = true;

    /** Retained-finding cap (occurrences beyond it still counted in
     * the stats, distinct findings are deduplicated anyway). */
    unsigned maxFindings = 32;
};

/** Search-effort counters of one exploration. */
struct ExploreStats
{
    std::uint64_t states = 0;      ///< DFS states visited
    std::uint64_t transitions = 0; ///< transitions executed
    std::uint64_t sleepSkips = 0;  ///< branches pruned by sleep sets
    std::uint64_t schedules = 0;   ///< maximal schedules completed
    std::uint64_t deadlockStates = 0; ///< distinct deadlock hits
    std::uint64_t maxDepth = 0;    ///< deepest interleaving prefix
};

/** Outcome of exploring one skeleton. */
struct ExploreResult
{
    /** Deduplicated findings in deterministic report order. */
    std::vector<Finding> findings;
    ExploreStats stats;
    /** True when the search exhausted every schedule within the
     * state budget -- only then is a clean result a proof. */
    bool complete = false;
};

/** Exhaustively explore all schedules of `skeleton`. */
ExploreResult explore(const SyncSkeleton &skeleton,
                      const ExploreOptions &opts = {});

} // namespace alphapim::analysis::modelcheck

#endif // ALPHA_PIM_ANALYSIS_MODELCHECK_EXPLORER_HH
