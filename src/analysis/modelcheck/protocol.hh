/**
 * @file
 * Abstract model of the host launch protocol, built as a
 * synchronization skeleton so the same explorer that checks kernels
 * also machine-checks the Load -> Kernel -> Retrieve -> Merge
 * orderings PimEngine drives through UpmemSystem -- including the
 * proposed async schedules of src/analysis/critical_path.hh's
 * what-if variants (rank overlap, input double-buffering, the
 * combined pipeline), *before* ROADMAP item 1 makes the engine
 * concurrent for real.
 *
 * Actors ("tasklets" of the skeleton): a loader thread scattering
 * per-rank input images, one kernel thread per rank, a retriever
 * gathering per-rank output images into host staging, and a merger
 * folding staging into the iteration result the next load depends
 * on. Buffers are disjoint address ranges; a schedule is a phase
 * structure (global barriers) plus a buffer assignment. The explorer
 * then proves the retained barriers suffice for the buffers chosen
 * -- or exhibits the race/deadlock when a seeded variant drops a
 * barrier or aliases a buffer.
 */

#ifndef ALPHA_PIM_ANALYSIS_MODELCHECK_PROTOCOL_HH
#define ALPHA_PIM_ANALYSIS_MODELCHECK_PROTOCOL_HH

#include "analysis/modelcheck/skeleton.hh"

namespace alphapim::analysis::modelcheck
{

/** The launch orderings checked (critical_path.hh what-ifs). */
enum class LaunchSchedule
{
    Serial,       ///< today's engine: fully phase-ordered
    RankOverlap,  ///< rank r+1 transfers under rank r's kernel
    DoubleBuffer, ///< iteration k+1 load under iteration k merge
    Combined,     ///< both overlaps at once
};

/** Display name ("serial", "rank-overlap", ...). */
const char *launchScheduleName(LaunchSchedule schedule);

/** Protocol model shape and seeded-defect switches. */
struct ProtocolOptions
{
    unsigned ranks = 2;
    unsigned iterations = 2;

    /** Seed: drop the load->kernel barrier of iteration 0 (the
     * kernels read input images the loader still writes). */
    bool dropLoadBarrier = false;

    /** Seed: all ranks gather into one shared staging buffer. */
    bool sharedStaging = false;

    /** Seed: collapse double-buffered pairs to a single buffer. */
    bool singleBuffer = false;

    /** Seed: the merger skips the final rendezvous barrier. */
    bool skipFinalBarrier = false;
};

/** Build the skeleton of one launch schedule. */
SyncSkeleton buildProtocolSkeleton(LaunchSchedule schedule,
                                   const ProtocolOptions &opts = {});

} // namespace alphapim::analysis::modelcheck

#endif // ALPHA_PIM_ANALYSIS_MODELCHECK_PROTOCOL_HH
