/**
 * @file
 * Synchronization skeletons: the model checker's program abstraction.
 *
 * A skeleton keeps, per tasklet, only the events that other tasklets
 * can observe -- mutex acquire/release, barrier arrivals, and the
 * WRAM/MRAM address ranges touched between them -- extracted from the
 * addressed trace records kernels produce (upmem::TaskletTrace). All
 * accesses between two synchronization operations form one *segment*
 * and are coalesced into a minimal set of disjoint ranges per
 * (space, direction): interleavings within a segment cannot change
 * which conflicts exist, so the coalescing is exact for race
 * detection while shrinking the explorer's state space by orders of
 * magnitude.
 *
 * Extraction also lints each tasklet's record stream for the
 * schedule-independent protocol defects (double lock, unlock of an
 * unheld mutex, mutex held at exit, illegal DMA shapes); these need
 * no exploration and are reported directly with the same
 * analysis::Finding kinds pim-verify uses.
 */

#ifndef ALPHA_PIM_ANALYSIS_MODELCHECK_SKELETON_HH
#define ALPHA_PIM_ANALYSIS_MODELCHECK_SKELETON_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/findings.hh"
#include "upmem/dpu_config.hh"
#include "upmem/trace.hh"

namespace alphapim::analysis::modelcheck
{

/** One coalesced address range touched by a segment. */
struct AccessRange
{
    MemSpace space = MemSpace::Wram;
    std::uint64_t addr = 0;
    std::uint64_t end = 0; ///< addr + length
    bool write = false;

    /** True when the ranges can race: same space, overlapping, and
     * at least one side writing. */
    bool
    conflicts(const AccessRange &o) const
    {
        return space == o.space && (write || o.write) &&
               addr < o.end && o.addr < end;
    }
};

/** Kind of skeleton event. */
enum class EventKind : std::uint8_t
{
    Acquire, ///< mutex lock (blocking)
    Release, ///< mutex unlock
    Barrier, ///< barrier arrival (blocks until all tasklets arrive)
    Access,  ///< one segment's coalesced shared-memory footprint
};

/** One observable step of one tasklet. */
struct SyncEvent
{
    EventKind kind = EventKind::Access;
    std::uint32_t id = 0; ///< mutex / barrier id (non-Access)
    std::vector<AccessRange> ranges; ///< Access only
};

/** The event sequence of one tasklet. */
struct TaskletSkeleton
{
    /** Original tasklet id (skeletons drop empty tasklets, so the
     * vector index can differ); used for finding attribution. */
    unsigned tasklet = 0;
    std::vector<SyncEvent> events;
};

/** The per-DPU program the explorer enumerates schedules of. */
struct SyncSkeleton
{
    std::string subject; ///< display label ("CSC-2D", "bfs launch 3")
    unsigned dpu = 0;    ///< finding attribution
    std::vector<TaskletSkeleton> tasklets;

    /** Total events across all tasklets. */
    std::uint64_t eventCount() const;

    /** Structural FNV-1a hash: identical values mean identical
     * synchronization behavior, used to dedup the skeletons of DPUs
     * that run the same code on partitions of the same shape. */
    std::uint64_t fingerprint() const;
};

/** Extraction output: the skeleton plus the static lint findings. */
struct SkeletonBuild
{
    SyncSkeleton skeleton;
    /** Schedule-independent defects (DoubleLock, UnlockUnheld,
     * LockHeldAtExit, IllegalDma) found while walking the traces. */
    std::vector<Finding> lintFindings;
};

/**
 * Build the synchronization skeleton of one DPU's recorded traces.
 * Tasklets with empty traces are dropped (they never launched -- the
 * same exemption the replay scheduler's barrier quorum applies).
 *
 * @param dpu     DPU index for finding attribution
 * @param traces  one trace per tasklet, as handed to the scheduler
 * @param cfg     DPU configuration (DMA staging lint)
 * @param subject display label for reports
 */
SkeletonBuild buildSkeleton(unsigned dpu,
                            const std::vector<upmem::TaskletTrace> &traces,
                            const upmem::DpuConfig &cfg,
                            std::string subject);

} // namespace alphapim::analysis::modelcheck

#endif // ALPHA_PIM_ANALYSIS_MODELCHECK_SKELETON_HH
