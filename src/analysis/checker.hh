/**
 * @file
 * pim-verify: offline analyzer of recorded tasklet traces.
 *
 * The checker consumes the per-tasklet traces a kernel launch
 * produced for one DPU -- before the replay scheduler consumes them
 * for timing -- and verifies them against the execution model:
 *
 *  - data races: Eraser-style locksets combined with barrier-round
 *    happens-before over the addressed WRAM/MRAM accesses;
 *  - mutex protocol: double lock, unlock of an unheld mutex, mutex
 *    held at tasklet exit, and cyclic lock-acquisition order
 *    (deadlock potential) via a lock graph;
 *  - barrier protocol: divergent barrier sequences between tasklets;
 *  - DMA legality: 8-byte alignment and granularity, the 1..2048-byte
 *    hardware transfer range, and staging within wramChunkBytes.
 *
 * The checker is a process-wide singleton (like the telemetry
 * registry) so UpmemSystem::launchKernel can consult it without
 * plumbing; it is disabled by default and every entry point is a
 * cheap no-op until a tool enables it.
 */

#ifndef ALPHA_PIM_ANALYSIS_CHECKER_HH
#define ALPHA_PIM_ANALYSIS_CHECKER_HH

#include <atomic>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/findings.hh"
#include "upmem/dpu_config.hh"
#include "upmem/trace.hh"

namespace alphapim::analysis
{

/** Which checker families run. */
struct CheckOptions
{
    bool race = true;
    bool lock = true;
    bool barrier = true;
    bool dma = true;

    /** True when at least one family is selected. */
    bool
    any() const
    {
        return race || lock || barrier || dma;
    }

    /**
     * Parse a comma-separated family list ("race,dma", "all", or an
     * empty string for everything) as accepted by --check=.
     *
     * @param list  the text after "--check="
     * @param out   receives the selection on success
     * @param error receives a message on failure (optional)
     * @return true on success
     */
    static bool parseList(std::string_view list, CheckOptions &out,
                          std::string *error = nullptr);
};

/**
 * Thread-safe accumulator of analysis findings across launches.
 *
 * analyzeDpu() may be called concurrently from the launch worker
 * pool; each call analyzes one DPU's traces on the calling thread
 * and folds the results into the shared report under a lock.
 */
class TraceChecker
{
  public:
    /** Stored-finding cap across the whole run; occurrences beyond
     * it are still counted, just not retained. */
    static constexpr std::size_t maxStoredFindings = 256;

    /** Stored-finding cap per analyzed DPU. */
    static constexpr std::size_t maxStoredPerDpu = 32;

    /** True when launches should be analyzed. */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Enable checking with the given family selection. */
    void enable(const CheckOptions &opts);

    /** Stop checking (accumulated findings are kept). */
    void disable();

    /** The active family selection. */
    CheckOptions options() const;

    /**
     * Analyze the traces of one DPU (no-op while disabled).
     *
     * @param dpu    DPU index (for finding attribution)
     * @param traces one trace per tasklet, as passed to the scheduler
     * @param cfg    the DPU configuration the traces were recorded for
     */
    void analyzeDpu(unsigned dpu,
                    const std::vector<upmem::TaskletTrace> &traces,
                    const upmem::DpuConfig &cfg);

    /**
     * Fold one externally-produced finding into the report. Used by
     * the model checker front-ends and by the exit-code regression
     * tests (--check-inject); counted like any other occurrence.
     */
    void injectFinding(Finding f);

    /** Snapshot of everything accumulated so far. */
    AnalysisReport report() const;

    /** Total occurrences so far (including unretained ones). */
    std::uint64_t findingCount() const;

    /** Drop all accumulated findings and counts. */
    void clear();

    /** Render the accumulated report as a JSON document. */
    std::string reportJson() const;

    /**
     * Write the JSON report to `path`.
     * @return true when the file was written successfully
     */
    bool writeReport(const std::string &path) const;

  private:
    std::atomic<bool> enabled_{false};
    mutable std::mutex mutex_;
    CheckOptions opts_;
    AnalysisReport report_;
};

/** The process-wide trace checker. */
TraceChecker &checker();

/** One-line console rendering of a finding. */
std::string describeFinding(const Finding &f);

/**
 * Why a DMA trace record violates the hardware transfer contract
 * (granularity, 2048-byte range, staging fit, alignment), or nullptr
 * when it is legal. Shared by the trace checker and the model
 * checker's skeleton lint.
 */
const char *dmaViolation(const upmem::TraceRecord &r,
                         const upmem::DpuConfig &cfg);

/**
 * The shared --check epilogue of the CLI and every bench binary:
 * print the finding summary of the process-wide checker, write the
 * JSON report when `report_path` is non-empty, and return the
 * uniform process exit status -- 0 clean, 2 when the report cannot
 * be written, 3 when there are findings.
 */
int finalizeCheckReport(const std::string &report_path);

} // namespace alphapim::analysis

#endif // ALPHA_PIM_ANALYSIS_CHECKER_HH
