#include "analysis/capture.hh"

#include <utility>

#include "common/logging.hh"

namespace alphapim::analysis
{

void
TraceCapture::start(bool skip_replay)
{
    std::lock_guard<std::mutex> lock(mutex_);
    launches_.clear();
    skipReplay_ = skip_replay;
    enabled_.store(true, std::memory_order_relaxed);
}

std::vector<CapturedLaunch>
TraceCapture::stop()
{
    std::lock_guard<std::mutex> lock(mutex_);
    enabled_.store(false, std::memory_order_relaxed);
    return std::exchange(launches_, {});
}

bool
TraceCapture::skipReplay() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return skipReplay_;
}

void
TraceCapture::beginLaunch(unsigned num_dpus)
{
    std::lock_guard<std::mutex> lock(mutex_);
    launches_.emplace_back();
    launches_.back().dpuTraces.resize(num_dpus);
}

void
TraceCapture::captureDpu(unsigned dpu,
                         const std::vector<upmem::TaskletTrace> &traces)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ALPHA_ASSERT(!launches_.empty() &&
                     dpu < launches_.back().dpuTraces.size(),
                 "captureDpu outside an open launch group");
    launches_.back().dpuTraces[dpu] = traces;
}

TraceCapture &
capture()
{
    static TraceCapture instance;
    return instance;
}

} // namespace alphapim::analysis
