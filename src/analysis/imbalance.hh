/**
 * @file
 * Load-imbalance & roofline observatory: per-launch fleet distribution
 * analytics over the per-DPU profiles UpmemSystem folds, joined with
 * the partitioner's per-DPU row/nnz/byte assignment.
 *
 * The paper's central analytical claim is that graph workloads on real
 * PIM are dominated by *distribution* effects: nnz skew across DPUs,
 * straggler DPUs serializing the launch barrier, and kernels sitting
 * on the wrong side of the compute/bandwidth balance. This module
 * turns the raw per-DPU counters into that lens:
 *
 *  - skew statistics (CoV, Gini, p99/mean, max/mean) per metric;
 *  - straggler identification attributing the critical DPU's excess
 *    cycles to a stall reason and its partition share ("DPU 37: 2.4x
 *    mean cycles, 71% memory-stall, holds 3.1x mean nnz");
 *  - an Amdahl-style rebalance bound (kernel time if work were
 *    perfectly leveled across the fleet);
 *  - a modeled roofline point per launch (operational intensity vs
 *    the pipeline-throughput and MRAM-bandwidth ceilings of the cycle
 *    model) classifying each launch compute- vs memory-bound.
 *
 * Like the trace checker and capture tap, the observer is a process-
 * wide singleton consulted by UpmemSystem::launchKernel; disabled by
 * default, every entry point is a cheap no-op until a tool enables it.
 */

#ifndef ALPHA_PIM_ANALYSIS_IMBALANCE_HH
#define ALPHA_PIM_ANALYSIS_IMBALANCE_HH

#include <atomic>
#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "sparse/partition_shares.hh"
#include "upmem/dpu_config.hh"
#include "upmem/profile.hh"

namespace alphapim::analysis
{

/** Distribution skew summary of one per-DPU metric. */
struct SkewStats
{
    /** Number of DPUs sampled (idle DPUs included: their zeros *are*
     * the imbalance). */
    std::size_t count = 0;

    /** Arithmetic mean over all DPUs. */
    double mean = 0.0;

    /** Largest per-DPU value. */
    double max = 0.0;

    /** Coefficient of variation (stddev / mean; 0 when mean is 0). */
    double cov = 0.0;

    /** Gini coefficient in [0, 1): 0 = perfectly leveled. */
    double gini = 0.0;

    /** 99th percentile (type-7 estimator). */
    double p99 = 0.0;

    /** Straggler factor: max over mean (1.0 when leveled or empty). */
    double
    maxOverMean() const
    {
        return mean > 0.0 ? max / mean : 1.0;
    }

    /** Tail factor: p99 over mean (1.0 when leveled or empty). */
    double
    p99OverMean() const
    {
        return mean > 0.0 ? p99 / mean : 1.0;
    }
};

/** Skew summary of a per-DPU sample vector. */
SkewStats computeSkew(const std::vector<double> &values);

/** One launch's position against the modeled roofline. */
struct RooflinePoint
{
    /** Operational intensity: dispatched instructions per MRAM byte
     * moved (DMA read + write traffic). */
    double opIntensity = 0.0;

    /** Fleet-wide achieved throughput, instructions per second, at
     * the launch's modeled wall time (slowest DPU). */
    double achievedOpsPerSec = 0.0;

    /** Pipeline ceiling: one dispatch per cycle per DPU. */
    double pipelineCeilingOpsPerSec = 0.0;

    /** Bandwidth ceiling at this intensity: opIntensity x fleet MRAM
     * bandwidth. */
    double bandwidthCeilingOpsPerSec = 0.0;

    /** Ridge intensity where the two ceilings meet
     * (1 / dmaBytesPerCycle instructions per byte). */
    double ridgeIntensity = 0.0;

    /** True when the launch sits left of the ridge: the MRAM
     * bandwidth ceiling binds before the pipeline does. */
    bool memoryBound = false;
};

/** Fleet distribution analytics for one kernel launch. */
struct LaunchImbalance
{
    /** Kernel name ("CSC-2D", ...; empty when no context was set). */
    std::string kernel;

    /** DPUs the launch spanned (including idle ones). */
    unsigned dpus = 0;

    /** Skew of per-DPU total cycles. */
    SkewStats cycles;

    /** Skew of per-DPU average active tasklets. */
    SkewStats activeThreads;

    /** Skew of per-DPU memory-stall fractions. */
    SkewStats memStallFraction;

    /** Skew of per-DPU assigned nonzeros (count 0 without context). */
    SkewStats nnz;

    /** Skew of per-DPU assigned MRAM bytes (count 0 without
     * context). */
    SkewStats bytes;

    /** The critical DPU: largest total cycles. */
    unsigned stragglerDpu = 0;

    /** Straggler's cycles over the fleet mean. */
    double stragglerCyclesOverMean = 1.0;

    /** Straggler's dominant stall reason name ("memory", "revolver",
     * "rf-hazard", "sync"; empty when it never stalled). */
    std::string stragglerStall;

    /** Fraction of the straggler's cycles spent in that stall. */
    double stragglerStallFraction = 0.0;

    /** Straggler's nnz share over the mean share (0 without
     * context). */
    double stragglerNnzOverMean = 0.0;

    /** Amdahl-style rebalance bound: launch speedup if per-DPU cycles
     * were leveled to the mean (max / mean cycles). */
    double rebalanceSpeedup = 1.0;

    /** Fleet-wide dispatched instructions in this launch. */
    double totalInstructions = 0.0;

    /** Fleet-wide MRAM DMA traffic (read + write bytes). */
    double mramBytes = 0.0;

    /** DPU clock the launch was modeled at (for time conversion). */
    double clockHz = 0.0;

    /** Modeled roofline position of this launch. */
    RooflinePoint roofline;
};

/** Run-level roofline aggregate. */
struct RunRoofline
{
    /** Run-wide operational intensity (total instr / total bytes). */
    double opIntensity = 0.0;

    /** Throughput over the summed per-launch wall times. */
    double achievedOpsPerSec = 0.0;

    /** Pipeline ceiling of the widest launch seen. */
    double pipelineCeilingOpsPerSec = 0.0;

    /** Ridge intensity of the cycle model. */
    double ridgeIntensity = 0.0;

    /** Fraction of launches classified memory-bound. */
    double memoryBoundFraction = 0.0;
};

/** Imbalance analytics accumulated over a measured run. */
struct RunImbalance
{
    /** Kernel launches observed. */
    std::size_t launches = 0;

    /** Run straggler factor: summed critical-DPU cycles over summed
     * mean cycles — the fleet-leveling headroom of the whole run. */
    double stragglerFactor = 1.0;

    /** Cycle-weighted mean of per-launch cycle Gini. */
    double cyclesGini = 0.0;

    /** Cycle-weighted mean of per-launch cycle CoV. */
    double cyclesCov = 0.0;

    /** Cycle-weighted mean of per-launch p99/mean cycles. */
    double cyclesP99OverMean = 0.0;

    /** Cycle-weighted mean of per-launch nnz Gini. */
    double nnzGini = 0.0;

    /** Cycle-weighted mean of per-launch nnz max/mean. */
    double nnzMaxOverMean = 0.0;

    /** Cycle-weighted mean of per-launch active-thread CoV. */
    double activeThreadsCov = 0.0;

    /** Cycle-weighted mean of per-launch memory-stall-fraction CoV. */
    double memStallCov = 0.0;

    /** Kernel of the worst launch (largest straggler factor). */
    std::string stragglerKernel;

    /** Critical DPU of the worst launch. */
    unsigned stragglerDpu = 0;

    /** That DPU's cycles over its launch's mean. */
    double stragglerCyclesOverMean = 1.0;

    /** That DPU's dominant stall reason name. */
    std::string stragglerStall;

    /** Fraction of that DPU's cycles in the dominant stall. */
    double stragglerStallFraction = 0.0;

    /** That DPU's nnz share over its launch's mean share. */
    double stragglerNnzOverMean = 0.0;

    /** Modeled kernel wall time: summed slowest-DPU cycles / clock. */
    double kernelSeconds = 0.0;

    /** Rebalance bound: kernel wall time if every launch's work were
     * leveled to its mean (summed mean cycles / clock). */
    double leveledKernelSeconds = 0.0;

    /** Run-level roofline aggregate. */
    RunRoofline roofline;
};

/**
 * Fleet distribution analytics for one launch, pure function form
 * (unit-testable without the singleton).
 *
 * @param kernel   kernel name for the report ("" when unknown)
 * @param profiles per-DPU profiles as folded by the launcher
 * @param shares   the partitioner's per-DPU assignment; empty or
 *                 size-mismatched vectors disable the join
 * @param cfg      DPU micro-architecture for the roofline ceilings
 */
LaunchImbalance
computeLaunchImbalance(const std::string &kernel,
                       const std::vector<upmem::DpuProfile> &profiles,
                       const std::vector<sparse::PartitionShare> &shares,
                       const upmem::DpuConfig &cfg);

/**
 * Process-wide imbalance observer.
 *
 * Kernels publish their partition shares via setLaunchContext() right
 * before UpmemSystem::launchKernel; the launcher calls recordLaunch()
 * after its serial profile fold, which consumes the pending context.
 * beginRun() / collectRun() bracket a measured region (the bench
 * harness and CLI wrap their timed iterations).
 */
class ImbalanceObserver
{
  public:
    /** True when launches should be analyzed. */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Enable or disable the observer (disabling keeps state). */
    void setEnabled(bool on);

    /** Publish the next launch's kernel name and partition shares.
     * One slot: consumed and cleared by the next recordLaunch(). */
    void setLaunchContext(std::string kernel,
                          std::vector<sparse::PartitionShare> shares);

    /** Analyze one launch's folded per-DPU profiles; joins the
     * pending context, accumulates run state, and emits imbalance.* /
     * roofline.* metrics when the registry is enabled. */
    void recordLaunch(const std::vector<upmem::DpuProfile> &profiles,
                      const upmem::DpuConfig &cfg);

    /** Drop accumulated launches and start a fresh measured region. */
    void beginRun();

    /** Aggregate everything recorded since beginRun(). */
    RunImbalance collectRun() const;

    /** Per-launch analytics since beginRun() (test/report access). */
    std::vector<LaunchImbalance> launches() const;

  private:
    std::atomic<bool> enabled_{false};
    mutable std::mutex mutex_;
    std::string pendingKernel_;
    std::vector<sparse::PartitionShare> pendingShares_;
    bool hasPending_ = false;
    std::vector<LaunchImbalance> launches_;
};

/** The process-wide imbalance observer. */
ImbalanceObserver &imbalance();

} // namespace alphapim::analysis

#endif // ALPHA_PIM_ANALYSIS_IMBALANCE_HH
