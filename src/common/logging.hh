/**
 * @file
 * Status and error reporting in the gem5 tradition.
 *
 * panic()  - an internal invariant was violated (a bug in this library);
 *            aborts so a debugger or core dump can capture state.
 * fatal()  - the user asked for something impossible (bad configuration,
 *            malformed input); exits with status 1.
 * warn()   - something works but is suspicious or approximate.
 * inform() - ordinary progress messages.
 */

#ifndef ALPHA_PIM_COMMON_LOGGING_HH
#define ALPHA_PIM_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace alphapim
{

/** Verbosity levels for runtime log filtering. */
enum class LogLevel
{
    Silent,  ///< suppress warn/inform
    Normal,  ///< default: warnings and informational messages
    Verbose, ///< also emit debug-level detail
};

/** Set the global verbosity for warn()/inform()/debugLog(). */
void setLogLevel(LogLevel level);

/**
 * Set the verbosity by name ("silent" / "normal" / "verbose",
 * case-sensitive). Returns false (and leaves the level unchanged)
 * for unknown names.
 */
bool setLogLevelByName(const char *name);

/** Current global verbosity. */
LogLevel logLevel();

/**
 * Re-read the ALPHA_PIM_LOG environment variable and apply it if it
 * names a valid level. Called automatically at startup, so
 * `ALPHA_PIM_LOG=verbose ./bench/fig07_endtoend_adaptive` works
 * without code edits; exposed for tests and long-lived embedders.
 */
void refreshLogLevelFromEnv();

/** Abort with a formatted message; use for internal bugs. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit(1) with a formatted message; use for user errors. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Emit a warning (suppressed at LogLevel::Silent). */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit an informational message (suppressed at LogLevel::Silent). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Emit a debug message (only at LogLevel::Verbose), prefixed with a
 * subsystem tag: `debug[xfer]: ...`. The tag lets `ALPHA_PIM_LOG=
 * verbose` output from different layers be filtered with grep.
 */
void debugLog(const char *subsystem, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

} // namespace alphapim

/**
 * Internal invariant check that survives NDEBUG builds.
 * Unlike assert(), the condition is always evaluated and failure panics
 * with location information and the supplied message.
 */
#define ALPHA_ASSERT(cond, msg)                                           \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::alphapim::panic("assertion '%s' failed at %s:%d: %s",       \
                              #cond, __FILE__, __LINE__, (msg));          \
        }                                                                 \
    } while (0)

#endif // ALPHA_PIM_COMMON_LOGGING_HH
