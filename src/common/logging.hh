/**
 * @file
 * Status and error reporting in the gem5 tradition.
 *
 * panic()  - an internal invariant was violated (a bug in this library);
 *            aborts so a debugger or core dump can capture state.
 * fatal()  - the user asked for something impossible (bad configuration,
 *            malformed input); exits with status 1.
 * warn()   - something works but is suspicious or approximate.
 * inform() - ordinary progress messages.
 */

#ifndef ALPHA_PIM_COMMON_LOGGING_HH
#define ALPHA_PIM_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace alphapim
{

/** Verbosity levels for runtime log filtering. */
enum class LogLevel
{
    Silent,  ///< suppress warn/inform
    Normal,  ///< default: warnings and informational messages
    Verbose, ///< also emit debug-level detail
};

/** Set the global verbosity for warn()/inform()/debugLog(). */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

/** Abort with a formatted message; use for internal bugs. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit(1) with a formatted message; use for user errors. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Emit a warning (suppressed at LogLevel::Silent). */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit an informational message (suppressed at LogLevel::Silent). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit a debug message (only at LogLevel::Verbose). */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace alphapim

/**
 * Internal invariant check that survives NDEBUG builds.
 * Unlike assert(), the condition is always evaluated and failure panics
 * with location information and the supplied message.
 */
#define ALPHA_ASSERT(cond, msg)                                           \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::alphapim::panic("assertion '%s' failed at %s:%d: %s",       \
                              #cond, __FILE__, __LINE__, (msg));          \
        }                                                                 \
    } while (0)

#endif // ALPHA_PIM_COMMON_LOGGING_HH
