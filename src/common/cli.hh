#pragma once

/**
 * @file
 * Shared command-line scanning for the alphapim_* tools and the
 * bench harness.
 *
 * Every binary accepts the same two spellings for a flag that takes
 * a value -- `--flag value` and `--flag=value` -- and the scanning
 * loop implementing that convention used to be duplicated across the
 * tools. CliArgs is that loop: it walks argv, splits an inline
 * `=value` off the flag token, and hands the value back from either
 * spelling. Flags that treat a bare spelling differently from an
 * inline list (e.g. `--check` vs `--check=race,dma`) branch on
 * hasInlineValue().
 */

#include <functional>
#include <string>

namespace alphapim
{

/** Cursor over argv implementing the `--flag value` /
 * `--flag=value` convention. Typical use:
 *
 *   CliArgs args(argc, argv, [](const std::string &) { usage(); });
 *   while (args.next()) {
 *       if (args.arg() == "--seed")
 *           seed = std::strtoull(args.value(), nullptr, 10);
 *       else if (args.isFlag())
 *           usage();
 *       else
 *           positional.push_back(args.arg());
 *   }
 */
class CliArgs
{
  public:
    /** Called when a flag needs a value but neither an inline
     * `=value` nor a following argv token exists. Receives the flag
     * name; expected not to return (the tools call their
     * [[noreturn]] usage()), but if it does, value() yields "". */
    using MissingValueHandler =
        std::function<void(const std::string &flag)>;

    CliArgs(int argc, char **argv, MissingValueHandler onMissing)
        : argc_(argc), argv_(argv),
          on_missing_(std::move(onMissing))
    {
    }

    /** Advance to the next argv token. False when exhausted. */
    bool next();

    /** The current token, with any inline `=value` stripped. */
    const std::string &arg() const { return arg_; }

    /** True when the current token starts with `--`. */
    bool isFlag() const { return arg_.rfind("--", 0) == 0; }

    /** True when the current token carried an inline `=value`. */
    bool hasInlineValue() const { return has_inline_; }

    /** The inline `=value` ("" when there was none). Does not
     * consume the next argv token. */
    const std::string &inlineValue() const { return inline_value_; }

    /** The flag's value: the inline `=value` when present, else the
     * next argv token (consumed). Invokes the missing-value handler
     * when neither exists. */
    const char *value();

  private:
    int argc_;
    char **argv_;
    int i_ = 0;
    std::string arg_;
    std::string inline_value_;
    bool has_inline_ = false;
    MissingValueHandler on_missing_;
};

} // namespace alphapim
