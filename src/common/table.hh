/**
 * @file
 * Plain-text table rendering for the benchmark harness.
 *
 * Every bench binary reproduces a paper table or figure as rows of
 * text; TextTable keeps the output aligned and consistent so the
 * harness logs are directly comparable with the paper.
 */

#ifndef ALPHA_PIM_COMMON_TABLE_HH
#define ALPHA_PIM_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace alphapim
{

/** Column-aligned text table with a header row and optional title. */
class TextTable
{
  public:
    /** @param title banner printed above the table (may be empty) */
    explicit TextTable(std::string title = "");

    /** Define the header cells; must be called before addRow(). */
    void setHeader(std::vector<std::string> cells);

    /** Append one data row; width must match the header. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator between row groups. */
    void addSeparator();

    /** Render the whole table to a string. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

    /** Format a double with the given precision. */
    static std::string num(double v, int precision = 3);

    /** Format a value as a percentage ("12.3%"). */
    static std::string pct(double fraction, int precision = 1);

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace alphapim

#endif // ALPHA_PIM_COMMON_TABLE_HH
