/**
 * @file
 * Fundamental scalar and index types shared by every ALPHA-PIM module.
 *
 * The UPMEM DPU is a 32-bit core, so on-device indices and values are
 * 32 bits wide; host-side aggregate counters use 64-bit types.
 */

#ifndef ALPHA_PIM_COMMON_TYPES_HH
#define ALPHA_PIM_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace alphapim
{

/** Vertex identifier. Matches the DPU-native 32-bit word. */
using NodeId = std::uint32_t;

/** Edge identifier / nonzero index within a matrix. */
using EdgeId = std::uint64_t;

/** Cycle count inside the DPU timing model. */
using Cycles = std::uint64_t;

/** Wall-clock model time in seconds. */
using Seconds = double;

/** Byte count for transfer models. */
using Bytes = std::uint64_t;

/** Invalid / unset vertex marker. */
inline constexpr NodeId invalidNode = static_cast<NodeId>(-1);

/** Convert model seconds to milliseconds (reporting convention). */
constexpr double
toMillis(Seconds s)
{
    return s * 1e3;
}

/** Convert model seconds to microseconds. */
constexpr double
toMicros(Seconds s)
{
    return s * 1e6;
}

} // namespace alphapim

#endif // ALPHA_PIM_COMMON_TYPES_HH
