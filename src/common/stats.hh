/**
 * @file
 * Small statistics helpers used across the characterization harness:
 * single-pass mean/stddev (Welford), geometric means, and fixed-width
 * histograms for profiler outputs.
 */

#ifndef ALPHA_PIM_COMMON_STATS_HH
#define ALPHA_PIM_COMMON_STATS_HH

#include <cstddef>
#include <vector>

namespace alphapim
{

/**
 * Online mean / variance accumulator (Welford's algorithm).
 * Numerically stable for the long degree sequences that graph
 * characterization produces.
 */
class RunningStats
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double x);

    /** Number of samples seen. */
    std::size_t count() const { return count_; }

    /** Arithmetic mean (0 when empty). */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Population variance (0 when fewer than two samples). */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest sample seen (+inf when empty). */
    double min() const { return min_; }

    /** Largest sample seen (-inf when empty). */
    double max() const { return max_; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 1.0 / 0.0;
    double max_ = -1.0 / 0.0;
};

/**
 * Geometric mean of a sample set. Zero or negative samples would make
 * the geomean undefined, so they are rejected with a panic; callers
 * normalizing execution times never produce them.
 */
double geometricMean(const std::vector<double> &values);

/**
 * Linear-interpolation percentile (the "type 7" estimator that numpy
 * and R default to) of an unsorted sample set. `p` is in [0, 100];
 * p=50 is the median. Deterministic for a given sample multiset.
 * Returns NaN when `values` is empty.
 */
double percentile(std::vector<double> values, double p);

/**
 * Fixed-bin histogram over [0, upperBound). Samples at or above the
 * bound land in the final bin. Used for active-thread-count profiles.
 */
class Histogram
{
  public:
    /** @param bins number of bins; @param upper exclusive upper bound */
    Histogram(std::size_t bins, double upper);

    /** Record one weighted sample. */
    void add(double x, double weight = 1.0);

    /** Weight accumulated in bin i. */
    double binWeight(std::size_t i) const { return weights_.at(i); }

    /** Number of bins. */
    std::size_t bins() const { return weights_.size(); }

    /** Total recorded weight. */
    double totalWeight() const { return total_; }

    /** Weighted mean of recorded samples. */
    double mean() const { return total_ > 0 ? weightedSum_ / total_ : 0; }

  private:
    std::vector<double> weights_;
    double upper_;
    double total_ = 0.0;
    double weightedSum_ = 0.0;
};

} // namespace alphapim

#endif // ALPHA_PIM_COMMON_STATS_HH
