#include "stats.hh"

#include <algorithm>
#include <cmath>

#include "logging.hh"

namespace alphapim
{

void
RunningStats::add(double x)
{
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
geometricMean(const std::vector<double> &values)
{
    ALPHA_ASSERT(!values.empty(), "geometric mean of an empty set");
    double log_sum = 0.0;
    for (double v : values) {
        ALPHA_ASSERT(v > 0.0, "geometric mean requires positive samples");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
percentile(std::vector<double> values, double p)
{
    ALPHA_ASSERT(p >= 0.0 && p <= 100.0,
                 "percentile rank outside [0, 100]");
    if (values.empty())
        return std::nan("");
    std::sort(values.begin(), values.end());
    const double rank =
        p / 100.0 * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] + frac * (values[hi] - values[lo]);
}

Histogram::Histogram(std::size_t bins, double upper)
    : weights_(bins, 0.0), upper_(upper)
{
    ALPHA_ASSERT(bins > 0, "histogram needs at least one bin");
    ALPHA_ASSERT(upper > 0.0, "histogram upper bound must be positive");
}

void
Histogram::add(double x, double weight)
{
    const double clamped = std::clamp(x, 0.0, upper_);
    auto idx = static_cast<std::size_t>(
        clamped / upper_ * static_cast<double>(weights_.size()));
    if (idx >= weights_.size())
        idx = weights_.size() - 1;
    weights_[idx] += weight;
    total_ += weight;
    weightedSum_ += x * weight;
}

} // namespace alphapim
