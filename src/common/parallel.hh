/**
 * @file
 * Host-side parallel-for used to simulate independent DPUs
 * concurrently. Work items must be mutually independent; results must
 * be written to per-item slots so the outcome is deterministic
 * regardless of thread count.
 */

#ifndef ALPHA_PIM_COMMON_PARALLEL_HH
#define ALPHA_PIM_COMMON_PARALLEL_HH

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace alphapim
{

/**
 * Run fn(i) for every i in [0, count) across the machine's hardware
 * threads. Falls back to serial execution for small counts.
 */
template <typename Fn>
void
parallelFor(std::size_t count, Fn &&fn)
{
    const unsigned hw = std::thread::hardware_concurrency();
    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(hw ? hw : 1, count));
    if (workers <= 1 || count < 4) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&]() {
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= count)
                    return;
                fn(i);
            }
        });
    }
    for (auto &t : pool)
        t.join();
}

} // namespace alphapim

#endif // ALPHA_PIM_COMMON_PARALLEL_HH
