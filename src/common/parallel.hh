/**
 * @file
 * Host-side parallel-for used to simulate independent DPUs
 * concurrently. Work items must be mutually independent; results must
 * be written to per-item slots so the outcome is deterministic
 * regardless of thread count.
 *
 * The worker count defaults to the machine's hardware concurrency and
 * can be capped with the ALPHA_PIM_THREADS environment variable
 * (ALPHA_PIM_THREADS=1 forces serial execution -- useful for
 * profiling, debugging under a sanitizer, or pinning CI noise). The
 * variable is read once per process.
 */

#ifndef ALPHA_PIM_COMMON_PARALLEL_HH
#define ALPHA_PIM_COMMON_PARALLEL_HH

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <thread>
#include <vector>

namespace alphapim
{

/**
 * Combine the hardware thread count with an ALPHA_PIM_THREADS-style
 * override. `env` is the raw variable value (nullptr when unset);
 * only a positive decimal integer lowers the limit -- empty strings,
 * garbage, zero, and values above `hw` are ignored. Pure so tests can
 * exercise the parse without mutating the process environment.
 */
inline unsigned
parallelThreadLimit(const char *env, unsigned hw)
{
    unsigned limit = hw ? hw : 1;
    if (env) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end && end != env && *end == '\0' && v > 0 && v < limit)
            limit = static_cast<unsigned>(v);
    }
    return limit;
}

/**
 * Maximum worker threads parallelFor may use: the smaller of
 * hardware concurrency and ALPHA_PIM_THREADS (when set to a positive
 * integer; other values are ignored). Read once and cached.
 */
inline unsigned
parallelMaxThreads()
{
    static const unsigned cached =
        parallelThreadLimit(std::getenv("ALPHA_PIM_THREADS"),
                            std::thread::hardware_concurrency());
    return cached;
}

/**
 * Run fn(i) for every i in [0, count) across up to
 * parallelMaxThreads() workers. Falls back to serial execution for
 * small counts or when ALPHA_PIM_THREADS=1.
 */
template <typename Fn>
void
parallelFor(std::size_t count, Fn &&fn)
{
    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(parallelMaxThreads(), count));
    if (workers <= 1 || count < 4) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&]() {
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= count)
                    return;
                fn(i);
            }
        });
    }
    for (auto &t : pool)
        t.join();
}

} // namespace alphapim

#endif // ALPHA_PIM_COMMON_PARALLEL_HH
