/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component (graph generators, weight assignment,
 * source-vertex selection) draws from an explicitly seeded Xoshiro256**
 * stream so that experiments are exactly reproducible across runs and
 * machines. std::mt19937 is avoided because its distribution adapters
 * are implementation-defined; all distributions here are hand-rolled.
 */

#ifndef ALPHA_PIM_COMMON_RANDOM_HH
#define ALPHA_PIM_COMMON_RANDOM_HH

#include <cmath>
#include <cstdint>

namespace alphapim
{

/**
 * Xoshiro256** generator (Blackman & Vigna). Fast, high-quality,
 * 256-bit state, suitable for splitting into independent streams.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed via SplitMix64 state expansion. */
    explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL);

    /** Next raw 64-bit output. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using Lemire's method. bound > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform float in [0, 1). */
    float nextFloat();

    /** Standard normal variate (Box-Muller, cached pair). */
    double nextGaussian();

    /** Lognormal variate with the given *underlying* normal mu/sigma. */
    double nextLognormal(double mu, double sigma);

    /** True with probability p. */
    bool nextBernoulli(double p);

    /**
     * Spawn an independent child stream. The child is seeded from this
     * stream's output so sibling streams are decorrelated.
     */
    Rng split();

  private:
    std::uint64_t state_[4];
    double cachedGaussian_ = 0.0;
    bool hasCachedGaussian_ = false;
};

} // namespace alphapim

#endif // ALPHA_PIM_COMMON_RANDOM_HH
