#include "table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "logging.hh"

namespace alphapim
{

namespace
{

/** Sentinel row meaning "draw a separator here". */
const std::string separatorMark = "\x01--sep--";

} // namespace

TextTable::TextTable(std::string title)
    : title_(std::move(title))
{
}

void
TextTable::setHeader(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    ALPHA_ASSERT(header_.empty() || cells.size() == header_.size(),
                 "row width does not match header width");
    rows_.push_back(std::move(cells));
}

void
TextTable::addSeparator()
{
    rows_.push_back({separatorMark});
}

std::string
TextTable::render() const
{
    // Column widths from header and all data rows.
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t i = 0; i < header_.size(); ++i)
        widths[i] = header_[i].size();
    for (const auto &row : rows_) {
        if (!row.empty() && row[0] == separatorMark)
            continue;
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    }

    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            out << (i ? "  " : "");
            out << row[i];
            if (i + 1 < row.size())
                out << std::string(widths[i] - row[i].size(), ' ');
        }
        out << "\n";
    };
    auto emit_sep = [&]() {
        std::size_t total = 0;
        for (std::size_t i = 0; i < widths.size(); ++i)
            total += widths[i] + (i ? 2 : 0);
        out << std::string(total, '-') << "\n";
    };

    if (!title_.empty()) {
        out << "== " << title_ << " ==\n";
    }
    if (!header_.empty()) {
        emit_row(header_);
        emit_sep();
    }
    for (const auto &row : rows_) {
        if (!row.empty() && row[0] == separatorMark)
            emit_sep();
        else
            emit_row(row);
    }
    return out.str();
}

void
TextTable::print() const
{
    const std::string text = render();
    std::fwrite(text.data(), 1, text.size(), stdout);
    std::fflush(stdout);
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

} // namespace alphapim
