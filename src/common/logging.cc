#include "logging.hh"

#include <cstdio>
#include <cstdlib>

namespace alphapim
{

namespace
{

LogLevel globalLevel = LogLevel::Normal;

/** Shared prefix + vprintf helper for all log channels. */
void
emit(const char *tag, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (globalLevel == LogLevel::Silent)
        return;
    va_list args;
    va_start(args, fmt);
    emit("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (globalLevel == LogLevel::Silent)
        return;
    va_list args;
    va_start(args, fmt);
    emit("info", fmt, args);
    va_end(args);
}

void
debugLog(const char *fmt, ...)
{
    if (globalLevel != LogLevel::Verbose)
        return;
    va_list args;
    va_start(args, fmt);
    emit("debug", fmt, args);
    va_end(args);
}

} // namespace alphapim
