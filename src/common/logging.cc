#include "logging.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace alphapim
{

namespace
{

LogLevel globalLevel = LogLevel::Normal;

/** Shared prefix + vprintf helper for all log channels. */
void
emit(const char *tag, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

/** Applies ALPHA_PIM_LOG once before main() runs. */
struct LogEnvInit
{
    LogEnvInit() { refreshLogLevelFromEnv(); }
} logEnvInit;

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

bool
setLogLevelByName(const char *name)
{
    if (std::strcmp(name, "silent") == 0)
        globalLevel = LogLevel::Silent;
    else if (std::strcmp(name, "normal") == 0)
        globalLevel = LogLevel::Normal;
    else if (std::strcmp(name, "verbose") == 0)
        globalLevel = LogLevel::Verbose;
    else
        return false;
    return true;
}

void
refreshLogLevelFromEnv()
{
    const char *env = std::getenv("ALPHA_PIM_LOG");
    if (!env || *env == '\0')
        return;
    if (!setLogLevelByName(env))
        warn("ignoring unknown ALPHA_PIM_LOG level '%s'", env);
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (globalLevel == LogLevel::Silent)
        return;
    va_list args;
    va_start(args, fmt);
    emit("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (globalLevel == LogLevel::Silent)
        return;
    va_list args;
    va_start(args, fmt);
    emit("info", fmt, args);
    va_end(args);
}

void
debugLog(const char *subsystem, const char *fmt, ...)
{
    if (globalLevel != LogLevel::Verbose)
        return;
    char tag[64];
    std::snprintf(tag, sizeof(tag), "debug[%s]", subsystem);
    va_list args;
    va_start(args, fmt);
    emit(tag, fmt, args);
    va_end(args);
}

} // namespace alphapim
