#include "random.hh"

#include "logging.hh"

namespace alphapim
{

namespace
{

/** SplitMix64 step, used only to expand the seed into generator state. */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : state_)
        word = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    ALPHA_ASSERT(bound > 0, "nextBounded requires a positive bound");
    // Lemire's nearly-divisionless rejection method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
        const std::uint64_t threshold = -bound % bound;
        while (low < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            low = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

float
Rng::nextFloat()
{
    return static_cast<float>(next() >> 40) * 0x1.0p-24f;
}

double
Rng::nextGaussian()
{
    if (hasCachedGaussian_) {
        hasCachedGaussian_ = false;
        return cachedGaussian_;
    }
    // Box-Muller on two uniforms; guard u1 away from zero.
    double u1 = nextDouble();
    while (u1 <= 1e-300)
        u1 = nextDouble();
    const double u2 = nextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedGaussian_ = r * std::sin(theta);
    hasCachedGaussian_ = true;
    return r * std::cos(theta);
}

double
Rng::nextLognormal(double mu, double sigma)
{
    return std::exp(mu + sigma * nextGaussian());
}

bool
Rng::nextBernoulli(double p)
{
    return nextDouble() < p;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xa5a5a5a5deadbeefULL);
}

} // namespace alphapim
