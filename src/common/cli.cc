#include "cli.hh"

namespace alphapim
{

bool
CliArgs::next()
{
    ++i_;
    if (i_ >= argc_)
        return false;
    arg_ = argv_[i_];
    inline_value_.clear();
    has_inline_ = false;
    if (const std::size_t eq = arg_.find('=');
        eq != std::string::npos && arg_.rfind("--", 0) == 0) {
        inline_value_ = arg_.substr(eq + 1);
        arg_.resize(eq);
        has_inline_ = true;
    }
    return true;
}

const char *
CliArgs::value()
{
    if (has_inline_)
        return inline_value_.c_str();
    if (i_ + 1 >= argc_) {
        if (on_missing_)
            on_missing_(arg_);
        return "";
    }
    return argv_[++i_];
}

} // namespace alphapim
