/**
 * @file
 * gem5-style metrics registry: flat, dot-separated metric names
 * ("engine.iterations", "dpu.stall.memory_cycles", ...) mapping to
 * integer counters, floating-point scalars (accumulated seconds,
 * fractions), and sample distributions (per-DPU cycle counts for
 * load-imbalance analysis). Instrumented code records
 * unconditionally; every mutator is a no-op while the registry is
 * disabled, keeping the fast path free of bookkeeping.
 *
 * The registry exports as JSONL -- one self-describing JSON record
 * per metric, in sorted name order -- so benches and regression
 * tooling can diff runs mechanically. See docs/OBSERVABILITY.md for
 * the naming scheme.
 */

#ifndef ALPHA_PIM_TELEMETRY_METRICS_HH
#define ALPHA_PIM_TELEMETRY_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

#include "common/stats.hh"

namespace alphapim::telemetry
{

/** Named counters / scalars / distributions with JSONL export. */
class MetricsRegistry
{
  public:
    /** True when the registry accepts updates. */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Enable or disable recording. */
    void setEnabled(bool on);

    /** Add `delta` to an integer counter (created on first use). */
    void addCounter(std::string_view name, std::uint64_t delta = 1);

    /** Add `delta` to a floating-point scalar. */
    void addScalar(std::string_view name, double delta);

    /** Overwrite a floating-point scalar. */
    void setScalar(std::string_view name, double value);

    /** Fold one sample into a distribution. Below the sample cap
     * every sample is retained (exact percentiles); past the cap the
     * retained set becomes a uniform reservoir (Algorithm R with a
     * deterministic per-entry generator) and the overflow is counted
     * in `<name>.samples_dropped`. */
    void addSample(std::string_view name, double x);

    /** Per-distribution retained-sample cap (default 8192). Applies
     * to samples recorded after the call; 0 means "retain none". */
    void setSampleCap(std::size_t cap);

    /** The current retained-sample cap. */
    std::size_t sampleCap() const;

    /** Samples a distribution has seen past the cap (0 when absent
     * or never capped). */
    std::uint64_t samplesDropped(std::string_view name) const;

    /** Sum of samplesDropped over every distribution -- telemetry
     * health, surfaced so reports can warn about degraded
     * percentiles. */
    std::uint64_t totalSamplesDropped() const;

    /** Counter value; 0 when the counter does not exist. */
    std::uint64_t counterValue(std::string_view name) const;

    /** Scalar value; 0.0 when the scalar does not exist. */
    double scalarValue(std::string_view name) const;

    /** Distribution by name; nullptr when absent. The pointer stays
     * valid until clear(). */
    const RunningStats *distribution(std::string_view name) const;

    /** Exact percentile of a distribution's retained samples (see
     * alphapim::percentile; `p` in [0, 100]). NaN when the
     * distribution is absent or empty. */
    double distributionPercentile(std::string_view name,
                                  double p) const;

    /** Number of registered metrics of all kinds. */
    std::size_t size() const;

    /** Approximate heap bytes held by the registry (names, map
     * nodes, retained samples). Memory-footprint accounting for the
     * host observatory. */
    std::uint64_t approxBytes() const;

    /** Drop every metric (the enabled flag is unchanged). */
    void clear();

    /** Render all metrics as JSONL, sorted by name within each kind. */
    std::string jsonl() const;

    /** Write the JSONL rendering to a stream. */
    void writeJsonl(std::ostream &out) const;

  private:
    /** One distribution: running moments plus retained samples. All
     * samples are kept until the cap, so percentiles stay exact for
     * typical runs; past the cap the sample set degrades gracefully
     * into a uniform reservoir and `dropped` counts the overflow. */
    struct DistEntry
    {
        RunningStats stats;
        std::vector<double> samples;
        std::uint64_t dropped = 0;
        std::uint64_t rng = 0; ///< per-entry reservoir generator
    };

    std::atomic<bool> enabled_{false};
    std::atomic<std::size_t> sampleCap_{8192};
    mutable std::mutex mutex_;
    std::map<std::string, std::uint64_t, std::less<>> counters_;
    std::map<std::string, double, std::less<>> scalars_;
    std::map<std::string, DistEntry, std::less<>> distributions_;
};

/** The process-wide metrics registry. */
MetricsRegistry &metrics();

} // namespace alphapim::telemetry

#endif // ALPHA_PIM_TELEMETRY_METRICS_HH
