#include "json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace alphapim::telemetry
{

// ---------------------------------------------------------------- writer

std::string
JsonWriter::quote(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

std::string
JsonWriter::number(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[32];
    // Shortest representation that round-trips a double.
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    double parsed = std::strtod(buf, nullptr);
    if (parsed == v) {
        // Try shorter forms for readability.
        for (int prec = 1; prec < 17; ++prec) {
            char shorter[32];
            std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
            if (std::strtod(shorter, nullptr) == v)
                return shorter;
        }
    }
    return buf;
}

void
JsonWriter::separate()
{
    if (stack_.empty())
        return;
    Frame &top = stack_.back();
    if (top.isObject) {
        if (top.expectValue) {
            top.expectValue = false;
            return; // value directly after its key
        }
        panic("JsonWriter: object value without a key");
    }
    if (top.items > 0)
        out_.push_back(',');
    ++top.items;
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    out_.push_back('{');
    stack_.push_back({true, 0, false});
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    ALPHA_ASSERT(!stack_.empty() && stack_.back().isObject &&
                     !stack_.back().expectValue,
                 "endObject outside an object or after a dangling key");
    stack_.pop_back();
    out_.push_back('}');
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    out_.push_back('[');
    stack_.push_back({false, 0, false});
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    ALPHA_ASSERT(!stack_.empty() && !stack_.back().isObject,
                 "endArray outside an array");
    stack_.pop_back();
    out_.push_back(']');
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    ALPHA_ASSERT(!stack_.empty() && stack_.back().isObject &&
                     !stack_.back().expectValue,
                 "key() outside an object or after another key");
    Frame &top = stack_.back();
    if (top.items > 0)
        out_.push_back(',');
    ++top.items;
    top.expectValue = true;
    out_ += quote(k);
    out_.push_back(':');
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    separate();
    out_ += quote(v);
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    separate();
    out_ += number(v);
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    separate();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    separate();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separate();
    out_ += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    separate();
    out_ += "null";
    return *this;
}

JsonWriter &
JsonWriter::rawValue(std::string_view json)
{
    separate();
    out_ += json;
    return *this;
}

// ---------------------------------------------------------------- parser

/** Recursive-descent parser over a string_view. */
class JsonParser
{
  public:
    JsonParser(std::string_view text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool
    parseDocument(JsonValue &out)
    {
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool
    fail(const char *msg)
    {
        if (error_) {
            *error_ = std::string(msg) + " at offset " +
                      std::to_string(pos_);
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    parseLiteral(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected string");
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                return fail("truncated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':
                out.push_back('"');
                break;
              case '\\':
                out.push_back('\\');
                break;
              case '/':
                out.push_back('/');
                break;
              case 'b':
                out.push_back('\b');
                break;
              case 'f':
                out.push_back('\f');
                break;
              case 'n':
                out.push_back('\n');
                break;
              case 'r':
                out.push_back('\r');
                break;
              case 't':
                out.push_back('\t');
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code += static_cast<unsigned>(h - 'a') + 10;
                    else if (h >= 'A' && h <= 'F')
                        code += static_cast<unsigned>(h - 'A') + 10;
                    else
                        return fail("bad \\u escape digit");
                }
                // UTF-8 encode (surrogate pairs not needed for the
                // ASCII-ish telemetry output; encode BMP directly).
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(
                        static_cast<char>(0xC0 | (code >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(
                        static_cast<char>(0xE0 | (code >> 12)));
                    out.push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(double &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start)
            return fail("expected number");
        const std::string token(text_.substr(start, pos_ - start));
        char *end = nullptr;
        out = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            return fail("malformed number");
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        const char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            out.type_ = JsonValue::Type::Object;
            skipWs();
            if (consume('}'))
                return true;
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (!consume(':'))
                    return fail("expected ':'");
                JsonValue member;
                if (!parseValue(member))
                    return false;
                out.members_.emplace_back(std::move(key),
                                          std::move(member));
                skipWs();
                if (consume(','))
                    continue;
                if (consume('}'))
                    return true;
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos_;
            out.type_ = JsonValue::Type::Array;
            skipWs();
            if (consume(']'))
                return true;
            while (true) {
                JsonValue item;
                if (!parseValue(item))
                    return false;
                out.items_.push_back(std::move(item));
                skipWs();
                if (consume(','))
                    continue;
                if (consume(']'))
                    return true;
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            out.type_ = JsonValue::Type::String;
            return parseString(out.string_);
        }
        if (parseLiteral("true")) {
            out.type_ = JsonValue::Type::Bool;
            out.boolean_ = true;
            return true;
        }
        if (parseLiteral("false")) {
            out.type_ = JsonValue::Type::Bool;
            out.boolean_ = false;
            return true;
        }
        if (parseLiteral("null")) {
            out.type_ = JsonValue::Type::Null;
            return true;
        }
        out.type_ = JsonValue::Type::Number;
        return parseNumber(out.number_);
    }

    std::string_view text_;
    std::string *error_;
    std::size_t pos_ = 0;
};

const JsonValue *
JsonValue::find(std::string_view key) const
{
    for (const auto &[k, v] : members_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

bool
JsonValue::parse(std::string_view text, JsonValue &out,
                 std::string *error)
{
    out = JsonValue();
    JsonParser parser(text, error);
    return parser.parseDocument(out);
}

} // namespace alphapim::telemetry
