#include "telemetry/host_prof.hh"

#include <cctype>
#include <cstdio>
#include <cstring>
#include <string>

#include "telemetry/metrics.hh"
#include "telemetry/trace.hh"

namespace alphapim::telemetry
{

namespace
{

/** Innermost live timer on this thread (self-time attribution). */
thread_local HostPhaseTimer *currentTimer = nullptr;

/** Parse one "Vm...:  <kB> kB" line out of /proc/self/status. */
std::uint64_t
procStatusKb(const char *field)
{
#ifdef __linux__
    std::FILE *f = std::fopen("/proc/self/status", "r");
    if (!f)
        return 0;
    const std::size_t fieldLen = std::strlen(field);
    char line[256];
    std::uint64_t kb = 0;
    while (std::fgets(line, sizeof(line), f)) {
        if (std::strncmp(line, field, fieldLen) != 0 ||
            line[fieldLen] != ':')
            continue;
        const char *p = line + fieldLen + 1;
        while (*p && !std::isdigit(static_cast<unsigned char>(*p)))
            ++p;
        kb = std::strtoull(p, nullptr, 10);
        break;
    }
    std::fclose(f);
    return kb;
#else
    (void)field;
    return 0;
#endif
}

} // namespace

const char *
hostPhaseName(HostPhase phase)
{
    switch (phase) {
    case HostPhase::PartitionBuild:
        return "partition_build";
    case HostPhase::TraceRecord:
        return "trace_record";
    case HostPhase::Replay:
        return "replay";
    case HostPhase::ProfileFold:
        return "profile_fold";
    case HostPhase::TransferModel:
        return "transfer_model";
    case HostPhase::HostMerge:
        return "host_merge";
    case HostPhase::Analysis:
        return "analysis";
    }
    return "unknown";
}

void
HostProfiler::setEnabled(bool on)
{
    enabled_.store(on, std::memory_order_relaxed);
}

void
HostProfiler::reset()
{
    for (unsigned p = 0; p < kHostPhaseCount; ++p) {
        phaseNanos_[p].store(0, std::memory_order_relaxed);
        phaseCalls_[p].store(0, std::memory_order_relaxed);
    }
    replaySlots_.store(0, std::memory_order_relaxed);
    traceRecords_.store(0, std::memory_order_relaxed);
    taskletTraceBytesPeak_.store(0, std::memory_order_relaxed);
}

void
HostProfiler::addPhaseNanos(HostPhase phase, std::uint64_t ns)
{
    const unsigned p = static_cast<unsigned>(phase);
    phaseNanos_[p].fetch_add(ns, std::memory_order_relaxed);
    phaseCalls_[p].fetch_add(1, std::memory_order_relaxed);
}

void
HostProfiler::addReplaySlots(std::uint64_t slots)
{
    replaySlots_.fetch_add(slots, std::memory_order_relaxed);
}

void
HostProfiler::addTraceRecords(std::uint64_t records)
{
    traceRecords_.fetch_add(records, std::memory_order_relaxed);
}

void
HostProfiler::noteTaskletTraceBytes(std::uint64_t bytes)
{
    std::uint64_t seen =
        taskletTraceBytesPeak_.load(std::memory_order_relaxed);
    while (bytes > seen &&
           !taskletTraceBytesPeak_.compare_exchange_weak(
               seen, bytes, std::memory_order_relaxed))
        ;
}

double
HostProfiler::phaseSeconds(HostPhase phase) const
{
    const unsigned p = static_cast<unsigned>(phase);
    return static_cast<double>(
               phaseNanos_[p].load(std::memory_order_relaxed)) *
           1e-9;
}

std::uint64_t
HostProfiler::phaseCalls(HostPhase phase) const
{
    const unsigned p = static_cast<unsigned>(phase);
    return phaseCalls_[p].load(std::memory_order_relaxed);
}

HostProfile
HostProfiler::snapshot(double modelSeconds) const
{
    HostProfile prof;
    for (unsigned p = 0; p < kHostPhaseCount; ++p) {
        prof.phaseSeconds[p] =
            static_cast<double>(
                phaseNanos_[p].load(std::memory_order_relaxed)) *
            1e-9;
        prof.phaseCalls[p] =
            phaseCalls_[p].load(std::memory_order_relaxed);
        prof.totalSeconds += prof.phaseSeconds[p];
    }
    prof.replaySlots = replaySlots_.load(std::memory_order_relaxed);
    prof.traceRecords =
        traceRecords_.load(std::memory_order_relaxed);
    prof.taskletTraceBytesPeak =
        taskletTraceBytesPeak_.load(std::memory_order_relaxed);
    prof.tracerBytes = tracer().approxBytes();
    prof.metricsBytes = metrics().approxBytes();
    prof.peakRssBytes = peakRssBytes();
    prof.currentRssBytes = currentRssBytes();

    const double replaySec =
        prof.phaseSeconds[static_cast<unsigned>(HostPhase::Replay)];
    if (replaySec > 0.0)
        prof.replaySlotsPerSec =
            static_cast<double>(prof.replaySlots) / replaySec;
    const double recordSec = prof.phaseSeconds[static_cast<unsigned>(
        HostPhase::TraceRecord)];
    if (recordSec > 0.0)
        prof.traceRecordsPerSec =
            static_cast<double>(prof.traceRecords) / recordSec;
    prof.modelSeconds = modelSeconds;
    if (modelSeconds > 0.0)
        prof.slowdownFactor = prof.totalSeconds / modelSeconds;
    return prof;
}

std::uint64_t
HostProfiler::currentRssBytes()
{
    return procStatusKb("VmRSS") * 1024;
}

std::uint64_t
HostProfiler::peakRssBytes()
{
    return procStatusKb("VmHWM") * 1024;
}

HostProfiler &
hostProfiler()
{
    static HostProfiler instance;
    return instance;
}

HostPhaseTimer::HostPhaseTimer(HostPhase phase)
    : active_(hostProfiler().enabled()), phase_(phase)
{
    if (!active_)
        return;
    parent_ = currentTimer;
    currentTimer = this;
    start_ = std::chrono::steady_clock::now();
}

HostPhaseTimer::~HostPhaseTimer()
{
    if (!active_)
        return;
    const auto end = std::chrono::steady_clock::now();
    const std::uint64_t elapsed = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end -
                                                             start_)
            .count());
    const std::uint64_t self =
        elapsed > childNanos_ ? elapsed - childNanos_ : 0;
    hostProfiler().addPhaseNanos(phase_, self);
    currentTimer = parent_;
    if (parent_)
        parent_->childNanos_ += elapsed;
}

HostProfile
publishHostProfile(double modelSeconds)
{
    HostProfiler &prof = hostProfiler();
    if (!prof.enabled())
        return {};
    const HostProfile s = prof.snapshot(modelSeconds);

    MetricsRegistry &m = metrics();
    for (unsigned p = 0; p < kHostPhaseCount; ++p) {
        const std::string base =
            std::string("host.phase.") +
            hostPhaseName(static_cast<HostPhase>(p));
        m.setScalar(base + ".seconds", s.phaseSeconds[p]);
        m.setScalar(base + ".calls",
                    static_cast<double>(s.phaseCalls[p]));
    }
    m.setScalar("host.total_seconds", s.totalSeconds);
    m.setScalar("host.replay_slots",
                static_cast<double>(s.replaySlots));
    m.setScalar("host.trace_records",
                static_cast<double>(s.traceRecords));
    m.setScalar("host.replay_slots_per_sec", s.replaySlotsPerSec);
    m.setScalar("host.trace_records_per_sec", s.traceRecordsPerSec);
    m.setScalar("host.slowdown_factor", s.slowdownFactor);
    m.setScalar("host.mem.tasklet_trace_bytes_peak",
                static_cast<double>(s.taskletTraceBytesPeak));
    m.setScalar("host.mem.tracer_bytes",
                static_cast<double>(s.tracerBytes));
    m.setScalar("host.mem.metrics_bytes",
                static_cast<double>(s.metricsBytes));
    m.setScalar("host.mem.peak_rss_bytes",
                static_cast<double>(s.peakRssBytes));
    m.setScalar("host.mem.current_rss_bytes",
                static_cast<double>(s.currentRssBytes));

    Tracer &t = tracer();
    if (t.enabled()) {
        std::vector<TraceArg> args;
        args.reserve(kHostPhaseCount + 10);
        for (unsigned p = 0; p < kHostPhaseCount; ++p)
            args.push_back(arg(
                std::string(hostPhaseName(
                    static_cast<HostPhase>(p))) +
                    "_seconds",
                s.phaseSeconds[p]));
        args.push_back(arg("total_seconds", s.totalSeconds));
        args.push_back(arg("model_seconds", s.modelSeconds));
        args.push_back(arg("slowdown_factor", s.slowdownFactor));
        args.push_back(arg("replay_slots", s.replaySlots));
        args.push_back(arg("trace_records", s.traceRecords));
        args.push_back(
            arg("replay_slots_per_sec", s.replaySlotsPerSec));
        args.push_back(
            arg("trace_records_per_sec", s.traceRecordsPerSec));
        args.push_back(arg("tasklet_trace_bytes_peak",
                           s.taskletTraceBytesPeak));
        args.push_back(arg("peak_rss_bytes", s.peakRssBytes));
        args.push_back(
            arg("current_rss_bytes", s.currentRssBytes));
        // Telemetry health riders: downstream readers (explain) warn
        // when spans or distribution samples were dropped.
        args.push_back(
            arg("trace_dropped_spans", t.droppedEvents()));
        args.push_back(arg("metrics_samples_dropped",
                           m.totalSamplesDropped()));
        t.instantEvent(engineTrack, "host_profile", "host", t.now(),
                       std::move(args));
    }
    return s;
}

} // namespace alphapim::telemetry
