#include "timeline.hh"

#include <algorithm>
#include <cstdlib>

namespace alphapim::telemetry
{

namespace
{

/** Numeric value of a pre-encoded JSON arg fragment (0 otherwise). */
double
argNumber(const std::vector<TraceArg> &args, const char *key)
{
    for (const TraceArg &a : args) {
        if (a.key == key)
            return std::strtod(a.json.c_str(), nullptr);
    }
    return 0.0;
}

/** Sort spans by start (duration-desc tie break, like the viewer). */
void
sortSpans(std::vector<TimelineSpan> &spans)
{
    std::stable_sort(spans.begin(), spans.end(),
                     [](const TimelineSpan &a, const TimelineSpan &b) {
                         if (a.start != b.start)
                             return a.start < b.start;
                         return a.duration > b.duration;
                     });
}

/** Index of the span whose [start, end] contains `t`; npos if none.
 * Later spans win so nested emission order is irrelevant. */
std::size_t
spanAt(const std::vector<TimelineSpan> &spans, Seconds t)
{
    for (std::size_t k = spans.size(); k-- > 0;) {
        if (spans[k].start <= t && t <= spans[k].end())
            return k;
    }
    return static_cast<std::size_t>(-1);
}

} // namespace

Seconds
Timeline::accountedSeconds() const
{
    Seconds total = 0.0;
    for (const LaunchWindow &l : launches)
        total += l.total();
    return total;
}

Timeline
buildTimeline(const std::vector<TraceEvent> &events)
{
    std::vector<TimelineSpan> spans;
    spans.reserve(events.size());
    for (const TraceEvent &e : events) {
        if (e.phase != 'X')
            continue;
        TimelineSpan s;
        s.name = e.name;
        s.category = e.category;
        s.pid = e.track.pid;
        s.tid = e.track.tid;
        s.start = e.start;
        s.duration = e.duration;
        s.bytes = argNumber(e.args, "bytes");
        s.cycles = argNumber(e.args, "cycles");
        s.issued = argNumber(e.args, "issued");
        s.stallMemory = argNumber(e.args, "stall_memory");
        s.stallRevolver = argNumber(e.args, "stall_revolver");
        s.stallRfHazard = argNumber(e.args, "stall_rf_hazard");
        s.stallSync = argNumber(e.args, "stall_sync");
        s.instr = argNumber(e.args, "instr");
        s.mramBytes = argNumber(e.args, "mram_bytes");
        spans.push_back(std::move(s));
    }
    return buildTimeline(spans);
}

Timeline
buildTimeline(const std::vector<TimelineSpan> &spans)
{
    Timeline tl;
    std::vector<TimelineSpan> multiplies;
    std::vector<TimelineSpan> phases;
    bool any = false;
    for (const TimelineSpan &s : spans) {
        if (!any || s.start < tl.windowStart)
            tl.windowStart = s.start;
        if (!any || s.end() > tl.windowEnd)
            tl.windowEnd = s.end();
        any = true;
        if (s.pid == pidRank) {
            tl.rankSpans[s.tid].push_back(s);
        } else if (s.pid == pidDpu) {
            tl.dpuSpans[s.tid].push_back(s);
        } else if (s.pid == pidEngine) {
            if (s.category == "multiply")
                multiplies.push_back(s);
            else if (s.category == "phase")
                phases.push_back(s);
            else if (s.category == "app" &&
                     s.name.size() > 10 &&
                     s.name.compare(s.name.size() - 10, 10,
                                    ".iteration") == 0)
                tl.iterations.push_back(s);
        }
    }
    if (!any)
        return tl;
    for (auto &[rank, list] : tl.rankSpans)
        sortSpans(list);
    for (auto &[dpu, list] : tl.dpuSpans)
        sortSpans(list);
    sortSpans(multiplies);
    sortSpans(phases);
    sortSpans(tl.iterations);

    // Launch windows from the multiply spans; their phase breakdown
    // from the phase spans tiled inside each window (matched by
    // midpoint, so exact boundary arithmetic does not matter).
    std::vector<LaunchWindow> launches;
    std::vector<char> refined(multiplies.size(), 0);
    launches.reserve(multiplies.size());
    for (const TimelineSpan &m : multiplies) {
        LaunchWindow w;
        w.kernel = m.name;
        w.start = m.start;
        launches.push_back(std::move(w));
    }
    for (const TimelineSpan &p : phases) {
        const std::size_t k = spanAt(multiplies, p.mid());
        if (k == static_cast<std::size_t>(-1))
            continue;
        refined[k] = 1;
        if (p.name == "load")
            launches[k].load = p.duration;
        else if (p.name == "kernel")
            launches[k].kernel_time = p.duration;
        else if (p.name == "retrieve")
            launches[k].retrieve = p.duration;
        else if (p.name == "merge")
            launches[k].merge = p.duration;
    }
    // A multiply without phase spans (older or foreign traces) keeps
    // its whole duration, attributed to merge as the only bucket.
    for (std::size_t k = 0; k < launches.size(); ++k) {
        if (!refined[k])
            launches[k].merge = multiplies[k].duration;
    }

    // Fold the host extra the applications account after the phase
    // spans (graph_apps' host_merge_extra) back into the enclosing
    // launch's merge phase: phase attribution then sums to the
    // iteration span, i.e. to total model time.
    for (const TimelineSpan &it : tl.iterations) {
        std::size_t last = static_cast<std::size_t>(-1);
        for (std::size_t k = 0; k < launches.size(); ++k) {
            const Seconds mid =
                launches[k].start + launches[k].total() / 2.0;
            if (it.start <= mid && mid <= it.end())
                last = k;
        }
        if (last == static_cast<std::size_t>(-1))
            continue;
        const Seconds gap = it.end() - launches[last].end();
        if (gap > 0.0)
            launches[last].merge += gap;
    }
    tl.launches = std::move(launches);
    return tl;
}

Seconds
unionLength(std::vector<std::pair<Seconds, Seconds>> intervals)
{
    std::sort(intervals.begin(), intervals.end());
    Seconds total = 0.0;
    Seconds cur_start = 0.0;
    Seconds cur_end = 0.0;
    bool open = false;
    for (const auto &[start, end] : intervals) {
        if (end <= start)
            continue;
        if (!open || start > cur_end) {
            if (open)
                total += cur_end - cur_start;
            cur_start = start;
            cur_end = end;
            open = true;
        } else {
            cur_end = std::max(cur_end, end);
        }
    }
    if (open)
        total += cur_end - cur_start;
    return total;
}

namespace
{

/** Merge into disjoint sorted intervals. */
std::vector<std::pair<Seconds, Seconds>>
normalize(std::vector<std::pair<Seconds, Seconds>> intervals)
{
    std::sort(intervals.begin(), intervals.end());
    std::vector<std::pair<Seconds, Seconds>> out;
    for (const auto &[start, end] : intervals) {
        if (end <= start)
            continue;
        if (out.empty() || start > out.back().second)
            out.emplace_back(start, end);
        else
            out.back().second = std::max(out.back().second, end);
    }
    return out;
}

} // namespace

Seconds
intersectionLength(std::vector<std::pair<Seconds, Seconds>> a,
                   std::vector<std::pair<Seconds, Seconds>> b)
{
    const auto na = normalize(std::move(a));
    const auto nb = normalize(std::move(b));
    Seconds total = 0.0;
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < na.size() && j < nb.size()) {
        const Seconds lo = std::max(na[i].first, nb[j].first);
        const Seconds hi = std::min(na[i].second, nb[j].second);
        if (hi > lo)
            total += hi - lo;
        if (na[i].second < nb[j].second)
            ++i;
        else
            ++j;
    }
    return total;
}

TimelineStats
computeStats(const Timeline &timeline)
{
    TimelineStats s;
    s.windowSeconds = timeline.window();
    s.launches = timeline.launches.size();
    s.ranks = timeline.rankSpans.size();
    s.dpus = timeline.dpuSpans.size();

    std::vector<std::pair<Seconds, Seconds>> xfer_busy;
    std::vector<std::pair<Seconds, Seconds>> kernel_busy;

    for (const auto &[rank, spans] : timeline.rankSpans) {
        std::vector<std::pair<Seconds, Seconds>> busy;
        busy.reserve(spans.size());
        for (const TimelineSpan &span : spans) {
            busy.emplace_back(span.start, span.end());
            xfer_busy.emplace_back(span.start, span.end());
        }
        const double frac = s.windowSeconds > 0.0
            ? unionLength(std::move(busy)) / s.windowSeconds
            : 0.0;
        s.rankOccupancy.emplace_back(rank, frac);
    }
    for (const auto &[dpu, spans] : timeline.dpuSpans) {
        std::vector<std::pair<Seconds, Seconds>> busy;
        busy.reserve(spans.size());
        for (const TimelineSpan &span : spans) {
            busy.emplace_back(span.start, span.end());
            kernel_busy.emplace_back(span.start, span.end());
        }
        const double frac = s.windowSeconds > 0.0
            ? unionLength(std::move(busy)) / s.windowSeconds
            : 0.0;
        s.dpuOccupancy.emplace_back(dpu, frac);
    }

    if (!s.rankOccupancy.empty()) {
        double sum = 0.0;
        double min = s.rankOccupancy.front().second;
        for (const auto &[rank, frac] : s.rankOccupancy) {
            sum += frac;
            min = std::min(min, frac);
        }
        s.rankOccupancyMean =
            sum / static_cast<double>(s.rankOccupancy.size());
        s.rankOccupancyMin = min;
    }
    if (!s.dpuOccupancy.empty()) {
        double sum = 0.0;
        for (const auto &[dpu, frac] : s.dpuOccupancy)
            sum += frac;
        s.dpuOccupancyMean =
            sum / static_cast<double>(s.dpuOccupancy.size());
    }

    s.transferBusySeconds = unionLength(xfer_busy);
    s.kernelBusySeconds = unionLength(kernel_busy);
    s.overlapSeconds =
        intersectionLength(std::move(xfer_busy), kernel_busy);
    const Seconds smaller =
        std::min(s.transferBusySeconds, s.kernelBusySeconds);
    s.overlapFraction =
        smaller > 0.0 ? s.overlapSeconds / smaller : 0.0;

    std::vector<std::pair<Seconds, Seconds>> device_busy;
    for (const auto &[rank, spans] : timeline.rankSpans)
        for (const TimelineSpan &span : spans)
            device_busy.emplace_back(span.start, span.end());
    for (const auto &[dpu, spans] : timeline.dpuSpans)
        for (const TimelineSpan &span : spans)
            device_busy.emplace_back(span.start, span.end());
    s.idleFraction = s.windowSeconds > 0.0
        ? 1.0 - unionLength(std::move(device_busy)) / s.windowSeconds
        : 0.0;
    return s;
}

void
recordTimelineMetrics(const TimelineStats &stats,
                      MetricsRegistry &registry)
{
    if (!registry.enabled())
        return;
    registry.setScalar("timeline.window_seconds",
                       stats.windowSeconds);
    registry.setScalar("timeline.launches",
                       static_cast<double>(stats.launches));
    registry.setScalar("timeline.transfer_busy_seconds",
                       stats.transferBusySeconds);
    registry.setScalar("timeline.kernel_busy_seconds",
                       stats.kernelBusySeconds);
    registry.setScalar("timeline.overlap_fraction",
                       stats.overlapFraction);
    registry.setScalar("timeline.idle_fraction", stats.idleFraction);
    registry.setScalar("timeline.rank_occupancy_mean",
                       stats.rankOccupancyMean);
    registry.setScalar("timeline.rank_occupancy_min",
                       stats.rankOccupancyMin);
    registry.setScalar("timeline.dpu_occupancy_mean",
                       stats.dpuOccupancyMean);
    for (const auto &[rank, frac] : stats.rankOccupancy) {
        (void)rank;
        registry.addSample("timeline.rank.occupancy", frac);
    }
    for (const auto &[dpu, frac] : stats.dpuOccupancy) {
        (void)dpu;
        registry.addSample("timeline.dpu.occupancy", frac);
    }
}

} // namespace alphapim::telemetry
