/**
 * @file
 * Host-performance observatory: a low-overhead wall-clock phase
 * profiler for the simulator itself. Every other telemetry layer in
 * this tree measures *model* time (simulated seconds); this one
 * measures where the simulator's own host seconds and bytes go --
 * partition build, trace record, revolver replay, the serial profile
 * fold, transfer modeling, host merge, analysis passes -- so the
 * ROADMAP item 3 optimizations (parallel replay, TaskletTrace
 * arenas) can be justified and regression-gated with data.
 *
 * Design constraints mirror the tracer's: recording entry points
 * check one relaxed atomic and return when disabled, so tier-1 bench
 * timing is unaffected unless profiling is requested. Aggregation is
 * thread-aware: per-phase totals are relaxed atomics (replay runs on
 * parallelFor workers), and a thread-local timer stack attributes
 * *self* time -- a nested phase's wall time is subtracted from its
 * parent, so phase seconds sum to profiled wall seconds instead of
 * double-counting.
 */

#ifndef ALPHA_PIM_TELEMETRY_HOST_PROF_HH
#define ALPHA_PIM_TELEMETRY_HOST_PROF_HH

#include <atomic>
#include <chrono>
#include <cstdint>

namespace alphapim::telemetry
{

/** The simulator's host cost centers. */
enum class HostPhase : unsigned
{
    PartitionBuild, ///< kernel construction: row/col/grid blocks
    TraceRecord,    ///< functional execution + trace generation
    Replay,         ///< revolver-scheduler replay (per DPU)
    ProfileFold,    ///< serial per-DPU profile fold in the launcher
    TransferModel,  ///< scatter/gather/broadcast cost modeling
    HostMerge,      ///< host-side merge of per-DPU results
    Analysis,       ///< checker / capture / imbalance / timeline
};

/** Number of HostPhase values. */
inline constexpr unsigned kHostPhaseCount = 7;

/** Stable lowercase phase name ("partition_build", "replay", ...). */
const char *hostPhaseName(HostPhase phase);

/**
 * Point-in-time aggregate of the profiler, plus derived throughput
 * and memory numbers. Produced by HostProfiler::snapshot().
 */
struct HostProfile
{
    /** Per-phase self wall seconds, indexed by HostPhase. */
    double phaseSeconds[kHostPhaseCount] = {};

    /** Per-phase timer invocations, indexed by HostPhase. */
    std::uint64_t phaseCalls[kHostPhaseCount] = {};

    /** Sum of the per-phase self seconds. */
    double totalSeconds = 0.0;

    /** Replayed instruction slots (issue-slot cycles fed through the
     * revolver scheduler). */
    std::uint64_t replaySlots = 0;

    /** TaskletTrace records generated (traced instruction events). */
    std::uint64_t traceRecords = 0;

    /** High-water mark of live TaskletTrace bytes across launches. */
    std::uint64_t taskletTraceBytesPeak = 0;

    /** Approximate tracer event-buffer bytes at snapshot time. */
    std::uint64_t tracerBytes = 0;

    /** Approximate metrics-registry bytes at snapshot time. */
    std::uint64_t metricsBytes = 0;

    /** Peak resident set (VmHWM), bytes; 0 when unavailable. */
    std::uint64_t peakRssBytes = 0;

    /** Current resident set (VmRSS), bytes; 0 when unavailable. */
    std::uint64_t currentRssBytes = 0;

    /** Replayed slots per second of replay-phase wall time. */
    double replaySlotsPerSec = 0.0;

    /** Trace records per second of trace-record-phase wall time. */
    double traceRecordsPerSec = 0.0;

    /** Model seconds covered by this profile (caller-provided). */
    double modelSeconds = 0.0;

    /** Simulation slowdown factor: profiled host seconds per modeled
     * second (totalSeconds / modelSeconds; 0 when model time is 0). */
    double slowdownFactor = 0.0;
};

/**
 * Process-wide host-phase aggregator. All mutators are no-ops while
 * disabled; the enabled check is one relaxed atomic load.
 */
class HostProfiler
{
  public:
    /** True when profiling is active. */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Enable or disable profiling. */
    void setEnabled(bool on);

    /** Zero every aggregate (phase totals, throughput counters,
     * byte high-water). The enabled flag is unchanged. */
    void reset();

    /** Fold `ns` self-nanoseconds into a phase (thread-safe). */
    void addPhaseNanos(HostPhase phase, std::uint64_t ns);

    /** Count replayed instruction slots (thread-safe). */
    void addReplaySlots(std::uint64_t slots);

    /** Count generated trace records (thread-safe). */
    void addTraceRecords(std::uint64_t records);

    /** Raise the live-TaskletTrace byte high-water mark if `bytes`
     * exceeds it (thread-safe). */
    void noteTaskletTraceBytes(std::uint64_t bytes);

    /** Self wall seconds folded into `phase` so far. */
    double phaseSeconds(HostPhase phase) const;

    /** Timer invocations folded into `phase` so far. */
    std::uint64_t phaseCalls(HostPhase phase) const;

    /**
     * Aggregate everything into a HostProfile, sampling RSS from
     * /proc/self/status and buffer sizes from the global tracer and
     * metrics registry.
     *
     * @param modelSeconds model time covered, for the slowdown
     *                     factor (pass 0 when unknown)
     */
    HostProfile snapshot(double modelSeconds) const;

    /** Current resident set size in bytes (Linux /proc/self/status
     * VmRSS; 0 elsewhere or on failure). */
    static std::uint64_t currentRssBytes();

    /** Peak resident set size in bytes (VmHWM; 0 when unknown). */
    static std::uint64_t peakRssBytes();

  private:
    std::atomic<bool> enabled_{false};
    std::atomic<std::uint64_t> phaseNanos_[kHostPhaseCount] = {};
    std::atomic<std::uint64_t> phaseCalls_[kHostPhaseCount] = {};
    std::atomic<std::uint64_t> replaySlots_{0};
    std::atomic<std::uint64_t> traceRecords_{0};
    std::atomic<std::uint64_t> taskletTraceBytesPeak_{0};
};

/** The process-wide host profiler. */
HostProfiler &hostProfiler();

/**
 * RAII scoped timer on steady_clock. Nested timers on the same
 * thread attribute exclusive (self) time: a child's full wall time
 * is subtracted from its parent before the parent folds into its
 * phase, so the per-phase totals partition the instrumented wall
 * time. Construction is a single atomic load when profiling is off.
 */
class HostPhaseTimer
{
  public:
    explicit HostPhaseTimer(HostPhase phase);
    ~HostPhaseTimer();

    HostPhaseTimer(const HostPhaseTimer &) = delete;
    HostPhaseTimer &operator=(const HostPhaseTimer &) = delete;

  private:
    bool active_;
    HostPhase phase_;
    std::chrono::steady_clock::time_point start_;
    std::uint64_t childNanos_ = 0;
    HostPhaseTimer *parent_ = nullptr;
};

/**
 * Publish the profile as `host.*` metrics (scalars + counters) into
 * the global registry and, when the tracer is recording, emit a
 * "host_profile" instant event carrying the same numbers as args so
 * trace-mode consumers (alphapim_explain --host) can read them.
 * No-op when the profiler is disabled.
 *
 * @param modelSeconds model time covered (slowdown denominator)
 * @return the snapshot that was published
 */
HostProfile publishHostProfile(double modelSeconds);

} // namespace alphapim::telemetry

#endif // ALPHA_PIM_TELEMETRY_HOST_PROF_HH
