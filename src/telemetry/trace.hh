/**
 * @file
 * Span/event tracer over *model time* (simulated seconds, not wall
 * clock). Instrumented sites -- the engine, the transfer model, the
 * kernel launcher, the applications -- record spans and instants on
 * named tracks; the result exports as Chrome trace-event JSON and
 * loads directly in Perfetto / chrome://tracing with one track per
 * rank and per DPU.
 *
 * The tracer is disabled by default and designed to be zero-cost on
 * that path: every recording entry point first checks an atomic flag
 * and returns. Tier-1 benchmark timing is therefore unaffected when
 * no trace output is requested.
 *
 * The model-time cursor advances as instrumented sites account
 * simulated time in call order (load transfer, kernel launch,
 * retrieve transfer, ...); PimEngine re-synchronizes the cursor to
 * the authoritative per-launch phase total, so sub-spans and phase
 * spans always align.
 */

#ifndef ALPHA_PIM_TELEMETRY_TRACE_HH
#define ALPHA_PIM_TELEMETRY_TRACE_HH

#include <atomic>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "common/types.hh"

namespace alphapim::telemetry
{

/** One pre-encoded event argument (value is a JSON fragment). */
struct TraceArg
{
    std::string key;
    std::string json;
};

/** Build a numeric event argument. */
TraceArg arg(std::string key, double value);

/** Build an integer event argument. */
TraceArg arg(std::string key, std::uint64_t value);

/** Build a string event argument. */
TraceArg arg(std::string key, const char *value);

/** A Chrome-trace track: (process id, thread id). */
struct Track
{
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
};

/** Engine process: phases, launches, application iterations. */
inline constexpr std::uint32_t pidEngine = 1;

/** Transfer process: one track per memory rank. */
inline constexpr std::uint32_t pidRank = 2;

/** Kernel process: one track per DPU. */
inline constexpr std::uint32_t pidDpu = 3;

/** The single engine-side track. */
inline constexpr Track engineTrack{pidEngine, 0};

/** Track of memory rank `rank`. */
constexpr Track
rankTrack(unsigned rank)
{
    return {pidRank, rank};
}

/** Track of DPU `dpu`. */
constexpr Track
dpuTrack(unsigned dpu)
{
    return {pidDpu, dpu};
}

/** One recorded event (complete span or instant). */
struct TraceEvent
{
    std::string name;
    std::string category;
    char phase = 'X'; ///< 'X' complete span, 'i' instant
    Track track;
    Seconds start = 0.0;
    Seconds duration = 0.0; ///< complete spans only
    std::vector<TraceArg> args;
};

/**
 * Event recorder with a model-time cursor. Thread-safe; recording
 * entry points are no-ops while disabled.
 */
class Tracer
{
  public:
    /** True when recording is active (relaxed atomic read). */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Enable or disable recording. */
    void setEnabled(bool on);

    /** Current model-time cursor, seconds. */
    Seconds
    now() const
    {
        return now_.load(std::memory_order_relaxed);
    }

    /** Advance the model-time cursor by `dt` (no-op when disabled). */
    void advance(Seconds dt);

    /** Move the cursor to `t` if that is forward (no-op otherwise or
     * when disabled). Used by the engine to re-synchronize after a
     * launch's sub-emitters accounted their own time. */
    void advanceTo(Seconds t);

    /** Reset the cursor to model time zero. */
    void resetClock();

    /** Record a complete span [start, start+duration) on `track`. */
    void completeEvent(Track track, std::string name,
                       std::string category, Seconds start,
                       Seconds duration,
                       std::vector<TraceArg> args = {});

    /** Record an instant event at `ts` on `track`. */
    void instantEvent(Track track, std::string name,
                      std::string category, Seconds ts,
                      std::vector<TraceArg> args = {});

    /** Name a track (rendered as the Perfetto thread name). */
    void nameTrack(Track track, std::string name);

    /** Number of buffered (not yet flushed) events. */
    std::size_t eventCount() const;

    /** Number of events recorded since the last clear(), including
     * events already flushed to an open stream (dropped events are
     * not counted -- they were never recorded). */
    std::size_t totalEventCount() const;

    /** Copy of the buffered events (test/inspection use). */
    std::vector<TraceEvent> events() const;

    /**
     * Buffered events recorded at or after total-count position
     * `index` (a prior totalEventCount() snapshot). Events already
     * flushed past the snapshot are gone from the buffer and not
     * returned -- callers sampling per-run windows under an active
     * stream get the retained suffix.
     */
    std::vector<TraceEvent> eventsSince(std::size_t index) const;

    /** Drop all events, names, stream/drop accounting, and reset the
     * clock. Do not call while a stream is open. */
    void clear();

    /**
     * Open a streaming sink: events are flushed to `path` in chunks
     * as they accumulate instead of buffering until exit, so long
     * runs cannot OOM silently. The document is completed (metadata,
     * closing brackets) by closeStream(). Returns false when the
     * file cannot be created (the tracer then stays in buffered
     * mode).
     */
    bool openStream(const std::string &path);

    /** Flush remaining events, complete and close the stream.
     * No-op without an open stream. */
    void closeStream();

    /** True while a streaming sink is open. */
    bool streaming() const;

    /**
     * Without a stream, the event buffer is capped at this many
     * events (default 1M); events recorded past the cap are dropped
     * and counted in droppedEvents() plus the trace.dropped_spans
     * metric. With a stream, the buffer flushes long before the cap.
     */
    void setBufferLimit(std::size_t limit);

    /** Events dropped at the buffer cap since the last clear(). */
    std::uint64_t droppedEvents() const;

    /** Approximate heap bytes held by the buffered events (event
     * structs, names, encoded args). Memory-footprint accounting for
     * the host observatory; O(buffered events). */
    std::uint64_t approxBytes() const;

    /**
     * Per-DPU kernel tracks are capped at this many DPUs to bound
     * trace size on large fleets (default 128); DPUs past the limit
     * still contribute to metrics, just not to individual tracks.
     */
    unsigned
    dpuTrackLimit() const
    {
        return dpuTrackLimit_.load(std::memory_order_relaxed);
    }

    /** Set the per-DPU track cap. */
    void setDpuTrackLimit(unsigned limit);

    /** Render the Chrome trace-event JSON document. */
    std::string chromeTraceJson() const;

    /** Write the Chrome trace-event JSON document to a stream. */
    void writeChromeTrace(std::ostream &out) const;

  private:
    void recordLocked(TraceEvent event);
    void flushLocked();
    void writeEventLocked(const TraceEvent &event);

    std::atomic<bool> enabled_{false};
    std::atomic<double> now_{0.0};
    std::atomic<unsigned> dpuTrackLimit_{128};
    mutable std::mutex mutex_;
    std::vector<TraceEvent> events_;
    std::map<std::uint64_t, std::string> trackNames_;
    std::set<std::uint32_t> pidsSeen_;

    // Streaming sink + buffered-mode drop accounting.
    std::unique_ptr<std::ofstream> sink_;
    bool sinkHasEvents_ = false;
    std::size_t flushChunk_ = 8192;
    std::size_t bufferLimit_ = 1u << 20;
    std::size_t flushed_ = 0;
    std::uint64_t dropped_ = 0;
};

/** The process-wide tracer. */
Tracer &tracer();

/**
 * RAII span on the global tracer: captures the model-time cursor at
 * construction and records a complete span up to the cursor position
 * at destruction. No-op while the tracer is disabled.
 */
class ScopedSpan
{
  public:
    ScopedSpan(Track track, const char *name, const char *category);
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    bool active_;
    Track track_;
    Seconds start_ = 0.0;
    const char *name_;
    const char *category_;
};

/**
 * True while at least one RecordingScope is alive on this thread.
 * Pure cost queries (the analytic cost model probing the transfer
 * model) run outside any scope, so they never pollute the timeline
 * or the transfer metrics.
 */
bool inRecordingScope();

/** RAII marker that an actual (not hypothetical) launch is being
 * accounted on this thread. */
class RecordingScope
{
  public:
    RecordingScope();
    ~RecordingScope();

    RecordingScope(const RecordingScope &) = delete;
    RecordingScope &operator=(const RecordingScope &) = delete;
};

} // namespace alphapim::telemetry

#endif // ALPHA_PIM_TELEMETRY_TRACE_HH
