#include "trace.hh"

#include <algorithm>

#include "telemetry/json.hh"
#include "telemetry/metrics.hh"

namespace alphapim::telemetry
{

namespace
{

thread_local int recordingDepth = 0;

/** Track key for the name map. */
std::uint64_t
trackKey(Track t)
{
    return (static_cast<std::uint64_t>(t.pid) << 32) | t.tid;
}

const char *
processName(std::uint32_t pid)
{
    switch (pid) {
      case pidEngine:
        return "engine";
      case pidRank:
        return "transfers (per rank)";
      case pidDpu:
        return "kernels (per DPU)";
      default:
        return "process";
    }
}

/** Chrome-viewer event ordering: outer spans before inner. */
bool
viewerOrder(const TraceEvent &a, const TraceEvent &b)
{
    if (a.track.pid != b.track.pid)
        return a.track.pid < b.track.pid;
    if (a.track.tid != b.track.tid)
        return a.track.tid < b.track.tid;
    if (a.start != b.start)
        return a.start < b.start;
    return a.duration > b.duration;
}

/** Write one data event into an open JSON array. */
void
writeEventJson(JsonWriter &w, const TraceEvent &e)
{
    w.beginObject();
    w.key("name").value(e.name);
    w.key("cat").value(e.category.empty() ? "model" : e.category);
    w.key("ph").value(std::string(1, e.phase));
    w.key("pid").value(static_cast<std::uint64_t>(e.track.pid));
    w.key("tid").value(static_cast<std::uint64_t>(e.track.tid));
    w.key("ts").value(toMicros(e.start));
    if (e.phase == 'X')
        w.key("dur").value(toMicros(e.duration));
    else
        w.key("s").value("t");
    if (!e.args.empty()) {
        w.key("args").beginObject();
        for (const auto &a : e.args)
            w.key(a.key).rawValue(a.json);
        w.endObject();
    }
    w.endObject();
}

/** Write the process/thread-name metadata events. */
void
writeMetadataJson(JsonWriter &w,
                  const std::set<std::uint32_t> &pids,
                  const std::map<std::uint64_t, std::string> &names)
{
    for (const auto pid : pids) {
        w.beginObject();
        w.key("ph").value("M");
        w.key("pid").value(static_cast<std::uint64_t>(pid));
        w.key("name").value("process_name");
        w.key("args").beginObject();
        w.key("name").value(processName(pid));
        w.endObject();
        w.endObject();
    }
    for (const auto &[key, name] : names) {
        w.beginObject();
        w.key("ph").value("M");
        w.key("pid").value(key >> 32);
        w.key("tid").value(key & 0xFFFFFFFFu);
        w.key("name").value("thread_name");
        w.key("args").beginObject();
        w.key("name").value(name);
        w.endObject();
        w.endObject();
    }
}

} // namespace

TraceArg
arg(std::string key, double value)
{
    return {std::move(key), JsonWriter::number(value)};
}

TraceArg
arg(std::string key, std::uint64_t value)
{
    return {std::move(key), std::to_string(value)};
}

TraceArg
arg(std::string key, const char *value)
{
    return {std::move(key), JsonWriter::quote(value)};
}

void
Tracer::setEnabled(bool on)
{
    enabled_.store(on, std::memory_order_relaxed);
}

void
Tracer::advance(Seconds dt)
{
    if (!enabled())
        return;
    now_.store(now_.load(std::memory_order_relaxed) + dt,
               std::memory_order_relaxed);
}

void
Tracer::advanceTo(Seconds t)
{
    if (!enabled())
        return;
    if (t > now_.load(std::memory_order_relaxed))
        now_.store(t, std::memory_order_relaxed);
}

void
Tracer::resetClock()
{
    now_.store(0.0, std::memory_order_relaxed);
}

void
Tracer::recordLocked(TraceEvent event)
{
    if (!sink_ && events_.size() >= bufferLimit_) {
        ++dropped_;
        metrics().addCounter("trace.dropped_spans");
        return;
    }
    pidsSeen_.insert(event.track.pid);
    events_.push_back(std::move(event));
    if (sink_ && events_.size() >= flushChunk_)
        flushLocked();
}

void
Tracer::completeEvent(Track track, std::string name,
                      std::string category, Seconds start,
                      Seconds duration, std::vector<TraceArg> args)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    recordLocked({std::move(name), std::move(category), 'X', track,
                  start, duration, std::move(args)});
}

void
Tracer::instantEvent(Track track, std::string name,
                     std::string category, Seconds ts,
                     std::vector<TraceArg> args)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    recordLocked({std::move(name), std::move(category), 'i', track,
                  ts, 0.0, std::move(args)});
}

void
Tracer::nameTrack(Track track, std::string name)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    trackNames_.emplace(trackKey(track), std::move(name));
}

std::size_t
Tracer::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

std::size_t
Tracer::totalEventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return flushed_ + events_.size();
}

std::vector<TraceEvent>
Tracer::events() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
}

std::vector<TraceEvent>
Tracer::eventsSince(std::size_t index) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t offset =
        index > flushed_ ? index - flushed_ : 0;
    if (offset >= events_.size())
        return {};
    return {events_.begin() +
                static_cast<std::ptrdiff_t>(offset),
            events_.end()};
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
    trackNames_.clear();
    pidsSeen_.clear();
    flushed_ = 0;
    dropped_ = 0;
    now_.store(0.0, std::memory_order_relaxed);
}

bool
Tracer::openStream(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (sink_)
        return false;
    auto out = std::make_unique<std::ofstream>(path);
    if (!*out)
        return false;
    *out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    sink_ = std::move(out);
    sinkHasEvents_ = false;
    return true;
}

void
Tracer::writeEventLocked(const TraceEvent &event)
{
    JsonWriter w;
    writeEventJson(w, event);
    if (sinkHasEvents_)
        *sink_ << ',';
    *sink_ << '\n' << w.str();
    sinkHasEvents_ = true;
}

void
Tracer::flushLocked()
{
    if (!sink_ || events_.empty())
        return;
    std::stable_sort(events_.begin(), events_.end(), viewerOrder);
    for (const TraceEvent &e : events_)
        writeEventLocked(e);
    flushed_ += events_.size();
    events_.clear();
    sink_->flush();
}

void
Tracer::closeStream()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!sink_)
        return;
    flushLocked();
    // Metadata events go last; Chrome/Perfetto accept them anywhere
    // in the array. Build them inside a scratch array so the writer
    // handles the commas, then splice the elements.
    JsonWriter w;
    w.beginArray();
    writeMetadataJson(w, pidsSeen_, trackNames_);
    w.endArray();
    const std::string meta =
        w.str().substr(1, w.str().size() - 2);
    if (!meta.empty()) {
        if (sinkHasEvents_)
            *sink_ << ',';
        *sink_ << '\n' << meta;
        sinkHasEvents_ = true;
    }
    // Top-level telemetry-health field: lets readers (explain) warn
    // when the buffered tracer overflowed and the timeline is
    // incomplete. Chrome/Perfetto ignore unknown top-level keys.
    *sink_ << "\n],\"droppedSpans\":" << dropped_ << "}\n";
    sink_.reset();
    sinkHasEvents_ = false;
}

bool
Tracer::streaming() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sink_ != nullptr;
}

void
Tracer::setBufferLimit(std::size_t limit)
{
    std::lock_guard<std::mutex> lock(mutex_);
    bufferLimit_ = limit;
}

std::uint64_t
Tracer::droppedEvents() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
}

std::uint64_t
Tracer::approxBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t bytes = events_.capacity() * sizeof(TraceEvent);
    for (const TraceEvent &e : events_) {
        bytes += e.name.capacity() + e.category.capacity();
        bytes += e.args.capacity() * sizeof(TraceArg);
        for (const TraceArg &a : e.args)
            bytes += a.key.capacity() + a.json.capacity();
    }
    for (const auto &[key, name] : trackNames_)
        bytes += sizeof(key) + name.capacity();
    return bytes;
}

void
Tracer::setDpuTrackLimit(unsigned limit)
{
    dpuTrackLimit_.store(limit, std::memory_order_relaxed);
}

std::string
Tracer::chromeTraceJson() const
{
    std::vector<TraceEvent> events;
    std::map<std::uint64_t, std::string> names;
    std::set<std::uint32_t> pids;
    std::uint64_t dropped = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        events = events_;
        names = trackNames_;
        pids = pidsSeen_;
        dropped = dropped_;
    }
    // Viewers stack complete events by containment; sorting outer
    // spans first keeps nesting deterministic.
    std::stable_sort(events.begin(), events.end(), viewerOrder);

    JsonWriter w;
    w.beginObject();
    w.key("displayTimeUnit").value("ms");
    w.key("droppedSpans").value(dropped);
    w.key("traceEvents").beginArray();
    writeMetadataJson(w, pids, names);
    for (const auto &e : events)
        writeEventJson(w, e);
    w.endArray();
    w.endObject();
    return w.str();
}

void
Tracer::writeChromeTrace(std::ostream &out) const
{
    out << chromeTraceJson() << '\n';
}

Tracer &
tracer()
{
    static Tracer instance;
    return instance;
}

ScopedSpan::ScopedSpan(Track track, const char *name,
                       const char *category)
    : active_(tracer().enabled()), track_(track), name_(name),
      category_(category)
{
    if (active_)
        start_ = tracer().now();
}

ScopedSpan::~ScopedSpan()
{
    if (!active_)
        return;
    Tracer &t = tracer();
    t.completeEvent(track_, name_, category_, start_,
                    t.now() - start_);
}

bool
inRecordingScope()
{
    return recordingDepth > 0;
}

RecordingScope::RecordingScope()
{
    ++recordingDepth;
}

RecordingScope::~RecordingScope()
{
    --recordingDepth;
}

} // namespace alphapim::telemetry
