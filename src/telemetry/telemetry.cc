#include "telemetry.hh"

#include <fstream>

#include "common/logging.hh"

namespace alphapim::telemetry
{

namespace
{

bool
writeWhole(const std::string &path, const std::string &content,
           const char *what)
{
    std::ofstream out(path);
    if (!out) {
        warn("cannot create %s file '%s'", what, path.c_str());
        return false;
    }
    out << content;
    if (!content.empty() && content.back() != '\n')
        out << '\n';
    if (!out) {
        warn("error writing %s file '%s'", what, path.c_str());
        return false;
    }
    debugLog("telemetry", "wrote %s to %s", what, path.c_str());
    return true;
}

} // namespace

bool
writeTraceFile(const std::string &path)
{
    return writeWhole(path, tracer().chromeTraceJson(),
                      "chrome-trace");
}

bool
finishTraceOutput(const std::string &path)
{
    Tracer &t = tracer();
    if (t.streaming()) {
        t.closeStream();
        debugLog("telemetry", "closed streamed trace %s",
                 path.c_str());
        return true;
    }
    return writeTraceFile(path);
}

bool
writeMetricsFile(const std::string &path)
{
    return writeWhole(path, metrics().jsonl(), "metrics");
}

bool
appendJsonlRecord(const std::string &path, const std::string &json)
{
    std::ofstream out(path, std::ios::app);
    if (!out) {
        warn("cannot open JSONL file '%s'", path.c_str());
        return false;
    }
    out << json << '\n';
    return static_cast<bool>(out);
}

} // namespace alphapim::telemetry
