/**
 * @file
 * Minimal JSON support for the telemetry subsystem: a streaming
 * writer (compact, escaped, round-trippable doubles) and a small
 * recursive-descent parser used by tests and tooling to validate the
 * exported Chrome traces and JSONL records. No external dependencies.
 */

#ifndef ALPHA_PIM_TELEMETRY_JSON_HH
#define ALPHA_PIM_TELEMETRY_JSON_HH

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace alphapim::telemetry
{

/**
 * Streaming JSON writer. Builds a compact single-line document;
 * commas and quoting are handled by the writer, so call sites only
 * describe structure. Non-finite doubles are emitted as null (JSON
 * has no NaN/Inf).
 */
class JsonWriter
{
  public:
    /** Open an object ("{"). */
    JsonWriter &beginObject();

    /** Close the innermost object. */
    JsonWriter &endObject();

    /** Open an array ("["). */
    JsonWriter &beginArray();

    /** Close the innermost array. */
    JsonWriter &endArray();

    /** Write an object key; must be followed by a value. */
    JsonWriter &key(std::string_view k);

    /** Write a string value. */
    JsonWriter &value(std::string_view v);

    /** Write a string value (overload for literals). */
    JsonWriter &value(const char *v) { return value(std::string_view(v)); }

    /** Write a numeric value with round-trip precision. */
    JsonWriter &value(double v);

    /** Write an unsigned integer value. */
    JsonWriter &value(std::uint64_t v);

    /** Write a signed integer value. */
    JsonWriter &value(std::int64_t v);

    /** Write a boolean value. */
    JsonWriter &value(bool v);

    /** Write a null value. */
    JsonWriter &null();

    /** Splice an already-encoded JSON fragment as a value. */
    JsonWriter &rawValue(std::string_view json);

    /** The document built so far. */
    const std::string &str() const { return out_; }

    /** Escape and quote `s` as a standalone JSON string. */
    static std::string quote(std::string_view s);

    /** Encode a double as a standalone JSON number (null if
     * non-finite). */
    static std::string number(double v);

  private:
    void separate();

    struct Frame
    {
        bool isObject = false;
        std::size_t items = 0;
        bool expectValue = false; ///< a key was just written
    };

    std::string out_;
    std::vector<Frame> stack_;
};

/** Parsed JSON value (tree representation). */
class JsonValue
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    /** Object member list; order preserved. */
    using Members = std::vector<std::pair<std::string, JsonValue>>;

    JsonValue() = default;

    /** The value's type. */
    Type type() const { return type_; }

    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Boolean payload (false unless isBool()). */
    bool asBool() const { return boolean_; }

    /** Numeric payload (0 unless isNumber()). */
    double asNumber() const { return number_; }

    /** String payload (empty unless isString()). */
    const std::string &asString() const { return string_; }

    /** Array elements (empty unless isArray()). */
    const std::vector<JsonValue> &items() const { return items_; }

    /** Object members (empty unless isObject()). */
    const Members &members() const { return members_; }

    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue *find(std::string_view key) const;

    /**
     * Parse a complete JSON document.
     *
     * @param text  the document
     * @param out   receives the parsed tree on success
     * @param error receives a message on failure (optional)
     * @return true on success
     */
    static bool parse(std::string_view text, JsonValue &out,
                      std::string *error = nullptr);

  private:
    Type type_ = Type::Null;
    bool boolean_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> items_;
    Members members_;

    friend class JsonParser;
};

} // namespace alphapim::telemetry

#endif // ALPHA_PIM_TELEMETRY_JSON_HH
