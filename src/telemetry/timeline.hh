/**
 * @file
 * Timeline reconstruction: turns the flat span stream the tracer
 * records (or a parsed Chrome trace) back into per-launch, per-rank
 * and per-DPU timelines, and computes occupancy / idle-gap /
 * phase-overlap fractions as first-class metrics.
 *
 * The reconstruction is the analysis counterpart of the emitters in
 * core::LaunchScope (multiply + phase spans on the engine track),
 * upmem::TransferModel (per-rank bus spans) and
 * upmem::UpmemSystem::launchKernel (per-DPU kernel spans). One
 * subtlety is owned here: the applications account host-side
 * convergence work *after* the launch's phase spans are emitted
 * (graph_apps' `host_merge_extra`), enclosing both in an
 * "<app>.iteration" span -- reconstruction folds that trailing gap
 * back into the launch's merge phase so phase attribution sums to
 * total model time.
 */

#ifndef ALPHA_PIM_TELEMETRY_TIMELINE_HH
#define ALPHA_PIM_TELEMETRY_TIMELINE_HH

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "telemetry/metrics.hh"
#include "telemetry/trace.hh"

namespace alphapim::telemetry
{

/** One reconstructed span: the viewer-independent subset of a trace
 * event, with the numeric args the analyzers use pre-extracted. */
struct TimelineSpan
{
    std::string name;
    std::string category;
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
    Seconds start = 0.0;
    Seconds duration = 0.0;
    double bytes = 0.0;  ///< "bytes" arg; 0 when absent
    double cycles = 0.0; ///< "cycles" arg; 0 when absent

    // Per-DPU kernel-span stall and traffic accounting (the args
    // upmem::UpmemSystem::launchKernel attaches to DPU tracks). All 0
    // when absent, e.g. for rank or engine spans and older traces.
    double issued = 0.0;       ///< "issued" arg: issued cycles
    double stallMemory = 0.0;  ///< "stall_memory" arg
    double stallRevolver = 0.0; ///< "stall_revolver" arg
    double stallRfHazard = 0.0; ///< "stall_rf_hazard" arg
    double stallSync = 0.0;     ///< "stall_sync" arg
    double instr = 0.0;         ///< "instr" arg: instructions retired
    double mramBytes = 0.0;     ///< "mram_bytes" arg: MRAM traffic

    Seconds end() const { return start + duration; }
    Seconds mid() const { return start + duration / 2.0; }
};

/** One reconstructed kernel launch with its phase breakdown. The
 * merge phase includes any host extra folded in from the enclosing
 * application-iteration span. */
struct LaunchWindow
{
    std::string kernel; ///< kernel name (the multiply span's name)
    Seconds start = 0.0;
    Seconds load = 0.0;
    Seconds kernel_time = 0.0;
    Seconds retrieve = 0.0;
    Seconds merge = 0.0;

    Seconds total() const
    {
        return load + kernel_time + retrieve + merge;
    }
    Seconds end() const { return start + total(); }
};

/** A reconstructed execution timeline. */
struct Timeline
{
    Seconds windowStart = 0.0;
    Seconds windowEnd = 0.0;

    /** Kernel launches in start order (empty for traces produced by
     * benches that drive kernels below PimEngine). */
    std::vector<LaunchWindow> launches;

    /** Transfer bus spans per memory rank, in start order. */
    std::map<unsigned, std::vector<TimelineSpan>> rankSpans;

    /** Kernel spans per DPU track, in start order. */
    std::map<unsigned, std::vector<TimelineSpan>> dpuSpans;

    /** Application iteration spans ("<app>.iteration"). */
    std::vector<TimelineSpan> iterations;

    Seconds window() const { return windowEnd - windowStart; }

    /** Sum of launch totals: the accounted model time. */
    Seconds accountedSeconds() const;
};

/** Reconstruct a timeline from tracer events (in-process path). */
Timeline buildTimeline(const std::vector<TraceEvent> &events);

/** Reconstruct a timeline from simplified spans (the trace-file
 * parsing path of alphapim_explain, and synthetic test fixtures). */
Timeline buildTimeline(const std::vector<TimelineSpan> &spans);

/** Occupancy / overlap statistics of one timeline. */
struct TimelineStats
{
    Seconds windowSeconds = 0.0;
    std::size_t launches = 0;
    std::size_t ranks = 0;
    std::size_t dpus = 0;

    /** (rank id, busy fraction of the window) per rank. */
    std::vector<std::pair<unsigned, double>> rankOccupancy;

    /** (dpu id, busy fraction of the window) per traced DPU. */
    std::vector<std::pair<unsigned, double>> dpuOccupancy;

    double rankOccupancyMean = 0.0;
    double rankOccupancyMin = 0.0;
    double dpuOccupancyMean = 0.0;

    /** Total bus-busy time (union across ranks). */
    Seconds transferBusySeconds = 0.0;

    /** Total kernel-busy time (union across DPU tracks). */
    Seconds kernelBusySeconds = 0.0;

    /** Model time where transfers and kernels run concurrently. */
    Seconds overlapSeconds = 0.0;

    /** overlapSeconds / min(transferBusy, kernelBusy); 0 when either
     * side is idle for the whole window. 0 = fully serialized,
     * 1 = the smaller activity is fully hidden by the larger. */
    double overlapFraction = 0.0;

    /** Fraction of the window where neither a rank bus nor a DPU is
     * busy: launch latencies, host staging and merge time. */
    double idleFraction = 0.0;
};

/** Compute occupancy / overlap statistics. */
TimelineStats computeStats(const Timeline &timeline);

/** Export the statistics into a metrics registry under timeline.*
 * (scalars) and timeline.rank.occupancy / timeline.dpu.occupancy
 * (distributions, one sample per track). No-op when disabled. */
void recordTimelineMetrics(const TimelineStats &stats,
                           MetricsRegistry &registry);

/** Total length of the union of (possibly overlapping) intervals. */
Seconds unionLength(std::vector<std::pair<Seconds, Seconds>> intervals);

/** Total length of the intersection of two interval unions. */
Seconds intersectionLength(
    std::vector<std::pair<Seconds, Seconds>> a,
    std::vector<std::pair<Seconds, Seconds>> b);

} // namespace alphapim::telemetry

#endif // ALPHA_PIM_TELEMETRY_TIMELINE_HH
