/**
 * @file
 * Umbrella header and file sinks for the telemetry subsystem:
 * includes the tracer and metrics registry and provides the
 * file-output helpers behind the `--trace-out` / `--metrics-out`
 * flags of the CLI and the bench harness.
 */

#ifndef ALPHA_PIM_TELEMETRY_TELEMETRY_HH
#define ALPHA_PIM_TELEMETRY_TELEMETRY_HH

#include <string>

#include "telemetry/metrics.hh"
#include "telemetry/trace.hh"

namespace alphapim::telemetry
{

/**
 * Write the global tracer's Chrome trace-event JSON to `path`.
 * Warns and returns false on I/O failure.
 */
bool writeTraceFile(const std::string &path);

/**
 * Finish the trace output for `path`: close the streaming sink when
 * one is open (the document was being flushed there incrementally),
 * otherwise write the buffered trace to `path` in one shot.
 */
bool finishTraceOutput(const std::string &path);

/**
 * Write the global metrics registry as JSONL to `path`.
 * Warns and returns false on I/O failure.
 */
bool writeMetricsFile(const std::string &path);

/**
 * Append one already-encoded JSON record as a line to `path`
 * (creating the file if needed). Used for per-run JSONL records.
 */
bool appendJsonlRecord(const std::string &path,
                       const std::string &json);

} // namespace alphapim::telemetry

#endif // ALPHA_PIM_TELEMETRY_TELEMETRY_HH
