#include "metrics.hh"

#include <cmath>

#include "telemetry/json.hh"

namespace alphapim::telemetry
{

namespace
{

/** splitmix64 step: cheap, deterministic, well-mixed. */
std::uint64_t
nextRandom(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

void
MetricsRegistry::setEnabled(bool on)
{
    enabled_.store(on, std::memory_order_relaxed);
}

void
MetricsRegistry::addCounter(std::string_view name, std::uint64_t delta)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(name);
    if (it == counters_.end())
        counters_.emplace(std::string(name), delta);
    else
        it->second += delta;
}

void
MetricsRegistry::addScalar(std::string_view name, double delta)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = scalars_.find(name);
    if (it == scalars_.end())
        scalars_.emplace(std::string(name), delta);
    else
        it->second += delta;
}

void
MetricsRegistry::setScalar(std::string_view name, double value)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = scalars_.find(name);
    if (it == scalars_.end())
        scalars_.emplace(std::string(name), value);
    else
        it->second = value;
}

void
MetricsRegistry::addSample(std::string_view name, double x)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = distributions_.find(name);
    if (it == distributions_.end())
        it = distributions_.emplace(std::string(name), DistEntry())
                 .first;
    DistEntry &entry = it->second;
    entry.stats.add(x);
    const std::size_t cap =
        sampleCap_.load(std::memory_order_relaxed);
    if (entry.samples.size() < cap) {
        entry.samples.push_back(x);
        return;
    }
    // Algorithm R: the retained set stays a uniform sample of
    // everything seen. Counted so exports can flag the degradation.
    ++entry.dropped;
    const std::uint64_t seen =
        entry.stats.count() > 0
            ? static_cast<std::uint64_t>(entry.stats.count())
            : 1;
    if (cap > 0) {
        const std::uint64_t slot = nextRandom(entry.rng) % seen;
        if (slot < cap)
            entry.samples[static_cast<std::size_t>(slot)] = x;
    }
    counters_[it->first + ".samples_dropped"] += 1;
}

void
MetricsRegistry::setSampleCap(std::size_t cap)
{
    sampleCap_.store(cap, std::memory_order_relaxed);
}

std::size_t
MetricsRegistry::sampleCap() const
{
    return sampleCap_.load(std::memory_order_relaxed);
}

std::uint64_t
MetricsRegistry::samplesDropped(std::string_view name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = distributions_.find(name);
    return it == distributions_.end() ? 0 : it->second.dropped;
}

std::uint64_t
MetricsRegistry::totalSamplesDropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const auto &[name, entry] : distributions_)
        total += entry.dropped;
    return total;
}

std::uint64_t
MetricsRegistry::counterValue(std::string_view name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

double
MetricsRegistry::scalarValue(std::string_view name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = scalars_.find(name);
    return it == scalars_.end() ? 0.0 : it->second;
}

const RunningStats *
MetricsRegistry::distribution(std::string_view name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = distributions_.find(name);
    return it == distributions_.end() ? nullptr : &it->second.stats;
}

double
MetricsRegistry::distributionPercentile(std::string_view name,
                                        double p) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = distributions_.find(name);
    if (it == distributions_.end() || it->second.samples.empty())
        return std::nan("");
    return percentile(it->second.samples, p);
}

std::size_t
MetricsRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_.size() + scalars_.size() + distributions_.size();
}

std::uint64_t
MetricsRegistry::approxBytes() const
{
    // Map nodes cost roughly their payload plus three pointers and a
    // color bit; the estimate only needs to track growth, not match
    // the allocator byte for byte.
    constexpr std::uint64_t kNodeOverhead = 4 * sizeof(void *);
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t bytes = 0;
    for (const auto &[name, value] : counters_)
        bytes += name.capacity() + sizeof(value) + kNodeOverhead;
    for (const auto &[name, value] : scalars_)
        bytes += name.capacity() + sizeof(value) + kNodeOverhead;
    for (const auto &[name, entry] : distributions_) {
        bytes += name.capacity() + sizeof(DistEntry) + kNodeOverhead;
        bytes += entry.samples.capacity() * sizeof(double);
    }
    return bytes;
}

void
MetricsRegistry::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.clear();
    scalars_.clear();
    distributions_.clear();
}

std::string
MetricsRegistry::jsonl() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    for (const auto &[name, value] : counters_) {
        JsonWriter w;
        w.beginObject();
        w.key("kind").value("counter");
        w.key("name").value(name);
        w.key("value").value(value);
        w.endObject();
        out += w.str();
        out += '\n';
    }
    for (const auto &[name, value] : scalars_) {
        JsonWriter w;
        w.beginObject();
        w.key("kind").value("scalar");
        w.key("name").value(name);
        w.key("value").value(value);
        w.endObject();
        out += w.str();
        out += '\n';
    }
    for (const auto &[name, entry] : distributions_) {
        const RunningStats &stats = entry.stats;
        JsonWriter w;
        w.beginObject();
        w.key("kind").value("distribution");
        w.key("name").value(name);
        w.key("count").value(
            static_cast<std::uint64_t>(stats.count()));
        w.key("sum").value(stats.sum());
        w.key("mean").value(stats.mean());
        w.key("stddev").value(stats.stddev());
        if (stats.count() > 0) {
            w.key("min").value(stats.min());
            w.key("max").value(stats.max());
            w.key("p50").value(percentile(entry.samples, 50.0));
            w.key("p95").value(percentile(entry.samples, 95.0));
            w.key("p99").value(percentile(entry.samples, 99.0));
            w.key("p999").value(
                percentile(entry.samples, 99.9));
        }
        if (entry.dropped > 0)
            w.key("samples_dropped").value(entry.dropped);
        w.endObject();
        out += w.str();
        out += '\n';
    }
    return out;
}

void
MetricsRegistry::writeJsonl(std::ostream &out) const
{
    out << jsonl();
}

MetricsRegistry &
metrics()
{
    static MetricsRegistry instance;
    return instance;
}

} // namespace alphapim::telemetry
