#include "metrics.hh"

#include <cmath>

#include "telemetry/json.hh"

namespace alphapim::telemetry
{

void
MetricsRegistry::setEnabled(bool on)
{
    enabled_.store(on, std::memory_order_relaxed);
}

void
MetricsRegistry::addCounter(std::string_view name, std::uint64_t delta)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(name);
    if (it == counters_.end())
        counters_.emplace(std::string(name), delta);
    else
        it->second += delta;
}

void
MetricsRegistry::addScalar(std::string_view name, double delta)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = scalars_.find(name);
    if (it == scalars_.end())
        scalars_.emplace(std::string(name), delta);
    else
        it->second += delta;
}

void
MetricsRegistry::setScalar(std::string_view name, double value)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = scalars_.find(name);
    if (it == scalars_.end())
        scalars_.emplace(std::string(name), value);
    else
        it->second = value;
}

void
MetricsRegistry::addSample(std::string_view name, double x)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = distributions_.find(name);
    if (it == distributions_.end())
        it = distributions_.emplace(std::string(name), DistEntry())
                 .first;
    it->second.stats.add(x);
    it->second.samples.push_back(x);
}

std::uint64_t
MetricsRegistry::counterValue(std::string_view name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

double
MetricsRegistry::scalarValue(std::string_view name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = scalars_.find(name);
    return it == scalars_.end() ? 0.0 : it->second;
}

const RunningStats *
MetricsRegistry::distribution(std::string_view name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = distributions_.find(name);
    return it == distributions_.end() ? nullptr : &it->second.stats;
}

double
MetricsRegistry::distributionPercentile(std::string_view name,
                                        double p) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = distributions_.find(name);
    if (it == distributions_.end() || it->second.samples.empty())
        return std::nan("");
    return percentile(it->second.samples, p);
}

std::size_t
MetricsRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_.size() + scalars_.size() + distributions_.size();
}

void
MetricsRegistry::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.clear();
    scalars_.clear();
    distributions_.clear();
}

std::string
MetricsRegistry::jsonl() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    for (const auto &[name, value] : counters_) {
        JsonWriter w;
        w.beginObject();
        w.key("kind").value("counter");
        w.key("name").value(name);
        w.key("value").value(value);
        w.endObject();
        out += w.str();
        out += '\n';
    }
    for (const auto &[name, value] : scalars_) {
        JsonWriter w;
        w.beginObject();
        w.key("kind").value("scalar");
        w.key("name").value(name);
        w.key("value").value(value);
        w.endObject();
        out += w.str();
        out += '\n';
    }
    for (const auto &[name, entry] : distributions_) {
        const RunningStats &stats = entry.stats;
        JsonWriter w;
        w.beginObject();
        w.key("kind").value("distribution");
        w.key("name").value(name);
        w.key("count").value(
            static_cast<std::uint64_t>(stats.count()));
        w.key("sum").value(stats.sum());
        w.key("mean").value(stats.mean());
        w.key("stddev").value(stats.stddev());
        if (stats.count() > 0) {
            w.key("min").value(stats.min());
            w.key("max").value(stats.max());
            w.key("p50").value(percentile(entry.samples, 50.0));
            w.key("p95").value(percentile(entry.samples, 95.0));
            w.key("p99").value(percentile(entry.samples, 99.0));
        }
        w.endObject();
        out += w.str();
        out += '\n';
    }
    return out;
}

void
MetricsRegistry::writeJsonl(std::ostream &out) const
{
    out << jsonl();
}

MetricsRegistry &
metrics()
{
    static MetricsRegistry instance;
    return instance;
}

} // namespace alphapim::telemetry
