/**
 * @file
 * Minimal Matrix Market (.mtx) reader/writer so users can load real
 * SNAP / SuiteSparse graphs into the framework instead of the bundled
 * synthetic generators.
 *
 * Supports the 'matrix coordinate (real|integer|pattern)
 * (general|symmetric)' subset, which covers every graph dataset the
 * paper uses.
 */

#ifndef ALPHA_PIM_SPARSE_MMIO_HH
#define ALPHA_PIM_SPARSE_MMIO_HH

#include <iosfwd>
#include <string>

#include "sparse/coo.hh"

namespace alphapim::sparse
{

/** Parse a Matrix Market stream into COO. Fatal on malformed input. */
CooMatrix<float> readMatrixMarket(std::istream &in);

/** Load a .mtx file from disk. Fatal if the file cannot be opened. */
CooMatrix<float> readMatrixMarketFile(const std::string &path);

/** Write COO as 'matrix coordinate real general'. */
void writeMatrixMarket(const CooMatrix<float> &matrix, std::ostream &out);

/** Write a .mtx file to disk. Fatal if the file cannot be created. */
void writeMatrixMarketFile(const CooMatrix<float> &matrix,
                           const std::string &path);

} // namespace alphapim::sparse

#endif // ALPHA_PIM_SPARSE_MMIO_HH
