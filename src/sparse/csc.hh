/**
 * @file
 * Compressed Sparse Column (CSC) matrix: col_ptr / row_indices /
 * values. The workhorse format of ALPHA-PIM: all competitive SpMSpV
 * variants (CSC-R, CSC-C, CSC-2D) iterate over *active columns*, i.e.
 * the columns named by the sparse input vector's nonzero indices.
 */

#ifndef ALPHA_PIM_SPARSE_CSC_HH
#define ALPHA_PIM_SPARSE_CSC_HH

#include <cstddef>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "sparse/coo.hh"

namespace alphapim::sparse
{

/**
 * CSC matrix. Columns are contiguous runs in rowIdx/values delimited
 * by colPtr; rows within a column are sorted ascending.
 *
 * @tparam T value type
 */
template <typename T>
class CscMatrix
{
  public:
    CscMatrix() = default;

    /** Convert from COO (entries are sorted internally). */
    static CscMatrix
    fromCoo(const CooMatrix<T> &coo)
    {
        CscMatrix m;
        m.rows_ = coo.numRows();
        m.cols_ = coo.numCols();
        m.colPtr_.assign(static_cast<std::size_t>(m.cols_) + 1, 0);
        m.rowIdx_.resize(coo.nnz());
        m.values_.resize(coo.nnz());

        for (std::size_t k = 0; k < coo.nnz(); ++k)
            ++m.colPtr_[coo.colAt(k) + 1];
        for (std::size_t c = 0; c < m.cols_; ++c)
            m.colPtr_[c + 1] += m.colPtr_[c];

        std::vector<EdgeId> cursor(m.colPtr_.begin(), m.colPtr_.end() - 1);
        CooMatrix<T> sorted = coo;
        sorted.sortColMajor();
        for (std::size_t k = 0; k < sorted.nnz(); ++k) {
            const EdgeId pos = cursor[sorted.colAt(k)]++;
            m.rowIdx_[pos] = sorted.rowAt(k);
            m.values_[pos] = sorted.valueAt(k);
        }
        return m;
    }

    /** Number of rows. */
    NodeId numRows() const { return rows_; }

    /** Number of columns. */
    NodeId numCols() const { return cols_; }

    /** Number of stored entries. */
    std::size_t nnz() const { return rowIdx_.size(); }

    /** Start offset of column c in rowIndices()/values(). */
    EdgeId colBegin(NodeId c) const { return colPtr_[c]; }

    /** One-past-the-end offset of column c. */
    EdgeId colEnd(NodeId c) const { return colPtr_[c + 1]; }

    /** Number of entries in column c. */
    EdgeId colLength(NodeId c) const { return colEnd(c) - colBegin(c); }

    /** Column-pointer array of length numCols()+1. */
    const std::vector<EdgeId> &colPtr() const { return colPtr_; }

    /** Row indices, grouped by column. */
    const std::vector<NodeId> &rowIndices() const { return rowIdx_; }

    /** Values parallel to rowIndices(). */
    const std::vector<T> &values() const { return values_; }

    /** Bytes of the CSC arrays. */
    Bytes
    storageBytes() const
    {
        return static_cast<Bytes>(colPtr_.size()) * sizeof(EdgeId) +
               static_cast<Bytes>(nnz()) * (sizeof(NodeId) + sizeof(T));
    }

  private:
    NodeId rows_ = 0;
    NodeId cols_ = 0;
    std::vector<EdgeId> colPtr_;
    std::vector<NodeId> rowIdx_;
    std::vector<T> values_;
};

} // namespace alphapim::sparse

#endif // ALPHA_PIM_SPARSE_CSC_HH
