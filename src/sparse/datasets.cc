#include "datasets.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"
#include "sparse/generators.hh"

namespace alphapim::sparse
{

const char *
graphFamilyName(GraphFamily family)
{
    switch (family) {
      case GraphFamily::ScaleFree:
        return "scale-free";
      case GraphFamily::Regular:
        return "regular";
      case GraphFamily::Synthetic:
        return "synthetic";
    }
    return "unknown";
}

const std::vector<DatasetSpec> &
table2Specs()
{
    // Node/edge/degree targets transcribed from the paper's Table 2.
    // 'r-PA' (roadNet-PA) is referenced in section 6.1 and appended
    // after the 13 tabulated datasets.
    static const std::vector<DatasetSpec> specs = {
        {"amazon0302", "A302", GraphFamily::ScaleFree,
         899792, 262111, 6.86, 5.41},
        {"as20000102", "as00", GraphFamily::ScaleFree,
         12572, 6474, 3.88, 24.99},
        {"ca-GrQc", "ca-Q", GraphFamily::ScaleFree,
         14484, 5242, 5.52, 7.91},
        {"cit-HepPh", "cit-HP", GraphFamily::ScaleFree,
         420877, 34546, 24.36, 30.87},
        {"email-Enron", "e-En", GraphFamily::ScaleFree,
         183831, 36692, 10.02, 36.1},
        {"facebook_combined", "face", GraphFamily::ScaleFree,
         88234, 4039, 43.69, 52.41},
        {"graph500-scale18", "g-18", GraphFamily::Synthetic,
         3800348, 174147, 43.64, 229.92},
        {"loc-brightkite_edges", "loc-b", GraphFamily::ScaleFree,
         214078, 58228, 7.35, 20.35},
        {"p2p-Gnutella24", "p2p-24", GraphFamily::ScaleFree,
         65369, 26518, 4.93, 5.91},
        {"roadNet-TX", "r-TX", GraphFamily::Regular,
         1541898, 1088092, 2.78, 1.0},
        {"soc-Slashdot0902", "s-S02", GraphFamily::ScaleFree,
         504230, 82168, 12.27, 41.07},
        {"soc-Slashdot0811", "s-S11", GraphFamily::ScaleFree,
         469180, 77360, 12.12, 40.45},
        {"flickrEdges", "flk-E", GraphFamily::ScaleFree,
         2316948, 105938, 43.74, 115.58},
        {"roadNet-PA", "r-PA", GraphFamily::Regular,
         1541514, 1087562, 2.83, 1.0},
    };
    return specs;
}

const DatasetSpec &
findSpec(const std::string &abbreviation)
{
    for (const auto &spec : table2Specs()) {
        if (spec.abbreviation == abbreviation || spec.name == abbreviation)
            return spec;
    }
    fatal("unknown dataset '%s'", abbreviation.c_str());
}

namespace
{

/** FNV-1a hash so each dataset gets an independent RNG stream. */
std::uint64_t
hashName(const std::string &name)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : name) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace

Dataset
buildDataset(const DatasetSpec &spec, double scale, std::uint64_t seed)
{
    ALPHA_ASSERT(scale > 0.0 && scale <= 1.0,
                 "dataset scale must be in (0, 1]");
    Rng rng(seed ^ hashName(spec.name));

    const auto nodes = std::max<NodeId>(
        64, static_cast<NodeId>(std::llround(spec.nodes * scale)));
    const auto edges = std::max<EdgeId>(
        128, static_cast<EdgeId>(std::llround(
                 static_cast<double>(spec.edges) * scale)));

    EdgeList list;
    switch (spec.family) {
      case GraphFamily::ScaleFree:
        list = generateScaleMatched(nodes, spec.avgDegree,
                                    spec.degreeStd, rng);
        break;
      case GraphFamily::Regular:
        list = generateRoadLattice(nodes, edges, rng);
        break;
      case GraphFamily::Synthetic: {
        // Invert the compaction: the initial R-MAT vertex space is a
        // power of two larger than the surviving node count.
        const double initial =
            static_cast<double>(nodes) * 262144.0 / 174147.0;
        const auto rmat_scale = static_cast<unsigned>(
            std::clamp(std::llround(std::log2(initial)), 8LL, 22LL));
        const double edge_factor =
            static_cast<double>(edges) /
            std::pow(2.0, static_cast<double>(rmat_scale));
        list = generateRmat(rmat_scale, edge_factor, rng);
        break;
      }
    }

    Dataset dataset;
    dataset.spec = spec;
    dataset.adjacency = edgeListToSymmetricCoo(list);
    dataset.stats = computeGraphStats(dataset.adjacency);
    return dataset;
}

Dataset
buildDataset(const std::string &abbreviation, double scale,
             std::uint64_t seed)
{
    return buildDataset(findSpec(abbreviation), scale, seed);
}

} // namespace alphapim::sparse
