#include "stats_cache.hh"

#include <map>
#include <mutex>

#include "perf/fingerprint.hh"

namespace alphapim::sparse
{

namespace
{

struct StatsCache
{
    std::mutex mutex;
    std::map<std::uint64_t, GraphStats> entries;
    StatsCacheCounters counters;
};

StatsCache &
cache()
{
    static StatsCache instance;
    return instance;
}

} // namespace

GraphStats
cachedGraphStats(const CooMatrix<float> &adjacency)
{
    const std::uint64_t fp = perf::datasetFingerprint(adjacency);
    StatsCache &c = cache();
    {
        std::lock_guard<std::mutex> lock(c.mutex);
        if (const auto it = c.entries.find(fp);
            it != c.entries.end()) {
            ++c.counters.hits;
            return it->second;
        }
    }
    // Compute outside the lock: concurrent first loads of distinct
    // graphs should not serialize on each other's degree scans.
    const GraphStats stats = computeGraphStats(adjacency);
    std::lock_guard<std::mutex> lock(c.mutex);
    ++c.counters.misses;
    c.entries.emplace(fp, stats);
    return stats;
}

StatsCacheCounters
statsCacheCounters()
{
    StatsCache &c = cache();
    std::lock_guard<std::mutex> lock(c.mutex);
    return c.counters;
}

void
resetStatsCache()
{
    StatsCache &c = cache();
    std::lock_guard<std::mutex> lock(c.mutex);
    c.entries.clear();
    c.counters = StatsCacheCounters();
}

} // namespace alphapim::sparse
