/**
 * @file
 * Process-wide GraphStats cache keyed by the dataset fingerprint.
 *
 * The serving steady state loads the same adjacency matrix over and
 * over (every engine construction recomputes the decision-tree
 * features), so cachedGraphStats() memoizes computeGraphStats() on
 * the FNV-1a dataset fingerprint (shape + structure + values --
 * src/perf/fingerprint.hh). A hit skips the O(nnz) degree scan
 * entirely; hit/miss counters make the skip observable to tests and
 * the serve.* metrics.
 */

#ifndef ALPHA_PIM_SPARSE_STATS_CACHE_HH
#define ALPHA_PIM_SPARSE_STATS_CACHE_HH

#include <cstdint>

#include "sparse/graph_stats.hh"

namespace alphapim::sparse
{

/** Hit/miss tally of the process-wide stats cache. A miss is also
 * exactly one computeGraphStats() execution, so `misses` counts the
 * stats work actually done. */
struct StatsCacheCounters
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
};

/**
 * computeGraphStats() memoized on the dataset fingerprint. The first
 * call for a given matrix computes and caches; subsequent calls for
 * a byte-identical matrix (same fingerprint) return the cached
 * stats without touching the matrix again. Thread-safe.
 */
GraphStats cachedGraphStats(const CooMatrix<float> &adjacency);

/** Current hit/miss counters. */
StatsCacheCounters statsCacheCounters();

/** Drop all cached entries and zero the counters (tests). */
void resetStatsCache();

} // namespace alphapim::sparse

#endif // ALPHA_PIM_SPARSE_STATS_CACHE_HH
