/**
 * @file
 * Registry of the 13 representative datasets from the paper's Table 2,
 * regenerated synthetically with matched node counts, edge counts and
 * degree statistics (see DESIGN.md for the substitution rationale).
 */

#ifndef ALPHA_PIM_SPARSE_DATASETS_HH
#define ALPHA_PIM_SPARSE_DATASETS_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "sparse/coo.hh"
#include "sparse/graph_stats.hh"

namespace alphapim::sparse
{

/** Structural family a dataset belongs to. */
enum class GraphFamily
{
    ScaleFree, ///< skewed degrees: social, web, citation, p2p
    Regular,   ///< uniform low degrees: road networks
    Synthetic, ///< R-MAT (graph500)
};

/** Human-readable family name. */
const char *graphFamilyName(GraphFamily family);

/** Static description of one Table 2 dataset. */
struct DatasetSpec
{
    std::string name;         ///< SNAP-style full name
    std::string abbreviation; ///< paper's short label
    GraphFamily family;
    EdgeId edges;             ///< undirected edge target (Table 2)
    NodeId nodes;             ///< node count target (Table 2)
    double avgDegree;         ///< Table 2 AVG-Deg (= 2E/N)
    double degreeStd;         ///< Table 2 Deg-std
};

/** A generated dataset: spec + adjacency + measured statistics. */
struct Dataset
{
    DatasetSpec spec;
    CooMatrix<float> adjacency; ///< symmetric pattern (values = 1)
    GraphStats stats;           ///< measured on the generated graph
};

/** All 13 Table 2 specs, in the paper's order. */
const std::vector<DatasetSpec> &table2Specs();

/** Look up a spec by abbreviation ('A302', 'r-TX', ...). Fatal if
 * unknown. */
const DatasetSpec &findSpec(const std::string &abbreviation);

/**
 * Generate a dataset from its spec.
 *
 * @param spec  which dataset
 * @param scale linear down-scaling factor in (0, 1]; nodes and edges
 *              shrink proportionally (used to keep tests fast)
 * @param seed  RNG seed; the same (spec, scale, seed) triple always
 *              produces the same graph
 */
Dataset buildDataset(const DatasetSpec &spec, double scale = 1.0,
                     std::uint64_t seed = 42);

/** Shorthand: buildDataset(findSpec(abbrev), scale, seed). */
Dataset buildDataset(const std::string &abbreviation, double scale = 1.0,
                     std::uint64_t seed = 42);

} // namespace alphapim::sparse

#endif // ALPHA_PIM_SPARSE_DATASETS_HH
