#include "mmio.hh"

#include <fstream>
#include <sstream>
#include <string>

#include "common/logging.hh"

namespace alphapim::sparse
{

namespace
{

/** Lower-case a token in place for case-insensitive header matching. */
std::string
toLower(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

} // namespace

CooMatrix<float>
readMatrixMarket(std::istream &in)
{
    std::string line;
    if (!std::getline(in, line))
        fatal("matrix market stream is empty");

    std::istringstream header(line);
    std::string banner, object, format, field, symmetry;
    header >> banner >> object >> format >> field >> symmetry;
    if (banner != "%%MatrixMarket")
        fatal("missing %%%%MatrixMarket banner");
    object = toLower(object);
    format = toLower(format);
    field = toLower(field);
    symmetry = toLower(symmetry);
    if (object != "matrix" || format != "coordinate")
        fatal("only 'matrix coordinate' files are supported");
    const bool pattern = field == "pattern";
    if (!pattern && field != "real" && field != "integer")
        fatal("unsupported field type '%s'", field.c_str());
    const bool symmetric = symmetry == "symmetric";
    if (!symmetric && symmetry != "general")
        fatal("unsupported symmetry '%s'", symmetry.c_str());

    // Skip comments to the size line.
    while (std::getline(in, line)) {
        if (!line.empty() && line[0] != '%')
            break;
    }
    std::istringstream size_line(line);
    std::uint64_t rows = 0, cols = 0, entries = 0;
    size_line >> rows >> cols >> entries;
    if (rows == 0 || cols == 0)
        fatal("bad matrix market size line");

    CooMatrix<float> coo(static_cast<NodeId>(rows),
                         static_cast<NodeId>(cols));
    coo.reserve(symmetric ? entries * 2 : entries);
    for (std::uint64_t k = 0; k < entries; ++k) {
        if (!std::getline(in, line))
            fatal("matrix market stream truncated at entry %llu",
                  static_cast<unsigned long long>(k));
        std::istringstream entry(line);
        std::uint64_t r = 0, c = 0;
        double v = 1.0;
        entry >> r >> c;
        if (!pattern)
            entry >> v;
        if (r == 0 || c == 0 || r > rows || c > cols)
            fatal("matrix market entry out of range at line %llu",
                  static_cast<unsigned long long>(k));
        coo.addEntry(static_cast<NodeId>(r - 1),
                     static_cast<NodeId>(c - 1),
                     static_cast<float>(v));
        if (symmetric && r != c) {
            coo.addEntry(static_cast<NodeId>(c - 1),
                         static_cast<NodeId>(r - 1),
                         static_cast<float>(v));
        }
    }
    coo.coalesce();
    return coo;
}

CooMatrix<float>
readMatrixMarketFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open matrix market file '%s'", path.c_str());
    return readMatrixMarket(in);
}

void
writeMatrixMarket(const CooMatrix<float> &matrix, std::ostream &out)
{
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << matrix.numRows() << " " << matrix.numCols() << " "
        << matrix.nnz() << "\n";
    for (std::size_t k = 0; k < matrix.nnz(); ++k) {
        out << (matrix.rowAt(k) + 1) << " " << (matrix.colAt(k) + 1)
            << " " << matrix.valueAt(k) << "\n";
    }
}

void
writeMatrixMarketFile(const CooMatrix<float> &matrix,
                      const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot create matrix market file '%s'", path.c_str());
    writeMatrixMarket(matrix, out);
}

} // namespace alphapim::sparse
