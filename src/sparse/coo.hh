/**
 * @file
 * Coordinate-list (COO) sparse matrix: the construction and interchange
 * format. Graph generators emit COO; partitioners slice COO blocks and
 * convert them to CSR/CSC per strategy.
 */

#ifndef ALPHA_PIM_SPARSE_COO_HH
#define ALPHA_PIM_SPARSE_COO_HH

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace alphapim::sparse
{

/**
 * COO matrix with parallel (row, col, value) arrays.
 *
 * @tparam T value type
 */
template <typename T>
class CooMatrix
{
  public:
    CooMatrix() = default;

    /** Empty matrix of the given shape. */
    CooMatrix(NodeId rows, NodeId cols) : rows_(rows), cols_(cols) {}

    /** Number of rows. */
    NodeId numRows() const { return rows_; }

    /** Number of columns. */
    NodeId numCols() const { return cols_; }

    /** Number of stored entries. */
    std::size_t nnz() const { return rowIdx_.size(); }

    /** Row index of entry k. */
    NodeId rowAt(std::size_t k) const { return rowIdx_[k]; }

    /** Column index of entry k. */
    NodeId colAt(std::size_t k) const { return colIdx_[k]; }

    /** Value of entry k. */
    T valueAt(std::size_t k) const { return values_[k]; }

    /** Raw row-index array. */
    const std::vector<NodeId> &rowIndices() const { return rowIdx_; }

    /** Raw column-index array. */
    const std::vector<NodeId> &colIndices() const { return colIdx_; }

    /** Raw value array. */
    const std::vector<T> &values() const { return values_; }

    /** Append one entry (no dedup; see coalesce()). */
    void
    addEntry(NodeId r, NodeId c, T v)
    {
        ALPHA_ASSERT(r < rows_ && c < cols_, "COO entry out of range");
        rowIdx_.push_back(r);
        colIdx_.push_back(c);
        values_.push_back(v);
    }

    /** Reserve storage for n entries. */
    void
    reserve(std::size_t n)
    {
        rowIdx_.reserve(n);
        colIdx_.reserve(n);
        values_.reserve(n);
    }

    /** Sort entries by (row, col). */
    void
    sortRowMajor()
    {
        applyOrder(makeOrder([&](std::size_t a, std::size_t b) {
            if (rowIdx_[a] != rowIdx_[b])
                return rowIdx_[a] < rowIdx_[b];
            return colIdx_[a] < colIdx_[b];
        }));
    }

    /** Sort entries by (col, row). */
    void
    sortColMajor()
    {
        applyOrder(makeOrder([&](std::size_t a, std::size_t b) {
            if (colIdx_[a] != colIdx_[b])
                return colIdx_[a] < colIdx_[b];
            return rowIdx_[a] < rowIdx_[b];
        }));
    }

    /**
     * Merge duplicate (row, col) entries, keeping the first value.
     * Graph adjacency matrices treat parallel edges as one edge, so
     * keep-first matches the generators' intent. Sorts row-major.
     */
    void
    coalesce()
    {
        sortRowMajor();
        std::size_t out = 0;
        for (std::size_t k = 0; k < nnz(); ++k) {
            if (out > 0 && rowIdx_[k] == rowIdx_[out - 1] &&
                colIdx_[k] == colIdx_[out - 1]) {
                continue;
            }
            rowIdx_[out] = rowIdx_[k];
            colIdx_[out] = colIdx_[k];
            values_[out] = values_[k];
            ++out;
        }
        rowIdx_.resize(out);
        colIdx_.resize(out);
        values_.resize(out);
    }

    /** Return the transposed matrix (rows and columns swapped). */
    CooMatrix
    transposed() const
    {
        CooMatrix t(cols_, rows_);
        t.rowIdx_ = colIdx_;
        t.colIdx_ = rowIdx_;
        t.values_ = values_;
        return t;
    }

    /**
     * Extract the sub-block rows [r0, r1) x cols [c0, c1) with indices
     * rebased to the block origin. Used by every partitioner.
     */
    CooMatrix
    extractBlock(NodeId r0, NodeId r1, NodeId c0, NodeId c1) const
    {
        ALPHA_ASSERT(r0 <= r1 && r1 <= rows_, "bad row range");
        ALPHA_ASSERT(c0 <= c1 && c1 <= cols_, "bad col range");
        CooMatrix block(r1 - r0, c1 - c0);
        for (std::size_t k = 0; k < nnz(); ++k) {
            const NodeId r = rowIdx_[k];
            const NodeId c = colIdx_[k];
            if (r >= r0 && r < r1 && c >= c0 && c < c1)
                block.addEntry(r - r0, c - c0, values_[k]);
        }
        return block;
    }

    /** Bytes of the COO arrays (two index arrays + values). */
    Bytes
    storageBytes() const
    {
        return static_cast<Bytes>(nnz()) * (2 * sizeof(NodeId) + sizeof(T));
    }

  private:
    template <typename Cmp>
    std::vector<std::size_t>
    makeOrder(Cmp cmp) const
    {
        std::vector<std::size_t> order(nnz());
        std::iota(order.begin(), order.end(), 0);
        std::sort(order.begin(), order.end(), cmp);
        return order;
    }

    void
    applyOrder(const std::vector<std::size_t> &order)
    {
        std::vector<NodeId> r(nnz()), c(nnz());
        std::vector<T> v(nnz());
        for (std::size_t i = 0; i < order.size(); ++i) {
            r[i] = rowIdx_[order[i]];
            c[i] = colIdx_[order[i]];
            v[i] = values_[order[i]];
        }
        rowIdx_ = std::move(r);
        colIdx_ = std::move(c);
        values_ = std::move(v);
    }

    NodeId rows_ = 0;
    NodeId cols_ = 0;
    std::vector<NodeId> rowIdx_;
    std::vector<NodeId> colIdx_;
    std::vector<T> values_;
};

} // namespace alphapim::sparse

#endif // ALPHA_PIM_SPARSE_COO_HH
