#include "partition_shares.hh"

namespace alphapim::sparse
{

std::vector<double>
shareNnz(const std::vector<PartitionShare> &shares)
{
    std::vector<double> out;
    out.reserve(shares.size());
    for (const auto &s : shares)
        out.push_back(static_cast<double>(s.nnz));
    return out;
}

std::vector<double>
shareRows(const std::vector<PartitionShare> &shares)
{
    std::vector<double> out;
    out.reserve(shares.size());
    for (const auto &s : shares)
        out.push_back(static_cast<double>(s.rows));
    return out;
}

std::vector<double>
shareBytes(const std::vector<PartitionShare> &shares)
{
    std::vector<double> out;
    out.reserve(shares.size());
    for (const auto &s : shares)
        out.push_back(static_cast<double>(s.bytes));
    return out;
}

} // namespace alphapim::sparse
