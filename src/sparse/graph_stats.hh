/**
 * @file
 * Degree statistics and structural features of a graph adjacency
 * matrix. These are exactly the features the paper's decision-tree
 * kernel selector consumes (average degree, degree std) plus the
 * Table 2 characterization columns.
 */

#ifndef ALPHA_PIM_SPARSE_GRAPH_STATS_HH
#define ALPHA_PIM_SPARSE_GRAPH_STATS_HH

#include <vector>

#include "common/types.hh"
#include "sparse/coo.hh"

namespace alphapim::sparse
{

/** Table 2 style characterization of one graph. */
struct GraphStats
{
    NodeId nodes = 0;
    /** Undirected edge count (nnz / 2 for the symmetric adjacency). */
    EdgeId edges = 0;
    /** Stored nonzeros of the adjacency matrix. */
    EdgeId nnz = 0;
    /** Mean undirected degree 2E/N, as reported in Table 2. */
    double avgDegree = 0.0;
    /** Population standard deviation of the degree distribution. */
    double degreeStd = 0.0;
    /** NNZ / N^2, the paper's sparsity definition. */
    double sparsity = 0.0;
    /** Largest vertex degree. */
    NodeId maxDegree = 0;
};

/** Compute GraphStats from a symmetric adjacency pattern. */
GraphStats computeGraphStats(const CooMatrix<float> &adjacency);

/** Per-vertex degree (row nnz) of the adjacency matrix. */
std::vector<NodeId> vertexDegrees(const CooMatrix<float> &adjacency);

/**
 * Vertices reachable from source, via a host-side BFS over the
 * adjacency pattern. Used to pick interesting source vertices and to
 * validate the PIM traversal results.
 */
std::vector<bool> reachableFrom(const CooMatrix<float> &adjacency,
                                NodeId source);

/** A vertex inside the largest weakly connected component. */
NodeId largestComponentVertex(const CooMatrix<float> &adjacency);

} // namespace alphapim::sparse

#endif // ALPHA_PIM_SPARSE_GRAPH_STATS_HH
