/**
 * @file
 * Compressed Sparse Row (CSR) matrix: row_ptr / col_indices / values.
 * The natural format for row-wise SpMV and for the (deliberately
 * inefficient, per the paper) CSR SpMSpV variant.
 */

#ifndef ALPHA_PIM_SPARSE_CSR_HH
#define ALPHA_PIM_SPARSE_CSR_HH

#include <cstddef>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "sparse/coo.hh"

namespace alphapim::sparse
{

/**
 * CSR matrix. Rows are contiguous runs in colIdx/values delimited by
 * rowPtr; columns within a row are sorted ascending.
 *
 * @tparam T value type
 */
template <typename T>
class CsrMatrix
{
  public:
    CsrMatrix() = default;

    /** Convert from COO (entries are sorted internally). */
    static CsrMatrix
    fromCoo(const CooMatrix<T> &coo)
    {
        CsrMatrix m;
        m.rows_ = coo.numRows();
        m.cols_ = coo.numCols();
        m.rowPtr_.assign(static_cast<std::size_t>(m.rows_) + 1, 0);
        m.colIdx_.resize(coo.nnz());
        m.values_.resize(coo.nnz());

        // Counting sort by row keeps conversion O(nnz + rows).
        for (std::size_t k = 0; k < coo.nnz(); ++k)
            ++m.rowPtr_[coo.rowAt(k) + 1];
        for (std::size_t r = 0; r < m.rows_; ++r)
            m.rowPtr_[r + 1] += m.rowPtr_[r];

        std::vector<EdgeId> cursor(m.rowPtr_.begin(), m.rowPtr_.end() - 1);
        CooMatrix<T> sorted = coo;
        sorted.sortRowMajor();
        for (std::size_t k = 0; k < sorted.nnz(); ++k) {
            const EdgeId pos = cursor[sorted.rowAt(k)]++;
            m.colIdx_[pos] = sorted.colAt(k);
            m.values_[pos] = sorted.valueAt(k);
        }
        return m;
    }

    /** Number of rows. */
    NodeId numRows() const { return rows_; }

    /** Number of columns. */
    NodeId numCols() const { return cols_; }

    /** Number of stored entries. */
    std::size_t nnz() const { return colIdx_.size(); }

    /** Start offset of row r in colIndices()/values(). */
    EdgeId rowBegin(NodeId r) const { return rowPtr_[r]; }

    /** One-past-the-end offset of row r. */
    EdgeId rowEnd(NodeId r) const { return rowPtr_[r + 1]; }

    /** Number of entries in row r. */
    EdgeId rowLength(NodeId r) const { return rowEnd(r) - rowBegin(r); }

    /** Row-pointer array of length numRows()+1. */
    const std::vector<EdgeId> &rowPtr() const { return rowPtr_; }

    /** Column indices, grouped by row. */
    const std::vector<NodeId> &colIndices() const { return colIdx_; }

    /** Values parallel to colIndices(). */
    const std::vector<T> &values() const { return values_; }

    /** Bytes of the CSR arrays. */
    Bytes
    storageBytes() const
    {
        return static_cast<Bytes>(rowPtr_.size()) * sizeof(EdgeId) +
               static_cast<Bytes>(nnz()) * (sizeof(NodeId) + sizeof(T));
    }

  private:
    NodeId rows_ = 0;
    NodeId cols_ = 0;
    std::vector<EdgeId> rowPtr_;
    std::vector<NodeId> colIdx_;
    std::vector<T> values_;
};

} // namespace alphapim::sparse

#endif // ALPHA_PIM_SPARSE_CSR_HH
