/**
 * @file
 * Compressed sparse vector: the frontier/input-vector representation
 * that SpMSpV consumes. Indices are kept sorted ascending so kernels
 * can merge against matrix structure in a single pass.
 */

#ifndef ALPHA_PIM_SPARSE_SPARSE_VECTOR_HH
#define ALPHA_PIM_SPARSE_SPARSE_VECTOR_HH

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace alphapim::sparse
{

/**
 * A length-N vector stored as (index, value) pairs for its nonzeros.
 *
 * @tparam T element type (uint32_t for BFS/SSSP, float for PPR)
 */
template <typename T>
class SparseVector
{
  public:
    SparseVector() = default;

    /** Empty vector of logical dimension n. */
    explicit SparseVector(NodeId n) : dim_(n) {}

    /** Build from parallel index/value arrays (will be sorted). */
    SparseVector(NodeId n, std::vector<NodeId> idx, std::vector<T> val)
        : dim_(n), indices_(std::move(idx)), values_(std::move(val))
    {
        ALPHA_ASSERT(indices_.size() == values_.size(),
                     "index/value arrays must be the same length");
        sortByIndex();
    }

    /** Logical dimension N. */
    NodeId dim() const { return dim_; }

    /** Number of stored nonzeros. */
    std::size_t nnz() const { return indices_.size(); }

    /** Fraction of entries that are nonzero, in [0, 1]. */
    double
    density() const
    {
        return dim_ == 0
            ? 0.0
            : static_cast<double>(nnz()) / static_cast<double>(dim_);
    }

    /** Sorted nonzero indices. */
    const std::vector<NodeId> &indices() const { return indices_; }

    /** Values parallel to indices(). */
    const std::vector<T> &values() const { return values_; }

    /** Append a nonzero; call sortByIndex() before handing to kernels. */
    void
    append(NodeId i, T v)
    {
        ALPHA_ASSERT(i < dim_, "sparse vector index out of range");
        indices_.push_back(i);
        values_.push_back(v);
    }

    /** Drop all nonzeros, keeping the dimension. */
    void
    clear()
    {
        indices_.clear();
        values_.clear();
    }

    /** Restore the sorted-by-index invariant after appends. */
    void
    sortByIndex()
    {
        if (std::is_sorted(indices_.begin(), indices_.end()))
            return;
        std::vector<std::size_t> order(indices_.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return indices_[a] < indices_[b];
                  });
        std::vector<NodeId> idx(indices_.size());
        std::vector<T> val(values_.size());
        for (std::size_t i = 0; i < order.size(); ++i) {
            idx[i] = indices_[order[i]];
            val[i] = values_[order[i]];
        }
        indices_ = std::move(idx);
        values_ = std::move(val);
    }

    /** Expand to a dense array with `zero` in empty slots. */
    std::vector<T>
    toDense(T zero) const
    {
        std::vector<T> out(dim_, zero);
        for (std::size_t k = 0; k < indices_.size(); ++k)
            out[indices_[k]] = values_[k];
        return out;
    }

    /** Compress a dense array, dropping entries equal to `zero`. */
    static SparseVector
    fromDense(const std::vector<T> &dense, T zero)
    {
        SparseVector out(static_cast<NodeId>(dense.size()));
        for (NodeId i = 0; i < dense.size(); ++i) {
            if (dense[i] != zero)
                out.append(i, dense[i]);
        }
        return out;
    }

    /** Bytes of the compressed representation (index + value pairs). */
    Bytes
    compressedBytes() const
    {
        return static_cast<Bytes>(nnz()) * (sizeof(NodeId) + sizeof(T));
    }

    /** Bytes of the equivalent dense representation. */
    Bytes
    denseBytes() const
    {
        return static_cast<Bytes>(dim_) * sizeof(T);
    }

  private:
    NodeId dim_ = 0;
    std::vector<NodeId> indices_;
    std::vector<T> values_;
};

} // namespace alphapim::sparse

#endif // ALPHA_PIM_SPARSE_SPARSE_VECTOR_HH
