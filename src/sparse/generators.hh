/**
 * @file
 * Synthetic graph generators substituting for the paper's SNAP /
 * GraphChallenge datasets (see DESIGN.md section 1).
 *
 * Three structural families cover the paper's dataset classes:
 *  - configuration model with a lognormal degree sequence matched to a
 *    target (mean, std): social / web / citation / p2p graphs;
 *  - R-MAT: graph500-style synthetic scale-free graphs;
 *  - degraded 2-D lattice: road networks (low, uniform degree).
 *
 * All generators produce an undirected simple graph as a symmetric
 * COO adjacency pattern (both (u,v) and (v,u) stored, no self loops,
 * no duplicates). The paper's Table 2 "Edge" column counts undirected
 * edges, i.e. nnz/2 of the symmetric matrix.
 */

#ifndef ALPHA_PIM_SPARSE_GENERATORS_HH
#define ALPHA_PIM_SPARSE_GENERATORS_HH

#include <utility>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"
#include "sparse/coo.hh"

namespace alphapim::sparse
{

/** Undirected edge list produced by the generators. */
struct EdgeList
{
    NodeId nodes = 0;
    /** Each pair (u, v) with u != v appears at most once, u < v. */
    std::vector<std::pair<NodeId, NodeId>> edges;
};

/**
 * Erdős–Rényi G(n, m): m distinct undirected edges drawn uniformly.
 * Baseline "no structure" generator used by the property tests.
 */
EdgeList generateErdosRenyi(NodeId n, EdgeId m, Rng &rng);

/**
 * R-MAT recursive generator (Chakrabarti et al.) with the graph500
 * default parameters a=0.57, b=0.19, c=0.19. Produces a heavy-tailed
 * degree distribution with many isolated vertices, which are compacted
 * away so the resulting node count matches graph500 conventions.
 *
 * @param scale  log2 of the initial vertex-space size
 * @param edge_factor undirected edges per (initial-space) vertex
 */
EdgeList generateRmat(unsigned scale, double edge_factor, Rng &rng,
                      double a = 0.57, double b = 0.19, double c = 0.19);

/**
 * Road-network surrogate: a sqrt(n) x sqrt(n) 4-neighbour lattice with
 * edges kept independently so the expected undirected edge count hits
 * target_edges. Degree mean ~2E/N and std ~1, matching r-TX / r-PA.
 */
EdgeList generateRoadLattice(NodeId n, EdgeId target_edges, Rng &rng);

/**
 * Sample a degree sequence of length n from a lognormal distribution
 * whose moments match (target_mean, target_std); entries are clamped
 * to [1, n-1] so the configuration model can realize them.
 */
std::vector<NodeId> sampleLognormalDegrees(NodeId n, double target_mean,
                                           double target_std, Rng &rng);

/**
 * Configuration model: wire an undirected simple graph realizing the
 * degree sequence as closely as possible (stub matching with rejection
 * of self loops and duplicate edges; unmatched stubs are dropped).
 */
EdgeList generateConfigurationModel(const std::vector<NodeId> &degrees,
                                    Rng &rng);

/**
 * Convenience wrapper: lognormal degree sequence + configuration
 * model, the surrogate for all SNAP social/web/citation datasets.
 */
EdgeList generateScaleMatched(NodeId n, double avg_degree,
                              double degree_std, Rng &rng);

/** Build a symmetric COO adjacency pattern from an undirected list. */
CooMatrix<float> edgeListToSymmetricCoo(const EdgeList &list);

/**
 * Assign integer-valued edge weights uniform in [wmin, wmax] to every
 * stored entry, keeping the matrix symmetric (w(u,v) == w(v,u)).
 * Used by SSSP.
 */
CooMatrix<float> assignSymmetricWeights(const CooMatrix<float> &pattern,
                                        float wmin, float wmax, Rng &rng);

} // namespace alphapim::sparse

#endif // ALPHA_PIM_SPARSE_GENERATORS_HH
