/**
 * @file
 * Per-DPU partition shares: the row/nnz/byte assignment a partitioner
 * handed each DPU, exported in a kernel-agnostic form so the analysis
 * layer can join it with per-DPU execution profiles ("DPU 37 holds
 * 3.1x the mean nnz") without depending on any kernel type.
 */

#ifndef ALPHA_PIM_SPARSE_PARTITION_SHARES_HH
#define ALPHA_PIM_SPARSE_PARTITION_SHARES_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace alphapim::sparse
{

/** One DPU's slice of the partitioned matrix. */
struct PartitionShare
{
    /** Matrix rows assigned to this DPU. */
    std::uint64_t rows = 0;

    /** Stored nonzeros assigned to this DPU. */
    std::uint64_t nnz = 0;

    /** MRAM bytes the slice occupies on the DPU. */
    Bytes bytes = 0;
};

/** The nnz column of a share vector, as doubles for the skew stats. */
std::vector<double> shareNnz(const std::vector<PartitionShare> &shares);

/** The row column of a share vector, as doubles. */
std::vector<double> shareRows(const std::vector<PartitionShare> &shares);

/** The byte column of a share vector, as doubles. */
std::vector<double> shareBytes(const std::vector<PartitionShare> &shares);

} // namespace alphapim::sparse

#endif // ALPHA_PIM_SPARSE_PARTITION_SHARES_HH
