#include "graph_stats.hh"

#include <algorithm>
#include <queue>

#include "common/logging.hh"
#include "common/stats.hh"
#include "sparse/csr.hh"

namespace alphapim::sparse
{

std::vector<NodeId>
vertexDegrees(const CooMatrix<float> &adjacency)
{
    std::vector<NodeId> degrees(adjacency.numRows(), 0);
    for (std::size_t k = 0; k < adjacency.nnz(); ++k)
        ++degrees[adjacency.rowAt(k)];
    return degrees;
}

GraphStats
computeGraphStats(const CooMatrix<float> &adjacency)
{
    ALPHA_ASSERT(adjacency.numRows() == adjacency.numCols(),
                 "adjacency matrix must be square");
    GraphStats stats;
    stats.nodes = adjacency.numRows();
    stats.nnz = adjacency.nnz();
    stats.edges = stats.nnz / 2;

    RunningStats deg_stats;
    for (NodeId deg : vertexDegrees(adjacency)) {
        deg_stats.add(static_cast<double>(deg));
        stats.maxDegree = std::max(stats.maxDegree, deg);
    }
    stats.avgDegree = deg_stats.mean();
    stats.degreeStd = deg_stats.stddev();
    const double n = static_cast<double>(stats.nodes);
    // Table 2 convention: sparsity = E / N^2 with E the undirected
    // edge count.
    stats.sparsity = n > 0
        ? static_cast<double>(stats.edges) / (n * n)
        : 0.0;
    return stats;
}

std::vector<bool>
reachableFrom(const CooMatrix<float> &adjacency, NodeId source)
{
    const auto csr = CsrMatrix<float>::fromCoo(adjacency);
    std::vector<bool> visited(csr.numRows(), false);
    std::queue<NodeId> frontier;
    visited[source] = true;
    frontier.push(source);
    while (!frontier.empty()) {
        const NodeId u = frontier.front();
        frontier.pop();
        for (EdgeId e = csr.rowBegin(u); e < csr.rowEnd(u); ++e) {
            const NodeId v = csr.colIndices()[e];
            if (!visited[v]) {
                visited[v] = true;
                frontier.push(v);
            }
        }
    }
    return visited;
}

NodeId
largestComponentVertex(const CooMatrix<float> &adjacency)
{
    const NodeId n = adjacency.numRows();
    ALPHA_ASSERT(n > 0, "empty graph has no components");

    std::vector<NodeId> component(n, invalidNode);
    const auto csr = CsrMatrix<float>::fromCoo(adjacency);
    NodeId best_root = 0;
    std::size_t best_size = 0;
    NodeId next_component = 0;

    std::vector<NodeId> stack;
    for (NodeId root = 0; root < n; ++root) {
        if (component[root] != invalidNode)
            continue;
        const NodeId comp = next_component++;
        std::size_t size = 0;
        stack.push_back(root);
        component[root] = comp;
        while (!stack.empty()) {
            const NodeId u = stack.back();
            stack.pop_back();
            ++size;
            for (EdgeId e = csr.rowBegin(u); e < csr.rowEnd(u); ++e) {
                const NodeId v = csr.colIndices()[e];
                if (component[v] == invalidNode) {
                    component[v] = comp;
                    stack.push_back(v);
                }
            }
        }
        if (size > best_size) {
            best_size = size;
            best_root = root;
        }
    }
    return best_root;
}

} // namespace alphapim::sparse
