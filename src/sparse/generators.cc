#include "generators.hh"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.hh"

namespace alphapim::sparse
{

namespace
{

/** Pack an undirected edge (u < v) into one 64-bit key. */
std::uint64_t
packEdge(NodeId u, NodeId v)
{
    if (u > v)
        std::swap(u, v);
    return (static_cast<std::uint64_t>(u) << 32) | v;
}

/** Mix a 64-bit value (splitmix64 finalizer) for hashing edges. */
std::uint64_t
mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Remove isolated vertices and renumber the survivors densely. */
EdgeList
compactVertices(NodeId n, std::vector<std::pair<NodeId, NodeId>> edges)
{
    std::vector<NodeId> remap(n, invalidNode);
    NodeId next = 0;
    for (const auto &[u, v] : edges) {
        if (remap[u] == invalidNode)
            remap[u] = next++;
        if (remap[v] == invalidNode)
            remap[v] = next++;
    }
    for (auto &[u, v] : edges) {
        u = remap[u];
        v = remap[v];
        if (u > v)
            std::swap(u, v);
    }
    EdgeList out;
    out.nodes = next;
    out.edges = std::move(edges);
    return out;
}

} // namespace

EdgeList
generateErdosRenyi(NodeId n, EdgeId m, Rng &rng)
{
    ALPHA_ASSERT(n >= 2, "ER graph needs at least two vertices");
    const EdgeId max_edges =
        static_cast<EdgeId>(n) * (n - 1) / 2;
    if (m > max_edges)
        m = max_edges;

    EdgeList out;
    out.nodes = n;
    out.edges.reserve(m);
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(m * 2);
    while (out.edges.size() < m) {
        const auto u = static_cast<NodeId>(rng.nextBounded(n));
        const auto v = static_cast<NodeId>(rng.nextBounded(n));
        if (u == v)
            continue;
        const std::uint64_t key = packEdge(u, v);
        if (!seen.insert(key).second)
            continue;
        out.edges.emplace_back(std::min(u, v), std::max(u, v));
    }
    return out;
}

EdgeList
generateRmat(unsigned scale, double edge_factor, Rng &rng,
             double a, double b, double c)
{
    ALPHA_ASSERT(scale >= 4 && scale <= 26, "unreasonable R-MAT scale");
    const double d = 1.0 - a - b - c;
    ALPHA_ASSERT(d > 0.0, "R-MAT quadrant probabilities must sum < 1");

    const NodeId n = NodeId{1} << scale;
    const auto target =
        static_cast<EdgeId>(edge_factor * static_cast<double>(n));

    std::vector<std::pair<NodeId, NodeId>> edges;
    edges.reserve(target);
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(target * 2);

    // Cap attempts so adversarial parameters cannot loop forever.
    const EdgeId max_attempts = target * 8;
    for (EdgeId attempt = 0;
         attempt < max_attempts && edges.size() < target; ++attempt) {
        NodeId u = 0, v = 0;
        for (unsigned level = 0; level < scale; ++level) {
            const double p = rng.nextDouble();
            // Quadrant choice: a | b / c | d, with light noise per
            // level as in the graph500 reference implementation.
            const unsigned bit_u = (p >= a + b) ? 1 : 0;
            const unsigned bit_v = (p >= a && p < a + b) ||
                                   (p >= a + b + c) ? 1 : 0;
            u = (u << 1) | bit_u;
            v = (v << 1) | bit_v;
        }
        if (u == v)
            continue;
        if (!seen.insert(packEdge(u, v)).second)
            continue;
        edges.emplace_back(std::min(u, v), std::max(u, v));
    }
    return compactVertices(n, std::move(edges));
}

EdgeList
generateRoadLattice(NodeId n, EdgeId target_edges, Rng &rng)
{
    ALPHA_ASSERT(n >= 4, "road lattice needs at least four vertices");
    const auto side = static_cast<NodeId>(
        std::ceil(std::sqrt(static_cast<double>(n))));

    // Count candidate lattice edges among the first n row-major cells.
    auto cell_id = [&](NodeId row, NodeId col) {
        return row * side + col;
    };
    EdgeId candidates = 0;
    for (NodeId row = 0; row < side; ++row) {
        for (NodeId col = 0; col < side; ++col) {
            const NodeId id = cell_id(row, col);
            if (id >= n)
                continue;
            if (col + 1 < side && cell_id(row, col + 1) < n)
                ++candidates;
            if (row + 1 < side && cell_id(row + 1, col) < n)
                ++candidates;
        }
    }
    const double keep =
        std::min(1.0, static_cast<double>(target_edges) /
                          static_cast<double>(candidates));

    EdgeList out;
    out.nodes = n;
    out.edges.reserve(target_edges);
    for (NodeId row = 0; row < side; ++row) {
        for (NodeId col = 0; col < side; ++col) {
            const NodeId id = cell_id(row, col);
            if (id >= n)
                continue;
            if (col + 1 < side && cell_id(row, col + 1) < n &&
                rng.nextBernoulli(keep)) {
                out.edges.emplace_back(id, cell_id(row, col + 1));
            }
            if (row + 1 < side && cell_id(row + 1, col) < n &&
                rng.nextBernoulli(keep)) {
                out.edges.emplace_back(id, cell_id(row + 1, col));
            }
        }
    }
    return out;
}

std::vector<NodeId>
sampleLognormalDegrees(NodeId n, double target_mean, double target_std,
                       Rng &rng)
{
    ALPHA_ASSERT(target_mean >= 1.0, "degree mean below one");
    // Lognormal with moments matched to (mean, std):
    //   sigma^2 = ln(1 + (std/mean)^2),  mu = ln(mean) - sigma^2 / 2
    const double ratio = target_std / target_mean;
    const double sigma2 = std::log(1.0 + ratio * ratio);
    const double mu = std::log(target_mean) - sigma2 / 2.0;
    const double sigma = std::sqrt(sigma2);

    std::vector<NodeId> degrees(n);
    for (NodeId i = 0; i < n; ++i) {
        const double raw = rng.nextLognormal(mu, sigma);
        auto deg = static_cast<std::uint64_t>(std::llround(raw));
        deg = std::clamp<std::uint64_t>(deg, 1, n - 1);
        degrees[i] = static_cast<NodeId>(deg);
    }
    return degrees;
}

EdgeList
generateConfigurationModel(const std::vector<NodeId> &degrees, Rng &rng)
{
    const auto n = static_cast<NodeId>(degrees.size());
    std::uint64_t stub_count = 0;
    for (NodeId deg : degrees)
        stub_count += deg;

    std::vector<NodeId> stubs;
    stubs.reserve(stub_count);
    for (NodeId v = 0; v < n; ++v) {
        for (NodeId k = 0; k < degrees[v]; ++k)
            stubs.push_back(v);
    }
    // Fisher-Yates shuffle, then pair consecutive stubs. Pairs that
    // would create a self loop or duplicate edge are dropped, which
    // slightly undershoots hub degrees -- the standard erased-
    // configuration-model behaviour.
    for (std::size_t i = stubs.size(); i > 1; --i) {
        const std::size_t j = rng.nextBounded(i);
        std::swap(stubs[i - 1], stubs[j]);
    }

    EdgeList out;
    out.nodes = n;
    out.edges.reserve(stubs.size() / 2);
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(stubs.size());
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
        const NodeId u = stubs[i];
        const NodeId v = stubs[i + 1];
        if (u == v)
            continue;
        if (!seen.insert(packEdge(u, v)).second)
            continue;
        out.edges.emplace_back(std::min(u, v), std::max(u, v));
    }
    return out;
}

EdgeList
generateScaleMatched(NodeId n, double avg_degree, double degree_std,
                     Rng &rng)
{
    const auto degrees =
        sampleLognormalDegrees(n, avg_degree, degree_std, rng);
    return generateConfigurationModel(degrees, rng);
}

CooMatrix<float>
edgeListToSymmetricCoo(const EdgeList &list)
{
    CooMatrix<float> coo(list.nodes, list.nodes);
    coo.reserve(list.edges.size() * 2);
    for (const auto &[u, v] : list.edges) {
        coo.addEntry(u, v, 1.0f);
        coo.addEntry(v, u, 1.0f);
    }
    coo.coalesce();
    return coo;
}

CooMatrix<float>
assignSymmetricWeights(const CooMatrix<float> &pattern, float wmin,
                       float wmax, Rng &rng)
{
    ALPHA_ASSERT(wmax >= wmin && wmin > 0.0f, "bad weight range");
    // Hash each undirected edge with a per-call salt so that the two
    // directed entries of an edge receive the same weight.
    const std::uint64_t salt = rng.next();
    const auto span = static_cast<std::uint64_t>(wmax - wmin) + 1;

    CooMatrix<float> out(pattern.numRows(), pattern.numCols());
    out.reserve(pattern.nnz());
    for (std::size_t k = 0; k < pattern.nnz(); ++k) {
        const NodeId r = pattern.rowAt(k);
        const NodeId c = pattern.colAt(k);
        const std::uint64_t h = mix64(packEdge(r, c) ^ salt);
        const float w = wmin + static_cast<float>(h % span);
        out.addEntry(r, c, w);
    }
    return out;
}

} // namespace alphapim::sparse
