/**
 * @file
 * Query and result types of the graph query serving subsystem: one
 * tenant's request for a traversal over a resident dataset, and the
 * admission / timing / provenance record the engine hands back. All
 * serving time is *model* time (the simulator's deterministic clock),
 * so latency distributions are exactly reproducible and the serving
 * baselines gate with zero tolerance.
 */

#ifndef ALPHA_PIM_SERVE_QUERY_HH
#define ALPHA_PIM_SERVE_QUERY_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "core/engine.hh"

namespace alphapim::serve
{

/** Algorithm a query requests. */
enum class ServeAlgo
{
    Bfs,  ///< breadth-first search (batchable, 32 lanes)
    Sssp, ///< single-source shortest paths (batchable, 8 lanes)
    Ppr,  ///< personalized PageRank (served solo)
    Cc,   ///< connected components (served solo; source ignored)
};

/** Display name ("bfs", "sssp", "ppr", "cc"). */
const char *serveAlgoName(ServeAlgo algo);

/** Parse an algorithm name; returns false on unknown input. */
bool parseServeAlgo(const std::string &text, ServeAlgo &out);

/** One tenant query against a resident dataset. */
struct ServeQuery
{
    /** Requesting tenant (metrics / fairness attribution). */
    std::string tenant;

    /** Resident dataset name (must have been loaded). */
    std::string dataset;

    /** Requested traversal. */
    ServeAlgo algo = ServeAlgo::Bfs;

    /** Source vertex (ignored by Cc). */
    NodeId source = 0;

    /** Kernel-selection strategy the query runs under. */
    core::MxvStrategy strategy = core::MxvStrategy::Adaptive;

    /** Model-time arrival. */
    Seconds arrival = 0.0;
};

/** Outcome of one query: admission decision, timing, provenance. */
struct ServeResult
{
    /** Engine-assigned id, in submission order. */
    std::uint64_t queryId = 0;

    std::string tenant;
    std::string dataset;
    ServeAlgo algo = ServeAlgo::Bfs;
    NodeId source = 0;

    /** False when admission control bounced the query. */
    bool admitted = false;

    /** Model times: arrival, service start, completion. */
    Seconds arrival = 0.0;
    Seconds start = 0.0;
    Seconds finish = 0.0;

    /** Queueing + service latency (model seconds). */
    Seconds latency() const { return finish - arrival; }

    /** Queries coalesced into the launch that served this one. */
    unsigned batchSize = 0;

    /** Matrix-vector iterations of the (shared) run. */
    unsigned iterations = 0;

    /** True when the traversal reached its fixpoint. */
    bool converged = false;

    /** FNV-1a over this query's output column -- lets tests prove
     * batched results bit-identical to sequential ones through the
     * serving path. */
    std::uint64_t resultChecksum = 0;
};

} // namespace alphapim::serve

#endif // ALPHA_PIM_SERVE_QUERY_HH
