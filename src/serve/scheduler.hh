/**
 * @file
 * Pluggable serving schedulers: the policy that picks which queued
 * queries the next launch serves. FIFO serves strictly one query per
 * launch; the batching scheduler coalesces queued same-dataset,
 * same-algorithm, same-strategy BFS/SSSP queries into one
 * multi-source launch (up to the semiring's lane count), which is
 * the subsystem's throughput win. Schedulers only reorder *within*
 * the admitted queue; admission control stays in the engine.
 */

#ifndef ALPHA_PIM_SERVE_SCHEDULER_HH
#define ALPHA_PIM_SERVE_SCHEDULER_HH

#include <deque>
#include <memory>
#include <vector>

#include "serve/query.hh"

namespace alphapim::serve
{

/** One admitted, not-yet-served query. */
struct PendingQuery
{
    std::uint64_t id = 0;
    ServeQuery query;
};

/** Scheduling policy selector. */
enum class SchedulerKind
{
    Fifo,     ///< one query per launch, arrival order
    Batching, ///< coalesce same-graph BFS/SSSP into one launch
};

/** Display name ("fifo", "batching"). */
const char *schedulerKindName(SchedulerKind kind);

/** Parse a scheduler name; returns false on unknown input. */
bool parseSchedulerKind(const std::string &text, SchedulerKind &out);

/** Queries one launch of `algo` can coalesce (1 = not batchable). */
unsigned batchLimit(ServeAlgo algo);

/**
 * Scheduling policy: removes the next batch from the admitted queue.
 * Every returned batch is non-empty and homogeneous in (dataset,
 * algo, strategy), so the engine can serve it with one resident
 * engine and -- for BFS/SSSP -- one multi-source launch.
 */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /** Policy display name. */
    virtual const char *name() const = 0;

    /** Remove and return the next batch; `queue` must be non-empty. */
    virtual std::vector<PendingQuery>
    next(std::deque<PendingQuery> &queue) = 0;
};

/** Construct the scheduler for `kind`. */
std::unique_ptr<Scheduler> makeScheduler(SchedulerKind kind);

} // namespace alphapim::serve

#endif // ALPHA_PIM_SERVE_SCHEDULER_HH
