#include "scheduler.hh"

#include "apps/multi_source.hh"
#include "common/logging.hh"

namespace alphapim::serve
{

const char *
serveAlgoName(ServeAlgo algo)
{
    switch (algo) {
      case ServeAlgo::Bfs:
        return "bfs";
      case ServeAlgo::Sssp:
        return "sssp";
      case ServeAlgo::Ppr:
        return "ppr";
      case ServeAlgo::Cc:
        return "cc";
    }
    return "?";
}

bool
parseServeAlgo(const std::string &text, ServeAlgo &out)
{
    if (text == "bfs")
        out = ServeAlgo::Bfs;
    else if (text == "sssp")
        out = ServeAlgo::Sssp;
    else if (text == "ppr")
        out = ServeAlgo::Ppr;
    else if (text == "cc")
        out = ServeAlgo::Cc;
    else
        return false;
    return true;
}

const char *
schedulerKindName(SchedulerKind kind)
{
    return kind == SchedulerKind::Fifo ? "fifo" : "batching";
}

bool
parseSchedulerKind(const std::string &text, SchedulerKind &out)
{
    if (text == "fifo")
        out = SchedulerKind::Fifo;
    else if (text == "batching")
        out = SchedulerKind::Batching;
    else
        return false;
    return true;
}

unsigned
batchLimit(ServeAlgo algo)
{
    switch (algo) {
      case ServeAlgo::Bfs:
        return apps::kBfsLanes;
      case ServeAlgo::Sssp:
        return apps::kSsspLanes;
      case ServeAlgo::Ppr:
      case ServeAlgo::Cc:
        return 1;
    }
    return 1;
}

namespace
{

/** Arrival order, one query per launch. */
class FifoScheduler final : public Scheduler
{
  public:
    const char *name() const override { return "fifo"; }

    std::vector<PendingQuery>
    next(std::deque<PendingQuery> &queue) override
    {
        ALPHA_ASSERT(!queue.empty(), "scheduling an empty queue");
        std::vector<PendingQuery> batch;
        batch.push_back(std::move(queue.front()));
        queue.pop_front();
        return batch;
    }
};

/**
 * Head-of-line batching: the oldest query fixes (dataset, algo,
 * strategy); every queued query matching that key joins the launch,
 * up to the algorithm's lane limit. Non-matching queries keep their
 * relative order.
 */
class BatchingScheduler final : public Scheduler
{
  public:
    const char *name() const override { return "batching"; }

    std::vector<PendingQuery>
    next(std::deque<PendingQuery> &queue) override
    {
        ALPHA_ASSERT(!queue.empty(), "scheduling an empty queue");
        const ServeQuery &head = queue.front().query;
        const unsigned limit = batchLimit(head.algo);

        std::vector<PendingQuery> batch;
        batch.push_back(std::move(queue.front()));
        queue.pop_front();
        if (limit <= 1)
            return batch;

        // Copied, not referenced: push_back below may reallocate
        // `batch` and would invalidate a reference into it.
        const ServeQuery key = batch.front().query;
        for (auto it = queue.begin();
             it != queue.end() && batch.size() < limit;) {
            const ServeQuery &q = it->query;
            if (q.dataset == key.dataset && q.algo == key.algo &&
                q.strategy == key.strategy) {
                batch.push_back(std::move(*it));
                it = queue.erase(it);
            } else {
                ++it;
            }
        }
        return batch;
    }
};

} // namespace

std::unique_ptr<Scheduler>
makeScheduler(SchedulerKind kind)
{
    if (kind == SchedulerKind::Fifo)
        return std::make_unique<FifoScheduler>();
    return std::make_unique<BatchingScheduler>();
}

} // namespace alphapim::serve
