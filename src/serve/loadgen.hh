/**
 * @file
 * Deterministic load generation for the serving subsystem: a seeded
 * open-loop generator (Poisson arrivals on the model clock, hand-
 * rolled splitmix64 + inverse-CDF exponential so the stream is
 * identical on every platform and standard library) and a
 * closed-loop driver (N clients, each submitting its next query the
 * instant its previous one completes). Both drive ServeEngine's
 * discrete-event loop, so a (seed, options) pair always produces the
 * same latency distribution -- the property the committed serving
 * baseline gates on.
 */

#ifndef ALPHA_PIM_SERVE_LOADGEN_HH
#define ALPHA_PIM_SERVE_LOADGEN_HH

#include <vector>

#include "serve/serve_engine.hh"

namespace alphapim::serve
{

/** Load-generation options (open and closed loop). */
struct LoadGenOptions
{
    /** Generator seed; same seed, same query stream. */
    std::uint64_t seed = 1;

    /** Dataset every generated query targets. */
    std::string dataset = "graph";

    /** Tenant pool; queries round through "tenant0".."tenantN-1". */
    unsigned tenants = 4;

    /** Algorithm mix sampled uniformly per query. */
    std::vector<ServeAlgo> mix = {ServeAlgo::Bfs};

    /** Strategy every generated query runs under. */
    core::MxvStrategy strategy = core::MxvStrategy::Adaptive;

    /** Open loop: total queries to generate. */
    unsigned queries = 64;

    /** Open loop: mean arrival rate (queries per model second);
     * 0 = every query arrives at t=0 (a burst). */
    double arrivalRate = 0.0;

    /** Closed loop: concurrent clients. */
    unsigned clients = 4;

    /** Closed loop: queries each client issues. */
    unsigned queriesPerClient = 8;
};

/** Deterministic splitmix64 stream. */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform draw in (0, 1]. */
    double
    uniform()
    {
        return (static_cast<double>(next() >> 11) + 1.0) *
               (1.0 / 9007199254740992.0);
    }

  private:
    std::uint64_t state_;
};

/**
 * Generate the open-loop arrival stream: `queries` queries with
 * exponential inter-arrival times at `arrivalRate` (all at t=0 when
 * the rate is 0), sources uniform over [0, numVertices).
 */
std::vector<ServeQuery> openLoopQueries(const LoadGenOptions &options,
                                        NodeId numVertices);

/**
 * Drive the engine with a time-stamped arrival stream: arrivals are
 * admitted in time order (admission control sees the queue as it was
 * at each arrival instant) and the server runs one batch at a time.
 * Results land in engine.results().
 */
void runOpenLoop(ServeEngine &engine,
                 std::vector<ServeQuery> arrivals);

/**
 * Closed-loop driver: `clients` clients each submit their next query
 * the moment their previous one completes. Requires queueCapacity >=
 * clients (a closed loop never overflows the queue). Results land in
 * engine.results().
 */
void runClosedLoop(ServeEngine &engine, const LoadGenOptions &options,
                   NodeId numVertices);

} // namespace alphapim::serve

#endif // ALPHA_PIM_SERVE_LOADGEN_HH
