#include "loadgen.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.hh"

namespace alphapim::serve
{

namespace
{

/** One generated query (arrival stamped by the caller). */
ServeQuery
makeQuery(SplitMix64 &rng, const LoadGenOptions &opt,
          NodeId numVertices, unsigned tenant)
{
    ServeQuery q;
    q.tenant = "tenant" + std::to_string(tenant % opt.tenants);
    q.dataset = opt.dataset;
    q.algo = opt.mix[rng.next() % opt.mix.size()];
    q.source = static_cast<NodeId>(rng.next() % numVertices);
    q.strategy = opt.strategy;
    return q;
}

} // namespace

std::vector<ServeQuery>
openLoopQueries(const LoadGenOptions &options, NodeId numVertices)
{
    ALPHA_ASSERT(!options.mix.empty(),
                 "load generator needs a non-empty algorithm mix");
    ALPHA_ASSERT(numVertices > 0, "empty dataset");
    SplitMix64 rng(options.seed);
    std::vector<ServeQuery> out;
    out.reserve(options.queries);
    double t = 0.0;
    for (unsigned i = 0; i < options.queries; ++i) {
        if (options.arrivalRate > 0.0 && i > 0) {
            // Inverse-CDF exponential inter-arrival.
            t += -std::log(rng.uniform()) / options.arrivalRate;
        }
        ServeQuery q = makeQuery(rng, options, numVertices, i);
        q.arrival = t;
        out.push_back(std::move(q));
    }
    return out;
}

void
runOpenLoop(ServeEngine &engine, std::vector<ServeQuery> arrivals)
{
    std::stable_sort(arrivals.begin(), arrivals.end(),
                     [](const ServeQuery &a, const ServeQuery &b) {
                         return a.arrival < b.arrival;
                     });
    std::size_t i = 0;
    while (i < arrivals.size() || !engine.idle()) {
        if (engine.idle()) {
            // Queue empty: the next arrival (and its ties) is the
            // next event.
            const Seconds t = arrivals[i].arrival;
            while (i < arrivals.size() && arrivals[i].arrival <= t)
                engine.submit(arrivals[i++]);
        }
        engine.step();
        // Queries that arrived during the batch's service window go
        // through admission control against the now-current queue.
        while (i < arrivals.size() &&
               arrivals[i].arrival <= engine.now())
            engine.submit(arrivals[i++]);
    }
}

void
runClosedLoop(ServeEngine &engine, const LoadGenOptions &options,
              NodeId numVertices)
{
    ALPHA_ASSERT(!options.mix.empty(),
                 "load generator needs a non-empty algorithm mix");
    ALPHA_ASSERT(numVertices > 0, "empty dataset");
    SplitMix64 rng(options.seed);
    std::vector<Seconds> ready(options.clients, 0.0);
    std::vector<unsigned> remaining(options.clients,
                                    options.queriesPerClient);
    std::vector<bool> outstanding(options.clients, false);
    std::map<std::uint64_t, unsigned> owner;
    std::size_t consumed = engine.results().size();

    for (;;) {
        for (unsigned c = 0; c < options.clients; ++c) {
            if (outstanding[c] || remaining[c] == 0)
                continue;
            ServeQuery q = makeQuery(rng, options, numVertices, c);
            q.arrival = ready[c];
            std::uint64_t id = 0;
            const bool admitted = engine.submit(q, &id);
            ALPHA_ASSERT(admitted, "closed loop overflowed the "
                                   "admission queue; raise "
                                   "queueCapacity above clients");
            owner[id] = c;
            outstanding[c] = true;
            --remaining[c];
        }
        if (engine.idle())
            break;
        engine.step();
        for (; consumed < engine.results().size(); ++consumed) {
            const ServeResult &r = engine.results()[consumed];
            const auto it = owner.find(r.queryId);
            if (it == owner.end())
                continue;
            outstanding[it->second] = false;
            ready[it->second] = r.finish;
            owner.erase(it);
        }
    }
}

} // namespace alphapim::serve
