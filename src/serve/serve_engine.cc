#include "serve_engine.hh"

#include <algorithm>

#include "apps/reference_algorithms.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "perf/fingerprint.hh"
#include "sparse/stats_cache.hh"
#include "telemetry/metrics.hh"

namespace alphapim::serve
{

namespace
{

/** FNV-1a over a vector's raw element bytes. */
template <typename T>
std::uint64_t
fnvChecksum(const std::vector<T> &v)
{
    std::uint64_t h = 1469598103934665603ull;
    const auto *bytes =
        reinterpret_cast<const unsigned char *>(v.data());
    for (std::size_t i = 0; i < v.size() * sizeof(T); ++i) {
        h ^= bytes[i];
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace

/** Resident per-(algorithm, strategy) engines of one dataset. The
 * maps key on the strategy; engines build lazily on first use and
 * persist, so the matrix load and partition plan amortize across
 * every later query. */
struct ServeEngine::Dataset
{
    sparse::CooMatrix<float> adjacency;
    sparse::CooMatrix<float> normalized; ///< PPR's matrix
    std::uint64_t fingerprint = 0;

    template <typename S>
    using EngineMap =
        std::map<core::MxvStrategy,
                 std::unique_ptr<core::PimEngine<S>>>;

    EngineMap<core::BitsOrAnd> bfs;
    EngineMap<core::MinPlus> ssspSolo;
    EngineMap<apps::SsspBatchSemiring> ssspBatch;
    EngineMap<core::PlusTimes> ppr;
    EngineMap<core::MinSelect> cc;

    /** Fetch-or-build a resident engine. */
    template <typename S>
    static core::PimEngine<S> &
    resident(EngineMap<S> &map, const upmem::UpmemSystem &sys,
             const sparse::CooMatrix<float> &matrix, unsigned dpus,
             core::MxvStrategy strategy)
    {
        auto it = map.find(strategy);
        if (it == map.end()) {
            it = map.emplace(strategy,
                             std::make_unique<core::PimEngine<S>>(
                                 sys, matrix,
                                 dpus == 0 ? sys.numDpus() : dpus,
                                 strategy))
                     .first;
            telemetry::metrics().addCounter("serve.engine_builds");
        }
        return *it->second;
    }
};

ServeEngine::ServeEngine(const upmem::UpmemSystem &sys,
                         ServeOptions options)
    : sys_(sys), options_(options),
      scheduler_(makeScheduler(options.scheduler))
{
    ALPHA_ASSERT(options_.queueCapacity > 0,
                 "serve queue capacity must be positive");
}

ServeEngine::~ServeEngine() = default;

void
ServeEngine::loadDataset(const std::string &name,
                         const sparse::CooMatrix<float> &adjacency)
{
    auto ds = std::make_unique<Dataset>();
    ds->adjacency = adjacency;
    ds->normalized = apps::normalizeColumns(adjacency);
    ds->fingerprint = perf::datasetFingerprint(adjacency);
    // Warm the shared stats cache: every later engine build for this
    // dataset (any strategy) hits instead of recomputing.
    sparse::cachedGraphStats(ds->adjacency);
    datasets_[name] = std::move(ds);
    telemetry::metrics().addCounter("serve.datasets_loaded");
}

bool
ServeEngine::hasDataset(const std::string &name) const
{
    return datasets_.count(name) != 0;
}

ServeEngine::Dataset &
ServeEngine::dataset(const std::string &name)
{
    const auto it = datasets_.find(name);
    ALPHA_ASSERT(it != datasets_.end(),
                 "query names an unloaded dataset");
    return *it->second;
}

const ServeEngine::Dataset &
ServeEngine::dataset(const std::string &name) const
{
    const auto it = datasets_.find(name);
    ALPHA_ASSERT(it != datasets_.end(),
                 "query names an unloaded dataset");
    return *it->second;
}

NodeId
ServeEngine::datasetRows(const std::string &name) const
{
    return dataset(name).adjacency.numRows();
}

std::uint64_t
ServeEngine::datasetFingerprint(const std::string &name) const
{
    return dataset(name).fingerprint;
}

bool
ServeEngine::submit(const ServeQuery &query, std::uint64_t *id)
{
    ALPHA_ASSERT(query.arrival >= lastArrival_,
                 "serve submissions must arrive in time order");
    lastArrival_ = query.arrival;
    ++submitted_;
    if (firstArrival_ < 0.0)
        firstArrival_ = query.arrival;
    if (id)
        *id = nextId_;
    telemetry::metrics().addCounter("serve.queries_submitted");
    if (queue_.size() >= options_.queueCapacity) {
        ++rejected_;
        telemetry::metrics().addCounter("serve.admission_rejects");
        ServeResult res;
        res.queryId = nextId_++;
        res.tenant = query.tenant;
        res.dataset = query.dataset;
        res.algo = query.algo;
        res.source = query.source;
        res.admitted = false;
        res.arrival = query.arrival;
        res.start = query.arrival;
        res.finish = query.arrival;
        results_.push_back(std::move(res));
        return false;
    }
    queue_.push_back({nextId_++, query});
    maxQueueDepth_ =
        std::max<std::uint64_t>(maxQueueDepth_, queue_.size());
    telemetry::metrics().addSample(
        "serve.queue_depth", static_cast<double>(queue_.size()));
    return true;
}

void
ServeEngine::step()
{
    ALPHA_ASSERT(!queue_.empty(), "step() on an idle serve engine");
    serveBatch(scheduler_->next(queue_));
}

void
ServeEngine::drain()
{
    while (!queue_.empty())
        step();
}

void
ServeEngine::serveBatch(const std::vector<PendingQuery> &batch)
{
    const ServeQuery &head = batch.front().query;
    Dataset &ds = dataset(head.dataset);

    // The single server starts once it is free AND every coalesced
    // query has arrived.
    Seconds start = clock_;
    for (const PendingQuery &p : batch)
        start = std::max(start, p.query.arrival);

    core::PhaseTimes service;
    unsigned iterations = 0;
    bool converged = false;
    std::vector<std::uint64_t> checksums(batch.size(), 0);

    switch (head.algo) {
      case ServeAlgo::Bfs: {
        auto &engine = Dataset::resident<core::BitsOrAnd>(
            ds.bfs, sys_, ds.adjacency, options_.dpus,
            head.strategy);
        std::vector<NodeId> sources;
        sources.reserve(batch.size());
        for (const PendingQuery &p : batch)
            sources.push_back(p.query.source);
        const auto r = apps::multiBfsWithEngine(
            sys_, engine, sources, options_.app);
        service = r.total;
        iterations = static_cast<unsigned>(r.iterations.size());
        converged = r.converged;
        for (std::size_t i = 0; i < batch.size(); ++i)
            checksums[i] = fnvChecksum(r.levels[i]);
        break;
      }
      case ServeAlgo::Sssp: {
        if (batch.size() == 1) {
            // Solo SSSP takes the plain MinPlus engine: under FIFO
            // (or an empty queue) a single query never pays the
            // lane-widened arithmetic.
            auto &engine = Dataset::resident<core::MinPlus>(
                ds.ssspSolo, sys_, ds.adjacency, options_.dpus,
                head.strategy);
            const auto r = apps::ssspWithEngine(
                sys_, engine, head.source, options_.app);
            service = r.total;
            iterations = static_cast<unsigned>(r.iterations.size());
            converged = r.converged;
            checksums[0] = fnvChecksum(r.distances);
        } else {
            auto &engine =
                Dataset::resident<apps::SsspBatchSemiring>(
                    ds.ssspBatch, sys_, ds.adjacency, options_.dpus,
                    head.strategy);
            std::vector<NodeId> sources;
            sources.reserve(batch.size());
            for (const PendingQuery &p : batch)
                sources.push_back(p.query.source);
            const auto r = apps::multiSsspWithEngine(
                sys_, engine, sources, options_.app);
            service = r.total;
            iterations = static_cast<unsigned>(r.iterations.size());
            converged = r.converged;
            for (std::size_t i = 0; i < batch.size(); ++i)
                checksums[i] = fnvChecksum(r.distances[i]);
        }
        break;
      }
      case ServeAlgo::Ppr: {
        auto &engine = Dataset::resident<core::PlusTimes>(
            ds.ppr, sys_, ds.normalized, options_.dpus,
            head.strategy);
        const auto r = apps::pprWithEngine(sys_, engine, head.source,
                                           options_.app);
        service = r.total;
        iterations = static_cast<unsigned>(r.iterations.size());
        converged = r.converged;
        checksums[0] = fnvChecksum(r.ranks);
        break;
      }
      case ServeAlgo::Cc: {
        auto &engine = Dataset::resident<core::MinSelect>(
            ds.cc, sys_, ds.adjacency, options_.dpus,
            head.strategy);
        const auto r =
            apps::ccWithEngine(sys_, engine, options_.app);
        service = r.total;
        iterations = static_cast<unsigned>(r.iterations.size());
        converged = r.converged;
        checksums[0] = fnvChecksum(r.levels);
        break;
      }
    }

    clock_ = start + service.total();
    phaseTotals_ += service;
    servedIterations_ += iterations;
    ++batches_;
    batchedQueries_ += batch.size();
    maxBatchSize_ =
        std::max<std::uint64_t>(maxBatchSize_, batch.size());
    telemetry::metrics().addCounter("serve.batches");
    telemetry::metrics().addSample(
        "serve.batch_size", static_cast<double>(batch.size()));

    for (std::size_t i = 0; i < batch.size(); ++i) {
        const PendingQuery &p = batch[i];
        ServeResult res;
        res.queryId = p.id;
        res.tenant = p.query.tenant;
        res.dataset = p.query.dataset;
        res.algo = p.query.algo;
        res.source = p.query.source;
        res.admitted = true;
        res.arrival = p.query.arrival;
        res.start = start;
        res.finish = clock_;
        res.batchSize = static_cast<unsigned>(batch.size());
        res.iterations = iterations;
        res.converged = converged;
        res.resultChecksum = checksums[i];
        latencies_.push_back(res.latency());
        telemetry::metrics().addSample("serve.latency_seconds",
                                       res.latency());
        results_.push_back(std::move(res));
    }
}

perf::ServeSummary
ServeEngine::summary() const
{
    perf::ServeSummary s;
    s.submitted = submitted_;
    s.rejected = rejected_;
    s.admitted = submitted_ - rejected_;
    s.completed = latencies_.size();
    s.batches = batches_;
    s.meanBatchSize =
        batches_ > 0 ? static_cast<double>(batchedQueries_) /
                           static_cast<double>(batches_)
                     : 0.0;
    s.maxBatchSize = maxBatchSize_;
    s.maxQueueDepth = maxQueueDepth_;
    if (!latencies_.empty()) {
        s.latencyP50 = percentile(latencies_, 50.0);
        s.latencyP95 = percentile(latencies_, 95.0);
        s.latencyP99 = percentile(latencies_, 99.0);
        s.latencyP999 = percentile(latencies_, 99.9);
        double sum = 0.0;
        for (double l : latencies_)
            sum += l;
        s.latencyMean = sum / static_cast<double>(latencies_.size());
    }
    if (firstArrival_ >= 0.0 && clock_ > firstArrival_) {
        s.makespanSeconds = clock_ - firstArrival_;
        s.queriesPerSec =
            static_cast<double>(s.completed) / s.makespanSeconds;
    }
    return s;
}

} // namespace alphapim::serve
