/**
 * @file
 * The in-process graph query serving engine: datasets are loaded
 * once and stay resident (partition plans and graph statistics
 * cached, keyed by dataset fingerprint), tenant queries flow through
 * a bounded admission-controlled queue, and a pluggable scheduler
 * decides which queued queries each launch serves. The batching
 * scheduler coalesces same-graph BFS/SSSP queries into one
 * multi-source launch over the lane semirings (apps/multi_source.hh),
 * whose per-lane results are bit-identical to sequential runs.
 *
 * Serving is a deterministic discrete-event simulation on the model
 * clock: a single server processes one batch at a time, service time
 * is the launch's modeled Load+Kernel+Retrieve+Merge seconds, and
 * arrivals come time-stamped from the load generator. Latency
 * distributions are therefore exactly reproducible -- the serving
 * baseline gates with zero tolerance, like every other model-time
 * number in this repo.
 */

#ifndef ALPHA_PIM_SERVE_SERVE_ENGINE_HH
#define ALPHA_PIM_SERVE_SERVE_ENGINE_HH

#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/multi_source.hh"
#include "perf/record.hh"
#include "serve/scheduler.hh"
#include "sparse/coo.hh"

namespace alphapim::serve
{

/** Serving configuration. */
struct ServeOptions
{
    /** DPUs each resident engine uses; 0 = all the system has. */
    unsigned dpus = 0;

    /** Admitted-queue bound; arrivals past it are rejected. */
    unsigned queueCapacity = 64;

    /** Scheduling policy. */
    SchedulerKind scheduler = SchedulerKind::Batching;

    /** Per-query algorithm knobs (PPR damping etc.); the strategy
     * and switchThreshold fields are ignored -- strategy is
     * per-query and the threshold comes from the cached stats. */
    apps::AppConfig app;
};

/** In-process serving engine over resident partitioned graphs. */
class ServeEngine
{
  public:
    ServeEngine(const upmem::UpmemSystem &sys, ServeOptions options);
    ~ServeEngine();

    /**
     * Register a dataset under `name`: fingerprints it, warms the
     * shared graph-statistics cache, and precomputes the column-
     * normalized matrix PPR engines run over. Kernel engines (and
     * their partition plans) materialize lazily per (dataset,
     * algorithm, strategy) on first use and stay resident.
     */
    void loadDataset(const std::string &name,
                     const sparse::CooMatrix<float> &adjacency);

    /** True when `name` has been loaded. */
    bool hasDataset(const std::string &name) const;

    /** Vertex count of a loaded dataset. */
    NodeId datasetRows(const std::string &name) const;

    /** Fingerprint of a loaded dataset (perf::datasetFingerprint). */
    std::uint64_t datasetFingerprint(const std::string &name) const;

    /**
     * Submit one query at its arrival time (must be >= every earlier
     * submission's arrival). Returns true when admitted; a rejected
     * query produces an admitted=false result in results() and
     * counts toward serve.admission_rejects. `id` (optional)
     * receives the query's engine-assigned id either way.
     */
    bool submit(const ServeQuery &query, std::uint64_t *id = nullptr);

    /** True when no admitted queries await service. */
    bool idle() const { return queue_.empty(); }

    /** Serve one scheduler-selected batch (engine must not be idle);
     * completed results append to results(). */
    void step();

    /** Drain the queue: step() until idle. */
    void drain();

    /** Completed (and rejected) results, in completion order. */
    const std::vector<ServeResult> &results() const
    {
        return results_;
    }

    /** The model clock: completion time of the last served batch. */
    Seconds now() const { return clock_; }

    /** Load/Kernel/Retrieve/Merge model time summed over every
     * served batch (the run record's "times" block). */
    const core::PhaseTimes &phaseTotals() const
    {
        return phaseTotals_;
    }

    /** Algorithm iterations summed over every served batch. */
    std::uint64_t servedIterations() const
    {
        return servedIterations_;
    }

    /** Queries currently queued. */
    std::size_t queueDepth() const { return queue_.size(); }

    /** The active scheduling policy's name. */
    const char *schedulerName() const { return scheduler_->name(); }

    /** Condense this run's serving outcomes (admission counts, batch
     * size distribution, model-time latency percentiles, throughput)
     * into the schema-v6 record block. */
    perf::ServeSummary summary() const;

  private:
    struct Dataset;
    struct Engines;

    Dataset &dataset(const std::string &name);
    const Dataset &dataset(const std::string &name) const;
    void serveBatch(const std::vector<PendingQuery> &batch);

    const upmem::UpmemSystem &sys_;
    ServeOptions options_;
    std::unique_ptr<Scheduler> scheduler_;
    std::map<std::string, std::unique_ptr<Dataset>> datasets_;
    std::deque<PendingQuery> queue_;
    std::vector<ServeResult> results_;
    Seconds clock_ = 0.0;
    core::PhaseTimes phaseTotals_;
    std::uint64_t servedIterations_ = 0;
    std::uint64_t nextId_ = 0;
    std::uint64_t submitted_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t batches_ = 0;
    std::uint64_t batchedQueries_ = 0;
    std::uint64_t maxBatchSize_ = 0;
    std::uint64_t maxQueueDepth_ = 0;
    double firstArrival_ = -1.0;
    double lastArrival_ = -std::numeric_limits<double>::infinity();
    std::vector<double> latencies_;
};

} // namespace alphapim::serve

#endif // ALPHA_PIM_SERVE_SERVE_ENGINE_HH
