#include "reference_algorithms.hh"

#include <cmath>
#include <limits>
#include <queue>

#include "common/logging.hh"
#include "sparse/csr.hh"

namespace alphapim::apps
{

std::vector<std::uint32_t>
referenceBfs(const sparse::CooMatrix<float> &adjacency, NodeId source)
{
    const auto csr = sparse::CsrMatrix<float>::fromCoo(adjacency);
    ALPHA_ASSERT(source < csr.numRows(), "source out of range");
    std::vector<std::uint32_t> levels(csr.numRows(), invalidNode);
    std::queue<NodeId> frontier;
    levels[source] = 0;
    frontier.push(source);
    while (!frontier.empty()) {
        const NodeId u = frontier.front();
        frontier.pop();
        for (EdgeId e = csr.rowBegin(u); e < csr.rowEnd(u); ++e) {
            const NodeId v = csr.colIndices()[e];
            if (levels[v] == invalidNode) {
                levels[v] = levels[u] + 1;
                frontier.push(v);
            }
        }
    }
    return levels;
}

std::vector<float>
referenceSssp(const sparse::CooMatrix<float> &weighted, NodeId source)
{
    const auto csr = sparse::CsrMatrix<float>::fromCoo(weighted);
    ALPHA_ASSERT(source < csr.numRows(), "source out of range");
    const float inf = std::numeric_limits<float>::infinity();
    std::vector<float> dist(csr.numRows(), inf);
    dist[source] = 0.0f;

    // Bellman-Ford with a frontier: matches the linear-algebraic
    // iteration structure of the PIM implementation exactly.
    std::vector<NodeId> frontier = {source};
    std::vector<bool> in_next(csr.numRows(), false);
    for (NodeId round = 0;
         round < csr.numRows() && !frontier.empty(); ++round) {
        std::vector<NodeId> next;
        for (NodeId u : frontier) {
            for (EdgeId e = csr.rowBegin(u); e < csr.rowEnd(u); ++e) {
                const NodeId v = csr.colIndices()[e];
                const float cand = dist[u] + csr.values()[e];
                if (cand < dist[v]) {
                    dist[v] = cand;
                    if (!in_next[v]) {
                        in_next[v] = true;
                        next.push_back(v);
                    }
                }
            }
        }
        for (NodeId v : next)
            in_next[v] = false;
        frontier = std::move(next);
    }
    return dist;
}

sparse::CooMatrix<float>
normalizeColumns(const sparse::CooMatrix<float> &adjacency)
{
    std::vector<EdgeId> col_degree(adjacency.numCols(), 0);
    for (std::size_t k = 0; k < adjacency.nnz(); ++k)
        ++col_degree[adjacency.colAt(k)];

    sparse::CooMatrix<float> normalized(adjacency.numRows(),
                                        adjacency.numCols());
    normalized.reserve(adjacency.nnz());
    for (std::size_t k = 0; k < adjacency.nnz(); ++k) {
        const NodeId c = adjacency.colAt(k);
        normalized.addEntry(
            adjacency.rowAt(k), c,
            1.0f / static_cast<float>(col_degree[c]));
    }
    return normalized;
}

std::vector<std::uint32_t>
referenceComponents(const sparse::CooMatrix<float> &adjacency)
{
    const auto csr = sparse::CsrMatrix<float>::fromCoo(adjacency);
    const NodeId n = csr.numRows();
    std::vector<std::uint32_t> labels(n, invalidNode);
    std::vector<NodeId> stack;
    for (NodeId root = 0; root < n; ++root) {
        if (labels[root] != invalidNode)
            continue;
        // Roots are visited in ascending order, so the root id is
        // the smallest vertex id in its component.
        labels[root] = root;
        stack.push_back(root);
        while (!stack.empty()) {
            const NodeId u = stack.back();
            stack.pop_back();
            for (EdgeId e = csr.rowBegin(u); e < csr.rowEnd(u);
                 ++e) {
                const NodeId v = csr.colIndices()[e];
                if (labels[v] == invalidNode) {
                    labels[v] = root;
                    stack.push_back(v);
                }
            }
        }
    }
    return labels;
}

std::vector<float>
referencePpr(const sparse::CooMatrix<float> &adjacency, NodeId source,
             double alpha, unsigned iterations)
{
    ALPHA_ASSERT(source < adjacency.numRows(), "source out of range");
    const auto a_norm = normalizeColumns(adjacency);
    const NodeId n = adjacency.numRows();

    std::vector<float> x(n, 0.0f);
    x[source] = 1.0f;
    std::vector<float> y(n);
    const auto restart = static_cast<float>(1.0 - alpha);
    for (unsigned it = 0; it < iterations; ++it) {
        std::fill(y.begin(), y.end(), 0.0f);
        for (std::size_t k = 0; k < a_norm.nnz(); ++k) {
            y[a_norm.rowAt(k)] +=
                a_norm.valueAt(k) * x[a_norm.colAt(k)];
        }
        for (NodeId i = 0; i < n; ++i)
            y[i] = static_cast<float>(alpha) * y[i];
        y[source] += restart;
        x = y;
    }
    return x;
}

} // namespace alphapim::apps
