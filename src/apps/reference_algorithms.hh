/**
 * @file
 * Host-side reference implementations of the three graph
 * applications. They serve as correctness oracles for the PIM
 * implementations and as the functional core of the CPU baseline.
 */

#ifndef ALPHA_PIM_APPS_REFERENCE_ALGORITHMS_HH
#define ALPHA_PIM_APPS_REFERENCE_ALGORITHMS_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "sparse/coo.hh"

namespace alphapim::apps
{

/** BFS levels from `source`; invalidNode marks unreachable vertices. */
std::vector<std::uint32_t> referenceBfs(
    const sparse::CooMatrix<float> &adjacency, NodeId source);

/** Single-source shortest path distances (Bellman-Ford-style);
 * +inf marks unreachable vertices. */
std::vector<float> referenceSssp(
    const sparse::CooMatrix<float> &weighted, NodeId source);

/**
 * Personalized PageRank by power iteration:
 *   x <- alpha * A_norm x + (1 - alpha) e_source
 * where A_norm is the column-degree-normalized adjacency.
 *
 * @param iterations fixed iteration count
 */
std::vector<float> referencePpr(
    const sparse::CooMatrix<float> &adjacency, NodeId source,
    double alpha, unsigned iterations);

/** Column-degree-normalized copy of an adjacency pattern (the PPR
 * transition matrix). Zero-degree columns stay zero. */
sparse::CooMatrix<float> normalizeColumns(
    const sparse::CooMatrix<float> &adjacency);

/** Connected-component labels: every vertex is labelled with the
 * smallest vertex id in its component. */
std::vector<std::uint32_t> referenceComponents(
    const sparse::CooMatrix<float> &adjacency);

} // namespace alphapim::apps

#endif // ALPHA_PIM_APPS_REFERENCE_ALGORITHMS_HH
