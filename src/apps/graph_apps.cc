#include "graph_apps.hh"

#include <cmath>
#include <limits>

#include "apps/app_trace.hh"
#include "apps/reference_algorithms.hh"
#include "common/logging.hh"
#include "telemetry/telemetry.hh"

namespace alphapim::apps
{

using detail::recordConvergence;
using detail::recordIteration;
using detail::resolveDpus;
using detail::resolveMaxIters;

AppResult
bfsWithEngine(const upmem::UpmemSystem &sys,
              core::PimEngine<core::BoolOrAnd> &engine,
              NodeId source, const AppConfig &config)
{
    const NodeId n = engine.numRows();
    ALPHA_ASSERT(source < n, "BFS source out of range");

    AppResult result;
    result.levels.assign(n, invalidNode);
    result.levels[source] = 0;
    std::vector<bool> visited(n, false);
    visited[source] = true;

    sparse::SparseVector<std::uint32_t> frontier(n);
    frontier.append(source, 1u);

    const unsigned max_iters = resolveMaxIters(config, n);
    const Bytes vec_bytes = static_cast<Bytes>(n) * sizeof(float);
    for (unsigned iter = 1; iter <= max_iters; ++iter) {
        IterationLog log;
        log.iteration = iter;
        log.inputDensity = frontier.density();
        const Seconds it_start = telemetry::tracer().now();

        auto r = engine.multiply(frontier);
        // Mask out visited vertices and build the next frontier --
        // host work accounted in the Merge phase together with the
        // convergence check.
        const Seconds host_extra = sys.host().convergenceTime(vec_bytes);
        r.times.merge += host_extra;
        sparse::SparseVector<std::uint32_t> next(n);
        for (NodeId v = 0; v < n; ++v) {
            if (r.y[v] != 0 && !visited[v]) {
                visited[v] = true;
                result.levels[v] = iter;
                next.append(v, 1u);
            }
        }

        log.outputDensity = next.density();
        log.usedSpmv = engine.lastUsedSpmv();
        log.times = r.times;
        log.semiringOps = r.semiringOps;
        result.addIteration(log, r.profile);
        recordIteration("bfs", log, it_start, host_extra);

        frontier = std::move(next);
        if (frontier.nnz() == 0) {
            result.converged = true;
            break;
        }
    }
    recordConvergence("bfs", result.converged);
    return result;
}

AppResult
runBfs(const upmem::UpmemSystem &sys,
       const sparse::CooMatrix<float> &adjacency, NodeId source,
       const AppConfig &config)
{
    core::PimEngine<core::BoolOrAnd> engine(
        sys, adjacency, resolveDpus(sys, config), config.strategy,
        config.switchThreshold);
    return bfsWithEngine(sys, engine, source, config);
}

AppResult
ssspWithEngine(const upmem::UpmemSystem &sys,
               core::PimEngine<core::MinPlus> &engine, NodeId source,
               const AppConfig &config)
{
    const NodeId n = engine.numRows();
    ALPHA_ASSERT(source < n, "SSSP source out of range");

    const float inf = std::numeric_limits<float>::infinity();
    AppResult result;
    result.distances.assign(n, inf);
    result.distances[source] = 0.0f;

    sparse::SparseVector<float> frontier(n);
    frontier.append(source, 0.0f);

    const unsigned max_iters = resolveMaxIters(config, n);
    const Bytes vec_bytes = static_cast<Bytes>(n) * sizeof(float);
    for (unsigned iter = 1; iter <= max_iters; ++iter) {
        IterationLog log;
        log.iteration = iter;
        log.inputDensity = frontier.density();
        const Seconds it_start = telemetry::tracer().now();

        auto r = engine.multiply(frontier);
        const Seconds host_extra = sys.host().convergenceTime(vec_bytes);
        r.times.merge += host_extra;

        // Relax: keep vertices whose tentative distance improved.
        sparse::SparseVector<float> next(n);
        for (NodeId v = 0; v < n; ++v) {
            if (r.y[v] < result.distances[v]) {
                result.distances[v] = r.y[v];
                next.append(v, r.y[v]);
            }
        }

        log.outputDensity = next.density();
        log.usedSpmv = engine.lastUsedSpmv();
        log.times = r.times;
        log.semiringOps = r.semiringOps;
        result.addIteration(log, r.profile);
        recordIteration("sssp", log, it_start, host_extra);

        frontier = std::move(next);
        if (frontier.nnz() == 0) {
            result.converged = true;
            break;
        }
    }
    recordConvergence("sssp", result.converged);
    return result;
}

AppResult
runSssp(const upmem::UpmemSystem &sys,
        const sparse::CooMatrix<float> &weighted, NodeId source,
        const AppConfig &config)
{
    core::PimEngine<core::MinPlus> engine(
        sys, weighted, resolveDpus(sys, config), config.strategy,
        config.switchThreshold);
    return ssspWithEngine(sys, engine, source, config);
}

AppResult
pprWithEngine(const upmem::UpmemSystem &sys,
              core::PimEngine<core::PlusTimes> &engine, NodeId source,
              const AppConfig &config)
{
    const NodeId n = engine.numRows();
    ALPHA_ASSERT(source < n, "PPR source out of range");

    AppResult result;
    result.ranks.assign(n, 0.0f);
    result.ranks[source] = 1.0f;

    sparse::SparseVector<float> x(n);
    x.append(source, 1.0f);

    const auto alpha = static_cast<float>(config.pprAlpha);
    const float restart = 1.0f - alpha;
    const Bytes vec_bytes = static_cast<Bytes>(n) * sizeof(float);
    for (unsigned iter = 1; iter <= config.pprIterations; ++iter) {
        IterationLog log;
        log.iteration = iter;
        log.inputDensity = x.density();
        const Seconds it_start = telemetry::tracer().now();

        auto r = engine.multiply(x);
        // Damping + restart + delta check on the host (Merge phase).
        const Seconds host_extra =
            sys.host().mergeTime(2 * vec_bytes, n);
        r.times.merge += host_extra;

        double delta = 0.0;
        sparse::SparseVector<float> next(n);
        for (NodeId v = 0; v < n; ++v) {
            float rank = alpha * r.y[v];
            if (v == source)
                rank += restart;
            delta += std::abs(rank - result.ranks[v]);
            result.ranks[v] = rank;
            if (rank != 0.0f)
                next.append(v, rank);
        }

        log.outputDensity = next.density();
        log.usedSpmv = engine.lastUsedSpmv();
        log.times = r.times;
        log.semiringOps = r.semiringOps;
        result.addIteration(log, r.profile);
        recordIteration("ppr", log, it_start, host_extra);

        x = std::move(next);
        if (config.pprTolerance > 0.0 &&
            delta < config.pprTolerance) {
            result.converged = true;
            break;
        }
    }
    if (!result.converged && config.pprTolerance == 0.0)
        result.converged = true; // fixed-iteration mode
    recordConvergence("ppr", result.converged);
    return result;
}

AppResult
runPpr(const upmem::UpmemSystem &sys,
       const sparse::CooMatrix<float> &adjacency, NodeId source,
       const AppConfig &config)
{
    const auto a_norm = normalizeColumns(adjacency);
    core::PimEngine<core::PlusTimes> engine(
        sys, a_norm, resolveDpus(sys, config), config.strategy,
        config.switchThreshold);
    return pprWithEngine(sys, engine, source, config);
}

AppResult
ccWithEngine(const upmem::UpmemSystem &sys,
             core::PimEngine<core::MinSelect> &engine,
             const AppConfig &config)
{
    const NodeId n = engine.numRows();

    AppResult result;
    result.levels.resize(n);
    for (NodeId v = 0; v < n; ++v)
        result.levels[v] = v;

    // Frontier: vertices whose label changed last iteration --
    // initially everyone, carrying its own id as the label.
    sparse::SparseVector<std::uint32_t> frontier(n);
    for (NodeId v = 0; v < n; ++v)
        frontier.append(v, v);

    const unsigned max_iters = resolveMaxIters(config, n);
    const Bytes vec_bytes = static_cast<Bytes>(n) * sizeof(float);
    for (unsigned iter = 1; iter <= max_iters; ++iter) {
        IterationLog log;
        log.iteration = iter;
        log.inputDensity = frontier.density();
        const Seconds it_start = telemetry::tracer().now();

        auto r = engine.multiply(frontier);
        const Seconds host_extra = sys.host().convergenceTime(vec_bytes);
        r.times.merge += host_extra;

        sparse::SparseVector<std::uint32_t> next(n);
        for (NodeId v = 0; v < n; ++v) {
            if (r.y[v] < result.levels[v]) {
                result.levels[v] = r.y[v];
                next.append(v, r.y[v]);
            }
        }

        log.outputDensity = next.density();
        log.usedSpmv = engine.lastUsedSpmv();
        log.times = r.times;
        log.semiringOps = r.semiringOps;
        result.addIteration(log, r.profile);
        recordIteration("cc", log, it_start, host_extra);

        frontier = std::move(next);
        if (frontier.nnz() == 0) {
            result.converged = true;
            break;
        }
    }
    recordConvergence("cc", result.converged);
    return result;
}

AppResult
runConnectedComponents(const upmem::UpmemSystem &sys,
                       const sparse::CooMatrix<float> &adjacency,
                       const AppConfig &config)
{
    core::PimEngine<core::MinSelect> engine(
        sys, adjacency, resolveDpus(sys, config), config.strategy,
        config.switchThreshold);
    return ccWithEngine(sys, engine, config);
}

} // namespace alphapim::apps
