/**
 * @file
 * Internal helpers shared by the graph-application drivers: config
 * resolution and per-iteration telemetry emission. Not part of the
 * public apps API.
 */

#ifndef ALPHA_PIM_APPS_APP_TRACE_HH
#define ALPHA_PIM_APPS_APP_TRACE_HH

#include <string>

#include "apps/app_result.hh"
#include "apps/graph_apps.hh"
#include "telemetry/telemetry.hh"

namespace alphapim::apps::detail
{

/** Resolve the DPU count: 0 means "all the system has". */
inline unsigned
resolveDpus(const upmem::UpmemSystem &sys, const AppConfig &cfg)
{
    return cfg.dpus == 0 ? sys.numDpus() : cfg.dpus;
}

/** Iteration cap: explicit, or the vertex count. */
inline unsigned
resolveMaxIters(const AppConfig &cfg, NodeId n)
{
    return cfg.maxIterations == 0 ? n : cfg.maxIterations;
}

/**
 * Record one application iteration with the telemetry subsystem: an
 * "<app>.iteration" span on the engine track enclosing the launch's
 * phase spans, plus the iteration counter. `host_merge_extra` is the
 * host-side frontier/convergence time the app charged to the Merge
 * phase after the launch; the model clock advances past it so the
 * next iteration starts where this one ends.
 */
inline void
recordIteration(const char *app, const IterationLog &log,
                Seconds it_start, Seconds host_merge_extra)
{
    auto &t = telemetry::tracer();
    if (t.enabled()) {
        t.advance(host_merge_extra);
        t.completeEvent(
            telemetry::engineTrack,
            std::string(app) + ".iteration", "app", it_start,
            t.now() - it_start,
            {telemetry::arg(
                 "iteration",
                 static_cast<std::uint64_t>(log.iteration)),
             telemetry::arg("input_density", log.inputDensity),
             telemetry::arg("output_density", log.outputDensity),
             telemetry::arg("kernel",
                            log.usedSpmv ? "spmv" : "spmspv")});
    }
    telemetry::metrics().addCounter("engine.iterations");
}

/** Emit the convergence instant + counter when a run converged. */
inline void
recordConvergence(const char *app, bool converged)
{
    if (!converged)
        return;
    auto &t = telemetry::tracer();
    if (t.enabled()) {
        t.instantEvent(telemetry::engineTrack,
                       std::string(app) + ".converged", "app",
                       t.now());
    }
    telemetry::metrics().addCounter("app.converged_runs");
}

} // namespace alphapim::apps::detail

#endif // ALPHA_PIM_APPS_APP_TRACE_HH
