/**
 * @file
 * The three linear-algebraic graph applications of the paper --
 * BFS, SSSP, and Personalized PageRank -- implemented as iterative
 * matrix-vector products on the simulated UPMEM system, with
 * per-iteration kernel selection via PimEngine.
 *
 * Semirings (Table 1): BFS (or, and); SSSP (min, +); PPR (+, x).
 * Host-side frontier/mask updates and convergence checks are charged
 * to the Merge phase, following the paper's accounting.
 */

#ifndef ALPHA_PIM_APPS_GRAPH_APPS_HH
#define ALPHA_PIM_APPS_GRAPH_APPS_HH

#include "apps/app_result.hh"
#include "core/engine.hh"

namespace alphapim::apps
{

/** Options shared by the three applications. */
struct AppConfig
{
    /** Kernel selection strategy. */
    core::MxvStrategy strategy = core::MxvStrategy::Adaptive;

    /** Override of the switch density; negative = decision tree. */
    double switchThreshold = -1.0;

    /** DPUs to use; 0 = every DPU the system has. */
    unsigned dpus = 0;

    /** Iteration cap; 0 = algorithm default (N for BFS/SSSP). */
    unsigned maxIterations = 0;

    /** PPR damping factor. */
    double pprAlpha = 0.85;

    /** PPR iteration count (power iteration). */
    unsigned pprIterations = 20;

    /** PPR early-exit L1 tolerance; 0 disables early exit. */
    double pprTolerance = 1e-4;
};

/**
 * Breadth-first search from `source` over the boolean semiring.
 * The result's `levels` holds per-vertex BFS depth.
 */
AppResult runBfs(const upmem::UpmemSystem &sys,
                 const sparse::CooMatrix<float> &adjacency,
                 NodeId source, const AppConfig &config = {});

/**
 * BFS against a caller-owned engine. The serving subsystem keeps
 * engines resident (matrix load amortized across queries) and calls
 * these `*WithEngine` variants; the `run*` functions above construct
 * a fresh engine and delegate. Only `strategy`-independent fields of
 * `config` apply (the engine already fixed strategy and threshold).
 */
AppResult bfsWithEngine(const upmem::UpmemSystem &sys,
                        core::PimEngine<core::BoolOrAnd> &engine,
                        NodeId source, const AppConfig &config = {});

/**
 * Single-source shortest paths over the (min, +) semiring on a
 * weighted adjacency. The result's `distances` holds per-vertex
 * shortest distances.
 */
AppResult runSssp(const upmem::UpmemSystem &sys,
                  const sparse::CooMatrix<float> &weighted,
                  NodeId source, const AppConfig &config = {});

/** SSSP against a caller-owned engine over the weighted matrix. */
AppResult ssspWithEngine(const upmem::UpmemSystem &sys,
                         core::PimEngine<core::MinPlus> &engine,
                         NodeId source, const AppConfig &config = {});

/**
 * Personalized PageRank over the (+, x) semiring on the column-
 * normalized adjacency. The result's `ranks` holds the PPR vector.
 */
AppResult runPpr(const upmem::UpmemSystem &sys,
                 const sparse::CooMatrix<float> &adjacency,
                 NodeId source, const AppConfig &config = {});

/** PPR against a caller-owned engine. The engine must have been
 * built over the column-normalized adjacency (normalizeColumns). */
AppResult pprWithEngine(const upmem::UpmemSystem &sys,
                        core::PimEngine<core::PlusTimes> &engine,
                        NodeId source, const AppConfig &config = {});

/**
 * Connected components by min-label propagation over the
 * (min, select) algebra -- an extension application demonstrating
 * that the framework generalizes beyond the paper's three
 * algorithms. The result's `levels` field holds the component label
 * (the smallest vertex id in each component).
 */
AppResult runConnectedComponents(
    const upmem::UpmemSystem &sys,
    const sparse::CooMatrix<float> &adjacency,
    const AppConfig &config = {});

/** Connected components against a caller-owned engine. */
AppResult ccWithEngine(const upmem::UpmemSystem &sys,
                       core::PimEngine<core::MinSelect> &engine,
                       const AppConfig &config = {});

} // namespace alphapim::apps

#endif // ALPHA_PIM_APPS_GRAPH_APPS_HH
