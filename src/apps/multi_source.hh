/**
 * @file
 * Batched multi-source BFS and SSSP: several traversals from
 * different sources share every matrix sweep. BFS packs up to 32
 * concurrent frontiers into the bits of one 32-bit word (BitsOrAnd
 * semiring: one Logic op per matrix entry no matter how many lanes
 * ride in it); SSSP carries up to kSsspLanes float distances per
 * vertex (MinPlusLanes: ops scale with lanes, but transfers,
 * traversal, and per-entry bookkeeping are shared).
 *
 * Every lane's result is bit-identical to the corresponding
 * single-source run: unused lanes carry the additive identity, or/min
 * are exact and order-independent, and the float additions pair the
 * exact operands the sequential run pairs. The ctest gate
 * tests/apps/test_multi_source.cc proves this across all four kernel
 * strategies. This module is the batching substrate of the serving
 * subsystem (src/serve/).
 */

#ifndef ALPHA_PIM_APPS_MULTI_SOURCE_HH
#define ALPHA_PIM_APPS_MULTI_SOURCE_HH

#include "apps/app_result.hh"
#include "apps/graph_apps.hh"

namespace alphapim::apps
{

/** BFS lanes one batched launch carries (bits of a u32 mask). */
inline constexpr unsigned kBfsLanes = 32;

/** SSSP lanes one batched launch carries (floats per value). */
inline constexpr unsigned kSsspLanes = 8;

/** The batched-SSSP semiring the serving subsystem instantiates. */
using SsspBatchSemiring = core::MinPlusLanes<kSsspLanes>;

/**
 * Outcome of one batched multi-source run. Per-source output columns
 * plus the shared per-iteration phase records (one launch per
 * iteration, regardless of batch width).
 */
struct MultiSourceResult
{
    /** The batch's sources, in request order. */
    std::vector<NodeId> sources;

    /** BFS: levels[s][v] = depth of v from sources[s]. */
    std::vector<std::vector<std::uint32_t>> levels;

    /** SSSP: distances[s][v] = distance of v from sources[s]. */
    std::vector<std::vector<float>> distances;

    /** Per-iteration records in execution order (shared launches). */
    std::vector<IterationLog> iterations;

    /** Sum of all per-iteration phase times. */
    core::PhaseTimes total;

    /** Aggregated DPU profile across all launches. */
    upmem::LaunchProfile profile;

    /** Total semiring operations across iterations. */
    std::uint64_t totalOps = 0;

    /** True when every lane reached its fixpoint. */
    bool converged = false;

    /** SpMSpV / SpMV launch counts. */
    unsigned spmspvLaunches = 0;
    unsigned spmvLaunches = 0;

    /** Fold one iteration's record into the totals. */
    void
    addIteration(const IterationLog &log,
                 const upmem::LaunchProfile &launch)
    {
        iterations.push_back(log);
        total += log.times;
        totalOps += log.semiringOps;
        profile.add(launch);
        if (log.usedSpmv)
            ++spmvLaunches;
        else
            ++spmspvLaunches;
    }
};

/**
 * Batched BFS from up to kBfsLanes sources (duplicates allowed) over
 * the bitmask boolean semiring. One launch per depth level advances
 * every wavefront at once.
 */
MultiSourceResult runMultiBfs(const upmem::UpmemSystem &sys,
                              const sparse::CooMatrix<float> &adjacency,
                              const std::vector<NodeId> &sources,
                              const AppConfig &config = {});

/** Batched BFS against a caller-owned resident engine. */
MultiSourceResult
multiBfsWithEngine(const upmem::UpmemSystem &sys,
                   core::PimEngine<core::BitsOrAnd> &engine,
                   const std::vector<NodeId> &sources,
                   const AppConfig &config = {});

/**
 * Batched SSSP from up to kSsspLanes sources over the lane-parallel
 * tropical semiring. One launch per relaxation round advances every
 * lane at once.
 */
MultiSourceResult runMultiSssp(const upmem::UpmemSystem &sys,
                               const sparse::CooMatrix<float> &weighted,
                               const std::vector<NodeId> &sources,
                               const AppConfig &config = {});

/** Batched SSSP against a caller-owned resident engine. */
MultiSourceResult
multiSsspWithEngine(const upmem::UpmemSystem &sys,
                    core::PimEngine<SsspBatchSemiring> &engine,
                    const std::vector<NodeId> &sources,
                    const AppConfig &config = {});

} // namespace alphapim::apps

#endif // ALPHA_PIM_APPS_MULTI_SOURCE_HH
