/**
 * @file
 * Common result record of an iterative graph application run on the
 * PIM system: per-iteration logs (input density, phase breakdown,
 * kernel choice) plus run totals. Every figure that reports per-
 * iteration or end-to-end application behaviour reads these fields.
 */

#ifndef ALPHA_PIM_APPS_APP_RESULT_HH
#define ALPHA_PIM_APPS_APP_RESULT_HH

#include <cstdint>
#include <vector>

#include "core/phase_times.hh"
#include "upmem/profile.hh"

namespace alphapim::apps
{

/** One matrix-vector iteration of a graph application. */
struct IterationLog
{
    unsigned iteration = 0;
    /** Input-vector density when the iteration launched. */
    double inputDensity = 0.0;
    /** Output-vector density produced by the iteration. */
    double outputDensity = 0.0;
    /** True when the SpMV kernel was selected. */
    bool usedSpmv = false;
    /** Load/Kernel/Retrieve/Merge times of this iteration. */
    core::PhaseTimes times;
    /** Semiring operations performed. */
    std::uint64_t semiringOps = 0;
};

/** Aggregate outcome of a graph application run. */
struct AppResult
{
    /** Per-iteration records in execution order. */
    std::vector<IterationLog> iterations;

    /** Sum of all per-iteration phase times. */
    core::PhaseTimes total;

    /** Aggregated DPU profile across all launches. */
    upmem::LaunchProfile profile;

    /** Total semiring operations across iterations. */
    std::uint64_t totalOps = 0;

    /** True when the algorithm reached its fixpoint. */
    bool converged = false;

    /** SpMSpV / SpMV launch counts. */
    unsigned spmspvLaunches = 0;
    unsigned spmvLaunches = 0;

    /** BFS: level per vertex (invalidNode if unreached). */
    std::vector<std::uint32_t> levels;

    /** SSSP: distance per vertex (+inf if unreached). */
    std::vector<float> distances;

    /** PPR: rank per vertex. */
    std::vector<float> ranks;

    /** Fold one iteration's record into the totals. */
    void
    addIteration(const IterationLog &log,
                 const upmem::LaunchProfile &launch)
    {
        iterations.push_back(log);
        total += log.times;
        totalOps += log.semiringOps;
        profile.add(launch);
        if (log.usedSpmv)
            ++spmvLaunches;
        else
            ++spmspvLaunches;
    }
};

} // namespace alphapim::apps

#endif // ALPHA_PIM_APPS_APP_RESULT_HH
