#include "multi_source.hh"

#include <limits>
#include <map>

#include "apps/app_trace.hh"
#include "common/logging.hh"
#include "telemetry/telemetry.hh"

namespace alphapim::apps
{

using detail::recordConvergence;
using detail::recordIteration;
using detail::resolveDpus;
using detail::resolveMaxIters;

MultiSourceResult
multiBfsWithEngine(const upmem::UpmemSystem &sys,
                   core::PimEngine<core::BitsOrAnd> &engine,
                   const std::vector<NodeId> &sources,
                   const AppConfig &config)
{
    const NodeId n = engine.numRows();
    ALPHA_ASSERT(!sources.empty() && sources.size() <= kBfsLanes,
                 "multi-BFS batch must hold 1..32 sources");
    for (NodeId s : sources)
        ALPHA_ASSERT(s < n, "multi-BFS source out of range");

    MultiSourceResult result;
    result.sources = sources;
    result.levels.assign(sources.size(),
                         std::vector<std::uint32_t>(n, invalidNode));

    // visited_mask[v] bit s set once source s's wavefront reached v.
    std::vector<std::uint32_t> visited_mask(n, 0);
    // Seed: sources sharing a vertex OR their bits into one entry;
    // the map keeps the frontier's ascending index order.
    std::map<NodeId, std::uint32_t> seed;
    for (std::size_t s = 0; s < sources.size(); ++s) {
        seed[sources[s]] |= 1u << s;
        result.levels[s][sources[s]] = 0;
    }
    sparse::SparseVector<std::uint32_t> frontier(n);
    for (const auto &[v, mask] : seed) {
        visited_mask[v] |= mask;
        frontier.append(v, mask);
    }

    const unsigned max_iters = resolveMaxIters(config, n);
    const Bytes vec_bytes =
        static_cast<Bytes>(n) * sizeof(std::uint32_t);
    for (unsigned iter = 1; iter <= max_iters; ++iter) {
        IterationLog log;
        log.iteration = iter;
        log.inputDensity = frontier.density();
        const Seconds it_start = telemetry::tracer().now();

        auto r = engine.multiply(frontier);
        const Seconds host_extra = sys.host().convergenceTime(vec_bytes);
        r.times.merge += host_extra;

        // Per lane, exactly the sequential frontier update: a vertex
        // joins lane s's next frontier iff bit s arrived and lane s
        // had not visited it.
        sparse::SparseVector<std::uint32_t> next(n);
        for (NodeId v = 0; v < n; ++v) {
            const std::uint32_t newbits = r.y[v] & ~visited_mask[v];
            if (newbits == 0)
                continue;
            visited_mask[v] |= newbits;
            for (std::size_t s = 0; s < sources.size(); ++s) {
                if (newbits & (1u << s))
                    result.levels[s][v] = iter;
            }
            next.append(v, newbits);
        }

        log.outputDensity = next.density();
        log.usedSpmv = engine.lastUsedSpmv();
        log.times = r.times;
        log.semiringOps = r.semiringOps;
        result.addIteration(log, r.profile);
        recordIteration("multi_bfs", log, it_start, host_extra);

        frontier = std::move(next);
        if (frontier.nnz() == 0) {
            result.converged = true;
            break;
        }
    }
    recordConvergence("multi_bfs", result.converged);
    return result;
}

MultiSourceResult
runMultiBfs(const upmem::UpmemSystem &sys,
            const sparse::CooMatrix<float> &adjacency,
            const std::vector<NodeId> &sources,
            const AppConfig &config)
{
    core::PimEngine<core::BitsOrAnd> engine(
        sys, adjacency, resolveDpus(sys, config), config.strategy,
        config.switchThreshold);
    return multiBfsWithEngine(sys, engine, sources, config);
}

MultiSourceResult
multiSsspWithEngine(const upmem::UpmemSystem &sys,
                    core::PimEngine<SsspBatchSemiring> &engine,
                    const std::vector<NodeId> &sources,
                    const AppConfig &config)
{
    using Lanes = SsspBatchSemiring::Value;
    const NodeId n = engine.numRows();
    ALPHA_ASSERT(!sources.empty() && sources.size() <= kSsspLanes,
                 "multi-SSSP batch exceeds the lane count");
    for (NodeId s : sources)
        ALPHA_ASSERT(s < n, "multi-SSSP source out of range");

    const float inf = std::numeric_limits<float>::infinity();
    MultiSourceResult result;
    result.sources = sources;
    result.distances.assign(sources.size(),
                            std::vector<float>(n, inf));

    // Seed: lane s carries 0 at its source, +inf (the additive
    // identity) everywhere else -- including every unused lane, which
    // therefore never produces a finite distance.
    std::map<NodeId, Lanes> seed;
    for (std::size_t s = 0; s < sources.size(); ++s) {
        auto [it, inserted] =
            seed.try_emplace(sources[s], SsspBatchSemiring::zero());
        it->second.lane[s] = 0.0f;
        result.distances[s][sources[s]] = 0.0f;
    }
    sparse::SparseVector<Lanes> frontier(n);
    for (const auto &[v, lanes] : seed)
        frontier.append(v, lanes);

    const unsigned max_iters = resolveMaxIters(config, n);
    const Bytes vec_bytes = static_cast<Bytes>(n) * sizeof(Lanes);
    for (unsigned iter = 1; iter <= max_iters; ++iter) {
        IterationLog log;
        log.iteration = iter;
        log.inputDensity = frontier.density();
        const Seconds it_start = telemetry::tracer().now();

        auto r = engine.multiply(frontier);
        const Seconds host_extra = sys.host().convergenceTime(vec_bytes);
        r.times.merge += host_extra;

        // Per lane, exactly the sequential relaxation: improved
        // tentative distances propagate, everything else rides as
        // +inf and contributes nothing downstream.
        sparse::SparseVector<Lanes> next(n);
        for (NodeId v = 0; v < n; ++v) {
            Lanes out = SsspBatchSemiring::zero();
            bool improved = false;
            for (std::size_t s = 0; s < sources.size(); ++s) {
                const float d = r.y[v].lane[s];
                if (d < result.distances[s][v]) {
                    result.distances[s][v] = d;
                    out.lane[s] = d;
                    improved = true;
                }
            }
            if (improved)
                next.append(v, out);
        }

        log.outputDensity = next.density();
        log.usedSpmv = engine.lastUsedSpmv();
        log.times = r.times;
        log.semiringOps = r.semiringOps;
        result.addIteration(log, r.profile);
        recordIteration("multi_sssp", log, it_start, host_extra);

        frontier = std::move(next);
        if (frontier.nnz() == 0) {
            result.converged = true;
            break;
        }
    }
    recordConvergence("multi_sssp", result.converged);
    return result;
}

MultiSourceResult
runMultiSssp(const upmem::UpmemSystem &sys,
             const sparse::CooMatrix<float> &weighted,
             const std::vector<NodeId> &sources,
             const AppConfig &config)
{
    core::PimEngine<SsspBatchSemiring> engine(
        sys, weighted, resolveDpus(sys, config), config.strategy,
        config.switchThreshold);
    return multiSsspWithEngine(sys, engine, sources, config);
}

} // namespace alphapim::apps
