/**
 * @file
 * Hardware specifications of the comparison systems (paper Table 3)
 * plus the calibration constants of the CPU/GPU timing models.
 * Peak-throughput and power figures are taken from the paper
 * (section 6.3.2); per-edge cost constants are calibrated so Table 4
 * magnitudes land in the right range (see DESIGN.md section 5).
 */

#ifndef ALPHA_PIM_BASELINE_SPECS_HH
#define ALPHA_PIM_BASELINE_SPECS_HH

#include "common/types.hh"

namespace alphapim::baseline
{

/** Intel i7-1265U running GridGraph (paper Table 3). */
struct CpuSpec
{
    unsigned cores = 10;
    unsigned threads = 12;
    double clockHz = 1.8e9;
    double memBandwidth = 83.2e9; ///< spec sheet
    double peakOpsPerSecond = 647.25e9; ///< peakperf measurement
    double powerWatts = 32.0; ///< RAPL package under load

    /** GridGraph 2-level partition count (P x P blocks). */
    unsigned gridParts = 16;

    /** Per-iteration scheduling / pass overhead, seconds.
     * GridGraph re-launches a full 2-level streaming pass (thread
     * pool dispatch, block scheduling, vertex-state write-back)
     * every iteration; Table 4's small-dataset rows imply ~5 ms per
     * level on the paper's host (as20000102 BFS: 38.5 ms over ~7
     * levels), which this constant is fitted to. */
    Seconds iterOverhead = 4.8e-3;

    /** Per-active-block dispatch overhead, seconds. */
    Seconds blockOverhead = 2e-6;

    /** Cost per edge merely streamed through the engine, seconds.
     * Dominated by GridGraph's per-edge dispatch, not bandwidth. */
    Seconds edgeStreamCost = 8e-9;

    /** Extra cost per edge whose source is active (random vertex
     * access + update attempt), frontier-driven algorithms. */
    Seconds edgeWorkCostFrontier = 15e-9;

    /** Extra cost per edge in dense full-pass algorithms (PPR):
     * better locality, no frontier checks. */
    Seconds edgeWorkCostDense = 3e-9;

    /** Cost per vertex update that lands (cache-missing write). */
    Seconds vertexUpdateCost = 30e-9;
};

/** NVIDIA RTX 3050 running cuGraph (paper Table 3). */
struct GpuSpec
{
    unsigned cudaCores = 2560;
    double clockHz = 1.55e9;
    double memBandwidth = 224e9;
    double peakOpsPerSecond = 9.1e12;
    double powerWatts = 20.0;

    /** Per-kernel launch + driver overhead, seconds. */
    Seconds kernelLaunch = 40e-6;

    /** Kernels launched per BFS level (frontier, expand, compact). */
    unsigned bfsKernelsPerLevel = 3;

    /** Kernels per PPR power iteration (spmv + axpy + reduce ...). */
    unsigned pprKernelsPerIteration = 6;

    /** Fixed per-run overhead (allocation, graph csr build on
     * device, final copy), per algorithm. cuGraph's delta-stepping
     * SSSP is dominated by a long fixed chain of small kernels,
     * which is why the paper's GPU SSSP times are flat ~13 ms. */
    Seconds bfsFixedOverhead = 0.6e-3;
    Seconds ssspFixedOverhead = 12.5e-3;
    Seconds pprFixedOverhead = 8.0e-3;
};

/** UPMEM system power envelope (20 PIM DIMMs + controller share). */
struct UpmemPowerSpec
{
    double systemWatts = 465.0; ///< derived from Table 4 J/ms ratios
};

} // namespace alphapim::baseline

#endif // ALPHA_PIM_BASELINE_SPECS_HH
