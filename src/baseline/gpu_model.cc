#include "gpu_model.hh"

namespace alphapim::baseline
{

GpuRunResult
GpuModel::bfs(const std::vector<std::uint64_t> &edges_per_level,
              NodeId n) const
{
    GpuRunResult result;
    result.seconds = spec_.bfsFixedOverhead;
    for (std::uint64_t edges : edges_per_level) {
        result.seconds +=
            spec_.bfsKernelsPerLevel * spec_.kernelLaunch;
        // Frontier expansion traffic + one status-array pass.
        result.seconds += trafficTime(edges * 8 +
                                      static_cast<Bytes>(n) * 8);
        result.ops += edges * 2;
    }
    return result;
}

GpuRunResult
GpuModel::sssp(const std::vector<std::uint64_t> &edges_per_round,
               NodeId n) const
{
    GpuRunResult result;
    result.seconds = spec_.ssspFixedOverhead;
    for (std::uint64_t edges : edges_per_round) {
        // Delta-stepping buckets: relax + compact, small kernels.
        result.seconds += 2 * spec_.kernelLaunch;
        result.seconds += trafficTime(edges * 12 +
                                      static_cast<Bytes>(n) * 4);
        result.ops += edges * 2;
    }
    return result;
}

GpuRunResult
GpuModel::ppr(unsigned iterations, std::uint64_t edges, NodeId n) const
{
    GpuRunResult result;
    result.seconds = spec_.pprFixedOverhead;
    for (unsigned it = 0; it < iterations; ++it) {
        result.seconds +=
            spec_.pprKernelsPerIteration * spec_.kernelLaunch;
        // Full CSR SpMV traffic + two dense vector passes.
        result.seconds += trafficTime(edges * 8 +
                                      static_cast<Bytes>(n) * 16);
        result.ops += edges * 2;
    }
    return result;
}

} // namespace alphapim::baseline
