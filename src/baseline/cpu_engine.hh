/**
 * @file
 * CPU baseline: a GridGraph-style edge-centric graph engine with
 * 2-level hierarchical partitioning (Zhu et al., ATC'15), the system
 * the paper compares against on the host CPU.
 *
 * The engine executes the algorithms for real (its outputs are
 * checked against the reference implementations) and reports model
 * time from the CpuSpec cost constants, so results are deterministic
 * and machine-independent. Streaming follows GridGraph's selective
 * scheduling: a block is streamed only when its source partition
 * contains active vertices.
 */

#ifndef ALPHA_PIM_BASELINE_CPU_ENGINE_HH
#define ALPHA_PIM_BASELINE_CPU_ENGINE_HH

#include <cstdint>
#include <vector>

#include "baseline/specs.hh"
#include "common/types.hh"
#include "sparse/coo.hh"

namespace alphapim::baseline
{

/** Outcome of one CPU baseline run. */
struct CpuRunResult
{
    Seconds seconds = 0.0;         ///< modeled wall time
    std::uint64_t edgeOps = 0;     ///< semiring-equivalent ops
    std::uint64_t bytesStreamed = 0;
    unsigned iterations = 0;
    std::vector<std::uint64_t> edgesPerIteration; ///< frontier edges
    std::vector<std::uint32_t> levels;  ///< BFS output
    std::vector<float> distances;       ///< SSSP output
    std::vector<float> ranks;           ///< PPR output
};

/** GridGraph-style CPU engine bound to one (weighted) adjacency. */
class CpuEngine
{
  public:
    /**
     * Build the 2-level edge grid.
     *
     * @param spec CPU model parameters
     * @param adjacency (possibly weighted) symmetric adjacency
     */
    CpuEngine(const CpuSpec &spec,
              const sparse::CooMatrix<float> &adjacency);

    /** Breadth-first search from `source`. */
    CpuRunResult bfs(NodeId source) const;

    /** Shortest paths from `source` (uses the stored edge weights). */
    CpuRunResult sssp(NodeId source) const;

    /** Personalized PageRank (power iteration, fixed count). */
    CpuRunResult ppr(NodeId source, double alpha,
                     unsigned iterations) const;

    /** The spec in use. */
    const CpuSpec &spec() const { return spec_; }

    /** Number of vertices. */
    NodeId numVertices() const { return n_; }

  private:
    struct Edge
    {
        NodeId src;
        NodeId dst;
        float weight;
    };

    /** Edges of grid block (srcPart, dstPart). */
    const std::vector<Edge> &
    block(unsigned src_part, unsigned dst_part) const
    {
        return blocks_[src_part * parts_ + dst_part];
    }

    /** Model time of one streamed iteration. */
    Seconds iterationTime(std::uint64_t streamed_edges,
                          std::uint64_t active_edges,
                          std::uint64_t updates, unsigned blocks,
                          bool dense_pass) const;

    CpuSpec spec_;
    NodeId n_ = 0;
    unsigned parts_ = 1;
    std::vector<NodeId> part_of_;             ///< vertex -> partition
    std::vector<std::vector<Edge>> blocks_;   ///< P x P edge blocks
    std::vector<EdgeId> vertex_degree_;       ///< for PPR normalizing
};

} // namespace alphapim::baseline

#endif // ALPHA_PIM_BASELINE_CPU_ENGINE_HH
