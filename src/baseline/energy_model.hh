/**
 * @file
 * Energy accounting: energy = device power envelope x modeled time,
 * the same first-order accounting the paper's RAPL / nvidia-smi /
 * DIMM-counter measurements reduce to for these short runs.
 */

#ifndef ALPHA_PIM_BASELINE_ENERGY_MODEL_HH
#define ALPHA_PIM_BASELINE_ENERGY_MODEL_HH

#include "baseline/specs.hh"
#include "common/types.hh"

namespace alphapim::baseline
{

/** Joule accounting for the three systems. */
class EnergyModel
{
  public:
    EnergyModel(const CpuSpec &cpu, const GpuSpec &gpu,
                const UpmemPowerSpec &upmem)
        : cpu_(cpu), gpu_(gpu), upmem_(upmem)
    {
    }

    /** CPU package energy for a run of the given duration. */
    double cpuJoules(Seconds t) const { return cpu_.powerWatts * t; }

    /** GPU board energy. */
    double gpuJoules(Seconds t) const { return gpu_.powerWatts * t; }

    /** UPMEM DIMM-system energy. */
    double
    upmemJoules(Seconds t) const
    {
        return upmem_.systemWatts * t;
    }

  private:
    CpuSpec cpu_;
    GpuSpec gpu_;
    UpmemPowerSpec upmem_;
};

/**
 * Compute-utilization metric of section 6.3.2: achieved operations
 * per second as a fraction of the device's peak throughput.
 */
inline double
computeUtilization(std::uint64_t ops, Seconds t, double peak_ops)
{
    if (t <= 0.0 || peak_ops <= 0.0)
        return 0.0;
    return static_cast<double>(ops) / t / peak_ops;
}

} // namespace alphapim::baseline

#endif // ALPHA_PIM_BASELINE_ENERGY_MODEL_HH
