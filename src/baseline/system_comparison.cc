#include "system_comparison.hh"

#include "common/logging.hh"
#include "common/random.hh"
#include "sparse/generators.hh"
#include "sparse/graph_stats.hh"

namespace alphapim::baseline
{

const char *
algoName(Algo algo)
{
    switch (algo) {
      case Algo::Bfs:
        return "BFS";
      case Algo::Sssp:
        return "SSSP";
      case Algo::Ppr:
        return "PPR";
    }
    return "unknown";
}

ComparisonRow
SystemComparison::compare(Algo algo, const sparse::Dataset &data,
                          const apps::AppConfig &config,
                          std::uint64_t seed) const
{
    ComparisonRow row;
    row.dataset = data.spec.abbreviation;
    row.algo = algo;

    Rng rng(seed);
    const NodeId source =
        sparse::largestComponentVertex(data.adjacency);

    // SSSP operates on a weighted copy; BFS/PPR on the pattern.
    sparse::CooMatrix<float> matrix = data.adjacency;
    if (algo == Algo::Sssp)
        matrix = sparse::assignSymmetricWeights(matrix, 1.0f, 64.0f,
                                                rng);

    // ---- CPU baseline (GridGraph model) ----
    const CpuEngine cpu_engine(cpu_, matrix);
    CpuRunResult cpu_run;
    switch (algo) {
      case Algo::Bfs:
        cpu_run = cpu_engine.bfs(source);
        break;
      case Algo::Sssp:
        cpu_run = cpu_engine.sssp(source);
        break;
      case Algo::Ppr:
        cpu_run = cpu_engine.ppr(source, config.pprAlpha,
                                 config.pprIterations);
        break;
    }
    row.cpuMs = toMillis(cpu_run.seconds);
    row.cpuUtilPct = 100.0 * computeUtilization(
        cpu_run.edgeOps, cpu_run.seconds, cpu_.peakOpsPerSecond);
    row.cpuJ = energy_.cpuJoules(cpu_run.seconds);

    // ---- GPU baseline (cuGraph model), driven by the real
    //      iteration structure from the CPU run ----
    const GpuModel gpu(gpu_);
    GpuRunResult gpu_run;
    switch (algo) {
      case Algo::Bfs:
        gpu_run = gpu.bfs(cpu_run.edgesPerIteration,
                          data.adjacency.numRows());
        break;
      case Algo::Sssp:
        gpu_run = gpu.sssp(cpu_run.edgesPerIteration,
                           data.adjacency.numRows());
        break;
      case Algo::Ppr:
        gpu_run = gpu.ppr(config.pprIterations, matrix.nnz(),
                          data.adjacency.numRows());
        break;
    }
    row.gpuMs = toMillis(gpu_run.seconds);
    row.gpuUtilPct = 100.0 * computeUtilization(
        gpu_run.ops, gpu_run.seconds, gpu_.peakOpsPerSecond);
    row.gpuJ = energy_.gpuJoules(gpu_run.seconds);

    // ---- UPMEM (simulated) ----
    apps::AppResult pim;
    switch (algo) {
      case Algo::Bfs:
        pim = apps::runBfs(sys_, matrix, source, config);
        break;
      case Algo::Sssp:
        pim = apps::runSssp(sys_, matrix, source, config);
        break;
      case Algo::Ppr:
        pim = apps::runPpr(sys_, matrix, source, config);
        break;
    }
    row.upmemTimes = pim.total;
    row.upmemProfile = pim.profile;
    row.upmemIterations = pim.iterations.size();
    const Seconds kernel_s = pim.total.kernel;
    const Seconds total_s = pim.total.total();
    row.upmemKernelMs = toMillis(kernel_s);
    row.upmemTotalMs = toMillis(total_s);
    const double upmem_peak = sys_.config().peakOpsPerSecond;
    row.upmemKernelUtilPct = 100.0 * computeUtilization(
        pim.totalOps, kernel_s, upmem_peak);
    row.upmemTotalUtilPct = 100.0 * computeUtilization(
        pim.totalOps, total_s, upmem_peak);
    row.upmemKernelJ = energy_.upmemJoules(kernel_s);
    row.upmemTotalJ = energy_.upmemJoules(total_s);

    return row;
}

} // namespace alphapim::baseline
