/**
 * @file
 * Cross-system evaluation harness for the paper's Table 4: runs each
 * graph application on the CPU baseline (GridGraph model), the GPU
 * baseline (cuGraph model), and the simulated UPMEM system, and
 * reports execution time, compute utilization, and energy.
 */

#ifndef ALPHA_PIM_BASELINE_SYSTEM_COMPARISON_HH
#define ALPHA_PIM_BASELINE_SYSTEM_COMPARISON_HH

#include <string>

#include "apps/graph_apps.hh"
#include "baseline/cpu_engine.hh"
#include "baseline/energy_model.hh"
#include "baseline/gpu_model.hh"
#include "sparse/datasets.hh"

namespace alphapim::baseline
{

/** The three evaluated applications. */
enum class Algo
{
    Bfs,
    Sssp,
    Ppr,
};

/** Display name ("BFS" / "SSSP" / "PPR"). */
const char *algoName(Algo algo);

/** One Table 4 cell group: a (algorithm, dataset) comparison. */
struct ComparisonRow
{
    std::string dataset;
    Algo algo = Algo::Bfs;

    // Execution time, milliseconds.
    double cpuMs = 0.0;
    double gpuMs = 0.0;
    double upmemKernelMs = 0.0;
    double upmemTotalMs = 0.0;

    // Compute utilization, percent of peak.
    double cpuUtilPct = 0.0;
    double gpuUtilPct = 0.0;
    double upmemKernelUtilPct = 0.0;
    double upmemTotalUtilPct = 0.0;

    // Energy, joules.
    double cpuJ = 0.0;
    double gpuJ = 0.0;
    double upmemKernelJ = 0.0;
    double upmemTotalJ = 0.0;

    // The raw UPMEM run behind the ms/%/J cells, kept so callers
    // can emit full run records for the perf observatory.
    core::PhaseTimes upmemTimes;
    upmem::LaunchProfile upmemProfile;
    std::size_t upmemIterations = 0;
};

/** Runs the three systems on one (algorithm, dataset) pair. */
class SystemComparison
{
  public:
    /**
     * @param sys   the simulated UPMEM machine
     * @param cpu   CPU baseline spec
     * @param gpu   GPU baseline spec
     * @param power UPMEM power envelope
     */
    SystemComparison(const upmem::UpmemSystem &sys,
                     CpuSpec cpu = {}, GpuSpec gpu = {},
                     UpmemPowerSpec power = {})
        : sys_(sys), cpu_(cpu), gpu_(gpu),
          energy_(cpu, gpu, power)
    {
    }

    /**
     * Run all three systems.
     *
     * @param algo   application
     * @param data   generated dataset
     * @param config PIM application options (strategy etc.)
     * @param seed   RNG stream for weights / source selection
     */
    ComparisonRow compare(Algo algo, const sparse::Dataset &data,
                          const apps::AppConfig &config = {},
                          std::uint64_t seed = 42) const;

    /** CPU spec in use. */
    const CpuSpec &cpuSpec() const { return cpu_; }

    /** GPU spec in use. */
    const GpuSpec &gpuSpec() const { return gpu_; }

  private:
    const upmem::UpmemSystem &sys_;
    CpuSpec cpu_;
    GpuSpec gpu_;
    EnergyModel energy_;
};

} // namespace alphapim::baseline

#endif // ALPHA_PIM_BASELINE_SYSTEM_COMPARISON_HH
