#include "cpu_engine.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace alphapim::baseline
{

CpuEngine::CpuEngine(const CpuSpec &spec,
                     const sparse::CooMatrix<float> &adjacency)
    : spec_(spec), n_(adjacency.numRows()), parts_(spec.gridParts)
{
    ALPHA_ASSERT(adjacency.numRows() == adjacency.numCols(),
                 "adjacency matrix must be square");
    ALPHA_ASSERT(parts_ > 0, "grid needs at least one partition");

    part_of_.resize(n_);
    for (NodeId v = 0; v < n_; ++v) {
        part_of_[v] = static_cast<NodeId>(
            static_cast<std::uint64_t>(v) * parts_ / n_);
    }

    blocks_.assign(static_cast<std::size_t>(parts_) * parts_, {});
    vertex_degree_.assign(n_, 0);
    for (std::size_t k = 0; k < adjacency.nnz(); ++k) {
        // Edge-centric convention: an entry (r, c) propagates from
        // src = c to dst = r (y = A x semantics).
        const NodeId dst = adjacency.rowAt(k);
        const NodeId src = adjacency.colAt(k);
        blocks_[part_of_[src] * parts_ + part_of_[dst]].push_back(
            {src, dst, adjacency.valueAt(k)});
        ++vertex_degree_[src];
    }
}

Seconds
CpuEngine::iterationTime(std::uint64_t streamed_edges,
                         std::uint64_t active_edges,
                         std::uint64_t updates, unsigned blocks,
                         bool dense_pass) const
{
    const Seconds stream_bw =
        static_cast<double>(streamed_edges) * 12.0 /
        spec_.memBandwidth;
    const Seconds stream_cpu =
        static_cast<double>(streamed_edges) * spec_.edgeStreamCost;
    const Seconds work =
        static_cast<double>(active_edges) *
        (dense_pass ? spec_.edgeWorkCostDense
                    : spec_.edgeWorkCostFrontier);
    const Seconds update_cost =
        static_cast<double>(updates) * spec_.vertexUpdateCost;
    return spec_.iterOverhead + blocks * spec_.blockOverhead +
           std::max(stream_bw, stream_cpu) + work + update_cost;
}

CpuRunResult
CpuEngine::bfs(NodeId source) const
{
    ALPHA_ASSERT(source < n_, "source out of range");
    CpuRunResult result;
    result.levels.assign(n_, invalidNode);
    result.levels[source] = 0;

    std::vector<bool> active(n_, false), next_active(n_, false);
    std::vector<bool> part_active(parts_, false);
    active[source] = true;
    part_active[part_of_[source]] = true;

    for (unsigned iter = 1; iter <= n_; ++iter) {
        std::uint64_t streamed = 0, worked = 0, updates = 0;
        unsigned touched_blocks = 0;
        bool any = false;

        for (unsigned sp = 0; sp < parts_; ++sp) {
            if (!part_active[sp])
                continue;
            for (unsigned dp = 0; dp < parts_; ++dp) {
                const auto &edges = block(sp, dp);
                if (edges.empty())
                    continue;
                ++touched_blocks;
                streamed += edges.size();
                for (const Edge &e : edges) {
                    if (!active[e.src])
                        continue;
                    ++worked;
                    if (result.levels[e.dst] == invalidNode) {
                        result.levels[e.dst] = iter;
                        next_active[e.dst] = true;
                        ++updates;
                        any = true;
                    }
                }
            }
        }
        result.seconds += iterationTime(streamed, worked, updates,
                                        touched_blocks, false);
        result.bytesStreamed += streamed * 12;
        result.edgeOps += worked * 2;
        result.edgesPerIteration.push_back(worked);
        ++result.iterations;
        if (!any)
            break;

        active.swap(next_active);
        std::fill(next_active.begin(), next_active.end(), false);
        std::fill(part_active.begin(), part_active.end(), false);
        for (NodeId v = 0; v < n_; ++v) {
            if (active[v])
                part_active[part_of_[v]] = true;
        }
    }
    return result;
}

CpuRunResult
CpuEngine::sssp(NodeId source) const
{
    ALPHA_ASSERT(source < n_, "source out of range");
    const float inf = std::numeric_limits<float>::infinity();
    CpuRunResult result;
    result.distances.assign(n_, inf);
    result.distances[source] = 0.0f;

    std::vector<bool> active(n_, false), next_active(n_, false);
    std::vector<bool> part_active(parts_, false);
    active[source] = true;
    part_active[part_of_[source]] = true;

    for (unsigned iter = 1; iter <= n_; ++iter) {
        std::uint64_t streamed = 0, worked = 0, updates = 0;
        unsigned touched_blocks = 0;
        bool any = false;

        for (unsigned sp = 0; sp < parts_; ++sp) {
            if (!part_active[sp])
                continue;
            for (unsigned dp = 0; dp < parts_; ++dp) {
                const auto &edges = block(sp, dp);
                if (edges.empty())
                    continue;
                ++touched_blocks;
                streamed += edges.size();
                for (const Edge &e : edges) {
                    if (!active[e.src])
                        continue;
                    ++worked;
                    const float cand =
                        result.distances[e.src] + e.weight;
                    if (cand < result.distances[e.dst]) {
                        result.distances[e.dst] = cand;
                        next_active[e.dst] = true;
                        ++updates;
                        any = true;
                    }
                }
            }
        }
        result.seconds += iterationTime(streamed, worked, updates,
                                        touched_blocks, false);
        result.bytesStreamed += streamed * 12;
        result.edgeOps += worked * 2;
        result.edgesPerIteration.push_back(worked);
        ++result.iterations;
        if (!any)
            break;

        active.swap(next_active);
        std::fill(next_active.begin(), next_active.end(), false);
        std::fill(part_active.begin(), part_active.end(), false);
        for (NodeId v = 0; v < n_; ++v) {
            if (active[v])
                part_active[part_of_[v]] = true;
        }
    }
    return result;
}

CpuRunResult
CpuEngine::ppr(NodeId source, double alpha,
               unsigned iterations) const
{
    ALPHA_ASSERT(source < n_, "source out of range");
    CpuRunResult result;
    result.ranks.assign(n_, 0.0f);
    result.ranks[source] = 1.0f;

    std::vector<float> next(n_);
    const auto damp = static_cast<float>(alpha);
    const float restart = 1.0f - damp;

    std::uint64_t total_edges = 0;
    unsigned nonempty_blocks = 0;
    for (const auto &b : blocks_) {
        total_edges += b.size();
        nonempty_blocks += b.empty() ? 0 : 1;
    }

    for (unsigned iter = 0; iter < iterations; ++iter) {
        std::fill(next.begin(), next.end(), 0.0f);
        for (const auto &b : blocks_) {
            for (const Edge &e : b) {
                next[e.dst] +=
                    result.ranks[e.src] /
                    static_cast<float>(vertex_degree_[e.src]);
            }
        }
        for (NodeId v = 0; v < n_; ++v)
            next[v] *= damp;
        next[source] += restart;
        result.ranks = next;

        result.seconds += iterationTime(total_edges, total_edges, n_,
                                        nonempty_blocks, true);
        result.bytesStreamed += total_edges * 12;
        result.edgeOps += total_edges * 2;
        result.edgesPerIteration.push_back(total_edges);
        ++result.iterations;
    }
    return result;
}

} // namespace alphapim::baseline
