/**
 * @file
 * GPU baseline: an analytical (roofline + launch overhead) model of
 * cuGraph on the RTX 3050. The model is driven by the real iteration
 * structure of each algorithm (levels / relaxation rounds / power
 * iterations with their frontier-edge counts), so dataset-dependent
 * behaviour is preserved while absolute constants come from GpuSpec.
 */

#ifndef ALPHA_PIM_BASELINE_GPU_MODEL_HH
#define ALPHA_PIM_BASELINE_GPU_MODEL_HH

#include <cstdint>
#include <vector>

#include "baseline/specs.hh"
#include "common/types.hh"

namespace alphapim::baseline
{

/** Modeled GPU execution of one algorithm run. */
struct GpuRunResult
{
    Seconds seconds = 0.0;
    std::uint64_t ops = 0; ///< semiring-equivalent operations
};

/** Analytical cuGraph model. */
class GpuModel
{
  public:
    /** @param spec GPU parameters and calibration constants */
    explicit GpuModel(const GpuSpec &spec) : spec_(spec) {}

    /**
     * BFS: per level, a fixed kernel chain plus frontier-edge and
     * vertex-array traffic.
     *
     * @param edges_per_level frontier edges expanded per level
     * @param n vertex count
     */
    GpuRunResult bfs(const std::vector<std::uint64_t> &edges_per_level,
                     NodeId n) const;

    /**
     * SSSP: cuGraph's delta-stepping executes a long, largely
     * dataset-independent chain of small kernels (the paper's flat
     * ~13 ms observation); traffic terms add the dataset dependence.
     */
    GpuRunResult sssp(const std::vector<std::uint64_t> &edges_per_round,
                      NodeId n) const;

    /** PPR: power iterations of full-matrix SpMV plus vector ops. */
    GpuRunResult ppr(unsigned iterations, std::uint64_t edges,
                     NodeId n) const;

    /** The spec in use. */
    const GpuSpec &spec() const { return spec_; }

  private:
    /** Bytes-over-bandwidth time for one pass. */
    Seconds
    trafficTime(std::uint64_t bytes) const
    {
        return static_cast<double>(bytes) / spec_.memBandwidth;
    }

    GpuSpec spec_;
};

} // namespace alphapim::baseline

#endif // ALPHA_PIM_BASELINE_GPU_MODEL_HH
