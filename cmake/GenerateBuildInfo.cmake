# Script mode (cmake -P): regenerate src/perf build_info.cc from the
# current git state. Run at configure time and again on every build
# (see src/perf/CMakeLists.txt) so the embedded revision does not go
# stale between commits; configure_file only touches the output when
# the content actually changed, so incremental builds stay no-ops.
#
# Inputs (-D):
#   SOURCE_DIR  repository root
#   TEMPLATE    path to build_info.cc.in
#   OUTPUT      path of the generated build_info.cc
#   BUILD_TYPE  CMAKE_BUILD_TYPE of the enclosing build
#   SANITIZE    ALPHA_PIM_SANITIZE of the enclosing build (may be "")

set(ALPHA_PIM_GIT_SHA "unknown")
set(ALPHA_PIM_GIT_DIRTY "")

find_program(ALPHA_PIM_GIT_EXECUTABLE git)
if(ALPHA_PIM_GIT_EXECUTABLE)
    execute_process(
        COMMAND ${ALPHA_PIM_GIT_EXECUTABLE} -C ${SOURCE_DIR}
                rev-parse --short=12 HEAD
        OUTPUT_VARIABLE _sha
        OUTPUT_STRIP_TRAILING_WHITESPACE
        ERROR_QUIET
        RESULT_VARIABLE _sha_rc)
    if(_sha_rc EQUAL 0)
        set(ALPHA_PIM_GIT_SHA "${_sha}")
        execute_process(
            COMMAND ${ALPHA_PIM_GIT_EXECUTABLE} -C ${SOURCE_DIR}
                    diff --quiet HEAD --
            ERROR_QUIET
            RESULT_VARIABLE _dirty_rc)
        if(NOT _dirty_rc EQUAL 0)
            set(ALPHA_PIM_GIT_DIRTY "+dirty")
        endif()
    endif()
endif()

set(ALPHA_PIM_BUILD_TYPE "${BUILD_TYPE}")
set(ALPHA_PIM_BUILD_FLAGS "")
if(SANITIZE)
    set(ALPHA_PIM_BUILD_FLAGS "sanitize=${SANITIZE}")
endif()

configure_file(${TEMPLATE} ${OUTPUT} @ONLY)
