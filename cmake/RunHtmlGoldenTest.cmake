# Gate: the alphapim_explain HTML report is deterministic. Rendering
# the committed fixture trace twice must be byte-identical, and both
# runs must match the committed golden file (stable element ordering
# and ids; no timestamps, addresses or hash-ordered output).
#
# The fixture is copied into WORKDIR and rendered with a relative
# path so the report's source label does not embed the checkout path.
#
# Arguments (all -D):
#   EXPLAIN  path to the alphapim_explain binary
#   FIXTURE  committed Chrome-trace fixture
#   GOLDEN   committed golden HTML
#   WORKDIR  scratch directory for the artifacts

file(MAKE_DIRECTORY ${WORKDIR})
get_filename_component(_fixture_name ${FIXTURE} NAME)
configure_file(${FIXTURE} ${WORKDIR}/${_fixture_name} COPYONLY)

foreach(_pass 1 2)
    execute_process(
        COMMAND ${EXPLAIN} --trace ${_fixture_name}
                --html out${_pass}.html
        WORKING_DIRECTORY ${WORKDIR}
        RESULT_VARIABLE _result
        OUTPUT_QUIET
        ERROR_VARIABLE _err
    )
    if(NOT _result EQUAL 0)
        message(FATAL_ERROR
            "alphapim_explain pass ${_pass} failed (${_result}): ${_err}")
    endif()
endforeach()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORKDIR}/out1.html ${WORKDIR}/out2.html
    RESULT_VARIABLE _stable
)
if(NOT _stable EQUAL 0)
    message(FATAL_ERROR "HTML report is not byte-stable across runs")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORKDIR}/out1.html ${GOLDEN}
    RESULT_VARIABLE _golden
)
if(NOT _golden EQUAL 0)
    message(FATAL_ERROR
        "HTML report differs from the committed golden file "
        "${GOLDEN}; if the change is intentional, regenerate it with "
        "alphapim_explain --trace tests/data/explain/fixture.trace.json "
        "--html tests/data/explain/golden.html run from "
        "tests/data/explain")
endif()
