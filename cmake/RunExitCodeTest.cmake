# Gate: run TOOL with ARGS and require the exact exit code EXPECT.
# WILL_FAIL only distinguishes zero from non-zero; the analysis tools
# reserve specific codes (3 = findings, 4 = bound hit), so the gates
# must check the code exactly or a crash would pass as a detection.
#
# Arguments (all -D):
#   TOOL    path to the binary under test
#   ARGS    semicolon-separated argument list (optional)
#   EXPECT  required exit code
#   MATCH   regex the combined stdout+stderr must match (optional)

execute_process(
    COMMAND ${TOOL} ${ARGS}
    RESULT_VARIABLE _code
    OUTPUT_VARIABLE _out
    ERROR_VARIABLE _err
)
if(NOT _code EQUAL ${EXPECT})
    message(FATAL_ERROR
        "${TOOL} ${ARGS}: expected exit ${EXPECT}, got "
        "${_code}\n${_out}${_err}")
endif()
if(MATCH AND NOT "${_out}${_err}" MATCHES "${MATCH}")
    message(FATAL_ERROR
        "${TOOL} ${ARGS}: output does not match '${MATCH}':\n"
        "${_out}${_err}")
endif()
