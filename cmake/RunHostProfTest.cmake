# Gate: the host-performance observatory end to end.
#
#  1. A run with telemetry outputs profiles itself by default: the
#     run record carries a schema-v5 host block, the trace carries a
#     host_profile instant event, and `alphapim_explain --host`
#     renders the per-phase host/model breakdown from BOTH inputs.
#  2. `--host-prof=off` disables the observatory completely: no
#     host.* metrics, and the remaining model metrics are
#     byte-identical to the profiled run's -- instrumentation must
#     never perturb the model.
#
# Arguments (all -D):
#   CLI      path to the alphapim binary
#   EXPLAIN  path to the alphapim_explain binary
#   WORKDIR  scratch directory for the artifacts

file(MAKE_DIRECTORY ${WORKDIR})
set(_base --algo bfs --dataset as00 --scale 0.2 --dpus 64)

execute_process(
    COMMAND ${CLI} ${_base}
            --json-out ${WORKDIR}/on.run.jsonl
            --trace-out ${WORKDIR}/on.trace.json
            --metrics-out ${WORKDIR}/on.metrics.jsonl
    RESULT_VARIABLE _run_result
    OUTPUT_QUIET
)
if(NOT _run_result EQUAL 0)
    message(FATAL_ERROR "profiled alphapim run failed (${_run_result})")
endif()

# ---- explain --host on the run record ----
execute_process(
    COMMAND ${EXPLAIN} --records ${WORKDIR}/on.run.jsonl --host
    RESULT_VARIABLE _rec_result
    OUTPUT_VARIABLE _rec_out
    ERROR_VARIABLE _rec_err
)
if(NOT _rec_result EQUAL 0)
    message(FATAL_ERROR
        "explain --records --host failed (${_rec_result}): ${_rec_err}")
endif()
if(NOT _rec_out MATCHES "host .*: [0-9.e+-]+ s host wall, slowdown [0-9.]+x; dominant phase [a-z_]+")
    message(FATAL_ERROR "no host block summary in:\n${_rec_out}")
endif()
if(NOT _rec_out MATCHES "throughput: .*replayed slots/s")
    message(FATAL_ERROR "no host throughput line in:\n${_rec_out}")
endif()

# ---- explain --host on the trace ----
execute_process(
    COMMAND ${EXPLAIN} --trace ${WORKDIR}/on.trace.json --host
    RESULT_VARIABLE _trace_result
    OUTPUT_VARIABLE _trace_out
    ERROR_VARIABLE _trace_err
)
if(NOT _trace_result EQUAL 0)
    message(FATAL_ERROR
        "explain --trace --host failed (${_trace_result}): ${_trace_err}")
endif()
if(NOT _trace_out MATCHES "host profile: [0-9.e+-]+ s simulator wall vs [0-9.e+-]+ s model time -- slowdown [0-9.]+x")
    message(FATAL_ERROR "no host profile section in:\n${_trace_out}")
endif()
foreach(_phase partition_build trace_record replay profile_fold
        transfer_model host_merge analysis)
    if(NOT _trace_out MATCHES "${_phase} +[0-9.]+ ms")
        message(FATAL_ERROR
            "host phase ${_phase} missing from:\n${_trace_out}")
    endif()
endforeach()

# ---- --host-prof=off: no host metrics, model metrics byte-equal ----
execute_process(
    COMMAND ${CLI} ${_base} --host-prof=off
            --json-out ${WORKDIR}/off.run.jsonl
            --trace-out ${WORKDIR}/off.trace.json
            --metrics-out ${WORKDIR}/off.metrics.jsonl
    RESULT_VARIABLE _off_result
    OUTPUT_QUIET
)
if(NOT _off_result EQUAL 0)
    message(FATAL_ERROR "--host-prof=off run failed (${_off_result})")
endif()

file(READ ${WORKDIR}/on.run.jsonl _on_record)
file(READ ${WORKDIR}/off.run.jsonl _off_record)
if(NOT _on_record MATCHES "\"host\":")
    message(FATAL_ERROR "profiled run record carries no host block")
endif()
if(_off_record MATCHES "\"host\":")
    message(FATAL_ERROR
        "--host-prof=off run record still carries a host block")
endif()

file(READ ${WORKDIR}/on.metrics.jsonl _on_metrics)
file(READ ${WORKDIR}/off.metrics.jsonl _off_metrics)
if(_off_metrics MATCHES "\"host\\.")
    message(FATAL_ERROR
        "--host-prof=off still published host.* metrics")
endif()
if(NOT _on_metrics MATCHES "\"host\\.")
    message(FATAL_ERROR
        "profiled run published no host.* metrics")
endif()
# Strip the host.* observatory lines from the profiled run; what
# remains is the model's own telemetry and must match byte for byte.
string(REGEX REPLACE "[^\n]*\"host\\.[^\n]*\n" "" _on_model "${_on_metrics}")
if(NOT _on_model STREQUAL _off_metrics)
    message(FATAL_ERROR
        "model metrics differ between profiled and --host-prof=off "
        "runs: the observatory perturbed the model")
endif()
