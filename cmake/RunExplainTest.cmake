# Gate: alphapim --trace-out + alphapim_explain produce a report
# with a non-empty critical path whose attribution matches the
# accounted model time, and a non-empty self-contained HTML page.
#
# Arguments (all -D):
#   CLI      path to the alphapim binary
#   EXPLAIN  path to the alphapim_explain binary
#   ALGO     application to run (bfs|sssp|ppr|cc)
#   WORKDIR  scratch directory for the artifacts

file(MAKE_DIRECTORY ${WORKDIR})
set(_trace ${WORKDIR}/${ALGO}.trace.json)
set(_html ${WORKDIR}/${ALGO}.report.html)

execute_process(
    COMMAND ${CLI} --algo ${ALGO} --dataset as00 --scale 0.2
            --dpus 64 --trace-out ${_trace}
    RESULT_VARIABLE _run_result
    OUTPUT_QUIET
)
if(NOT _run_result EQUAL 0)
    message(FATAL_ERROR "alphapim --algo ${ALGO} failed (${_run_result})")
endif()

execute_process(
    COMMAND ${EXPLAIN} --trace ${_trace} --html ${_html}
    RESULT_VARIABLE _explain_result
    OUTPUT_VARIABLE _report
    ERROR_VARIABLE _report_err
)
if(NOT _explain_result EQUAL 0)
    message(FATAL_ERROR
        "alphapim_explain failed (${_explain_result}): ${_report_err}")
endif()

if(NOT _report MATCHES "critical path: [0-9.]+ ms across [1-9][0-9]* nodes")
    message(FATAL_ERROR "no non-empty critical path in:\n${_report}")
endif()
if(NOT _report MATCHES "attribution: .*\\(OK\\)")
    message(FATAL_ERROR
        "critical-path attribution does not match the accounted "
        "model time:\n${_report}")
endif()
if(NOT _report MATCHES "what-if overlap bounds")
    message(FATAL_ERROR "no what-if bounds in:\n${_report}")
endif()

file(SIZE ${_html} _html_size)
if(_html_size LESS 512)
    message(FATAL_ERROR "HTML report is empty or truncated (${_html_size} bytes)")
endif()
