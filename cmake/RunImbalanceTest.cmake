# Gate: the load-imbalance observatory end to end. alphapim
# --json-out on a skewed synthetic graph must produce a run record
# whose imbalance block, printed by alphapim_explain --records
# --imbalance, names the straggler DPU with a stall-reason and a
# partition-share attribution plus the rebalance bound and the
# roofline position.
#
# Arguments (all -D):
#   CLI      path to the alphapim binary
#   EXPLAIN  path to the alphapim_explain binary
#   WORKDIR  scratch directory for the artifacts

file(MAKE_DIRECTORY ${WORKDIR})
set(_records ${WORKDIR}/imbalance.jsonl)
file(REMOVE ${_records}) # --json-out appends; start clean

execute_process(
    COMMAND ${CLI} --algo bfs --dataset as00 --scale 0.3
            --dpus 64 --json-out ${_records}
    RESULT_VARIABLE _run_result
    OUTPUT_QUIET
)
if(NOT _run_result EQUAL 0)
    message(FATAL_ERROR "alphapim failed (${_run_result})")
endif()

execute_process(
    COMMAND ${EXPLAIN} --records ${_records} --imbalance
    RESULT_VARIABLE _explain_result
    OUTPUT_VARIABLE _report
    ERROR_VARIABLE _report_err
)
if(NOT _explain_result EQUAL 0)
    message(FATAL_ERROR
        "alphapim_explain failed (${_explain_result}): ${_report_err}")
endif()

if(NOT _report MATCHES "straggler factor [0-9.]+x")
    message(FATAL_ERROR "no straggler factor in:\n${_report}")
endif()
if(NOT _report MATCHES
   "straggler: DPU [0-9]+: [0-9.]+x mean cycles, [0-9]+% [a-z-]+-stall, holds [0-9.]+x mean nnz")
    message(FATAL_ERROR
        "straggler not attributed to a stall reason and a partition "
        "share in:\n${_report}")
endif()
if(NOT _report MATCHES "rebalance bound: leveled kernel time")
    message(FATAL_ERROR "no rebalance bound in:\n${_report}")
endif()
if(NOT _report MATCHES "roofline: [0-9.]+ instr/byte \\(ridge [0-9.]+\\)")
    message(FATAL_ERROR "no roofline position in:\n${_report}")
endif()
