/** @file Connected-components extension app: correctness across
 * strategies and structural behaviour. */

#include <set>

#include <gtest/gtest.h>

#include "apps/graph_apps.hh"
#include "apps/reference_algorithms.hh"
#include "common/random.hh"
#include "sparse/generators.hh"

using namespace alphapim;
using namespace alphapim::apps;

namespace
{

upmem::UpmemSystem
testSystem(unsigned dpus = 16)
{
    upmem::SystemConfig cfg;
    cfg.numDpus = dpus;
    cfg.dpu.tasklets = 8;
    return upmem::UpmemSystem(cfg);
}

/** Several disconnected ER blobs. */
sparse::CooMatrix<float>
multiComponentGraph(std::uint64_t seed)
{
    Rng rng(seed);
    sparse::CooMatrix<float> m(300, 300);
    // Three blocks of 100 vertices, wired internally only.
    for (unsigned block = 0; block < 3; ++block) {
        const NodeId base = block * 100;
        for (unsigned e = 0; e < 300; ++e) {
            const auto u =
                base + static_cast<NodeId>(rng.nextBounded(100));
            const auto v =
                base + static_cast<NodeId>(rng.nextBounded(100));
            if (u == v)
                continue;
            m.addEntry(u, v, 1.0f);
            m.addEntry(v, u, 1.0f);
        }
    }
    m.coalesce();
    return m;
}

} // namespace

TEST(ConnectedComponents, MatchesReferenceOnRandomGraph)
{
    Rng rng(1);
    const auto list = sparse::generateErdosRenyi(400, 500, rng);
    const auto adj = sparse::edgeListToSymmetricCoo(list);
    const auto sys = testSystem();
    const auto result = runConnectedComponents(sys, adj);
    EXPECT_EQ(result.levels, referenceComponents(adj));
    EXPECT_TRUE(result.converged);
}

TEST(ConnectedComponents, ThreeIsolatedBlobs)
{
    const auto adj = multiComponentGraph(2);
    const auto sys = testSystem();
    const auto result = runConnectedComponents(sys, adj);
    const auto expected = referenceComponents(adj);
    EXPECT_EQ(result.levels, expected);
    // Labels take at most 3 distinct values plus singletons.
    std::set<std::uint32_t> labels(result.levels.begin(),
                                   result.levels.end());
    EXPECT_GE(labels.size(), 3u);
}

TEST(ConnectedComponents, AllStrategiesAgree)
{
    Rng rng(3);
    const auto list = sparse::generateScaleMatched(300, 6, 15, rng);
    const auto adj = sparse::edgeListToSymmetricCoo(list);
    const auto sys = testSystem();
    const auto expected = referenceComponents(adj);
    for (auto strategy :
         {core::MxvStrategy::Adaptive, core::MxvStrategy::SpmspvOnly,
          core::MxvStrategy::SpmvOnly}) {
        AppConfig cfg;
        cfg.strategy = strategy;
        const auto result = runConnectedComponents(sys, adj, cfg);
        EXPECT_EQ(result.levels, expected)
            << core::mxvStrategyName(strategy);
    }
}

TEST(ConnectedComponents, FrontierShrinksToConvergence)
{
    Rng rng(4);
    const auto list = sparse::generateErdosRenyi(500, 1500, rng);
    const auto adj = sparse::edgeListToSymmetricCoo(list);
    const auto sys = testSystem();
    const auto result = runConnectedComponents(sys, adj);
    ASSERT_GE(result.iterations.size(), 2u);
    // First iteration starts fully dense; the last produces nothing.
    EXPECT_DOUBLE_EQ(result.iterations.front().inputDensity, 1.0);
    EXPECT_DOUBLE_EQ(result.iterations.back().outputDensity, 0.0);
}

TEST(ConnectedComponents, PathGraphTakesLinearIterations)
{
    // A path propagates the min label one hop per iteration.
    sparse::CooMatrix<float> path(20, 20);
    for (NodeId v = 0; v + 1 < 20; ++v) {
        path.addEntry(v, v + 1, 1.0f);
        path.addEntry(v + 1, v, 1.0f);
    }
    const auto sys = testSystem(4);
    const auto result = runConnectedComponents(sys, path);
    for (auto label : result.levels)
        EXPECT_EQ(label, 0u);
    EXPECT_GE(result.iterations.size(), 19u);
}
