/** @file Reference algorithm correctness on hand-checked graphs. */

#include <gtest/gtest.h>

#include "apps/reference_algorithms.hh"
#include "sparse/generators.hh"

using namespace alphapim;
using namespace alphapim::apps;

namespace
{

/**
 * Weighted test graph:
 *    0 --1-- 1 --2-- 2
 *    |               |
 *    +------10-------+      3 isolated from {0,1,2}? no: 2--1--3
 */
sparse::CooMatrix<float>
diamondGraph()
{
    sparse::CooMatrix<float> m(4, 4);
    auto add = [&](NodeId u, NodeId v, float w) {
        m.addEntry(u, v, w);
        m.addEntry(v, u, w);
    };
    add(0, 1, 1.0f);
    add(1, 2, 2.0f);
    add(0, 2, 10.0f);
    add(2, 3, 1.0f);
    m.coalesce();
    return m;
}

} // namespace

TEST(ReferenceBfs, LevelsOnDiamond)
{
    const auto levels = referenceBfs(diamondGraph(), 0);
    EXPECT_EQ(levels[0], 0u);
    EXPECT_EQ(levels[1], 1u);
    EXPECT_EQ(levels[2], 1u);
    EXPECT_EQ(levels[3], 2u);
}

TEST(ReferenceBfs, UnreachableVertices)
{
    sparse::CooMatrix<float> m(3, 3);
    m.addEntry(0, 1, 1.0f);
    m.addEntry(1, 0, 1.0f);
    const auto levels = referenceBfs(m, 0);
    EXPECT_EQ(levels[2], invalidNode);
}

TEST(ReferenceSssp, ShortestPathBeatsDirectEdge)
{
    const auto dist = referenceSssp(diamondGraph(), 0);
    EXPECT_FLOAT_EQ(dist[0], 0.0f);
    EXPECT_FLOAT_EQ(dist[1], 1.0f);
    EXPECT_FLOAT_EQ(dist[2], 3.0f); // via 1, not the 10-weight edge
    EXPECT_FLOAT_EQ(dist[3], 4.0f);
}

TEST(ReferenceSssp, UnreachableIsInfinite)
{
    sparse::CooMatrix<float> m(3, 3);
    m.addEntry(0, 1, 2.0f);
    m.addEntry(1, 0, 2.0f);
    const auto dist = referenceSssp(m, 0);
    EXPECT_TRUE(std::isinf(dist[2]));
}

TEST(NormalizeColumns, ColumnsSumToOne)
{
    const auto norm = normalizeColumns(diamondGraph());
    std::vector<float> col_sum(4, 0.0f);
    for (std::size_t k = 0; k < norm.nnz(); ++k)
        col_sum[norm.colAt(k)] += norm.valueAt(k);
    for (float s : col_sum)
        EXPECT_NEAR(s, 1.0f, 1e-6);
}

TEST(ReferencePpr, MassConservation)
{
    // With a connected graph, total rank stays ~1 under the
    // damped restart iteration.
    const auto ranks = referencePpr(diamondGraph(), 0, 0.85, 30);
    float total = 0.0f;
    for (float r : ranks)
        total += r;
    EXPECT_NEAR(total, 1.0f, 1e-3);
}

TEST(ReferencePpr, SourceHasHighestRankEarly)
{
    const auto ranks = referencePpr(diamondGraph(), 0, 0.85, 30);
    for (NodeId v = 1; v < 4; ++v)
        EXPECT_GT(ranks[0], ranks[v]);
}

TEST(ReferencePpr, ZeroIterationsIsRestartVector)
{
    const auto ranks = referencePpr(diamondGraph(), 2, 0.85, 0);
    EXPECT_FLOAT_EQ(ranks[2], 1.0f);
    EXPECT_FLOAT_EQ(ranks[0], 0.0f);
}
