/** @file Degenerate inputs: isolated sources, tiny graphs, zero
 * iterations -- the apps must behave sensibly, not crash. */

#include <cmath>

#include <gtest/gtest.h>

#include "apps/graph_apps.hh"
#include "apps/reference_algorithms.hh"

using namespace alphapim;
using namespace alphapim::apps;

namespace
{

upmem::UpmemSystem
tinySystem()
{
    upmem::SystemConfig cfg;
    cfg.numDpus = 4;
    cfg.dpu.tasklets = 4;
    return upmem::UpmemSystem(cfg);
}

/** 6-vertex graph where vertex 5 is isolated. */
sparse::CooMatrix<float>
graphWithIsolatedVertex()
{
    sparse::CooMatrix<float> m(6, 6);
    auto add = [&](NodeId u, NodeId v) {
        m.addEntry(u, v, 1.0f);
        m.addEntry(v, u, 1.0f);
    };
    add(0, 1);
    add(1, 2);
    add(2, 3);
    add(3, 4);
    return m;
}

} // namespace

TEST(AppEdgeCases, BfsFromIsolatedVertexConvergesImmediately)
{
    const auto sys = tinySystem();
    const auto adj = graphWithIsolatedVertex();
    const auto result = runBfs(sys, adj, 5);
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(result.iterations.size(), 1u);
    EXPECT_EQ(result.levels[5], 0u);
    for (NodeId v = 0; v < 5; ++v)
        EXPECT_EQ(result.levels[v], invalidNode);
}

TEST(AppEdgeCases, SsspFromIsolatedVertex)
{
    const auto sys = tinySystem();
    const auto adj = graphWithIsolatedVertex();
    const auto result = runSssp(sys, adj, 5);
    EXPECT_TRUE(result.converged);
    EXPECT_FLOAT_EQ(result.distances[5], 0.0f);
    for (NodeId v = 0; v < 5; ++v)
        EXPECT_TRUE(std::isinf(result.distances[v]));
}

TEST(AppEdgeCases, PprZeroIterations)
{
    const auto sys = tinySystem();
    const auto adj = graphWithIsolatedVertex();
    AppConfig cfg;
    cfg.pprIterations = 0;
    cfg.pprTolerance = 0.0;
    const auto result = runPpr(sys, adj, 0, cfg);
    EXPECT_TRUE(result.iterations.empty());
    EXPECT_FLOAT_EQ(result.ranks[0], 1.0f);
}

TEST(AppEdgeCases, PprOnIsolatedSourceKeepsAllMass)
{
    const auto sys = tinySystem();
    const auto adj = graphWithIsolatedVertex();
    AppConfig cfg;
    cfg.pprIterations = 5;
    cfg.pprTolerance = 0.0;
    const auto result = runPpr(sys, adj, 5, cfg);
    // The restart vector returns all rank to the isolated source.
    EXPECT_NEAR(result.ranks[5], 1.0f - 0.85f, 1e-5);
    for (NodeId v = 0; v < 5; ++v)
        EXPECT_FLOAT_EQ(result.ranks[v], 0.0f);
}

TEST(AppEdgeCases, BfsPathGraphMaxIterationCap)
{
    // A 12-vertex path takes 11 iterations; a cap of 3 must stop
    // early without converging.
    sparse::CooMatrix<float> path(12, 12);
    for (NodeId v = 0; v + 1 < 12; ++v) {
        path.addEntry(v, v + 1, 1.0f);
        path.addEntry(v + 1, v, 1.0f);
    }
    const auto sys = tinySystem();
    AppConfig cfg;
    cfg.maxIterations = 3;
    const auto result = runBfs(sys, path, 0, cfg);
    EXPECT_FALSE(result.converged);
    EXPECT_EQ(result.iterations.size(), 3u);
    EXPECT_EQ(result.levels[3], 3u);
    EXPECT_EQ(result.levels[4], invalidNode);
}

TEST(AppEdgeCases, TwoVertexGraph)
{
    sparse::CooMatrix<float> pair(2, 2);
    pair.addEntry(0, 1, 3.0f);
    pair.addEntry(1, 0, 3.0f);
    const auto sys = tinySystem();
    const auto bfs = runBfs(sys, pair, 0);
    EXPECT_EQ(bfs.levels, (std::vector<std::uint32_t>{0, 1}));
    const auto sssp = runSssp(sys, pair, 1);
    EXPECT_FLOAT_EQ(sssp.distances[0], 3.0f);
    const auto cc = runConnectedComponents(sys, pair);
    EXPECT_EQ(cc.levels, (std::vector<std::uint32_t>{0, 0}));
}

TEST(AppEdgeCasesDeath, SourceOutOfRangePanics)
{
    const auto sys = tinySystem();
    const auto adj = graphWithIsolatedVertex();
    EXPECT_DEATH(runBfs(sys, adj, 6), "out of range");
    EXPECT_DEATH(runSssp(sys, adj, 99), "out of range");
}
