/**
 * @file
 * Bit-identity gate of the batching substrate: a batched multi-source
 * BFS/SSSP run must produce, for every lane, results *bit-identical*
 * to the corresponding single-source run -- across all four kernel
 * strategies. This is the property that lets the serving subsystem
 * coalesce tenant queries without changing any tenant's answer.
 */

#include <gtest/gtest.h>

#include "apps/multi_source.hh"
#include "common/random.hh"
#include "sparse/generators.hh"
#include "sparse/graph_stats.hh"

using namespace alphapim;
using namespace alphapim::apps;

namespace
{

upmem::UpmemSystem
testSystem(unsigned dpus = 16)
{
    upmem::SystemConfig cfg;
    cfg.numDpus = dpus;
    cfg.dpu.tasklets = 8;
    return upmem::UpmemSystem(cfg);
}

sparse::CooMatrix<float>
socialGraph(std::uint64_t seed)
{
    Rng rng(seed);
    const auto list = sparse::generateScaleMatched(500, 6, 20, rng);
    return sparse::edgeListToSymmetricCoo(list);
}

std::vector<NodeId>
pickSources(NodeId n, unsigned count, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<NodeId> sources;
    for (unsigned s = 0; s < count; ++s)
        sources.push_back(
            static_cast<NodeId>(rng.nextBounded(n)));
    return sources;
}

class MultiSourceAcrossStrategies
    : public testing::TestWithParam<core::MxvStrategy>
{
};

std::string
strategyName(const testing::TestParamInfo<core::MxvStrategy> &info)
{
    std::string s = core::mxvStrategyName(info.param);
    for (char &c : s) {
        if (c == '-')
            c = '_';
    }
    return s;
}

} // namespace

TEST_P(MultiSourceAcrossStrategies, BfsLanesBitIdenticalToSequential)
{
    const auto sys = testSystem();
    const auto adj = socialGraph(7);
    AppConfig cfg;
    cfg.strategy = GetParam();

    // 16 sources including a duplicate pair: lanes must be
    // independent even when two share a vertex.
    auto sources = pickSources(adj.numRows(), 15, 11);
    sources.push_back(sources.front());

    const auto batched = runMultiBfs(sys, adj, sources, cfg);
    ASSERT_EQ(batched.levels.size(), sources.size());
    EXPECT_TRUE(batched.converged);
    for (std::size_t s = 0; s < sources.size(); ++s) {
        const auto solo = runBfs(sys, adj, sources[s], cfg);
        // operator== on the level vectors: exact, element for
        // element.
        EXPECT_EQ(batched.levels[s], solo.levels)
            << "lane " << s << " (source " << sources[s] << ")";
    }
}

TEST_P(MultiSourceAcrossStrategies, SsspLanesBitIdenticalToSequential)
{
    const auto sys = testSystem();
    Rng rng(3);
    const auto weighted = sparse::assignSymmetricWeights(
        socialGraph(9), 1.0f, 64.0f, rng);
    AppConfig cfg;
    cfg.strategy = GetParam();

    auto sources = pickSources(weighted.numRows(), kSsspLanes - 1, 5);
    sources.push_back(sources.front()); // duplicate lane

    const auto batched = runMultiSssp(sys, weighted, sources, cfg);
    ASSERT_EQ(batched.distances.size(), sources.size());
    EXPECT_TRUE(batched.converged);
    for (std::size_t s = 0; s < sources.size(); ++s) {
        const auto solo = runSssp(sys, weighted, sources[s], cfg);
        // Bit-identical floats: min is exact and the batched run
        // pairs the same addition operands the sequential run does.
        ASSERT_EQ(batched.distances[s].size(),
                  solo.distances.size());
        for (NodeId v = 0; v < solo.distances.size(); ++v) {
            EXPECT_EQ(batched.distances[s][v], solo.distances[v])
                << "lane " << s << " vertex " << v;
        }
    }
}

TEST_P(MultiSourceAcrossStrategies, SharedLaunchesNotPerSource)
{
    // The whole point of batching: iteration count tracks the max
    // frontier depth, not the number of sources.
    const auto sys = testSystem();
    const auto adj = socialGraph(13);
    AppConfig cfg;
    cfg.strategy = GetParam();

    const auto sources = pickSources(adj.numRows(), 8, 17);
    const auto batched = runMultiBfs(sys, adj, sources, cfg);

    std::size_t max_solo_iters = 0;
    for (const NodeId s : sources) {
        const auto solo = runBfs(sys, adj, s, cfg);
        max_solo_iters =
            std::max(max_solo_iters, solo.iterations.size());
    }
    EXPECT_EQ(batched.iterations.size(), max_solo_iters);
}

TEST(MultiSource, SingleSourceBatchMatchesSolo)
{
    const auto sys = testSystem();
    const auto adj = socialGraph(21);
    const NodeId source = sparse::largestComponentVertex(adj);

    const auto batched = runMultiBfs(sys, adj, {source});
    const auto solo = runBfs(sys, adj, source);
    ASSERT_EQ(batched.levels.size(), 1u);
    EXPECT_EQ(batched.levels[0], solo.levels);
    EXPECT_EQ(batched.iterations.size(), solo.iterations.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, MultiSourceAcrossStrategies,
    testing::Values(core::MxvStrategy::Adaptive,
                    core::MxvStrategy::CostModel,
                    core::MxvStrategy::SpmspvOnly,
                    core::MxvStrategy::SpmvOnly),
    strategyName);
