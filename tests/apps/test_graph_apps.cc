/**
 * @file
 * PIM application tests: results must match the reference
 * implementations on random graphs for every strategy, and the
 * iteration logs must reflect the paper's structural expectations
 * (rising then falling frontier density, convergence, phase times).
 */

#include <gtest/gtest.h>

#include "apps/graph_apps.hh"
#include "apps/reference_algorithms.hh"
#include "common/random.hh"
#include "sparse/generators.hh"
#include "sparse/graph_stats.hh"

using namespace alphapim;
using namespace alphapim::apps;

namespace
{

upmem::UpmemSystem
testSystem(unsigned dpus = 16)
{
    upmem::SystemConfig cfg;
    cfg.numDpus = dpus;
    cfg.dpu.tasklets = 8;
    return upmem::UpmemSystem(cfg);
}

sparse::CooMatrix<float>
socialGraph(std::uint64_t seed)
{
    Rng rng(seed);
    const auto list = sparse::generateScaleMatched(600, 8, 25, rng);
    return sparse::edgeListToSymmetricCoo(list);
}

sparse::CooMatrix<float>
roadGraph(std::uint64_t seed)
{
    Rng rng(seed);
    const auto list = sparse::generateRoadLattice(400, 600, rng);
    return sparse::edgeListToSymmetricCoo(list);
}

struct StrategyCase
{
    core::MxvStrategy strategy;
};

class AppsAcrossStrategies
    : public testing::TestWithParam<StrategyCase>
{
};

std::string
strategyName(const testing::TestParamInfo<StrategyCase> &info)
{
    std::string s = core::mxvStrategyName(info.param.strategy);
    for (char &c : s) {
        if (c == '-')
            c = '_';
    }
    return s;
}

} // namespace

TEST_P(AppsAcrossStrategies, BfsMatchesReference)
{
    const auto sys = testSystem();
    const auto adj = socialGraph(1);
    const NodeId source = sparse::largestComponentVertex(adj);
    AppConfig cfg;
    cfg.strategy = GetParam().strategy;

    const auto result = runBfs(sys, adj, source, cfg);
    const auto expected = referenceBfs(adj, source);
    EXPECT_EQ(result.levels, expected);
    EXPECT_TRUE(result.converged);
    EXPECT_GT(result.iterations.size(), 1u);
    EXPECT_GT(result.total.total(), 0.0);
}

TEST_P(AppsAcrossStrategies, SsspMatchesReference)
{
    Rng rng(2);
    const auto pattern = socialGraph(2);
    const auto weighted =
        sparse::assignSymmetricWeights(pattern, 1, 32, rng);
    const auto sys = testSystem();
    const NodeId source = sparse::largestComponentVertex(pattern);
    AppConfig cfg;
    cfg.strategy = GetParam().strategy;

    const auto result = runSssp(sys, weighted, source, cfg);
    const auto expected = referenceSssp(weighted, source);
    ASSERT_EQ(result.distances.size(), expected.size());
    for (NodeId v = 0; v < expected.size(); ++v) {
        if (std::isinf(expected[v]))
            EXPECT_TRUE(std::isinf(result.distances[v]));
        else
            EXPECT_NEAR(result.distances[v], expected[v], 1e-3);
    }
    EXPECT_TRUE(result.converged);
}

TEST_P(AppsAcrossStrategies, PprMatchesReference)
{
    const auto sys = testSystem();
    const auto adj = socialGraph(3);
    const NodeId source = sparse::largestComponentVertex(adj);
    AppConfig cfg;
    cfg.strategy = GetParam().strategy;
    cfg.pprIterations = 15;
    cfg.pprTolerance = 0.0; // fixed-iteration mode

    const auto result = runPpr(sys, adj, source, cfg);
    const auto expected = referencePpr(adj, source, cfg.pprAlpha, 15);
    ASSERT_EQ(result.ranks.size(), expected.size());
    for (NodeId v = 0; v < expected.size(); ++v)
        EXPECT_NEAR(result.ranks[v], expected[v], 1e-3);
    EXPECT_EQ(result.iterations.size(), 15u);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, AppsAcrossStrategies,
    testing::Values(StrategyCase{core::MxvStrategy::Adaptive},
                    StrategyCase{core::MxvStrategy::SpmspvOnly},
                    StrategyCase{core::MxvStrategy::SpmvOnly}),
    strategyName);

TEST(BfsBehaviour, FrontierDensityRisesThenFalls)
{
    const auto sys = testSystem();
    const auto adj = socialGraph(4);
    const NodeId source = sparse::largestComponentVertex(adj);
    const auto result = runBfs(sys, adj, source);

    double peak = 0.0;
    for (const auto &log : result.iterations)
        peak = std::max(peak, log.inputDensity);
    // Scale-free frontier explodes beyond the initial density, then
    // the last iteration collapses.
    EXPECT_GT(peak, result.iterations.front().inputDensity);
    EXPECT_LT(result.iterations.back().outputDensity, peak);
}

TEST(BfsBehaviour, AdaptiveSwitchesOnDenseFrontier)
{
    const auto sys = testSystem();
    const auto adj = socialGraph(5);
    const NodeId source = sparse::largestComponentVertex(adj);
    AppConfig cfg;
    cfg.switchThreshold = 0.10; // force an early switch
    const auto result = runBfs(sys, adj, source, cfg);
    EXPECT_GT(result.spmvLaunches, 0u);
    EXPECT_GT(result.spmspvLaunches, 0u);
}

TEST(BfsBehaviour, RoadGraphHasManyLowDensityIterations)
{
    const auto sys = testSystem(8);
    const auto adj = roadGraph(6);
    const NodeId source = sparse::largestComponentVertex(adj);
    const auto result = runBfs(sys, adj, source);
    EXPECT_GT(result.iterations.size(), 10u);
    double peak = 0.0;
    for (const auto &log : result.iterations)
        peak = std::max(peak, log.inputDensity);
    EXPECT_LT(peak, 0.35); // road frontiers stay sparse
}

TEST(SsspBehaviour, TakesAtLeastAsManyIterationsAsBfs)
{
    Rng rng(7);
    const auto pattern = socialGraph(7);
    const auto weighted =
        sparse::assignSymmetricWeights(pattern, 1, 64, rng);
    const auto sys = testSystem();
    const NodeId source = sparse::largestComponentVertex(pattern);
    const auto bfs = runBfs(sys, pattern, source);
    const auto sssp = runSssp(sys, weighted, source);
    EXPECT_GE(sssp.iterations.size(), bfs.iterations.size());
}

TEST(PprBehaviour, EarlyExitOnTolerance)
{
    const auto sys = testSystem();
    const auto adj = socialGraph(8);
    const NodeId source = sparse::largestComponentVertex(adj);
    AppConfig cfg;
    cfg.pprIterations = 100;
    cfg.pprTolerance = 1e-2;
    const auto result = runPpr(sys, adj, source, cfg);
    EXPECT_TRUE(result.converged);
    EXPECT_LT(result.iterations.size(), 100u);
}

TEST(PprBehaviour, FloatHeavyInstructionMix)
{
    const auto sys = testSystem();
    const auto adj = socialGraph(9);
    const NodeId source = sparse::largestComponentVertex(adj);
    const auto ppr = runPpr(sys, adj, source);
    const auto bfs = runBfs(sys, adj, source);

    using upmem::OpClass;
    const auto ppr_fmul =
        ppr.profile.aggregate.instrByClass[static_cast<std::size_t>(
            OpClass::FloatMul)];
    const auto bfs_fmul =
        bfs.profile.aggregate.instrByClass[static_cast<std::size_t>(
            OpClass::FloatMul)];
    EXPECT_GT(ppr_fmul, 0u);
    EXPECT_EQ(bfs_fmul, 0u); // boolean semiring has no float work
}

TEST(AppAccounting, TotalsEqualIterationSums)
{
    const auto sys = testSystem();
    const auto adj = socialGraph(10);
    const NodeId source = sparse::largestComponentVertex(adj);
    const auto result = runBfs(sys, adj, source);

    core::PhaseTimes sum;
    std::uint64_t ops = 0;
    for (const auto &log : result.iterations) {
        sum += log.times;
        ops += log.semiringOps;
    }
    EXPECT_DOUBLE_EQ(sum.total(), result.total.total());
    EXPECT_EQ(ops, result.totalOps);
    EXPECT_EQ(result.spmspvLaunches + result.spmvLaunches,
              result.iterations.size());
}
