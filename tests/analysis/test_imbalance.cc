/**
 * @file
 * Load-imbalance & roofline observatory tests: skew statistics
 * (Gini, CoV, percentile tail) on known distributions, straggler
 * identification and its stall / partition-share attribution, the
 * roofline classification on both sides of the ridge, and the
 * process-wide observer's launch-context join and run aggregation.
 */

#include <gtest/gtest.h>

#include "analysis/imbalance.hh"

using namespace alphapim;
using namespace alphapim::analysis;

namespace
{

upmem::DpuProfile
dpu(Cycles total, Cycles issued, Cycles mem_stall, Cycles sync_stall,
    std::uint64_t instr, Bytes mram)
{
    upmem::DpuProfile p;
    p.totalCycles = total;
    p.issuedCycles = issued;
    p.stallCycles[static_cast<std::size_t>(
        upmem::StallReason::Memory)] = mem_stall;
    p.stallCycles[static_cast<std::size_t>(
        upmem::StallReason::Sync)] = sync_stall;
    p.instrByClass[static_cast<std::size_t>(upmem::OpClass::IntAdd)] =
        instr;
    p.mramReadBytes = mram;
    p.activeThreadCycles = static_cast<double>(total) * 8.0;
    return p;
}

sparse::PartitionShare
share(std::uint64_t rows, std::uint64_t nnz, Bytes bytes)
{
    sparse::PartitionShare s;
    s.rows = rows;
    s.nnz = nnz;
    s.bytes = bytes;
    return s;
}

} // namespace

TEST(SkewStats, LeveledDistributionHasNoSkew)
{
    const SkewStats s = computeSkew({5.0, 5.0, 5.0, 5.0});
    EXPECT_EQ(s.count, 4u);
    EXPECT_DOUBLE_EQ(s.mean, 5.0);
    EXPECT_DOUBLE_EQ(s.max, 5.0);
    EXPECT_DOUBLE_EQ(s.cov, 0.0);
    EXPECT_DOUBLE_EQ(s.gini, 0.0);
    EXPECT_DOUBLE_EQ(s.maxOverMean(), 1.0);
    EXPECT_DOUBLE_EQ(s.p99OverMean(), 1.0);
}

TEST(SkewStats, GiniOfExtremeConcentration)
{
    // One DPU holds everything: Gini -> (n-1)/n = 0.75 for n = 4.
    const SkewStats s = computeSkew({0.0, 0.0, 0.0, 100.0});
    EXPECT_DOUBLE_EQ(s.gini, 0.75);
    EXPECT_DOUBLE_EQ(s.maxOverMean(), 4.0);
}

TEST(SkewStats, GiniOfKnownTwoPointDistribution)
{
    // {1, 3}: Gini = 2*(1*1 + 2*3)/(2*4) - 3/2 = 0.25.
    const SkewStats s = computeSkew({1.0, 3.0});
    EXPECT_DOUBLE_EQ(s.gini, 0.25);
}

TEST(SkewStats, EmptyAndZeroVectorsAreSafe)
{
    const SkewStats empty = computeSkew({});
    EXPECT_EQ(empty.count, 0u);
    EXPECT_DOUBLE_EQ(empty.maxOverMean(), 1.0);

    const SkewStats zeros = computeSkew({0.0, 0.0});
    EXPECT_DOUBLE_EQ(zeros.gini, 0.0);
    EXPECT_DOUBLE_EQ(zeros.cov, 0.0);
    EXPECT_DOUBLE_EQ(zeros.maxOverMean(), 1.0);
}

TEST(LaunchImbalance, StragglerAttributedToStallAndShare)
{
    // DPU 2 is the straggler: 4x the cycles of its peers, mostly
    // memory-stalled, holding 3x the mean nnz.
    const std::vector<upmem::DpuProfile> profiles = {
        dpu(1000, 800, 100, 50, 800, 4000),
        dpu(1000, 750, 150, 50, 750, 4000),
        dpu(4000, 1100, 2800, 100, 1100, 16000),
        dpu(1000, 700, 200, 50, 700, 4000),
    };
    const std::vector<sparse::PartitionShare> shares = {
        share(100, 500, 8000), share(100, 500, 8000),
        share(100, 1800, 28000), share(100, 200, 4000)};
    const upmem::DpuConfig cfg;
    const LaunchImbalance li =
        computeLaunchImbalance("CSC-2D", profiles, shares, cfg);

    EXPECT_EQ(li.kernel, "CSC-2D");
    EXPECT_EQ(li.dpus, 4u);
    EXPECT_EQ(li.stragglerDpu, 2u);
    // 4000 cycles over a mean of 1750.
    EXPECT_NEAR(li.stragglerCyclesOverMean, 4000.0 / 1750.0, 1e-12);
    EXPECT_EQ(li.stragglerStall, "memory");
    EXPECT_NEAR(li.stragglerStallFraction, 2800.0 / 4000.0, 1e-12);
    // 1800 nnz over a mean share of 750.
    EXPECT_NEAR(li.stragglerNnzOverMean, 1800.0 / 750.0, 1e-12);
    EXPECT_NEAR(li.rebalanceSpeedup, 4000.0 / 1750.0, 1e-12);
    EXPECT_GT(li.cycles.gini, 0.0);
    EXPECT_GT(li.nnz.gini, 0.0);
}

TEST(LaunchImbalance, StragglerTieBreaksToLowestDpu)
{
    const std::vector<upmem::DpuProfile> profiles = {
        dpu(500, 400, 50, 0, 400, 100),
        dpu(900, 700, 100, 0, 700, 100),
        dpu(900, 700, 100, 0, 700, 100),
    };
    const LaunchImbalance li = computeLaunchImbalance(
        "", profiles, {}, upmem::DpuConfig{});
    EXPECT_EQ(li.stragglerDpu, 1u);
}

TEST(LaunchImbalance, MismatchedSharesDisableTheJoin)
{
    const std::vector<upmem::DpuProfile> profiles = {
        dpu(1000, 800, 100, 0, 800, 100),
        dpu(2000, 900, 1000, 0, 900, 100),
    };
    const LaunchImbalance li = computeLaunchImbalance(
        "k", profiles, {share(1, 2, 3)}, upmem::DpuConfig{});
    EXPECT_EQ(li.nnz.count, 0u);
    EXPECT_DOUBLE_EQ(li.stragglerNnzOverMean, 0.0);
}

TEST(LaunchImbalance, IdleDpusCountTowardTheSkew)
{
    // Half the fleet idle: that IS the imbalance.
    const std::vector<upmem::DpuProfile> profiles = {
        dpu(1000, 800, 100, 0, 800, 100), upmem::DpuProfile{},
        dpu(1000, 800, 100, 0, 800, 100), upmem::DpuProfile{}};
    const LaunchImbalance li = computeLaunchImbalance(
        "k", profiles, {}, upmem::DpuConfig{});
    EXPECT_EQ(li.cycles.count, 4u);
    EXPECT_DOUBLE_EQ(li.cycles.maxOverMean(), 2.0);
}

TEST(Roofline, LowIntensityLaunchIsMemoryBound)
{
    upmem::DpuConfig cfg;
    cfg.clockHz = 350e6;
    cfg.dmaBytesPerCycle = 2.0; // ridge at 0.5 instr/byte
    // 100 instructions over 1000 bytes: intensity 0.1 < 0.5.
    const std::vector<upmem::DpuProfile> profiles = {
        dpu(1000, 100, 900, 0, 100, 1000)};
    const LaunchImbalance li =
        computeLaunchImbalance("k", profiles, {}, cfg);
    EXPECT_NEAR(li.roofline.opIntensity, 0.1, 1e-12);
    EXPECT_NEAR(li.roofline.ridgeIntensity, 0.5, 1e-12);
    EXPECT_TRUE(li.roofline.memoryBound);
    // Bandwidth ceiling at this intensity: 0.1 * 1 * 2 * clock.
    EXPECT_NEAR(li.roofline.bandwidthCeilingOpsPerSec,
                0.1 * 2.0 * 350e6, 1e-3);
    // Achieved: 100 instr over 1000 cycles of wall time.
    EXPECT_NEAR(li.roofline.achievedOpsPerSec,
                100.0 / (1000.0 / 350e6), 1e-3);
}

TEST(Roofline, HighIntensityLaunchIsComputeBound)
{
    upmem::DpuConfig cfg;
    cfg.dmaBytesPerCycle = 2.0;
    // 1000 instructions over 100 bytes: intensity 10 > 0.5.
    const std::vector<upmem::DpuProfile> profiles = {
        dpu(2000, 1000, 500, 0, 1000, 100)};
    const LaunchImbalance li =
        computeLaunchImbalance("k", profiles, {}, cfg);
    EXPECT_FALSE(li.roofline.memoryBound);
    EXPECT_NEAR(li.roofline.opIntensity, 10.0, 1e-12);
}

TEST(Roofline, ZeroByteLaunchReportsComputeBoundAtZeroIntensity)
{
    const std::vector<upmem::DpuProfile> profiles = {
        dpu(1000, 800, 100, 0, 800, 0)};
    const LaunchImbalance li = computeLaunchImbalance(
        "k", profiles, {}, upmem::DpuConfig{});
    EXPECT_DOUBLE_EQ(li.roofline.opIntensity, 0.0);
    EXPECT_FALSE(li.roofline.memoryBound);
    EXPECT_DOUBLE_EQ(li.roofline.bandwidthCeilingOpsPerSec,
                     li.roofline.pipelineCeilingOpsPerSec);
}

TEST(ImbalanceObserver, DisabledObserverRecordsNothing)
{
    ImbalanceObserver obs;
    obs.recordLaunch({dpu(1000, 800, 100, 0, 800, 100)},
                     upmem::DpuConfig{});
    EXPECT_TRUE(obs.launches().empty());
    EXPECT_EQ(obs.collectRun().launches, 0u);
}

TEST(ImbalanceObserver, LaunchContextJoinsOnceThenClears)
{
    ImbalanceObserver obs;
    obs.setEnabled(true);
    obs.beginRun();
    obs.setLaunchContext(
        "CSC-2D", {share(10, 100, 800), share(10, 300, 2400)});
    const std::vector<upmem::DpuProfile> profiles = {
        dpu(1000, 800, 100, 0, 800, 100),
        dpu(3000, 900, 2000, 0, 900, 300)};
    obs.recordLaunch(profiles, upmem::DpuConfig{});
    obs.recordLaunch(profiles, upmem::DpuConfig{});

    const auto launches = obs.launches();
    ASSERT_EQ(launches.size(), 2u);
    // First launch consumed the context...
    EXPECT_EQ(launches[0].kernel, "CSC-2D");
    EXPECT_EQ(launches[0].nnz.count, 2u);
    EXPECT_NEAR(launches[0].stragglerNnzOverMean, 300.0 / 200.0,
                1e-12);
    // ...the second had none pending.
    EXPECT_TRUE(launches[1].kernel.empty());
    EXPECT_EQ(launches[1].nnz.count, 0u);
}

TEST(ImbalanceObserver, CollectRunAggregatesStragglerAndBound)
{
    ImbalanceObserver obs;
    obs.setEnabled(true);
    obs.beginRun();
    // Launch 1: leveled. Launch 2: DPU 1 straggles 2x.
    obs.recordLaunch({dpu(1000, 800, 100, 0, 800, 500),
                      dpu(1000, 800, 100, 0, 800, 500)},
                     upmem::DpuConfig{});
    obs.setLaunchContext("CSC-2D",
                         {share(10, 100, 800), share(10, 300, 2400)});
    obs.recordLaunch({dpu(1000, 800, 100, 0, 800, 500),
                      dpu(3000, 900, 2000, 0, 900, 1500)},
                     upmem::DpuConfig{});

    const RunImbalance run = obs.collectRun();
    EXPECT_EQ(run.launches, 2u);
    // Summed max (1000 + 3000) over summed mean (1000 + 2000).
    EXPECT_NEAR(run.stragglerFactor, 4000.0 / 3000.0, 1e-12);
    EXPECT_EQ(run.stragglerKernel, "CSC-2D");
    EXPECT_EQ(run.stragglerDpu, 1u);
    EXPECT_NEAR(run.stragglerCyclesOverMean, 1.5, 1e-12);
    EXPECT_EQ(run.stragglerStall, "memory");
    // kernel wall = 4000 cycles / clock; leveled = 3000 / clock.
    const double clock = upmem::DpuConfig{}.clockHz;
    EXPECT_NEAR(run.kernelSeconds, 4000.0 / clock, 1e-15);
    EXPECT_NEAR(run.leveledKernelSeconds, 3000.0 / clock, 1e-15);
    EXPECT_GT(run.kernelSeconds, run.leveledKernelSeconds);

    // beginRun drops the accumulated state.
    obs.beginRun();
    EXPECT_EQ(obs.collectRun().launches, 0u);
}

TEST(ImbalanceObserver, StallNamesMatchUpmemSpellings)
{
    // The analysis-side stall table must mirror stallReasonName()
    // (the libraries cannot link to each other to share it).
    for (unsigned r = 0;
         r < static_cast<unsigned>(upmem::StallReason::NumReasons);
         ++r) {
        const auto reason = static_cast<upmem::StallReason>(r);
        upmem::DpuProfile p;
        p.totalCycles = 100;
        p.stallCycles[r] = 50;
        const LaunchImbalance li = computeLaunchImbalance(
            "k", {p}, {}, upmem::DpuConfig{});
        EXPECT_EQ(li.stragglerStall, upmem::stallReasonName(reason));
    }
}
