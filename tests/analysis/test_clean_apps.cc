/**
 * @file
 * pim-verify end-to-end check: with the global checker enabled, the
 * kernels backing all four graph applications -- across every MxV
 * strategy, so each SpMV/SpMSpV variant gets exercised -- must
 * produce traces with zero findings. This is the regression gate
 * the CI pim-verify job runs against the bundled datasets; here it
 * runs on small random graphs.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/checker.hh"
#include "apps/graph_apps.hh"
#include "common/random.hh"
#include "sparse/generators.hh"
#include "sparse/graph_stats.hh"

using namespace alphapim;
using namespace alphapim::apps;

namespace
{

upmem::UpmemSystem
testSystem(unsigned dpus = 16)
{
    upmem::SystemConfig cfg;
    cfg.numDpus = dpus;
    cfg.dpu.tasklets = 8;
    return upmem::UpmemSystem(cfg);
}

sparse::CooMatrix<float>
socialGraph(std::uint64_t seed)
{
    Rng rng(seed);
    const auto list = sparse::generateScaleMatched(600, 8, 25, rng);
    return sparse::edgeListToSymmetricCoo(list);
}

/** Global-checker guard: enable on entry, disable + clear on exit. */
class CleanApps : public ::testing::Test
{
  protected:
    CleanApps()
    {
        analysis::checker().clear();
        analysis::checker().enable(analysis::CheckOptions{});
    }

    ~CleanApps() override
    {
        analysis::checker().disable();
        analysis::checker().clear();
    }

    /** Assert the run so far produced zero findings; print any. */
    static void
    expectClean(const char *what)
    {
        const auto rep = analysis::checker().report();
        std::ostringstream os;
        for (const auto &f : rep.findings)
            os << "\n  " << analysis::describeFinding(f);
        EXPECT_EQ(rep.total(), 0u)
            << what << " produced findings:" << os.str();
        EXPECT_GT(rep.dpusChecked, 0u)
            << what << " was not analyzed at all";
    }
};

const core::MxvStrategy kStrategies[] = {
    core::MxvStrategy::Adaptive,
    core::MxvStrategy::SpmspvOnly,
    core::MxvStrategy::SpmvOnly,
};

} // namespace

TEST_F(CleanApps, BfsTracesHaveNoFindings)
{
    const auto sys = testSystem();
    const auto adj = socialGraph(1);
    const NodeId source = sparse::largestComponentVertex(adj);
    for (const auto strategy : kStrategies) {
        AppConfig cfg;
        cfg.strategy = strategy;
        runBfs(sys, adj, source, cfg);
    }
    expectClean("bfs");
}

TEST_F(CleanApps, SsspTracesHaveNoFindings)
{
    const auto sys = testSystem();
    Rng rng(7);
    const auto adj = sparse::assignSymmetricWeights(
        socialGraph(2), 1.0f, 64.0f, rng);
    const NodeId source = sparse::largestComponentVertex(adj);
    for (const auto strategy : kStrategies) {
        AppConfig cfg;
        cfg.strategy = strategy;
        runSssp(sys, adj, source, cfg);
    }
    expectClean("sssp");
}

TEST_F(CleanApps, PprTracesHaveNoFindings)
{
    const auto sys = testSystem();
    const auto adj = socialGraph(3);
    const NodeId source = sparse::largestComponentVertex(adj);
    for (const auto strategy : kStrategies) {
        AppConfig cfg;
        cfg.strategy = strategy;
        cfg.pprIterations = 5;
        runPpr(sys, adj, source, cfg);
    }
    expectClean("ppr");
}

TEST_F(CleanApps, ConnectedComponentsTracesHaveNoFindings)
{
    const auto sys = testSystem();
    const auto adj = socialGraph(4);
    for (const auto strategy : kStrategies) {
        AppConfig cfg;
        cfg.strategy = strategy;
        runConnectedComponents(sys, adj, cfg);
    }
    expectClean("cc");
}
