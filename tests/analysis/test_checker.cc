/**
 * @file
 * pim-verify unit tests: each seeded defect class produces exactly
 * the expected finding kind, clean synchronization produces none,
 * and the JSON report round-trips.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "analysis/checker.hh"
#include "telemetry/json.hh"
#include "telemetry/metrics.hh"
#include "upmem/tasklet_ctx.hh"

using namespace alphapim;
using namespace alphapim::analysis;
using namespace alphapim::upmem;

namespace
{

std::uint64_t
countOf(const AnalysisReport &r, FindingKind k)
{
    return r.counts[static_cast<unsigned>(k)];
}

/** True when `r` contains only findings of kind `k` (and at least
 * one of them). */
::testing::AssertionResult
onlyKind(const AnalysisReport &r, FindingKind k)
{
    if (countOf(r, k) == 0) {
        return ::testing::AssertionFailure()
               << "no " << findingKindName(k) << " finding";
    }
    if (r.total() != countOf(r, k)) {
        std::ostringstream os;
        for (const auto &f : r.findings)
            os << "\n  " << describeFinding(f);
        return ::testing::AssertionFailure()
               << "unexpected extra findings:" << os.str();
    }
    return ::testing::AssertionSuccess();
}

} // namespace

/** Fresh, fully-enabled checker per test. */
class CheckerTest : public ::testing::Test
{
  protected:
    CheckerTest() { c.enable(CheckOptions{}); }

    TraceChecker c;
    DpuConfig cfg;
};

TEST(Checker, DisabledIsNoOp)
{
    TraceChecker c;
    DpuConfig cfg;
    std::vector<TaskletTrace> traces(2);
    traces[0].dmaRead(12); // would be illegal
    c.analyzeDpu(0, traces, cfg);
    EXPECT_EQ(c.findingCount(), 0u);
    EXPECT_EQ(c.report().dpusChecked, 0u);
}

TEST_F(CheckerTest, SeededWramRaceIsDetected)
{
    std::vector<TaskletTrace> traces(2);
    traces[0].wramAccess(OpClass::StoreWram, 1, 0x4000, 4);
    traces[1].wramAccess(OpClass::StoreWram, 1, 0x4000, 4);
    c.analyzeDpu(0, traces, cfg);

    const auto rep = c.report();
    EXPECT_TRUE(onlyKind(rep, FindingKind::DataRace));
    ASSERT_FALSE(rep.findings.empty());
    EXPECT_EQ(rep.findings[0].space, MemSpace::Wram);
    EXPECT_EQ(rep.findings[0].addr, 0x4000u);
}

TEST_F(CheckerTest, SeededMramRaceIsDetected)
{
    std::vector<TaskletTrace> traces(2);
    traces[0].dmaWrite(16, 0x100); // [0x100, 0x110)
    traces[1].dmaRead(8, 0x108);   // overlaps the write
    c.analyzeDpu(0, traces, cfg);
    EXPECT_TRUE(onlyKind(c.report(), FindingKind::DataRace));
}

TEST_F(CheckerTest, CommonLockPreventsRace)
{
    std::vector<TaskletTrace> traces(2);
    for (auto &t : traces) {
        t.mutexLock(1);
        t.wramAccess(OpClass::StoreWram, 1, 0x4000, 4);
        t.mutexUnlock(1);
    }
    c.analyzeDpu(0, traces, cfg);
    EXPECT_EQ(c.findingCount(), 0u);
}

TEST_F(CheckerTest, DisjointLocksDoNotPreventRace)
{
    std::vector<TaskletTrace> traces(2);
    for (unsigned t = 0; t < 2; ++t) {
        traces[t].mutexLock(t); // different mutex per tasklet
        traces[t].wramAccess(OpClass::StoreWram, 1, 0x4000, 4);
        traces[t].mutexUnlock(t);
    }
    c.analyzeDpu(0, traces, cfg);
    EXPECT_TRUE(onlyKind(c.report(), FindingKind::DataRace));
}

TEST_F(CheckerTest, BarrierOrdersAccessesAcrossRounds)
{
    std::vector<TaskletTrace> traces(2);
    // t0 writes before the barrier, t1 after it: happens-before.
    traces[0].wramAccess(OpClass::StoreWram, 1, 0x4000, 4);
    traces[0].barrier(0);
    traces[1].barrier(0);
    traces[1].wramAccess(OpClass::StoreWram, 1, 0x4000, 4);
    c.analyzeDpu(0, traces, cfg);
    EXPECT_EQ(c.findingCount(), 0u);
}

TEST_F(CheckerTest, ConcurrentReadsDoNotRace)
{
    std::vector<TaskletTrace> traces(2);
    traces[0].wramAccess(OpClass::LoadWram, 1, 0x4000, 4);
    traces[1].wramAccess(OpClass::LoadWram, 1, 0x4000, 4);
    c.analyzeDpu(0, traces, cfg);
    EXPECT_EQ(c.findingCount(), 0u);
}

TEST_F(CheckerTest, SpacesAreDistinct)
{
    std::vector<TaskletTrace> traces(2);
    // Same numeric address in WRAM and MRAM: not a conflict.
    traces[0].wramAccess(OpClass::StoreWram, 1, 0x4000, 8);
    traces[1].dmaWrite(8, 0x4000);
    c.analyzeDpu(0, traces, cfg);
    EXPECT_EQ(c.findingCount(), 0u);
}

TEST_F(CheckerTest, DoubleLockIsDetected)
{
    std::vector<TaskletTrace> traces(1);
    traces[0].mutexLock(3);
    traces[0].mutexLock(3);
    traces[0].mutexUnlock(3);
    c.analyzeDpu(0, traces, cfg);
    const auto rep = c.report();
    EXPECT_TRUE(onlyKind(rep, FindingKind::DoubleLock));
    ASSERT_FALSE(rep.findings.empty());
    EXPECT_EQ(rep.findings[0].id, 3u);
}

TEST_F(CheckerTest, UnlockUnheldIsDetected)
{
    std::vector<TaskletTrace> traces(1);
    traces[0].mutexUnlock(5);
    c.analyzeDpu(0, traces, cfg);
    EXPECT_TRUE(onlyKind(c.report(), FindingKind::UnlockUnheld));
}

TEST_F(CheckerTest, LockHeldAtExitIsDetected)
{
    std::vector<TaskletTrace> traces(1);
    traces[0].mutexLock(7);
    c.analyzeDpu(0, traces, cfg);
    EXPECT_TRUE(onlyKind(c.report(), FindingKind::LockHeldAtExit));
}

TEST_F(CheckerTest, LockOrderCycleIsDetected)
{
    std::vector<TaskletTrace> traces(2);
    traces[0].mutexLock(1);
    traces[0].mutexLock(2);
    traces[0].mutexUnlock(2);
    traces[0].mutexUnlock(1);
    traces[1].mutexLock(2);
    traces[1].mutexLock(1);
    traces[1].mutexUnlock(1);
    traces[1].mutexUnlock(2);
    c.analyzeDpu(0, traces, cfg);
    EXPECT_TRUE(onlyKind(c.report(), FindingKind::LockOrderCycle));
}

TEST_F(CheckerTest, ConsistentLockOrderHasNoCycle)
{
    std::vector<TaskletTrace> traces(2);
    for (auto &t : traces) {
        t.mutexLock(1);
        t.mutexLock(2);
        t.mutexUnlock(2);
        t.mutexUnlock(1);
    }
    c.analyzeDpu(0, traces, cfg);
    EXPECT_EQ(c.findingCount(), 0u);
}

TEST_F(CheckerTest, BarrierDivergenceIsDetected)
{
    std::vector<TaskletTrace> traces(3);
    traces[0].barrier(0);
    traces[0].barrier(0);
    traces[1].barrier(0);
    // traces[2] stays empty: exempt, like the replay scheduler.
    c.analyzeDpu(0, traces, cfg);
    EXPECT_TRUE(
        onlyKind(c.report(), FindingKind::BarrierDivergence));
}

TEST_F(CheckerTest, IllegalDmaSizesAreDetected)
{
    std::vector<TaskletTrace> traces(1);
    traces[0].dmaRead(12);   // granularity violation
    traces[0].dmaWrite(0);   // zero length
    traces[0].dmaRead(3000); // above the hardware maximum
    c.analyzeDpu(0, traces, cfg);
    const auto rep = c.report();
    EXPECT_TRUE(onlyKind(rep, FindingKind::IllegalDma));
    EXPECT_EQ(countOf(rep, FindingKind::IllegalDma), 3u);
}

TEST_F(CheckerTest, StagingOverflowIsDetected)
{
    cfg.wramChunkBytes = 64;
    std::vector<TaskletTrace> traces(1);
    traces[0].dmaRead(128); // legal size, but > staging buffer
    c.analyzeDpu(0, traces, cfg);
    EXPECT_TRUE(onlyKind(c.report(), FindingKind::IllegalDma));
}

TEST_F(CheckerTest, MisalignedDmaAddressIsDetected)
{
    std::vector<TaskletTrace> traces(1);
    traces[0].dmaRead(8, 0x104 + 2); // size fine, address not
    c.analyzeDpu(0, traces, cfg);
    EXPECT_TRUE(onlyKind(c.report(), FindingKind::IllegalDma));
}

TEST(Checker, FamilySelectionIsHonoured)
{
    TraceChecker c;
    CheckOptions sel;
    ASSERT_TRUE(CheckOptions::parseList("race,lock", sel));
    c.enable(sel);
    DpuConfig cfg;
    std::vector<TaskletTrace> traces(1);
    traces[0].dmaRead(12); // illegal, but dma checks are off
    c.analyzeDpu(0, traces, cfg);
    EXPECT_EQ(c.findingCount(), 0u);
}

TEST(Checker, ParseListVariants)
{
    CheckOptions sel;
    EXPECT_TRUE(CheckOptions::parseList("", sel));
    EXPECT_TRUE(sel.race && sel.lock && sel.barrier && sel.dma);

    EXPECT_TRUE(CheckOptions::parseList("dma", sel));
    EXPECT_TRUE(sel.dma);
    EXPECT_FALSE(sel.race || sel.lock || sel.barrier);

    EXPECT_TRUE(CheckOptions::parseList("race,barrier", sel));
    EXPECT_TRUE(sel.race && sel.barrier);
    EXPECT_FALSE(sel.lock || sel.dma);

    std::string error;
    EXPECT_FALSE(CheckOptions::parseList("bogus", sel, &error));
    EXPECT_NE(error.find("bogus"), std::string::npos);
}

TEST(Checker, MetricsCountersAreRecorded)
{
    auto &m = telemetry::metrics();
    m.clear();
    m.setEnabled(true);
    {
        TraceChecker c;
        c.enable(CheckOptions{});
        DpuConfig cfg;
        std::vector<TaskletTrace> traces(1);
        traces[0].mutexUnlock(9);
        c.analyzeDpu(0, traces, cfg);
    }
    EXPECT_EQ(m.counterValue("analysis.dpus_checked"), 1u);
    EXPECT_EQ(m.counterValue("analysis.findings"), 1u);
    EXPECT_EQ(m.counterValue("analysis.findings.unlock_unheld"), 1u);
    m.setEnabled(false);
    m.clear();
}

TEST_F(CheckerTest, JsonReportRoundTrips)
{
    std::vector<TaskletTrace> traces(2);
    traces[0].wramAccess(OpClass::StoreWram, 1, 0x4000, 4);
    traces[1].wramAccess(OpClass::StoreWram, 1, 0x4000, 4);
    c.analyzeDpu(3, traces, cfg);

    const std::string path =
        ::testing::TempDir() + "pim_verify_report.json";
    ASSERT_TRUE(c.writeReport(path));

    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    telemetry::JsonValue doc;
    std::string error;
    ASSERT_TRUE(telemetry::JsonValue::parse(buf.str(), doc, &error))
        << error;
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.find("schema")->asString(),
              "alpha-pim-analysis-v1");
    EXPECT_EQ(doc.find("dpus_checked")->asNumber(), 1.0);
    EXPECT_GE(doc.find("total_findings")->asNumber(), 1.0);
    const auto *findings = doc.find("findings");
    ASSERT_TRUE(findings != nullptr && findings->isArray());
    ASSERT_FALSE(findings->items().empty());
    const auto &first = findings->items()[0];
    EXPECT_EQ(first.find("kind")->asString(), "data_race");
    EXPECT_EQ(first.find("dpu")->asNumber(), 3.0);
    const auto *counts = doc.find("counts");
    ASSERT_TRUE(counts != nullptr && counts->isObject());
    EXPECT_GE(counts->find("data_race")->asNumber(), 1.0);
}

TEST_F(CheckerTest, RepeatedFindingsAreDedupedButCounted)
{
    std::vector<TaskletTrace> traces(1);
    traces[0].mutexUnlock(4);
    // The same defect on the same DPU, analyzed twice (as a bench
    // binary re-running a configuration would): one retained finding,
    // two counted occurrences.
    c.analyzeDpu(0, traces, cfg);
    c.analyzeDpu(0, traces, cfg);
    const auto rep = c.report();
    EXPECT_EQ(rep.findings.size(), 1u);
    EXPECT_EQ(countOf(rep, FindingKind::UnlockUnheld), 2u);
    EXPECT_EQ(rep.total(), 2u);
}

TEST_F(CheckerTest, FindingsAreSortedDeterministically)
{
    // Feed DPUs in descending order with mixed kinds; the report must
    // come out in (kind, dpu, tasklet, addr) order regardless.
    for (const unsigned dpu : {5u, 1u, 3u}) {
        std::vector<TaskletTrace> traces(2);
        traces[0].wramAccess(OpClass::StoreWram, 1, 0x4000, 4);
        traces[1].wramAccess(OpClass::StoreWram, 1, 0x4000, 4);
        traces[1].mutexUnlock(2);
        c.analyzeDpu(dpu, traces, cfg);
    }
    const auto rep = c.report();
    ASSERT_GE(rep.findings.size(), 2u);
    for (std::size_t i = 1; i < rep.findings.size(); ++i) {
        EXPECT_FALSE(
            findingLess(rep.findings[i], rep.findings[i - 1]));
        EXPECT_FALSE(
            findingEquals(rep.findings[i - 1], rep.findings[i]));
    }
    // Byte-stable report: a second checker fed the same defects in a
    // different DPU order renders the identical JSON document.
    TraceChecker c2;
    c2.enable(CheckOptions{});
    for (const unsigned dpu : {1u, 3u, 5u}) {
        std::vector<TaskletTrace> traces(2);
        traces[0].wramAccess(OpClass::StoreWram, 1, 0x4000, 4);
        traces[1].wramAccess(OpClass::StoreWram, 1, 0x4000, 4);
        traces[1].mutexUnlock(2);
        c2.analyzeDpu(dpu, traces, cfg);
    }
    EXPECT_EQ(c.reportJson(), c2.reportJson());
}

TEST_F(CheckerTest, InjectedFindingIsCountedAndDeduped)
{
    Finding f;
    f.kind = FindingKind::DataRace;
    f.dpu = 2;
    f.tasklet = 1;
    f.detail = "synthetic";
    c.injectFinding(f);
    c.injectFinding(f); // identical: counted, not re-retained
    const auto rep = c.report();
    EXPECT_EQ(rep.findings.size(), 1u);
    EXPECT_EQ(countOf(rep, FindingKind::DataRace), 2u);
    EXPECT_EQ(rep.findings[0].detail, "synthetic");
}

TEST_F(CheckerTest, ClearResetsAccumulation)
{
    std::vector<TaskletTrace> traces(1);
    traces[0].mutexUnlock(1);
    c.analyzeDpu(0, traces, cfg);
    EXPECT_GT(c.findingCount(), 0u);
    c.clear();
    EXPECT_EQ(c.findingCount(), 0u);
    EXPECT_EQ(c.report().dpusChecked, 0u);
}
