/**
 * @file
 * Critical-path and what-if estimator tests against hand-computed
 * DAGs: a diamond with a known longest path, deterministic
 * tie-breaking, the launch-spine DAG of a synthetic timeline whose
 * attribution must sum to total model time, and the three overlap
 * bounds evaluated on pencil-and-paper launch sequences.
 */

#include <vector>

#include <gtest/gtest.h>

#include "analysis/critical_path.hh"
#include "telemetry/timeline.hh"

using namespace alphapim;
using namespace alphapim::analysis;
using namespace alphapim::telemetry;

namespace
{

TimelineSpan
span(const char *name, const char *category, std::uint32_t pid,
     std::uint32_t tid, Seconds start, Seconds duration)
{
    TimelineSpan s;
    s.name = name;
    s.category = category;
    s.pid = pid;
    s.tid = tid;
    s.start = start;
    s.duration = duration;
    return s;
}

/** Two launches, [0, 10) and [10, 20): load 2, kernel 3,
 * retrieve 1, merge 4 each, with one rank span per transfer phase
 * and one DPU span per kernel phase. */
Timeline
twoLaunchTimeline()
{
    std::vector<TimelineSpan> spans;
    for (int k = 0; k < 2; ++k) {
        const Seconds t0 = 10.0 * k;
        spans.push_back(
            span("spmv", "multiply", pidEngine, 0, t0, 10.0));
        spans.push_back(
            span("load", "phase", pidEngine, 0, t0, 2.0));
        spans.push_back(
            span("kernel", "phase", pidEngine, 0, t0 + 2.0, 3.0));
        spans.push_back(
            span("retrieve", "phase", pidEngine, 0, t0 + 5.0, 1.0));
        spans.push_back(
            span("merge", "phase", pidEngine, 0, t0 + 6.0, 4.0));
        spans.push_back(
            span("scatter", "xfer", pidRank, 0, t0, 2.0));
        spans.push_back(
            span("kernel", "dpu", pidDpu, 0, t0 + 2.0, 3.0));
        spans.push_back(
            span("gather", "xfer", pidRank, 0, t0 + 5.0, 1.0));
    }
    return buildTimeline(spans);
}

} // namespace

TEST(CriticalPath, EmptyDagYieldsEmptyPath)
{
    const CriticalPath path = computeCriticalPath(LaunchDag{});
    EXPECT_DOUBLE_EQ(path.length, 0.0);
    EXPECT_TRUE(path.nodes.empty());
    EXPECT_DOUBLE_EQ(path.transferFraction(), 0.0);
}

TEST(CriticalPath, DiamondPicksTheLongerArm)
{
    // A(2) -> {B(3), C(4)} -> D(1): the longest path is A,C,D = 7.
    LaunchDag dag;
    const auto a = dag.addNode("A", PathPhase::Load, 2.0);
    const auto b = dag.addNode("B", PathPhase::Kernel, 3.0);
    const auto c = dag.addNode("C", PathPhase::Kernel, 4.0);
    const auto d = dag.addNode("D", PathPhase::Merge, 1.0);
    dag.addEdge(a, b);
    dag.addEdge(a, c);
    dag.addEdge(b, d);
    dag.addEdge(c, d);

    const CriticalPath path = computeCriticalPath(dag);
    EXPECT_DOUBLE_EQ(path.length, 7.0);
    ASSERT_EQ(path.nodes.size(), 3u);
    EXPECT_EQ(path.nodes[0], a);
    EXPECT_EQ(path.nodes[1], c);
    EXPECT_EQ(path.nodes[2], d);
    EXPECT_DOUBLE_EQ(
        path.phaseSeconds[static_cast<std::size_t>(PathPhase::Load)],
        2.0);
    EXPECT_DOUBLE_EQ(
        path.phaseSeconds[static_cast<std::size_t>(
            PathPhase::Kernel)],
        4.0);
    EXPECT_DOUBLE_EQ(
        path.phaseSeconds[static_cast<std::size_t>(PathPhase::Merge)],
        1.0);
    EXPECT_DOUBLE_EQ(path.transferFraction(), 2.0 / 7.0);
}

TEST(CriticalPath, EqualArmsBreakTiesDeterministically)
{
    // Both arms weigh 3: the smaller node index must win, every run.
    LaunchDag dag;
    const auto a = dag.addNode("A", PathPhase::Load, 1.0);
    const auto b = dag.addNode("B", PathPhase::Kernel, 3.0);
    const auto c = dag.addNode("C", PathPhase::Kernel, 3.0);
    const auto d = dag.addNode("D", PathPhase::Merge, 1.0);
    dag.addEdge(a, b);
    dag.addEdge(a, c);
    dag.addEdge(b, d);
    dag.addEdge(c, d);

    const CriticalPath path = computeCriticalPath(dag);
    EXPECT_DOUBLE_EQ(path.length, 5.0);
    ASSERT_EQ(path.nodes.size(), 3u);
    EXPECT_EQ(path.nodes[1], b);
}

TEST(CriticalPath, LaunchSpineAttributionSumsToModelTime)
{
    const Timeline tl = twoLaunchTimeline();
    ASSERT_EQ(tl.launches.size(), 2u);
    const LaunchDag dag = buildLaunchDag(tl);
    const CriticalPath path = computeCriticalPath(dag);

    // The spine with strict barriers *is* the serial model time, and
    // the per-phase attribution must account for every second of it.
    EXPECT_NEAR(path.length, tl.accountedSeconds(), 1e-12);
    Seconds phase_sum = 0.0;
    for (std::size_t p = 0; p < numPathPhases; ++p)
        phase_sum += path.phaseSeconds[p];
    EXPECT_NEAR(phase_sum, path.length, 1e-12);
    // load 2 + retrieve 1 of each 10s launch: transfers own 30%.
    EXPECT_NEAR(path.transferFraction(), 0.3, 1e-12);
}

TEST(CriticalPath, LaunchPhasesMirrorTheTimeline)
{
    const std::vector<LaunchPhases> phases =
        launchPhases(twoLaunchTimeline());
    ASSERT_EQ(phases.size(), 2u);
    for (const LaunchPhases &p : phases) {
        EXPECT_DOUBLE_EQ(p.load, 2.0);
        EXPECT_DOUBLE_EQ(p.kernel, 3.0);
        EXPECT_DOUBLE_EQ(p.retrieve, 1.0);
        EXPECT_DOUBLE_EQ(p.merge, 4.0);
    }
}

TEST(WhatIf, HandComputedBoundsForTwoLaunches)
{
    // Two launches of load 2, kernel 3, retrieve 1, merge 4:
    //   serial        = 2 * (2+3+1+4)            = 20
    //   rank overlap  = 2 * (max(3, 2+1) + 4)    = 14
    //   double buffer = 2 + 2*(3+1) + max(4,2) + 4 = 18
    //   combined      = max(6, 6, 8)             = 8
    const std::vector<LaunchPhases> launches(
        2, LaunchPhases{2.0, 3.0, 1.0, 4.0});
    const WhatIf w = estimateOverlap(launches);
    EXPECT_DOUBLE_EQ(w.serialSeconds, 20.0);
    EXPECT_DOUBLE_EQ(w.rankOverlapSeconds, 14.0);
    EXPECT_DOUBLE_EQ(w.doubleBufferSeconds, 18.0);
    EXPECT_DOUBLE_EQ(w.combinedSeconds, 8.0);
    EXPECT_DOUBLE_EQ(w.rankOverlapSpeedup(), 20.0 / 14.0);
    EXPECT_DOUBLE_EQ(w.doubleBufferSpeedup(), 20.0 / 18.0);
    EXPECT_DOUBLE_EQ(w.combinedSpeedup(), 2.5);
}

TEST(WhatIf, SingleLaunchHasNoDoubleBufferWin)
{
    // One launch {1, 2, 3, 4}: nothing to pipeline across
    // iterations, so double buffering changes nothing.
    const std::vector<LaunchPhases> launches{
        LaunchPhases{1.0, 2.0, 3.0, 4.0}};
    const WhatIf w = estimateOverlap(launches);
    EXPECT_DOUBLE_EQ(w.serialSeconds, 10.0);
    EXPECT_DOUBLE_EQ(w.rankOverlapSeconds, 8.0);
    EXPECT_DOUBLE_EQ(w.doubleBufferSeconds, 10.0);
    EXPECT_DOUBLE_EQ(w.combinedSeconds, 4.0);
    EXPECT_DOUBLE_EQ(w.doubleBufferSpeedup(), 1.0);
}

TEST(WhatIf, EmptyLaunchSequenceIsNeutral)
{
    const WhatIf w = estimateOverlap({});
    EXPECT_DOUBLE_EQ(w.serialSeconds, 0.0);
    EXPECT_DOUBLE_EQ(w.rankOverlapSpeedup(), 1.0);
    EXPECT_DOUBLE_EQ(w.doubleBufferSpeedup(), 1.0);
    EXPECT_DOUBLE_EQ(w.combinedSpeedup(), 1.0);
}

TEST(WhatIf, BoundOrderingAlwaysHolds)
{
    // combined <= rank overlap <= serial, double buffer <= serial.
    const std::vector<LaunchPhases> launches{
        LaunchPhases{0.5, 4.0, 0.25, 1.0},
        LaunchPhases{2.0, 1.0, 2.0, 0.5},
        LaunchPhases{1.0, 1.0, 1.0, 1.0}};
    const WhatIf w = estimateOverlap(launches);
    EXPECT_LE(w.combinedSeconds, w.rankOverlapSeconds);
    EXPECT_LE(w.rankOverlapSeconds, w.serialSeconds);
    EXPECT_LE(w.doubleBufferSeconds, w.serialSeconds);
    EXPECT_GT(w.combinedSeconds, 0.0);
}
