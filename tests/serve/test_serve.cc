/**
 * @file
 * Serving subsystem tests: scheduler policies, bounded admission,
 * batched-vs-solo result identity through the serving path (the
 * checksums a tenant would observe), deterministic load generation,
 * and the fingerprint-keyed GraphStats cache (a second load of the
 * same dataset must do no stats work).
 */

#include <gtest/gtest.h>

#include "apps/reference_algorithms.hh"
#include "common/random.hh"
#include "serve/loadgen.hh"
#include "sparse/generators.hh"
#include "sparse/stats_cache.hh"

using namespace alphapim;
using namespace alphapim::serve;

namespace
{

upmem::UpmemSystem
testSystem(unsigned dpus = 8)
{
    upmem::SystemConfig cfg;
    cfg.numDpus = dpus;
    cfg.dpu.tasklets = 8;
    return upmem::UpmemSystem(cfg);
}

sparse::CooMatrix<float>
testGraph(std::uint64_t seed = 7)
{
    Rng rng(seed);
    const auto list = sparse::generateScaleMatched(300, 5, 15, rng);
    return sparse::edgeListToSymmetricCoo(list);
}

PendingQuery
pending(std::uint64_t id, const std::string &dataset, ServeAlgo algo,
        NodeId source,
        core::MxvStrategy strategy = core::MxvStrategy::Adaptive)
{
    PendingQuery p;
    p.id = id;
    p.query.tenant = "t0";
    p.query.dataset = dataset;
    p.query.algo = algo;
    p.query.source = source;
    p.query.strategy = strategy;
    return p;
}

ServeQuery
bfsQuery(NodeId source, Seconds arrival = 0.0,
         const std::string &dataset = "g")
{
    ServeQuery q;
    q.tenant = "t0";
    q.dataset = dataset;
    q.algo = ServeAlgo::Bfs;
    q.source = source;
    q.arrival = arrival;
    return q;
}

} // namespace

TEST(Scheduler, FifoServesOneQueryInArrivalOrder)
{
    auto sched = makeScheduler(SchedulerKind::Fifo);
    std::deque<PendingQuery> queue;
    queue.push_back(pending(0, "g", ServeAlgo::Bfs, 1));
    queue.push_back(pending(1, "g", ServeAlgo::Bfs, 2));
    queue.push_back(pending(2, "g", ServeAlgo::Bfs, 3));

    for (std::uint64_t expect = 0; expect < 3; ++expect) {
        const auto batch = sched->next(queue);
        ASSERT_EQ(batch.size(), 1u);
        EXPECT_EQ(batch[0].id, expect);
    }
    EXPECT_TRUE(queue.empty());
}

TEST(Scheduler, BatchingCoalescesSameKeyPreservingOthers)
{
    auto sched = makeScheduler(SchedulerKind::Batching);
    std::deque<PendingQuery> queue;
    queue.push_back(pending(0, "g", ServeAlgo::Bfs, 1));
    queue.push_back(pending(1, "h", ServeAlgo::Bfs, 2)); // other graph
    queue.push_back(pending(2, "g", ServeAlgo::Sssp, 3)); // other algo
    queue.push_back(pending(3, "g", ServeAlgo::Bfs, 4));
    queue.push_back(pending(4, "g", ServeAlgo::Bfs, 5,
                            core::MxvStrategy::SpmvOnly)); // other strat
    queue.push_back(pending(5, "g", ServeAlgo::Bfs, 6));

    const auto batch = sched->next(queue);
    ASSERT_EQ(batch.size(), 3u);
    EXPECT_EQ(batch[0].id, 0u);
    EXPECT_EQ(batch[1].id, 3u);
    EXPECT_EQ(batch[2].id, 5u);

    // Non-matching queries keep their relative order.
    ASSERT_EQ(queue.size(), 3u);
    EXPECT_EQ(queue[0].id, 1u);
    EXPECT_EQ(queue[1].id, 2u);
    EXPECT_EQ(queue[2].id, 4u);
}

TEST(Scheduler, BatchingHonoursLaneLimits)
{
    auto sched = makeScheduler(SchedulerKind::Batching);
    std::deque<PendingQuery> queue;
    for (std::uint64_t i = 0; i < apps::kSsspLanes + 3; ++i)
        queue.push_back(pending(i, "g", ServeAlgo::Sssp,
                                static_cast<NodeId>(i)));
    EXPECT_EQ(sched->next(queue).size(), apps::kSsspLanes);
    EXPECT_EQ(queue.size(), 3u);

    // PPR and CC never batch.
    EXPECT_EQ(batchLimit(ServeAlgo::Ppr), 1u);
    EXPECT_EQ(batchLimit(ServeAlgo::Cc), 1u);
    EXPECT_EQ(batchLimit(ServeAlgo::Bfs), apps::kBfsLanes);
}

TEST(ServeEngine, AdmissionRejectsPastCapacity)
{
    const auto sys = testSystem();
    ServeOptions opt;
    opt.queueCapacity = 2;
    ServeEngine engine(sys, opt);
    engine.loadDataset("g", testGraph());

    EXPECT_TRUE(engine.submit(bfsQuery(1)));
    EXPECT_TRUE(engine.submit(bfsQuery(2)));
    std::uint64_t id = 0;
    EXPECT_FALSE(engine.submit(bfsQuery(3), &id));
    EXPECT_EQ(id, 2u);

    engine.drain();
    const auto &results = engine.results();
    ASSERT_EQ(results.size(), 3u);
    // The rejected query's result precedes the served ones
    // (admission decisions are immediate) and is marked.
    EXPECT_FALSE(results[0].admitted);
    EXPECT_EQ(results[0].queryId, 2u);
    EXPECT_TRUE(results[1].admitted);
    EXPECT_TRUE(results[2].admitted);

    const auto s = engine.summary();
    EXPECT_EQ(s.submitted, 3u);
    EXPECT_EQ(s.admitted, 2u);
    EXPECT_EQ(s.rejected, 1u);
    EXPECT_EQ(s.completed, 2u);
}

TEST(ServeEngine, BatchedChecksumsMatchFifoSolo)
{
    // The tenant-visible identity guarantee: the checksum of each
    // query's answer is the same whether it was served alone (FIFO)
    // or coalesced into a multi-source launch (batching).
    const auto sys = testSystem();
    const auto graph = testGraph(11);
    std::vector<NodeId> sources = {3, 50, 120, 7, 3, 200, 64, 9};

    auto checksums = [&](SchedulerKind kind) {
        ServeOptions opt;
        opt.scheduler = kind;
        ServeEngine engine(sys, opt);
        engine.loadDataset("g", graph);
        for (const NodeId s : sources)
            engine.submit(bfsQuery(s));
        engine.drain();
        std::map<std::uint64_t, std::uint64_t> by_id;
        for (const auto &r : engine.results())
            by_id[r.queryId] = r.resultChecksum;
        return by_id;
    };

    const auto fifo = checksums(SchedulerKind::Fifo);
    const auto batched = checksums(SchedulerKind::Batching);
    ASSERT_EQ(fifo.size(), sources.size());
    EXPECT_EQ(fifo, batched);
}

TEST(ServeEngine, BatchingServesBurstInOneLaunch)
{
    const auto sys = testSystem();
    ServeOptions opt;
    opt.scheduler = SchedulerKind::Batching;
    ServeEngine engine(sys, opt);
    engine.loadDataset("g", testGraph());
    for (NodeId s = 0; s < 12; ++s)
        engine.submit(bfsQuery(s * 7));
    engine.drain();

    const auto s = engine.summary();
    EXPECT_EQ(s.batches, 1u);
    EXPECT_EQ(s.maxBatchSize, 12u);
    EXPECT_EQ(s.completed, 12u);
    // One shared launch: everyone finishes together, so the latency
    // distribution is degenerate.
    EXPECT_DOUBLE_EQ(s.latencyP50, s.latencyP999);
}

TEST(ServeEngine, SoloSsspSkipsLaneWidenedEngine)
{
    // A lone SSSP query must be served by the plain MinPlus engine,
    // and its answer must equal the single-source reference path.
    const auto sys = testSystem();
    Rng rng(5);
    const auto weighted =
        sparse::assignSymmetricWeights(testGraph(13), 1.0f, 64.0f,
                                       rng);
    ServeOptions opt;
    opt.scheduler = SchedulerKind::Batching;
    ServeEngine engine(sys, opt);
    engine.loadDataset("g", weighted);

    ServeQuery q = bfsQuery(17);
    q.algo = ServeAlgo::Sssp;
    engine.submit(q);
    engine.step();
    ASSERT_EQ(engine.results().size(), 1u);
    EXPECT_EQ(engine.results()[0].batchSize, 1u);
    EXPECT_TRUE(engine.results()[0].converged);
}

TEST(LoadGen, OpenLoopStreamIsDeterministic)
{
    LoadGenOptions load;
    load.seed = 99;
    load.queries = 32;
    load.arrivalRate = 1000.0;
    load.mix = {ServeAlgo::Bfs, ServeAlgo::Sssp};

    const auto a = openLoopQueries(load, 300);
    const auto b = openLoopQueries(load, 300);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].source, b[i].source);
        EXPECT_EQ(a[i].algo, b[i].algo);
        EXPECT_EQ(a[i].tenant, b[i].tenant);
        EXPECT_DOUBLE_EQ(a[i].arrival, b[i].arrival);
    }
    // Arrivals are non-decreasing (cumulative exponential gaps).
    for (std::size_t i = 1; i < a.size(); ++i)
        EXPECT_GE(a[i].arrival, a[i - 1].arrival);

    LoadGenOptions other = load;
    other.seed = 100;
    const auto c = openLoopQueries(other, 300);
    bool any_different = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        any_different = any_different || a[i].source != c[i].source;
    EXPECT_TRUE(any_different);
}

TEST(LoadGen, SameSeedSameServingOutcome)
{
    const auto sys = testSystem();
    const auto graph = testGraph(17);

    auto run = [&]() {
        ServeOptions opt;
        opt.scheduler = SchedulerKind::Batching;
        ServeEngine engine(sys, opt);
        engine.loadDataset("g", graph);
        LoadGenOptions load;
        load.seed = 4242;
        load.dataset = "g";
        load.queries = 24;
        load.arrivalRate = 2000.0;
        runOpenLoop(engine,
                    openLoopQueries(load, engine.datasetRows("g")));
        return engine.summary();
    };

    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.submitted, b.submitted);
    EXPECT_EQ(a.batches, b.batches);
    EXPECT_DOUBLE_EQ(a.meanBatchSize, b.meanBatchSize);
    EXPECT_DOUBLE_EQ(a.latencyP50, b.latencyP50);
    EXPECT_DOUBLE_EQ(a.latencyP95, b.latencyP95);
    EXPECT_DOUBLE_EQ(a.latencyP99, b.latencyP99);
    EXPECT_DOUBLE_EQ(a.latencyP999, b.latencyP999);
    EXPECT_DOUBLE_EQ(a.queriesPerSec, b.queriesPerSec);
    EXPECT_DOUBLE_EQ(a.makespanSeconds, b.makespanSeconds);
}

TEST(LoadGen, ClosedLoopOneOutstandingPerClient)
{
    const auto sys = testSystem();
    ServeOptions opt;
    opt.scheduler = SchedulerKind::Batching;
    ServeEngine engine(sys, opt);
    engine.loadDataset("g", testGraph(19));

    LoadGenOptions load;
    load.seed = 7;
    load.dataset = "g";
    load.clients = 4;
    load.queriesPerClient = 3;
    runClosedLoop(engine, load, engine.datasetRows("g"));

    const auto s = engine.summary();
    EXPECT_EQ(s.submitted, 12u);
    EXPECT_EQ(s.rejected, 0u);
    EXPECT_EQ(s.completed, 12u);
    // At most one outstanding query per client bounds both the
    // queue depth and any batch.
    EXPECT_LE(s.maxQueueDepth, 4u);
    EXPECT_LE(s.maxBatchSize, 4u);
}

TEST(StatsCache, SecondDatasetLoadDoesNoStatsWork)
{
    const auto sys = testSystem();
    const auto graph = testGraph(23);
    sparse::resetStatsCache();

    {
        ServeEngine engine(sys, ServeOptions{});
        engine.loadDataset("g", graph);
        engine.submit(bfsQuery(1));
        engine.drain();
    }
    const auto first = sparse::statsCacheCounters();
    EXPECT_EQ(first.misses, 1u);

    {
        // A fresh engine loading the byte-identical dataset: the
        // stats scan must not run again -- only hits may grow.
        ServeEngine engine(sys, ServeOptions{});
        engine.loadDataset("g", graph);
        engine.submit(bfsQuery(2));
        engine.drain();
    }
    const auto second = sparse::statsCacheCounters();
    EXPECT_EQ(second.misses, first.misses);
    EXPECT_GT(second.hits, first.hits);
    sparse::resetStatsCache();
}
