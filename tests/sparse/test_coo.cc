/** @file COO matrix construction, sorting, coalescing, slicing. */

#include <gtest/gtest.h>

#include "sparse/coo.hh"

using namespace alphapim;
using namespace alphapim::sparse;

TEST(Coo, EmptyMatrix)
{
    CooMatrix<float> m(5, 7);
    EXPECT_EQ(m.numRows(), 5u);
    EXPECT_EQ(m.numCols(), 7u);
    EXPECT_EQ(m.nnz(), 0u);
    EXPECT_EQ(m.storageBytes(), 0u);
}

TEST(Coo, AddAndAccess)
{
    CooMatrix<float> m(3, 3);
    m.addEntry(0, 1, 2.0f);
    m.addEntry(2, 0, 3.0f);
    ASSERT_EQ(m.nnz(), 2u);
    EXPECT_EQ(m.rowAt(0), 0u);
    EXPECT_EQ(m.colAt(0), 1u);
    EXPECT_FLOAT_EQ(m.valueAt(1), 3.0f);
}

TEST(CooDeath, OutOfRangeEntryPanics)
{
    CooMatrix<float> m(2, 2);
    EXPECT_DEATH(m.addEntry(2, 0, 1.0f), "out of range");
}

TEST(Coo, SortRowMajor)
{
    CooMatrix<float> m(3, 3);
    m.addEntry(2, 1, 1.0f);
    m.addEntry(0, 2, 2.0f);
    m.addEntry(0, 0, 3.0f);
    m.sortRowMajor();
    EXPECT_EQ(m.rowAt(0), 0u);
    EXPECT_EQ(m.colAt(0), 0u);
    EXPECT_EQ(m.rowAt(1), 0u);
    EXPECT_EQ(m.colAt(1), 2u);
    EXPECT_EQ(m.rowAt(2), 2u);
}

TEST(Coo, SortColMajor)
{
    CooMatrix<float> m(3, 3);
    m.addEntry(1, 2, 1.0f);
    m.addEntry(2, 0, 2.0f);
    m.addEntry(0, 2, 3.0f);
    m.sortColMajor();
    EXPECT_EQ(m.colAt(0), 0u);
    EXPECT_EQ(m.colAt(1), 2u);
    EXPECT_EQ(m.rowAt(1), 0u);
    EXPECT_EQ(m.colAt(2), 2u);
    EXPECT_EQ(m.rowAt(2), 1u);
}

TEST(Coo, CoalesceKeepsFirst)
{
    CooMatrix<float> m(2, 2);
    m.addEntry(1, 1, 5.0f);
    m.addEntry(0, 0, 1.0f);
    m.addEntry(1, 1, 9.0f);
    m.coalesce();
    ASSERT_EQ(m.nnz(), 2u);
    EXPECT_FLOAT_EQ(m.valueAt(1), 5.0f);
}

TEST(Coo, Transpose)
{
    CooMatrix<float> m(2, 3);
    m.addEntry(0, 2, 4.0f);
    const auto t = m.transposed();
    EXPECT_EQ(t.numRows(), 3u);
    EXPECT_EQ(t.numCols(), 2u);
    EXPECT_EQ(t.rowAt(0), 2u);
    EXPECT_EQ(t.colAt(0), 0u);
}

TEST(Coo, ExtractBlockRebasesIndices)
{
    CooMatrix<float> m(4, 4);
    m.addEntry(1, 1, 1.0f);
    m.addEntry(2, 3, 2.0f);
    m.addEntry(3, 0, 3.0f);
    const auto block = m.extractBlock(1, 3, 1, 4);
    ASSERT_EQ(block.nnz(), 2u);
    EXPECT_EQ(block.numRows(), 2u);
    EXPECT_EQ(block.numCols(), 3u);
    EXPECT_EQ(block.rowAt(0), 0u);
    EXPECT_EQ(block.colAt(0), 0u);
    EXPECT_EQ(block.rowAt(1), 1u);
    EXPECT_EQ(block.colAt(1), 2u);
}
