/** @file Matrix Market reader/writer. */

#include <sstream>

#include <gtest/gtest.h>

#include "sparse/mmio.hh"

using namespace alphapim;
using namespace alphapim::sparse;

TEST(Mmio, ReadsGeneralReal)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "% a comment\n"
        "3 3 2\n"
        "1 2 5.5\n"
        "3 1 -2\n");
    const auto m = readMatrixMarket(in);
    EXPECT_EQ(m.numRows(), 3u);
    ASSERT_EQ(m.nnz(), 2u);
    EXPECT_EQ(m.rowAt(0), 0u);
    EXPECT_EQ(m.colAt(0), 1u);
    EXPECT_FLOAT_EQ(m.valueAt(0), 5.5f);
}

TEST(Mmio, ReadsSymmetricPattern)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate pattern symmetric\n"
        "4 4 2\n"
        "2 1\n"
        "4 3\n");
    const auto m = readMatrixMarket(in);
    EXPECT_EQ(m.nnz(), 4u); // mirrored
}

TEST(Mmio, SymmetricDiagonalNotDuplicated)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "3 3 2\n"
        "2 2 1.0\n"
        "3 1 2.0\n");
    const auto m = readMatrixMarket(in);
    EXPECT_EQ(m.nnz(), 3u);
}

TEST(Mmio, WriteReadRoundTrip)
{
    CooMatrix<float> m(5, 4);
    m.addEntry(0, 3, 1.5f);
    m.addEntry(4, 0, 2.5f);
    m.addEntry(2, 2, -3.0f);
    std::ostringstream out;
    writeMatrixMarket(m, out);
    std::istringstream in(out.str());
    const auto back = readMatrixMarket(in);
    ASSERT_EQ(back.nnz(), m.nnz());
    EXPECT_EQ(back.numRows(), 5u);
    EXPECT_EQ(back.numCols(), 4u);
}

TEST(MmioDeath, RejectsMissingBanner)
{
    std::istringstream in("not a matrix market file\n1 1 0\n");
    EXPECT_EXIT(readMatrixMarket(in), testing::ExitedWithCode(1),
                "banner");
}

TEST(MmioDeath, RejectsUnsupportedFormat)
{
    std::istringstream in(
        "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n");
    EXPECT_EXIT(readMatrixMarket(in), testing::ExitedWithCode(1),
                "coordinate");
}

TEST(MmioDeath, RejectsOutOfRangeEntry)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 1\n"
        "3 1 1.0\n");
    EXPECT_EXIT(readMatrixMarket(in), testing::ExitedWithCode(1),
                "out of range");
}

TEST(MmioDeath, MissingFileIsFatal)
{
    EXPECT_EXIT(readMatrixMarketFile("/nonexistent/foo.mtx"),
                testing::ExitedWithCode(1), "cannot open");
}
