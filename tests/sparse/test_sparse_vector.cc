/** @file Sparse vector invariants and dense round-trips. */

#include <gtest/gtest.h>

#include "sparse/sparse_vector.hh"

using namespace alphapim;
using namespace alphapim::sparse;

TEST(SparseVector, EmptyBasics)
{
    SparseVector<float> v(10);
    EXPECT_EQ(v.dim(), 10u);
    EXPECT_EQ(v.nnz(), 0u);
    EXPECT_DOUBLE_EQ(v.density(), 0.0);
}

TEST(SparseVector, AppendAndSort)
{
    SparseVector<float> v(10);
    v.append(7, 1.0f);
    v.append(2, 2.0f);
    v.append(5, 3.0f);
    v.sortByIndex();
    EXPECT_EQ(v.indices(), (std::vector<NodeId>{2, 5, 7}));
    EXPECT_EQ(v.values(), (std::vector<float>{2.0f, 3.0f, 1.0f}));
}

TEST(SparseVector, ConstructorSorts)
{
    SparseVector<int> v(6, {4, 1, 3}, {40, 10, 30});
    EXPECT_EQ(v.indices(), (std::vector<NodeId>{1, 3, 4}));
    EXPECT_EQ(v.values(), (std::vector<int>{10, 30, 40}));
}

TEST(SparseVector, DensityComputation)
{
    SparseVector<float> v(4);
    v.append(0, 1.0f);
    v.append(3, 1.0f);
    EXPECT_DOUBLE_EQ(v.density(), 0.5);
}

TEST(SparseVector, DenseRoundTrip)
{
    const std::vector<float> dense = {0, 1.5f, 0, 0, -2.5f, 0};
    const auto v = SparseVector<float>::fromDense(dense, 0.0f);
    EXPECT_EQ(v.nnz(), 2u);
    EXPECT_EQ(v.toDense(0.0f), dense);
}

TEST(SparseVector, FromDenseWithCustomZero)
{
    const float inf = std::numeric_limits<float>::infinity();
    const std::vector<float> dense = {inf, 3.0f, inf, 0.0f};
    const auto v = SparseVector<float>::fromDense(dense, inf);
    EXPECT_EQ(v.nnz(), 2u);
    EXPECT_EQ(v.indices(), (std::vector<NodeId>{1, 3}));
}

TEST(SparseVector, ByteAccounting)
{
    SparseVector<float> v(100);
    v.append(1, 1.0f);
    v.append(2, 1.0f);
    EXPECT_EQ(v.compressedBytes(), 2 * 8u);
    EXPECT_EQ(v.denseBytes(), 400u);
}

TEST(SparseVector, ClearKeepsDimension)
{
    SparseVector<float> v(8);
    v.append(1, 1.0f);
    v.clear();
    EXPECT_EQ(v.dim(), 8u);
    EXPECT_EQ(v.nnz(), 0u);
}

TEST(SparseVectorDeath, OutOfRangeAppendPanics)
{
    SparseVector<float> v(3);
    EXPECT_DEATH(v.append(3, 1.0f), "out of range");
}
