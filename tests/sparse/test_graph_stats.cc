/** @file Graph statistics and reachability helpers. */

#include <gtest/gtest.h>

#include "sparse/generators.hh"
#include "sparse/graph_stats.hh"

using namespace alphapim;
using namespace alphapim::sparse;

namespace
{

/** Path graph 0-1-2-3 as a symmetric adjacency. */
CooMatrix<float>
pathGraph()
{
    EdgeList list;
    list.nodes = 4;
    list.edges = {{0, 1}, {1, 2}, {2, 3}};
    return edgeListToSymmetricCoo(list);
}

} // namespace

TEST(GraphStats, PathGraphNumbers)
{
    const auto stats = computeGraphStats(pathGraph());
    EXPECT_EQ(stats.nodes, 4u);
    EXPECT_EQ(stats.edges, 3u);
    EXPECT_EQ(stats.nnz, 6u);
    EXPECT_DOUBLE_EQ(stats.avgDegree, 1.5);
    EXPECT_EQ(stats.maxDegree, 2u);
    EXPECT_DOUBLE_EQ(stats.sparsity, 3.0 / 16.0);
}

TEST(GraphStats, DegreeVector)
{
    const auto degrees = vertexDegrees(pathGraph());
    EXPECT_EQ(degrees, (std::vector<NodeId>{1, 2, 2, 1}));
}

TEST(Reachability, ConnectedPath)
{
    const auto visited = reachableFrom(pathGraph(), 0);
    EXPECT_EQ(visited, std::vector<bool>(4, true));
}

TEST(Reachability, DisconnectedComponents)
{
    EdgeList list;
    list.nodes = 5;
    list.edges = {{0, 1}, {3, 4}};
    const auto coo = edgeListToSymmetricCoo(list);
    const auto visited = reachableFrom(coo, 0);
    EXPECT_TRUE(visited[0]);
    EXPECT_TRUE(visited[1]);
    EXPECT_FALSE(visited[2]);
    EXPECT_FALSE(visited[3]);
}

TEST(LargestComponent, PicksTheBigOne)
{
    EdgeList list;
    list.nodes = 7;
    // Component A: {0,1}; component B: {2,3,4,5}.
    list.edges = {{0, 1}, {2, 3}, {3, 4}, {4, 5}};
    const auto coo = edgeListToSymmetricCoo(list);
    const NodeId v = largestComponentVertex(coo);
    const auto visited = reachableFrom(coo, v);
    std::size_t size = 0;
    for (bool b : visited)
        size += b ? 1 : 0;
    EXPECT_EQ(size, 4u);
}
