/** @file Dataset registry: Table 2 specs and generation fidelity. */

#include <gtest/gtest.h>

#include "sparse/datasets.hh"

using namespace alphapim;
using namespace alphapim::sparse;

TEST(Datasets, RegistryHasTable2Plus)
{
    const auto &specs = table2Specs();
    EXPECT_EQ(specs.size(), 14u); // 13 tabulated + r-PA
    EXPECT_EQ(specs[0].abbreviation, "A302");
    EXPECT_EQ(specs[9].abbreviation, "r-TX");
}

TEST(Datasets, FindSpecByAbbreviationOrName)
{
    EXPECT_EQ(findSpec("face").name, "facebook_combined");
    EXPECT_EQ(findSpec("roadNet-TX").abbreviation, "r-TX");
}

TEST(DatasetsDeath, UnknownSpecIsFatal)
{
    EXPECT_EXIT(findSpec("no-such-graph"),
                testing::ExitedWithCode(1), "unknown dataset");
}

TEST(Datasets, GenerationIsDeterministic)
{
    const auto d1 = buildDataset("as00", 1.0, 7);
    const auto d2 = buildDataset("as00", 1.0, 7);
    EXPECT_EQ(d1.adjacency.nnz(), d2.adjacency.nnz());
    EXPECT_EQ(d1.adjacency.rowIndices(), d2.adjacency.rowIndices());
}

TEST(Datasets, DifferentSeedsDiffer)
{
    const auto d1 = buildDataset("as00", 1.0, 7);
    const auto d2 = buildDataset("as00", 1.0, 8);
    EXPECT_NE(d1.adjacency.rowIndices(), d2.adjacency.rowIndices());
}

TEST(Datasets, ScaleFreeTargetsApproximatelyMet)
{
    const auto d = buildDataset("e-En", 1.0, 42);
    EXPECT_EQ(d.stats.nodes, d.spec.nodes);
    // The erased configuration model drops some hub edges.
    EXPECT_NEAR(static_cast<double>(d.stats.edges),
                static_cast<double>(d.spec.edges),
                0.2 * static_cast<double>(d.spec.edges));
    EXPECT_NEAR(d.stats.avgDegree, d.spec.avgDegree,
                0.3 * d.spec.avgDegree);
    EXPECT_GT(d.stats.degreeStd, d.stats.avgDegree);
}

TEST(Datasets, RegularFamilyIsRegular)
{
    const auto d = buildDataset("r-TX", 0.05, 42);
    EXPECT_LT(d.stats.degreeStd, 1.5);
    EXPECT_LT(d.stats.avgDegree, 4.0);
}

TEST(Datasets, ScalingShrinksProportionally)
{
    const auto full = buildDataset("ca-Q", 1.0, 1);
    const auto half = buildDataset("ca-Q", 0.5, 1);
    EXPECT_NEAR(static_cast<double>(half.stats.nodes),
                0.5 * static_cast<double>(full.stats.nodes), 10.0);
    // Average degree is preserved under proportional scaling.
    EXPECT_NEAR(half.stats.avgDegree, full.stats.avgDegree, 1.5);
}

TEST(Datasets, FamilyNames)
{
    EXPECT_STREQ(graphFamilyName(GraphFamily::Regular), "regular");
    EXPECT_STREQ(graphFamilyName(GraphFamily::ScaleFree),
                 "scale-free");
    EXPECT_STREQ(graphFamilyName(GraphFamily::Synthetic), "synthetic");
}
