/** @file CSR/CSC conversion round-trips and structure invariants. */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "sparse/csc.hh"
#include "sparse/csr.hh"

using namespace alphapim;
using namespace alphapim::sparse;

namespace
{

CooMatrix<float>
randomCoo(NodeId rows, NodeId cols, std::size_t entries,
          std::uint64_t seed)
{
    Rng rng(seed);
    CooMatrix<float> m(rows, cols);
    for (std::size_t k = 0; k < entries; ++k) {
        m.addEntry(static_cast<NodeId>(rng.nextBounded(rows)),
                   static_cast<NodeId>(rng.nextBounded(cols)),
                   rng.nextFloat() + 0.1f);
    }
    m.coalesce();
    return m;
}

} // namespace

TEST(Csr, StructureInvariants)
{
    const auto coo = randomCoo(50, 40, 300, 1);
    const auto csr = CsrMatrix<float>::fromCoo(coo);
    EXPECT_EQ(csr.nnz(), coo.nnz());
    EXPECT_EQ(csr.rowPtr().front(), 0u);
    EXPECT_EQ(csr.rowPtr().back(), coo.nnz());
    for (NodeId r = 0; r < csr.numRows(); ++r) {
        EXPECT_LE(csr.rowBegin(r), csr.rowEnd(r));
        for (EdgeId e = csr.rowBegin(r); e + 1 < csr.rowEnd(r); ++e)
            EXPECT_LT(csr.colIndices()[e], csr.colIndices()[e + 1]);
    }
}

TEST(Csr, RoundTripPreservesEntries)
{
    const auto coo = randomCoo(30, 30, 150, 2);
    const auto csr = CsrMatrix<float>::fromCoo(coo);
    // Rebuild a dense image from both and compare.
    std::vector<float> dense_coo(30 * 30, 0.0f);
    for (std::size_t k = 0; k < coo.nnz(); ++k)
        dense_coo[coo.rowAt(k) * 30 + coo.colAt(k)] = coo.valueAt(k);
    std::vector<float> dense_csr(30 * 30, 0.0f);
    for (NodeId r = 0; r < 30; ++r) {
        for (EdgeId e = csr.rowBegin(r); e < csr.rowEnd(r); ++e)
            dense_csr[r * 30 + csr.colIndices()[e]] = csr.values()[e];
    }
    EXPECT_EQ(dense_coo, dense_csr);
}

TEST(Csc, StructureInvariants)
{
    const auto coo = randomCoo(50, 40, 300, 3);
    const auto csc = CscMatrix<float>::fromCoo(coo);
    EXPECT_EQ(csc.nnz(), coo.nnz());
    EXPECT_EQ(csc.colPtr().front(), 0u);
    EXPECT_EQ(csc.colPtr().back(), coo.nnz());
    for (NodeId c = 0; c < csc.numCols(); ++c) {
        for (EdgeId e = csc.colBegin(c); e + 1 < csc.colEnd(c); ++e)
            EXPECT_LT(csc.rowIndices()[e], csc.rowIndices()[e + 1]);
    }
}

TEST(Csc, RoundTripPreservesEntries)
{
    const auto coo = randomCoo(25, 35, 180, 4);
    const auto csc = CscMatrix<float>::fromCoo(coo);
    std::vector<float> dense_coo(25 * 35, 0.0f);
    for (std::size_t k = 0; k < coo.nnz(); ++k)
        dense_coo[coo.rowAt(k) * 35 + coo.colAt(k)] = coo.valueAt(k);
    std::vector<float> dense_csc(25 * 35, 0.0f);
    for (NodeId c = 0; c < 35; ++c) {
        for (EdgeId e = csc.colBegin(c); e < csc.colEnd(c); ++e)
            dense_csc[csc.rowIndices()[e] * 35 + c] = csc.values()[e];
    }
    EXPECT_EQ(dense_coo, dense_csc);
}

TEST(CsrCsc, RowColumnLengthsAgree)
{
    const auto coo = randomCoo(20, 20, 100, 5);
    const auto csr = CsrMatrix<float>::fromCoo(coo);
    const auto csc = CscMatrix<float>::fromCoo(coo);
    EdgeId total_rows = 0, total_cols = 0;
    for (NodeId r = 0; r < 20; ++r)
        total_rows += csr.rowLength(r);
    for (NodeId c = 0; c < 20; ++c)
        total_cols += csc.colLength(c);
    EXPECT_EQ(total_rows, total_cols);
    EXPECT_EQ(total_rows, coo.nnz());
}

TEST(CsrCsc, EmptyMatrixConverts)
{
    CooMatrix<float> empty(10, 10);
    const auto csr = CsrMatrix<float>::fromCoo(empty);
    const auto csc = CscMatrix<float>::fromCoo(empty);
    EXPECT_EQ(csr.nnz(), 0u);
    EXPECT_EQ(csc.nnz(), 0u);
    EXPECT_EQ(csr.rowPtr().size(), 11u);
    EXPECT_EQ(csc.colPtr().size(), 11u);
}
