/** @file Graph generator properties: simplicity, symmetry, targets. */

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "common/stats.hh"
#include "sparse/generators.hh"
#include "sparse/graph_stats.hh"

using namespace alphapim;
using namespace alphapim::sparse;

namespace
{

/** Every generator must emit a simple undirected edge list. */
void
expectSimple(const EdgeList &list)
{
    std::set<std::pair<NodeId, NodeId>> seen;
    for (const auto &[u, v] : list.edges) {
        EXPECT_NE(u, v) << "self loop";
        EXPECT_LT(u, v) << "edges must be stored with u < v";
        EXPECT_LT(v, list.nodes);
        EXPECT_TRUE(seen.insert({u, v}).second) << "duplicate edge";
    }
}

} // namespace

TEST(ErdosRenyi, ExactEdgeCountAndSimplicity)
{
    Rng rng(1);
    const auto list = generateErdosRenyi(200, 800, rng);
    EXPECT_EQ(list.nodes, 200u);
    EXPECT_EQ(list.edges.size(), 800u);
    expectSimple(list);
}

TEST(ErdosRenyi, ClampsToCompleteGraph)
{
    Rng rng(2);
    const auto list = generateErdosRenyi(10, 1000, rng);
    EXPECT_EQ(list.edges.size(), 45u); // 10 choose 2
}

TEST(ErdosRenyi, Deterministic)
{
    Rng a(3), b(3);
    const auto l1 = generateErdosRenyi(100, 300, a);
    const auto l2 = generateErdosRenyi(100, 300, b);
    EXPECT_EQ(l1.edges, l2.edges);
}

TEST(Rmat, ProducesSkewedDegrees)
{
    Rng rng(4);
    const auto list = generateRmat(12, 8.0, rng);
    expectSimple(list);
    EXPECT_GT(list.edges.size(), 10000u);
    const auto coo = edgeListToSymmetricCoo(list);
    const auto stats = computeGraphStats(coo);
    // R-MAT graphs are scale-free: degree std exceeds the mean.
    EXPECT_GT(stats.degreeStd, stats.avgDegree);
}

TEST(Rmat, CompactsIsolatedVertices)
{
    Rng rng(5);
    const auto list = generateRmat(12, 4.0, rng);
    // Node count is the surviving (non-isolated) population: smaller
    // than the 4096-vertex initial space.
    EXPECT_LT(list.nodes, 4096u);
    EXPECT_GT(list.nodes, 1000u);
    std::vector<bool> touched(list.nodes, false);
    for (const auto &[u, v] : list.edges) {
        touched[u] = true;
        touched[v] = true;
    }
    EXPECT_TRUE(std::all_of(touched.begin(), touched.end(),
                            [](bool b) { return b; }));
}

TEST(RoadLattice, LowUniformDegrees)
{
    Rng rng(6);
    const auto list = generateRoadLattice(10000, 14000, rng);
    expectSimple(list);
    EXPECT_NEAR(static_cast<double>(list.edges.size()), 14000.0,
                800.0);
    const auto stats =
        computeGraphStats(edgeListToSymmetricCoo(list));
    EXPECT_LT(stats.avgDegree, 4.0);
    EXPECT_LT(stats.degreeStd, 1.5); // regular structure
}

TEST(LognormalDegrees, MatchesTargetMoments)
{
    Rng rng(7);
    const auto degrees = sampleLognormalDegrees(50000, 10.0, 8.0, rng);
    RunningStats stats;
    for (auto d : degrees) {
        EXPECT_GE(d, 1u);
        stats.add(static_cast<double>(d));
    }
    EXPECT_NEAR(stats.mean(), 10.0, 0.5);
    EXPECT_NEAR(stats.stddev(), 8.0, 1.0);
}

TEST(ConfigurationModel, ApproximatesDegreeSequence)
{
    Rng rng(8);
    std::vector<NodeId> degrees(2000, 4);
    degrees[0] = 100; // one hub
    const auto list = generateConfigurationModel(degrees, rng);
    expectSimple(list);
    const auto coo = edgeListToSymmetricCoo(list);
    const auto per_vertex = vertexDegrees(coo);
    // Stub pairing drops only collisions: totals stay close.
    EXPECT_NEAR(static_cast<double>(list.edges.size()),
                (2000 * 4 + 96) / 2.0, 200.0);
    EXPECT_GT(per_vertex[0], 50u); // the hub stays a hub
}

TEST(ScaleMatched, ReproducesTargetStatistics)
{
    Rng rng(9);
    const auto list = generateScaleMatched(20000, 12.0, 40.0, rng);
    const auto stats =
        computeGraphStats(edgeListToSymmetricCoo(list));
    // The erased configuration model undershoots hubs slightly.
    EXPECT_NEAR(stats.avgDegree, 12.0, 2.0);
    EXPECT_GT(stats.degreeStd, 20.0);
}

TEST(EdgeListToCoo, SymmetricPattern)
{
    EdgeList list;
    list.nodes = 4;
    list.edges = {{0, 1}, {1, 3}};
    const auto coo = edgeListToSymmetricCoo(list);
    EXPECT_EQ(coo.nnz(), 4u);
    // Every (r, c) has its (c, r) mirror.
    std::set<std::pair<NodeId, NodeId>> entries;
    for (std::size_t k = 0; k < coo.nnz(); ++k)
        entries.insert({coo.rowAt(k), coo.colAt(k)});
    for (const auto &[r, c] : entries)
        EXPECT_TRUE(entries.count({c, r}));
}

TEST(Weights, SymmetricAndInRange)
{
    Rng rng(10);
    const auto list = generateErdosRenyi(100, 400, rng);
    const auto pattern = edgeListToSymmetricCoo(list);
    const auto weighted =
        assignSymmetricWeights(pattern, 1.0f, 64.0f, rng);
    ASSERT_EQ(weighted.nnz(), pattern.nnz());
    std::map<std::pair<NodeId, NodeId>, float> values;
    for (std::size_t k = 0; k < weighted.nnz(); ++k) {
        const float w = weighted.valueAt(k);
        EXPECT_GE(w, 1.0f);
        EXPECT_LE(w, 64.0f);
        values[{weighted.rowAt(k), weighted.colAt(k)}] = w;
    }
    for (const auto &[rc, w] : values)
        EXPECT_FLOAT_EQ(values.at({rc.second, rc.first}), w);
}
