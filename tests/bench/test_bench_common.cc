/** @file Bench harness plumbing: option parsing, dataset scaling,
 * formatting. */

#include <gtest/gtest.h>

#include "bench_common.hh"

using namespace alphapim;
using namespace alphapim::bench;

namespace
{

BenchOptions
parse(std::vector<std::string> args)
{
    std::vector<char *> argv;
    static std::string prog = "bench";
    argv.push_back(prog.data());
    for (auto &a : args)
        argv.push_back(a.data());
    return parseOptions(static_cast<int>(argv.size()), argv.data());
}

} // namespace

TEST(BenchCommon, Defaults)
{
    const auto opt = parse({});
    EXPECT_EQ(opt.dpus, 2048u);
    EXPECT_EQ(opt.seed, 42u);
    EXPECT_FALSE(opt.quick);
    EXPECT_TRUE(opt.datasets.empty());
}

TEST(BenchCommon, FlagsParse)
{
    const auto opt = parse({"--dpus", "512", "--seed", "7",
                            "--scale", "0.5", "--datasets",
                            "A302,face", "--edge-target", "1000"});
    EXPECT_EQ(opt.dpus, 512u);
    EXPECT_EQ(opt.seed, 7u);
    EXPECT_DOUBLE_EQ(opt.scale, 0.5);
    EXPECT_EQ(opt.edgeTarget, 1000u);
    ASSERT_EQ(opt.datasets.size(), 2u);
    EXPECT_EQ(opt.datasets[0], "A302");
    EXPECT_EQ(opt.datasets[1], "face");
}

TEST(BenchCommon, QuickShrinksEverything)
{
    const auto opt = parse({"--quick"});
    EXPECT_LE(opt.dpus, 256u);
    EXPECT_LE(opt.edgeTarget, 50'000u);
    EXPECT_LE(opt.roadEdgeTarget, 20'000u);
}

TEST(BenchCommon, EffectiveScaleCapsLargeDatasets)
{
    BenchOptions opt;
    opt.edgeTarget = 100'000;
    opt.roadEdgeTarget = 10'000;
    const auto &big = sparse::findSpec("A302");    // 899k edges
    const auto &small = sparse::findSpec("as00");  // 12.5k edges
    const auto &road = sparse::findSpec("r-TX");   // 1.54M edges
    EXPECT_NEAR(effectiveScale(big, opt), 100'000.0 / 899'792.0,
                1e-9);
    EXPECT_DOUBLE_EQ(effectiveScale(small, opt), 1.0);
    EXPECT_NEAR(effectiveScale(road, opt), 10'000.0 / 1'541'898.0,
                1e-9);
}

TEST(BenchCommon, ExplicitScaleOverridesAuto)
{
    BenchOptions opt;
    opt.scale = 0.3;
    const auto &big = sparse::findSpec("A302");
    EXPECT_DOUBLE_EQ(effectiveScale(big, opt), 0.3);
}

TEST(BenchCommon, DatasetListPrefersOverride)
{
    BenchOptions opt;
    EXPECT_EQ(datasetList(opt, {"a", "b"}),
              (std::vector<std::string>{"a", "b"}));
    opt.datasets = {"c"};
    EXPECT_EQ(datasetList(opt, {"a", "b"}),
              (std::vector<std::string>{"c"}));
}

TEST(BenchCommon, RandomInputHitsDensityApproximately)
{
    const auto x = randomInputVector<std::uint32_t>(
        20000, 0.25, 3, 1u, 8u);
    EXPECT_NEAR(x.density(), 0.25, 0.02);
    for (std::size_t k = 0; k < x.nnz(); ++k) {
        EXPECT_GE(x.values()[k], 1u);
        EXPECT_LE(x.values()[k], 8u);
    }
}

TEST(BenchCommon, RandomInputNeverEmpty)
{
    const auto x = randomInputVector<std::uint32_t>(
        100, 0.0, 9, 1u, 1u);
    EXPECT_EQ(x.nnz(), 1u); // guaranteed sentinel nonzero
}

TEST(BenchCommon, PhaseCellsNormalize)
{
    core::PhaseTimes t;
    t.load = 0.5;
    t.kernel = 0.25;
    t.retrieve = 0.125;
    t.merge = 0.125;
    const auto cells = phaseCells(t, 1.0);
    ASSERT_EQ(cells.size(), 5u);
    EXPECT_EQ(cells[0], "0.500");
    EXPECT_EQ(cells[4], "1.000");
    const auto halved = phaseCells(t, 2.0);
    EXPECT_EQ(halved[0], "0.250");
}

TEST(BenchCommon, MakeSystemHonoursDpuCount)
{
    const auto sys = makeSystem(128);
    EXPECT_EQ(sys.numDpus(), 128u);
}
