/** @file GPU model and energy accounting properties. */

#include <gtest/gtest.h>

#include "baseline/energy_model.hh"
#include "baseline/gpu_model.hh"

using namespace alphapim;
using namespace alphapim::baseline;

TEST(GpuModel, BfsScalesWithLevels)
{
    GpuModel gpu{GpuSpec{}};
    const auto few = gpu.bfs({1000, 2000}, 10000);
    const auto many =
        gpu.bfs(std::vector<std::uint64_t>(30, 1000), 10000);
    EXPECT_LT(few.seconds, many.seconds);
}

TEST(GpuModel, SsspIsOverheadDominatedAndFlat)
{
    GpuModel gpu{GpuSpec{}};
    const auto small = gpu.sssp(std::vector<std::uint64_t>(10, 1000),
                                6000);
    const auto large = gpu.sssp(std::vector<std::uint64_t>(40, 50000),
                                260000);
    // The paper's flat ~13 ms: within 2x across very different
    // datasets because the fixed chain dominates.
    EXPECT_GT(small.seconds, 0.012);
    EXPECT_LT(large.seconds, 2.0 * small.seconds);
}

TEST(GpuModel, PprScalesWithIterationsAndEdges)
{
    GpuModel gpu{GpuSpec{}};
    const auto base = gpu.ppr(10, 1'000'000, 100000);
    const auto more_iters = gpu.ppr(20, 1'000'000, 100000);
    const auto more_edges = gpu.ppr(10, 10'000'000, 100000);
    EXPECT_GT(more_iters.seconds, base.seconds);
    EXPECT_GT(more_edges.seconds, base.seconds);
}

TEST(GpuModel, OpsAccumulate)
{
    GpuModel gpu{GpuSpec{}};
    const auto run = gpu.bfs({100, 200, 300}, 1000);
    EXPECT_EQ(run.ops, 2 * 600u);
}

TEST(EnergyModel, JoulesAreLinearInTime)
{
    EnergyModel model{CpuSpec{}, GpuSpec{}, UpmemPowerSpec{}};
    EXPECT_DOUBLE_EQ(model.cpuJoules(2.0), 2.0 * model.cpuJoules(1.0));
    EXPECT_DOUBLE_EQ(model.gpuJoules(0.5) * 4, model.gpuJoules(2.0));
    EXPECT_GT(model.upmemJoules(1.0), model.cpuJoules(1.0));
}

TEST(Utilization, DefinitionAndEdgeCases)
{
    EXPECT_DOUBLE_EQ(computeUtilization(1000, 1.0, 1e6), 1e-3);
    EXPECT_DOUBLE_EQ(computeUtilization(0, 1.0, 1e6), 0.0);
    EXPECT_DOUBLE_EQ(computeUtilization(10, 0.0, 1e6), 0.0);
}
