/** @file CPU baseline: functional correctness + timing model shape. */

#include <gtest/gtest.h>

#include "apps/reference_algorithms.hh"
#include "baseline/cpu_engine.hh"
#include "common/random.hh"
#include "sparse/generators.hh"
#include "sparse/graph_stats.hh"

using namespace alphapim;
using namespace alphapim::baseline;

namespace
{

sparse::CooMatrix<float>
testGraph(std::uint64_t seed, NodeId n = 500)
{
    Rng rng(seed);
    const auto list = sparse::generateScaleMatched(n, 8, 20, rng);
    return sparse::edgeListToSymmetricCoo(list);
}

} // namespace

TEST(CpuEngine, BfsMatchesReference)
{
    const auto adj = testGraph(1);
    const NodeId source = sparse::largestComponentVertex(adj);
    const CpuEngine engine(CpuSpec{}, adj);
    const auto run = engine.bfs(source);
    EXPECT_EQ(run.levels, apps::referenceBfs(adj, source));
    EXPECT_GT(run.seconds, 0.0);
    EXPECT_GT(run.iterations, 1u);
}

TEST(CpuEngine, SsspMatchesReference)
{
    Rng rng(2);
    const auto weighted =
        sparse::assignSymmetricWeights(testGraph(2), 1, 32, rng);
    const NodeId source = sparse::largestComponentVertex(weighted);
    const CpuEngine engine(CpuSpec{}, weighted);
    const auto run = engine.sssp(source);
    const auto expected = apps::referenceSssp(weighted, source);
    ASSERT_EQ(run.distances.size(), expected.size());
    for (NodeId v = 0; v < expected.size(); ++v) {
        if (std::isinf(expected[v]))
            EXPECT_TRUE(std::isinf(run.distances[v]));
        else
            EXPECT_NEAR(run.distances[v], expected[v], 1e-3);
    }
}

TEST(CpuEngine, PprMatchesReference)
{
    const auto adj = testGraph(3);
    const NodeId source = sparse::largestComponentVertex(adj);
    const CpuEngine engine(CpuSpec{}, adj);
    const auto run = engine.ppr(source, 0.85, 12);
    const auto expected = apps::referencePpr(adj, source, 0.85, 12);
    ASSERT_EQ(run.ranks.size(), expected.size());
    for (NodeId v = 0; v < expected.size(); ++v)
        EXPECT_NEAR(run.ranks[v], expected[v], 1e-4);
    EXPECT_EQ(run.iterations, 12u);
}

TEST(CpuEngine, SelectiveSchedulingSavesStreaming)
{
    // A frontier confined to one partition must stream fewer bytes
    // in the first iteration than a full pass.
    const auto adj = testGraph(4, 1000);
    const CpuEngine engine(CpuSpec{}, adj);
    const auto bfs_run = engine.bfs(0);
    const auto ppr_run = engine.ppr(0, 0.85, 1);
    ASSERT_FALSE(bfs_run.edgesPerIteration.empty());
    // PPR streams everything every iteration; BFS iteration 1
    // processes only the source's out-edges.
    EXPECT_LT(bfs_run.edgesPerIteration.front(),
              ppr_run.edgesPerIteration.front());
}

TEST(CpuEngine, TimeScalesWithWork)
{
    const auto small = testGraph(5, 300);
    const auto large = testGraph(5, 3000);
    const CpuEngine e_small(CpuSpec{}, small);
    const CpuEngine e_large(CpuSpec{}, large);
    const auto t_small = e_small.ppr(0, 0.85, 5).seconds;
    const auto t_large = e_large.ppr(0, 0.85, 5).seconds;
    EXPECT_GT(t_large, t_small);
}

TEST(CpuEngine, EdgeOpsCounted)
{
    const auto adj = testGraph(6);
    const CpuEngine engine(CpuSpec{}, adj);
    const auto run = engine.ppr(0, 0.85, 3);
    EXPECT_EQ(run.edgeOps, 3 * adj.nnz() * 2);
}
