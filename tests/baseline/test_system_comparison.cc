/**
 * @file
 * Table 4 harness integration test: the qualitative ordering of the
 * three systems must reproduce the paper's observations on a small
 * scale-free dataset.
 */

#include <gtest/gtest.h>

#include "baseline/system_comparison.hh"

using namespace alphapim;
using namespace alphapim::baseline;

namespace
{

/** Shared fixture: one small dataset, one simulated machine. */
class SystemComparisonTest : public testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        upmem::SystemConfig cfg;
        cfg.numDpus = 64;
        cfg.dpu.tasklets = 8;
        sys_ = new upmem::UpmemSystem(cfg);
        data_ = new sparse::Dataset(
            sparse::buildDataset("as00", 0.5, 11));
    }

    static void
    TearDownTestSuite()
    {
        delete sys_;
        delete data_;
        sys_ = nullptr;
        data_ = nullptr;
    }

    static upmem::UpmemSystem *sys_;
    static sparse::Dataset *data_;
};

upmem::UpmemSystem *SystemComparisonTest::sys_ = nullptr;
sparse::Dataset *SystemComparisonTest::data_ = nullptr;

} // namespace

TEST_F(SystemComparisonTest, BfsOrderingMatchesPaper)
{
    const SystemComparison cmp(*sys_);
    const auto row = cmp.compare(Algo::Bfs, *data_);
    // GPU fastest; UPMEM kernel beats CPU; total includes transfers.
    EXPECT_LT(row.gpuMs, row.cpuMs);
    EXPECT_LT(row.upmemKernelMs, row.cpuMs);
    EXPECT_LT(row.upmemKernelMs, row.upmemTotalMs);
    // UPMEM utilization beats both baselines (paper observation 2).
    EXPECT_GT(row.upmemKernelUtilPct, row.cpuUtilPct);
    EXPECT_GT(row.upmemKernelUtilPct, row.gpuUtilPct);
    // GPU most energy-efficient (paper observation 3).
    EXPECT_LT(row.gpuJ, row.cpuJ);
}

TEST_F(SystemComparisonTest, SsspKernelSpeedupIsComparable)
{
    const SystemComparison cmp(*sys_);
    const auto bfs = cmp.compare(Algo::Bfs, *data_);
    const auto sssp = cmp.compare(Algo::Sssp, *data_);
    const double bfs_speedup = bfs.cpuMs / bfs.upmemKernelMs;
    const double sssp_speedup = sssp.cpuMs / sssp.upmemKernelMs;
    // Paper: SSSP shows the largest kernel speedup (48.8x vs
    // 10.2x), driven by GridGraph revisiting edges over many
    // weighted relaxation rounds. Our frontier-based CPU SSSP takes
    // about as many rounds as the PIM version, so the two speedups
    // land in the same range rather than 5x apart (documented in
    // EXPERIMENTS.md); both must still be large.
    EXPECT_GT(sssp_speedup, 0.7 * bfs_speedup);
    EXPECT_GT(sssp_speedup, 3.0);
    EXPECT_GT(bfs_speedup, 3.0);
}

TEST_F(SystemComparisonTest, PprIsKernelDominated)
{
    const SystemComparison cmp(*sys_);
    apps::AppConfig cfg;
    cfg.pprTolerance = 0.0;
    cfg.pprIterations = 10;
    const auto row = cmp.compare(Algo::Ppr, *data_, cfg);
    // PPR's software-emulated floats make the kernel a large share
    // of total time (paper section 6.3.1 observation 2).
    EXPECT_GT(row.upmemKernelMs, 0.3 * row.upmemTotalMs);
}

TEST_F(SystemComparisonTest, RowIsLabelled)
{
    const SystemComparison cmp(*sys_);
    const auto row = cmp.compare(Algo::Bfs, *data_);
    EXPECT_EQ(row.dataset, "as00");
    EXPECT_EQ(row.algo, Algo::Bfs);
    EXPECT_STREQ(algoName(Algo::Sssp), "SSSP");
}

TEST_F(SystemComparisonTest, DeterministicAcrossCalls)
{
    const SystemComparison cmp(*sys_);
    const auto r1 = cmp.compare(Algo::Bfs, *data_);
    const auto r2 = cmp.compare(Algo::Bfs, *data_);
    EXPECT_DOUBLE_EQ(r1.cpuMs, r2.cpuMs);
    EXPECT_DOUBLE_EQ(r1.gpuMs, r2.gpuMs);
    EXPECT_DOUBLE_EQ(r1.upmemTotalMs, r2.upmemTotalMs);
}
