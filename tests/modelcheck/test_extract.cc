/**
 * @file
 * Symbolic-execution extraction tests: the capture tap harvests real
 * kernel launches on tiny abstract partitions, extraction
 * deduplicates by fingerprint, and every shipped kernel variant and
 * application proves finding-free under exhaustive exploration --
 * the in-tree mirror of the alphapim_modelcheck CI gate.
 */

#include <gtest/gtest.h>

#include "analysis/capture.hh"
#include "analysis/modelcheck/explorer.hh"
#include "analysis/modelcheck/extract.hh"

using namespace alphapim;
using namespace alphapim::analysis;
using namespace alphapim::analysis::modelcheck;

namespace
{

/** Explore every extracted skeleton; returns all findings. */
std::vector<Finding>
checkAll(const Extraction &ex, ExploreStats *stats = nullptr)
{
    std::vector<Finding> out = ex.lintFindings;
    for (const ExtractedSkeleton &s : ex.skeletons) {
        const ExploreResult r = explore(s.skeleton);
        EXPECT_TRUE(r.complete) << s.skeleton.subject;
        out.insert(out.end(), r.findings.begin(), r.findings.end());
        if (stats) {
            stats->states += r.stats.states;
            stats->schedules += r.stats.schedules;
        }
    }
    return out;
}

} // namespace

TEST(Extract, KernelYieldsDedupedSkeletons)
{
    const Extraction ex =
        extractKernelSkeletons(core::KernelVariant::SpmspvCsc2d);
    ASSERT_FALSE(ex.skeletons.empty());
    EXPECT_GT(ex.launches, 0u);
    unsigned occurrences = 0;
    for (const ExtractedSkeleton &s : ex.skeletons) {
        EXPECT_FALSE(s.skeleton.tasklets.empty());
        occurrences += s.occurrences;
    }
    EXPECT_EQ(occurrences, ex.dpuPrograms);
    // Distinct fingerprints only.
    for (std::size_t i = 0; i < ex.skeletons.size(); ++i)
        for (std::size_t j = i + 1; j < ex.skeletons.size(); ++j)
            EXPECT_NE(ex.skeletons[i].skeleton.fingerprint(),
                      ex.skeletons[j].skeleton.fingerprint());
}

TEST(Extract, ExtractionIsDeterministic)
{
    const ExtractOptions opts;
    const Extraction a =
        extractKernelSkeletons(core::KernelVariant::SpmspvCoo, opts);
    const Extraction b =
        extractKernelSkeletons(core::KernelVariant::SpmspvCoo, opts);
    ASSERT_EQ(a.skeletons.size(), b.skeletons.size());
    for (std::size_t i = 0; i < a.skeletons.size(); ++i) {
        EXPECT_EQ(a.skeletons[i].skeleton.fingerprint(),
                  b.skeletons[i].skeleton.fingerprint());
        EXPECT_EQ(a.skeletons[i].occurrences,
                  b.skeletons[i].occurrences);
    }
}

TEST(Extract, CaptureTapIsOffAfterExtraction)
{
    (void)extractKernelSkeletons(core::KernelVariant::SpmspvCoo);
    EXPECT_FALSE(capture().enabled());
    EXPECT_TRUE(capture().stop().empty());
}

TEST(Extract, AllKernelVariantsProveClean)
{
    const core::KernelVariant variants[] = {
        core::KernelVariant::SpmspvCoo,
        core::KernelVariant::SpmspvCsr,
        core::KernelVariant::SpmspvCscR,
        core::KernelVariant::SpmspvCscC,
        core::KernelVariant::SpmspvCsc2d,
        core::KernelVariant::SpmvCoo1d,
        core::KernelVariant::SpmvCooRow1d,
        core::KernelVariant::SpmvCsrRow1d,
        core::KernelVariant::SpmvDcoo2d,
    };
    for (const core::KernelVariant v : variants) {
        const Extraction ex = extractKernelSkeletons(v);
        const std::vector<Finding> findings = checkAll(ex);
        EXPECT_TRUE(findings.empty())
            << core::kernelVariantName(v) << ": "
            << (findings.empty() ? "" : findings[0].detail);
    }
}

TEST(Extract, AllAppsProveCleanUnderEveryStrategy)
{
    const core::MxvStrategy strategies[] = {
        core::MxvStrategy::Adaptive,
        core::MxvStrategy::CostModel,
        core::MxvStrategy::SpmspvOnly,
        core::MxvStrategy::SpmvOnly,
    };
    for (const std::string &app : knownApps()) {
        for (const core::MxvStrategy s : strategies) {
            const Extraction ex = extractAppSkeletons(app, s);
            ASSERT_FALSE(ex.skeletons.empty())
                << app << "/" << core::mxvStrategyName(s);
            const std::vector<Finding> findings = checkAll(ex);
            EXPECT_TRUE(findings.empty())
                << app << "/" << core::mxvStrategyName(s) << ": "
                << (findings.empty() ? "" : findings[0].detail);
        }
    }
}

TEST(Extract, DporReductionLoggedOnRealKernel)
{
    // The acceptance gate's reduction measurement in miniature: on a
    // real kernel's skeletons, sleep sets must explore strictly fewer
    // states than naive enumeration while agreeing on cleanliness.
    const Extraction ex =
        extractKernelSkeletons(core::KernelVariant::SpmspvCsc2d);
    std::uint64_t reduced = 0;
    std::uint64_t naive = 0;
    for (const ExtractedSkeleton &s : ex.skeletons) {
        ExploreOptions opts;
        const ExploreResult r1 = explore(s.skeleton, opts);
        opts.reduction = false;
        opts.maxStates = 1u << 16; // naive may exceed: lower bound
        const ExploreResult r2 = explore(s.skeleton, opts);
        EXPECT_TRUE(r1.complete);
        EXPECT_TRUE(r1.findings.empty());
        reduced += r1.stats.states;
        naive += r2.stats.states;
    }
    EXPECT_LT(reduced, naive);
}
