/**
 * @file
 * Launch-protocol model tests: every shipped schedule is proved
 * race- and deadlock-free under exhaustive exploration, and each
 * seeded protocol defect is detected with its exact finding kind on
 * the schedules whose overlap it breaks.
 */

#include <gtest/gtest.h>

#include "analysis/modelcheck/explorer.hh"
#include "analysis/modelcheck/protocol.hh"

using namespace alphapim::analysis;
using namespace alphapim::analysis::modelcheck;

namespace
{

ExploreResult
check(LaunchSchedule s, const ProtocolOptions &opts = {})
{
    return explore(buildProtocolSkeleton(s, opts));
}

::testing::AssertionResult
onlyKind(const std::vector<Finding> &fs, FindingKind k)
{
    if (fs.empty())
        return ::testing::AssertionFailure() << "no findings";
    for (const Finding &f : fs) {
        if (f.kind != k) {
            return ::testing::AssertionFailure()
                   << "unexpected kind " << findingKindName(f.kind)
                   << ": " << f.detail;
        }
    }
    return ::testing::AssertionSuccess();
}

const LaunchSchedule allSchedules[] = {
    LaunchSchedule::Serial,
    LaunchSchedule::RankOverlap,
    LaunchSchedule::DoubleBuffer,
    LaunchSchedule::Combined,
};

} // namespace

TEST(Protocol, AllSchedulesProveClean)
{
    for (const LaunchSchedule s : allSchedules) {
        const ExploreResult r = check(s);
        EXPECT_TRUE(r.complete) << launchScheduleName(s);
        EXPECT_TRUE(r.findings.empty())
            << launchScheduleName(s) << ": "
            << (r.findings.empty() ? "" : r.findings[0].detail);
    }
}

TEST(Protocol, ScalesToMoreRanksAndIterations)
{
    ProtocolOptions opts;
    opts.ranks = 3;
    opts.iterations = 3;
    for (const LaunchSchedule s : allSchedules) {
        const ExploreResult r = check(s, opts);
        EXPECT_TRUE(r.complete) << launchScheduleName(s);
        EXPECT_TRUE(r.findings.empty()) << launchScheduleName(s);
    }
}

TEST(Protocol, DroppedLoadBarrierIsDataRace)
{
    ProtocolOptions opts;
    opts.dropLoadBarrier = true;
    for (const LaunchSchedule s : allSchedules) {
        const ExploreResult r = check(s, opts);
        EXPECT_TRUE(r.complete) << launchScheduleName(s);
        EXPECT_TRUE(onlyKind(r.findings, FindingKind::DataRace))
            << launchScheduleName(s);
    }
}

TEST(Protocol, SharedStagingRacesWhereRetrieveOverlapsMerge)
{
    ProtocolOptions opts;
    opts.sharedStaging = true;
    // Serial and double-buffer keep retrieve and merge in separate
    // phases, so aliased staging stays (accidentally) safe there.
    EXPECT_TRUE(check(LaunchSchedule::Serial, opts).findings.empty());
    EXPECT_TRUE(
        check(LaunchSchedule::DoubleBuffer, opts).findings.empty());
    EXPECT_TRUE(onlyKind(
        check(LaunchSchedule::RankOverlap, opts).findings,
        FindingKind::DataRace));
    EXPECT_TRUE(onlyKind(check(LaunchSchedule::Combined, opts).findings,
                         FindingKind::DataRace));
}

TEST(Protocol, SingleBufferBreaksOverlappedSchedules)
{
    ProtocolOptions opts;
    opts.singleBuffer = true;
    // The speculative next-input load needs >= 3 iterations before
    // it reads a result image some merge is still writing.
    opts.iterations = 3;
    EXPECT_TRUE(check(LaunchSchedule::Serial, opts).findings.empty());
    EXPECT_TRUE(onlyKind(
        check(LaunchSchedule::DoubleBuffer, opts).findings,
        FindingKind::DataRace));
    EXPECT_TRUE(onlyKind(check(LaunchSchedule::Combined, opts).findings,
                         FindingKind::DataRace));
}

TEST(Protocol, SkippedFinalBarrierIsBarrierDivergence)
{
    ProtocolOptions opts;
    opts.skipFinalBarrier = true;
    for (const LaunchSchedule s : allSchedules) {
        const ExploreResult r = check(s, opts);
        EXPECT_TRUE(r.complete) << launchScheduleName(s);
        EXPECT_TRUE(
            onlyKind(r.findings, FindingKind::BarrierDivergence))
            << launchScheduleName(s);
    }
}

TEST(Protocol, SubjectNamesAreStable)
{
    EXPECT_STREQ(launchScheduleName(LaunchSchedule::Serial), "serial");
    EXPECT_STREQ(launchScheduleName(LaunchSchedule::RankOverlap),
                 "rank-overlap");
    EXPECT_STREQ(launchScheduleName(LaunchSchedule::DoubleBuffer),
                 "double-buffer");
    EXPECT_STREQ(launchScheduleName(LaunchSchedule::Combined),
                 "combined");
    const SyncSkeleton s =
        buildProtocolSkeleton(LaunchSchedule::RankOverlap);
    EXPECT_EQ(s.subject, "launch-protocol/rank-overlap");
}
