/**
 * @file
 * Skeleton extraction unit tests: segment coalescing, sync-event
 * streams, schedule-independent lint kinds, fingerprint stability,
 * and empty-tasklet handling.
 */

#include <gtest/gtest.h>

#include "analysis/modelcheck/skeleton.hh"
#include "upmem/trace.hh"

using namespace alphapim;
using namespace alphapim::analysis;
using namespace alphapim::analysis::modelcheck;
using upmem::OpClass;
using upmem::TaskletTrace;

namespace
{

SkeletonBuild
build(const std::vector<TaskletTrace> &traces)
{
    const upmem::DpuConfig cfg;
    return buildSkeleton(0, traces, cfg, "test");
}

bool
hasKind(const std::vector<Finding> &fs, FindingKind k)
{
    for (const Finding &f : fs)
        if (f.kind == k)
            return true;
    return false;
}

} // namespace

TEST(Skeleton, CoalescesOverlappingSameDirectionRanges)
{
    TaskletTrace t;
    t.wramAccess(OpClass::LoadWram, 1, 0x100, 16);
    t.wramAccess(OpClass::LoadWram, 1, 0x108, 16); // overlaps
    t.wramAccess(OpClass::LoadWram, 1, 0x118, 8);  // adjacent
    t.wramAccess(OpClass::StoreWram, 1, 0x100, 8); // other direction
    const SkeletonBuild b = build({t});
    ASSERT_EQ(b.skeleton.tasklets.size(), 1u);
    ASSERT_EQ(b.skeleton.tasklets[0].events.size(), 1u);
    const SyncEvent &e = b.skeleton.tasklets[0].events[0];
    EXPECT_EQ(e.kind, EventKind::Access);
    // One merged read range [0x100, 0x120) plus the write range.
    ASSERT_EQ(e.ranges.size(), 2u);
    EXPECT_EQ(e.ranges[0].addr, 0x100u);
    EXPECT_EQ(e.ranges[0].end, 0x120u);
    EXPECT_FALSE(e.ranges[0].write);
    EXPECT_TRUE(e.ranges[1].write);
    EXPECT_TRUE(b.lintFindings.empty());
}

TEST(Skeleton, SyncEventsSplitSegments)
{
    TaskletTrace t;
    t.wramAccess(OpClass::LoadWram, 1, 0x100, 8);
    t.mutexLock(3);
    t.wramAccess(OpClass::StoreWram, 1, 0x200, 8);
    t.mutexUnlock(3);
    t.barrier(0);
    t.dmaWrite(64, 0x1000);
    const SkeletonBuild b = build({t});
    ASSERT_EQ(b.skeleton.tasklets.size(), 1u);
    const auto &ev = b.skeleton.tasklets[0].events;
    ASSERT_EQ(ev.size(), 6u);
    EXPECT_EQ(ev[0].kind, EventKind::Access);
    EXPECT_EQ(ev[1].kind, EventKind::Acquire);
    EXPECT_EQ(ev[1].id, 3u);
    EXPECT_EQ(ev[2].kind, EventKind::Access);
    EXPECT_EQ(ev[3].kind, EventKind::Release);
    EXPECT_EQ(ev[4].kind, EventKind::Barrier);
    EXPECT_EQ(ev[5].kind, EventKind::Access);
    EXPECT_EQ(ev[5].ranges[0].space, MemSpace::Mram);
    EXPECT_TRUE(ev[5].ranges[0].write);
}

TEST(Skeleton, DoubleLockLintDropsTheReacquire)
{
    TaskletTrace t;
    t.mutexLock(1);
    t.mutexLock(1); // defect: lint, event dropped to stay live
    t.mutexUnlock(1);
    const SkeletonBuild b = build({t});
    EXPECT_TRUE(hasKind(b.lintFindings, FindingKind::DoubleLock));
    const auto &ev = b.skeleton.tasklets[0].events;
    ASSERT_EQ(ev.size(), 2u);
    EXPECT_EQ(ev[0].kind, EventKind::Acquire);
    EXPECT_EQ(ev[1].kind, EventKind::Release);
}

TEST(Skeleton, UnlockUnheldLint)
{
    TaskletTrace t;
    t.mutexUnlock(7);
    const SkeletonBuild b = build({t});
    EXPECT_TRUE(hasKind(b.lintFindings, FindingKind::UnlockUnheld));
    EXPECT_TRUE(b.skeleton.tasklets[0].events.empty());
}

TEST(Skeleton, LockHeldAtExitLint)
{
    TaskletTrace t;
    t.mutexLock(2);
    const SkeletonBuild b = build({t});
    EXPECT_TRUE(hasKind(b.lintFindings, FindingKind::LockHeldAtExit));
}

TEST(Skeleton, IllegalDmaLint)
{
    TaskletTrace t;
    t.dmaRead(12, 0x1000); // not 8-byte granular
    const SkeletonBuild b = build({t});
    EXPECT_TRUE(hasKind(b.lintFindings, FindingKind::IllegalDma));
}

TEST(Skeleton, FingerprintStableAndStructureSensitive)
{
    TaskletTrace t;
    t.wramAccess(OpClass::StoreWram, 1, 0x100, 8);
    t.barrier(0);
    const SkeletonBuild a = build({t});
    const SkeletonBuild same = build({t});
    EXPECT_EQ(a.skeleton.fingerprint(), same.skeleton.fingerprint());

    TaskletTrace t2 = t;
    t2.wramAccess(OpClass::LoadWram, 1, 0x200, 8);
    const SkeletonBuild other = build({t2});
    EXPECT_NE(a.skeleton.fingerprint(), other.skeleton.fingerprint());
}

TEST(Skeleton, EmptyTaskletsDroppedButHwIdsKept)
{
    TaskletTrace empty;
    TaskletTrace busy;
    busy.wramAccess(OpClass::StoreWram, 1, 0x100, 8);
    const SkeletonBuild b = build({empty, busy, empty});
    ASSERT_EQ(b.skeleton.tasklets.size(), 1u);
    EXPECT_EQ(b.skeleton.tasklets[0].tasklet, 1u);
}

TEST(Skeleton, UnaddressedRecordsContributeNoRanges)
{
    TaskletTrace t;
    t.ops(OpClass::IntAdd, 100);
    t.dmaRead(64); // unaddressed
    t.barrier(0);
    const SkeletonBuild b = build({t});
    ASSERT_EQ(b.skeleton.tasklets.size(), 1u);
    const auto &ev = b.skeleton.tasklets[0].events;
    ASSERT_EQ(ev.size(), 1u);
    EXPECT_EQ(ev[0].kind, EventKind::Barrier);
}
