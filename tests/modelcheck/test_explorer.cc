/**
 * @file
 * Explorer unit tests: exhaustive-schedule verification finds each
 * seeded defect class with the exact expected kind, proves clean
 * synchronization clean, and sleep-set reduction preserves verdicts
 * while shrinking the explored state count.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/modelcheck/explorer.hh"
#include "analysis/modelcheck/skeleton.hh"
#include "upmem/trace.hh"

using namespace alphapim;
using namespace alphapim::analysis;
using namespace alphapim::analysis::modelcheck;
using upmem::OpClass;
using upmem::TaskletTrace;

namespace
{

SyncEvent
access(std::uint64_t addr, std::uint64_t len, bool write,
       MemSpace space = MemSpace::Wram)
{
    SyncEvent e;
    e.kind = EventKind::Access;
    e.ranges.push_back({space, addr, addr + len, write});
    return e;
}

SyncEvent
sync(EventKind kind, std::uint32_t id)
{
    SyncEvent e;
    e.kind = kind;
    e.id = id;
    return e;
}

SyncSkeleton
skeletonOf(std::vector<std::vector<SyncEvent>> tasklets)
{
    SyncSkeleton s;
    s.subject = "test";
    for (unsigned t = 0; t < tasklets.size(); ++t) {
        TaskletSkeleton ts;
        ts.tasklet = t;
        ts.events = std::move(tasklets[t]);
        s.tasklets.push_back(std::move(ts));
    }
    return s;
}

::testing::AssertionResult
onlyKind(const std::vector<Finding> &fs, FindingKind k)
{
    if (fs.empty())
        return ::testing::AssertionFailure() << "no findings";
    for (const Finding &f : fs) {
        if (f.kind != k) {
            return ::testing::AssertionFailure()
                   << "unexpected kind " << findingKindName(f.kind)
                   << ": " << f.detail;
        }
    }
    return ::testing::AssertionSuccess();
}

} // namespace

TEST(Explorer, UnsynchronizedConflictIsDataRace)
{
    const SyncSkeleton s = skeletonOf({
        {access(0x100, 8, true)},
        {access(0x100, 8, false)},
    });
    const ExploreResult r = explore(s);
    EXPECT_TRUE(r.complete);
    EXPECT_TRUE(onlyKind(r.findings, FindingKind::DataRace));
}

TEST(Explorer, DisjointAccessesAreClean)
{
    const SyncSkeleton s = skeletonOf({
        {access(0x100, 8, true)},
        {access(0x200, 8, true)},
    });
    const ExploreResult r = explore(s);
    EXPECT_TRUE(r.complete);
    EXPECT_TRUE(r.findings.empty());
}

TEST(Explorer, SameSpaceDistinctionMatters)
{
    // Identical addresses in different address spaces don't race.
    const SyncSkeleton s = skeletonOf({
        {access(0x100, 8, true, MemSpace::Wram)},
        {access(0x100, 8, true, MemSpace::Mram)},
    });
    const ExploreResult r = explore(s);
    EXPECT_TRUE(r.complete);
    EXPECT_TRUE(r.findings.empty());
}

TEST(Explorer, MutexProtectionOrdersConflicts)
{
    const auto guarded = [](bool write) {
        return std::vector<SyncEvent>{sync(EventKind::Acquire, 0),
                                      access(0x100, 8, write),
                                      sync(EventKind::Release, 0)};
    };
    const SyncSkeleton s = skeletonOf({guarded(true), guarded(false)});
    const ExploreResult r = explore(s);
    EXPECT_TRUE(r.complete);
    EXPECT_TRUE(r.findings.empty()) << (r.findings.empty()
                                            ? ""
                                            : r.findings[0].detail);
}

TEST(Explorer, DifferentMutexesDoNotOrder)
{
    const SyncSkeleton s = skeletonOf({
        {sync(EventKind::Acquire, 0), access(0x100, 8, true),
         sync(EventKind::Release, 0)},
        {sync(EventKind::Acquire, 1), access(0x100, 8, false),
         sync(EventKind::Release, 1)},
    });
    const ExploreResult r = explore(s);
    EXPECT_TRUE(r.complete);
    EXPECT_TRUE(onlyKind(r.findings, FindingKind::DataRace));
}

TEST(Explorer, BarrierOrdersConflicts)
{
    const SyncSkeleton s = skeletonOf({
        {access(0x100, 8, true), sync(EventKind::Barrier, 0)},
        {sync(EventKind::Barrier, 0), access(0x100, 8, false)},
    });
    const ExploreResult r = explore(s);
    EXPECT_TRUE(r.complete);
    EXPECT_TRUE(r.findings.empty());
}

TEST(Explorer, SeededLockOrderCycleIsExactKind)
{
    // Classic ABBA deadlock; accesses disjoint so the only defect is
    // the cycle itself.
    const SyncSkeleton s = skeletonOf({
        {sync(EventKind::Acquire, 0), sync(EventKind::Acquire, 1),
         sync(EventKind::Release, 1), sync(EventKind::Release, 0)},
        {sync(EventKind::Acquire, 1), sync(EventKind::Acquire, 0),
         sync(EventKind::Release, 0), sync(EventKind::Release, 1)},
    });
    const ExploreResult r = explore(s);
    EXPECT_TRUE(r.complete);
    EXPECT_TRUE(onlyKind(r.findings, FindingKind::LockOrderCycle));
    EXPECT_GT(r.stats.deadlockStates, 0u);
}

TEST(Explorer, SeededDroppedBarrierWaitIsExactKind)
{
    // Tasklet 1 exits without arriving; tasklet 0 waits forever.
    const SyncSkeleton s = skeletonOf({
        {access(0x100, 8, true), sync(EventKind::Barrier, 0)},
        {access(0x200, 8, true)},
    });
    const ExploreResult r = explore(s);
    EXPECT_TRUE(r.complete);
    EXPECT_TRUE(
        onlyKind(r.findings, FindingKind::BarrierDivergence));
}

TEST(Explorer, BarrierIdDisagreementIsDivergence)
{
    const SyncSkeleton s = skeletonOf({
        {sync(EventKind::Barrier, 0)},
        {sync(EventKind::Barrier, 1)},
    });
    const ExploreResult r = explore(s);
    EXPECT_TRUE(r.complete);
    EXPECT_TRUE(
        onlyKind(r.findings, FindingKind::BarrierDivergence));
}

TEST(Explorer, SeededWramWriteOverlapFromTracesIsExactKind)
{
    // The full static path: defective traces -> skeleton -> explore.
    // Two tasklets store to overlapping WRAM with no synchronization.
    TaskletTrace t0;
    t0.wramAccess(OpClass::StoreWram, 1, 0x4000, 16);
    t0.barrier(0);
    TaskletTrace t1;
    t1.wramAccess(OpClass::StoreWram, 1, 0x4008, 16);
    t1.barrier(0);
    const upmem::DpuConfig cfg;
    const SkeletonBuild b = buildSkeleton(0, {t0, t1}, cfg, "seeded");
    EXPECT_TRUE(b.lintFindings.empty());
    const ExploreResult r = explore(b.skeleton);
    EXPECT_TRUE(r.complete);
    ASSERT_TRUE(onlyKind(r.findings, FindingKind::DataRace));
    // Attribution points at the overlap, in WRAM.
    EXPECT_EQ(r.findings[0].space, MemSpace::Wram);
}

TEST(Explorer, CleanTracesThroughFullStaticPath)
{
    // The mutex-protected pattern the kernels use: every store to the
    // shared accumulator under the output-group mutex.
    std::vector<TaskletTrace> traces(3);
    for (unsigned t = 0; t < traces.size(); ++t) {
        traces[t].dmaRead(256, 0x10000 + t * 0x1000);
        traces[t].mutexLock(5);
        traces[t].wramAccess(OpClass::StoreWram, 4, 0x4000, 32);
        traces[t].mutexUnlock(5);
        traces[t].barrier(0);
    }
    const upmem::DpuConfig cfg;
    const SkeletonBuild b = buildSkeleton(0, traces, cfg, "clean");
    EXPECT_TRUE(b.lintFindings.empty());
    const ExploreResult r = explore(b.skeleton);
    EXPECT_TRUE(r.complete);
    EXPECT_TRUE(r.findings.empty());
}

TEST(Explorer, SleepSetReductionPreservesVerdictAndShrinksStates)
{
    // Three tasklets, two independent segments each: heavily
    // commuting, so DPOR should collapse most interleavings.
    std::vector<std::vector<SyncEvent>> ts;
    for (unsigned t = 0; t < 3; ++t) {
        ts.push_back({access(0x1000 + t * 0x100, 8, true),
                      access(0x2000 + t * 0x100, 8, true)});
    }
    const SyncSkeleton clean = skeletonOf(std::move(ts));

    ExploreOptions reduced;
    ExploreOptions naive;
    naive.reduction = false;
    const ExploreResult r1 = explore(clean, reduced);
    const ExploreResult r2 = explore(clean, naive);
    ASSERT_TRUE(r1.complete);
    ASSERT_TRUE(r2.complete);
    EXPECT_TRUE(r1.findings.empty());
    EXPECT_TRUE(r2.findings.empty());
    EXPECT_LT(r1.stats.states, r2.stats.states);
    EXPECT_GT(r1.stats.sleepSkips, 0u);

    // And reduction loses no races on a defective skeleton.
    const SyncSkeleton racy = skeletonOf({
        {access(0x100, 8, true), access(0x300, 8, false)},
        {access(0x100, 8, false), access(0x200, 8, true)},
        {access(0x200, 8, true)},
    });
    const ExploreResult d1 = explore(racy, reduced);
    const ExploreResult d2 = explore(racy, naive);
    ASSERT_TRUE(d1.complete);
    ASSERT_TRUE(d2.complete);
    ASSERT_EQ(d1.findings.size(), d2.findings.size());
    for (std::size_t i = 0; i < d1.findings.size(); ++i)
        EXPECT_TRUE(findingEquals(d1.findings[i], d2.findings[i]));
    EXPECT_LE(d1.stats.states, d2.stats.states);
}

TEST(Explorer, StateBoundMarksResultIncomplete)
{
    std::vector<std::vector<SyncEvent>> ts;
    for (unsigned t = 0; t < 4; ++t) {
        std::vector<SyncEvent> ev;
        for (unsigned i = 0; i < 6; ++i)
            ev.push_back(access(0x1000 * (t + 1) + i * 8, 8, true));
        ts.push_back(std::move(ev));
    }
    ExploreOptions opts;
    opts.reduction = false;
    opts.maxStates = 100;
    const ExploreResult r = explore(skeletonOf(std::move(ts)), opts);
    EXPECT_FALSE(r.complete);
    EXPECT_LE(r.stats.states, 102u);
}

TEST(Explorer, FindingsAreDeterministicallyOrderedAndDeduped)
{
    const SyncSkeleton s = skeletonOf({
        {access(0x100, 8, true), sync(EventKind::Barrier, 0),
         access(0x100, 8, true)},
        {access(0x100, 8, false), sync(EventKind::Barrier, 0)},
    });
    const ExploreResult a = explore(s);
    const ExploreResult b = explore(s);
    ASSERT_EQ(a.findings.size(), b.findings.size());
    for (std::size_t i = 0; i < a.findings.size(); ++i)
        EXPECT_TRUE(findingEquals(a.findings[i], b.findings[i]));
    for (std::size_t i = 1; i < a.findings.size(); ++i) {
        EXPECT_FALSE(
            findingEquals(a.findings[i - 1], a.findings[i]));
        EXPECT_FALSE(findingLess(a.findings[i], a.findings[i - 1]));
    }
}
