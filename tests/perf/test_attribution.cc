/**
 * @file
 * Bottleneck attribution on synthetic regressed record pairs: each
 * injected cause (transfer volume, MRAM stalls, pipeline stalls,
 * real work, host merge) must be named, with ranked evidence and a
 * headline that quotes the dominant phase.
 */

#include <gtest/gtest.h>

#include "perf/attribution.hh"

using namespace alphapim::perf;

namespace
{

/** A healthy baseline run with all sections populated. */
RunRecord
baselineRecord()
{
    RunRecord r;
    r.key.bench = "fig07";
    r.key.dataset = "e-En";
    r.key.variant = "BFS/adaptive";
    r.key.dpus = 256;
    r.key.seed = 42;
    r.iterations = 10;
    r.times.load = 0.10;
    r.times.kernel = 0.40;
    r.times.retrieve = 0.08;
    r.times.merge = 0.02;
    r.hasProfile = true;
    r.totalCycles = 1'000'000;
    r.issuedCycles = 500'000;
    r.stallFractions = {{"memory", 0.30},
                        {"revolver", 0.15},
                        {"rf-hazard", 0.03},
                        {"sync", 0.02}};
    r.hasXfer = true;
    r.xfer.scatters = 10;
    r.xfer.scatterBytes = 1 << 20;
    r.xfer.gathers = 10;
    r.xfer.gatherBytes = 1 << 20;
    r.xfer.broadcasts = 10;
    r.xfer.broadcastBytes = 1 << 20;
    return r;
}

bool
anyEvidenceContains(const Attribution &a, const std::string &needle)
{
    for (const std::string &e : a.evidence)
        if (e.find(needle) != std::string::npos)
            return true;
    return false;
}

} // namespace

TEST(Attribution, NoRegressionIsUnknownAndSilent)
{
    const RunRecord r = baselineRecord();
    const Attribution a = attributeRegression(r, r);
    EXPECT_EQ(a.kind, Bottleneck::Unknown);
    EXPECT_TRUE(a.headline.empty());
    EXPECT_TRUE(a.evidence.empty());
    // An improvement is not a regression either.
    RunRecord faster = r;
    faster.times.kernel *= 0.5;
    EXPECT_EQ(attributeRegression(r, faster).kind,
              Bottleneck::Unknown);
}

TEST(Attribution, InflatedTransferPhasesAreTransferBound)
{
    const RunRecord older = baselineRecord();
    RunRecord newer = older;
    newer.times.load *= 1.5;
    newer.times.retrieve *= 1.3;
    newer.xfer.broadcastBytes =
        static_cast<std::uint64_t>(older.xfer.broadcastBytes * 2.1);

    const Attribution a = attributeRegression(older, newer);
    EXPECT_EQ(a.kind, Bottleneck::TransferBound);
    EXPECT_NE(a.headline.find("transfer-bound"), std::string::npos);
    // The dominant phase is quoted in the headline...
    EXPECT_NE(a.headline.find("phase.load_seconds"),
              std::string::npos);
    // ...and the transfer-volume ratio backs it up.
    EXPECT_NE(a.headline.find("broadcast bytes 2.10x"),
              std::string::npos);
    ASSERT_FALSE(a.evidence.empty());
    // Ranked: load contributed more than retrieve.
    EXPECT_NE(a.evidence[0].find("phase.load_seconds"),
              std::string::npos);
    EXPECT_TRUE(anyEvidenceContains(a, "xfer.broadcast_bytes"));
}

TEST(Attribution, GrownMergePhaseIsHostBound)
{
    const RunRecord older = baselineRecord();
    RunRecord newer = older;
    newer.times.merge += 0.10;
    const Attribution a = attributeRegression(older, newer);
    EXPECT_EQ(a.kind, Bottleneck::HostBound);
    EXPECT_NE(a.headline.find("phase.merge_seconds"),
              std::string::npos);
}

TEST(Attribution, HostBoundNamesTheDominantHostPhase)
{
    // Schema-v5 host blocks upgrade the host-bound headline: it
    // names where the *simulator* spent its wall clock and how the
    // replay throughput moved, not just the model phase.
    RunRecord older = baselineRecord();
    older.hasHost = true;
    older.host.totalSeconds = 1.0;
    older.host.replaySeconds = 0.60;
    older.host.traceRecordSeconds = 0.40;
    older.host.replaySlotsPerSec = 2.0e6;
    older.host.slowdownFactor = 50000.0;
    RunRecord newer = older;
    newer.times.merge += 0.10;
    newer.host.totalSeconds = 2.0;
    newer.host.replaySeconds = 1.36; // 68% of the new wall
    newer.host.traceRecordSeconds = 0.64;
    newer.host.replaySlotsPerSec = 1.62e6; // 0.81x of the old rate
    newer.host.slowdownFactor = 100000.0;

    const Attribution a = attributeRegression(older, newer);
    EXPECT_EQ(a.kind, Bottleneck::HostBound);
    EXPECT_NE(a.headline.find("host-bound"), std::string::npos);
    EXPECT_NE(a.headline.find("replay 68% of wall"),
              std::string::npos);
    EXPECT_NE(a.headline.find("throughput 0.81x"),
              std::string::npos);
    EXPECT_TRUE(anyEvidenceContains(a, "host.total_seconds"));
    EXPECT_TRUE(anyEvidenceContains(a, "host.slowdown_factor"));
}

TEST(Attribution, KernelRegressionFromMramStallsIsMemoryBound)
{
    const RunRecord older = baselineRecord();
    RunRecord newer = older;
    newer.times.kernel *= 1.4;
    // Cycle accounting: total grew, the growth is all memory stall.
    newer.totalCycles = 1'400'000;
    newer.issuedCycles = older.issuedCycles;
    newer.stallFractions = {{"memory", 0.50},
                            {"revolver", 0.107},
                            {"rf-hazard", 0.021},
                            {"sync", 0.015}};
    const Attribution a = attributeRegression(older, newer);
    EXPECT_EQ(a.kind, Bottleneck::MemoryBound);
    EXPECT_NE(a.headline.find("memory-bound"), std::string::npos);
    EXPECT_TRUE(anyEvidenceContains(a, "dpu.stall.memory_cycles"));
}

TEST(Attribution, KernelRegressionFromRevolverStallsIsPipelineBound)
{
    const RunRecord older = baselineRecord();
    RunRecord newer = older;
    newer.times.kernel *= 1.4;
    newer.totalCycles = 1'400'000;
    newer.issuedCycles = older.issuedCycles;
    // Growth concentrated in revolver + rf-hazard stalls; the
    // record spells the hazard key with a hyphen (stallReasonName).
    newer.stallFractions = {{"memory", 0.214},
                            {"revolver", 0.30},
                            {"rf-hazard", 0.08},
                            {"sync", 0.015}};
    const Attribution a = attributeRegression(older, newer);
    EXPECT_EQ(a.kind, Bottleneck::PipelineBound);
    EXPECT_NE(a.headline.find("pipeline-bound"), std::string::npos);
    // Metric-name spelling in the evidence uses the underscore.
    EXPECT_TRUE(anyEvidenceContains(a, "dpu.stall.rf_hazard_cycles"));
}

TEST(Attribution, KernelRegressionFromRealWorkIsComputeBound)
{
    const RunRecord older = baselineRecord();
    RunRecord newer = older;
    newer.times.kernel *= 1.4;
    // All growth is issued (useful) cycles; stall fractions shrink.
    newer.totalCycles = 1'400'000;
    newer.issuedCycles = 900'000;
    newer.stallFractions = {{"memory", 0.214},
                            {"revolver", 0.107},
                            {"rf-hazard", 0.021},
                            {"sync", 0.015}};
    const Attribution a = attributeRegression(older, newer);
    EXPECT_EQ(a.kind, Bottleneck::ComputeBound);
    EXPECT_NE(a.headline.find("issued cycles"), std::string::npos);
}

namespace
{

/** Attach an imbalance block (schema v4) to a record. */
void
withImbalance(RunRecord &r, double straggler_factor,
              double kernel_seconds, double leveled_seconds,
              double gini)
{
    r.hasImbalance = true;
    r.imbalance.launches = 12;
    r.imbalance.stragglerFactor = straggler_factor;
    r.imbalance.cyclesGini = gini;
    r.imbalance.stragglerKernel = "CSC-2D";
    r.imbalance.stragglerDpu = 37;
    r.imbalance.stragglerCyclesOverMean = straggler_factor;
    r.imbalance.stragglerStall = "memory";
    r.imbalance.stragglerStallFraction = 0.71;
    r.imbalance.stragglerNnzOverMean = 3.1;
    r.imbalance.kernelSeconds = kernel_seconds;
    r.imbalance.leveledKernelSeconds = leveled_seconds;
}

} // namespace

TEST(Attribution, SkewGrowthWithFlatLeveledBoundIsImbalanceBound)
{
    // The kernel phase doubled, the straggler factor grew 1.10x ->
    // 2.40x, and the perfectly-leveled kernel time barely moved: the
    // fleet got slower because one DPU did, not because the work did.
    RunRecord older = baselineRecord();
    withImbalance(older, 1.10, 0.40, 0.36, 0.05);
    RunRecord newer = older;
    newer.times.kernel = 0.80;
    withImbalance(newer, 2.40, 0.80, 0.37, 0.31);

    const Attribution a = attributeRegression(older, newer);
    EXPECT_EQ(a.kind, Bottleneck::ImbalanceBound);
    EXPECT_NE(a.headline.find("imbalance-bound"), std::string::npos);
    EXPECT_NE(
        a.headline.find("straggler factor 1.10x -> 2.40x"),
        std::string::npos);
    // The straggler is named with its stall reason, partition share
    // and kernel...
    EXPECT_TRUE(anyEvidenceContains(
        a, "DPU 37: 2.4x mean cycles, 71% memory-stall, "
           "holds 3.1x mean nnz (CSC-2D)"));
    // ...and the rebalance bound quantifies the leveling headroom.
    EXPECT_TRUE(anyEvidenceContains(
        a, "rebalance bound: leveled kernel time"));
    EXPECT_TRUE(anyEvidenceContains(a, "cycles gini 0.05 -> 0.31"));
}

TEST(Attribution, SkewGrowthWithGrownLeveledBoundIsNotImbalance)
{
    // The straggler factor grew, but so did the leveled bound: the
    // fleet has genuinely more work per DPU. Stay with the cycle-
    // accounting classes.
    RunRecord older = baselineRecord();
    withImbalance(older, 1.10, 0.40, 0.36, 0.05);
    RunRecord newer = older;
    newer.times.kernel = 0.80;
    withImbalance(newer, 1.30, 0.80, 0.76, 0.08);

    const Attribution a = attributeRegression(older, newer);
    EXPECT_EQ(a.kind, Bottleneck::ComputeBound);
    // The skew context still appears as evidence.
    EXPECT_TRUE(anyEvidenceContains(a, "rebalance bound"));
}

TEST(Attribution, SkewWithinThresholdIsNotImbalance)
{
    // A 2% straggler-factor wiggle is noise, not a regression class.
    RunRecord older = baselineRecord();
    withImbalance(older, 1.10, 0.40, 0.36, 0.05);
    RunRecord newer = older;
    newer.times.kernel = 0.80;
    withImbalance(newer, 1.12, 0.80, 0.37, 0.06);

    const Attribution a = attributeRegression(older, newer);
    EXPECT_NE(a.kind, Bottleneck::ImbalanceBound);
}

TEST(Attribution, KernelRegressionWithoutProfilesIsComputeBound)
{
    // No cycle accounting to subdivide: fall back to the phase.
    RunRecord older = baselineRecord();
    older.hasProfile = false;
    RunRecord newer = older;
    newer.times.kernel *= 1.4;
    const Attribution a = attributeRegression(older, newer);
    EXPECT_EQ(a.kind, Bottleneck::ComputeBound);
}

TEST(Attribution, IterationCountChangeIsReported)
{
    const RunRecord older = baselineRecord();
    RunRecord newer = older;
    newer.iterations = 14;
    newer.times.kernel *= 1.4;
    const Attribution a = attributeRegression(older, newer);
    EXPECT_TRUE(anyEvidenceContains(a, "iterations 10 -> 14"));
}

TEST(Attribution, EvidenceQuotesShareOfRegression)
{
    const RunRecord older = baselineRecord();
    RunRecord newer = older;
    newer.times.load += 0.06;
    newer.times.retrieve += 0.02;
    const Attribution a = attributeRegression(older, newer);
    ASSERT_GE(a.evidence.size(), 2u);
    EXPECT_NE(a.evidence[0].find("75% of the regression"),
              std::string::npos);
    EXPECT_NE(a.evidence[1].find("25% of the regression"),
              std::string::npos);
}

TEST(Attribution, BottleneckNamesAreStable)
{
    EXPECT_STREQ(bottleneckName(Bottleneck::TransferBound),
                 "transfer-bound");
    EXPECT_STREQ(bottleneckName(Bottleneck::ImbalanceBound),
                 "imbalance-bound");
    EXPECT_STREQ(bottleneckName(Bottleneck::MemoryBound),
                 "memory-bound");
    EXPECT_STREQ(bottleneckName(Bottleneck::PipelineBound),
                 "pipeline-bound");
    EXPECT_STREQ(bottleneckName(Bottleneck::ComputeBound),
                 "compute-bound");
    EXPECT_STREQ(bottleneckName(Bottleneck::HostBound),
                 "host-bound");
    EXPECT_STREQ(bottleneckName(Bottleneck::Unknown), "unknown");
}
