/**
 * @file
 * Imbalance block of the run-record schema (v4): a record carrying an
 * ImbalanceSummary survives encodeRunRecord() -> parseRunRecord()
 * field for field; summarizeImbalance() condenses the observer's run
 * aggregate faithfully; and records from the older v2/v3 schemas keep
 * parsing with the block absent-but-valid.
 */

#include <gtest/gtest.h>

#include "analysis/imbalance.hh"
#include "perf/manifest.hh"
#include "perf/record.hh"

using namespace alphapim;
using namespace alphapim::perf;

namespace
{

ImbalanceSummary
sampleImbalance()
{
    ImbalanceSummary s;
    s.launches = 12;
    s.stragglerFactor = 2.4;
    s.cyclesGini = 0.31;
    s.cyclesCov = 0.55;
    s.cyclesP99OverMean = 1.9;
    s.nnzGini = 0.22;
    s.nnzMaxOverMean = 3.1;
    s.stragglerKernel = "CSC-2D";
    s.stragglerDpu = 37;
    s.stragglerCyclesOverMean = 2.4;
    s.stragglerStall = "memory";
    s.stragglerStallFraction = 0.71;
    s.stragglerNnzOverMean = 3.1;
    s.kernelSeconds = 0.0022;
    s.leveledKernelSeconds = 0.000917;
    s.rooflineOpIntensity = 0.8;
    s.rooflineAchievedOpsPerSec = 4.3e9;
    s.rooflinePipelineCeilingOpsPerSec = 8.96e10;
    s.rooflineRidgeIntensity = 0.5;
    s.rooflineMemoryBoundFraction = 0.25;
    return s;
}

RunKey
sampleKey()
{
    RunKey key;
    key.bench = "fig09";
    key.dataset = "e-En";
    key.variant = "spmv";
    key.dpus = 256;
    key.seed = 42;
    return key;
}

} // namespace

TEST(RunRecordImbalance, EncodeParseRoundTrip)
{
    const ImbalanceSummary s = sampleImbalance();
    core::PhaseTimes times;
    times.kernel = 0.0022;

    const std::string line =
        encodeRunRecord(currentManifest(), sampleKey(), 3, times,
                        nullptr, nullptr, -1.0, nullptr, &s);

    RunRecord r;
    std::string error;
    ASSERT_TRUE(parseRunRecord(line, r, &error)) << error;
    ASSERT_TRUE(r.hasImbalance);
    const ImbalanceSummary &b = r.imbalance;
    EXPECT_EQ(b.launches, 12u);
    EXPECT_DOUBLE_EQ(b.stragglerFactor, 2.4);
    EXPECT_DOUBLE_EQ(b.cyclesGini, 0.31);
    EXPECT_DOUBLE_EQ(b.cyclesCov, 0.55);
    EXPECT_DOUBLE_EQ(b.cyclesP99OverMean, 1.9);
    EXPECT_DOUBLE_EQ(b.nnzGini, 0.22);
    EXPECT_DOUBLE_EQ(b.nnzMaxOverMean, 3.1);
    EXPECT_EQ(b.stragglerKernel, "CSC-2D");
    EXPECT_EQ(b.stragglerDpu, 37u);
    EXPECT_DOUBLE_EQ(b.stragglerCyclesOverMean, 2.4);
    EXPECT_EQ(b.stragglerStall, "memory");
    EXPECT_DOUBLE_EQ(b.stragglerStallFraction, 0.71);
    EXPECT_DOUBLE_EQ(b.stragglerNnzOverMean, 3.1);
    EXPECT_DOUBLE_EQ(b.kernelSeconds, 0.0022);
    EXPECT_DOUBLE_EQ(b.leveledKernelSeconds, 0.000917);
    EXPECT_DOUBLE_EQ(b.rooflineOpIntensity, 0.8);
    EXPECT_DOUBLE_EQ(b.rooflineAchievedOpsPerSec, 4.3e9);
    EXPECT_DOUBLE_EQ(b.rooflinePipelineCeilingOpsPerSec, 8.96e10);
    EXPECT_DOUBLE_EQ(b.rooflineRidgeIntensity, 0.5);
    EXPECT_DOUBLE_EQ(b.rooflineMemoryBoundFraction, 0.25);
}

TEST(RunRecordImbalance, OmittedBlockStaysAbsent)
{
    core::PhaseTimes times;
    times.kernel = 0.25;
    const std::string line =
        encodeRunRecord(currentManifest(), sampleKey(), 0, times,
                        nullptr, nullptr, -1.0, nullptr, nullptr);
    RunRecord r;
    std::string error;
    ASSERT_TRUE(parseRunRecord(line, r, &error)) << error;
    EXPECT_FALSE(r.hasImbalance);
}

TEST(RunRecordImbalance, OlderSchemasParseWithoutTheBlock)
{
    // Hand-written v2 and v3 lines as the older encoders emitted
    // them: no imbalance object anywhere.
    const std::string v2 =
        "{\"schema\":\"alpha-pim-run-v2\",\"git_sha\":\"abc\","
        "\"bench\":\"fig09\",\"dataset\":\"e-En\","
        "\"variant\":\"spmv\",\"dpus\":256,\"seed\":42,"
        "\"times\":{\"load\":0.1,\"kernel\":0.4,"
        "\"retrieve\":0.08,\"merge\":0.02}}";
    const std::string v3 =
        "{\"schema\":\"alpha-pim-run-v3\",\"git_sha\":\"abc\","
        "\"bench\":\"fig09\",\"dataset\":\"e-En\","
        "\"variant\":\"spmv\",\"dpus\":256,\"seed\":42,"
        "\"times\":{\"load\":0.1,\"kernel\":0.4,"
        "\"retrieve\":0.08,\"merge\":0.02},"
        "\"timeline\":{\"window_seconds\":0.6,\"launches\":5,"
        "\"ranks\":4,\"rank_occupancy_mean\":0.5,"
        "\"rank_occupancy_min\":0.4,\"dpu_occupancy_mean\":0.3,"
        "\"overlap_fraction\":0.0,\"idle_fraction\":0.1,"
        "\"transfer_critical_fraction\":0.55,"
        "\"whatif_rank_overlap_speedup\":1.2,"
        "\"whatif_double_buffer_speedup\":1.3,"
        "\"whatif_combined_speedup\":1.4}}";

    RunRecord r2, r3;
    std::string error;
    ASSERT_TRUE(parseRunRecord(v2, r2, &error)) << error;
    EXPECT_FALSE(r2.hasImbalance);
    EXPECT_FALSE(r2.hasTimeline);

    ASSERT_TRUE(parseRunRecord(v3, r3, &error)) << error;
    EXPECT_FALSE(r3.hasImbalance);
    ASSERT_TRUE(r3.hasTimeline);
    EXPECT_DOUBLE_EQ(r3.timeline.transferCriticalFraction, 0.55);
}

TEST(RunRecordImbalance, SummarizeCopiesTheRunAggregate)
{
    analysis::RunImbalance run;
    run.launches = 7;
    run.stragglerFactor = 1.84;
    run.cyclesGini = 0.15;
    run.cyclesCov = 1.19;
    run.cyclesP99OverMean = 1.4;
    run.nnzGini = 0.12;
    run.nnzMaxOverMean = 1.6;
    run.stragglerKernel = "CSC-2D";
    run.stragglerDpu = 16;
    run.stragglerCyclesOverMean = 10.5;
    run.stragglerStall = "memory";
    run.stragglerStallFraction = 0.46;
    run.stragglerNnzOverMean = 1.0;
    run.kernelSeconds = 3.2e-4;
    run.leveledKernelSeconds = 1.7e-4;
    run.roofline.opIntensity = 0.2;
    run.roofline.achievedOpsPerSec = 1.1e9;
    run.roofline.pipelineCeilingOpsPerSec = 2.24e10;
    run.roofline.ridgeIntensity = 0.5;
    run.roofline.memoryBoundFraction = 1.0;

    const ImbalanceSummary s = summarizeImbalance(run);
    EXPECT_EQ(s.launches, 7u);
    EXPECT_DOUBLE_EQ(s.stragglerFactor, 1.84);
    EXPECT_DOUBLE_EQ(s.cyclesGini, 0.15);
    EXPECT_DOUBLE_EQ(s.cyclesCov, 1.19);
    EXPECT_DOUBLE_EQ(s.cyclesP99OverMean, 1.4);
    EXPECT_DOUBLE_EQ(s.nnzGini, 0.12);
    EXPECT_DOUBLE_EQ(s.nnzMaxOverMean, 1.6);
    EXPECT_EQ(s.stragglerKernel, "CSC-2D");
    EXPECT_EQ(s.stragglerDpu, 16u);
    EXPECT_DOUBLE_EQ(s.stragglerCyclesOverMean, 10.5);
    EXPECT_EQ(s.stragglerStall, "memory");
    EXPECT_DOUBLE_EQ(s.stragglerStallFraction, 0.46);
    EXPECT_DOUBLE_EQ(s.stragglerNnzOverMean, 1.0);
    EXPECT_DOUBLE_EQ(s.kernelSeconds, 3.2e-4);
    EXPECT_DOUBLE_EQ(s.leveledKernelSeconds, 1.7e-4);
    EXPECT_DOUBLE_EQ(s.rooflineOpIntensity, 0.2);
    EXPECT_DOUBLE_EQ(s.rooflineAchievedOpsPerSec, 1.1e9);
    EXPECT_DOUBLE_EQ(s.rooflinePipelineCeilingOpsPerSec, 2.24e10);
    EXPECT_DOUBLE_EQ(s.rooflineRidgeIntensity, 0.5);
    EXPECT_DOUBLE_EQ(s.rooflineMemoryBoundFraction, 1.0);
}
