/**
 * @file
 * Serve block of the run-record schema (v6): a record carrying a
 * ServeSummary survives encodeRunRecord() -> parseRunRecord() field
 * for field; records without the block (including older-schema
 * lines) keep parsing with hasServe=false; and the serve-gate
 * verdict logic in compareDeterministic treats queries_per_sec as
 * higher-is-better.
 */

#include <gtest/gtest.h>

#include "perf/diff.hh"
#include "perf/manifest.hh"
#include "perf/record.hh"

using namespace alphapim;
using namespace alphapim::perf;

namespace
{

ServeSummary
sampleServe()
{
    ServeSummary s;
    s.submitted = 40;
    s.admitted = 38;
    s.rejected = 2;
    s.completed = 38;
    s.batches = 5;
    s.meanBatchSize = 7.6;
    s.maxBatchSize = 16;
    s.maxQueueDepth = 20;
    s.latencyP50 = 0.0125;
    s.latencyP95 = 0.046875;
    s.latencyP99 = 0.09375;
    s.latencyP999 = 0.1015625;
    s.latencyMean = 0.021484375;
    s.queriesPerSec = 812.5;
    s.makespanSeconds = 0.046875;
    return s;
}

RunKey
sampleKey()
{
    RunKey key;
    key.bench = "serve";
    key.dataset = "as00";
    key.variant = "open/batching/bfs/adaptive";
    key.dpus = 256;
    key.seed = 42;
    return key;
}

} // namespace

TEST(RunRecordServe, EncodeParseRoundTrip)
{
    const ServeSummary s = sampleServe();
    core::PhaseTimes times;
    times.kernel = 0.03;

    const std::string line = encodeRunRecord(
        currentManifest(), sampleKey(), 60, times, nullptr, nullptr,
        1.5, nullptr, nullptr, nullptr, &s);

    RunRecord r;
    std::string error;
    ASSERT_TRUE(parseRunRecord(line, r, &error)) << error;
    ASSERT_TRUE(r.hasServe);
    const ServeSummary &b = r.serve;
    EXPECT_EQ(b.submitted, 40u);
    EXPECT_EQ(b.admitted, 38u);
    EXPECT_EQ(b.rejected, 2u);
    EXPECT_EQ(b.completed, 38u);
    EXPECT_EQ(b.batches, 5u);
    EXPECT_DOUBLE_EQ(b.meanBatchSize, 7.6);
    EXPECT_EQ(b.maxBatchSize, 16u);
    EXPECT_EQ(b.maxQueueDepth, 20u);
    EXPECT_DOUBLE_EQ(b.latencyP50, 0.0125);
    EXPECT_DOUBLE_EQ(b.latencyP95, 0.046875);
    EXPECT_DOUBLE_EQ(b.latencyP99, 0.09375);
    EXPECT_DOUBLE_EQ(b.latencyP999, 0.1015625);
    EXPECT_DOUBLE_EQ(b.latencyMean, 0.021484375);
    EXPECT_DOUBLE_EQ(b.queriesPerSec, 812.5);
    EXPECT_DOUBLE_EQ(b.makespanSeconds, 0.046875);
}

TEST(RunRecordServe, OmittedBlockStaysAbsent)
{
    core::PhaseTimes times;
    times.kernel = 0.25;
    const std::string line = encodeRunRecord(
        currentManifest(), sampleKey(), 0, times, nullptr, nullptr,
        -1.0, nullptr, nullptr, nullptr, nullptr);
    RunRecord r;
    std::string error;
    ASSERT_TRUE(parseRunRecord(line, r, &error)) << error;
    EXPECT_FALSE(r.hasServe);
}

TEST(RunRecordServe, OlderSchemasParseWithoutTheBlock)
{
    // A v5 line as the previous encoder emitted it: no serve object.
    const std::string v5 =
        "{\"schema\":\"alpha-pim-run-v5\",\"git_sha\":\"abc\","
        "\"bench\":\"fig09\",\"dataset\":\"e-En\","
        "\"variant\":\"spmv\",\"dpus\":256,\"seed\":42,"
        "\"times\":{\"load\":0.1,\"kernel\":0.4,"
        "\"retrieve\":0.08,\"merge\":0.02}}";
    RunRecord r;
    std::string error;
    ASSERT_TRUE(parseRunRecord(v5, r, &error)) << error;
    EXPECT_FALSE(r.hasServe);
}

namespace
{

RunRecord
serveRecord(double qps, double p95)
{
    RunRecord r;
    r.manifest.schema = kRunSchema;
    r.manifest.gitSha = "abc123";
    r.key = sampleKey();
    r.iterations = 60;
    r.times.kernel = 0.03;
    r.hasServe = true;
    r.serve = sampleServe();
    r.serve.queriesPerSec = qps;
    r.serve.latencyP95 = p95;
    return r;
}

RecordSet
serveSet(RunRecord record)
{
    RecordSet set;
    set.path = "<test>";
    set.records = {std::move(record)};
    set.schemas = {kRunSchema};
    set.gitShas = {"abc123"};
    return set;
}

const MetricDelta *
findMetric(const DiffReport &report, const std::string &metric)
{
    for (const PairDiff &p : report.pairs)
        for (const MetricDelta &m : p.metrics)
            if (m.metric == metric)
                return &m;
    return nullptr;
}

} // namespace

TEST(RunRecordServe, DiffGatesThroughputAsHigherIsBetter)
{
    DiffOptions opt;
    opt.threshold = 0.01;
    const auto base = serveSet(serveRecord(800.0, 0.05));

    // Throughput dropping is a regression even though the raw value
    // moved "down".
    auto report = diffRecordSets(
        base, serveSet(serveRecord(700.0, 0.05)), opt);
    const MetricDelta *qps =
        findMetric(report, "serve.queries_per_sec");
    ASSERT_NE(qps, nullptr);
    EXPECT_EQ(qps->verdict, Verdict::Regressed);
    EXPECT_TRUE(report.hasRegressions());

    // Throughput rising is an improvement, not a gate trip.
    report = diffRecordSets(base, serveSet(serveRecord(900.0, 0.05)),
                            opt);
    EXPECT_FALSE(report.hasRegressions());
    EXPECT_EQ(findMetric(report, "serve.queries_per_sec")->verdict,
              Verdict::Improved);

    // p95 rising is a regression the usual way round.
    report = diffRecordSets(base, serveSet(serveRecord(800.0, 0.06)),
                            opt);
    EXPECT_TRUE(report.hasRegressions());
    EXPECT_EQ(findMetric(report, "serve.latency_p95")->verdict,
              Verdict::Regressed);
}
